# Empty dependencies file for work_stealing_test.
# This may be replaced when dependencies are built.
