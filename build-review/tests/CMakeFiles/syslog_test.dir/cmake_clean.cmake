file(REMOVE_RECURSE
  "CMakeFiles/syslog_test.dir/syslog_test.cc.o"
  "CMakeFiles/syslog_test.dir/syslog_test.cc.o.d"
  "syslog_test"
  "syslog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syslog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
