// CONFORMING (raw-primitive, 0 findings, 1 waiver): synchronization goes
// through the annotated wrappers; the one place that genuinely needs the
// raw primitive (interop with a C callback ABI, say) is waived with its
// reason.
#include <mutex>

namespace lintfix {

// Stand-in for the annotated tgm::Mutex wrapper (base/mutex.h).
class Mutex {
 public:
  void Lock();
  void Unlock();
};

struct Guarded {
  Mutex mu;
  int value = 0;
};

// tgm-lint: raw-primitive-ok(C ABI interop: external callback contract requires a std handle)
std::mutex g_c_abi_handle;

}  // namespace lintfix
