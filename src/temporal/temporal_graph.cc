#include "temporal/temporal_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace tgm {

namespace {
const std::vector<EdgePos> kEmptyPositions;
}  // namespace

NodeId TemporalGraph::AddNode(LabelId label) {
  TGM_CHECK(!finalized_);
  TGM_CHECK(label >= 0);
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void TemporalGraph::AddEdge(NodeId src, NodeId dst, Timestamp ts,
                            LabelId elabel) {
  TGM_CHECK(!finalized_);
  TGM_CHECK(src >= 0 && static_cast<std::size_t>(src) < node_labels_.size());
  TGM_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < node_labels_.size());
  TGM_CHECK(ts >= 0);
  edges_.push_back(TemporalEdge{src, dst, ts, elabel});
}

TemporalGraph::SignatureKey TemporalGraph::MakeSignature(LabelId src_label,
                                                         LabelId dst_label,
                                                         LabelId elabel) {
  // Labels are dense and well below 2^21 in practice; pack into one int64.
  std::int64_t packed = (static_cast<std::int64_t>(src_label) << 42) ^
                        (static_cast<std::int64_t>(dst_label) << 21) ^
                        static_cast<std::int64_t>(elabel);
  return SignatureKey{packed};
}

void TemporalGraph::Finalize(TiePolicy policy) {
  TGM_CHECK(!finalized_);
  // Stable sort keeps insertion order among equal timestamps, which is the
  // kBreakByInsertionOrder sequentialization policy.
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.ts < b.ts;
                   });
  if (policy == TiePolicy::kRequireStrict) {
    for (std::size_t i = 1; i < edges_.size(); ++i) {
      TGM_CHECK(edges_[i - 1].ts < edges_[i].ts);
    }
  }
  finalized_ = true;

  out_edges_.assign(node_labels_.size(), {});
  in_edges_.assign(node_labels_.size(), {});
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const TemporalEdge& e = edges_[i];
    EdgePos pos = static_cast<EdgePos>(i);
    out_edges_[static_cast<std::size_t>(e.src)].push_back(pos);
    in_edges_[static_cast<std::size_t>(e.dst)].push_back(pos);
    label_positions_[node_labels_[static_cast<std::size_t>(e.src)]].push_back(
        pos);
    label_positions_[node_labels_[static_cast<std::size_t>(e.dst)]].push_back(
        pos);
    signature_index_[MakeSignature(
                         node_labels_[static_cast<std::size_t>(e.src)],
                         node_labels_[static_cast<std::size_t>(e.dst)],
                         e.elabel)]
        .push_back(pos);
  }
  // label_positions_ may contain a position twice for self-referential
  // labels (src and dst share the label); dedupe so binary searches over the
  // lists see strictly ascending positions.
  for (auto& [label, positions] : label_positions_) {
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
  }
}

const std::vector<EdgePos>& TemporalGraph::out_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) < out_edges_.size());
  return out_edges_[static_cast<std::size_t>(v)];
}

const std::vector<EdgePos>& TemporalGraph::in_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) < in_edges_.size());
  return in_edges_[static_cast<std::size_t>(v)];
}

bool TemporalGraph::LabelOccursAfter(LabelId l, EdgePos pos) const {
  TGM_CHECK(finalized_);
  auto it = label_positions_.find(l);
  if (it == label_positions_.end()) return false;
  const std::vector<EdgePos>& positions = it->second;
  return !positions.empty() && positions.back() > pos;
}

const std::vector<EdgePos>& TemporalGraph::EdgesWithSignature(
    LabelId src_label, LabelId dst_label, LabelId elabel) const {
  TGM_CHECK(finalized_);
  auto it = signature_index_.find(MakeSignature(src_label, dst_label, elabel));
  return it == signature_index_.end() ? kEmptyPositions : it->second;
}

const std::vector<EdgePos>& TemporalGraph::LabelPositions(LabelId l) const {
  TGM_CHECK(finalized_);
  auto it = label_positions_.find(l);
  return it == label_positions_.end() ? kEmptyPositions : it->second;
}

bool TemporalGraph::IsTConnected() const {
  TGM_CHECK(finalized_);
  if (edges_.empty()) return true;
  // Union-find over nodes, adding edges in temporal order. The prefix up to
  // edge i is connected iff after adding edge i the number of components
  // among *touched* nodes is exactly one.
  std::vector<NodeId> parent(node_labels_.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::int64_t touched = 0;
  std::int64_t components = 0;
  std::vector<bool> seen(node_labels_.size(), false);
  for (const TemporalEdge& e : edges_) {
    for (NodeId v : {e.src, e.dst}) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++touched;
        ++components;
      }
    }
    NodeId a = find(e.src);
    NodeId b = find(e.dst);
    if (a != b) {
      parent[static_cast<std::size_t>(a)] = b;
      --components;
    }
    if (components != 1) return false;
  }
  (void)touched;
  return true;
}

Timestamp TemporalGraph::Span() const {
  if (edges_.size() < 2) return 0;
  return edges_.back().ts - edges_.front().ts;
}

std::vector<LabelId> TemporalGraph::DistinctNodeLabels() const {
  std::vector<LabelId> labels = node_labels_;
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

std::string TemporalGraph::ToString(const LabelDict* dict) const {
  std::ostringstream os;
  auto name = [&](LabelId l) -> std::string {
    if (dict != nullptr) return dict->Name(l);
    return "L" + std::to_string(l);
  };
  os << "TemporalGraph{" << node_count() << " nodes, " << edge_count()
     << " edges\n";
  for (std::size_t v = 0; v < node_labels_.size(); ++v) {
    os << "  n" << v << ": " << name(node_labels_[v]) << "\n";
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const TemporalEdge& e = edges_[i];
    os << "  e" << i << ": n" << e.src << " -> n" << e.dst << " @" << e.ts;
    if (e.elabel != kNoEdgeLabel) os << " [" << name(e.elabel) << "]";
    os << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace tgm
