file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_monitor.dir/bench_stream_monitor.cc.o"
  "CMakeFiles/bench_stream_monitor.dir/bench_stream_monitor.cc.o.d"
  "bench_stream_monitor"
  "bench_stream_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
