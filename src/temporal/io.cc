#include "temporal/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace tgm {

void WriteTemporalGraph(std::ostream& os, const TemporalGraph& g,
                        const LabelDict& dict) {
  os << "tgraph " << g.node_count() << " " << g.edge_count() << "\n";
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    os << "n " << dict.Name(g.label(static_cast<NodeId>(v))) << "\n";
  }
  for (const TemporalEdge& e : g.edges()) {
    os << "e " << e.src << " " << e.dst << " " << e.ts << " "
       << dict.Name(e.elabel) << "\n";
  }
}

std::optional<TemporalGraph> ReadTemporalGraph(std::istream& is,
                                               LabelDict& dict) {
  std::string header;
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  if (!(is >> header >> num_nodes >> num_edges) || header != "tgraph") {
    return std::nullopt;
  }
  TemporalGraph g;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    std::string tag;
    std::string name;
    if (!(is >> tag >> name) || tag != "n") return std::nullopt;
    g.AddNode(dict.Intern(name));
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    std::string tag;
    NodeId src = 0;
    NodeId dst = 0;
    Timestamp ts = 0;
    std::string elabel;
    if (!(is >> tag >> src >> dst >> ts >> elabel) || tag != "e") {
      return std::nullopt;
    }
    if (src < 0 || dst < 0 ||
        static_cast<std::size_t>(src) >= num_nodes ||
        static_cast<std::size_t>(dst) >= num_nodes || ts < 0) {
      return std::nullopt;
    }
    g.AddEdge(src, dst, ts, dict.Intern(elabel));
  }
  g.Finalize(TiePolicy::kBreakByInsertionOrder);
  return g;
}

void WritePattern(std::ostream& os, const Pattern& p, const LabelDict& dict) {
  os << "tpattern " << p.node_count() << " " << p.edge_count() << "\n";
  for (std::size_t v = 0; v < p.node_count(); ++v) {
    os << "n " << dict.Name(p.label(static_cast<NodeId>(v))) << "\n";
  }
  for (const PatternEdge& e : p.edges()) {
    os << "e " << e.src << " " << e.dst << " " << dict.Name(e.elabel)
       << "\n";
  }
}

std::optional<Pattern> ReadPattern(std::istream& is, LabelDict& dict) {
  std::string header;
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  if (!(is >> header >> num_nodes >> num_edges) || header != "tpattern") {
    return std::nullopt;
  }
  TemporalGraph g;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    std::string tag;
    std::string name;
    if (!(is >> tag >> name) || tag != "n") return std::nullopt;
    g.AddNode(dict.Intern(name));
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    std::string tag;
    NodeId src = 0;
    NodeId dst = 0;
    std::string elabel;
    if (!(is >> tag >> src >> dst >> elabel) || tag != "e") {
      return std::nullopt;
    }
    if (src < 0 || dst < 0 ||
        static_cast<std::size_t>(src) >= num_nodes ||
        static_cast<std::size_t>(dst) >= num_nodes) {
      return std::nullopt;
    }
    g.AddEdge(src, dst, static_cast<Timestamp>(i + 1), dict.Intern(elabel));
  }
  g.Finalize(TiePolicy::kRequireStrict);
  return Pattern::FromTemporalGraph(g);
}

namespace {

// DOT string literals need escaped quotes and backslashes.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string PatternToDot(const Pattern& p, const LabelDict& dict,
                         std::string_view graph_name) {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (std::size_t v = 0; v < p.node_count(); ++v) {
    os << "  n" << v << " [label=\""
       << DotEscape(dict.Name(p.label(static_cast<NodeId>(v)))) << "\"];\n";
  }
  for (std::size_t i = 0; i < p.edge_count(); ++i) {
    const PatternEdge& e = p.edge(i);
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"" << (i + 1);
    if (e.elabel != kNoEdgeLabel) {
      os << ": " << DotEscape(dict.Name(e.elabel));
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string TemporalGraphToDot(const TemporalGraph& g, const LabelDict& dict,
                               std::string_view graph_name) {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    os << "  n" << v << " [label=\""
       << DotEscape(dict.Name(g.label(static_cast<NodeId>(v)))) << "\"];\n";
  }
  for (const TemporalEdge& e : g.edges()) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"t=" << e.ts;
    if (e.elabel != kNoEdgeLabel) {
      os << " " << DotEscape(dict.Name(e.elabel));
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tgm
