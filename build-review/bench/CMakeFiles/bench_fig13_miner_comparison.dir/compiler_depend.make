# Empty compiler generated dependencies file for bench_fig13_miner_comparison.
# This may be replaced when dependencies are built.
