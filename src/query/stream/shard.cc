#include "query/stream/shard.h"

namespace tgm {

void StreamShard::RebuildSeedDispatch() {
  seed_words_ = (queries_.size() + 63) / 64;
  seed_by_elabel_.clear();
  seed_by_src_label_.clear();
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    auto set_bit = [&](std::unordered_map<LabelId, SeedBitmap>& map,
                       LabelId label) {
      SeedBitmap& bits = map[label];
      bits.resize(seed_words_, 0);
      bits[qi >> 6] |= std::uint64_t{1} << (qi & 63);
    };
    // Derived from the plan's own dispatch keys — the same accept set as
    // SeedMatches — so label alternatives can never drift from the
    // predicate the dispatch is a necessary condition of.
    for (const auto& [elabel, src_label] :
         queries_[qi].plan().SeedDispatchKeys()) {
      set_bit(seed_by_elabel_, elabel);
      set_bit(seed_by_src_label_, src_label);
    }
  }
  dispatch_dirty_ = false;
}

const StreamShard::SeedBitmap* StreamShard::RowFor(
    const std::unordered_map<LabelId, SeedBitmap>& map, LabelId label) {
  auto it = map.find(label);
  return it == map.end() ? nullptr : &it->second;
}

void StreamShard::ProcessBatch(std::span<const StreamEvent> batch,
                               std::vector<ShardAlert>* out) {
  out->clear();
  if (dispatch_dirty_) RebuildSeedDispatch();
  for (std::size_t ei = 0; ei < batch.size(); ++ei) {
    const StreamEvent& event = batch[ei];
    const SeedBitmap* by_elabel = RowFor(seed_by_elabel_, event.elabel);
    const SeedBitmap* by_src = RowFor(seed_by_src_label_, event.src_label);
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      QueryRuntime& query = queries_[qi];
      if (query.table().live() == 0) {
        // Idle query: only a seed could react, and seeding needs the
        // event's (elabel, src label) to equal the plan's edge-0 labels
        // (a necessary condition of CompiledQueryPlan::SeedMatches).
        const std::uint64_t bit = std::uint64_t{1} << (qi & 63);
        const bool can_seed =
            by_elabel != nullptr && by_src != nullptr &&
            ((*by_elabel)[qi >> 6] & (*by_src)[qi >> 6] & bit) != 0;
        if (!can_seed) {
          query.CountSeedSkip();
          continue;
        }
      }
      scratch_.clear();
      query.Advance(event, &scratch_);
      for (const Interval& interval : scratch_) {
        out->push_back(ShardAlert{static_cast<std::uint32_t>(ei),
                                  query.global_index(), interval});
      }
    }
    ++events_processed_;
  }
}

}  // namespace tgm
