#!/usr/bin/env python3
"""CTest suite for tgm-lint itself, run over the fixture corpus in this
directory. Pins exact finding counts per (file, check) — a linter that
stops biting, or starts over-flagging, fails here before it ever gates a
real change — plus waiver parsing, per-check selection, and exit codes.
"""

import os
import re
import subprocess
import sys

REPO_ROOT = None
FIXDIR = "tests/lint_fixtures"
LINT = None

FAILURES = []


def run_lint(extra_args, checks=None):
    cmd = [sys.executable, LINT, "--root", REPO_ROOT, "--src", FIXDIR,
           "--layers", f"{FIXDIR}/layers_fixture.conf", "--mode", "tokens"]
    if checks:
        cmd += ["--checks", checks]
    cmd += extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc


def check(name, cond, detail=""):
    if cond:
        print(f"  PASS  {name}")
    else:
        print(f"  FAIL  {name}  {detail}")
        FAILURES.append(name)


def finding_counts(stdout):
    counts = {}
    for line in stdout.splitlines():
        m = re.match(r"([^:]+):(\d+): \[([a-z-]+)\]", line)
        if m:
            path = os.path.relpath(m.group(1), FIXDIR) \
                if m.group(1).startswith(FIXDIR) else m.group(1)
            counts[(path, m.group(3))] = counts.get(
                (path, m.group(3)), 0) + 1
    return counts


def main():
    global REPO_ROOT, LINT
    REPO_ROOT = sys.argv[sys.argv.index("--repo-root") + 1] \
        if "--repo-root" in sys.argv else os.getcwd()
    REPO_ROOT = os.path.realpath(REPO_ROOT)
    LINT = os.path.join(REPO_ROOT, "tools", "lint", "tgm_lint.py")
    os.chdir(REPO_ROOT)

    # ---- full run over the corpus: exact finding counts ----------------
    proc = run_lint([])
    counts = finding_counts(proc.stdout)
    expected = {
        ("bad_determinism.cc", "unordered-iter"): 2,
        ("bad_determinism.cc", "pointer-key"): 1,
        ("bad_status.cc", "status-discard"): 2,
        ("bad_raw_primitive.cc", "raw-primitive"): 2,
        ("low/bad_upward.cc", "layering"): 1,
        ("bad_waiver.cc", "waiver"): 2,
    }
    print("== full corpus run")
    check("exit code 1 with findings", proc.returncode == 1,
          f"got {proc.returncode}\n{proc.stdout}\n{proc.stderr}")
    for key, want in sorted(expected.items()):
        check(f"{key[0]} [{key[1]}] == {want}",
              counts.get(key, 0) == want,
              f"got {counts.get(key, 0)}")
    total = sum(counts.values())
    check("no findings beyond the pinned set",
          total == sum(expected.values()),
          f"got {total}: {counts}\n{proc.stdout}")
    for good in ("good_determinism.cc", "good_status.cc",
                 "good_raw_primitive.cc", "high/good_downward.cc"):
        bad = [k for k in counts if k[0] == good]
        check(f"{good} clean", not bad, f"flagged: {bad}")

    # ---- per-check selection isolates each check -----------------------
    print("== per-check selection")
    for group, files in (
            ("determinism", {"bad_determinism.cc"}),
            ("layering", {"low/bad_upward.cc"}),
            ("status-discard", {"bad_status.cc"}),
            ("raw-primitive", {"bad_raw_primitive.cc"})):
        proc = run_lint([], checks=group)
        got = {k[0] for k in finding_counts(proc.stdout)
               if k[1] != "waiver"}
        check(f"--checks {group} flags exactly {sorted(files)}",
              got == files, f"got {sorted(got)}")

    # ---- waiver audit: every suppression listed with its reason --------
    print("== waiver audit")
    proc = run_lint(["--audit-waivers"])
    check("audit exits 1 (malformed waivers in corpus)",
          proc.returncode == 1, f"got {proc.returncode}")
    for frag in (
            "good_determinism.cc", "pointer-key-ok — scratch-only",
            "good_status.cc", "status-discard-ok — best-effort telemetry",
            "good_raw_primitive.cc", "raw-primitive-ok — C ABI interop"):
        check(f"audit lists '{frag}'", frag in proc.stdout,
              proc.stdout)
    check("audit reports the empty-reason waiver",
          "empty reason" in proc.stderr, proc.stderr)
    check("audit reports the unknown-kind waiver",
          "unknown waiver kind" in proc.stderr, proc.stderr)

    # ---- the real tree: src/ must lint clean (the Gate 4 contract) -----
    print("== src/ clean under the real manifest")
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO_ROOT, "--src", "src",
         "--layers", "tools/lint/layers.conf", "--mode", "tokens"],
        capture_output=True, text=True)
    check("src/ lints clean", proc.returncode == 0,
          f"exit {proc.returncode}\n{proc.stdout}")

    if FAILURES:
        print(f"\n{len(FAILURES)} fixture check(s) FAILED")
        return 1
    print("\nAll lint fixture checks passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
