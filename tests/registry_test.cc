#include "mining/registry.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tgm {
namespace {

RegisteredPattern MakeEntry(Pattern p, std::int64_t pos_i, std::int64_t neg_i,
                            double branch_best,
                            std::vector<std::pair<std::int32_t, EdgePos>>
                                pos_cuts = {}) {
  RegisteredPattern entry;
  entry.node_count = static_cast<std::int32_t>(p.node_count());
  entry.edge_count = static_cast<std::int32_t>(p.edge_count());
  entry.pattern = std::move(p);
  entry.pos_i_value = pos_i;
  entry.neg_i_value = neg_i;
  entry.branch_best = branch_best;
  entry.pos_cuts = std::move(pos_cuts);
  return entry;
}

TEST(RegistryTest, IValueModeBucketsByPosIValue) {
  PatternRegistry registry(ResidualEquivAlgo::kIValue);
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 1), 10, 0, 1.0));
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 2), 10, 0, 2.0));
  registry.Add(MakeEntry(Pattern::SingleEdge(1, 2), 99, 0, 3.0));

  std::int64_t tests = 0;
  int seen = 0;
  registry.ForEachPosCandidate(10, {}, &tests,
                               [&seen](const PatternRegistry::CandidateMeta&,
                                       const RegisteredPattern&) {
                                 ++seen;
                                 return true;
                               });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(tests, 2);

  seen = 0;
  registry.ForEachPosCandidate(12345, {}, &tests,
                               [&seen](const PatternRegistry::CandidateMeta&,
                                       const RegisteredPattern&) {
                                 ++seen;
                                 return true;
                               });
  EXPECT_EQ(seen, 0);
}

TEST(RegistryTest, IValueModeDropsCutLists) {
  PatternRegistry registry(ResidualEquivAlgo::kIValue);
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 1), 5, 0, 1.0,
                         {{0, 1}, {0, 2}}));
  std::int64_t tests = 0;
  registry.ForEachPosCandidate(5, {}, &tests,
                               [](const PatternRegistry::CandidateMeta&,
                                  const RegisteredPattern& e) {
                                 EXPECT_TRUE(e.pos_cuts.empty());
                                 return true;
                               });
}

TEST(RegistryTest, LinearScanComparesCutLists) {
  PatternRegistry registry(ResidualEquivAlgo::kLinearScan);
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 1), 5, 0, 1.0, {{0, 1}}));
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 2), 7, 0, 2.0, {{0, 2}}));

  std::int64_t tests = 0;
  int seen = 0;
  // Linear scan ignores the i-value argument and walks every entry.
  registry.ForEachPosCandidate(/*pos_i_value=*/-1, {{0, 2}}, &tests,
                               [&seen](const PatternRegistry::CandidateMeta&,
                                       const RegisteredPattern& e) {
                                 ++seen;
                                 EXPECT_EQ(e.pos_i_value, 7);
                                 return true;
                               });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(tests, 2);  // every stored entry compared
}

TEST(RegistryTest, EarlyStopOnFalseReturn) {
  PatternRegistry registry(ResidualEquivAlgo::kIValue);
  for (int i = 0; i < 5; ++i) {
    registry.Add(MakeEntry(Pattern::SingleEdge(0, i), 1, 0, i));
  }
  std::int64_t tests = 0;
  int seen = 0;
  registry.ForEachPosCandidate(1, {}, &tests,
                               [&seen](const PatternRegistry::CandidateMeta&,
                                       const RegisteredPattern&) {
                                 ++seen;
                                 return seen < 2;
                               });
  EXPECT_EQ(seen, 2);
}

TEST(RegistryTest, SizeCounts) {
  PatternRegistry registry(ResidualEquivAlgo::kIValue);
  EXPECT_EQ(registry.size(), 0u);
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 1), 1, 0, 0.0));
  registry.Add(MakeEntry(Pattern::SingleEdge(0, 2), 2, 0, 0.0));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, AbsorbAppendsInRegistrationOrder) {
  // Absorbing a thread-local registry must behave exactly as if its
  // entries had been Add()ed after the committed ones: same candidate
  // sequence per I-value bucket, absorbed entries last.
  PatternRegistry committed(ResidualEquivAlgo::kIValue);
  committed.Add(MakeEntry(Pattern::SingleEdge(0, 1), 10, 0, 1.0));
  committed.Add(MakeEntry(Pattern::SingleEdge(0, 2), 99, 0, 2.0));

  PatternRegistry local(ResidualEquivAlgo::kIValue);
  local.Add(MakeEntry(Pattern::SingleEdge(1, 2), 10, 7, 3.0));
  local.Add(MakeEntry(Pattern::SingleEdge(1, 3), 10, 8, 4.0));

  committed.Absorb(std::move(local));
  EXPECT_EQ(committed.size(), 4u);
  EXPECT_EQ(local.size(), 0u);

  std::int64_t tests = 0;
  std::vector<double> branch_bests;
  committed.ForEachPosCandidate(
      10, {}, &tests,
      [&branch_bests](const PatternRegistry::CandidateMeta& meta,
                      const RegisteredPattern& entry) {
        branch_bests.push_back(meta.branch_best);
        EXPECT_EQ(meta.branch_best, entry.branch_best);
        return true;
      });
  EXPECT_EQ(branch_bests, (std::vector<double>{1.0, 3.0, 4.0}));
  EXPECT_EQ(tests, 3);
}

TEST(RegistryTest, AbsorbLinearScanKeepsCutLists) {
  std::vector<std::pair<std::int32_t, EdgePos>> cuts = {{0, 3}, {1, 5}};
  PatternRegistry committed(ResidualEquivAlgo::kLinearScan);
  committed.Add(MakeEntry(Pattern::SingleEdge(0, 1), 1, 0, 1.0, cuts));
  PatternRegistry local(ResidualEquivAlgo::kLinearScan);
  local.Add(MakeEntry(Pattern::SingleEdge(0, 2), 2, 0, 2.0, cuts));
  local.Add(MakeEntry(Pattern::SingleEdge(0, 3), 3, 0, 3.0, {{2, 9}}));

  committed.Absorb(std::move(local));

  // LinearScan matches on the materialized cut lists, which must survive
  // the merge.
  std::int64_t tests = 0;
  int seen = 0;
  committed.ForEachPosCandidate(
      0, cuts, &tests,
      [&seen](const PatternRegistry::CandidateMeta&,
              const RegisteredPattern&) {
        ++seen;
        return true;
      });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(tests, 3);  // every stored entry compared
}

TEST(RegistryTest, AbsorbEmptyIsNoOp) {
  PatternRegistry committed(ResidualEquivAlgo::kIValue);
  committed.Add(MakeEntry(Pattern::SingleEdge(0, 1), 10, 0, 1.0));
  PatternRegistry empty(ResidualEquivAlgo::kIValue);
  committed.Absorb(std::move(empty));
  EXPECT_EQ(committed.size(), 1u);
}

}  // namespace
}  // namespace tgm
