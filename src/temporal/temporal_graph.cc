#include "temporal/temporal_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "temporal/flat_index.h"

namespace tgm {

NodeId TemporalGraph::AddNode(LabelId label) {
  TGM_CHECK(!finalized_);
  TGM_CHECK(label >= 0);
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void TemporalGraph::AddEdge(NodeId src, NodeId dst, Timestamp ts,
                            LabelId elabel) {
  TGM_CHECK(!finalized_);
  TGM_CHECK(src >= 0 && static_cast<std::size_t>(src) < node_labels_.size());
  TGM_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < node_labels_.size());
  TGM_CHECK(ts >= 0);
  edges_.push_back(TemporalEdge{src, dst, ts, elabel});
}

std::int64_t TemporalGraph::PackSignature(LabelId src_label, LabelId dst_label,
                                          LabelId elabel) {
  // Labels are dense and well below 2^21 in practice; pack into one int64.
  return (static_cast<std::int64_t>(src_label) << 42) ^
         (static_cast<std::int64_t>(dst_label) << 21) ^
         static_cast<std::int64_t>(elabel);
}

void TemporalGraph::Finalize(TiePolicy policy) {
  TGM_CHECK(!finalized_);
  // Stable sort keeps insertion order among equal timestamps, which is the
  // kBreakByInsertionOrder sequentialization policy.
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.ts < b.ts;
                   });
  if (policy == TiePolicy::kRequireStrict) {
    for (std::size_t i = 1; i < edges_.size(); ++i) {
      TGM_CHECK(edges_[i - 1].ts < edges_[i].ts);
    }
  }
  finalized_ = true;

  const std::size_t n = node_labels_.size();
  const std::size_t m = edges_.size();

  // CSR adjacency via counting sort: degree histogram, exclusive prefix
  // sum, then a fill pass in ascending edge position so every node's run
  // comes out ascending.
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const TemporalEdge& e : edges_) {
    ++out_offsets_[static_cast<std::size_t>(e.src) + 1];
    ++in_offsets_[static_cast<std::size_t>(e.dst) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_csr_.resize(m);
  in_csr_.resize(m);
  std::vector<std::int32_t> out_next(out_offsets_.begin(),
                                     out_offsets_.end() - 1);
  std::vector<std::int32_t> in_next(in_offsets_.begin(),
                                    in_offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const TemporalEdge& e = edges_[i];
    EdgePos pos = static_cast<EdgePos>(i);
    out_csr_[static_cast<std::size_t>(
        out_next[static_cast<std::size_t>(e.src)]++)] = pos;
    in_csr_[static_cast<std::size_t>(
        in_next[static_cast<std::size_t>(e.dst)]++)] = pos;
  }

  // Label incidence: (label, position) pairs, sorted by (label, position).
  // Generating both endpoints per edge can duplicate (label, pos) when the
  // endpoints share a label; dedupe so binary searches over a run see
  // strictly ascending positions.
  std::vector<std::pair<LabelId, EdgePos>> label_pairs;
  label_pairs.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    const TemporalEdge& e = edges_[i];
    EdgePos pos = static_cast<EdgePos>(i);
    label_pairs.emplace_back(node_labels_[static_cast<std::size_t>(e.src)],
                             pos);
    label_pairs.emplace_back(node_labels_[static_cast<std::size_t>(e.dst)],
                             pos);
  }
  std::sort(label_pairs.begin(), label_pairs.end());
  label_pairs.erase(std::unique(label_pairs.begin(), label_pairs.end()),
                    label_pairs.end());
  GroupSortedPairs(label_pairs, label_keys_, label_offsets_, label_csr_);

  // Signature index: one (packed signature, position) pair per edge.
  std::vector<std::pair<std::int64_t, EdgePos>> sig_pairs;
  sig_pairs.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const TemporalEdge& e = edges_[i];
    sig_pairs.emplace_back(
        PackSignature(node_labels_[static_cast<std::size_t>(e.src)],
                      node_labels_[static_cast<std::size_t>(e.dst)],
                      e.elabel),
        static_cast<EdgePos>(i));
  }
  std::sort(sig_pairs.begin(), sig_pairs.end());
  GroupSortedPairs(sig_pairs, sig_keys_, sig_offsets_, sig_csr_);
}

EdgePosSpan TemporalGraph::out_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) + 1 < out_offsets_.size());
  std::size_t u = static_cast<std::size_t>(v);
  return EdgePosSpan(
      out_csr_.data() + out_offsets_[u],
      static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u]));
}

EdgePosSpan TemporalGraph::in_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) + 1 < in_offsets_.size());
  std::size_t u = static_cast<std::size_t>(v);
  return EdgePosSpan(
      in_csr_.data() + in_offsets_[u],
      static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u]));
}

bool TemporalGraph::LabelOccursAfter(LabelId l, EdgePos pos) const {
  TGM_CHECK(finalized_);
  EdgePosSpan positions = LookupCsr(label_keys_, label_offsets_, label_csr_, l);
  return !positions.empty() && positions.back() > pos;
}

EdgePosSpan TemporalGraph::EdgesWithSignature(LabelId src_label,
                                              LabelId dst_label,
                                              LabelId elabel) const {
  TGM_CHECK(finalized_);
  return LookupCsr(sig_keys_, sig_offsets_, sig_csr_,
                   PackSignature(src_label, dst_label, elabel));
}

EdgePosSpan TemporalGraph::LabelPositions(LabelId l) const {
  TGM_CHECK(finalized_);
  return LookupCsr(label_keys_, label_offsets_, label_csr_, l);
}

bool TemporalGraph::IsTConnected() const {
  TGM_CHECK(finalized_);
  if (edges_.empty()) return true;
  // Union-find over nodes, adding edges in temporal order. The prefix up to
  // edge i is connected iff after adding edge i the number of components
  // among *touched* nodes is exactly one.
  std::vector<NodeId> parent(node_labels_.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::int64_t touched = 0;
  std::int64_t components = 0;
  std::vector<bool> seen(node_labels_.size(), false);
  for (const TemporalEdge& e : edges_) {
    for (NodeId v : {e.src, e.dst}) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++touched;
        ++components;
      }
    }
    NodeId a = find(e.src);
    NodeId b = find(e.dst);
    if (a != b) {
      parent[static_cast<std::size_t>(a)] = b;
      --components;
    }
    if (components != 1) return false;
  }
  (void)touched;
  return true;
}

Timestamp TemporalGraph::Span() const {
  if (edges_.size() < 2) return 0;
  return edges_.back().ts - edges_.front().ts;
}

std::vector<LabelId> TemporalGraph::DistinctNodeLabels() const {
  std::vector<LabelId> labels = node_labels_;
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

std::string TemporalGraph::ToString(const LabelDict* dict) const {
  std::ostringstream os;
  auto name = [&](LabelId l) -> std::string {
    if (dict != nullptr) return dict->Name(l);
    return "L" + std::to_string(l);
  };
  os << "TemporalGraph{" << node_count() << " nodes, " << edge_count()
     << " edges\n";
  for (std::size_t v = 0; v < node_labels_.size(); ++v) {
    os << "  n" << v << ": " << name(node_labels_[v]) << "\n";
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const TemporalEdge& e = edges_[i];
    os << "  e" << i << ": n" << e.src << " -> n" << e.dst << " @" << e.ts;
    if (e.elabel != kNoEdgeLabel) os << " [" << name(e.elabel) << "]";
    os << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace tgm
