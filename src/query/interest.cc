#include "query/interest.h"

#include <algorithm>

namespace tgm {

bool InterestModel::IsBlacklisted(const std::string& name) {
  auto starts_with = [&name](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  return starts_with("file:/proc/") || starts_with("file:/tmp/") ||
         starts_with("file:/dev/") || starts_with("file:/usr/lib/locale") ||
         starts_with("file:/usr/share/zoneinfo") ||
         starts_with("file:/etc/localtime") || starts_with("<none>");
}

InterestModel::InterestModel(
    const std::vector<const std::vector<TemporalGraph>*>& graph_sets,
    const LabelDict& dict) {
  for (const std::vector<TemporalGraph>* set : graph_sets) {
    for (const TemporalGraph& g : *set) {
      for (LabelId l : g.DistinctNodeLabels()) {
        ++label_graph_count_[l];
      }
    }
  }
  blacklisted_.assign(dict.size(), false);
  for (std::size_t i = 0; i < dict.size(); ++i) {
    blacklisted_[i] = IsBlacklisted(dict.Name(static_cast<LabelId>(i)));
  }
}

double InterestModel::InterestOfLabel(LabelId l) const {
  if (l >= 0 && static_cast<std::size_t>(l) < blacklisted_.size() &&
      blacklisted_[static_cast<std::size_t>(l)]) {
    return 0.0;
  }
  auto it = label_graph_count_.find(l);
  if (it == label_graph_count_.end() || it->second == 0) return 1.0;
  return 1.0 / static_cast<double>(it->second);
}

double InterestModel::InterestOfPattern(const Pattern& p) const {
  double sum = 0.0;
  for (LabelId l : p.labels()) sum += InterestOfLabel(l);
  return sum;
}

std::vector<MinedPattern> SelectTopQueries(
    const std::vector<MinedPattern>& mined, const InterestModel& model,
    int top_n) {
  std::vector<MinedPattern> ranked = mined;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&model](const MinedPattern& a, const MinedPattern& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return model.InterestOfPattern(a.pattern) >
                            model.InterestOfPattern(b.pattern);
                   });
  if (static_cast<int>(ranked.size()) > top_n) {
    ranked.resize(static_cast<std::size_t>(top_n));
  }
  return ranked;
}

}  // namespace tgm
