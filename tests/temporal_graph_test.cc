#include "temporal/temporal_graph.h"

#include <gtest/gtest.h>

#include "temporal/label_dict.h"
#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  LabelId a = dict.Intern("proc:sshd");
  LabelId b = dict.Intern("proc:sshd");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.Name(a), "proc:sshd");
}

TEST(LabelDictTest, DistinctNamesGetDistinctIds) {
  LabelDict dict;
  LabelId a = dict.Intern("a");
  LabelId b = dict.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(LabelDictTest, LookupMissingReturnsInvalid) {
  LabelDict dict;
  EXPECT_EQ(dict.Lookup("missing"), kInvalidLabel);
  dict.Intern("present");
  EXPECT_NE(dict.Lookup("present"), kInvalidLabel);
}

TEST(TemporalGraphTest, NodesAndEdgesAreStored) {
  TemporalGraph g = MakeGraph({0, 1, 2}, {{0, 1, 10}, {1, 2, 20}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.label(0), 0);
  EXPECT_EQ(g.label(2), 2);
}

TEST(TemporalGraphTest, FinalizeSortsEdgesByTimestamp) {
  TemporalGraph g = MakeGraph({0, 1, 2}, {{1, 2, 30}, {0, 1, 10}, {0, 2, 20}});
  EXPECT_EQ(g.edge(0).ts, 10);
  EXPECT_EQ(g.edge(1).ts, 20);
  EXPECT_EQ(g.edge(2).ts, 30);
}

TEST(TemporalGraphTest, TiesBrokenByInsertionOrder) {
  TemporalGraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(0, 1, 10);
  g.AddEdge(1, 2, 10);
  g.Finalize(TiePolicy::kBreakByInsertionOrder);
  EXPECT_EQ(g.edge(0).src, 0);
  EXPECT_EQ(g.edge(1).src, 1);
}

TEST(TemporalGraphTest, OutAndInEdgesAreAscending) {
  TemporalGraph g =
      MakeGraph({0, 1, 2}, {{0, 1, 1}, {0, 2, 2}, {1, 0, 3}, {0, 1, 4}});
  const auto& out0 = g.out_edges(0);
  ASSERT_EQ(out0.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out0.begin(), out0.end()));
  EXPECT_EQ(g.in_edges(1).size(), 2u);
  EXPECT_EQ(g.out_degree(1), 1);
  EXPECT_EQ(g.in_degree(0), 1);
}

TEST(TemporalGraphTest, MultiEdgesAreAllowed) {
  TemporalGraph g = MakeGraph({0, 1}, {{0, 1, 1}, {0, 1, 2}, {0, 1, 3}});
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(0), 3);
}

TEST(TemporalGraphTest, LabelOccursAfterUsesIncidentPositions) {
  // Node labels: 0:A 1:B 2:C; edges (A->B)@1, (B->C)@2.
  TemporalGraph g = MakeGraph({0, 1, 2}, {{0, 1, 1}, {1, 2, 2}});
  EXPECT_TRUE(g.LabelOccursAfter(2, 0));   // C appears at position 1
  EXPECT_FALSE(g.LabelOccursAfter(0, 0));  // A only at position 0
  EXPECT_FALSE(g.LabelOccursAfter(2, 1));
  EXPECT_FALSE(g.LabelOccursAfter(99, 0));  // unknown label
}

TEST(TemporalGraphTest, SignatureIndexFindsEdges) {
  TemporalGraph g = MakeGraph({0, 1, 0}, {{0, 1, 1}, {2, 1, 2}, {1, 0, 3}});
  // Two edges have signature (0 -> 1): positions 0 and 1.
  const auto& hits = g.EdgesWithSignature(0, 1, kNoEdgeLabel);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0);
  EXPECT_EQ(hits[1], 1);
  EXPECT_TRUE(g.EdgesWithSignature(1, 1, kNoEdgeLabel).empty());
}

TEST(TemporalGraphTest, SignatureIndexDistinguishesEdgeLabels) {
  TemporalGraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddEdge(0, 1, 1, /*elabel=*/5);
  g.AddEdge(0, 1, 2, /*elabel=*/6);
  g.Finalize();
  EXPECT_EQ(g.EdgesWithSignature(0, 1, 5).size(), 1u);
  EXPECT_EQ(g.EdgesWithSignature(0, 1, 6).size(), 1u);
  EXPECT_TRUE(g.EdgesWithSignature(0, 1, 7).empty());
}

TEST(TemporalGraphTest, TConnectedExamplesFromPaperFigure3) {
  // G1 (Figure 3): A->B, B->C with multi-edges, all prefix-connected.
  TemporalGraph g1 =
      MakeGraph({0, 1, 2}, {{0, 1, 1}, {0, 1, 2}, {1, 2, 3}, {1, 2, 4}});
  EXPECT_TRUE(g1.IsTConnected());

  // G3-style: the edge at time 5 arrives after a disconnected prefix.
  TemporalGraph g3 =
      MakeGraph({0, 1, 2, 3}, {{0, 1, 1}, {2, 3, 2}, {1, 2, 5}});
  EXPECT_FALSE(g3.IsTConnected());
}

TEST(TemporalGraphTest, SingleEdgeIsTConnected) {
  TemporalGraph g = MakeGraph({0, 1}, {{0, 1, 1}});
  EXPECT_TRUE(g.IsTConnected());
}

TEST(TemporalGraphTest, EmptyGraphIsTConnected) {
  TemporalGraph g;
  g.Finalize();
  EXPECT_TRUE(g.IsTConnected());
}

TEST(TemporalGraphTest, SpanIsLastMinusFirst) {
  TemporalGraph g = MakeGraph({0, 1}, {{0, 1, 10}, {0, 1, 35}});
  EXPECT_EQ(g.Span(), 25);
  TemporalGraph single = MakeGraph({0, 1}, {{0, 1, 10}});
  EXPECT_EQ(single.Span(), 0);
}

TEST(TemporalGraphTest, DistinctNodeLabelsSortedUnique) {
  TemporalGraph g = MakeGraph({3, 1, 3, 2}, {{0, 1, 1}});
  std::vector<LabelId> labels = g.DistinctNodeLabels();
  EXPECT_EQ(labels, (std::vector<LabelId>{1, 2, 3}));
}

}  // namespace
}  // namespace tgm
