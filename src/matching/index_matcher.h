#ifndef TGM_MATCHING_INDEX_MATCHER_H_
#define TGM_MATCHING_INDEX_MATCHER_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "matching/matcher.h"

namespace tgm {

/// Graph-index based temporal subgraph tester — the `PruneGI` ablation
/// baseline of Figure 13, modelled on the one-edge-substructure indexing +
/// partial-match joining of [38] (Zong et al., ICDE'14).
///
/// For each test the target pattern is indexed by one-edge signature
/// (source label, destination label, edge label) -> temporally ordered edge
/// positions. The query's edges are then joined in temporal order: a
/// partial match is a (node map, last matched position) pair, and each join
/// step extends all partials with every compatible indexed edge at a later
/// position. Keeping the full frontier of partial matches is what makes
/// this approach memory- and time-hungry during mining, where targets are
/// small but tests are issued millions of times — the effect the paper
/// reports as "frequently building graph indexes ... involves high
/// overhead". Indexes are cached per target pattern to be fair.
class IndexMatcher : public TemporalSubgraphTester {
 public:
  bool Contains(const Pattern& small, const Pattern& big) override;
  std::optional<std::vector<NodeId>> FindMapping(const Pattern& small,
                                                 const Pattern& big) override;

  /// Number of one-edge indexes built so far (overhead counter).
  std::int64_t indexes_built() const { return indexes_built_; }

 private:
  struct EdgeIndex {
    // Sorted-key CSR: signature keys_[k]'s ascending positions in the
    // target's edge list are csr_[offsets_[k] .. offsets_[k+1]). Binary
    // searched on lookup — targets are small patterns, so three flat
    // arrays beat a hash map both to build and to probe.
    std::vector<std::int64_t> keys;
    std::vector<std::int32_t> offsets;
    std::vector<EdgePos> csr;

    /// Positions under `signature`, empty when absent.
    std::span<const EdgePos> Lookup(std::int64_t signature) const;
  };
  struct Partial {
    std::vector<NodeId> map;  // small node -> big node (kInvalidNode if not)
    std::vector<bool> used;   // big node used
    EdgePos last = -1;
  };

  const EdgeIndex& GetIndex(const Pattern& big);
  static std::int64_t Signature(LabelId src_label, LabelId dst_label,
                                LabelId elabel);

  std::unordered_map<Pattern, EdgeIndex, PatternHash> index_cache_;
  std::int64_t indexes_built_ = 0;
};

}  // namespace tgm

#endif  // TGM_MATCHING_INDEX_MATCHER_H_
