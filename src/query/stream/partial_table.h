#ifndef TGM_QUERY_STREAM_PARTIAL_TABLE_H_
#define TGM_QUERY_STREAM_PARTIAL_TABLE_H_

#include <cstdint>
#include <queue>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "temporal/common.h"

namespace tgm {

/// Storage for one query's live partial matches, organised for O(touched)
/// per-event work instead of O(live):
///
/// - **Slot arena.** Partial metadata lives in a flat slot vector and all
///   bindings in one `slots x node_count` array (every partial of a query
///   has the same binding width), so steady-state insert/remove recycles
///   slots and never allocates.
/// - **Entity-keyed index.** Each partial is filed under the concrete
///   entity its next unmatched edge requires: the bound source entity if
///   the transition's source slot is bound, else the bound destination
///   entity, else a wildcard bucket (canonical consecutive growth makes
///   the wildcard reachable only by edge 0, but the bucket keeps the
///   structure total). An event then probes exactly
///   `by_src[event.src] ∪ by_dst[event.dst] ∪ wildcard` — the only
///   partials that can possibly extend — instead of scanning all of them.
///   The three sources are disjoint by construction, so no partial is
///   probed twice. With `entity_index = false` everything is filed under
///   the wildcard bucket, which *is* the legacy full-scan path (used as
///   the bench baseline).
/// - **Age order.** A min-heap keyed by (first_ts, insertion seq) drives
///   both window expiry (pop while older than the cutoff) and
///   backpressure eviction (pop the oldest), replacing the full
///   compaction scan the old monitor ran per event. Partials are only
///   ever removed through this heap, so it needs no lazy deletion.
///
/// Bucket iteration order is insertion order (swap-removal perturbs it
/// deterministically), so every operation is a pure function of the event
/// history — the basis of the engine's cross-shard determinism.
class PartialTable {
 public:
  enum class Role : std::uint8_t { kSrc, kDst, kWildcard };

  PartialTable(std::size_t node_count, bool entity_index)
      : node_count_(node_count), entity_index_(entity_index) {}

  std::size_t live() const { return live_; }
  /// High-water mark of live partials.
  std::size_t peak() const { return peak_; }
  /// Occupied entity buckets (excluding the wildcard bucket).
  std::size_t bucket_count() const { return by_src_.size() + by_dst_.size(); }
  std::size_t wildcard_size() const { return wildcard_.size(); }

  std::span<const std::int64_t> binding(std::uint32_t slot) const {
    return {bindings_.data() + slot * node_count_, node_count_};
  }
  std::uint32_t next_edge(std::uint32_t slot) const {
    return meta_[slot].next_edge;
  }
  Timestamp first_ts(std::uint32_t slot) const { return meta_[slot].first_ts; }

  /// Appends the slots an event (src_entity, dst_entity) can possibly
  /// extend, in deterministic bucket order (by_src, by_dst, wildcard).
  void CollectCandidates(std::int64_t src_entity, std::int64_t dst_entity,
                         std::vector<std::uint32_t>* out) const;

  /// Files a new partial; `binding` must have node_count entries. `role`
  /// and `key` describe where the *next* transition requires it (with the
  /// index disabled the role is forced to wildcard).
  std::uint32_t Insert(std::span<const std::int64_t> binding,
                       std::uint32_t next_edge, Timestamp first_ts,
                       Role role, std::int64_t key);

  /// Removes every partial with first_ts < cutoff (window expiry).
  void ExpireBefore(Timestamp cutoff);

  /// Removes the oldest partial — smallest (first_ts, insertion seq).
  /// Requires live() > 0.
  void EvictOldest();

 private:
  struct Meta {
    std::uint32_t next_edge = 0;
    Timestamp first_ts = 0;
    Role role = Role::kWildcard;
    std::int64_t key = 0;
    std::uint32_t bucket_pos = 0;
    std::uint64_t seq = 0;
  };
  // (first_ts, insertion seq, slot); seq makes the order total and
  // deterministic under first_ts ties.
  using AgeKey = std::tuple<Timestamp, std::uint64_t, std::uint32_t>;

  std::vector<std::uint32_t>& BucketFor(Role role, std::int64_t key);
  void Remove(std::uint32_t slot);

  std::size_t node_count_;
  bool entity_index_;
  std::vector<Meta> meta_;
  std::vector<std::int64_t> bindings_;  // slots x node_count_
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> by_src_;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> by_dst_;
  std::vector<std::uint32_t> wildcard_;
  std::priority_queue<AgeKey, std::vector<AgeKey>, std::greater<AgeKey>>
      by_age_;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_PARTIAL_TABLE_H_
