#include "exec/work_stealing.h"

#include <chrono>
#include <utility>

namespace tgm {
namespace {

/// Bounded parking interval for join waits, matching the SpscQueue
/// discipline: a wakeup lost to the sleeper-probe race costs at most one
/// timeout, never a hang. Joins are latency-critical (a helping thread
/// re-probes the backlog on every wake), so their bound stays tight.
constexpr std::chrono::microseconds kParkTimeout{500};

/// Idle workers park much longer: Enqueue notifies through the sleeper
/// counter and the worker re-probes every queue after registering as a
/// sleeper, so the timeout only backstops the residual probe/park race.
/// A long bound keeps an oversubscribed host from burning cycles on
/// idle-worker wake/scan churn.
constexpr std::chrono::milliseconds kIdleParkTimeout{10};

/// Worker identity: which scheduler (if any) owns the current thread, and
/// its deque index there. Lets Enqueue route nested tasks to the local
/// deque and lets helping joins start their steal scan at the right place.
struct WorkerTls {
  StealScheduler* sched = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

}  // namespace

// ---------------------------------------------------------------------------
// TaskGroup

void TaskGroup::Run(std::function<void()> fn) {
  if (sched_ == nullptr || sched_->num_workers() == 0) {
    // Serial configuration: execute on the caller, but keep the error
    // contract identical to the scheduled path.
    try {
      fn();
    } catch (...) {
      RecordError();
    }
    return;
  }
  {
    MutexLock lock(wait_mu_);
    ++pending_;
  }
  sched_->Enqueue(std::move(fn), this);
}

void TaskGroup::Wait() {
  WaitNoRethrow();
  RethrowIfError();
}

void TaskGroup::WaitNoRethrow() {
  for (;;) {
    {
      MutexLock lock(wait_mu_);
      if (pending_ == 0) return;
    }
    // Work the backlog instead of sleeping. The task we pick up may itself
    // reach a nested Wait() and help recursively — depth-first, exactly the
    // order a serial execution would use.
    if (HelpOne()) continue;
    ParkUntilProgress();
  }
}

bool TaskGroup::HelpOne() { return sched_->RunOneTask(); }

void TaskGroup::ParkUntilProgress() {
  MutexLock lock(wait_mu_);
  if (pending_ == 0) return;
  done_cv_.WaitFor(lock, kParkTimeout);
}

void TaskGroup::OnTaskFinished() {
  MutexLock lock(wait_mu_);
  if (--pending_ == 0) done_cv_.NotifyAll();
}

void TaskGroup::RecordError() {
  MutexLock lock(err_mu_);
  if (!error_) error_ = std::current_exception();
}

void TaskGroup::RethrowIfError() {
  std::exception_ptr err;
  {
    MutexLock lock(err_mu_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

std::string TaskGroup::CheckInvariants(bool quiescent) const {
  MutexLock lock(wait_mu_);
  if (pending_ < 0) {
    return "TaskGroup pending count negative: " + std::to_string(pending_);
  }
  if (quiescent && pending_ != 0) {
    return "quiescent TaskGroup has " + std::to_string(pending_) +
           " pending tasks";
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// StealScheduler

StealScheduler::StealScheduler(int num_workers)
    : deques_(static_cast<std::size_t>(num_workers > 0 ? num_workers : 0)) {
  workers_.reserve(deques_.size());
  for (int i = 0; i < static_cast<int>(deques_.size()); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StealScheduler::~StealScheduler() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  // Zero-worker schedulers ran everything inline; nothing can be queued.
  // With workers, WorkerLoop drained all deques before exiting.
}

void StealScheduler::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    ++tasks_enqueued_;
    Task t{std::move(task), nullptr};
    Execute(t);
    return;
  }
  Enqueue(std::move(task), nullptr);
}

void StealScheduler::Enqueue(std::function<void()> fn, TaskGroup* group) {
  ++tasks_enqueued_;
  Task t{std::move(fn), group};
  if (tls_worker.sched == this && tls_worker.index >= 0 &&
      tls_worker.index < static_cast<int>(deques_.size())) {
    // Nested spawn from a pool worker: keep it local (LIFO) so the owner
    // runs it next while thieves can still take it from the top.
    deques_[static_cast<std::size_t>(tls_worker.index)].PushBottom(
        std::move(t));
  } else {
    injector_.PushBottom(std::move(t));
  }
  NotifyIfSleeping();
}

void StealScheduler::NotifyIfSleeping() {
  if (sleepers_.load(std::memory_order_acquire) == 0) return;
  MutexLock lock(mu_);
  cv_.NotifyOne();
}

bool StealScheduler::AnyWorkApprox() const {
  if (injector_.SizeApprox() != 0) return true;
  for (const WorkDeque<Task>& dq : deques_) {
    if (dq.SizeApprox() != 0) return true;
  }
  return false;
}

bool StealScheduler::AcquireTask(int self, Task* out) {
  const std::size_t n = deques_.size();
  if (self >= 0 && static_cast<std::size_t>(self) < n &&
      deques_[static_cast<std::size_t>(self)].TryPopBottom(out)) {
    return true;
  }
  if (injector_.TrySteal(out)) return true;
  if (n == 0) return false;
  const std::size_t start =
      self >= 0 ? static_cast<std::size_t>(self) + 1 : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (self >= 0 && victim == static_cast<std::size_t>(self)) continue;
    if (deques_[victim].TrySteal(out)) return true;
  }
  return false;
}

bool StealScheduler::RunOneTask() {
  const int self = tls_worker.sched == this ? tls_worker.index : -1;
  Task t;
  if (!AcquireTask(self, &t)) return false;
  Execute(t);
  return true;
}

void StealScheduler::Execute(Task& t) {
  if (t.group != nullptr) {
    try {
      t.fn();
    } catch (...) {
      t.group->RecordError();
    }
  } else {
    // Detached tasks have nowhere to report; exceptions escaping them
    // would terminate a worker, so the contract is "must not throw" and a
    // violation surfaces loudly.
    t.fn();
  }
  // Drop captured state before the completion becomes visible: a waiter
  // observing pending_ == 0 may immediately destroy objects the closure
  // still references.
  t.fn = nullptr;
  tasks_executed_.fetch_add(1, std::memory_order_release);
  if (t.group != nullptr) t.group->OnTaskFinished();
}

void StealScheduler::WorkerLoop(int index) {
  tls_worker.sched = this;
  tls_worker.index = index;
  bool stopping = false;
  for (;;) {
    Task t;
    if (AcquireTask(index, &t)) {
      Execute(t);
      continue;
    }
    if (stopping) break;  // stop observed and the whole pool scanned empty
    MutexLock lock(mu_);
    if (stop_) {
      // One more full acquire pass after observing stop so queued detached
      // tasks are drained, matching the old pool's drain-on-stop contract.
      stopping = true;
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    // Re-probe after publishing the sleeper registration: an Enqueue that
    // missed it (raced the registration) has already pushed its task, so
    // the size mirrors are non-zero here and the park is skipped. The
    // bounded timeout covers whatever interleaving slips past the probe.
    if (!AnyWorkApprox()) cv_.WaitFor(lock, kIdleParkTimeout);
    sleepers_.fetch_sub(1, std::memory_order_release);
  }
  tls_worker.sched = nullptr;
  tls_worker.index = -1;
}

std::string StealScheduler::CheckInvariants(bool quiescent) const {
  std::size_t queued = 0;
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    std::string err = deques_[i].CheckInvariants();
    if (!err.empty()) return "deque " + std::to_string(i) + ": " + err;
    queued += deques_[i].SizeApprox();
  }
  {
    std::string err = injector_.CheckInvariants();
    if (!err.empty()) return "injector: " + err;
    queued += injector_.SizeApprox();
  }
  const int sleepers = sleepers_.load(std::memory_order_acquire);
  if (sleepers < 0 || sleepers > static_cast<int>(workers_.size())) {
    return "sleeper count " + std::to_string(sleepers) + " outside [0, " +
           std::to_string(workers_.size()) + "]";
  }
  if (quiescent) {
    const std::int64_t executed =
        tasks_executed_.load(std::memory_order_acquire);
    const std::int64_t enqueued =
        tasks_enqueued_.load(std::memory_order_acquire);
    const std::int64_t backlog = enqueued - executed;
    if (backlog != static_cast<std::int64_t>(queued)) {
      return "task accounting mismatch: enqueued " + std::to_string(enqueued) +
             " - executed " + std::to_string(executed) + " != queued " +
             std::to_string(queued);
    }
  }
  return std::string();
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace tgm
