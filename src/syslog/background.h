#ifndef TGM_SYSLOG_BACKGROUND_H_
#define TGM_SYSLOG_BACKGROUND_H_

#include <random>

#include "syslog/behaviors.h"
#include "syslog/script.h"

namespace tgm {

/// Generates one background-activity script (Appendix L: the closed
/// environment running only default applications, none of the target
/// behaviours).
///
/// The stream mixes:
///  - daemon processes doing randomized reads/writes/socket traffic over
///    the *same label pools the behaviours use* (so single edges and small
///    label sets are non-discriminative — the Figure 11 effect),
///  - rare per-graph labels (documents, caches) so the background label
///    universe dwarfs each behaviour's (Table 1's 9065 background labels),
///  - with probability `decoy_prob` per behaviour, one *order-shuffled*
///    instance of that behaviour: identical static structure and labels,
///    destroyed temporal order. Decoys are what separate TGMiner from the
///    Ntemp/NodeSet baselines in Table 2 — a non-temporal pattern or label
///    set cannot tell a decoy from the real thing.
InstanceScript GenerateBackground(SyslogWorld& world, std::mt19937_64& rng,
                                  const GenOptions& options,
                                  double decoy_prob);

}  // namespace tgm

#endif  // TGM_SYSLOG_BACKGROUND_H_
