// Layer 'high' of the fixture DAG.
#ifndef TGM_LINT_FIXTURE_HIGH_API_H_
#define TGM_LINT_FIXTURE_HIGH_API_H_

namespace lintfix {
int ApiEntry();
}  // namespace lintfix

#endif
