# Empty dependencies file for csr_parity_test.
# This may be replaced when dependencies are built.
