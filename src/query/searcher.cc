#include "query/searcher.h"

#include <algorithm>
#include <limits>
#include <set>

namespace tgm {

struct TemporalQuerySearcher::SearchContext {
  const Pattern* query = nullptr;
  const TemporalConstraints* constraints = nullptr;
  const TemporalGraph* log = nullptr;
  const Options* options = nullptr;
  /// min(options->window, constraint deadline); the span bound actually
  /// enforced (0 = unbounded).
  Timestamp window = 0;
  /// Any non-trivial guard present (skips the guard checks entirely on the
  /// plain-pattern path).
  bool constrained = false;
  std::vector<std::size_t> plan;     // order in which pattern edges bind
  std::vector<NodeId> node_map;      // pattern node -> data node
  std::vector<bool> used;            // data node bound
  std::vector<EdgePos> pos_of;       // pattern edge -> data position (-1)
  std::int64_t raw_matches = 0;
  bool stop = false;
  std::set<Interval> intervals;

  /// The accept test of pattern edge k: its own label or a guard
  /// alternative (alternatives are normalized sorted).
  bool AcceptsLabel(std::size_t k, LabelId label) const {
    if (label == query->edge(k).elabel) return true;
    const std::vector<LabelId>& alts = constraints->guard(k).elabel_alts;
    return !alts.empty() &&
           std::binary_search(alts.begin(), alts.end(), label);
  }

  /// Timed-automata guards of binding pattern edge k to a data edge at
  /// `ts`, against every already-bound neighbour: the gap guards on both
  /// sides (positions — and thus timestamps — are ascending in pattern
  /// order, so adjacent deltas are the edge gaps) and the since-seed
  /// guards (re-checked for all bound edges when the seed itself binds
  /// last, in the descending phase).
  bool GuardsAdmit(std::size_t k, Timestamp ts) const {
    const std::size_t num_edges = query->edge_count();
    const TransitionGuard& g = constraints->guard(k);
    if (k > 0 && pos_of[k - 1] >= 0) {
      const Timestamp gap = ts - log->edge(pos_of[k - 1]).ts;
      if (gap < g.min_gap) return false;
      if (g.max_gap != kNoGapLimit && gap > g.max_gap) return false;
    }
    if (k + 1 < num_edges && pos_of[k + 1] >= 0) {
      const TransitionGuard& gn = constraints->guard(k + 1);
      const Timestamp gap = log->edge(pos_of[k + 1]).ts - ts;
      if (gap < gn.min_gap) return false;
      if (gn.max_gap != kNoGapLimit && gap > gn.max_gap) return false;
    }
    if (k > 0) {
      if (pos_of[0] >= 0) {
        const Timestamp since = ts - log->edge(pos_of[0]).ts;
        if (since < g.min_since_seed) return false;
        if (g.max_since_seed != kNoGapLimit && since > g.max_since_seed) {
          return false;
        }
      }
    } else {
      for (std::size_t j = 1; j < num_edges; ++j) {
        if (pos_of[j] < 0) continue;
        const TransitionGuard& gj = constraints->guard(j);
        const Timestamp since = log->edge(pos_of[j]).ts - ts;
        if (since < gj.min_since_seed) return false;
        if (gj.max_since_seed != kNoGapLimit && since > gj.max_since_seed) {
          return false;
        }
      }
    }
    return true;
  }
};

void TemporalQuerySearcher::Extend(SearchContext& ctx,
                                   std::size_t step) const {
  if (ctx.stop) return;
  const Pattern& query = *ctx.query;
  const TemporalGraph& log = *ctx.log;
  std::size_t num_edges = query.edge_count();
  if (step == ctx.plan.size()) {
    ++ctx.raw_matches;
    Interval interval{log.edge(ctx.pos_of[0]).ts,
                      log.edge(ctx.pos_of[num_edges - 1]).ts};
    ctx.intervals.insert(interval);
    if (ctx.options->max_matches > 0 &&
        ctx.raw_matches >= ctx.options->max_matches) {
      ctx.stop = true;
    }
    return;
  }

  std::size_t k = ctx.plan[step];
  const PatternEdge& qe = query.edge(k);
  bool ascending = k == 0 || ctx.pos_of[k - 1] >= 0;

  // Position bounds from the already-bound neighbours in pattern order.
  EdgePos lo = -1;
  EdgePos hi = std::numeric_limits<EdgePos>::max();
  if (k > 0 && ctx.pos_of[k - 1] >= 0) lo = ctx.pos_of[k - 1];
  if (k + 1 < num_edges && ctx.pos_of[k + 1] >= 0) hi = ctx.pos_of[k + 1];

  Timestamp min_ts = std::numeric_limits<Timestamp>::max();
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  for (std::size_t i = 0; i < num_edges; ++i) {
    if (ctx.pos_of[i] < 0) continue;
    Timestamp ts = log.edge(ctx.pos_of[i]).ts;
    min_ts = std::min(min_ts, ts);
    max_ts = std::max(max_ts, ts);
  }

  NodeId ms = ctx.node_map[static_cast<std::size_t>(qe.src)];
  NodeId md = ctx.node_map[static_cast<std::size_t>(qe.dst)];

  auto try_position = [&](EdgePos p) {
    if (ctx.stop) return;
    if (p <= lo || p >= hi) return;
    const TemporalEdge& de = log.edge(p);
    if (ctx.constrained ? !ctx.AcceptsLabel(k, de.elabel)
                        : de.elabel != qe.elabel) {
      return;
    }
    if (ctx.window > 0) {
      Timestamp new_min = std::min(min_ts, de.ts);
      Timestamp new_max = std::max(max_ts, de.ts);
      if (new_max - new_min > ctx.window) return;
    }
    if (ctx.constrained && !ctx.GuardsAdmit(k, de.ts)) return;
    if ((qe.src == qe.dst) != (de.src == de.dst)) return;
    if (ms != kInvalidNode && de.src != ms) return;
    if (md != kInvalidNode && de.dst != md) return;
    if (ms == kInvalidNode) {
      if (log.label(de.src) != query.label(qe.src)) return;
      if (ctx.used[static_cast<std::size_t>(de.src)]) return;
    }
    if (md == kInvalidNode && qe.src != qe.dst) {
      if (log.label(de.dst) != query.label(qe.dst)) return;
      if (ctx.used[static_cast<std::size_t>(de.dst)]) return;
      if (ms == kInvalidNode && de.src == de.dst) return;
    }
    bool bound_src = false;
    bool bound_dst = false;
    if (ms == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.src)] = de.src;
      ctx.used[static_cast<std::size_t>(de.src)] = true;
      bound_src = true;
    }
    if (qe.src != qe.dst &&
        ctx.node_map[static_cast<std::size_t>(qe.dst)] == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = de.dst;
      ctx.used[static_cast<std::size_t>(de.dst)] = true;
      bound_dst = true;
    }
    ctx.pos_of[k] = p;
    Extend(ctx, step + 1);
    ctx.pos_of[k] = -1;
    if (bound_dst) {
      ctx.used[static_cast<std::size_t>(de.dst)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = kInvalidNode;
    }
    if (bound_src) {
      ctx.used[static_cast<std::size_t>(de.src)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.src)] = kInvalidNode;
    }
  };

  // Scans one ascending position list (adjacency or signature index).
  // Lists are ascending in position (and thus in timestamp), so window
  // violations terminate the scan early in the scan direction.
  auto scan = [&](EdgePosSpan positions) {
    if (ascending) {
      auto it = std::upper_bound(positions.begin(), positions.end(), lo);
      for (; it != positions.end() && !ctx.stop; ++it) {
        if (*it >= hi) break;
        if (ctx.window > 0 &&
            max_ts != std::numeric_limits<Timestamp>::min() &&
            log.edge(*it).ts - min_ts > ctx.window) {
          break;  // positions only get later; no candidate can fit
        }
        try_position(*it);
      }
    } else {
      auto it = std::lower_bound(positions.begin(), positions.end(), hi);
      while (it != positions.begin() && !ctx.stop) {
        --it;
        if (*it <= lo) break;
        if (ctx.window > 0 &&
            min_ts != std::numeric_limits<Timestamp>::max() &&
            max_ts - log.edge(*it).ts > ctx.window) {
          break;  // positions only get earlier
        }
        try_position(*it);
      }
    }
  };

  // Candidate list selection: adjacency when an endpoint is bound (one
  // list covering every label; try_position filters), signature index
  // otherwise (one list per accepted edge label — the pattern label plus
  // any guard alternatives).
  if (ms != kInvalidNode) {
    scan(log.out_edges(ms));
  } else if (md != kInvalidNode) {
    scan(log.in_edges(md));
  } else {
    scan(log.EdgesWithSignature(query.label(qe.src), query.label(qe.dst),
                                qe.elabel));
    if (ctx.constrained) {
      for (LabelId alt : ctx.constraints->guard(k).elabel_alts) {
        if (alt == qe.elabel || ctx.stop) continue;
        scan(log.EdgesWithSignature(query.label(qe.src),
                                    query.label(qe.dst), alt));
      }
    }
  }
}

std::vector<Interval> TemporalQuerySearcher::Search(
    const Pattern& query, const TemporalConstraints& constraints,
    const TemporalGraph& log) const {
  TGM_CHECK(log.finalized());
  std::size_t num_edges = query.edge_count();
  if (num_edges == 0 || log.edge_count() == 0) return {};

  // Guard alternatives are consumed via binary_search; normalize a local
  // copy in case the caller hand-built the guards unsorted.
  TemporalConstraints normalized = constraints;
  normalized.Normalize();
  const bool constrained = !normalized.IsTrivial();

  // Anchor: the pattern edge with the fewest signature occurrences,
  // counting every accepted edge label (an edge whose own label never
  // occurs may still match through an alternative).
  std::size_t anchor = 0;
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  for (std::size_t k = 0; k < num_edges; ++k) {
    const PatternEdge& qe = query.edge(k);
    std::size_t count = log.EdgesWithSignature(query.label(qe.src),
                                               query.label(qe.dst), qe.elabel)
                            .size();
    for (LabelId alt : normalized.guard(k).elabel_alts) {
      if (alt == qe.elabel) continue;
      count += log.EdgesWithSignature(query.label(qe.src),
                                      query.label(qe.dst), alt)
                   .size();
    }
    if (count < best_count) {
      best_count = count;
      anchor = k;
    }
  }
  if (best_count == 0) return {};

  SearchContext ctx;
  ctx.query = &query;
  ctx.constraints = &normalized;
  ctx.log = &log;
  ctx.options = &options_;
  ctx.window = normalized.EffectiveWindow(options_.window);
  ctx.constrained = constrained;
  ctx.plan.push_back(anchor);
  for (std::size_t k = anchor + 1; k < num_edges; ++k) ctx.plan.push_back(k);
  for (std::size_t k = anchor; k-- > 0;) ctx.plan.push_back(k);
  ctx.node_map.assign(query.node_count(), kInvalidNode);
  ctx.used.assign(log.node_count(), false);
  ctx.pos_of.assign(num_edges, -1);

  Extend(ctx, 0);

  return std::vector<Interval>(ctx.intervals.begin(), ctx.intervals.end());
}

std::vector<Interval> TemporalQuerySearcher::SearchAll(
    const std::vector<Pattern>& queries, const TemporalGraph& log) const {
  return SearchAll(queries, {}, log);
}

std::vector<Interval> TemporalQuerySearcher::SearchAll(
    const std::vector<Pattern>& queries,
    const std::vector<TemporalConstraints>& constraints,
    const TemporalGraph& log) const {
  static const TemporalConstraints kUnconstrained;
  std::set<Interval> all;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TemporalConstraints& c =
        i < constraints.size() ? constraints[i] : kUnconstrained;
    for (const Interval& interval : Search(queries[i], c, log)) {
      all.insert(interval);
    }
  }
  return std::vector<Interval>(all.begin(), all.end());
}

}  // namespace tgm
