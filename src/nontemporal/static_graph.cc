#include "nontemporal/static_graph.h"

#include <algorithm>
#include <sstream>

namespace tgm {

NodeId StaticGraph::AddNode(LabelId label) {
  TGM_CHECK(!finalized_);
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void StaticGraph::AddEdge(NodeId src, NodeId dst, LabelId elabel) {
  TGM_CHECK(!finalized_);
  TGM_CHECK(src >= 0 && static_cast<std::size_t>(src) < node_labels_.size());
  TGM_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < node_labels_.size());
  StaticEdge e{src, dst, elabel};
  if (std::find(edges_.begin(), edges_.end(), e) == edges_.end()) {
    edges_.push_back(e);
  }
}

void StaticGraph::Finalize() {
  TGM_CHECK(!finalized_);
  finalized_ = true;
  out_edges_.assign(node_labels_.size(), {});
  in_edges_.assign(node_labels_.size(), {});
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    out_edges_[static_cast<std::size_t>(edges_[i].src)].push_back(
        static_cast<std::int32_t>(i));
    in_edges_[static_cast<std::size_t>(edges_[i].dst)].push_back(
        static_cast<std::int32_t>(i));
  }
}

StaticGraph StaticGraph::Collapse(const TemporalGraph& g) {
  StaticGraph s;
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    s.AddNode(g.label(static_cast<NodeId>(v)));
  }
  // Dedupe via a sorted copy to avoid the quadratic AddEdge scan on big
  // graphs.
  std::vector<StaticEdge> collected;
  collected.reserve(g.edge_count());
  for (const TemporalEdge& e : g.edges()) {
    collected.push_back(StaticEdge{e.src, e.dst, e.elabel});
  }
  std::sort(collected.begin(), collected.end(),
            [](const StaticEdge& a, const StaticEdge& b) {
              return std::tie(a.src, a.dst, a.elabel) <
                     std::tie(b.src, b.dst, b.elabel);
            });
  collected.erase(std::unique(collected.begin(), collected.end()),
                  collected.end());
  s.edges_ = std::move(collected);
  s.Finalize();
  return s;
}

const std::vector<std::int32_t>& StaticGraph::out_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  return out_edges_[static_cast<std::size_t>(v)];
}

const std::vector<std::int32_t>& StaticGraph::in_edges(NodeId v) const {
  TGM_CHECK(finalized_);
  return in_edges_[static_cast<std::size_t>(v)];
}

bool StaticGraph::HasEdge(NodeId src, NodeId dst, LabelId elabel) const {
  TGM_CHECK(finalized_);
  for (std::int32_t i : out_edges_[static_cast<std::size_t>(src)]) {
    const StaticEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.dst == dst && e.elabel == elabel) return true;
  }
  return false;
}

std::string StaticGraph::ToString() const {
  std::ostringstream os;
  os << "StaticGraph{" << node_count() << " nodes:";
  for (std::size_t v = 0; v < node_labels_.size(); ++v) {
    os << " L" << node_labels_[v];
  }
  os << ";";
  for (const StaticEdge& e : edges_) {
    os << " " << e.src << "->" << e.dst;
  }
  os << "}";
  return os.str();
}

}  // namespace tgm
