#ifndef TGM_QUERY_STREAM_COMPILED_PLAN_H_
#define TGM_QUERY_STREAM_COMPILED_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "query/stream/event.h"
#include "temporal/constraints.h"
#include "temporal/pattern.h"

namespace tgm {

/// One state transition of a compiled behaviour query: matching pattern
/// edge k moves a partial match from state k to state k+1. Everything the
/// per-event dispatch needs — labels (with any disjunctive alternatives),
/// which binding slots must already be bound, injectivity scan length, and
/// the timed-automata guards of the transition — is precomputed here, so
/// the hot path never re-derives it from the Pattern or the
/// TemporalConstraints.
struct PlanTransition {
  LabelId elabel = kNoEdgeLabel;
  /// Binding slots of the edge endpoints (canonical pattern node ids).
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Labels required of a *newly bound* endpoint (already-bound endpoints
  /// were label-checked when first bound).
  LabelId src_label = kInvalidLabel;
  LabelId dst_label = kInvalidLabel;
  bool self_loop = false;
  /// Whether the endpoint slot is necessarily bound in any partial waiting
  /// on this transition (the node appears in an earlier pattern edge).
  /// Canonical consecutive growth guarantees at least one of the two for
  /// every edge after the first.
  bool src_bound = false;
  bool dst_bound = false;
  /// Number of bound binding slots in a partial waiting on this transition
  /// (canonical numbering makes the bound slots exactly [0, bound_nodes)),
  /// i.e. the injectivity scan length.
  std::uint32_t bound_nodes = 0;

  // --- timed-automata guards (TemporalConstraints; trivial values for an
  // --- unconstrained query) -----------------------------------------------
  /// Inclusive bounds on ts(this edge) - ts(previous matched edge);
  /// kNoGapLimit = unbounded above.
  Timestamp min_gap = 0;
  Timestamp max_gap = kNoGapLimit;
  /// Inclusive bounds on ts(this edge) - ts(seed edge).
  Timestamp min_since_seed = 0;
  Timestamp max_since_seed = kNoGapLimit;
  /// A partial *waiting* on this transition can never complete once
  /// now - first_ts exceeds this (suffix-min over the remaining
  /// transitions' max_since_seed and the overall deadline; kNoGapLimit =
  /// unbounded). Drives the per-partial expiry tighter than the window.
  Timestamp seed_horizon = kNoGapLimit;
  /// Disjunctive edge-label alternatives (sorted, excludes `elabel`).
  /// Empty for the common single-label transition.
  std::vector<LabelId> elabel_alts;

  /// The transition's full edge-label accept set: `elabel` or any listed
  /// alternative. Single source of truth for matching, seeding, and the
  /// shard seed-dispatch bitmaps.
  bool AcceptsLabel(LabelId label) const {
    return label == elabel ||
           (!elabel_alts.empty() &&
            std::binary_search(elabel_alts.begin(), elabel_alts.end(),
                               label));
  }
};

/// A behaviour query compiled for per-event dispatch: the edge sequence is
/// flattened into a transition table indexed by the partial's next
/// unmatched edge, with any TemporalConstraints guards baked into the
/// transitions (the timed-automata generalization; an unconstrained query
/// compiles to all-trivial guards and behaves bit-identically to the
/// pre-constraint plan). Built once at query registration; read-only
/// afterwards (shared freely across threads).
class CompiledQueryPlan {
 public:
  explicit CompiledQueryPlan(const Pattern& pattern)
      : CompiledQueryPlan(pattern, TemporalConstraints()) {}
  CompiledQueryPlan(const Pattern& pattern,
                    const TemporalConstraints& constraints);

  const Pattern& pattern() const { return pattern_; }
  std::size_t edge_count() const { return transitions_.size(); }
  std::size_t node_count() const { return pattern_.node_count(); }
  const PlanTransition& transition(std::size_t k) const {
    TGM_DCHECK(k < transitions_.size());
    return transitions_[k];
  }
  /// True if any transition carries a non-trivial guard (or the query a
  /// deadline) — i.e. the plan is not the degenerate linear case.
  bool constrained() const { return constrained_; }
  /// The overall match deadline folded with `window`: the span bound this
  /// plan is actually executed under (0 = unbounded).
  Timestamp EffectiveWindow(Timestamp window) const {
    return deadline_ <= 0       ? window
           : window <= 0        ? deadline_
           : window < deadline_ ? window
                                : deadline_;
  }

  /// Cheap seed test: can `event` start a fresh partial (match edge 0)?
  bool SeedMatches(const StreamEvent& event) const {
    const PlanTransition& t = transitions_[0];
    return t.AcceptsLabel(event.elabel) &&
           t.self_loop == (event.src_entity == event.dst_entity) &&
           event.src_label == t.src_label &&
           (t.self_loop || event.dst_label == t.dst_label);
  }

  /// The (edge label, source label) pairs under which this plan must be
  /// dispatched as a potential seed: exactly the label pairs SeedMatches
  /// can accept (one per edge-0 label alternative). StreamShard's
  /// seed-dispatch bitmaps are built from this — the same accept set as
  /// SeedMatches by construction, so the two can never drift (the bitmap
  /// is a necessary condition of the predicate).
  std::vector<std::pair<LabelId, LabelId>> SeedDispatchKeys() const;

 private:
  Pattern pattern_;
  std::vector<PlanTransition> transitions_;
  Timestamp deadline_ = 0;
  bool constrained_ = false;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_COMPILED_PLAN_H_
