#ifndef TGM_EXEC_PARALLEL_FOR_H_
#define TGM_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "exec/thread_pool.h"

namespace tgm {

/// Deterministic parallel-for: runs `body(i)` for every i in [0, n).
///
/// The index space is split into at most `1 + pool->num_workers()`
/// contiguous chunks whose boundaries are a pure function of (n, chunk
/// count) — never of timing — so iterations see a schedule-independent
/// index assignment. Results must be written to per-index (or per-chunk)
/// slots; callers that then combine slots in index order get output
/// bit-identical to the serial loop, which is how the miner keeps
/// `num_threads > 1` results equal to serial mining.
///
/// Chunk 0 runs on the calling thread; the call blocks until every chunk
/// has finished. With a null pool, zero workers, or n < 2 the loop runs
/// inline. If bodies throw, the exception from the lowest-indexed chunk is
/// rethrown after all chunks complete (again schedule-independent).
///
/// Must not be called from inside a pool worker: the pool has no work
/// stealing, so a region waiting on its own pool's queue can deadlock.
template <typename Body>
void ParallelFor(ThreadPool* pool, std::size_t n, const Body& body) {
  const std::size_t max_chunks =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->num_workers()) + 1;
  if (max_chunks <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = n < max_chunks ? n : max_chunks;
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  // Chunk c covers [c*base + min(c, rem), ...) — the first `rem` chunks get
  // one extra iteration. Depends only on (n, chunks).
  auto chunk_begin = [base, rem](std::size_t c) {
    return c * base + (c < rem ? c : rem);
  };

  // The join latch. `pending` is guarded by `mu`; `errors` needs no guard
  // (chunk c is the only writer of errors[c], and the latch's
  // release/acquire pairing orders every write before the final read).
  Mutex mu;
  CondVar done_cv;
  std::size_t pending TGM_GUARDED_BY(mu) = chunks - 1;
  std::vector<std::exception_ptr> errors(chunks);

  auto run_chunk = [&body, &errors, chunk_begin](std::size_t c,
                                                 std::size_t end) {
    try {
      for (std::size_t i = chunk_begin(c); i < end; ++i) body(i);
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };

  for (std::size_t c = 1; c < chunks; ++c) {
    pool->Submit([&, c] {
      run_chunk(c, chunk_begin(c + 1));
      MutexLock lock(mu);
      if (--pending == 0) done_cv.NotifyOne();
    });
  }
  run_chunk(0, chunk_begin(1));
  {
    MutexLock lock(mu);
    done_cv.Wait(lock, [&pending]() TGM_REQUIRES(mu) { return pending == 0; });
  }
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(std::move(e));
  }
}

}  // namespace tgm

#endif  // TGM_EXEC_PARALLEL_FOR_H_
