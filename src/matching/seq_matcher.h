#ifndef TGM_MATCHING_SEQ_MATCHER_H_
#define TGM_MATCHING_SEQ_MATCHER_H_

#include <optional>
#include <vector>

#include "matching/matcher.h"
#include "temporal/sequence.h"

namespace tgm {

/// The paper's light-weight temporal subgraph test (Section 4.3, Lemma 5).
///
/// `small ⊆t big` is decided by enumerating injective node mappings fs for
/// which nodeseq(small) embeds as a subsequence of enhseq(big) with matching
/// labels, then verifying fs(edgeseq(small)) ⊑ edgeseq(big) with a greedy
/// linear scan. Appendix J's three accelerations are implemented:
///
///  - label sequence test: reject in O(n) when even the label sequences are
///    not in subsequence relation;
///  - local information match: a candidate target node must dominate the
///    pattern node's in/out degree and in/out neighbour (edge label, node
///    label) multisets;
///  - prefix pruning: a failed partial node mapping (the exact prefix of
///    target nodes assigned so far) is memoized together with the smallest
///    enhseq position it failed from; re-encountering the same prefix at
///    the same or a later position is pruned. Keying by the exact prefix
///    (not just the used-node set) keeps the memo sound when labels
///    repeat.
///
/// The miner issues these tests in runs that repeat one argument — the
/// current pattern stays fixed while the registry candidate varies — so the
/// matcher memoizes the last pattern seen in each argument slot (sequences
/// plus lazily built neighbour profiles) instead of rebuilding them for
/// every test. The memo is two entries, so memory stays O(pattern size);
/// the varying slot still pays one Pattern copy per miss, which is small
/// next to the sequence/profile rebuild it replaces (patterns own their
/// lifetime elsewhere, so the memo cannot safely hold references).
///
/// NOT thread-safe: the memo makes Contains/FindMapping mutating calls.
/// Give each thread its own SeqMatcher (the miner's tester runs only on
/// the DFS thread).
class SeqMatcher : public TemporalSubgraphTester {
 public:
  struct Options {
    bool label_sequence_test = true;
    bool local_information_match = true;
    bool prefix_pruning = true;
  };

  SeqMatcher() = default;
  explicit SeqMatcher(const Options& options) : options_(options) {}

  bool Contains(const Pattern& small, const Pattern& big) override;
  std::optional<std::vector<NodeId>> FindMapping(const Pattern& small,
                                                 const Pattern& big) override;

 private:
  struct NeighborProfile {
    // Sorted (edge label, neighbour label) multisets.
    std::vector<std::pair<LabelId, LabelId>> out;
    std::vector<std::pair<LabelId, LabelId>> in;
  };

  struct SearchContext;

  /// One memo slot: the last pattern seen in an argument position with its
  /// sequence representation and (on demand) neighbour profiles.
  struct CachedPattern {
    bool valid = false;
    bool has_profiles = false;
    Pattern pattern;
    SequenceRep rep;
    std::vector<NeighborProfile> profiles;
  };

  /// Returns `slot` primed for `p`: reused when the pattern matches the
  /// cached one, rebuilt otherwise.
  static CachedPattern& Lookup(CachedPattern& slot, const Pattern& p);
  /// Builds `entry`'s neighbour profiles on first use.
  static const std::vector<NeighborProfile>& Profiles(CachedPattern& entry);

  bool Search(SearchContext& ctx, std::size_t i, std::size_t j);
  static bool EdgeSubsequenceHolds(const Pattern& small, const Pattern& big,
                                   const std::vector<NodeId>& map);
  static std::vector<NeighborProfile> BuildProfiles(const Pattern& p);

  Options options_;
  CachedPattern small_slot_;
  CachedPattern big_slot_;
};

}  // namespace tgm

#endif  // TGM_MATCHING_SEQ_MATCHER_H_
