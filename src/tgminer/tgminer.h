#ifndef TGM_TGMINER_TGMINER_H_
#define TGM_TGMINER_TGMINER_H_

/// \file tgminer.h
/// Umbrella header: the full public API of the TGMiner library.
///
/// Layering, bottom to top (each header is also usable on its own):
///  - base vocabulary: base/annotations.h (the Clang thread-safety
///    capability macros — TGM_GUARDED_BY/TGM_REQUIRES/TGM_EXCLUDES/... —
///    no-ops off Clang), base/mutex.h (annotated Mutex/MutexLock/CondVar
///    wrappers plus the ThreadRole confinement capability), and
///    base/invariants.h (structural validators + the
///    TGMINER_CHECK_INVARIANTS batch-boundary hook). base/ depends on
///    nothing in the tree and everything concurrent depends on it: the
///    exec/ primitives' locking contracts and the stream engine's
///    sequencer/shard ownership split are spelled in these macros and
///    machine-checked by the static-analysis CI wall.
///  - execution substrate: exec/work_stealing.h (StealScheduler —
///    per-worker steal deques plus a shared injector — and TaskGroup,
///    whose Wait() helps run queued tasks instead of blocking, so
///    nested fork/join is safe by construction), exec/parallel_for.h
///    (deterministic index-ordered ParallelFor over a TaskGroup), and
///    exec/spsc_queue.h (bounded single-producer/single-consumer rings
///    for the stream shards). The miner and the stream engine both
///    schedule onto these primitives; nothing above exec/ spawns raw
///    threads.
///  - error model: api/status.h (tgm::Status / tgm::StatusOr<T>, used by
///    every layer's fallible public entry points)
///  - temporal graph substrate: temporal_graph.h, pattern.h, sequence.h,
///    residual.h, label_dict.h, io.h (text formats + parsers);
///    constraints.h (TemporalConstraints — timed-automata guards as a
///    query-time annotation on a Pattern, enforced identically by the
///    offline searcher and the stream runtime, persisted with the
///    BehaviorQuery artifact)
///  - temporal subgraph testers and match enumeration: matcher.h,
///    seq_matcher.h, vf2_matcher.h, index_matcher.h, edge_scan_matcher.h
///  - the discriminative miner and its ablations: miner.h, miner_config.h,
///    score.h, result.h
///  - the non-temporal baseline: static_graph.h, dfs_code.h, gspan.h
///  - the syscall-log simulator (one Session data source among any):
///    entity.h, script.h, behaviors.h, background.h, dataset.h
///  - query formulation, search and evaluation: interest.h, searcher.h,
///    nodeset.h, static_search.h, evaluator.h; online surveillance:
///    stream_monitor.h over query/stream/, itself layered bottom-up as
///    event.h (the stream unit) -> compiled_plan.h (Pattern compiled to
///    transition guards once, plus seed-dispatch keys) -> partial_table.h
///    (live partials bucketed by the entity their next transition
///    requires) -> query_runtime.h (shared transition/routing semantics:
///    MatchTransition/RouteForNextEdge + the single-table runtime) ->
///    shard.h / entity_shard.h (the two shard executors: round-robin
///    query shards, entity-hash op shards) -> engine.h (StreamEngine:
///    batching, ShardingMode routing over exec/spsc_queue.h inboxes, the
///    canonical alert merge both modes reproduce bit-identically)
///  - **the stable front door** (new code starts here): api/session.h
///    (tgm::api::Session — ingestion, corpora, the Search/Watch pair),
///    api/behavior_query.h (the durable mined-query artifact),
///    api/event_record.h (generic ingestion unit), api/builders.h
///    (fluent validated config construction)
///  - back-compat facade over the front door: pipeline.h (the
///    paper-replication Pipeline; its temporal stages delegate to an
///    embedded Session)
///
/// This prose is documentation; the machine-checked source of truth for
/// the include DAG is tools/lint/layers.conf, enforced by tgm-lint
/// (tools/lint/tgm_lint.py, gate 4 of scripts/run_static_analysis.sh).
/// An include from a lower layer into a higher one fails CI; if you add
/// a header or move one between layers, update layers.conf in the same
/// change.
///
/// Every pre-api include below keeps working unchanged.

#include "api/behavior_query.h"
#include "api/builders.h"
#include "api/event_record.h"
#include "api/session.h"
#include "api/status.h"
#include "matching/edge_scan_matcher.h"
#include "matching/index_matcher.h"
#include "matching/matcher.h"
#include "matching/seq_matcher.h"
#include "matching/vf2_matcher.h"
#include "mining/miner.h"
#include "mining/miner_config.h"
#include "mining/result.h"
#include "mining/score.h"
#include "nontemporal/dfs_code.h"
#include "nontemporal/gspan.h"
#include "nontemporal/static_graph.h"
#include "query/evaluator.h"
#include "query/interest.h"
#include "query/nodeset.h"
#include "query/pipeline.h"
#include "query/searcher.h"
#include "query/static_search.h"
#include "syslog/background.h"
#include "syslog/behaviors.h"
#include "syslog/dataset.h"
#include "syslog/entity.h"
#include "syslog/script.h"
#include "temporal/common.h"
#include "temporal/constraints.h"
#include "temporal/label_dict.h"
#include "temporal/pattern.h"
#include "temporal/residual.h"
#include "temporal/sequence.h"
#include "temporal/temporal_graph.h"

#endif  // TGM_TGMINER_TGMINER_H_
