# Empty dependencies file for edge_scan_test.
# This may be replaced when dependencies are built.
