// CONFORMING (status-discard, 0 findings, 1 waiver): every Status result
// is consumed — assigned, branched on, returned, macro-propagated — and
// the one deliberate discard carries a waiver with its reason.

#define TGM_RETURN_IF_ERROR(expr)            \
  do {                                       \
    auto tgm_status_tmp_ = (expr);           \
    if (!tgm_status_tmp_.ok()) return tgm_status_tmp_; \
  } while (0)

namespace lintfix {

class Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();
Status Cleanup();
Status BestEffortLog();

Status Caller() {
  Status s = DoWork();          // consumed: initialization
  if (!s.ok()) return s;
  if (!Cleanup().ok()) {        // consumed: branched on
    return Cleanup();           // consumed: returned
  }
  TGM_RETURN_IF_ERROR(DoWork());  // consumed: propagation macro
  // tgm-lint: status-discard-ok(best-effort telemetry; failure must not mask the real status)
  (void)BestEffortLog();
  return DoWork();
}

}  // namespace lintfix
