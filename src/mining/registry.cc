#include "mining/registry.h"

namespace tgm {

void PatternRegistry::Add(RegisteredPattern entry) {
  if (algo_ == ResidualEquivAlgo::kIValue) {
    // The integer compression is all that is kept; drop any cut lists.
    entry.pos_cuts.clear();
    entry.pos_cuts.shrink_to_fit();
    entry.neg_cuts.clear();
    entry.neg_cuts.shrink_to_fit();
  }
  std::size_t idx = entries_.size();
  std::int64_t key = entry.pos_i_value;
  entries_.push_back(std::move(entry));
  if (algo_ == ResidualEquivAlgo::kIValue) {
    by_pos_i_[key].push_back(idx);
  }
}

void PatternRegistry::ForEachPosCandidate(
    std::int64_t pos_i_value,
    const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
    std::int64_t* equiv_tests,
    const std::function<bool(const RegisteredPattern&)>& fn) const {
  if (algo_ == ResidualEquivAlgo::kIValue) {
    auto it = by_pos_i_.find(pos_i_value);
    if (it == by_pos_i_.end()) return;
    for (std::size_t idx : it->second) {
      ++*equiv_tests;  // one O(1) integer comparison per candidate
      if (!fn(entries_[idx])) return;
    }
    return;
  }
  // LinearScan: walk everything, compare materialized cut lists.
  for (const RegisteredPattern& entry : entries_) {
    ++*equiv_tests;
    if (entry.pos_cuts != pos_cuts) continue;
    if (!fn(entry)) return;
  }
}

}  // namespace tgm
