#include "api/behavior_query.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace tgm::api {

namespace {

/// Round-trip-exact double formatting (shortest representation that
/// parses back to the same value).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool ParseDoubleToken(std::string_view token, double* out) {
  // std::from_chars<double> handles "inf"/"-inf" (scores can be -inf for
  // an artifact assembled by hand), unlike operator>>.
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Corpus names are stored as single tokens on the provenance line; every
/// whitespace character (including newlines, which would split the line
/// and make the artifact unloadable) becomes '_'.
std::string SanitizeName(const std::string& name) {
  if (name.empty()) return "-";
  std::string out = name;
  std::replace_if(
      out.begin(), out.end(),
      [](unsigned char c) { return std::isspace(c) != 0; }, '_');
  return out;
}

}  // namespace

const TemporalConstraints& BehaviorQuery::constraints(std::size_t i) const {
  static const TemporalConstraints kTrivial;
  return i < constraints_.size() ? constraints_[i] : kTrivial;
}

void BehaviorQuery::set_constraints(std::size_t i,
                                    TemporalConstraints constraints) {
  TGM_CHECK(i < patterns_.size());
  if (constraints_.size() != patterns_.size()) {
    constraints_.resize(patterns_.size());
  }
  constraints.Normalize();
  constraints_[i] = std::move(constraints);
}

bool BehaviorQuery::constrained() const {
  for (const TemporalConstraints& c : constraints_) {
    if (!c.IsTrivial()) return true;
  }
  return false;
}

Status BehaviorQuery::Validate() const {
  if (patterns_.empty()) {
    return Status::InvalidArgument("behaviour query has no patterns");
  }
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].pattern.edge_count() == 0) {
      return Status::InvalidArgument("pattern " + std::to_string(i) +
                                     " of the behaviour query is empty");
    }
  }
  if (window_ < 0) {
    return Status::InvalidArgument("behaviour query window is negative (" +
                                   std::to_string(window_) + ")");
  }
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    Status status = constraints_[i].ValidateFor(patterns_[i].pattern);
    if (!status.ok()) {
      return Status::InvalidArgument(
          "constraints of pattern " + std::to_string(i) +
          " of the behaviour query: " + std::string(status.message()));
    }
  }
  return Status::Ok();
}

void BehaviorQuery::Save(std::ostream& os, const LabelDict& dict) const {
  // Unconstrained artifacts keep the historical version-1 byte layout so
  // older readers stay compatible; any non-trivial guard bumps to 2.
  const int version = constrained() ? 2 : 1;
  os << "tquery " << version << " " << patterns_.size() << "\n";
  os << "window " << window_ << "\n";
  os << "provenance " << provenance_.patterns_visited << " "
     << provenance_.patterns_expanded << " " << (provenance_.truncated ? 1 : 0)
     << " " << FormatDouble(provenance_.elapsed_seconds) << " "
     << provenance_.positive_graphs << " " << provenance_.negative_graphs
     << " " << SanitizeName(provenance_.positives) << " "
     << SanitizeName(provenance_.negatives) << "\n";
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const MinedPattern& m = patterns_[i];
    os << "q " << FormatDouble(m.score) << " " << FormatDouble(m.freq_pos)
       << " " << FormatDouble(m.freq_neg) << " " << m.support_pos << " "
       << m.support_neg << "\n";
    WritePattern(os, m.pattern, dict);
    if (version < 2) continue;
    // Every pattern of a v2 artifact carries a constraints block (possibly
    // `constraints 0 0`), so the parser never has to look ahead. Only
    // non-trivial guards get `g` lines.
    const TemporalConstraints& c = constraints(i);
    static const TransitionGuard kTrivialGuard;
    std::size_t num_guards = 0;
    for (const TransitionGuard& g : c.guards()) {
      if (!(g == kTrivialGuard)) ++num_guards;
    }
    os << "constraints " << num_guards << " " << c.deadline() << "\n";
    for (std::size_t k = 0; k < c.size(); ++k) {
      const TransitionGuard& g = c.guard(k);
      if (g == kTrivialGuard) continue;
      os << "g " << k << " " << g.min_gap << " " << g.max_gap << " "
         << g.min_since_seed << " " << g.max_since_seed << " "
         << g.elabel_alts.size();
      for (LabelId alt : g.elabel_alts) os << " " << dict.Name(alt);
      os << "\n";
    }
  }
}

StatusOr<BehaviorQuery> BehaviorQuery::Load(LineCursor& cursor,
                                            LabelDict& dict) {
  std::string line;
  std::vector<std::string_view> tokens;
  if (!cursor.Next(&line)) {
    return cursor.Error("expected 'tquery' header, got end of input");
  }
  TokenizeRecordLine(line, &tokens);
  std::int64_t version = 0;
  std::int64_t num_patterns = 0;
  if (tokens.size() != 3 || tokens[0] != "tquery" ||
      !ParseInt64Token(tokens[1], &version) ||
      !ParseInt64Token(tokens[2], &num_patterns) || num_patterns < 0) {
    return cursor.Error("expected 'tquery <version> <num_patterns>', got '" +
                        line + "'");
  }
  if (version != 1 && version != 2) {
    // A future (or garbage) format version: refuse loudly rather than
    // misread an artifact written by a newer build.
    return cursor.Error(
        "unsupported tquery format version " + std::to_string(version) +
        " (this build reads versions 1-2; the artifact was likely written "
        "by a newer build)");
  }
  if (num_patterns == 0) {
    // An empty artifact could never execute (Validate rejects it); flag
    // the corruption here, with file context, instead of far downstream.
    return cursor.Error("a behaviour query artifact must contain at least "
                        "one pattern");
  }

  if (!cursor.Next(&line)) {
    return cursor.Error("expected 'window' line, got end of input");
  }
  TokenizeRecordLine(line, &tokens);
  std::int64_t window = 0;
  if (tokens.size() != 2 || tokens[0] != "window" ||
      !ParseInt64Token(tokens[1], &window) || window < 0) {
    return cursor.Error("expected 'window <non-negative span>', got '" +
                        line + "'");
  }

  if (!cursor.Next(&line)) {
    return cursor.Error("expected 'provenance' line, got end of input");
  }
  TokenizeRecordLine(line, &tokens);
  QueryProvenance prov;
  std::int64_t truncated = 0;
  if (tokens.size() != 9 || tokens[0] != "provenance" ||
      !ParseInt64Token(tokens[1], &prov.patterns_visited) ||
      !ParseInt64Token(tokens[2], &prov.patterns_expanded) ||
      !ParseInt64Token(tokens[3], &truncated) ||
      !ParseDoubleToken(tokens[4], &prov.elapsed_seconds) ||
      !ParseInt64Token(tokens[5], &prov.positive_graphs) ||
      !ParseInt64Token(tokens[6], &prov.negative_graphs) ||
      (truncated != 0 && truncated != 1)) {
    return cursor.Error("malformed provenance line '" + line + "'");
  }
  prov.truncated = truncated == 1;
  prov.positives = std::string(tokens[7]);
  prov.negatives = std::string(tokens[8]);

  std::vector<MinedPattern> patterns;
  std::vector<TemporalConstraints> constraints;  // one per pattern (v2)
  // No reserve from the header count: it is file-supplied and unvalidated
  // (a corrupt count must surface as the kDataLoss below when the blocks
  // run out, not as a length_error from a pathological allocation).
  for (std::int64_t i = 0; i < num_patterns; ++i) {
    if (!cursor.Next(&line)) {
      return cursor.Error("expected " + std::to_string(num_patterns) +
                          " 'q' blocks, got end of input after " +
                          std::to_string(i));
    }
    TokenizeRecordLine(line, &tokens);
    MinedPattern m;
    if (tokens.size() != 6 || tokens[0] != "q" ||
        !ParseDoubleToken(tokens[1], &m.score) ||
        !ParseDoubleToken(tokens[2], &m.freq_pos) ||
        !ParseDoubleToken(tokens[3], &m.freq_neg) ||
        !ParseInt64Token(tokens[4], &m.support_pos) ||
        !ParseInt64Token(tokens[5], &m.support_neg)) {
      return cursor.Error(
          "expected 'q <score> <freq_pos> <freq_neg> <support_pos> "
          "<support_neg>', got '" + line + "'");
    }
    TGM_ASSIGN_OR_RETURN(m.pattern, ParsePattern(cursor, dict));

    TemporalConstraints pattern_constraints(m.pattern.edge_count());
    if (version >= 2) {
      if (!cursor.Next(&line)) {
        return cursor.Error("expected 'constraints' line, got end of input");
      }
      TokenizeRecordLine(line, &tokens);
      std::int64_t num_guards = 0;
      std::int64_t deadline = 0;
      if (tokens.size() != 3 || tokens[0] != "constraints" ||
          !ParseInt64Token(tokens[1], &num_guards) ||
          !ParseInt64Token(tokens[2], &deadline) || num_guards < 0 ||
          deadline < 0) {
        return cursor.Error(
            "expected 'constraints <num_guards> <deadline>', got '" + line +
            "'");
      }
      pattern_constraints.set_deadline(static_cast<Timestamp>(deadline));
      std::vector<bool> seen(m.pattern.edge_count(), false);
      for (std::int64_t gi = 0; gi < num_guards; ++gi) {
        if (!cursor.Next(&line)) {
          return cursor.Error("expected " + std::to_string(num_guards) +
                              " 'g' lines, got end of input after " +
                              std::to_string(gi));
        }
        TokenizeRecordLine(line, &tokens);
        std::int64_t edge = 0;
        std::int64_t num_alts = 0;
        TransitionGuard guard;
        if (tokens.size() < 7 || tokens[0] != "g" ||
            !ParseInt64Token(tokens[1], &edge) ||
            !ParseInt64Token(tokens[2], &guard.min_gap) ||
            !ParseInt64Token(tokens[3], &guard.max_gap) ||
            !ParseInt64Token(tokens[4], &guard.min_since_seed) ||
            !ParseInt64Token(tokens[5], &guard.max_since_seed) ||
            !ParseInt64Token(tokens[6], &num_alts) || num_alts < 0 ||
            tokens.size() != 7 + static_cast<std::size_t>(num_alts)) {
          return cursor.Error(
              "expected 'g <edge> <min_gap> <max_gap> <min_since_seed> "
              "<max_since_seed> <num_alts> <alt-names...>', got '" + line +
              "'");
        }
        if (edge < 0 ||
            edge >= static_cast<std::int64_t>(m.pattern.edge_count())) {
          return cursor.Error("guard references edge " +
                              std::to_string(edge) + " of a pattern with " +
                              std::to_string(m.pattern.edge_count()) +
                              " edges");
        }
        if (seen[static_cast<std::size_t>(edge)]) {
          return cursor.Error("duplicate guard for edge " +
                              std::to_string(edge));
        }
        seen[static_cast<std::size_t>(edge)] = true;
        for (std::int64_t a = 0; a < num_alts; ++a) {
          guard.elabel_alts.push_back(
              dict.Intern(tokens[7 + static_cast<std::size_t>(a)]));
        }
        pattern_constraints.mutable_guard(static_cast<std::size_t>(edge)) =
            std::move(guard);
      }
      pattern_constraints.Normalize();
      Status valid = pattern_constraints.ValidateFor(m.pattern);
      if (!valid.ok()) {
        return cursor.Error("invalid constraints block: " +
                            std::string(valid.message()));
      }
      constraints.push_back(std::move(pattern_constraints));
    }
    patterns.push_back(std::move(m));
  }

  BehaviorQuery query(std::move(patterns), static_cast<Timestamp>(window),
                      std::move(prov));
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    query.set_constraints(i, std::move(constraints[i]));
  }
  return query;
}

StatusOr<BehaviorQuery> BehaviorQuery::Load(std::istream& is,
                                            LabelDict& dict) {
  LineCursor cursor(is);
  return Load(cursor, dict);
}

}  // namespace tgm::api
