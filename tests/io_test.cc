#include "temporal/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace tgm {
namespace {

TEST(IoTest, GraphRoundTrip) {
  LabelDict dict;
  LabelId a = dict.Intern("proc:bash");
  LabelId b = dict.Intern("file:/etc/passwd");
  LabelId op = dict.Intern("op:read");
  TemporalGraph g;
  g.AddNode(a);
  g.AddNode(b);
  g.AddEdge(1, 0, 100, op);
  g.AddEdge(1, 0, 250, op);
  g.Finalize();

  std::stringstream ss;
  WriteTemporalGraph(ss, g, dict);
  LabelDict dict2;
  auto back = ReadTemporalGraph(ss, dict2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node_count(), 2u);
  EXPECT_EQ(back->edge_count(), 2u);
  EXPECT_EQ(dict2.Name(back->label(0)), "proc:bash");
  EXPECT_EQ(back->edge(0).ts, 100);
  EXPECT_EQ(back->edge(1).ts, 250);
  EXPECT_EQ(dict2.Name(back->edge(0).elabel), "op:read");
}

TEST(IoTest, GraphRoundTripPreservesMatching) {
  std::mt19937_64 rng(3);
  LabelDict dict;
  for (int i = 0; i < 8; ++i) dict.Intern("L" + std::to_string(i));
  TemporalGraph g = tgm::testing::RandomGraph(rng, 6, 12, 4);
  std::stringstream ss;
  WriteTemporalGraph(ss, g, dict);
  LabelDict dict2;
  for (int i = 0; i < 8; ++i) dict2.Intern("L" + std::to_string(i));
  auto back = ReadTemporalGraph(ss, dict2);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(back->edge(static_cast<EdgePos>(i)),
              g.edge(static_cast<EdgePos>(i)));
  }
}

TEST(IoTest, PatternRoundTrip) {
  LabelDict dict;
  LabelId a = dict.Intern("alert:cpu");
  LabelId b = dict.Intern("alert:io");
  Pattern p = Pattern::SingleEdge(a, b).GrowForward(1, a).GrowInward(0, 1);
  std::stringstream ss;
  WritePattern(ss, p, dict);
  LabelDict dict2;
  auto back = ReadPattern(ss, dict2);
  ASSERT_TRUE(back.has_value());
  // Same structure under re-interned labels.
  EXPECT_EQ(back->node_count(), p.node_count());
  EXPECT_EQ(back->edge_count(), p.edge_count());
  for (std::size_t i = 0; i < p.edge_count(); ++i) {
    EXPECT_EQ(back->edge(i).src, p.edge(i).src);
    EXPECT_EQ(back->edge(i).dst, p.edge(i).dst);
  }
  EXPECT_EQ(dict2.Name(back->label(0)), "alert:cpu");
}

TEST(IoTest, RejectsBadHeader) {
  std::stringstream ss("garbage 1 1\n");
  LabelDict dict;
  EXPECT_FALSE(ReadTemporalGraph(ss, dict).has_value());
  std::stringstream ss2("tgraph\n");
  EXPECT_FALSE(ReadTemporalGraph(ss2, dict).has_value());
}

TEST(IoTest, RejectsOutOfRangeNodeIds) {
  std::stringstream ss("tgraph 1 1\nn A\ne 0 7 5 <none>\n");
  LabelDict dict;
  EXPECT_FALSE(ReadTemporalGraph(ss, dict).has_value());
}

TEST(IoTest, RejectsTruncatedInput) {
  std::stringstream ss("tgraph 2 2\nn A\nn B\ne 0 1 5 <none>\n");
  LabelDict dict;
  EXPECT_FALSE(ReadTemporalGraph(ss, dict).has_value());
}

TEST(IoTest, PatternDotRendering) {
  LabelDict dict;
  LabelId a = dict.Intern("proc:sshd");
  LabelId b = dict.Intern("file:\"quoted\"");
  LabelId op = dict.Intern("op:read");
  Pattern p = Pattern::SingleEdge(a, b, op);
  std::string dot = PatternToDot(p, dict, "q");
  EXPECT_NE(dot.find("digraph \"q\""), std::string::npos);
  EXPECT_NE(dot.find("proc:sshd"), std::string::npos);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("1: op:read"), std::string::npos);
}

TEST(IoTest, TemporalGraphDotRendering) {
  LabelDict dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  TemporalGraph g;
  g.AddNode(a);
  g.AddNode(b);
  g.AddEdge(0, 1, 42);
  g.Finalize();
  std::string dot = TemporalGraphToDot(g, dict);
  EXPECT_NE(dot.find("t=42"), std::string::npos);
}

TEST(IoTest, ParseDiagnosticsAreLineNumbered) {
  // The StatusOr parsers point at the offending line; the legacy Read*
  // wrappers collapse the same failures to nullopt (covered above).
  LabelDict dict;

  std::stringstream bad_header("garbage 1 1\n");
  StatusOr<TemporalGraph> r1 = ParseTemporalGraph(bad_header, dict);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);

  std::stringstream bad_node_tag("tgraph 1 0\nx A\n");
  StatusOr<TemporalGraph> r2 = ParseTemporalGraph(bad_node_tag, dict);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);

  std::stringstream out_of_range("tgraph 2 1\nn A\nn B\ne 0 7 5 <none>\n");
  StatusOr<TemporalGraph> r3 = ParseTemporalGraph(out_of_range, dict);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(r3.status().message().find("out of range"), std::string::npos);

  std::stringstream negative_ts("tgraph 2 1\nn A\nn B\ne 0 1 -3 <none>\n");
  StatusOr<TemporalGraph> r4 = ParseTemporalGraph(negative_ts, dict);
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("negative timestamp"),
            std::string::npos);

  // Trailing tokens on a record line are malformed, not silently eaten.
  std::stringstream trailing("tgraph 2 1\nn A\nn B\ne 0 1 5 <none> junk\n");
  StatusOr<TemporalGraph> r5 = ParseTemporalGraph(trailing, dict);
  ASSERT_FALSE(r5.ok());
  EXPECT_NE(r5.status().message().find("line 4"), std::string::npos);

  std::stringstream truncated("tgraph 2 2\nn A\nn B\ne 0 1 5 <none>\n");
  StatusOr<TemporalGraph> r6 = ParseTemporalGraph(truncated, dict);
  ASSERT_FALSE(r6.ok());
  EXPECT_NE(r6.status().message().find("end of input"), std::string::npos);
}

TEST(IoTest, ParsePatternDiagnostics) {
  LabelDict dict;
  // Edges must reference declared nodes.
  std::stringstream bad("tpattern 2 1\nn A\nn B\ne 0 9 <none>\n");
  StatusOr<Pattern> r1 = ParsePattern(bad, dict);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r1.status().message().find("line 4"), std::string::npos);

  // A pattern that is not T-connected is rejected with a reason, not a
  // bare nullopt.
  std::stringstream disconnected(
      "tpattern 4 2\nn A\nn B\nn C\nn D\ne 0 1 <none>\ne 2 3 <none>\n");
  StatusOr<Pattern> r2 = ParsePattern(disconnected, dict);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("T-connected"), std::string::npos);

  std::stringstream empty("tpattern 1 0\nn A\n");
  StatusOr<Pattern> r3 = ParsePattern(empty, dict);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("at least one edge"),
            std::string::npos);
}

TEST(IoTest, ParserAcceptsBlankLinesAndCarriageReturns) {
  LabelDict dict;
  std::stringstream ss(
      "\r\n\ntgraph 2 1\r\nn A\r\n\nn B\r\ne 0 1 5 <none>\r\n");
  StatusOr<TemporalGraph> parsed = ParseTemporalGraph(ss, dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->node_count(), 2u);
  EXPECT_EQ(parsed->edge(0).ts, 5);
  EXPECT_EQ(dict.Name(parsed->label(0)), "A");
}

TEST(IoTest, MultiplePatternsInOneStream) {
  LabelDict dict;
  LabelId a = dict.Intern("x");
  LabelId b = dict.Intern("y");
  Pattern p1 = Pattern::SingleEdge(a, b);
  Pattern p2 = Pattern::SingleEdge(b, a).GrowForward(1, b);
  std::stringstream ss;
  WritePattern(ss, p1, dict);
  WritePattern(ss, p2, dict);
  LabelDict dict2;
  auto r1 = ReadPattern(ss, dict2);
  auto r2 = ReadPattern(ss, dict2);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->edge_count(), 1u);
  EXPECT_EQ(r2->edge_count(), 2u);
}

}  // namespace
}  // namespace tgm
