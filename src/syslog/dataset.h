#ifndef TGM_SYSLOG_DATASET_H_
#define TGM_SYSLOG_DATASET_H_

#include <cstdint>
#include <vector>

#include "syslog/background.h"
#include "syslog/behaviors.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// Knobs for the training / test collection processes of Appendix L,
/// scaled down by default so the full bench suite runs in minutes. The
/// paper's full scale is runs_per_behavior = 100, background_graphs =
/// 10000, test_instances = 10000.
struct DatasetConfig {
  int runs_per_behavior = 30;
  int background_graphs = 150;
  int test_instances = 240;
  /// Per-behaviour probability of one order-shuffled decoy inside each
  /// background graph.
  double background_decoy_prob = 0.22;
  /// Expected decoys injected per test-log instance slot.
  double test_decoy_rate = 0.6;
  GenOptions gen;
  std::uint64_t seed = 42;
};

/// The mining input: Gp per behaviour plus the shared Gn.
struct TrainingData {
  /// positives[i] are the runs of AllBehaviors()[i].
  std::vector<std::vector<TemporalGraph>> positives;
  std::vector<TemporalGraph> background;
  /// Longest observed instance lifetime per behaviour (ticks) — the query
  /// search window ("no longer than the longest observed lifetime",
  /// Section 6.1).
  std::vector<Timestamp> max_duration;
};

/// Builds the closed-environment training collection deterministically
/// from `config.seed`.
TrainingData BuildTrainingData(SyslogWorld& world,
                               const DatasetConfig& config);

/// One ground-truth behaviour execution inside the test log.
struct TruthInstance {
  BehaviorKind behavior;
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
};

/// The 7-day-style evaluation log: one large temporal graph with
/// behaviours injected on a schedule plus ground-truth intervals.
struct TestLog {
  TemporalGraph graph;
  std::vector<TruthInstance> truth;
  /// Number of injected instances per behaviour (Table 2 denominators).
  std::vector<std::int64_t> instance_counts;
};

TestLog BuildTestLog(SyslogWorld& world, const DatasetConfig& config);

/// Table 1 row: averages plus the distinct-label count of a graph set.
struct BehaviorStats {
  double avg_nodes = 0.0;
  double avg_edges = 0.0;
  std::int64_t total_labels = 0;
};

BehaviorStats ComputeStats(const std::vector<TemporalGraph>& graphs);

/// SYN-k datasets (Figure 16): each graph replicated `factor` times.
std::vector<TemporalGraph> ReplicateGraphs(
    const std::vector<TemporalGraph>& graphs, int factor);

}  // namespace tgm

#endif  // TGM_SYSLOG_DATASET_H_
