#include "query/interest.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tgm {
namespace {

TEST(InterestTest, BlacklistPrefixes) {
  EXPECT_TRUE(InterestModel::IsBlacklisted("file:/proc/stat"));
  EXPECT_TRUE(InterestModel::IsBlacklisted("file:/tmp/noise3"));
  EXPECT_TRUE(InterestModel::IsBlacklisted("file:/dev/urandom"));
  EXPECT_FALSE(InterestModel::IsBlacklisted("file:/etc/shadow"));
  EXPECT_FALSE(InterestModel::IsBlacklisted("proc:sshd"));
}

TEST(InterestTest, RareLabelsScoreHigher) {
  LabelDict dict;
  LabelId common = dict.Intern("proc:bash");
  LabelId rare = dict.Intern("file:/etc/shadow");
  std::vector<TemporalGraph> graphs;
  for (int i = 0; i < 4; ++i) {
    TemporalGraph g;
    g.AddNode(common);
    NodeId other = g.AddNode(i == 0 ? rare : common);
    g.AddEdge(0, other, 1);
    g.Finalize();
    graphs.push_back(std::move(g));
  }
  InterestModel model({&graphs}, dict);
  EXPECT_GT(model.InterestOfLabel(rare), model.InterestOfLabel(common));
}

TEST(InterestTest, BlacklistedLabelScoresZero) {
  LabelDict dict;
  LabelId junk = dict.Intern("file:/proc/meminfo");
  std::vector<TemporalGraph> graphs;
  TemporalGraph g;
  g.AddNode(junk);
  g.AddNode(junk);
  g.AddEdge(0, 1, 1);
  g.Finalize();
  graphs.push_back(std::move(g));
  InterestModel model({&graphs}, dict);
  EXPECT_EQ(model.InterestOfLabel(junk), 0.0);
}

TEST(InterestTest, SelectTopQueriesRanksByScoreThenInterest) {
  LabelDict dict;
  LabelId rare = dict.Intern("file:/etc/shadow");
  LabelId common = dict.Intern("proc:bash");
  std::vector<TemporalGraph> graphs;
  for (int i = 0; i < 3; ++i) {
    TemporalGraph g;
    g.AddNode(common);
    g.AddNode(i == 0 ? rare : common);
    g.AddEdge(0, 1, 1);
    g.Finalize();
    graphs.push_back(std::move(g));
  }
  InterestModel model({&graphs}, dict);

  MinedPattern high_score;
  high_score.pattern = Pattern::SingleEdge(common, common);
  high_score.score = 10.0;
  MinedPattern tied_rare;
  tied_rare.pattern = Pattern::SingleEdge(common, rare);
  tied_rare.score = 5.0;
  MinedPattern tied_common;
  tied_common.pattern = Pattern::SingleEdge(common, common);
  tied_common.score = 5.0;

  std::vector<MinedPattern> mined = {tied_common, tied_rare, high_score};
  std::vector<MinedPattern> top = SelectTopQueries(mined, model, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].score, 10.0);
  // Among the tied pair, the pattern containing the rare label wins.
  EXPECT_EQ(top[1].pattern, tied_rare.pattern);
}

TEST(InterestTest, UnknownLabelDefaultsToFullInterest) {
  LabelDict dict;
  dict.Intern("proc:a");
  std::vector<TemporalGraph> graphs;
  InterestModel model({&graphs}, dict);
  EXPECT_EQ(model.InterestOfLabel(999), 1.0);
}

}  // namespace
}  // namespace tgm
