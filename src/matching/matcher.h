#ifndef TGM_MATCHING_MATCHER_H_
#define TGM_MATCHING_MATCHER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "temporal/common.h"
#include "temporal/pattern.h"

namespace tgm {

/// Interface for temporal subgraph tests between patterns: does `small ⊆t
/// big` hold (Section 2's temporal subgraph relation)? Implementations are
/// the paper's three alternatives compared in Figure 13:
///   SeqMatcher   — sequence-encoding + subsequence tests (TGMiner),
///   Vf2Matcher   — modified VF2 (the PruneVF2 ablation),
///   IndexMatcher — one-edge graph index + join (the PruneGI ablation).
class TemporalSubgraphTester {
 public:
  virtual ~TemporalSubgraphTester() = default;

  /// True iff `small` ⊆t `big`.
  virtual bool Contains(const Pattern& small, const Pattern& big) = 0;

  /// Returns an injective node mapping m (m[v] = node of `big` matched to
  /// node v of `small`) witnessing small ⊆t big, or nullopt. When the
  /// residual sets of the two patterns are equal, Proposition 1 guarantees
  /// the mapping is unique, so the first witness is the only one.
  virtual std::optional<std::vector<NodeId>> FindMapping(
      const Pattern& small, const Pattern& big) = 0;

  /// Number of Contains/FindMapping calls served (for MinerStats).
  std::int64_t test_count() const { return test_count_; }

 protected:
  std::int64_t test_count_ = 0;
};

/// Identifiers for constructing testers from a MinerConfig.
enum class SubgraphTestAlgo { kSequence, kVf2, kGraphIndex };

/// Factory.
std::unique_ptr<TemporalSubgraphTester> MakeTester(SubgraphTestAlgo algo);

}  // namespace tgm

#endif  // TGM_MATCHING_MATCHER_H_
