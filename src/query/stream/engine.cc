#include "query/stream/engine.h"

#include <algorithm>
#include <unordered_set>

#include "base/invariants.h"
#include "exec/parallel_for.h"

namespace tgm {

namespace {

/// Read access to a priority_queue's underlying container (protected
/// member `c`) — same well-defined pointer-to-member idiom as
/// partial_table.cc, here for auditing the engine's central age heaps.
template <typename T, typename C, typename Cmp>
const C& HeapContainer(const std::priority_queue<T, C, Cmp>& q) {
  struct Access : std::priority_queue<T, C, Cmp> {
    static const C& Get(const std::priority_queue<T, C, Cmp>& queue) {
      return queue.*&Access::c;
    }
  };
  return Access::Get(q);
}

/// splitmix64 finalizer: entity ids are often dense small integers, so a
/// plain modulo would alias adjacent ids to adjacent shards; the mix
/// spreads any id distribution.
std::uint64_t MixEntity(std::int64_t entity) {
  auto x = static_cast<std::uint64_t>(entity);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr std::size_t kQueueCapacity = 1024;

}  // namespace

StreamEngine::StreamEngine(const Options& options) : options_(options) {
  RoleGuard seq(sequencer_role_);
  num_shards_ = ResolveNumThreads(options_.num_shards);
  TGM_CHECK(num_shards_ >= 1);
  if (options_.batch_size == 0) options_.batch_size = 1;
  limits_.window = options_.window;
  limits_.max_partials = options_.max_partials_per_query;
  limits_.entity_index = options_.entity_index;
  limits_.guard_expiry = options_.guard_expiry;
  const auto shards = static_cast<std::size_t>(num_shards_);
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back(limits_);
    shard_alerts_.resize(shards);
    if (shards > 1) pool_ = std::make_unique<StealScheduler>(num_shards_ - 1);
  } else {
    workers_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      workers_.push_back(std::make_unique<EntityWorker>(limits_));
    }
    if (shards > 1) {
      // One drainer thread per shard, fed through an SPSC inbox. With one
      // shard everything runs inline on the caller — no queues, no
      // threads, so shards=1 has zero overhead over a single table.
      for (std::size_t s = 0; s < shards; ++s) {
        EntityWorker* w = workers_[s].get();
        w->inbox = std::make_unique<SpscQueue<EntityShardOp>>(kQueueCapacity);
        w->outbox =
            std::make_unique<SpscQueue<EntityShardResult>>(kQueueCapacity);
        w->thread = std::thread([this, w] {
          // The worker owns its shard for the thread's whole lifetime —
          // the RoleGuard is what lets it call Execute; conversely the
          // lambda holds no sequencer capability, so reaching into the
          // engine's central state here would not compile on Clang.
          RoleGuard shard_owner(w->shard.role());
          EntityShardOp op;
          std::vector<EntityShardResult> results;
          for (;;) {
            w->inbox->PopBlocking(&op);
            if (op.kind == EntityShardOp::Kind::kStop) return;
            results.clear();
            w->shard.Execute(op, &results);
            for (EntityShardResult& r : results) {
              w->outbox->Push(std::move(r));
              results_ready_.Notify();
            }
          }
        });
      }
    }
  }
  batch_.reserve(options_.batch_size);
  active_.reserve(options_.batch_size);
}

StreamEngine::~StreamEngine() {
  RoleGuard seq(sequencer_role_);
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (!workers_[s]->thread.joinable()) continue;
    EntityShardOp op;
    op.kind = EntityShardOp::Kind::kStop;
    PushOp(s, std::move(op));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::size_t StreamEngine::AddQuery(const Pattern& query) {
  return AddQuery(query, options_.window);
}

std::size_t StreamEngine::AddQuery(const Pattern& query, Timestamp window) {
  return AddQuery(query, window, TemporalConstraints());
}

std::size_t StreamEngine::AddQuery(const Pattern& query, Timestamp window,
                                   const TemporalConstraints& constraints) {
  RoleGuard seq(sequencer_role_);
  TGM_CHECK(query.edge_count() >= 1);
  TGM_CHECK(window >= 0);
  // Registering mid-batch would make buffered events see a different query
  // set than their arrival order implies.
  TGM_CHECK(batch_.empty());
  const std::size_t index = query_count_++;
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    // No batch is in flight (checked above), so the engine thread owns
    // the shard.
    StreamShard& shard = shards_[index % shards_.size()];
    RoleGuard owner(shard.role());
    shard.AddQuery(index, query, window, constraints);
    return index;
  }
  // In-flight inserts/erases of earlier batches must land before the
  // engine touches shard state directly.
  QuiesceShards();
  auto plan = std::make_shared<const CompiledQueryPlan>(query, constraints);
  QueryControl qc;
  qc.plan = plan;
  qc.window = plan->EffectiveWindow(window);
  const Timestamp effective_window = qc.window;
  controls_.push_back(std::move(qc));
  for (auto& w : workers_) {
    RoleGuard owner(w->shard.role());
    w->shard.AddQuery(index, plan, effective_window);
  }
  dispatch_dirty_ = true;
  return index;
}

void StreamEngine::OnEvent(const StreamEvent& event, const AlertSink& sink) {
  RoleGuard seq(sequencer_role_);
  StreamEvent accepted = event;
  if (any_event_ && accepted.ts < last_ts_) {
    // Stream precondition violated. Clamping to the newest timestamp keeps
    // window expiry monotonic (a raw out-of-order ts would expire live
    // partials of every query against a time that then jumps back); the
    // counter surfaces the violation instead of hiding it.
    ++out_of_order_events_;
    accepted.ts = last_ts_;
  }
  last_ts_ = accepted.ts;
  any_event_ = true;
  batch_.push_back(accepted);
  if (batch_.size() >= options_.batch_size) ProcessBatch(sink);
}

void StreamEngine::Flush(const AlertSink& sink) {
  RoleGuard seq(sequencer_role_);
  ProcessBatch(sink);
}

void StreamEngine::ProcessBatch(const AlertSink& sink) {
  if (batch_.empty()) return;
  // Double buffer: the batch being processed (active_) and the batch
  // being filled (batch_) are distinct vectors, swapped per batch. Shards
  // receive span views into active_ — no copies, and the capacity of both
  // sides persists, so steady state allocates nothing. In entity-hash
  // mode probe ops carry pointers into active_, which stay valid until
  // their results have been collected (before this function returns).
  std::swap(batch_, active_);
  batch_.clear();
  const std::span<const StreamEvent> batch{active_.data(), active_.size()};
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    ProcessBatchRoundRobin(batch, sink);
  } else {
    ProcessBatchEntityHash(batch, sink);
  }
  // Debug builds (-DTGMINER_CHECK_INVARIANTS=ON) audit the whole engine at
  // every batch boundary; compiled out otherwise.
  TGM_VALIDATE_INVARIANTS("StreamEngine::ProcessBatch",
                          CheckInvariantsInternal());
}

void StreamEngine::ProcessBatchRoundRobin(std::span<const StreamEvent> batch,
                                          const AlertSink& sink) {
  // Broadcast the batch: shard count is below ParallelFor's oversubscribed
  // chunk cap, so each shard is its own stealable task and a shard that
  // finishes early picks up a slower sibling's — while the index-to-shard
  // assignment stays fixed. Shards share nothing but the read-only batch
  // view.
  ParallelFor(pool_.get(), shards_.size(), [this, batch](std::size_t s) {
    // Each chunk owns exactly one shard for the duration of the batch.
    RoleGuard owner(shards_[s].role());
    shards_[s].ProcessBatch(batch, &shard_alerts_[s]);
  });
  // Merge the per-shard outboxes into canonical (event, query, interval)
  // order. Keys never collide across shards (queries are partitioned), so
  // the merged order — and therefore the sink-visible alert stream — is
  // independent of the shard count.
  merged_.clear();
  for (const std::vector<ShardAlert>& alerts : shard_alerts_) {
    merged_.insert(merged_.end(), alerts.begin(), alerts.end());
  }
  EmitMerged(sink);
}

void StreamEngine::ProcessBatchEntityHash(std::span<const StreamEvent> batch,
                                          const AlertSink& sink) {
  if (dispatch_dirty_) {
    seed_dispatch_.Reset(query_count_);
    for (std::size_t q = 0; q < query_count_; ++q) {
      seed_dispatch_.Add(q, *controls_[q].plan);
    }
    dispatch_dirty_ = false;
  }
  if (exts_by_query_.size() < query_count_) {
    exts_by_query_.resize(query_count_);
  }
  merged_.clear();
  for (std::size_t ei = 0; ei < batch.size(); ++ei) {
    const StreamEvent& event = batch[ei];
    // Which queries advance on this event — the same per-query decision
    // the round-robin shards make (live partials, or the seed-dispatch
    // bitmaps admit a seed). Skipped queries skip expiry and dedup
    // pruning too, exactly like a skipped QueryRuntime::Advance.
    const SeedDispatchIndex::Rows rows = seed_dispatch_.Lookup(event);
    advancing_.clear();
    for (std::size_t q = 0; q < query_count_; ++q) {
      QueryControl& qc = controls_[q];
      if (qc.live == 0 && !SeedDispatchIndex::Test(rows, q)) {
        ++qc.seed_skips;
        continue;
      }
      advancing_.push_back(q);
    }
    // Phase 1 — erases (expiry) then probes, per advancing query. FIFO
    // inboxes order each shard's erases before its probes of this event,
    // and everything after the inserts of the previous event.
    TGM_DCHECK(outstanding_probes_ == 0);
    for (const std::size_t q : advancing_) {
      QueryControl& qc = controls_[q];
      while (!qc.by_age.empty() && qc.by_age.top().expiry < event.ts) {
        EraseTop(q, qc);
      }
      if (qc.window > 0) {
        // Emitted-interval dedup entries older than the effective window
        // can never be duplicated again; the set is ordered by begin, so
        // they form its prefix.
        while (!qc.emitted.empty() &&
               event.ts - qc.emitted.begin()->begin > qc.window) {
          qc.emitted.erase(qc.emitted.begin());
        }
      }
      if (qc.live > 0) SendProbes(q, qc, ei, event);
    }
    // Phase 2 — collect every probe result of this event (the engine
    // keeps draining while shards work; nothing barriers the shards).
    WaitForProbes();
    // Phase 3 — sequencing: dedup completions, route and insert
    // extensions (candidate order) then the seed, applying backpressure —
    // the exact QueryRuntime::Advance tail, just with the table work
    // remoted to the owning shards.
    for (const std::size_t q : advancing_) {
      QueryControl& qc = controls_[q];
      std::vector<CollectedExt>& exts = exts_by_query_[q];
      // Reassemble the single-table candidate order [src bucket, dst
      // bucket, wildcard]: stable within a tag because exactly one shard
      // produces each tag and its FIFO outbox preserves bucket order.
      std::stable_sort(exts.begin(), exts.end(),
                       [](const CollectedExt& a, const CollectedExt& b) {
                         return a.ext.tag < b.ext.tag;
                       });
      completions_scratch_.clear();
      auto emit = [&](Interval interval) {
        if (qc.emitted.insert(interval).second) {
          completions_scratch_.push_back(interval);
          ++qc.alerts;
        }
      };
      for (CollectedExt& ce : exts) {
        if (ce.ext.complete) {
          emit(ce.ext.interval);
          continue;
        }
        SendInsert(q, qc, ce.ext.next_edge, ce.ext.first_ts, ce.ext.last_ts,
                   ce.ext.binding.view(), static_cast<int>(ce.origin));
      }
      exts.clear();
      // Seed last — the same pending order as QueryRuntime::Advance.
      if (qc.plan->SeedMatches(event)) {
        if (qc.plan->edge_count() == 1) {
          emit(Interval{event.ts, event.ts});
        } else {
          FillExtendedBinding(*qc.plan, 0, {}, event,
                              seed_binding_.Resize(qc.plan->node_count()));
          SendInsert(q, qc, 1, event.ts, event.ts, seed_binding_.view(),
                     /*origin=*/-1);
        }
      }
      std::sort(completions_scratch_.begin(), completions_scratch_.end());
      for (const Interval& interval : completions_scratch_) {
        merged_.push_back(
            ShardAlert{static_cast<std::uint32_t>(ei), q, interval});
      }
    }
  }
  EmitMerged(sink);
}

void StreamEngine::EmitMerged(const AlertSink& sink) {
  std::sort(merged_.begin(), merged_.end());
  for (const ShardAlert& alert : merged_) {
    sink(StreamAlert{alert.query_index, alert.interval});
  }
  merged_.clear();
}

std::size_t StreamEngine::ShardOf(std::int64_t entity) const {
  return static_cast<std::size_t>(MixEntity(entity) % workers_.size());
}

void StreamEngine::PushOp(std::size_t shard, EntityShardOp&& op) {
  EntityWorker& w = *workers_[shard];
  if (!w.thread.joinable()) {
    // Inline (shards=1) execution: same ops, same order, no queues. No
    // worker thread exists, so the sequencer owns the shard outright.
    RoleGuard owner(w.shard.role());
    inline_results_.clear();
    w.shard.Execute(op, &inline_results_);
    for (EntityShardResult& r : inline_results_) HandleResult(shard, r);
    return;
  }
  // Never block without draining: a worker stuck pushing into a full
  // outbox must be able to make progress for its inbox to empty.
  while (!w.inbox->TryPush(op)) {
    if (!DrainOutboxes()) std::this_thread::yield();
  }
  const std::size_t depth = w.inbox->SizeApprox();
  if (depth > w.inbox_peak) w.inbox_peak = depth;
}

void StreamEngine::HandleResult(std::size_t shard, EntityShardResult& result) {
  if (result.kind == EntityShardResult::Kind::kFlushAck) {
    ++flush_acks_;
    return;
  }
  std::vector<CollectedExt>& dst = exts_by_query_[result.query];
  for (ProbeExtension& ext : result.exts) {
    dst.push_back(CollectedExt{std::move(ext), static_cast<std::uint32_t>(shard)});
  }
  TGM_DCHECK(outstanding_probes_ > 0);
  --outstanding_probes_;
}

bool StreamEngine::DrainOutboxes() {
  bool any = false;
  EntityShardResult result;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    EntityWorker& w = *workers_[s];
    if (!w.outbox) continue;
    while (w.outbox->TryPop(&result)) {
      any = true;
      HandleResult(s, result);
    }
  }
  return any;
}

void StreamEngine::WaitForProbes() {
  while (outstanding_probes_ > 0) {
    const std::uint64_t epoch = results_ready_.Epoch();
    if (DrainOutboxes()) continue;
    if (outstanding_probes_ == 0) break;
    results_ready_.Wait(epoch);
  }
}

void StreamEngine::EraseTop(std::size_t query, QueryControl& qc) {
  const AgeEntry top = qc.by_age.top();
  qc.by_age.pop();
  --qc.live;
  if (top.wildcard) --qc.wildcard_live;
  EntityShardOp op;
  op.kind = EntityShardOp::Kind::kErase;
  op.query = static_cast<std::uint32_t>(query);
  op.seq = top.seq;
  ++erases_sent_;
  PushOp(top.shard, std::move(op));
}

void StreamEngine::SendProbes(std::size_t query, QueryControl& qc,
                              std::size_t event_index,
                              const StreamEvent& event) {
  const std::size_t home = query % workers_.size();
  // Up to three targets: the shards owning the src and dst entity buckets
  // and, if any wildcard partials exist, the query's home shard. Masks
  // merge when targets coincide; the dst side is skipped entirely for a
  // self-loop event (same bucket as src — the routing-layer probe-dedup).
  std::size_t target_shard[3];
  std::uint8_t target_mask[3];
  std::size_t targets = 0;
  auto add = [&](std::size_t shard, std::uint8_t mask) {
    for (std::size_t i = 0; i < targets; ++i) {
      if (target_shard[i] == shard) {
        target_mask[i] |= mask;
        return;
      }
    }
    target_shard[targets] = shard;
    target_mask[targets] = mask;
    ++targets;
  };
  if (limits_.entity_index) {
    add(ShardOf(event.src_entity), kProbeSrc);
    if (event.dst_entity != event.src_entity) {
      add(ShardOf(event.dst_entity), kProbeDst);
    }
    if (qc.wildcard_live > 0) add(home, kProbeWildcard);
  } else {
    // Full-scan mode files everything under the wildcard bucket, which
    // lives on the home shard.
    add(home, kProbeWildcard);
  }
  for (std::size_t i = 0; i < targets; ++i) {
    EntityShardOp op;
    op.kind = EntityShardOp::Kind::kProbe;
    op.query = static_cast<std::uint32_t>(query);
    op.event = &event;
    op.event_index = static_cast<std::uint32_t>(event_index);
    op.probe_mask = target_mask[i];
    ++outstanding_probes_;
    ++workers_[target_shard[i]]->events_routed;
    PushOp(target_shard[i], std::move(op));
  }
}

void StreamEngine::SendInsert(std::size_t query, QueryControl& qc,
                              std::uint32_t next_edge, Timestamp first_ts,
                              Timestamp last_ts,
                              std::span<const std::int64_t> binding,
                              int origin) {
  if (qc.live >= limits_.max_partials) {
    // Backpressure: make room by evicting the partial closest to death.
    // With a zero cap nothing can be stored at all, so the newcomer
    // itself is the drop.
    ++qc.dropped;
    if (limits_.max_partials == 0) return;
    EraseTop(query, qc);
  }
  PartialRoute route = limits_.entity_index
                           ? RouteForNextEdge(*qc.plan, next_edge, binding)
                           : PartialRoute{};
  const bool wildcard = route.role == PartialTable::Role::kWildcard;
  const std::size_t target = wildcard ? query % workers_.size()
                                      : ShardOf(route.key);
  EntityShardOp op;
  op.kind = EntityShardOp::Kind::kInsert;
  op.query = static_cast<std::uint32_t>(query);
  op.binding.Assign(binding);
  op.next_edge = next_edge;
  op.first_ts = first_ts;
  op.last_ts = last_ts;
  op.role = route.role;
  op.key = route.key;
  op.seq = qc.next_seq++;
  const Timestamp expiry =
      ComputePartialExpiry(*qc.plan, qc.window, limits_.guard_expiry,
                           next_edge, first_ts, last_ts);
  qc.by_age.push(AgeEntry{expiry, first_ts, op.seq,
                          static_cast<std::uint32_t>(target), wildcard});
  ++qc.live;
  if (qc.live > qc.peak) qc.peak = qc.live;
  if (wildcard) ++qc.wildcard_live;
  if (origin >= 0 && static_cast<std::size_t>(origin) != target) {
    // The partial was produced by a probe on another shard and its next
    // required entity hashes here: a cross-shard handoff.
    ++workers_[target]->handoffs_in;
  }
  ++inserts_sent_;
  PushOp(target, std::move(op));
}

void StreamEngine::QuiesceShards() {
  bool threaded = false;
  for (const auto& w : workers_) {
    if (w->thread.joinable()) threaded = true;
  }
  if (!threaded) return;
  flush_acks_ = 0;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    EntityShardOp op;
    op.kind = EntityShardOp::Kind::kFlush;
    op.token = ++flush_token_;
    PushOp(s, std::move(op));
  }
  while (flush_acks_ < workers_.size()) {
    const std::uint64_t epoch = results_ready_.Epoch();
    if (DrainOutboxes()) continue;
    if (flush_acks_ >= workers_.size()) break;
    results_ready_.Wait(epoch);
  }
}

std::size_t StreamEngine::PartialCount() const {
  RoleGuard seq(sequencer_role_);
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    std::size_t total = 0;
    for (const StreamShard& shard : shards_) {
      // No batch is in flight (external synchronization), so the engine
      // thread owns every shard.
      RoleGuard owner(shard.role());
      total += shard.PartialCount();
    }
    return total;
  }
  std::size_t total = 0;
  for (const QueryControl& qc : controls_) total += qc.live;
  return total;
}

std::int64_t StreamEngine::dropped_partials() const {
  RoleGuard seq(sequencer_role_);
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    std::int64_t total = 0;
    for (const StreamShard& shard : shards_) {
      RoleGuard owner(shard.role());
      total += shard.dropped_partials();
    }
    return total;
  }
  std::int64_t total = 0;
  for (const QueryControl& qc : controls_) total += qc.dropped;
  return total;
}

EngineStats StreamEngine::Stats() const {
  // Logically const but written through `self`: the entity-hash branch
  // quiesces the shards (drains already-issued work) before reading their
  // tables, and the capability analysis needs one consistent object
  // expression for the sequencer role it claims here.
  StreamEngine* self = const_cast<StreamEngine*>(this);
  RoleGuard seq(self->sequencer_role_);
  EngineStats stats;
  stats.out_of_order_events = self->out_of_order_events_;
  if (self->options_.sharding == ShardingMode::kQueryRoundRobin) {
    stats.shard_events.reserve(self->shards_.size());
    for (std::size_t s = 0; s < self->shards_.size(); ++s) {
      const StreamShard& shard = self->shards_[s];
      RoleGuard owner(shard.role());
      stats.shard_events.push_back(shard.events_processed());
      for (const QueryRuntime& query : shard.queries()) {
        EngineQueryStats row;
        row.query_index = query.global_index();
        row.shard = s;
        row.live_partials = query.table().live();
        row.peak_partials = query.table().peak();
        row.index_buckets = query.table().bucket_count();
        row.wildcard_partials = query.table().wildcard_size();
        row.dropped_partials = query.dropped_partials();
        row.alerts = query.alerts();
        row.seed_skips = query.seed_skips();
        stats.queries.push_back(row);
        stats.live_partials += row.live_partials;
        stats.dropped_partials += row.dropped_partials;
        stats.alerts += row.alerts;
        stats.seed_skips += row.seed_skips;
      }
    }
    std::sort(stats.queries.begin(), stats.queries.end(),
              [](const EngineQueryStats& a, const EngineQueryStats& b) {
                return a.query_index < b.query_index;
              });
  } else {
    // Quiescing establishes that the engine may read shard tables
    // directly (every issued op has landed, workers parked on their
    // inboxes), which is what makes the per-worker RoleGuard claims
    // below legitimate.
    self->QuiesceShards();
    for (std::size_t s = 0; s < self->workers_.size(); ++s) {
      const EntityWorker& w = *self->workers_[s];
      EngineShardStats row;
      row.shard = s;
      row.inbox_depth = w.inbox ? w.inbox->SizeApprox() : 0;
      row.inbox_peak = w.inbox_peak;
      row.events_routed = w.events_routed;
      row.handoffs_in = w.handoffs_in;
      stats.shards.push_back(row);
      stats.shard_events.push_back(w.events_routed);
      stats.handoffs += w.handoffs_in;
    }
    for (std::size_t q = 0; q < self->controls_.size(); ++q) {
      const QueryControl& qc = self->controls_[q];
      EngineQueryStats row;
      row.query_index = q;
      row.shard = q % self->workers_.size();
      row.live_partials = qc.live;
      row.peak_partials = qc.peak;
      for (const auto& w : self->workers_) {
        RoleGuard owner(w->shard.role());
        row.index_buckets += w->shard.table(q).bucket_count();
        row.wildcard_partials += w->shard.table(q).wildcard_size();
      }
      row.dropped_partials = qc.dropped;
      row.alerts = qc.alerts;
      row.seed_skips = qc.seed_skips;
      stats.queries.push_back(row);
      stats.live_partials += row.live_partials;
      stats.dropped_partials += row.dropped_partials;
      stats.alerts += row.alerts;
      stats.seed_skips += row.seed_skips;
    }
  }
  std::int64_t max_events = 0;
  std::int64_t sum_events = 0;
  for (const std::int64_t v : stats.shard_events) {
    max_events = std::max(max_events, v);
    sum_events += v;
  }
  if (sum_events > 0) {
    const double mean = static_cast<double>(sum_events) /
                        static_cast<double>(stats.shard_events.size());
    stats.routing_skew = static_cast<double>(max_events) / mean;
  }
  return stats;
}

std::string StreamEngine::CheckInvariants() {
  RoleGuard seq(sequencer_role_);
  return CheckInvariantsInternal();
}

std::string StreamEngine::CheckInvariantsInternal() {
  if (options_.sharding == ShardingMode::kQueryRoundRobin) {
    // Events are broadcast, so every shard must have processed the same
    // count; each shard's tables must be structurally sound.
    std::int64_t events = -1;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const StreamShard& shard = shards_[s];
      RoleGuard owner(shard.role());
      if (std::string err = shard.CheckInvariants(); !err.empty()) {
        return "shard " + std::to_string(s) + ": " + err;
      }
      if (events < 0) {
        events = shard.events_processed();
      } else if (shard.events_processed() != events) {
        return "shard " + std::to_string(s) + " processed " +
               std::to_string(shard.events_processed()) +
               " events, shard 0 processed " + std::to_string(events) +
               " (batches are broadcast to every shard)";
      }
    }
    return std::string();
  }
  // Entity-hash: land every in-flight op, then audit the sequencer's
  // central accounting against what the shards actually did.
  QuiesceShards();
  std::int64_t inserts_executed = 0;
  std::int64_t erases_executed = 0;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    const EntityWorker& w = *workers_[s];
    RoleGuard owner(w.shard.role());
    if (std::string err = w.shard.CheckInvariants(); !err.empty()) {
      return "shard " + std::to_string(s) + ": " + err;
    }
    if (w.shard.probes_executed() != w.events_routed) {
      return "shard " + std::to_string(s) + " executed " +
             std::to_string(w.shard.probes_executed()) +
             " probe ops, engine routed " + std::to_string(w.events_routed);
    }
    inserts_executed += w.shard.inserts_executed();
    erases_executed += w.shard.erases_executed();
  }
  if (inserts_executed != inserts_sent_) {
    return "engine sent " + std::to_string(inserts_sent_) +
           " inserts, shards executed " + std::to_string(inserts_executed);
  }
  if (erases_executed != erases_sent_) {
    return "engine sent " + std::to_string(erases_sent_) +
           " erases, shards executed " + std::to_string(erases_executed);
  }
  for (std::size_t q = 0; q < controls_.size(); ++q) {
    const QueryControl& qc = controls_[q];
    const std::string prefix = "query " + std::to_string(q) + ": ";
    std::size_t table_live = 0;
    std::size_t table_wildcard = 0;
    for (const auto& w : workers_) {
      RoleGuard owner(w->shard.role());
      table_live += w->shard.table(q).live();
      table_wildcard += w->shard.table(q).wildcard_size();
    }
    if (qc.live != table_live) {
      return prefix + "central live count " + std::to_string(qc.live) +
             " != shard tables' total " + std::to_string(table_live);
    }
    if (qc.wildcard_live != table_wildcard) {
      return prefix + "central wildcard count " +
             std::to_string(qc.wildcard_live) + " != shard tables' total " +
             std::to_string(table_wildcard);
    }
    if (qc.peak < qc.live) {
      return prefix + "peak " + std::to_string(qc.peak) + " below live " +
             std::to_string(qc.live);
    }
    // The central age heap must name exactly the live partials: one entry
    // per engine seq, each resolvable on the shard the heap says owns it.
    const auto& heap = HeapContainer(qc.by_age);
    if (heap.size() != qc.live) {
      return prefix + "age heap holds " + std::to_string(heap.size()) +
             " entries, live count " + std::to_string(qc.live) +
             " (the heap has no lazy deletion)";
    }
    std::unordered_set<std::uint64_t> seqs;
    seqs.reserve(heap.size());
    for (const AgeEntry& entry : heap) {
      if (!seqs.insert(entry.seq).second) {
        return prefix + "seq " + std::to_string(entry.seq) +
               " appears twice in the age heap";
      }
      if (entry.seq >= qc.next_seq) {
        return prefix + "age-heap seq " + std::to_string(entry.seq) +
               " was never issued (next_seq " + std::to_string(qc.next_seq) +
               ")";
      }
      if (entry.shard >= workers_.size()) {
        return prefix + "age-heap entry names shard " +
               std::to_string(entry.shard) + " of " +
               std::to_string(workers_.size());
      }
      if (entry.wildcard && entry.shard != q % workers_.size()) {
        return prefix + "wildcard partial filed on shard " +
               std::to_string(entry.shard) + ", home shard is " +
               std::to_string(q % workers_.size());
      }
      const EntityWorker& w = *workers_[entry.shard];
      RoleGuard owner(w.shard.role());
      if (!w.shard.table(q).HasSeq(entry.seq)) {
        return prefix + "age-heap seq " + std::to_string(entry.seq) +
               " missing from its shard " + std::to_string(entry.shard) +
               " table";
      }
    }
  }
  return std::string();
}

}  // namespace tgm
