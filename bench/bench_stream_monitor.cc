// Stream-engine throughput: events/sec of the online surveillance engine
// (src/query/stream/) as a function of registered query count, matching
// path (entity-keyed partial index vs. the legacy full-scan wildcard
// path), and shard count.
//
// Shape to reproduce: the entity index must beat the full scan on the
// many-queries workload — the scan path touches every live partial of
// every query per event, the index only the partials the event's entities
// can extend. Shard rows split the same workload across worker shards
// (events/sec needs a multicore host to show wall-clock scaling; on a
// 1-core container the rows pin the merge overhead instead).
//
// Flags: --queries=Q (largest query-count step), --events=N, --window=W,
// --shards=S (extra shard counts, plumbed like --threads), --max_gap=G
// (adds a constrained comparison: every query's transitions get a max-gap
// guard of G, run once with guard-driven per-partial expiry and once with
// window-only expiry — identical alerts required, peak live partials is
// the measurement), --seed, --json_out=FILE. Alert totals are
// cross-checked across all configurations of a step: every path and
// sharding must agree.

#include <chrono>
#include <random>

#include "bench_common.h"
#include "query/stream/engine.h"
#include "temporal/constraints.h"

namespace {

using namespace tgm;

/// Random canonical query over `num_labels` node labels (the bench-local
/// twin of tests/test_util.h's RandomPattern — bench binaries do not see
/// the tests/ include dir).
Pattern RandomQuery(std::mt19937_64& rng, int num_edges, int num_labels) {
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  Pattern p = Pattern::SingleEdge(label(rng), label(rng));
  while (static_cast<int>(p.edge_count()) < num_edges) {
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    int choice = static_cast<int>(rng() % 3);
    if (choice == 0) {
      p = p.GrowForward(node(rng), label(rng));
    } else if (choice == 1) {
      p = p.GrowBackward(label(rng), node(rng));
    } else {
      NodeId u = node(rng);
      NodeId v = node(rng);
      if (u == v) continue;
      p = p.GrowInward(u, v);
    }
  }
  return p;
}

struct RunStats {
  double events_per_sec = 0;
  std::int64_t alerts = 0;
  std::size_t peak_partials = 0;
  std::int64_t dropped = 0;
  std::int64_t seed_skips = 0;
};

RunStats RunEngine(const std::vector<Pattern>& queries,
                   const std::vector<StreamEvent>& events, Timestamp window,
                   bool entity_index, int num_shards,
                   const std::vector<TemporalConstraints>& constraints = {},
                   bool guard_expiry = true) {
  StreamEngine::Options options;
  options.window = window;
  options.entity_index = entity_index;
  options.num_shards = num_shards;
  options.batch_size = num_shards > 1 ? 32 : 1;
  options.max_partials_per_query = 50000;
  options.guard_expiry = guard_expiry;
  StreamEngine engine(options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (q < constraints.size()) {
      engine.AddQuery(queries[q], window, constraints[q]);
    } else {
      engine.AddQuery(queries[q]);
    }
  }

  RunStats stats;
  auto sink = [&stats](const StreamAlert&) { ++stats.alerts; };
  auto start = std::chrono::steady_clock::now();
  for (const StreamEvent& e : events) engine.OnEvent(e, sink);
  engine.Flush(sink);
  auto stop = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(stop - start).count();
  stats.events_per_sec =
      static_cast<double>(events.size()) / (seconds > 0 ? seconds : 1e-9);
  stats.dropped = engine.dropped_partials();
  EngineStats engine_stats = engine.Stats();
  stats.seed_skips = engine_stats.seed_skips;
  for (const EngineQueryStats& q : engine_stats.queries) {
    stats.peak_partials += q.peak_partials;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv, {"queries", "events", "window", "shards",
                                  "max_gap", "json_out"});
  bench::Banner("Stream engine", "online surveillance events/sec");

  const int max_queries =
      static_cast<int>(flags.GetInt("queries", 64, 1, 1 << 20));
  const std::int64_t num_events = flags.GetInt("events", 20000, 1,
                                               std::int64_t{1} << 32);
  const Timestamp window = flags.GetInt("window", 500, 1);
  const int extra_shards =
      static_cast<int>(flags.GetInt("shards", 0, 0, 4096));
  const Timestamp max_gap = flags.GetInt("max_gap", 0, 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::string json_out = flags.GetString("json_out", "");
  bench::JsonBenchWriter json;

  // One fixed workload per query-count step: a dense entity population so
  // partials chain and accumulate (the regime the index exists for).
  const int num_labels = 3;
  const std::int64_t num_entities = 500;
  std::mt19937_64 rng(seed);
  std::vector<Pattern> queries;
  for (int q = 0; q < max_queries; ++q) {
    queries.push_back(RandomQuery(rng, 3, num_labels));
  }
  std::vector<StreamEvent> events;
  events.reserve(static_cast<std::size_t>(num_events));
  std::uniform_int_distribution<std::int64_t> entity(0, num_entities - 1);
  for (std::int64_t i = 0; i < num_events; ++i) {
    std::int64_t src = entity(rng);
    std::int64_t dst = entity(rng);
    if (src == dst) dst = (dst + 1) % num_entities;
    events.push_back(StreamEvent{src, dst,
                                 static_cast<LabelId>(src % num_labels),
                                 static_cast<LabelId>(dst % num_labels),
                                 kNoEdgeLabel, i});
  }

  std::printf("%8s %8s %8s %14s %10s %12s %10s %12s\n", "queries", "path",
              "shards", "events/sec", "alerts", "peak_partials", "dropped",
              "seed_skips");
  std::vector<int> steps;
  for (int q = 4; q < max_queries; q *= 4) steps.push_back(q);
  steps.push_back(max_queries);
  bool ok = true;
  for (int num_queries : steps) {
    std::vector<Pattern> subset(queries.begin(),
                                queries.begin() + num_queries);
    auto row = [&](const char* path, bool indexed, int shards) {
      RunStats stats = RunEngine(subset, events, window, indexed, shards);
      std::printf("%8d %8s %8d %14.0f %10lld %12zu %10lld %12lld\n",
                  num_queries, path, shards, stats.events_per_sec,
                  static_cast<long long>(stats.alerts), stats.peak_partials,
                  static_cast<long long>(stats.dropped),
                  static_cast<long long>(stats.seed_skips));
      std::string name = std::string("StreamEngine/") + path + "/queries:" +
                         std::to_string(num_queries) + "/shards:" +
                         std::to_string(shards);
      json.Add(name, static_cast<double>(events.size()) /
                         stats.events_per_sec,
               {{"events_per_sec", stats.events_per_sec},
                {"queries", static_cast<double>(num_queries)},
                {"shards", static_cast<double>(shards)},
                {"indexed", indexed ? 1.0 : 0.0},
                {"alerts", static_cast<double>(stats.alerts)},
                {"dropped", static_cast<double>(stats.dropped)},
                {"seed_skips", static_cast<double>(stats.seed_skips)}});
      return stats;
    };
    RunStats scan = row("scan", false, 1);
    RunStats index = row("index", true, 1);
    // Shard rows must always agree with the single-shard index row (the
    // engine's shard-determinism guarantee, drops or not). Scan vs index
    // agreement is only guaranteed drop-free: under backpressure the
    // eviction tie-break follows insertion order, which differs between
    // the two matching paths.
    if (scan.dropped == 0 && index.dropped == 0 &&
        scan.alerts != index.alerts) {
      std::fprintf(stderr,
                   "error: drop-free alert mismatch at queries=%d: scan "
                   "%lld vs index %lld\n",
                   num_queries, static_cast<long long>(scan.alerts),
                   static_cast<long long>(index.alerts));
      ok = false;
    } else if (scan.dropped != 0 || index.dropped != 0) {
      std::printf("  (cap hit at queries=%d: scan/index alert parity not "
                  "checked under backpressure)\n",
                  num_queries);
    }
    if (num_queries == max_queries) {
      std::vector<int> shard_steps = {2, 4};
      if (extra_shards > 1 && extra_shards != 2 && extra_shards != 4) {
        shard_steps.push_back(extra_shards);
      }
      for (int shards : shard_steps) {
        RunStats sharded = row("index", true, shards);
        if (sharded.alerts != index.alerts ||
            sharded.dropped != index.dropped ||
            sharded.seed_skips != index.seed_skips) {
          std::fprintf(stderr,
                       "error: shard determinism violated at queries=%d "
                       "shards=%d: alerts %lld vs %lld, dropped %lld vs "
                       "%lld, seed_skips %lld vs %lld\n",
                       num_queries, shards,
                       static_cast<long long>(sharded.alerts),
                       static_cast<long long>(index.alerts),
                       static_cast<long long>(sharded.dropped),
                       static_cast<long long>(index.dropped),
                       static_cast<long long>(sharded.seed_skips),
                       static_cast<long long>(index.seed_skips));
          ok = false;
        }
      }
    }
  }
  // Constrained comparison: the same event stream under queries whose
  // every transition carries a max-gap guard, executed with guard-driven
  // per-partial expiry (the PartialTable deadline heap) vs window-only
  // expiry. Guards are enforced on extension either way, so the alert
  // streams must be identical; only peak live partials may differ — the
  // number this row exists to measure.
  if (max_gap > 0) {
    std::vector<TemporalConstraints> constraints;
    constraints.reserve(queries.size());
    for (const Pattern& q : queries) {
      TemporalConstraints c(q.edge_count());
      for (std::size_t k = 1; k < q.edge_count(); ++k) {
        c.mutable_guard(k).max_gap = max_gap;
      }
      constraints.push_back(std::move(c));
    }
    auto constrained_row = [&](const char* path, bool guard_expiry) {
      RunStats stats = RunEngine(queries, events, window, true, 1,
                                 constraints, guard_expiry);
      std::printf("%8d %8s %8d %14.0f %10lld %12zu %10lld %12lld\n",
                  max_queries, path, 1, stats.events_per_sec,
                  static_cast<long long>(stats.alerts), stats.peak_partials,
                  static_cast<long long>(stats.dropped),
                  static_cast<long long>(stats.seed_skips));
      json.Add(std::string("StreamEngine/") + path + "/queries:" +
                   std::to_string(max_queries) + "/max_gap:" +
                   std::to_string(max_gap),
               static_cast<double>(events.size()) / stats.events_per_sec,
               {{"events_per_sec", stats.events_per_sec},
                {"queries", static_cast<double>(max_queries)},
                {"max_gap", static_cast<double>(max_gap)},
                {"guard_expiry", guard_expiry ? 1.0 : 0.0},
                {"peak_partials", static_cast<double>(stats.peak_partials)},
                {"alerts", static_cast<double>(stats.alerts)},
                {"dropped", static_cast<double>(stats.dropped)}});
      return stats;
    };
    RunStats window_only = constrained_row("cons-win", false);
    RunStats guard_driven = constrained_row("cons-gex", true);
    if (window_only.dropped == 0 && guard_driven.dropped == 0 &&
        guard_driven.alerts != window_only.alerts) {
      std::fprintf(stderr,
                   "error: constrained alert mismatch at max_gap=%lld: "
                   "guard-expiry %lld vs window-only %lld\n",
                   static_cast<long long>(max_gap),
                   static_cast<long long>(guard_driven.alerts),
                   static_cast<long long>(window_only.alerts));
      ok = false;
    }
    if (guard_driven.peak_partials > window_only.peak_partials) {
      std::fprintf(stderr,
                   "error: guard expiry raised peak partials (%zu vs %zu)\n",
                   guard_driven.peak_partials, window_only.peak_partials);
      ok = false;
    }
    std::printf("  (max_gap=%lld guard expiry holds peak live partials at "
                "%zu vs %zu window-only, %.1fx reduction, identical "
                "alerts)\n",
                static_cast<long long>(max_gap),
                guard_driven.peak_partials, window_only.peak_partials,
                guard_driven.peak_partials > 0
                    ? static_cast<double>(window_only.peak_partials) /
                          static_cast<double>(guard_driven.peak_partials)
                    : 0.0);
  }

  std::printf("(events=%lld window=%lld entities=%lld; scan = wildcard "
              "full-scan path, index = entity-keyed partial index; shard "
              "rows need a multicore host for wall-clock scaling)\n",
              static_cast<long long>(num_events),
              static_cast<long long>(window),
              static_cast<long long>(num_entities));

  if (!json_out.empty() && !json.WriteTo(json_out)) return 1;
  return ok ? 0 : 1;
}
