#ifndef TGM_BENCH_BENCH_COMMON_H_
#define TGM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "query/pipeline.h"

namespace tgm::bench {

/// Minimal --key=value flag reader shared by the bench binaries. Every
/// binary runs with paper-shaped defaults when invoked without arguments.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  double GetDouble(const char* name, double fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return std::atof(value.c_str());
  }

  std::int64_t GetInt(const char* name, std::int64_t fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return std::atoll(value.c_str());
  }

 private:
  bool Find(const char* name, std::string* value) const {
    std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        *value = argv_[i] + prefix.size();
        return true;
      }
    }
    return false;
  }

  int argc_;
  char** argv_;
};

/// The default pipeline scale used by the accuracy benches: small enough
/// that the whole suite finishes in minutes, large enough that the Table 2
/// / Figure 11-12 shapes are stable. Raise with --runs/--background/
/// --instances/--scale to approach paper scale (100/10000/10000/1.0).
inline PipelineConfig DefaultPipelineConfig(const Flags& flags) {
  PipelineConfig config;
  config.dataset.runs_per_behavior =
      static_cast<int>(flags.GetInt("runs", 20));
  config.dataset.background_graphs =
      static_cast<int>(flags.GetInt("background", 100));
  config.dataset.test_instances =
      static_cast<int>(flags.GetInt("instances", 120));
  config.dataset.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.dataset.gen.size_scale = flags.GetDouble("scale", 1.0);
  config.query_size = static_cast<int>(flags.GetInt("query_size", 6));
  config.miner.max_millis = flags.GetInt("mine_budget_ms", 120000);
  return config;
}

/// Header banner shared by all bench binaries.
inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(scaled-down defaults; see EXPERIMENTS.md for paper-scale "
              "flags and shape notes)\n");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace tgm::bench

#endif  // TGM_BENCH_BENCH_COMMON_H_
