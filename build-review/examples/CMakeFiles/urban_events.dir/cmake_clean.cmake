file(REMOVE_RECURSE
  "CMakeFiles/urban_events.dir/urban_events.cpp.o"
  "CMakeFiles/urban_events.dir/urban_events.cpp.o.d"
  "urban_events"
  "urban_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
