// Shard-count determinism of the stream engine: because every shard sees
// every event and each query lives in exactly one shard, the merged alert
// stream — order and content — plus drops and per-query stats must be
// bit-identical across 1/2/4 shards and any batch size (mirroring
// parallel_miner_test.cc's approach for the miner). The TSAN CI job runs
// this suite to pin the batch fan-out / merge protocol race-free.

#include <gtest/gtest.h>

#include <vector>

#include "query/stream/engine.h"
#include "temporal/constraints.h"
#include "test_util.h"

namespace tgm {
namespace {

struct RunResult {
  std::vector<StreamAlert> alerts;
  std::size_t live_partials;
  std::int64_t dropped;
  std::vector<std::int64_t> per_query_drops;
  std::vector<std::int64_t> per_query_alerts;
};

RunResult RunEngine(const StreamEngine::Options& options,
                    const std::vector<Pattern>& queries,
                    const std::vector<StreamEvent>& events,
                    const std::vector<TemporalConstraints>& constraints = {}) {
  StreamEngine engine(options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (q < constraints.size()) {
      engine.AddQuery(queries[q], options.window, constraints[q]);
    } else {
      engine.AddQuery(queries[q]);
    }
  }
  RunResult result;
  auto sink = [&result](const StreamAlert& a) {
    result.alerts.push_back(a);
  };
  for (const StreamEvent& e : events) engine.OnEvent(e, sink);
  engine.Flush(sink);
  result.live_partials = engine.PartialCount();
  result.dropped = engine.dropped_partials();
  for (const EngineQueryStats& q : engine.Stats().queries) {
    result.per_query_drops.push_back(q.dropped_partials);
    result.per_query_alerts.push_back(q.alerts);
  }
  return result;
}

void ExpectIdentical(const RunResult& want, const RunResult& got,
                     int num_shards, std::size_t batch_size) {
  SCOPED_TRACE(::testing::Message() << "num_shards=" << num_shards
                                    << " batch_size=" << batch_size);
  EXPECT_EQ(want.alerts, got.alerts);
  EXPECT_EQ(want.live_partials, got.live_partials);
  EXPECT_EQ(want.dropped, got.dropped);
  EXPECT_EQ(want.per_query_drops, got.per_query_drops);
  EXPECT_EQ(want.per_query_alerts, got.per_query_alerts);
}

class StreamShardTest : public ::testing::TestWithParam<int> {
 protected:
  /// Randomized fixture: a strict-order event stream replayed against a
  /// handful of random behaviour queries.
  void BuildFixture(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    TemporalGraph log = tgm::testing::RandomGraph(rng, 8, 60, 2);
    for (const TemporalEdge& e : log.edges()) {
      events_.push_back(StreamEvent::FromEdge(log, e));
    }
    for (int q = 0; q < 6; ++q) {
      queries_.push_back(tgm::testing::RandomPattern(
          rng, 2 + static_cast<int>(rng() % 2), 2));
    }
  }

  std::vector<Pattern> queries_;
  std::vector<StreamEvent> events_;
};

TEST_P(StreamShardTest, AlertsIdenticalAcrossShardCounts) {
  BuildFixture(static_cast<std::uint64_t>(GetParam()) + 500);
  StreamEngine::Options base;
  base.window = 40;
  base.batch_size = 8;

  StreamEngine::Options serial = base;
  serial.num_shards = 1;
  RunResult want = RunEngine(serial, queries_, events_);
  EXPECT_FALSE(want.alerts.empty());  // fixtures must exercise the merge

  for (int num_shards : {2, 4}) {
    StreamEngine::Options options = base;
    options.num_shards = num_shards;
    ExpectIdentical(want, RunEngine(options, queries_, events_), num_shards,
                    base.batch_size);
  }
}

TEST_P(StreamShardTest, AlertsIdenticalAcrossBatchSizes) {
  BuildFixture(static_cast<std::uint64_t>(GetParam()) + 900);
  StreamEngine::Options base;
  base.window = 40;
  base.num_shards = 2;

  StreamEngine::Options serial = base;
  serial.batch_size = 1;
  RunResult want = RunEngine(serial, queries_, events_);

  for (std::size_t batch_size : {std::size_t{3}, std::size_t{16}}) {
    StreamEngine::Options options = base;
    options.batch_size = batch_size;
    ExpectIdentical(want, RunEngine(options, queries_, events_),
                    base.num_shards, batch_size);
  }
}

TEST_P(StreamShardTest, BackpressureDeterministicAcrossShards) {
  // A tight partial cap makes eviction order part of the observable
  // behaviour; it must not depend on the shard count either.
  BuildFixture(static_cast<std::uint64_t>(GetParam()) + 1300);
  StreamEngine::Options base;
  base.window = 40;
  base.batch_size = 4;
  base.max_partials_per_query = 3;

  StreamEngine::Options serial = base;
  serial.num_shards = 1;
  RunResult want = RunEngine(serial, queries_, events_);
  EXPECT_GT(want.dropped, 0);  // the cap must actually bite

  for (int num_shards : {2, 4}) {
    StreamEngine::Options options = base;
    options.num_shards = num_shards;
    ExpectIdentical(want, RunEngine(options, queries_, events_), num_shards,
                    base.batch_size);
  }
}

TEST_P(StreamShardTest, ConstrainedAlertsIdenticalAcrossShardsAndBatches) {
  // Timed-automata guards must not perturb the shard/batch determinism
  // oracle: a mix of guarded and plain queries yields one canonical alert
  // stream for every shard count and batch size.
  BuildFixture(static_cast<std::uint64_t>(GetParam()) + 1700);
  std::vector<TemporalConstraints> constraints;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    TemporalConstraints c(queries_[q].edge_count());
    switch (q % 4) {
      case 0:  // plain (trivial annotation)
        break;
      case 1:
        c.mutable_guard(1).max_gap = 25;
        break;
      case 2:
        c.mutable_guard(1).min_gap = 1;
        c.set_deadline(35);
        break;
      case 3:
        c.mutable_guard(0).elabel_alts = {kNoEdgeLabel};
        c.mutable_guard(1).max_since_seed = 30;
        break;
    }
    c.Normalize();
    constraints.push_back(std::move(c));
  }

  StreamEngine::Options base;
  base.window = 40;

  StreamEngine::Options serial = base;
  serial.num_shards = 1;
  serial.batch_size = 1;
  RunResult want = RunEngine(serial, queries_, events_, constraints);

  for (int num_shards : {2, 4}) {
    for (std::size_t batch_size : {std::size_t{1}, std::size_t{8}}) {
      StreamEngine::Options options = base;
      options.num_shards = num_shards;
      options.batch_size = batch_size;
      ExpectIdentical(want,
                      RunEngine(options, queries_, events_, constraints),
                      num_shards, batch_size);
    }
  }
}

TEST_P(StreamShardTest, DegenerateConstraintsBitIdenticalToUnconstrained) {
  // The degenerate-case parity pin (online half): a query annotated with
  // infinite gaps and single-alternative labels (each transition lists
  // only its own pattern label) must produce bit-identical alerts, drops,
  // and stats to the unconstrained path, across 1/2/4 shards and batch
  // sizes.
  BuildFixture(static_cast<std::uint64_t>(GetParam()) + 2100);
  std::vector<TemporalConstraints> degenerate;
  for (const Pattern& q : queries_) {
    TemporalConstraints c(q.edge_count());
    for (std::size_t k = 0; k < q.edge_count(); ++k) {
      c.mutable_guard(k).min_gap = 0;
      c.mutable_guard(k).max_gap = kNoGapLimit;
      c.mutable_guard(k).elabel_alts = {q.edge(k).elabel};
    }
    c.Normalize();
    degenerate.push_back(std::move(c));
  }

  StreamEngine::Options base;
  base.window = 40;
  for (int num_shards : {1, 2, 4}) {
    for (std::size_t batch_size : {std::size_t{1}, std::size_t{8}}) {
      StreamEngine::Options options = base;
      options.num_shards = num_shards;
      options.batch_size = batch_size;
      RunResult plain = RunEngine(options, queries_, events_);
      ExpectIdentical(plain,
                      RunEngine(options, queries_, events_, degenerate),
                      num_shards, batch_size);
      if (num_shards == 1) EXPECT_FALSE(plain.alerts.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamShardTest, ::testing::Range(0, 6));

TEST(StreamShardPlumbingTest, EveryShardSeesEveryEvent) {
  StreamEngine::Options options;
  options.window = 100;
  options.num_shards = 3;
  options.batch_size = 2;
  StreamEngine engine(options);
  ASSERT_EQ(engine.num_shards(), 3);
  for (int q = 0; q < 3; ++q) {
    engine.AddQuery(Pattern::SingleEdge(static_cast<LabelId>(q), 9));
  }
  auto sink = [](const StreamAlert&) {};
  for (int i = 0; i < 5; ++i) {
    engine.OnEvent(StreamEvent{i, 100 + i, 0, 9, kNoEdgeLabel, i}, sink);
  }
  engine.Flush(sink);
  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.shard_events.size(), 3u);
  for (std::int64_t count : stats.shard_events) EXPECT_EQ(count, 5);
}

TEST(StreamShardPlumbingTest, RoundRobinPartition) {
  StreamEngine::Options options;
  options.num_shards = 2;
  StreamEngine engine(options);
  for (int q = 0; q < 5; ++q) {
    engine.AddQuery(Pattern::SingleEdge(static_cast<LabelId>(q), 9));
  }
  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.queries.size(), 5u);
  for (std::size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(stats.queries[q].query_index, q);
    EXPECT_EQ(stats.queries[q].shard, q % 2);
  }
}

}  // namespace
}  // namespace tgm
