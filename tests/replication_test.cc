// Figure 16's SYN-k construction: replicating every graph k times leaves
// all frequencies — hence all scores and the mined pattern set — exactly
// invariant, while multiplying the work. These tests pin down the
// invariance; the bench measures the (linear) cost growth.

#include <gtest/gtest.h>

#include "mining/miner.h"
#include "syslog/dataset.h"
#include "test_util.h"

namespace tgm {
namespace {

class ReplicationTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationTest, ScoresInvariantUnderReplication) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(tgm::testing::RandomGraph(rng, 5, 8, 2));
    neg.push_back(tgm::testing::RandomGraph(rng, 5, 8, 2));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  config.top_k = 512;
  MineResult base = Miner(config, pos, neg).Mine();

  int factor = 2 + GetParam() % 3;
  std::vector<TemporalGraph> pos_syn = ReplicateGraphs(pos, factor);
  std::vector<TemporalGraph> neg_syn = ReplicateGraphs(neg, factor);
  MineResult replicated = Miner(config, pos_syn, neg_syn).Mine();

  EXPECT_DOUBLE_EQ(base.best_score, replicated.best_score);
  ASSERT_EQ(base.top.size(), replicated.top.size());
  for (std::size_t i = 0; i < base.top.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.top[i].score, replicated.top[i].score);
    EXPECT_DOUBLE_EQ(base.top[i].freq_pos, replicated.top[i].freq_pos);
    EXPECT_DOUBLE_EQ(base.top[i].freq_neg, replicated.top[i].freq_neg);
  }
  EXPECT_EQ(replicated.top.front().support_pos,
            base.top.front().support_pos * factor);
}

TEST_P(ReplicationTest, VisitedPatternsInvariantUnderReplication) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  std::vector<TemporalGraph> pos = {tgm::testing::RandomGraph(rng, 4, 6, 2)};
  std::vector<TemporalGraph> neg = {tgm::testing::RandomGraph(rng, 4, 6, 2)};
  MinerConfig config;
  config.max_edges = 3;
  config.use_naive_bound = false;
  config.use_subgraph_pruning = false;
  config.use_supergraph_pruning = false;
  MineResult base = Miner(config, pos, neg).Mine();
  MineResult replicated = Miner(config, ReplicateGraphs(pos, 3),
                                ReplicateGraphs(neg, 3))
                              .Mine();
  // The pattern space does not change — only the per-pattern work does.
  EXPECT_EQ(base.stats.patterns_visited, replicated.stats.patterns_visited);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace tgm
