# Empty compiler generated dependencies file for tgminer.
# This may be replaced when dependencies are built.
