file(REMOVE_RECURSE
  "CMakeFiles/miner_pruning_test.dir/miner_pruning_test.cc.o"
  "CMakeFiles/miner_pruning_test.dir/miner_pruning_test.cc.o.d"
  "miner_pruning_test"
  "miner_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
