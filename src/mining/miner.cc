#include "mining/miner.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "exec/parallel_for.h"

namespace tgm {

namespace {

NodeId FindMappedNode(const std::vector<NodeId>& nodes, NodeId data_node) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == data_node) return static_cast<NodeId>(i);
  }
  return kNewNode;
}

std::size_t CountEmbeddings(const EmbeddingTable& table) {
  std::size_t n = 0;
  for (const GraphEmbeddings& ge : table) n += ge.embeds.size();
  return n;
}

}  // namespace

Miner::Miner(const MinerConfig& config,
             std::vector<const TemporalGraph*> positives,
             std::vector<const TemporalGraph*> negatives)
    : config_(config),
      pos_graphs_(std::move(positives)),
      neg_graphs_(std::move(negatives)),
      score_(config.score_kind, static_cast<std::int64_t>(pos_graphs_.size()),
             static_cast<std::int64_t>(neg_graphs_.size()), config.epsilon),
      pool_(ResolveNumThreads(config.num_threads) > 1
                ? std::make_unique<ThreadPool>(
                      ResolveNumThreads(config.num_threads) - 1)
                : nullptr),
      tester_(MakeTester(config.subgraph_algo)),
      registry_(config.residual_algo),
      best_score_(-std::numeric_limits<double>::infinity()) {
  TGM_CHECK(config_.max_edges >= 1);
  TGM_CHECK(!pos_graphs_.empty());
  TGM_CHECK(!neg_graphs_.empty());
  for (const TemporalGraph* g : pos_graphs_) TGM_CHECK(g->finalized());
  for (const TemporalGraph* g : neg_graphs_) TGM_CHECK(g->finalized());
}

Miner::Miner(const MinerConfig& config,
             const std::vector<TemporalGraph>& positives,
             const std::vector<TemporalGraph>& negatives)
    : Miner(config,
            [&positives] {
              std::vector<const TemporalGraph*> ptrs;
              ptrs.reserve(positives.size());
              for (const TemporalGraph& g : positives) ptrs.push_back(&g);
              return ptrs;
            }(),
            [&negatives] {
              std::vector<const TemporalGraph*> ptrs;
              ptrs.reserve(negatives.size());
              for (const TemporalGraph& g : negatives) ptrs.push_back(&g);
              return ptrs;
            }()) {}

std::int64_t Miner::DedupeAndCapGraph(GraphEmbeddings& ge) const {
  std::sort(ge.embeds.begin(), ge.embeds.end());
  ge.embeds.erase(std::unique(ge.embeds.begin(), ge.embeds.end()),
                  ge.embeds.end());
  if (config_.max_embeddings_per_graph > 0 &&
      static_cast<std::int64_t>(ge.embeds.size()) >
          config_.max_embeddings_per_graph) {
    ge.embeds.resize(
        static_cast<std::size_t>(config_.max_embeddings_per_graph));
    return 1;
  }
  return 0;
}

std::int64_t Miner::DedupeAndCap(EmbeddingTable& table) const {
  std::int64_t cap_hits = 0;
  for (GraphEmbeddings& ge : table) cap_hits += DedupeAndCapGraph(ge);
  return cap_hits;
}

void Miner::DedupeAndCapAll(const std::vector<EmbeddingTable*>& tables) {
  std::size_t total_embeddings = 0;
  for (const EmbeddingTable* table : tables) {
    total_embeddings += CountEmbeddings(*table);
  }
  if (pool_ == nullptr ||
      static_cast<std::int64_t>(total_embeddings) <
          config_.parallel_min_embeddings) {
    for (EmbeddingTable* table : tables) {
      stats_.embedding_cap_hits += DedupeAndCap(*table);
    }
    return;
  }
  // One unit per (table, graph) entry so a single large child still
  // spreads across the pool. Cap hits are folded in index order.
  std::vector<GraphEmbeddings*> units;
  for (EmbeddingTable* table : tables) {
    for (GraphEmbeddings& ge : *table) units.push_back(&ge);
  }
  std::vector<std::int64_t> cap_hits(units.size(), 0);
  ParallelFor(pool_.get(), units.size(),
              [&](std::size_t i) { cap_hits[i] = DedupeAndCapGraph(*units[i]); });
  for (std::int64_t h : cap_hits) stats_.embedding_cap_hits += h;
}

void Miner::CollectGraphExtensions(
    const GraphEmbeddings& ge, const TemporalGraph& g,
    std::map<ExtensionKey, std::vector<Embedding>>& out) const {
  const auto& edges = g.edges();
  for (const Embedding& emb : ge.embeds) {
    for (std::size_t p = static_cast<std::size_t>(emb.last) + 1;
         p < edges.size(); ++p) {
      const TemporalEdge& e = edges[p];
      NodeId u = FindMappedNode(emb.nodes, e.src);
      NodeId v = FindMappedNode(emb.nodes, e.dst);
      if (u == kNewNode && v == kNewNode) continue;  // not T-connected
      ExtensionKey key;
      key.src = u;
      key.dst = v;
      key.src_label = g.label(e.src);
      key.dst_label = g.label(e.dst);
      key.elabel = e.elabel;
      Embedding child;
      child.nodes = emb.nodes;
      if (u == kNewNode) child.nodes.push_back(e.src);
      if (v == kNewNode) child.nodes.push_back(e.dst);
      child.last = static_cast<EdgePos>(p);
      out[key].push_back(std::move(child));
    }
  }
}

void Miner::CollectExtensions(const EmbeddingTable& table,
                              const std::vector<const TemporalGraph*>& graphs,
                              bool positive_side,
                              std::map<ExtensionKey, ChildBuckets>& out)
    const {
  if (pool_ != nullptr && table.size() > 1 &&
      static_cast<std::int64_t>(CountEmbeddings(table)) >=
          config_.parallel_min_embeddings) {
    // Each graph's contribution is computed independently in parallel and
    // merged in ascending graph order — the exact order the serial loop
    // visits graphs — so `out` is identical for every thread count.
    std::vector<std::map<ExtensionKey, std::vector<Embedding>>> per_graph(
        table.size());
    ParallelFor(pool_.get(), table.size(), [&](std::size_t i) {
      const GraphEmbeddings& ge = table[i];
      CollectGraphExtensions(ge, *graphs[static_cast<std::size_t>(ge.graph)],
                             per_graph[i]);
    });
    for (std::size_t i = 0; i < table.size(); ++i) {
      for (auto& [key, embeds] : per_graph[i]) {
        ChildBuckets& bucket = out[key];
        EmbeddingTable& side = positive_side ? bucket.pos : bucket.neg;
        side.push_back(GraphEmbeddings{table[i].graph, std::move(embeds)});
      }
    }
    return;
  }
  // Serial path: build the buckets directly, graph by graph.
  for (const GraphEmbeddings& ge : table) {
    std::map<ExtensionKey, std::vector<Embedding>> local;
    CollectGraphExtensions(ge, *graphs[static_cast<std::size_t>(ge.graph)],
                           local);
    for (auto& [key, embeds] : local) {
      ChildBuckets& bucket = out[key];
      EmbeddingTable& side = positive_side ? bucket.pos : bucket.neg;
      side.push_back(GraphEmbeddings{ge.graph, std::move(embeds)});
    }
  }
}

ResidualSet Miner::BuildResidual(
    const EmbeddingTable& table,
    const std::vector<const TemporalGraph*>& graphs) const {
  std::vector<std::pair<std::int32_t, EdgePos>> cuts;
  for (const GraphEmbeddings& ge : table) {
    for (const Embedding& emb : ge.embeds) {
      cuts.emplace_back(ge.graph, emb.last);
    }
  }
  return ResidualSet(std::move(cuts), graphs);
}

Pattern Miner::Grow(const Pattern& parent, const ExtensionKey& key) const {
  if (key.src != kNewNode && key.dst != kNewNode) {
    return parent.GrowInward(key.src, key.dst, key.elabel);
  }
  if (key.src != kNewNode) {
    return parent.GrowForward(key.src, key.dst_label, key.elabel);
  }
  TGM_DCHECK(key.dst != kNewNode);
  return parent.GrowBackward(key.src_label, key.dst, key.elabel);
}

void Miner::UpdateTop(const Pattern& pattern, double freq_pos,
                      double freq_neg, double score,
                      std::int64_t support_pos, std::int64_t support_neg) {
  if (support_pos == 0) return;  // patterns absent from Gp are never queries
  // The support floor is a hard constraint on results as well as on
  // expansion: a pattern occurring in a minority of the behaviour's runs is
  // run-specific noise, not a behaviour signature, no matter its score.
  if (freq_pos < config_.min_pos_freq) return;
  best_score_ = std::max(best_score_, score);
  if (static_cast<int>(top_.size()) >= config_.top_k &&
      score <= top_.back().score) {
    return;
  }
  MinedPattern mined;
  mined.pattern = pattern;
  mined.freq_pos = freq_pos;
  mined.freq_neg = freq_neg;
  mined.score = score;
  mined.support_pos = support_pos;
  mined.support_neg = support_neg;
  // Insert keeping descending score order, stable for equal scores.
  auto it = std::upper_bound(top_.begin(), top_.end(), mined,
                             [](const MinedPattern& a, const MinedPattern& b) {
                               return a.score > b.score;
                             });
  top_.insert(it, std::move(mined));
  if (static_cast<int>(top_.size()) > config_.top_k) top_.pop_back();
}

bool Miner::TrySubgraphPrune(const Pattern& pattern,
                             const ResidualSet& pos_res,
                             double* inherited_bound) {
  bool pruned = false;
  registry_.ForEachPosCandidate(
      pos_res.i_value(), pos_res.cuts(), &stats_.residual_equiv_tests,
      [&](const RegisteredPattern& g1) {
        // Optional eager gate: only a reference branch that never reached
        // the current best score can justify pruning (Lemma 4), so a
        // practical implementation may skip the tests outright.
        if (config_.check_reference_score_first &&
            g1.branch_best >= best_score_) {
          return true;
        }
        if (static_cast<std::int32_t>(pattern.edge_count()) > g1.edge_count) {
          return true;
        }
        ++stats_.subgraph_tests;
        auto mapping = tester_->FindMapping(pattern, g1.pattern);
        if (!mapping.has_value()) return true;
        // Condition (3): labels of g1 nodes that no node of the current
        // pattern maps to must not occur in the current pattern's positive
        // residual node label set.
        std::vector<bool> mapped(static_cast<std::size_t>(g1.node_count),
                                 false);
        for (NodeId target : *mapping) {
          mapped[static_cast<std::size_t>(target)] = true;
        }
        for (std::size_t v = 0; v < mapped.size(); ++v) {
          if (mapped[v]) continue;
          LabelId l = g1.pattern.label(static_cast<NodeId>(v));
          if (pos_res.ResidualLabelSetContains(l, pos_graphs_)) return true;
        }
        // The prune itself is gated on the reference branch's best score
        // (checked last in the paper's order).
        if (g1.branch_best >= best_score_) return true;
        pruned = true;
        *inherited_bound = g1.branch_best;
        return false;
      });
  return pruned;
}

bool Miner::TrySupergraphPrune(const Pattern& pattern,
                               const ResidualSet& pos_res,
                               const ResidualSet& neg_res,
                               double* inherited_bound) {
  bool pruned = false;
  registry_.ForEachPosCandidate(
      pos_res.i_value(), pos_res.cuts(), &stats_.residual_equiv_tests,
      [&](const RegisteredPattern& g1) {
        if (config_.check_reference_score_first &&
            g1.branch_best >= best_score_) {
          return true;
        }
        if (g1.node_count != static_cast<std::int32_t>(pattern.node_count())) {
          return true;
        }
        if (g1.edge_count > static_cast<std::int32_t>(pattern.edge_count())) {
          return true;
        }
        // Negative residual sets must match as well.
        ++stats_.residual_equiv_tests;
        if (registry_.algo() == ResidualEquivAlgo::kIValue) {
          if (g1.neg_i_value != neg_res.i_value()) return true;
        } else {
          if (g1.neg_cuts != neg_res.cuts()) return true;
        }
        ++stats_.subgraph_tests;
        if (!tester_->Contains(g1.pattern, pattern)) return true;
        if (g1.branch_best >= best_score_) return true;
        pruned = true;
        *inherited_bound = g1.branch_best;
        return false;
      });
  return pruned;
}

double Miner::Dfs(const Pattern& pattern, EmbeddingTable pos_table,
                  EmbeddingTable neg_table) {
  ++stats_.patterns_visited;

  std::int64_t support_pos = static_cast<std::int64_t>(pos_table.size());
  std::int64_t support_neg = static_cast<std::int64_t>(neg_table.size());
  double freq_pos = static_cast<double>(support_pos) /
                    static_cast<double>(pos_graphs_.size());
  double freq_neg = static_cast<double>(support_neg) /
                    static_cast<double>(neg_graphs_.size());
  double own_score = score_(freq_pos, freq_neg);
  UpdateTop(pattern, freq_pos, freq_neg, own_score, support_pos, support_neg);

  if (static_cast<int>(pattern.edge_count()) >= config_.max_edges) {
    return own_score;
  }
  if (BudgetExhausted()) return own_score;
  if (config_.use_naive_bound && support_pos == 0) {
    // F(0, y) is the global minimum and frequency is anti-monotone: every
    // supergraph also has zero positive support. This is the degenerate
    // case of the Section 4.1 bound.
    ++stats_.naive_prunes;
    return own_score;
  }
  if (config_.use_naive_bound &&
      score_.UpperBound(freq_pos) < best_score_) {
    ++stats_.naive_prunes;
    return own_score;
  }
  if (config_.stop_at_top_k_ties &&
      static_cast<int>(top_.size()) >= config_.top_k &&
      score_.UpperBound(freq_pos) <= top_.back().score) {
    ++stats_.naive_prunes;
    return own_score;
  }
  if (freq_pos < config_.min_pos_freq) {
    return own_score;
  }

  ResidualSet pos_res = BuildResidual(pos_table, pos_graphs_);
  ResidualSet neg_res = BuildResidual(neg_table, neg_graphs_);

  double inherited = 0.0;
  if (config_.use_subgraph_pruning &&
      TrySubgraphPrune(pattern, pos_res, &inherited)) {
    ++stats_.subgraph_prune_triggers;
    RegisteredPattern entry;
    entry.pattern = pattern;
    entry.pos_i_value = pos_res.i_value();
    entry.neg_i_value = neg_res.i_value();
    entry.node_count = static_cast<std::int32_t>(pattern.node_count());
    entry.edge_count = static_cast<std::int32_t>(pattern.edge_count());
    entry.branch_best = inherited;  // bound from the mirrored branch
    entry.pos_cuts = pos_res.cuts();
    entry.neg_cuts = neg_res.cuts();
    registry_.Add(std::move(entry));
    return std::max(own_score, inherited);
  }
  if (config_.use_supergraph_pruning &&
      TrySupergraphPrune(pattern, pos_res, neg_res, &inherited)) {
    ++stats_.supergraph_prune_triggers;
    RegisteredPattern entry;
    entry.pattern = pattern;
    entry.pos_i_value = pos_res.i_value();
    entry.neg_i_value = neg_res.i_value();
    entry.node_count = static_cast<std::int32_t>(pattern.node_count());
    entry.edge_count = static_cast<std::int32_t>(pattern.edge_count());
    entry.branch_best = inherited;
    entry.pos_cuts = pos_res.cuts();
    entry.neg_cuts = neg_res.cuts();
    registry_.Add(std::move(entry));
    return std::max(own_score, inherited);
  }

  ++stats_.patterns_expanded;
  std::map<ExtensionKey, ChildBuckets> extensions;
  CollectExtensions(pos_table, pos_graphs_, /*positive_side=*/true,
                    extensions);
  CollectExtensions(neg_table, neg_graphs_, /*positive_side=*/false,
                    extensions);
  // Release the parent's tables before recursing.
  pos_table.clear();
  pos_table.shrink_to_fit();
  neg_table.clear();
  neg_table.shrink_to_fit();

  struct ChildWork {
    ExtensionKey key;
    ChildBuckets buckets;
    double score = 0.0;
  };
  std::vector<ChildWork> children;
  children.reserve(extensions.size());
  for (auto& [key, buckets] : extensions) {
    ChildWork work;
    work.key = key;
    double cfp = static_cast<double>(buckets.pos.size()) /
                 static_cast<double>(pos_graphs_.size());
    double cfn = static_cast<double>(buckets.neg.size()) /
                 static_cast<double>(neg_graphs_.size());
    work.score = score_(cfp, cfn);
    work.buckets = std::move(buckets);
    children.push_back(std::move(work));
  }
  extensions.clear();
  if (config_.order_children_by_score) {
    std::stable_sort(children.begin(), children.end(),
                     [](const ChildWork& a, const ChildWork& b) {
                       return a.score > b.score;
                     });
  }

  // With a pool, per-graph embedding evaluation for every child happens up
  // front, in parallel across (child, graph) units; the recursion below
  // then visits children in the exact serial order with all pruning state
  // sequential. Serial runs keep the seed's lazy per-child dedupe so a
  // budget break skips the work for children that are never visited (the
  // parallel pre-pass may therefore count cap hits for unvisited children
  // on budget-truncated runs; ranked results are unaffected).
  const bool prededuped = pool_ != nullptr && !BudgetExhausted();
  if (prededuped) {
    std::vector<EmbeddingTable*> child_tables;
    child_tables.reserve(children.size() * 2);
    for (ChildWork& child : children) {
      child_tables.push_back(&child.buckets.pos);
      child_tables.push_back(&child.buckets.neg);
    }
    DedupeAndCapAll(child_tables);
  }

  double branch_best = own_score;
  for (ChildWork& child : children) {
    Pattern grown = Grow(pattern, child.key);
    if (!prededuped) {
      stats_.embedding_cap_hits += DedupeAndCap(child.buckets.pos);
      stats_.embedding_cap_hits += DedupeAndCap(child.buckets.neg);
    }
    double sub = Dfs(grown, std::move(child.buckets.pos),
                     std::move(child.buckets.neg));
    branch_best = std::max(branch_best, sub);
    if (BudgetExhausted()) break;
  }

  RegisteredPattern entry;
  entry.pattern = pattern;
  entry.pos_i_value = pos_res.i_value();
  entry.neg_i_value = neg_res.i_value();
  entry.node_count = static_cast<std::int32_t>(pattern.node_count());
  entry.edge_count = static_cast<std::int32_t>(pattern.edge_count());
  entry.branch_best = branch_best;
  entry.pos_cuts = pos_res.cuts();
  entry.neg_cuts = neg_res.cuts();
  registry_.Add(std::move(entry));
  return branch_best;
}

bool Miner::BudgetExhausted() {
  if (config_.max_visited > 0 &&
      stats_.patterns_visited >= config_.max_visited) {
    return true;
  }
  if (config_.max_millis > 0) {
    // Amortize the clock read: check every 64 visited patterns.
    if ((stats_.patterns_visited & 63) == 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
      if (elapsed >= config_.max_millis) {
        stats_.timed_out = true;
      }
    }
    if (stats_.timed_out) return true;
  }
  return false;
}

MineResult Miner::Mine() {
  start_time_ = std::chrono::steady_clock::now();
  auto start = start_time_;

  // Root level: bucket every data edge into a one-edge pattern. Both
  // endpoints are new, so the extension-key machinery is special-cased.
  using RootKey = std::tuple<LabelId, LabelId, LabelId>;
  std::map<RootKey, ChildBuckets> roots;
  auto scan_side = [&](const std::vector<const TemporalGraph*>& graphs,
                       bool positive) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const TemporalGraph& g = *graphs[gi];
      const auto& edges = g.edges();
      for (std::size_t p = 0; p < edges.size(); ++p) {
        const TemporalEdge& e = edges[p];
        TGM_CHECK(e.src != e.dst);  // self-loops unsupported by the miner
        RootKey key{g.label(e.src), g.label(e.dst), e.elabel};
        ChildBuckets& bucket = roots[key];
        EmbeddingTable& side = positive ? bucket.pos : bucket.neg;
        if (side.empty() ||
            side.back().graph != static_cast<std::int32_t>(gi)) {
          side.push_back(GraphEmbeddings{static_cast<std::int32_t>(gi), {}});
        }
        Embedding emb;
        emb.nodes = {e.src, e.dst};
        emb.last = static_cast<EdgePos>(p);
        side.back().embeds.push_back(std::move(emb));
      }
    }
  };
  scan_side(pos_graphs_, true);
  scan_side(neg_graphs_, false);

  struct RootWork {
    RootKey key;
    ChildBuckets buckets;
    double score = 0.0;
  };
  std::vector<RootWork> work;
  work.reserve(roots.size());
  for (auto& [key, buckets] : roots) {
    RootWork w;
    w.key = key;
    double fp = static_cast<double>(buckets.pos.size()) /
                static_cast<double>(pos_graphs_.size());
    double fn = static_cast<double>(buckets.neg.size()) /
                static_cast<double>(neg_graphs_.size());
    w.score = score_(fp, fn);
    w.buckets = std::move(buckets);
    work.push_back(std::move(w));
  }
  roots.clear();
  if (config_.order_children_by_score) {
    std::stable_sort(work.begin(), work.end(),
                     [](const RootWork& a, const RootWork& b) {
                       return a.score > b.score;
                     });
  }

  // With a pool, root-bucket preparation is data-parallel across
  // (root, graph) units; the DFS dispatch below stays sequential so every
  // pruning decision sees the same registry/best-score state as a serial
  // run. Serial runs keep the seed's lazy per-root dedupe (see Dfs).
  const bool prededuped = pool_ != nullptr;
  if (prededuped) {
    std::vector<EmbeddingTable*> root_tables;
    root_tables.reserve(work.size() * 2);
    for (RootWork& w : work) {
      root_tables.push_back(&w.buckets.pos);
      root_tables.push_back(&w.buckets.neg);
    }
    DedupeAndCapAll(root_tables);
  }

  for (RootWork& w : work) {
    Pattern root = Pattern::SingleEdge(std::get<0>(w.key), std::get<1>(w.key),
                                       std::get<2>(w.key));
    if (!prededuped) {
      stats_.embedding_cap_hits += DedupeAndCap(w.buckets.pos);
      stats_.embedding_cap_hits += DedupeAndCap(w.buckets.neg);
    }
    Dfs(root, std::move(w.buckets.pos), std::move(w.buckets.neg));
    if (BudgetExhausted()) break;
  }

  MineResult result;
  result.top = top_;
  result.best_score = best_score_;
  stats_.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats = stats_;
  return result;
}

}  // namespace tgm
