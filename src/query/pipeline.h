#ifndef TGM_QUERY_PIPELINE_H_
#define TGM_QUERY_PIPELINE_H_

#include <optional>
#include <vector>

#include "api/session.h"
#include "mining/miner.h"
#include "nontemporal/gspan.h"
#include "query/evaluator.h"
#include "query/interest.h"
#include "query/nodeset.h"
#include "query/static_search.h"
#include "syslog/dataset.h"

namespace tgm {

/// End-to-end configuration of the behaviour-query-formulation pipeline
/// (Figure 2): closed-environment collection -> discriminative mining ->
/// domain-knowledge ranking -> query search over the test log ->
/// precision/recall evaluation.
struct PipelineConfig {
  DatasetConfig dataset;
  /// Behaviour query size: the size of the largest patterns the miners are
  /// allowed to explore (Section 6.2 fixes this to 6).
  int query_size = 6;
  /// Number of top-ranked patterns used to build the behaviour query.
  int top_patterns = 5;
  /// NodeSet baseline keyword count.
  int nodeset_k = 6;
  /// Search window = longest observed training lifetime * window_slack.
  double window_slack = 1.25;
  std::int64_t search_match_cap = 200000;
  /// Base miner configuration; max_edges is overridden per run. The
  /// accuracy pipeline uses the top-k tie cut (query formulation needs the
  /// top patterns, not the full tie plateau) and a support floor of 0.5 —
  /// a behaviour signature occurs in most runs of the behaviour.
  MinerConfig miner = [] {
    MinerConfig c = MinerConfig::TGMiner();
    c.min_pos_freq = 0.75;
    c.max_embeddings_per_graph = 2000;
    c.stop_at_top_k_ties = true;
    c.check_reference_score_first = true;
    c.top_k = 64;
    return c;
  }();
  GspanConfig gspan = [] {
    GspanConfig c;
    c.min_pos_freq = 0.75;
    c.max_embeddings_per_graph = 2000;
    c.stop_at_top_k_ties = true;
    c.top_k = 64;
    return c;
  }();
};

/// Owns the simulated world, training data and test log, and runs the
/// three approaches of Table 2 (TGMiner, Ntemp, NodeSet) end to end.
///
/// Back-compat facade: since the api/ front door landed, the temporal
/// stages (MineTemporal, SearchTemporal, MonitorTemporal) are thin
/// wrappers over an embedded `api::Session` — the syslog simulator is
/// just one Session data source, its training corpora and test log
/// attached under the names below. New code should use `session()` (or a
/// standalone Session) directly; this class keeps the original
/// constructor-and-stages API for the paper-replication benches and
/// tests, plus the non-temporal baselines (Ntemp, NodeSet) that exist
/// only for Table 2.
class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config)
      : config_(config),
        session_(&world_.dict(), [&config] {
          api::SessionOptions options;
          options.search_match_cap = config.search_match_cap;
          return options;
        }()) {}

  /// Not copyable or movable: the embedded session holds pointers into
  /// this object's own members (world_'s dictionary, the training_ /
  /// test_log_ corpus views), which a move would leave dangling in the
  /// moved-to instance. Heap-allocate (or wrap in unique_ptr) to hand a
  /// Pipeline around.
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Generates training and test data and attaches it to the session;
  /// idempotent.
  void Prepare();

  const PipelineConfig& config() const { return config_; }
  SyslogWorld& world() { return world_; }
  const TrainingData& training() const { return training_; }
  const TestLog& test_log() const { return test_log_; }
  const InterestModel& interest() const { return *interest_; }

  /// The underlying api::Session: the simulator's corpora are attached as
  /// PositivesCorpus(i) / kBackgroundCorpus / kTestLogCorpus after
  /// Prepare(). Use it to Mine/Search/Watch/persist BehaviorQuery
  /// artifacts over the simulated world directly.
  api::Session& session() { return session_; }
  const api::Session& session() const { return session_; }

  static constexpr std::string_view kBackgroundCorpus = "train/background";
  static constexpr std::string_view kTestLogCorpus = "test/log";
  static std::string PositivesCorpus(int behavior_idx) {
    return "train/positives/" + std::to_string(behavior_idx);
  }

  /// Positive/negative graph pointer views, truncated to the first
  /// ceil(fraction * n) graphs (the Figure 12/15 training-amount knob).
  std::vector<const TemporalGraph*> Positives(int behavior_idx,
                                              double fraction = 1.0) const;
  std::vector<const TemporalGraph*> Negatives(double fraction = 1.0) const;

  /// Search window for a behaviour (longest observed lifetime * slack).
  Timestamp WindowFor(int behavior_idx) const;

  // --- composable stages -------------------------------------------------

  MineResult MineTemporal(int behavior_idx, const MinerConfig& miner_config,
                          double fraction = 1.0) const;
  std::vector<MinedPattern> TemporalQueries(const MineResult& result) const;
  std::vector<Interval> SearchTemporal(
      int behavior_idx, const std::vector<MinedPattern>& queries) const;
  /// Online analogue of SearchTemporal: registers the formulated behaviour
  /// queries with the stream engine (src/query/stream/) and replays the
  /// test log as a live event stream. Returns the distinct alert
  /// intervals, sorted ascending — identical for every `num_shards`
  /// (<= 0 means all hardware threads).
  std::vector<Interval> MonitorTemporal(
      int behavior_idx, const std::vector<MinedPattern>& queries,
      int num_shards = 1) const;

  GspanResult MineStatic(int behavior_idx, double fraction = 1.0);
  std::vector<Interval> SearchStatic(
      int behavior_idx, const std::vector<StaticMinedPattern>& queries) const;

  NodeSetQuery MineNodeSet(int behavior_idx, double fraction = 1.0) const;
  std::vector<Interval> SearchNodeSet(int behavior_idx,
                                      const NodeSetQuery& query) const;

  AccuracyResult Evaluate(int behavior_idx,
                          const std::vector<Interval>& matches) const;

  // --- end-to-end runs (Table 2 cells) -------------------------------------

  AccuracyResult RunTGMiner(int behavior_idx, int query_size = -1,
                            double fraction = 1.0) const;
  AccuracyResult RunNtemp(int behavior_idx, double fraction = 1.0);
  AccuracyResult RunNodeSet(int behavior_idx, double fraction = 1.0) const;

 private:
  const std::vector<StaticGraph>& StaticPositives(int behavior_idx);
  const std::vector<StaticGraph>& StaticNegatives();

  PipelineConfig config_;
  SyslogWorld world_;
  TrainingData training_;
  TestLog test_log_;
  /// Shares world_'s dictionary and holds non-owning corpus views over
  /// training_/test_log_ (attached in Prepare). Declared after them so
  /// the session — and with it the dangling-able views — is destroyed
  /// first; construction order is irrelevant (the constructor only needs
  /// world_.dict()).
  api::Session session_;
  std::optional<InterestModel> interest_;
  std::vector<std::vector<StaticGraph>> static_pos_cache_;
  std::vector<StaticGraph> static_neg_cache_;
  bool prepared_ = false;
};

}  // namespace tgm

#endif  // TGM_QUERY_PIPELINE_H_
