#include "query/stream/compiled_plan.h"

namespace tgm {

namespace {

/// min of two horizons where kNoGapLimit means +infinity.
Timestamp MinHorizon(Timestamp a, Timestamp b) {
  if (a == kNoGapLimit) return b;
  if (b == kNoGapLimit) return a;
  return a < b ? a : b;
}

}  // namespace

CompiledQueryPlan::CompiledQueryPlan(const Pattern& pattern,
                                     const TemporalConstraints& constraints)
    : pattern_(pattern),
      deadline_(constraints.deadline() > 0 ? constraints.deadline() : 0),
      constrained_(!constraints.IsTrivial()) {
  TGM_CHECK(pattern_.edge_count() >= 1);
  transitions_.reserve(pattern_.edge_count());
  // Canonical numbering: nodes are numbered by first appearance in temporal
  // edge order, so the nodes bound after matching edges [0, k) are exactly
  // the slots [0, max id seen + 1).
  std::uint32_t bound = 0;
  for (std::size_t k = 0; k < pattern_.edge_count(); ++k) {
    const PatternEdge& qe = pattern_.edge(k);
    const TransitionGuard& g = constraints.guard(k);
    PlanTransition t;
    t.elabel = qe.elabel;
    t.src = qe.src;
    t.dst = qe.dst;
    t.src_label = pattern_.label(qe.src);
    t.dst_label = pattern_.label(qe.dst);
    t.self_loop = qe.src == qe.dst;
    t.src_bound = static_cast<std::uint32_t>(qe.src) < bound;
    t.dst_bound = static_cast<std::uint32_t>(qe.dst) < bound;
    t.bound_nodes = bound;
    t.min_gap = g.min_gap;
    t.max_gap = g.max_gap;
    t.min_since_seed = g.min_since_seed;
    t.max_since_seed = g.max_since_seed;
    // The pattern's own label never needs to be listed twice. Sorted +
    // deduped here so AcceptsLabel's binary_search holds even for callers
    // that skipped TemporalConstraints::Normalize.
    for (LabelId alt : g.elabel_alts) {
      if (alt != qe.elabel) t.elabel_alts.push_back(alt);
    }
    std::sort(t.elabel_alts.begin(), t.elabel_alts.end());
    t.elabel_alts.erase(
        std::unique(t.elabel_alts.begin(), t.elabel_alts.end()),
        t.elabel_alts.end());
    transitions_.push_back(std::move(t));
    std::uint32_t high = static_cast<std::uint32_t>(qe.src > qe.dst ? qe.src
                                                                    : qe.dst);
    if (high + 1 > bound) bound = high + 1;
  }
  // seed_horizon(k) = min over j >= k of max_since_seed(j), folded with
  // the deadline (the final edge must land within it): the latest
  // now - first_ts at which a partial waiting on transition k can still
  // complete. A suffix-min scan, so tighter later guards pull earlier
  // expiry forward through the whole prefix.
  Timestamp horizon = deadline_ > 0 ? deadline_ : kNoGapLimit;
  for (std::size_t k = transitions_.size(); k-- > 0;) {
    horizon = MinHorizon(horizon, transitions_[k].max_since_seed);
    transitions_[k].seed_horizon = horizon;
  }
}

std::vector<std::pair<LabelId, LabelId>> CompiledQueryPlan::SeedDispatchKeys()
    const {
  const PlanTransition& t = transitions_[0];
  std::vector<std::pair<LabelId, LabelId>> keys;
  keys.reserve(1 + t.elabel_alts.size());
  keys.emplace_back(t.elabel, t.src_label);
  for (LabelId alt : t.elabel_alts) keys.emplace_back(alt, t.src_label);
  return keys;
}

}  // namespace tgm
