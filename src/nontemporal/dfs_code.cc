#include "nontemporal/dfs_code.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace tgm {

bool DfsCodeEntry::operator<(const DfsCodeEntry& other) const {
  bool f1 = IsForward();
  bool f2 = other.IsForward();
  if (f1 && f2) {
    if (to != other.to) return to < other.to;
    if (from != other.from) return from > other.from;
  } else if (!f1 && !f2) {
    if (from != other.from) return from < other.from;
    if (to != other.to) return to < other.to;
  } else if (!f1 && f2) {
    // backward vs forward: backward first iff its source precedes the
    // forward edge's new node.
    if (from != other.to) return from < other.to;
    return true;  // from == other.to: backward closes earlier, so smaller
  } else {
    // forward vs backward: forward first iff j1 <= i2... i.e. strictly
    // smaller-or-equal destination.
    if (to != other.from) return to < other.from;
    return false;
  }
  // Same structural position: label tiebreak.
  auto key = [](const DfsCodeEntry& e) {
    return std::make_tuple(e.from_label, !e.along, e.elabel, e.to_label);
  };
  return key(*this) < key(other);
}

bool DfsCodeLess(const DfsCode& a, const DfsCode& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const DfsCodeEntry& x, const DfsCodeEntry& y) { return x < y; });
}

StaticGraph GraphFromCode(const DfsCode& code) {
  StaticGraph g;
  std::int32_t max_id = -1;
  for (const DfsCodeEntry& e : code) {
    max_id = std::max({max_id, e.from, e.to});
  }
  std::vector<LabelId> labels(static_cast<std::size_t>(max_id + 1),
                              kInvalidLabel);
  for (const DfsCodeEntry& e : code) {
    labels[static_cast<std::size_t>(e.from)] = e.from_label;
    labels[static_cast<std::size_t>(e.to)] = e.to_label;
  }
  for (LabelId l : labels) {
    TGM_CHECK(l != kInvalidLabel);
    g.AddNode(l);
  }
  for (const DfsCodeEntry& e : code) {
    if (e.along) {
      g.AddEdge(e.from, e.to, e.elabel);
    } else {
      g.AddEdge(e.to, e.from, e.elabel);
    }
  }
  g.Finalize();
  return g;
}

std::vector<std::int32_t> RightmostPath(const DfsCode& code) {
  std::vector<std::int32_t> path;
  if (code.empty()) return path;
  // parent[] over the DFS tree defined by the forward entries.
  std::int32_t max_id = 0;
  for (const DfsCodeEntry& e : code) {
    max_id = std::max({max_id, e.from, e.to});
  }
  std::vector<std::int32_t> parent(static_cast<std::size_t>(max_id + 1), -1);
  for (const DfsCodeEntry& e : code) {
    if (e.IsForward()) parent[static_cast<std::size_t>(e.to)] = e.from;
  }
  for (std::int32_t v = max_id; v != -1;
       v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  TGM_DCHECK(path.front() == 0);
  return path;
}

namespace {

// Self-embedding used while constructing the minimal code: discovery id ->
// graph node (injective).
struct SelfEmbedding {
  std::vector<NodeId> nodes;
  std::vector<bool> used;
};

// Directed pattern edge (by discovery ids) an entry represents.
struct PatternDirEdge {
  std::int32_t src;
  std::int32_t dst;
  LabelId elabel;
  friend bool operator==(const PatternDirEdge&,
                         const PatternDirEdge&) = default;
};

PatternDirEdge DirEdgeOf(const DfsCodeEntry& e) {
  return e.along ? PatternDirEdge{e.from, e.to, e.elabel}
                 : PatternDirEdge{e.to, e.from, e.elabel};
}

bool CodeContainsDirEdge(const DfsCode& code, const PatternDirEdge& de) {
  for (const DfsCodeEntry& e : code) {
    if (DirEdgeOf(e) == de) return true;
  }
  return false;
}

}  // namespace

DfsCode MinimalDfsCode(const StaticGraph& g) {
  TGM_CHECK(g.edge_count() >= 1);
  DfsCode code;
  std::vector<SelfEmbedding> embeddings;

  // Initial entry: minimal over every edge mapped in both orientations.
  {
    DfsCodeEntry best;
    bool have = false;
    std::vector<std::pair<DfsCodeEntry, SelfEmbedding>> candidates;
    for (const StaticEdge& e : g.edges()) {
      DfsCodeEntry fwd{0, 1, g.label(e.src), g.label(e.dst), e.elabel, true};
      DfsCodeEntry rev{0, 1, g.label(e.dst), g.label(e.src), e.elabel, false};
      for (const DfsCodeEntry& entry : {fwd, rev}) {
        SelfEmbedding emb;
        emb.nodes = entry.along ? std::vector<NodeId>{e.src, e.dst}
                                : std::vector<NodeId>{e.dst, e.src};
        emb.used.assign(g.node_count(), false);
        emb.used[static_cast<std::size_t>(e.src)] = true;
        emb.used[static_cast<std::size_t>(e.dst)] = true;
        candidates.emplace_back(entry, std::move(emb));
        if (!have || entry < best) {
          best = entry;
          have = true;
        }
      }
    }
    code.push_back(best);
    for (auto& [entry, emb] : candidates) {
      if (entry == best) embeddings.push_back(std::move(emb));
    }
  }

  while (code.size() < g.edge_count()) {
    std::vector<std::int32_t> path = RightmostPath(code);
    std::int32_t rightmost = path.back();
    std::int32_t next_id = rightmost + 1;

    DfsCodeEntry best;
    bool have = false;
    // (entry, source embedding index, new graph node or kInvalidNode)
    std::vector<std::tuple<DfsCodeEntry, std::size_t, NodeId>> candidates;

    auto offer = [&](const DfsCodeEntry& entry, std::size_t emb_idx,
                     NodeId new_node) {
      candidates.emplace_back(entry, emb_idx, new_node);
      if (!have || entry < best) {
        best = entry;
        have = true;
      }
    };

    for (std::size_t mi = 0; mi < embeddings.size(); ++mi) {
      const SelfEmbedding& emb = embeddings[mi];
      NodeId fr = emb.nodes[static_cast<std::size_t>(rightmost)];
      // Backward extensions: rightmost vertex to earlier rightmost-path
      // nodes, both directions, skipping already-present pattern edges.
      for (std::int32_t v : path) {
        if (v == rightmost) continue;
        NodeId fv = emb.nodes[static_cast<std::size_t>(v)];
        for (std::int32_t ei : g.out_edges(fr)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (de.dst != fv) continue;
          DfsCodeEntry entry{rightmost, v, g.label(fr), g.label(fv),
                             de.elabel, true};
          if (CodeContainsDirEdge(code, DirEdgeOf(entry))) continue;
          offer(entry, mi, kInvalidNode);
        }
        for (std::int32_t ei : g.in_edges(fr)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (de.src != fv) continue;
          DfsCodeEntry entry{rightmost, v, g.label(fr), g.label(fv),
                             de.elabel, false};
          if (CodeContainsDirEdge(code, DirEdgeOf(entry))) continue;
          offer(entry, mi, kInvalidNode);
        }
      }
      // Forward extensions: from any rightmost-path node to a new node.
      for (std::int32_t u : path) {
        NodeId fu = emb.nodes[static_cast<std::size_t>(u)];
        for (std::int32_t ei : g.out_edges(fu)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (emb.used[static_cast<std::size_t>(de.dst)]) continue;
          offer(DfsCodeEntry{u, next_id, g.label(fu), g.label(de.dst),
                             de.elabel, true},
                mi, de.dst);
        }
        for (std::int32_t ei : g.in_edges(fu)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (emb.used[static_cast<std::size_t>(de.src)]) continue;
          offer(DfsCodeEntry{u, next_id, g.label(fu), g.label(de.src),
                             de.elabel, false},
                mi, de.src);
        }
      }
    }

    TGM_CHECK(have);  // connected graph always extends
    std::vector<SelfEmbedding> next_embeddings;
    for (const auto& [entry, emb_idx, new_node] : candidates) {
      if (!(entry == best)) continue;
      SelfEmbedding extended = embeddings[emb_idx];
      if (new_node != kInvalidNode) {
        extended.nodes.push_back(new_node);
        extended.used[static_cast<std::size_t>(new_node)] = true;
      }
      next_embeddings.push_back(std::move(extended));
    }
    code.push_back(best);
    embeddings = std::move(next_embeddings);
  }
  return code;
}

bool IsMinimalCode(const DfsCode& code) {
  if (code.empty()) return true;
  StaticGraph g = GraphFromCode(code);
  DfsCode minimal = MinimalDfsCode(g);
  return minimal == code;
}

std::string CodeToString(const DfsCode& code) {
  std::ostringstream os;
  os << "DfsCode[";
  for (std::size_t i = 0; i < code.size(); ++i) {
    const DfsCodeEntry& e = code[i];
    if (i > 0) os << " ";
    os << "(" << e.from << (e.along ? ">" : "<") << e.to << ":" << e.from_label
       << "," << e.elabel << "," << e.to_label << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace tgm
