#ifndef TGM_MINING_RESULT_H_
#define TGM_MINING_RESULT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "temporal/pattern.h"

namespace tgm {

/// A mined pattern together with its statistics.
struct MinedPattern {
  Pattern pattern;
  double freq_pos = 0.0;
  double freq_neg = 0.0;
  double score = -std::numeric_limits<double>::infinity();
  std::int64_t support_pos = 0;  // #positive graphs containing the pattern
  std::int64_t support_neg = 0;
};

/// Counters gathered during mining. `patterns_visited` is the denominator
/// of Table 3's empirical trigger probabilities.
struct MinerStats {
  std::int64_t patterns_visited = 0;
  std::int64_t patterns_expanded = 0;
  std::int64_t naive_prunes = 0;
  std::int64_t subgraph_prune_triggers = 0;
  std::int64_t supergraph_prune_triggers = 0;
  std::int64_t subgraph_tests = 0;
  std::int64_t residual_equiv_tests = 0;
  std::int64_t embedding_cap_hits = 0;
  double elapsed_seconds = 0.0;
  /// True if the run hit MinerConfig::max_millis before completing.
  bool timed_out = false;
  /// True if the run hit MinerConfig::max_visited before completing. A
  /// capped search is truncated exactly like a timed-out one, so callers
  /// must be able to tell it from a completed search.
  bool visit_cap_hit = false;

  /// True if the search stopped on any budget rather than exhausting the
  /// pattern space; truncated results are a prefix of the full search.
  bool truncated() const { return timed_out || visit_cap_hit; }

  /// Folds another stats block into this one (counters sum, truncation
  /// flags OR). Used to commit per-subtree worker stats in root-index
  /// order; `elapsed_seconds` is wall-clock for the whole mine and is set
  /// once at the end, not merged.
  void MergeFrom(const MinerStats& other) {
    patterns_visited += other.patterns_visited;
    patterns_expanded += other.patterns_expanded;
    naive_prunes += other.naive_prunes;
    subgraph_prune_triggers += other.subgraph_prune_triggers;
    supergraph_prune_triggers += other.supergraph_prune_triggers;
    subgraph_tests += other.subgraph_tests;
    residual_equiv_tests += other.residual_equiv_tests;
    embedding_cap_hits += other.embedding_cap_hits;
    timed_out = timed_out || other.timed_out;
    visit_cap_hit = visit_cap_hit || other.visit_cap_hit;
  }

  double SubgraphTriggerRate() const {
    return patterns_visited == 0
               ? 0.0
               : static_cast<double>(subgraph_prune_triggers) /
                     static_cast<double>(patterns_visited);
  }
  double SupergraphTriggerRate() const {
    return patterns_visited == 0
               ? 0.0
               : static_cast<double>(supergraph_prune_triggers) /
                     static_cast<double>(patterns_visited);
  }
};

/// Result of a mining run: the retained top patterns sorted by descending
/// score (ties in discovery order) and the statistics.
struct MineResult {
  std::vector<MinedPattern> top;
  double best_score = -std::numeric_limits<double>::infinity();
  MinerStats stats;
};

}  // namespace tgm

#endif  // TGM_MINING_RESULT_H_
