// VIOLATIONS (status-discard, exactly 2 findings):
//   1. a bare call statement discarding a Status
//   2. an explicit (void) discard without a waiver

namespace lintfix {

class Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();
Status Cleanup();

void Caller() {
  DoWork();          // finding 1: silently dropped error
  (void)Cleanup();   // finding 2: (void) needs a waiver with a reason
}

}  // namespace lintfix
