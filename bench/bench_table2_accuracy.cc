// Regenerates Table 2: query precision/recall per behaviour for the three
// approaches — NodeSet (keyword baseline), Ntemp (non-temporal patterns),
// and TGMiner (temporal patterns) — with query size 6 over the full
// training data.
//
// Paper shape to reproduce: TGMiner ~97%/91% on average; Ntemp loses
// precision (83%) because order-shuffled structures fool static patterns;
// NodeSet loses both (68%/78%), catastrophically on scp-download (13.8%
// precision) whose label set is shared with ssh-login and background
// copies.

#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Table 2", "query accuracy on different behaviors");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  Pipeline pipeline(config);
  pipeline.Prepare();

  std::printf("%-18s | %9s %9s %9s | %9s %9s %9s\n", "", "NodeSet", "Ntemp",
              "TGMiner", "NodeSet", "Ntemp", "TGMiner");
  std::printf("%-18s | %29s | %29s\n", "Behavior", "Precision (%)",
              "Recall (%)");
  std::printf("---------------------------------------------------------------"
              "-----------------\n");

  double sum_p[3] = {0, 0, 0};
  double sum_r[3] = {0, 0, 0};
  for (int i = 0; i < kNumBehaviors; ++i) {
    AccuracyResult ns = pipeline.RunNodeSet(i);
    AccuracyResult nt = pipeline.RunNtemp(i);
    AccuracyResult tg = pipeline.RunTGMiner(i);
    std::printf("%-18s | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
                BehaviorName(AllBehaviors()[static_cast<std::size_t>(i)])
                    .c_str(),
                100 * ns.precision(), 100 * nt.precision(),
                100 * tg.precision(), 100 * ns.recall(), 100 * nt.recall(),
                100 * tg.recall());
    sum_p[0] += ns.precision();
    sum_p[1] += nt.precision();
    sum_p[2] += tg.precision();
    sum_r[0] += ns.recall();
    sum_r[1] += nt.recall();
    sum_r[2] += tg.recall();
  }
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  std::printf("%-18s | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n", "Average",
              100 * sum_p[0] / kNumBehaviors, 100 * sum_p[1] / kNumBehaviors,
              100 * sum_p[2] / kNumBehaviors, 100 * sum_r[0] / kNumBehaviors,
              100 * sum_r[1] / kNumBehaviors, 100 * sum_r[2] / kNumBehaviors);
  std::printf("(paper averages: NodeSet 68.5/78.4, Ntemp 83.2/91.9, "
              "TGMiner 97.4/91.1)\n");
  return 0;
}
