// VIOLATIONS (determinism, exactly 3 findings):
//   1. range-for over an unordered map with no canonical sort downstream
//   2. iterator loop over an unordered set, same problem
//   3. a pointer-keyed ordered map (iteration order = allocation order)
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lintfix {

struct Node {};

std::vector<int> LeakHashOrder() {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  std::vector<int> out;
  for (const auto& [k, v] : counts) {  // finding 1
    out.push_back(k + v);
  }
  return out;
}

int SumInHashOrder() {
  std::unordered_set<int> seen;
  seen.insert(9);
  int acc = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding 2
    acc = acc * 31 + *it;  // order-sensitive fold
  }
  return acc;
}

std::map<Node*, int> g_by_node;  // finding 3

}  // namespace lintfix
