// Regenerates Figure 16 (Appendix N): TGMiner response time on the
// synthetic datasets SYN-2 .. SYN-10, built by replicating every training
// graph 2..10 times.
//
// Paper shape to reproduce: response time scales linearly with the
// replication factor; from training data with up to 20M nodes / 80M edges
// the paper mines all patterns (cap 45) within 3 hours.

#include "bench_common.h"
#include "mining/miner.h"
#include "syslog/dataset.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Figure 16", "scalability over synthetic datasets SYN-k");

  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = static_cast<int>(flags.GetInt("runs", 6));
  config.background_graphs =
      static_cast<int>(flags.GetInt("background", 30));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.gen.size_scale = flags.GetDouble("scale", 0.5);
  TrainingData data = BuildTrainingData(world, config);

  std::int64_t budget_ms = flags.GetInt("budget_ms", 30000);
  const std::vector<std::pair<const char*, int>> classes = {
      {"small", 1},
      {"medium", 4},
      {"large", 9},
  };
  const int factors[] = {2, 4, 6, 8, 10};

  std::printf("%10s %12s %12s %12s\n", "Dataset", "small (s)", "medium (s)",
              "large (s)");
  for (int factor : factors) {
    std::printf("   SYN-%-3d", factor);
    for (const auto& [class_name, behavior_idx] : classes) {
      std::vector<TemporalGraph> pos = ReplicateGraphs(
          data.positives[static_cast<std::size_t>(behavior_idx)], factor);
      std::vector<TemporalGraph> neg =
          ReplicateGraphs(data.background, factor);
      MinerConfig mc = MinerConfig::TGMiner();
      mc.max_edges = static_cast<int>(flags.GetInt("max_edges", 5));
      mc.min_pos_freq = 0.5;
      mc.max_embeddings_per_graph = 2000;
      mc.max_millis = budget_ms;
      Miner miner(mc, pos, neg);
      MineResult result = miner.Mine();
      std::printf(" %11.2f%s", result.stats.elapsed_seconds,
                  result.stats.timed_out ? "+" : " ");
      (void)class_name;
    }
    std::printf("\n");
  }
  std::printf("(paper shape: linear scaling in the replication factor)\n");
  return 0;
}
