# Empty compiler generated dependencies file for bench_fig10_discovered_patterns.
# This may be replaced when dependencies are built.
