# Empty compiler generated dependencies file for searcher_test.
# This may be replaced when dependencies are built.
