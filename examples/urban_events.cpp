// Urban computing — the paper's Example 3, on the tgm::api front door.
//
// Heterogeneous city data (traffic, health reports, food production) is
// fused into event streams: entities are detected events, records connect
// events that are geographically close, timestamped by detection time.
// Domain experts ask: are these unusual events caused by river pollution?
// We mine the temporal dependency pattern of river-pollution episodes
// against ordinary-congestion episodes, persist it as a BehaviorQuery,
// and use it as a query template over "this month's" feed.

#include <cstdio>
#include <random>
#include <vector>

#include "api/session.h"

namespace {

using namespace tgm;

enum : std::int64_t {
  kDischarge = 1, kFish = 2, kSick = 3, kFood = 4, kJam = 5, kConcert = 6,
};

std::vector<api::EventRecord> PollutionEpisode(std::mt19937_64& rng) {
  Timestamp t = static_cast<Timestamp>(rng() % 24);
  std::vector<api::EventRecord> ev;
  // Pollution propagates downstream over days: discharge -> fish kill ->
  // sickness in river districts -> irrigation-fed food yield drop.
  ev.push_back({kDischarge, kFish, "event:chemical-discharge",
                "event:fish-kill", "",
                t += 24 + static_cast<Timestamp>(rng() % 12)});
  ev.push_back({kFish, kSick, "event:fish-kill", "event:high-sickness-rate",
                "", t += 24 + static_cast<Timestamp>(rng() % 12)});
  ev.push_back({kSick, kFood, "event:high-sickness-rate",
                "event:food-yield-drop", "",
                t += 24 + static_cast<Timestamp>(rng() % 12)});
  // A traffic jam near the hospital follows the sickness spike.
  ev.push_back({kSick, kJam, "event:high-sickness-rate", "event:traffic-jam",
                "", t += 6 + static_cast<Timestamp>(rng() % 6)});
  return ev;
}

std::vector<api::EventRecord> CongestionEpisode(std::mt19937_64& rng) {
  Timestamp t = static_cast<Timestamp>(rng() % 24);
  std::vector<api::EventRecord> ev;
  // Ordinary city life: a concert causes jams; sickness and a late-season
  // yield dip exist too, but the jam precedes the sickness report here.
  ev.push_back({kConcert, kJam, "event:stadium-concert", "event:traffic-jam",
                "", t += 6 + static_cast<Timestamp>(rng() % 6)});
  ev.push_back({kJam, kSick, "event:traffic-jam", "event:high-sickness-rate",
                "", t += 24 + static_cast<Timestamp>(rng() % 12)});
  ev.push_back({kSick, kFood, "event:high-sickness-rate",
                "event:food-yield-drop", "",
                t += 24 + static_cast<Timestamp>(rng() % 12)});
  return ev;
}

}  // namespace

int main() {
  using namespace tgm;
  std::mt19937_64 rng(11);

  api::Session session;
  for (int i = 0; i < 25; ++i) {
    if (!session.Ingest("pollution-episodes", PollutionEpisode(rng)).ok() ||
        !session.Ingest("ordinary-episodes", CongestionEpisode(rng)).ok()) {
      std::printf("ingest failed\n");
      return 1;
    }
  }

  auto config = api::MinerConfigBuilder().MaxEdges(3).Build();
  if (!config.ok()) return 1;
  api::MineSpec spec;
  spec.positives = "pollution-episodes";
  spec.negatives = "ordinary-episodes";
  spec.config = *config;
  // Episodes vary in length; give the query template generous slack.
  spec.window_slack = 1.5;
  StatusOr<api::BehaviorQuery> signature = session.Mine(spec);
  if (!signature.ok()) {
    std::printf("mining failed: %s\n",
                signature.status().ToString().c_str());
    return 1;
  }
  double best =
      signature->patterns().empty() ? 0.0 : signature->patterns()[0].score;
  std::printf("river-pollution signature (score %.2f, window %lld):\n", best,
              static_cast<long long>(signature->window()));
  int shown = 0;
  for (const MinedPattern& m : signature->patterns()) {
    if (m.score < best || shown >= 3) break;
    std::printf("  %s\n", m.pattern.ToString(&session.dict()).c_str());
    ++shown;
  }

  // Use the behaviour query on a "this month" feed: one offline Search
  // over a freshly ingested log corpus.
  std::mt19937_64 feed_rng(12);
  if (!session.Ingest("this-month", PollutionEpisode(feed_rng)).ok()) {
    return 1;
  }
  StatusOr<std::vector<Interval>> hits =
      session.Search(*signature, "this-month");
  if (!hits.ok()) {
    std::printf("search failed: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  bool alarm = !hits->empty();
  std::printf("does this month's event feed match the pollution signature? "
              "%s\n", alarm ? "YES - investigate the river" : "no");
  return alarm ? 0 : 1;
}
