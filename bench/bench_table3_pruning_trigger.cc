// Regenerates Table 3: empirical probabilities that the subgraph and
// supergraph pruning conditions are triggered while TGMiner processes a
// pattern, per behaviour size class.
//
// Paper values: subgraph pruning 71.8% / 61.0% / 62.2% on small / medium /
// large; supergraph pruning 1.1% / 8.3% / 4.2%. Shape to reproduce:
// subgraph pruning triggers an order of magnitude more often than
// supergraph pruning and carries most of the pruning power.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Table 3", "empirical pruning-trigger probabilities");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  config.dataset.gen.size_scale = flags.GetDouble("scale", 0.6);
  Pipeline pipeline(config);
  pipeline.Prepare();

  std::int64_t budget_ms = flags.GetInt("budget_ms", 20000);
  const std::vector<std::pair<const char*, std::vector<int>>> classes = {
      {"Small", {0, 1, 2, 3}},
      {"Medium", {4, 5, 7, 8}},
      {"Large", {9, 10}},
  };

  std::printf("%-22s %10s %10s %10s\n", "Pruning condition", "Small",
              "Medium", "Large");
  std::vector<double> sub_rates;
  std::vector<double> sup_rates;
  for (const auto& [class_name, behaviors] : classes) {
    std::int64_t visited = 0;
    std::int64_t sub = 0;
    std::int64_t sup = 0;
    for (int behavior_idx : behaviors) {
      MinerConfig mc = MinerConfig::TGMiner();
      mc.max_edges = static_cast<int>(flags.GetInt("max_edges", 6));
      mc.min_pos_freq = 0.5;
      mc.max_embeddings_per_graph = 2000;
      mc.max_millis = budget_ms;
      MineResult result = pipeline.MineTemporal(behavior_idx, mc);
      visited += result.stats.patterns_visited;
      sub += result.stats.subgraph_prune_triggers;
      sup += result.stats.supergraph_prune_triggers;
    }
    sub_rates.push_back(100.0 * static_cast<double>(sub) /
                        static_cast<double>(visited));
    sup_rates.push_back(100.0 * static_cast<double>(sup) /
                        static_cast<double>(visited));
    (void)class_name;
  }
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%%\n", "Subgraph pruning",
              sub_rates[0], sub_rates[1], sub_rates[2]);
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%%\n", "Supergraph pruning",
              sup_rates[0], sup_rates[1], sup_rates[2]);
  std::printf("(paper: subgraph 71.8/61.0/62.2%%, supergraph 1.1/8.3/4.2%% — "
              "subgraph pruning dominates)\n");
  return 0;
}
