#include "temporal/constraints.h"

#include <algorithm>
#include <string>

namespace tgm {

bool TemporalConstraints::IsTrivial() const {
  if (deadline_ > 0) return false;
  for (const TransitionGuard& g : guards_) {
    if (g.min_gap > 0 || g.max_gap != kNoGapLimit) return false;
    if (g.min_since_seed > 0 || g.max_since_seed != kNoGapLimit) return false;
    if (!g.elabel_alts.empty()) return false;
  }
  return true;
}

void TemporalConstraints::Normalize() {
  for (TransitionGuard& g : guards_) {
    std::sort(g.elabel_alts.begin(), g.elabel_alts.end());
    g.elabel_alts.erase(
        std::unique(g.elabel_alts.begin(), g.elabel_alts.end()),
        g.elabel_alts.end());
  }
}

Status TemporalConstraints::ValidateFor(const Pattern& pattern) const {
  if (guards_.size() > pattern.edge_count()) {
    return Status::InvalidArgument(
        "constraints carry " + std::to_string(guards_.size()) +
        " transition guards for a pattern of " +
        std::to_string(pattern.edge_count()) + " edges");
  }
  if (deadline_ < 0) {
    return Status::InvalidArgument("constraint deadline is negative (" +
                                   std::to_string(deadline_) + ")");
  }
  for (std::size_t k = 0; k < guards_.size(); ++k) {
    const TransitionGuard& g = guards_[k];
    const std::string where = "guard of transition " + std::to_string(k);
    if (g.min_gap < 0 || g.min_since_seed < 0) {
      return Status::InvalidArgument(where + ": negative minimum gap");
    }
    if (g.max_gap < kNoGapLimit || g.max_since_seed < kNoGapLimit) {
      return Status::InvalidArgument(
          where + ": max gap below the kNoGapLimit sentinel");
    }
    if (g.max_gap != kNoGapLimit && g.max_gap < g.min_gap) {
      return Status::InvalidArgument(
          where + ": max_gap " + std::to_string(g.max_gap) + " < min_gap " +
          std::to_string(g.min_gap));
    }
    if (g.max_since_seed != kNoGapLimit &&
        g.max_since_seed < g.min_since_seed) {
      return Status::InvalidArgument(
          where + ": max_since_seed " + std::to_string(g.max_since_seed) +
          " < min_since_seed " + std::to_string(g.min_since_seed));
    }
    if (k == 0 && (g.min_gap > 0 || g.max_gap != kNoGapLimit ||
                   g.min_since_seed > 0 || g.max_since_seed != kNoGapLimit)) {
      // The seed edge has no previous edge and *is* the seed: any time
      // guard on it is either vacuous or unsatisfiable, so reject the
      // ambiguity outright.
      return Status::InvalidArgument(
          "guard of transition 0 must not carry time-gap bounds (the seed "
          "edge has no predecessor)");
    }
    for (LabelId alt : g.elabel_alts) {
      if (alt < 0) {
        return Status::InvalidArgument(where + ": negative alternative "
                                               "edge-label id " +
                                       std::to_string(alt));
      }
    }
  }
  return Status::Ok();
}

}  // namespace tgm
