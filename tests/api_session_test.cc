// The tgm::api front door: Status/StatusOr, Session ingestion (generic
// EventRecord streams), corpus management, Mine -> BehaviorQuery, the
// Search/Watch entry-point pair (offline/online interval parity across
// shard counts, including through a persisted-and-reloaded artifact), the
// live Watch/Feed surface, and the fluent config builders.

#include "api/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "api/builders.h"
#include "query/stream/event.h"

namespace tgm {
namespace {

using api::BehaviorQuery;
using api::EventRecord;
using api::MineSpec;
using api::Session;

// One run of the quickstart scenario: login -> read -> send (positive
// order) vs login -> send -> read (benign order). Distinct entity ids per
// run keep log graphs clean.
std::vector<EventRecord> MakeRun(bool exfiltrating, Timestamp base,
                             std::int64_t entity_base = 0) {
  std::int64_t sshd = entity_base + 1;
  std::int64_t bash = entity_base + 2;
  std::int64_t secrets = entity_base + 3;
  std::int64_t remote = entity_base + 4;
  std::vector<EventRecord> events;
  events.push_back({sshd, bash, "proc:sshd", "proc:bash", "op:fork",
                    base + 10});
  if (exfiltrating) {
    events.push_back({secrets, bash, "file:secrets", "proc:bash", "op:read",
                      base + 20});
    events.push_back({bash, remote, "proc:bash", "sock:remote", "op:send",
                      base + 30});
  } else {
    events.push_back({bash, remote, "proc:bash", "sock:remote", "op:send",
                      base + 20});
    events.push_back({secrets, bash, "file:secrets", "proc:bash", "op:read",
                      base + 30});
  }
  return events;
}

// A session with 5 positive and 5 negative runs ingested.
Session TrainedSession() {
  Session session;
  for (int run = 0; run < 5; ++run) {
    TGM_CHECK(session.Ingest("positives", MakeRun(true, 100 * run)).ok());
    TGM_CHECK(session.Ingest("negatives", MakeRun(false, 100 * run)).ok());
  }
  return session;
}

MineSpec BasicSpec() {
  MineSpec spec;
  spec.positives = "positives";
  spec.negatives = "negatives";
  spec.config.max_edges = 3;
  return spec;
}

// A mixed log: positive runs at the given bases, benign runs between
// them, disjoint entities per run.
std::vector<EventRecord> MixedLog(const std::vector<Timestamp>& hits) {
  std::vector<EventRecord> log;
  std::int64_t entity_base = 0;
  Timestamp last = 0;
  for (Timestamp base : hits) {
    auto pos = MakeRun(true, base, entity_base);
    auto neg = MakeRun(false, base + 50, entity_base + 10);
    log.insert(log.end(), pos.begin(), pos.end());
    log.insert(log.end(), neg.begin(), neg.end());
    entity_base += 20;
    last = base;
  }
  std::sort(log.begin(), log.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.ts < b.ts;
            });
  (void)last;
  return log;
}

TEST(StatusTest, CodesMessagesAndStatusOr) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");

  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "invalid-argument: nope");

  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());

  StatusOr<int> error = Status::NotFound("gone");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(error.status().message(), "gone");
}

TEST(SessionTest, IngestBuildsFinalizedGraphsAndInternedLabels) {
  Session session;
  StatusOr<std::size_t> first = session.Ingest("runs", MakeRun(true, 0));
  StatusOr<std::size_t> second = session.Ingest("runs", MakeRun(false, 0));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(*second, 1u);

  auto corpus = session.Corpus("runs");
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus->size(), 2u);
  const TemporalGraph& g = *(*corpus)[0];
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_NE(session.dict().Lookup("proc:sshd"), kInvalidLabel);
  EXPECT_NE(session.dict().Lookup("op:read"), kInvalidLabel);
  // Label id 0 is reserved so kNoEdgeLabel never names a real label.
  EXPECT_EQ(session.dict().Name(kNoEdgeLabel), "<none>");
  EXPECT_EQ(session.CorpusNames(), std::vector<std::string>{"runs"});
}

TEST(SessionTest, IngestValidatesRecords) {
  Session session;
  EXPECT_EQ(session.Ingest("", MakeRun(true, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Ingest("has space", MakeRun(true, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Ingest("runs", {}).status().code(),
            StatusCode::kInvalidArgument);

  // Negative timestamp.
  std::vector<EventRecord> bad_ts = {{1, 2, "a", "b", "", -5}};
  EXPECT_EQ(session.Ingest("runs", bad_ts).status().code(),
            StatusCode::kInvalidArgument);

  // Whitespace in a label would break the line-based text formats.
  std::vector<EventRecord> spacey = {{1, 2, "a label", "b", "", 5}};
  EXPECT_EQ(session.Ingest("runs", spacey).status().code(),
            StatusCode::kInvalidArgument);

  // Entity relabeled mid-graph.
  std::vector<EventRecord> relabel = {{1, 2, "a", "b", "", 5},
                                      {1, 3, "c", "d", "", 6}};
  Status relabel_status = session.Ingest("runs", relabel).status();
  EXPECT_EQ(relabel_status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(relabel_status.message().find("relabeled"), std::string::npos);

  // Nothing half-ingested.
  EXPECT_EQ(session.Corpus("runs").status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, UnknownCorpusIsNotFoundWithInventory) {
  Session session = TrainedSession();
  StatusOr<MineResult> missing = session.MineRaw([] {
    MineSpec spec;
    spec.positives = "no-such-corpus";
    spec.negatives = "negatives";
    return spec;
  }());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The message lists what exists, so typos are debuggable.
  EXPECT_NE(missing.status().message().find("positives"), std::string::npos);
}

TEST(SessionTest, MineProducesRankedProvenancedArtifact) {
  Session session = TrainedSession();
  StatusOr<BehaviorQuery> mined = session.Mine(BasicSpec());
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->empty());
  // Patterns arrive ranked by descending score.
  for (std::size_t i = 1; i < mined->size(); ++i) {
    EXPECT_GE(mined->patterns()[i - 1].score, mined->patterns()[i].score);
  }
  EXPECT_GT(mined->patterns()[0].score, 0.0);
  EXPECT_EQ(mined->patterns()[0].freq_pos, 1.0);
  // Window derived from the longest positive span (20) * slack 1.25.
  EXPECT_EQ(mined->window(), 25);
  EXPECT_EQ(mined->provenance().positive_graphs, 5);
  EXPECT_EQ(mined->provenance().negative_graphs, 5);
  EXPECT_EQ(mined->provenance().positives, "positives");
  EXPECT_GT(mined->provenance().patterns_visited, 0);
  EXPECT_FALSE(mined->provenance().truncated);
}

TEST(SessionTest, MineValidatesSpec) {
  Session session = TrainedSession();
  MineSpec spec = BasicSpec();
  spec.fraction = 0.0;
  EXPECT_EQ(session.Mine(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec = BasicSpec();
  spec.top_patterns = 0;
  EXPECT_EQ(session.Mine(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec = BasicSpec();
  spec.config.max_edges = 0;  // caught by the builder validation
  EXPECT_EQ(session.Mine(spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, MineFractionSubsamplesTraining) {
  Session session = TrainedSession();
  MineSpec spec = BasicSpec();
  spec.fraction = 0.4;  // ceil(0.4 * 5) = 2 graphs per side
  StatusOr<BehaviorQuery> mined = session.Mine(spec);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->provenance().positive_graphs, 2);
  EXPECT_EQ(mined->provenance().negative_graphs, 2);
}

// The acceptance pin: Search and Watch (1/2/4 shards) return identical
// intervals for the same persisted-and-reloaded BehaviorQuery.
TEST(SessionTest, SearchAndWatchAgreeAcrossShardsOnReloadedQuery) {
  Session session = TrainedSession();
  StatusOr<BehaviorQuery> mined = session.Mine(BasicSpec());
  ASSERT_TRUE(mined.ok());

  // Persist the artifact...
  std::stringstream artifact;
  ASSERT_TRUE(session.SaveQuery(*mined, artifact).ok());

  // ...and reload it in a fresh session whose dictionary interns in a
  // different order (decoys first), so every label id differs.
  Session analyst;
  analyst.dict().Intern("decoy:a");
  analyst.dict().Intern("decoy:b");
  ASSERT_TRUE(
      analyst.Ingest("log", MixedLog({1000, 2000, 3000, 4000})).ok());
  StatusOr<BehaviorQuery> reloaded = analyst.LoadQuery(artifact);
  ASSERT_TRUE(reloaded.ok());

  StatusOr<std::vector<Interval>> offline =
      analyst.Search(*reloaded, "log");
  ASSERT_TRUE(offline.ok());
  ASSERT_FALSE(offline->empty());

  for (int shards : {1, 2, 4}) {
    api::WatchOptions options;
    options.shards = shards;
    StatusOr<std::vector<Interval>> online =
        analyst.Watch(*reloaded, "log", options);
    ASSERT_TRUE(online.ok());
    EXPECT_EQ(*online, *offline) << "shards=" << shards;
    options.batch_size = 32;
    StatusOr<std::vector<Interval>> batched =
        analyst.Watch(*reloaded, "log", options);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(*batched, *offline) << "shards=" << shards << " batch=32";
  }

  // The reloaded artifact also behaves exactly like the in-memory one:
  // the mining session searching the same log (its own interning) agrees.
  ASSERT_TRUE(
      session.Ingest("log", MixedLog({1000, 2000, 3000, 4000})).ok());
  StatusOr<std::vector<Interval>> original = session.Search(*mined, "log");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, *offline);
}

// The constrained acceptance pin: a query sharpened with timed-automata
// guards keeps the Search/Watch interval parity across 1/2/4 shards and
// batch sizes, including through a persisted-and-reloaded (version-2)
// tquery artifact in a session with a different interning order.
TEST(SessionTest, ConstrainedSearchAndWatchAgreeAcrossShardsOnReload) {
  Session session = TrainedSession();
  StatusOr<BehaviorQuery> mined = session.Mine(BasicSpec());
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->empty());

  // Sharpen every pattern: per-transition max gap 15 (true runs step by
  // 10) plus the mined window as an explicit deadline.
  for (std::size_t i = 0; i < mined->size(); ++i) {
    const Pattern& p = mined->patterns()[i].pattern;
    api::QueryConstraintsBuilder builder(p.edge_count());
    for (std::size_t k = 1; k < p.edge_count(); ++k) builder.MaxGap(k, 15);
    builder.Deadline(mined->window());
    StatusOr<TemporalConstraints> built = builder.Build(p);
    ASSERT_TRUE(built.ok()) << built.status().message();
    mined->set_constraints(i, *std::move(built));
  }
  ASSERT_TRUE(mined->constrained());
  ASSERT_TRUE(mined->Validate().ok());

  std::stringstream artifact;
  ASSERT_TRUE(session.SaveQuery(*mined, artifact).ok());
  EXPECT_EQ(artifact.str().rfind("tquery 2 ", 0), 0u);  // version bumped

  Session analyst;
  analyst.dict().Intern("decoy:a");  // shift every label id
  ASSERT_TRUE(
      analyst.Ingest("log", MixedLog({1000, 2000, 3000, 4000})).ok());
  StatusOr<BehaviorQuery> reloaded = analyst.LoadQuery(artifact);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_TRUE(reloaded->constrained());

  StatusOr<std::vector<Interval>> offline = analyst.Search(*reloaded, "log");
  ASSERT_TRUE(offline.ok());
  ASSERT_FALSE(offline->empty());  // guards must not kill the true matches

  for (int shards : {1, 2, 4}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
      api::WatchOptions options;
      options.shards = shards;
      options.batch_size = batch;
      StatusOr<std::vector<Interval>> online =
          analyst.Watch(*reloaded, "log", options);
      ASSERT_TRUE(online.ok());
      EXPECT_EQ(*online, *offline) << "shards=" << shards
                                   << " batch=" << batch;
    }
  }

  // The reloaded constrained artifact behaves exactly like the in-memory
  // one in the mining session (its own interning order).
  ASSERT_TRUE(
      session.Ingest("log", MixedLog({1000, 2000, 3000, 4000})).ok());
  StatusOr<std::vector<Interval>> original = session.Search(*mined, "log");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, *offline);
}

// The degenerate-case parity pin (api half): infinite gaps and
// single-alternative labels are the unconstrained query, bit for bit,
// offline and online.
TEST(SessionTest, TrivialConstraintsMatchUnconstrainedEndToEnd) {
  Session session = TrainedSession();
  StatusOr<BehaviorQuery> plain = session.Mine(BasicSpec());
  ASSERT_TRUE(plain.ok());

  BehaviorQuery degenerate = *plain;
  for (std::size_t i = 0; i < degenerate.size(); ++i) {
    const Pattern& p = degenerate.patterns()[i].pattern;
    TemporalConstraints c(p.edge_count());
    for (std::size_t k = 0; k < p.edge_count(); ++k) {
      c.mutable_guard(k).min_gap = 0;
      c.mutable_guard(k).max_gap = kNoGapLimit;
      // The single alternative is the pattern's own edge label.
      c.mutable_guard(k).elabel_alts = {p.edge(k).elabel};
    }
    degenerate.set_constraints(i, std::move(c));
  }
  ASSERT_TRUE(degenerate.Validate().ok());

  ASSERT_TRUE(session.Ingest("log", MixedLog({500, 1500, 2500})).ok());
  StatusOr<std::vector<Interval>> want = session.Search(*plain, "log");
  StatusOr<std::vector<Interval>> got = session.Search(degenerate, "log");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_FALSE(want->empty());
  EXPECT_EQ(*got, *want);

  for (int shards : {1, 2, 4}) {
    api::WatchOptions options;
    options.shards = shards;
    StatusOr<std::vector<Interval>> watched_plain =
        session.Watch(*plain, "log", options);
    StatusOr<std::vector<Interval>> watched_degenerate =
        session.Watch(degenerate, "log", options);
    ASSERT_TRUE(watched_plain.ok());
    ASSERT_TRUE(watched_degenerate.ok());
    EXPECT_EQ(*watched_plain, *want) << "shards=" << shards;
    EXPECT_EQ(*watched_degenerate, *want) << "shards=" << shards;
  }
}

TEST(SessionTest, LiveWatchFeedMatchesOfflineSearch) {
  Session session = TrainedSession();
  StatusOr<BehaviorQuery> mined = session.Mine(BasicSpec());
  ASSERT_TRUE(mined.ok());

  std::vector<EventRecord> log = MixedLog({1000, 2000, 3000});
  ASSERT_TRUE(session.Ingest("log", log).ok());
  StatusOr<std::vector<Interval>> offline = session.Search(*mined, "log");
  ASSERT_TRUE(offline.ok());
  ASSERT_FALSE(offline->empty());

  StatusOr<api::WatchId> watch = session.Watch(*mined);
  ASSERT_TRUE(watch.ok());
  EXPECT_EQ(*watch, 0u);

  std::vector<Interval> live;
  auto sink = [&](const api::WatchAlert& alert) {
    EXPECT_EQ(alert.watch, 0u);
    EXPECT_LT(alert.pattern, mined->size());
    live.push_back(alert.interval);
  };
  for (const EventRecord& record : log) {
    ASSERT_TRUE(session.Feed(record, sink).ok());
  }
  ASSERT_TRUE(session.FlushWatches(sink).ok());
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  EXPECT_EQ(live, *offline);

  EngineStats stats = session.WatchStats();
  EXPECT_GT(stats.alerts, 0);
  EXPECT_EQ(stats.dropped_partials, 0);
}

TEST(SessionTest, WatchAndFeedValidateCallOrder) {
  Session session = TrainedSession();
  // Feeding with no watches registered is a sequencing error.
  EXPECT_EQ(session
                .Feed(EventRecord{1, 2, "a", "b", "", 5},
                      [](const api::WatchAlert&) {})
                .code(),
            StatusCode::kFailedPrecondition);

  // Watching an empty artifact is invalid.
  EXPECT_EQ(session.Watch(BehaviorQuery{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, AttachCorpusRequiresFinalizedGraphs) {
  Session session;
  std::vector<TemporalGraph> graphs(1);
  graphs[0].AddNode(session.dict().Intern("a"));
  EXPECT_EQ(session.AttachCorpus("ext", graphs).code(),
            StatusCode::kInvalidArgument);
  graphs[0].Finalize();
  EXPECT_TRUE(session.AttachCorpus("ext", graphs).ok());
  auto corpus = session.Corpus("ext");
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ((*corpus)[0], &graphs[0]);  // non-owning view, no copy
}

TEST(SessionTest, SelfLoopsIngestableButNotMinable) {
  // Log corpora may contain self-loop events (Search/Watch handle them);
  // only mining forbids them, and it must fail with a status — not crash
  // in the miner — whichever ingestion path built the corpus.
  Session session;
  std::vector<EventRecord> with_loop = {{1, 2, "a", "b", "", 5},
                                        {2, 2, "b", "b", "", 6}};
  ASSERT_TRUE(session.Ingest("pos", with_loop).ok());  // ingestion is fine
  ASSERT_TRUE(session.Ingest("neg", MakeRun(false, 0)).ok());

  MineSpec spec;
  spec.positives = "pos";
  spec.negatives = "neg";
  Status status = session.Mine(spec).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("self-loop"), std::string::npos);

  // Same for a pre-built graph via IngestGraph.
  TemporalGraph loop;
  NodeId v = loop.AddNode(session.dict().Intern("a"));
  NodeId w = loop.AddNode(session.dict().Intern("b"));
  loop.AddEdge(v, w, 1);
  loop.AddEdge(w, w, 2);  // self-loop
  ASSERT_TRUE(session.IngestGraph("pos2", std::move(loop)).ok());
  spec.positives = "pos2";
  EXPECT_EQ(session.Mine(spec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionTest, MineSurfacesEmptyResultAsStatus) {
  // A config no pattern can satisfy must yield a diagnostic status, not
  // an OK-but-unexecutable empty artifact: two positive runs over
  // disjoint label alphabets mean no pattern reaches min_pos_freq 1.0.
  Session session;
  std::vector<EventRecord> p1 = {{1, 2, "x1", "x2", "", 1}};
  std::vector<EventRecord> p2 = {{1, 2, "y1", "y2", "", 1}};
  ASSERT_TRUE(session.Ingest("pos", p1).ok());
  ASSERT_TRUE(session.Ingest("pos", p2).ok());
  ASSERT_TRUE(session.Ingest("neg", MakeRun(false, 0)).ok());

  MineSpec spec;
  spec.positives = "pos";
  spec.negatives = "neg";
  spec.config.min_pos_freq = 1.0;
  Status status = session.Mine(spec).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("no discriminative patterns"),
            std::string::npos);
}

TEST(BuildersTest, MinerConfigBuilderValidates) {
  StatusOr<MinerConfig> ok = api::MinerConfigBuilder("SubPrune")
                                 .MaxEdges(4)
                                 .TopK(8)
                                 .MinPosFreq(0.5)
                                 .Threads(2)
                                 .RootBatch(4)
                                 .Build();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->max_edges, 4);
  EXPECT_EQ(ok->top_k, 8);
  EXPECT_FALSE(ok->use_supergraph_pruning);  // the SubPrune preset

  EXPECT_FALSE(api::MinerConfigBuilder().MaxEdges(0).Build().ok());
  EXPECT_FALSE(api::MinerConfigBuilder().TopK(0).Build().ok());
  EXPECT_FALSE(api::MinerConfigBuilder().MinPosFreq(1.5).Build().ok());
  EXPECT_FALSE(api::MinerConfigBuilder().Threads(-1).Build().ok());
  EXPECT_FALSE(api::MinerConfigBuilder().RootBatch(0).Build().ok());
  EXPECT_FALSE(api::MinerConfigBuilder().MaxMillis(-1).Build().ok());
}

TEST(BuildersTest, SessionOptionsBuilderValidates) {
  StatusOr<api::SessionOptions> ok = api::SessionOptionsBuilder()
                                         .WatchShards(4)
                                         .WatchBatchSize(64)
                                         .SearchMatchCap(1000)
                                         .Build();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->watch_shards, 4);
  EXPECT_EQ(ok->watch_batch_size, 64u);

  EXPECT_FALSE(api::SessionOptionsBuilder().SearchMatchCap(0).Build().ok());
  EXPECT_FALSE(api::SessionOptionsBuilder().WatchBatchSize(0).Build().ok());
}

}  // namespace
}  // namespace tgm
