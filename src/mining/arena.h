#ifndef TGM_MINING_ARENA_H_
#define TGM_MINING_ARENA_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace tgm {

/// Per-thread free list of std::vector<T> buffers for the miner's DFS inner
/// loops.
///
/// Every DFS level materializes short-lived vectors — the flat extension
/// stream, one embedding list per (extension key, graph) — and the seed
/// allocated and freed them at every level of a recursion that visits
/// millions of patterns. The arena keeps released buffers (cleared, capacity
/// intact) on a thread-local stack so steady-state levels reuse warmed
/// buffers instead of calling the allocator.
///
/// Thread safety: each thread has its own free list, so Acquire/Release are
/// lock-free and safe from pool workers. A buffer acquired on one thread may
/// be released on another (embedding lists produced by the parallel
/// collection pass are consumed by the DFS thread); ownership simply moves
/// to the releasing thread's list. Idle memory is bounded both by buffer
/// count and by retained bytes per (thread, type): releases beyond either
/// bound fall through to the normal destructor, so a large run's
/// peak-capacity buffers cannot pin worst-case memory for process lifetime.
template <typename T>
class ScratchPool {
 public:
  /// Returns an empty vector, reusing a pooled buffer's capacity if any.
  static std::vector<T> Acquire() {
    State& state = PoolState();
    if (state.free_list.empty()) return {};
    std::vector<T> buffer = std::move(state.free_list.back());
    state.free_list.pop_back();
    state.retained_bytes -= buffer.capacity() * sizeof(T);
    return buffer;
  }

  /// Stashes `buffer`'s storage for a later Acquire. By-value so the call
  /// unconditionally consumes the argument: whether the storage is pooled
  /// or dropped (bounds exceeded — the parameter's destructor frees it),
  /// the caller's vector is left empty either way.
  static void Release(std::vector<T> buffer) {
    if (buffer.capacity() == 0) return;
    State& state = PoolState();
    std::size_t bytes = buffer.capacity() * sizeof(T);
    if (state.free_list.size() >= kMaxPooled ||
        state.retained_bytes + bytes > kMaxPooledBytes) {
      return;  // drop: freed on return
    }
    buffer.clear();
    state.retained_bytes += bytes;
    state.free_list.push_back(std::move(buffer));
  }

 private:
  /// Bounds idle memory per thread and type: at most kMaxPooled warmed
  /// buffers totalling at most kMaxPooledBytes of retained capacity.
  static constexpr std::size_t kMaxPooled = 256;
  static constexpr std::size_t kMaxPooledBytes = 16u << 20;  // 16 MiB

  struct State {
    std::vector<std::vector<T>> free_list;
    std::size_t retained_bytes = 0;
  };

  static State& PoolState() {
    static thread_local State state;
    return state;
  }
};

}  // namespace tgm

#endif  // TGM_MINING_ARENA_H_
