#include "syslog/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace tgm {

TrainingData BuildTrainingData(SyslogWorld& world,
                               const DatasetConfig& config) {
  TrainingData data;
  const auto& behaviors = AllBehaviors();
  data.positives.resize(behaviors.size());
  data.max_duration.assign(behaviors.size(), 0);

  for (std::size_t bi = 0; bi < behaviors.size(); ++bi) {
    std::mt19937_64 rng(config.seed * 7919 + bi * 104729 + 1);
    for (int run = 0; run < config.runs_per_behavior; ++run) {
      InstanceScript script =
          GenerateBehavior(world, behaviors[bi], rng, config.gen);
      data.max_duration[bi] =
          std::max(data.max_duration[bi], script.Duration());
      data.positives[bi].push_back(script.ToGraph());
    }
  }

  std::mt19937_64 rng(config.seed * 7919 + 15485863);
  data.background.reserve(static_cast<std::size_t>(config.background_graphs));
  for (int i = 0; i < config.background_graphs; ++i) {
    InstanceScript script = GenerateBackground(
        world, rng, config.gen, config.background_decoy_prob);
    data.background.push_back(script.ToGraph());
  }
  return data;
}

TestLog BuildTestLog(SyslogWorld& world, const DatasetConfig& config) {
  TestLog log;
  const auto& behaviors = AllBehaviors();
  log.instance_counts.assign(behaviors.size(), 0);

  std::mt19937_64 rng(config.seed * 6700417 + 2);
  TemporalGraph& g = log.graph;
  Timestamp t = 0;
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Balanced behaviour schedule: shuffled round-robin, like the paper's
  // "one of the target behaviors is randomly selected and performed" every
  // minute, but guaranteeing per-behaviour denominators.
  std::vector<BehaviorKind> schedule;
  schedule.reserve(static_cast<std::size_t>(config.test_instances));
  while (schedule.size() < static_cast<std::size_t>(config.test_instances)) {
    std::vector<BehaviorKind> round = behaviors;
    std::shuffle(round.begin(), round.end(), rng);
    for (BehaviorKind k : round) {
      if (schedule.size() < static_cast<std::size_t>(config.test_instances)) {
        schedule.push_back(k);
      }
    }
  }

  for (BehaviorKind kind : schedule) {
    // Background burst covering this slot.
    InstanceScript burst =
        GenerateBackground(world, rng, config.gen, /*decoy_prob=*/0.0);
    burst.AppendTo(&g, t);
    Timestamp burst_span = burst.Duration();

    // The behaviour instance, offset into the burst so background events
    // interleave with it on both sides.
    InstanceScript inst = GenerateBehavior(world, kind, rng, config.gen);
    std::uniform_int_distribution<Timestamp> offset_dist(
        0, std::max<Timestamp>(burst_span / 3, 1));
    Timestamp offset = offset_dist(rng);
    inst.AppendTo(&g, t + offset);
    std::size_t bi = 0;
    while (behaviors[bi] != kind) ++bi;
    log.truth.push_back(
        TruthInstance{kind, t + offset, t + offset + inst.Duration()});
    ++log.instance_counts[bi];

    Timestamp slot_end = std::max(burst_span, offset + inst.Duration());

    // Decoys: shuffled behaviour structures that are *not* ground truth.
    if (unit(rng) < config.test_decoy_rate) {
      BehaviorKind decoy_kind =
          behaviors[static_cast<std::size_t>(rng() % behaviors.size())];
      GenOptions opts = config.gen;
      opts.disruption_prob = 0.0;
      if (BehaviorSizeClass(decoy_kind) == SizeClass::kLarge) {
        opts.size_scale *= 0.3;
        opts.noise_level *= 0.3;
      }
      InstanceScript decoy = GenerateBehavior(world, decoy_kind, rng, opts);
      decoy.Shuffle(rng);
      std::uniform_int_distribution<Timestamp> decoy_offset(
          0, std::max<Timestamp>(slot_end / 2, 1));
      Timestamp doff = decoy_offset(rng);
      decoy.AppendTo(&g, t + doff);
      slot_end = std::max(slot_end, doff + decoy.Duration());
    }

    t += slot_end + 1000;  // inter-slot gap
  }

  g.Finalize(TiePolicy::kBreakByInsertionOrder);
  return log;
}

BehaviorStats ComputeStats(const std::vector<TemporalGraph>& graphs) {
  BehaviorStats stats;
  if (graphs.empty()) return stats;
  std::unordered_set<LabelId> labels;
  for (const TemporalGraph& g : graphs) {
    stats.avg_nodes += static_cast<double>(g.node_count());
    stats.avg_edges += static_cast<double>(g.edge_count());
    for (LabelId l : g.DistinctNodeLabels()) labels.insert(l);
  }
  stats.avg_nodes /= static_cast<double>(graphs.size());
  stats.avg_edges /= static_cast<double>(graphs.size());
  stats.total_labels = static_cast<std::int64_t>(labels.size());
  return stats;
}

std::vector<TemporalGraph> ReplicateGraphs(
    const std::vector<TemporalGraph>& graphs, int factor) {
  TGM_CHECK(factor >= 1);
  std::vector<TemporalGraph> out;
  out.reserve(graphs.size() * static_cast<std::size_t>(factor));
  for (int i = 0; i < factor; ++i) {
    for (const TemporalGraph& g : graphs) out.push_back(g);
  }
  return out;
}

}  // namespace tgm
