#ifndef TGM_MINING_KEY_INDEX_H_
#define TGM_MINING_KEY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mining/arena.h"

namespace tgm {

/// Sentinel returned by HybridKeyIndex::Find for an absent key.
inline constexpr std::size_t kKeyIndexNotFound = static_cast<std::size_t>(-1);

/// Hybrid lookup index over the tail [base, end) of a growing array of
/// keyed items: a plain linear scan while the tail holds only a handful of
/// distinct keys (the common case deep in the miner's DFS), graduating to a
/// small open-addressing table — slot -> index relative to `base`, -1
/// empty, linear probing, rehash at 50% load — once the scan would start to
/// quadratically hurt. Slot storage is recycled through the ScratchPool.
///
/// The index never owns items; `key_at(i)` must return the key of item `i`
/// in the caller's array. After Find returns kKeyIndexNotFound, the caller
/// appends the new item at index `end` and reports it with Inserted(end).
template <typename Hash, typename KeyAt>
class HybridKeyIndex {
 public:
  HybridKeyIndex(std::size_t base, Hash hash, KeyAt key_at)
      : base_(base), hash_(std::move(hash)), key_at_(std::move(key_at)) {}

  HybridKeyIndex(const HybridKeyIndex&) = delete;
  HybridKeyIndex& operator=(const HybridKeyIndex&) = delete;

  ~HybridKeyIndex() {
    if (!slots_.empty()) {
      ScratchPool<std::int32_t>::Release(std::move(slots_));
    }
  }

  /// Index in [base, end) of the item whose key equals `key`, or
  /// kKeyIndexNotFound. `end` is the caller's current item count.
  template <typename Key>
  std::size_t Find(const Key& key, std::size_t end) {
    if (slots_.empty()) {
      for (std::size_t i = base_; i < end; ++i) {
        if (key_at_(i) == key) return i;
      }
      if (end - base_ < kLinearItems) return kKeyIndexNotFound;
      Grow(end);  // graduate, seeding the table with the existing items
    }
    for (std::size_t s = hash_(key) & mask_;; s = (s + 1) & mask_) {
      std::int32_t r = slots_[s];
      if (r < 0) return kKeyIndexNotFound;
      std::size_t idx = base_ + static_cast<std::size_t>(r);
      if (key_at_(idx) == key) return idx;
    }
  }

  /// Registers the item the caller just appended at index `idx`.
  void Inserted(std::size_t idx) {
    if (slots_.empty()) return;  // still in the linear phase
    if (2 * (idx + 1 - base_) >= slots_.size()) {
      Grow(idx + 1);
      return;
    }
    Insert(idx);
  }

 private:
  /// Distinct-key count up to which the linear scan wins.
  static constexpr std::size_t kLinearItems = 8;

  void Insert(std::size_t idx) {
    std::size_t s = hash_(key_at_(idx)) & mask_;
    while (slots_[s] >= 0) s = (s + 1) & mask_;
    slots_[s] = static_cast<std::int32_t>(idx - base_);
  }

  void Grow(std::size_t end) {
    std::size_t target = slots_.empty() ? 64 : 2 * slots_.size();
    while (2 * (end - base_) >= target) target *= 2;
    if (slots_.empty()) slots_ = ScratchPool<std::int32_t>::Acquire();
    slots_.assign(target, -1);
    mask_ = target - 1;
    for (std::size_t i = base_; i < end; ++i) Insert(i);
  }

  std::size_t base_;
  Hash hash_;
  KeyAt key_at_;
  std::vector<std::int32_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace tgm

#endif  // TGM_MINING_KEY_INDEX_H_
