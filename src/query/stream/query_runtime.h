#ifndef TGM_QUERY_STREAM_QUERY_RUNTIME_H_
#define TGM_QUERY_STREAM_QUERY_RUNTIME_H_

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "query/stream/compiled_plan.h"
#include "query/stream/event.h"
#include "query/stream/partial_table.h"
#include "temporal/constraints.h"

namespace tgm {

/// Sentinel for a query-node slot no entity is bound to yet.
inline constexpr std::int64_t kUnboundEntity = -1;

/// Per-query limits shared by every runtime of an engine.
struct StreamLimits {
  /// Maximum allowed match span; also the partial-match expiry horizon
  /// (0 = unbounded). A query deadline (TemporalConstraints) tightens this
  /// per query to min(window, deadline).
  Timestamp window = 0;
  /// High-water mark on live partials per query. When a new partial would
  /// exceed it, the live partial closest to death (earliest expiry, then
  /// smallest first_ts, then insertion order — exactly the oldest partial
  /// for an unconstrained query) is evicted to make room, and the query's
  /// drop counter increments.
  std::size_t max_partials = 100000;
  /// Disable to file every partial under the wildcard bucket — the legacy
  /// full-scan path, kept as the bench baseline.
  bool entity_index = true;
  /// When set (default), a constrained query's max-gap / since-seed guards
  /// tighten each partial's expiry below the window horizon, so provably
  /// dead partials leave the table early. Disabling falls back to
  /// window-only expiry — guards are still *checked* on extension, so the
  /// alert stream is identical either way; only peak live partials differ
  /// (the bench's comparison knob). No effect on unconstrained queries.
  bool guard_expiry = true;
};

/// --- Shared transition semantics --------------------------------------
///
/// The round-robin path (QueryRuntime, below) and the entity-hash path
/// (EntityShard + the engine's central sequencer) must agree bit-for-bit
/// on what an event does to a partial. These free functions are that
/// single definition: both paths call them, so the match/guard/routing
/// logic cannot drift between sharding modes.

/// Outcome of testing one live partial against one event.
enum class ExtendOutcome : std::uint8_t {
  kReject,    ///< Event cannot extend this partial.
  kComplete,  ///< Event matches the final edge — a full match.
  kExtend,    ///< Event matches; the partial grows by one edge.
};

/// Pure filter: can `event` match transition `next_edge` of `plan` given
/// the partial's binding and timestamps? Applies the label/self-loop
/// tests, the timed-automata guards (min/max gap, since-seed bounds),
/// bound-entity equality, label checks and injectivity for newly bound
/// entities, and the effective-window span check — in exactly that order.
/// `window` is the query's effective window (0 = unbounded). Seeds are
/// not handled here (see CompiledQueryPlan::SeedMatches).
ExtendOutcome MatchTransition(const CompiledQueryPlan& plan, Timestamp window,
                              const StreamEvent& event,
                              std::uint32_t next_edge,
                              std::span<const std::int64_t> binding,
                              Timestamp first_ts, Timestamp last_ts);

/// Writes the binding of the partial produced by matching `matched_edge`
/// with `event` on top of `base` (empty span = seed, all slots unbound).
/// `out` must have plan.node_count() entries.
void FillExtendedBinding(const CompiledQueryPlan& plan,
                         std::uint32_t matched_edge,
                         std::span<const std::int64_t> base,
                         const StreamEvent& event,
                         std::span<std::int64_t> out);

/// Where a partial waiting on `next_edge` files in a PartialTable: under
/// the concrete entity its next transition requires (the entity-hash
/// routing key), or the wildcard bucket when neither endpoint is bound.
struct PartialRoute {
  PartialTable::Role role = PartialTable::Role::kWildcard;
  std::int64_t key = 0;
};
PartialRoute RouteForNextEdge(const CompiledQueryPlan& plan,
                              std::uint32_t next_edge,
                              std::span<const std::int64_t> binding);

/// The stream time at which a partial waiting on `next_edge` with the
/// given timestamps becomes provably dead: the window horizon, tightened
/// (under `guard_expiry`, for constrained plans) by the next transition's
/// max_gap and the suffix-min seed horizon of the remaining transitions.
Timestamp ComputePartialExpiry(const CompiledQueryPlan& plan,
                               Timestamp window, bool guard_expiry,
                               std::uint32_t next_edge, Timestamp first_ts,
                               Timestamp last_ts);

/// One registered behaviour query's live state: compiled plan (with any
/// timed-automata guards baked in), the entity-indexed partial table, and
/// the emitted-interval dedup set.
///
/// `Advance` preserves the original StreamMonitor semantics exactly —
/// expiry before extension, in-place extension with a pending list (an
/// extension is never re-extended by the event that created it), strict
/// injectivity, window check on the extended span, one alert per distinct
/// interval — while touching only the partials the event's entities can
/// extend. Constraint guards are enforced at the same point as the window
/// check (a guarded extension simply rejects), so a trivial
/// TemporalConstraints is bit-identical to the unconstrained path.
/// Completions are reported sorted by interval, which makes the per-event
/// alert order a pure function of the event history (the engine's
/// canonical (ts, query, interval) order).
class QueryRuntime {
 public:
  QueryRuntime(std::size_t global_index, const Pattern& query,
               const StreamLimits& limits)
      : QueryRuntime(global_index, query, TemporalConstraints(), limits) {}
  QueryRuntime(std::size_t global_index, const Pattern& query,
               const TemporalConstraints& constraints,
               const StreamLimits& limits)
      : global_index_(global_index),
        plan_(query, constraints),
        limits_(limits),
        window_(plan_.EffectiveWindow(limits.window)),
        table_(plan_.node_count(), limits.entity_index) {}

  std::size_t global_index() const { return global_index_; }
  const CompiledQueryPlan& plan() const { return plan_; }
  const PartialTable& table() const { return table_; }
  /// The span bound actually enforced: the engine window folded with the
  /// query's deadline (0 = unbounded).
  Timestamp effective_window() const { return window_; }
  std::int64_t dropped_partials() const { return dropped_partials_; }
  std::int64_t alerts() const { return alerts_; }
  std::int64_t seed_skips() const { return seed_skips_; }

  /// Records that the shard's seed dispatch skipped this (idle) query for
  /// one event (see StreamShard).
  void CountSeedSkip() { ++seed_skips_; }

  /// Feeds one event; appends every newly completed (distinct) match
  /// interval to `completions`, sorted ascending.
  void Advance(const StreamEvent& event, std::vector<Interval>* completions);

 private:
  static constexpr std::int64_t kUnbound = kUnboundEntity;

  void TryExtend(const StreamEvent& event, std::uint32_t slot,
                 std::vector<Interval>* completions);
  void TrySeed(const StreamEvent& event, std::vector<Interval>* completions);
  void Complete(Interval interval, std::vector<Interval>* completions);
  void QueuePending(std::span<const std::int64_t> base_binding,
                    const StreamEvent& event, std::uint32_t matched_edge,
                    Timestamp first_ts);
  void InsertPending();

  std::size_t global_index_;
  CompiledQueryPlan plan_;
  StreamLimits limits_;
  Timestamp window_;
  PartialTable table_;
  /// Dedup of emitted alert intervals, ordered by (begin, end): lookup and
  /// insert are one O(log) probe, window expiry erases the ordered front.
  std::set<Interval> emitted_;
  std::int64_t dropped_partials_ = 0;
  std::int64_t alerts_ = 0;
  std::int64_t seed_skips_ = 0;
  // Scratch reused across events (capacity persists, no steady-state
  // allocation).
  struct PendingMeta {
    std::uint32_t next_edge = 0;
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
  };
  std::vector<PendingMeta> pending_;
  std::vector<std::int64_t> pending_bindings_;  // pending_ x node_count
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_QUERY_RUNTIME_H_
