#include "mining/score.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tgm {
namespace {

class ScoreKindTest : public ::testing::TestWithParam<ScoreKind> {};

TEST_P(ScoreKindTest, AntiMonotoneInNegativeFrequency) {
  DiscriminativeScore score(GetParam(), 100, 1000);
  // Fixed x, growing y => score must not increase (Problem 1 condition 1).
  for (double x : {0.3, 0.6, 1.0}) {
    double prev = score(x, 0.0);
    for (double y = 0.05; y <= x; y += 0.05) {
      double s = score(x, y);
      EXPECT_LE(s, prev + 1e-12)
          << DiscriminativeScore::KindName(GetParam()) << " x=" << x
          << " y=" << y;
      prev = s;
    }
  }
}

TEST_P(ScoreKindTest, MonotoneInPositiveFrequency) {
  DiscriminativeScore score(GetParam(), 100, 1000);
  // Fixed y, growing x => score must not decrease (condition 2).
  for (double y : {0.0, 0.1}) {
    double prev = -1e300;
    for (double x = std::max(y, 0.1); x <= 1.0; x += 0.1) {
      double s = score(x, y);
      EXPECT_GE(s, prev - 1e-12)
          << DiscriminativeScore::KindName(GetParam()) << " x=" << x
          << " y=" << y;
      prev = s;
    }
  }
}

TEST_P(ScoreKindTest, UpperBoundDominatesAllNegativeFrequencies) {
  DiscriminativeScore score(GetParam(), 50, 500);
  for (double x : {0.2, 0.5, 0.9}) {
    double bound = score.UpperBound(x);
    for (double y = 0.0; y <= 1.0; y += 0.1) {
      EXPECT_GE(bound, score(x, y) - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScoreKindTest,
                         ::testing::Values(ScoreKind::kLogRatio,
                                           ScoreKind::kGTest,
                                           ScoreKind::kInfoGain),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case ScoreKind::kLogRatio:
                               return "LogRatio";
                             case ScoreKind::kGTest:
                               return "GTest";
                             case ScoreKind::kInfoGain:
                               return "InfoGain";
                           }
                           return "Unknown";
                         });

TEST(ScoreTest, LogRatioMatchesFormula) {
  DiscriminativeScore score(ScoreKind::kLogRatio, 10, 10, 1e-6);
  EXPECT_NEAR(score(1.0, 0.0), std::log(1.0 / 1e-6), 1e-9);
  EXPECT_NEAR(score(0.5, 0.25), std::log(0.5 / 0.250001), 1e-9);
}

TEST(ScoreTest, LogRatioZeroPositiveIsNegativeInfinity) {
  DiscriminativeScore score(ScoreKind::kLogRatio, 10, 10);
  EXPECT_TRUE(std::isinf(score(0.0, 0.0)));
  EXPECT_LT(score(0.0, 0.0), 0.0);
}

TEST(ScoreTest, GTestZeroAtEqualRates) {
  DiscriminativeScore score(ScoreKind::kGTest, 100, 100);
  EXPECT_NEAR(score(0.4, 0.4), 0.0, 1e-9);
}

TEST(ScoreTest, InfoGainPerfectSplitEqualsPriorEntropy) {
  DiscriminativeScore score(ScoreKind::kInfoGain, 100, 100);
  // x=1, y=0 separates the classes perfectly: gain = H(0.5) = 1 bit.
  EXPECT_NEAR(score(1.0, 0.0), 1.0, 1e-9);
}

TEST(ScoreTest, InfoGainNeverExceedsPriorEntropy) {
  DiscriminativeScore score(ScoreKind::kInfoGain, 100, 900);
  double prior_entropy = -(0.1 * std::log2(0.1) + 0.9 * std::log2(0.9));
  for (double x = 0.0; x <= 1.0; x += 0.25) {
    for (double y = 0.0; y <= 1.0; y += 0.25) {
      EXPECT_LE(std::abs(score(x, y)), prior_entropy + 1e-9);
    }
  }
}

TEST(ScoreTest, KindNames) {
  EXPECT_EQ(DiscriminativeScore::KindName(ScoreKind::kLogRatio), "log-ratio");
  EXPECT_EQ(DiscriminativeScore::KindName(ScoreKind::kGTest), "G-test");
  EXPECT_EQ(DiscriminativeScore::KindName(ScoreKind::kInfoGain),
            "information-gain");
}

}  // namespace
}  // namespace tgm
