#ifndef TGM_QUERY_SEARCHER_H_
#define TGM_QUERY_SEARCHER_H_

#include <cstdint>
#include <vector>

#include "temporal/common.h"
#include "temporal/constraints.h"
#include "temporal/pattern.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// A time interval of an identified behaviour instance (inclusive).
struct Interval {
  Timestamp begin = 0;
  Timestamp end = 0;
  friend bool operator==(const Interval&, const Interval&) = default;
  friend auto operator<=>(const Interval&, const Interval&) = default;
};

/// Searches a behaviour query (a temporal graph pattern, optionally
/// annotated with TemporalConstraints) over a large monitoring log and
/// returns the distinct time intervals of its matches.
///
/// Strategy (modelled on the one-edge-index joining of [38]): the pattern
/// edge with the rarest (source label, destination label, edge label)
/// signature anchors the search. For every anchor occurrence a DFS extends
/// the match over later pattern edges in ascending position order and then
/// over earlier pattern edges in descending order, using adjacency lists
/// when an endpoint is already mapped and the signature index otherwise.
/// The span of any match is bounded by `window` — the longest observed
/// behaviour lifetime — which both matches the evaluation semantics
/// (matches must fit inside one behaviour execution) and keeps the search
/// local.
///
/// Constraint guards are enforced incrementally: a candidate edge is
/// rejected the moment any gap / since-seed guard against an already-bound
/// neighbour fails (binding edge 0 last re-checks every bound edge's
/// since-seed guard), the query deadline folds into the window as
/// min(window, deadline), and disjunctive label alternatives widen both
/// the per-edge accept test and the signature-index enumeration. The same
/// guard semantics as the stream runtime, so offline Search and online
/// Watch agree on constrained queries exactly as they do on plain ones; a
/// trivial constraint annotation takes none of these paths and is
/// bit-identical to the unconstrained search.
class TemporalQuerySearcher {
 public:
  struct Options {
    Timestamp window = 0;          // 0 = unbounded (not recommended)
    std::int64_t max_matches = 200000;
  };

  explicit TemporalQuerySearcher(const Options& options)
      : options_(options) {}

  /// Distinct match intervals, sorted ascending.
  std::vector<Interval> Search(const Pattern& query,
                               const TemporalGraph& log) const {
    return Search(query, TemporalConstraints(), log);
  }

  /// Same, with the query's timed-automata guards. The caller is
  /// responsible for `constraints.ValidateFor(query)` (the api layer
  /// does); a trivial value is exactly the unconstrained overload.
  std::vector<Interval> Search(const Pattern& query,
                               const TemporalConstraints& constraints,
                               const TemporalGraph& log) const;

  /// Union of distinct intervals over several queries (a behaviour query
  /// built from the top-k patterns).
  std::vector<Interval> SearchAll(const std::vector<Pattern>& queries,
                                  const TemporalGraph& log) const;

  /// Same, with per-query constraints aligned by index; queries beyond
  /// `constraints.size()` run unconstrained.
  std::vector<Interval> SearchAll(
      const std::vector<Pattern>& queries,
      const std::vector<TemporalConstraints>& constraints,
      const TemporalGraph& log) const;

 private:
  struct SearchContext;
  void Extend(SearchContext& ctx, std::size_t step) const;

  Options options_;
};

}  // namespace tgm

#endif  // TGM_QUERY_SEARCHER_H_
