// The structural validators of base/invariants.h: clean runs return "",
// corrupted state (reached through the test peers the classes befriend)
// returns the exact first-violation message, and — in builds configured
// with -DTGMINER_CHECK_INVARIANTS=ON — TGM_VALIDATE_INVARIANTS aborts
// with that message. Pinning the exact strings keeps the validators
// honest: a validator that stops looking (or a message that drifts) fails
// here, not in a debugging session.

#include "base/invariants.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/spsc_queue.h"
#include "query/stream/engine.h"
#include "query/stream/partial_table.h"
#include "test_util.h"

namespace tgm {

// Corruption hooks. Declared as friends in the production headers,
// defined only here: production code cannot reach private state through
// them, and every mutation a test performs is spelled out below.
struct PartialTableTestPeer {
  static std::size_t& live(PartialTable& t) { return t.live_; }
  static std::vector<std::int64_t>& bindings(PartialTable& t) {
    return t.bindings_;
  }
  static std::uint32_t& bucket_pos(PartialTable& t, std::uint32_t slot) {
    return t.meta_[slot].bucket_pos;
  }
  static std::unordered_map<std::uint64_t, std::uint32_t>& by_seq(
      PartialTable& t) {
    return t.by_seq_;
  }
  static std::vector<std::uint32_t>& free_slots(PartialTable& t) {
    return t.free_slots_;
  }
};

struct SpscQueueTestPeer {
  template <typename T>
  static void SetMask(SpscQueue<T>& q, std::size_t mask) {
    q.mask_ = mask;
  }
  template <typename T>
  static void SetTail(SpscQueue<T>& q, std::size_t tail) {
    q.tail_.store(tail, std::memory_order_release);
  }
  template <typename T>
  static void ParkProducer(SpscQueue<T>& q, bool parked) {
    q.producer_parked_.store(parked, std::memory_order_seq_cst);
  }
};

namespace {

using ::tgm::testing::MakePattern;

constexpr std::int64_t kBinding[] = {7, 8};

// --- PartialTable ------------------------------------------------------

PartialTable MakeInternalTable() {
  PartialTable t(/*node_count=*/2, /*entity_index=*/true);
  t.Insert(kBinding, /*next_edge=*/1, /*first_ts=*/10, /*last_ts=*/10,
           /*expiry=*/110, PartialTable::Role::kEntity, /*key=*/8);
  t.Insert(kBinding, 1, 20, 20, 120, PartialTable::Role::kWildcard, 0);
  return t;
}

TEST(PartialTableInvariantsTest, CleanTableReportsNothing) {
  PartialTable t(2, true);
  EXPECT_EQ(t.CheckInvariants(), "");

  t = MakeInternalTable();
  EXPECT_EQ(t.CheckInvariants(), "");

  // Removal paths keep the representation consistent too.
  t.ExpireAt(115);  // expires the first partial
  EXPECT_EQ(t.live(), 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
  t.EvictOldest();
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(PartialTableInvariantsTest, CleanExternalLifetimeTableReportsNothing) {
  PartialTable t(2, true, /*external_lifetime=*/true);
  t.InsertWithSeq(kBinding, 1, 10, 10, PartialTable::Role::kEntity, 8,
                  /*seq=*/41);
  t.InsertWithSeq(kBinding, 1, 20, 20, PartialTable::Role::kWildcard, 0, 42);
  EXPECT_EQ(t.CheckInvariants(), "");
  EXPECT_TRUE(t.EraseBySeq(41));
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(PartialTableInvariantsTest, DetectsLiveCountDrift) {
  PartialTable t = MakeInternalTable();
  PartialTableTestPeer::live(t) = 3;
  EXPECT_EQ(t.CheckInvariants(), "live count 3 != allocated 2 - free 0");
}

TEST(PartialTableInvariantsTest, DetectsBindingArenaSizeMismatch) {
  PartialTable t = MakeInternalTable();
  PartialTableTestPeer::bindings(t).push_back(0);
  EXPECT_EQ(t.CheckInvariants(),
            "binding arena holds 5 entries, want 4 (2 slots x 2 nodes)");
}

TEST(PartialTableInvariantsTest, DetectsBucketPositionDrift) {
  // Two wildcard partials occupy bucket positions 0 and 1; pointing the
  // second one's back-reference at position 0 breaks the swap-removal
  // contract (Remove would patch the wrong slot).
  PartialTable t(2, /*entity_index=*/false);
  t.Insert(kBinding, 1, 10, 10, 110, PartialTable::Role::kWildcard, 0);
  t.Insert(kBinding, 1, 20, 20, 120, PartialTable::Role::kWildcard, 0);
  ASSERT_EQ(t.CheckInvariants(), "");
  PartialTableTestPeer::bucket_pos(t, 1) = 0;
  EXPECT_EQ(t.CheckInvariants(), "slot 1 bucket_pos 0 != actual position 1");
}

TEST(PartialTableInvariantsTest, DetectsFreeListCorruption) {
  PartialTable t = MakeInternalTable();
  // Claiming a live slot is free makes it dead and filed at once.
  PartialTableTestPeer::free_slots(t).push_back(0);
  EXPECT_EQ(t.CheckInvariants(), "live count 2 != allocated 2 - free 1");
}

TEST(PartialTableInvariantsTest, DetectsSeqIndexLeak) {
  PartialTable t(2, true, /*external_lifetime=*/true);
  t.InsertWithSeq(kBinding, 1, 10, 10, PartialTable::Role::kEntity, 8, 41);
  ASSERT_EQ(t.CheckInvariants(), "");
  // Losing the seq entry strands the partial: the engine can never erase
  // it again (EraseBySeq addresses by seq).
  PartialTableTestPeer::by_seq(t).erase(41);
  EXPECT_EQ(t.CheckInvariants(), "seq index holds 0 entries, live count 1");
}

TEST(PartialTableInvariantsTest, DetectsDanglingSeqMapping) {
  PartialTable t(2, true, /*external_lifetime=*/true);
  t.InsertWithSeq(kBinding, 1, 10, 10, PartialTable::Role::kEntity, 8, 41);
  PartialTableTestPeer::by_seq(t)[41] = 5;  // slot 5 was never allocated
  EXPECT_EQ(t.CheckInvariants(), "seq 41 maps to dead slot 5");
}

// --- SpscQueue ---------------------------------------------------------

TEST(SpscQueueInvariantsTest, CleanQueueReportsNothing) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.CheckInvariants(), "");
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(q.TryPush(v));
  }
  int out = 0;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(q.CheckInvariants(), "");
}

TEST(SpscQueueInvariantsTest, DetectsMaskDrift) {
  SpscQueue<int> q(8);
  SpscQueueTestPeer::SetMask(q, 3);
  EXPECT_EQ(q.CheckInvariants(), "mask 3 != capacity-1 7");
}

TEST(SpscQueueInvariantsTest, DetectsDepthOverflow) {
  SpscQueue<int> q(8);
  SpscQueueTestPeer::SetTail(q, 9);
  EXPECT_EQ(q.CheckInvariants(), "depth 9 (head 0, tail 9) exceeds capacity 8");
}

TEST(SpscQueueInvariantsTest, DetectsStuckParkedFlag) {
  SpscQueue<int> q(8);
  SpscQueueTestPeer::ParkProducer(q, true);
  EXPECT_EQ(q.CheckInvariants(),
            "producer parked flag set on a quiescent queue");
  // A non-quiescent check (a blocking call in flight) accepts the flag.
  EXPECT_EQ(q.CheckInvariants(/*quiescent=*/false), "");
}

// --- StreamEngine ------------------------------------------------------

std::vector<StreamEvent> TwoEdgeWorkload() {
  // Query A(0)->B(1)->C(2): completions, live partials at Flush time, and
  // some non-matching noise.
  std::vector<StreamEvent> events;
  events.push_back(StreamEvent{1, 2, 0, 1, kNoEdgeLabel, 10});   // seed
  events.push_back(StreamEvent{2, 3, 1, 2, kNoEdgeLabel, 12});   // complete
  events.push_back(StreamEvent{4, 5, 0, 1, kNoEdgeLabel, 14});   // seed, dangles
  events.push_back(StreamEvent{9, 9, 3, 3, kNoEdgeLabel, 16});   // noise
  events.push_back(StreamEvent{6, 7, 0, 1, kNoEdgeLabel, 18});   // seed, dangles
  return events;
}

void RunEngineAndValidate(ShardingMode mode) {
  StreamEngine::Options opts;
  opts.window = 100;
  opts.num_shards = 2;
  opts.batch_size = 2;
  opts.sharding = mode;
  StreamEngine engine(opts);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));
  std::vector<StreamAlert> alerts;
  auto sink = [&alerts](const StreamAlert& a) { alerts.push_back(a); };
  for (const StreamEvent& e : TwoEdgeWorkload()) engine.OnEvent(e, sink);
  engine.Flush(sink);
  EXPECT_EQ(alerts.size(), 1u);
  EXPECT_GT(engine.PartialCount(), 0u);  // the validator audits live state
  EXPECT_EQ(engine.CheckInvariants(), "");
}

TEST(StreamEngineInvariantsTest, RoundRobinEngineIsConsistent) {
  RunEngineAndValidate(ShardingMode::kQueryRoundRobin);
}

TEST(StreamEngineInvariantsTest, EntityHashEngineIsConsistent) {
  RunEngineAndValidate(ShardingMode::kEntityHash);
}

// --- TGM_VALIDATE_INVARIANTS wiring ------------------------------------

#if defined(TGMINER_CHECK_INVARIANTS)
TEST(CheckInvariantsDeathTest, ValidateAbortsWithViolationMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PartialTable t = MakeInternalTable();
  PartialTableTestPeer::live(t) = 3;
  EXPECT_DEATH(
      TGM_VALIDATE_INVARIANTS("CheckInvariantsDeathTest", t.CheckInvariants()),
      "Invariant violation in CheckInvariantsDeathTest: "
      "live count 3 != allocated 2 - free 0");
}
#else
TEST(CheckInvariantsTest, ValidateCompilesOutWhenDisabled) {
  static_assert(!kInvariantChecksEnabled);
  PartialTable t = MakeInternalTable();
  PartialTableTestPeer::live(t) = 3;  // would abort if the macro ran
  TGM_VALIDATE_INVARIANTS("disabled", t.CheckInvariants());
}
#endif

}  // namespace
}  // namespace tgm
