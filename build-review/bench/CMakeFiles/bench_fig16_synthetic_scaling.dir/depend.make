# Empty dependencies file for bench_fig16_synthetic_scaling.
# This may be replaced when dependencies are built.
