// Quickstart for the tgm::api front door: ingest generic event records
// into a Session, mine the discriminative temporal pattern that separates
// the positive corpus from the negative corpus, persist the resulting
// BehaviorQuery artifact, and run it — in a *different* session — over a
// monitoring log.
//
// The scenario is the paper's running example in miniature: positive runs
// contain an ordered chain (login -> read -> exfiltrate) while negative
// runs contain the same edges in a harmless order.

#include <cstdio>
#include <sstream>
#include <vector>

#include "api/session.h"
#include "matching/seq_matcher.h"

namespace {

using namespace tgm;

// Entity ids are the producer's stable identities; one run = one graph.
enum : std::int64_t { kSshd = 1, kBash = 2, kSecrets = 3, kRemote = 4 };

std::vector<api::EventRecord> Run(bool exfiltrating, Timestamp base) {
  auto ev = [&](std::int64_t src, const char* src_label, std::int64_t dst,
                const char* dst_label, Timestamp ts) {
    return api::EventRecord{src, dst, src_label, dst_label, "", base + ts};
  };
  std::vector<api::EventRecord> events;
  events.push_back(ev(kSshd, "proc:sshd", kBash, "proc:bash", 10));  // fork
  if (exfiltrating) {
    // bash reads the HR file, then sends to a remote socket.
    events.push_back(
        ev(kSecrets, "file:/hr/salaries.csv", kBash, "proc:bash", 20));
    events.push_back(ev(kBash, "proc:bash", kRemote, "sock:remote:443", 30));
  } else {
    // The socket traffic precedes the file read — no exfiltration.
    events.push_back(ev(kBash, "proc:bash", kRemote, "sock:remote:443", 20));
    events.push_back(
        ev(kSecrets, "file:/hr/salaries.csv", kBash, "proc:bash", 30));
  }
  return events;
}

}  // namespace

int main() {
  using namespace tgm;

  // 1. Ingest: any audit-log source reduces to EventRecord streams.
  api::Session session;
  for (int run = 0; run < 5; ++run) {
    auto pos = session.Ingest("exfiltration-runs", Run(true, 100 * run));
    auto neg = session.Ingest("benign-runs", Run(false, 100 * run));
    if (!pos.ok() || !neg.ok()) {
      const Status& failed = !pos.ok() ? pos.status() : neg.status();
      std::printf("ingest failed: %s\n", failed.ToString().c_str());
      return 1;
    }
  }

  // 2. Mine: corpora in, BehaviorQuery artifact out.
  api::MineSpec spec;
  spec.positives = "exfiltration-runs";
  spec.negatives = "benign-runs";
  // This toy scenario has exactly two perfectly discriminative patterns;
  // keep the query to those (a weak pattern would also match benign runs).
  spec.top_patterns = 2;
  auto config = api::MinerConfigBuilder().MaxEdges(3).Build();
  if (!config.ok()) {
    std::printf("bad miner config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  spec.config = *config;
  StatusOr<api::BehaviorQuery> mined = session.Mine(spec);
  if (!mined.ok()) {
    std::printf("mining failed: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("mined a behaviour query: %zu patterns, window %lld, "
              "%lld patterns visited%s\n",
              mined->size(), static_cast<long long>(mined->window()),
              static_cast<long long>(mined->provenance().patterns_visited),
              mined->provenance().truncated ? " (truncated)" : "");
  for (const MinedPattern& m : mined->patterns()) {
    std::printf("  score %.2f freq+=%.2f freq-=%.2f  %s\n", m.score,
                m.freq_pos, m.freq_neg,
                m.pattern.ToString(&session.dict()).c_str());
  }

  // The discriminative skeleton is the read-then-send order.
  Pattern expected =
      Pattern::SingleEdge(session.dict().Lookup("file:/hr/salaries.csv"),
                          session.dict().Lookup("proc:bash"))
          .GrowForward(1, session.dict().Lookup("sock:remote:443"));
  SeqMatcher matcher;
  bool contained = false;
  for (const MinedPattern& m : mined->patterns()) {
    if (matcher.Contains(expected, m.pattern)) {
      contained = true;
      break;
    }
  }
  std::printf("read-then-send chain found in a top pattern: %s\n",
              contained ? "yes" : "no");

  // 3. Persist: the query is a durable artifact...
  std::stringstream artifact;
  if (Status saved = session.SaveQuery(*mined, artifact); !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }

  // 4. ...that a different session (different process, different label
  // interning order) reloads and runs over new logs.
  api::Session analyst;
  StatusOr<api::BehaviorQuery> reloaded = analyst.LoadQuery(artifact);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  for (bool exfiltrating : {true, false}) {
    auto week = analyst.Ingest("last-week",
                               Run(exfiltrating, exfiltrating ? 5000 : 9000));
    if (!week.ok()) {
      std::printf("ingest failed: %s\n", week.status().ToString().c_str());
      return 1;
    }
  }
  StatusOr<std::vector<Interval>> hits =
      analyst.Search(*reloaded, "last-week");
  if (!hits.ok()) {
    std::printf("search failed: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded query identified %zu interval(s) in last week's "
              "logs:\n", hits->size());
  for (const Interval& m : *hits) {
    std::printf("  exfiltration activity in [%lld, %lld]\n",
                static_cast<long long>(m.begin),
                static_cast<long long>(m.end));
  }
  return contained && !hits->empty() ? 0 : 1;
}
