#ifndef TGM_TEMPORAL_IO_H_
#define TGM_TEMPORAL_IO_H_

#include <iosfwd>
#include <optional>

#include "temporal/label_dict.h"
#include "temporal/pattern.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// Line-based text serialization for temporal graphs and patterns, so
/// mined behaviour queries can be exported, versioned and re-loaded.
///
/// Graph format:
///   tgraph <num_nodes> <num_edges>
///   n <label-name>                  (one per node, in node-id order)
///   e <src> <dst> <ts> <elabel-name>
/// Pattern format is identical with header `tpattern` and no timestamps
/// (edge order is the line order).
///
/// Label names must not contain whitespace; the syslog generator's labels
/// satisfy this by construction.

/// Writes `g` using names from `dict`.
void WriteTemporalGraph(std::ostream& os, const TemporalGraph& g,
                        const LabelDict& dict);

/// Reads a graph, interning labels into `dict`. Returns nullopt on parse
/// errors. The graph is returned finalized.
std::optional<TemporalGraph> ReadTemporalGraph(std::istream& is,
                                               LabelDict& dict);

/// Writes a pattern using names from `dict`.
void WritePattern(std::ostream& os, const Pattern& p, const LabelDict& dict);

/// Reads a pattern, interning labels into `dict`.
std::optional<Pattern> ReadPattern(std::istream& is, LabelDict& dict);

/// Graphviz DOT rendering of a pattern: nodes carry their labels, edges
/// their temporal order (and edge label when present). Paste into `dot
/// -Tpng` to visualize mined behaviour queries like the paper's Figures
/// 1(c) and 10.
std::string PatternToDot(const Pattern& p, const LabelDict& dict,
                         std::string_view graph_name = "pattern");

/// DOT rendering of a (small) temporal graph with timestamps on edges.
std::string TemporalGraphToDot(const TemporalGraph& g, const LabelDict& dict,
                               std::string_view graph_name = "tgraph");

}  // namespace tgm

#endif  // TGM_TEMPORAL_IO_H_
