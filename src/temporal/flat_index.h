#ifndef TGM_TEMPORAL_FLAT_INDEX_H_
#define TGM_TEMPORAL_FLAT_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "temporal/common.h"

namespace tgm {

/// Sorted-key CSR building blocks shared by the flat lookup indexes
/// (TemporalGraph's label/signature indexes, IndexMatcher's per-pattern
/// edge index): a distinct sorted key array, an offset array with
/// keys.size() + 1 entries, and one flat position array; lookups
/// binary-search the keys and return a contiguous span.

/// Groups a (key, position) pair list that is already sorted by key into
/// the CSR triple. Positions keep their within-key order.
template <typename Key>
void GroupSortedPairs(const std::vector<std::pair<Key, EdgePos>>& pairs,
                      std::vector<Key>& keys,
                      std::vector<std::int32_t>& offsets,
                      std::vector<EdgePos>& csr) {
  keys.clear();
  offsets.clear();
  csr.clear();
  csr.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i == 0 || pairs[i].first != pairs[i - 1].first) {
      keys.push_back(pairs[i].first);
      offsets.push_back(static_cast<std::int32_t>(csr.size()));
    }
    csr.push_back(pairs[i].second);
  }
  offsets.push_back(static_cast<std::int32_t>(csr.size()));
}

/// Binary-searches `keys` for `key`; returns the span of the matching CSR
/// run, or an empty span when absent.
template <typename Key>
std::span<const EdgePos> LookupCsr(const std::vector<Key>& keys,
                                   const std::vector<std::int32_t>& offsets,
                                   const std::vector<EdgePos>& csr, Key key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return {};
  std::size_t k = static_cast<std::size_t>(it - keys.begin());
  return std::span<const EdgePos>(
      csr.data() + offsets[k],
      static_cast<std::size_t>(offsets[k + 1] - offsets[k]));
}

}  // namespace tgm

#endif  // TGM_TEMPORAL_FLAT_INDEX_H_
