#ifndef TGM_QUERY_STREAM_ENTITY_SHARD_H_
#define TGM_QUERY_STREAM_ENTITY_SHARD_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "query/stream/query_runtime.h"

namespace tgm {

/// Small-buffer binding carrier for the entity-hash op/result queues:
/// bindings of up to kInline nodes (every query in practice) travel
/// inline in the op struct, so pushing an insert through an SPSC ring
/// moves no heap memory.
class BindingBuf {
 public:
  BindingBuf() = default;

  void Assign(std::span<const std::int64_t> v) {
    std::span<std::int64_t> dst = Resize(v.size());
    std::copy(v.begin(), v.end(), dst.begin());
  }

  /// Sets the size and returns the writable storage (contents
  /// unspecified until written).
  std::span<std::int64_t> Resize(std::size_t n) {
    size_ = n;
    if (n <= kInline) return {inline_.data(), n};
    heap_.resize(n);
    return {heap_.data(), n};
  }

  std::span<const std::int64_t> view() const {
    if (size_ <= kInline) return {inline_.data(), size_};
    return {heap_.data(), size_};
  }

 private:
  static constexpr std::size_t kInline = 12;
  std::array<std::int64_t, kInline> inline_{};
  std::vector<std::int64_t> heap_;
  std::size_t size_ = 0;
};

/// Which buckets of the target shard a probe op covers. The engine sets
/// kProbeDst only when the event's dst entity differs from its src
/// entity — the routing-layer mirror of PartialTable::ForEachExtendable's
/// probe-dedup (a self-loop event names one bucket, probed once).
inline constexpr std::uint8_t kProbeSrc = 1;
inline constexpr std::uint8_t kProbeDst = 2;
inline constexpr std::uint8_t kProbeWildcard = 4;

/// One instruction from the engine's central sequencer to an entity-hash
/// shard. Ops for one shard execute strictly in send (FIFO) order, which
/// is the entire consistency model: the engine orders erases before the
/// probes of the same event, and the inserts of event i before the probes
/// of event i+1.
struct EntityShardOp {
  enum class Kind : std::uint8_t {
    kProbe,   ///< match one event against this shard's buckets of a query
    kInsert,  ///< file a new partial (route + seq assigned by the engine)
    kErase,   ///< remove the partial with engine seq `seq` (expiry/evict)
    kFlush,   ///< reply kFlushAck: everything before this op has executed
    kStop,    ///< worker exits (handled by the loop, not Execute)
  };
  Kind kind = Kind::kProbe;
  std::uint32_t query = 0;  ///< engine-global query index

  // kProbe — `event` points into the engine's double-buffered batch,
  // stable until the probe's result has been received.
  const StreamEvent* event = nullptr;
  std::uint32_t event_index = 0;
  std::uint8_t probe_mask = 0;

  // kInsert (seq doubles as the kErase address).
  BindingBuf binding;
  std::uint32_t next_edge = 0;
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  PartialTable::Role role = PartialTable::Role::kWildcard;
  std::int64_t key = 0;
  std::uint64_t seq = 0;

  // kFlush
  std::uint64_t token = 0;
};

/// One probe hit: either a completed match (interval) or an extension
/// (the grown partial, which the engine will route and re-insert). `tag`
/// is the probe-order position of the bucket that produced it — 0 src
/// bucket, 1 dst bucket, 2 wildcard — so the engine can reassemble the
/// exact single-table candidate order from multi-shard results.
struct ProbeExtension {
  std::uint8_t tag = 0;
  bool complete = false;
  std::uint32_t next_edge = 0;
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  Interval interval;
  BindingBuf binding;
};

/// One message from a shard back to the engine: the full result of one
/// probe op (possibly empty — the engine counts these to know when an
/// event's probes have all landed), or a flush acknowledgement.
struct EntityShardResult {
  enum class Kind : std::uint8_t { kProbe, kFlushAck };
  Kind kind = Kind::kProbe;
  std::uint32_t query = 0;
  std::uint32_t event_index = 0;
  std::uint64_t token = 0;
  std::vector<ProbeExtension> exts;
};

/// One entity-hash shard: for every registered query, the fragment of its
/// partial table whose bucket entities hash to this shard (plus, on the
/// query's home shard, its wildcard bucket). The shard executes ops —
/// probe / insert / erase — against those tables and reports probe hits;
/// all *decisions* (dedup, routing, expiry, eviction, seq assignment)
/// live in the engine's central sequencer, which is what keeps the mode
/// bit-identical to round-robin execution. Single-threaded by
/// construction: exactly one worker drains the shard's inbox — a
/// confinement contract carried by `role()`: every member is
/// TGM_GUARDED_BY(role_), so touching shard state requires a visible
/// RoleGuard (the worker loop holds one for its lifetime; the engine may
/// claim one only after QuiesceShards).
class EntityShard {
 public:
  explicit EntityShard(const StreamLimits& limits) : limits_(limits) {}

  /// The shard's confinement capability (see class comment).
  const ThreadRole& role() const TGM_RETURN_CAPABILITY(role_) {
    return role_;
  }

  /// Registers query `global_index` (indexes must arrive consecutively).
  /// `window` is the query's effective window (engine window folded with
  /// any deadline — precomputed by the engine so every shard agrees).
  void AddQuery(std::size_t global_index,
                std::shared_ptr<const CompiledQueryPlan> plan,
                Timestamp window) TGM_REQUIRES(role_);

  /// Executes one op, appending at most one result message to `*results`.
  void Execute(EntityShardOp& op, std::vector<EntityShardResult>* results)
      TGM_REQUIRES(role_);

  std::size_t query_count() const TGM_REQUIRES(role_) {
    return queries_.size();
  }
  const PartialTable& table(std::size_t query) const TGM_REQUIRES(role_) {
    return queries_[query].table;
  }
  std::int64_t probes_executed() const TGM_REQUIRES(role_) {
    return probes_executed_;
  }
  /// Ops landed, by kind — the shard side of the engine's cross-shard
  /// accounting check (sent counters must equal executed counters once
  /// the shard is quiesced).
  std::int64_t inserts_executed() const TGM_REQUIRES(role_) {
    return inserts_executed_;
  }
  std::int64_t erases_executed() const TGM_REQUIRES(role_) {
    return erases_executed_;
  }

  /// Structural validator: every query table's CheckInvariants, first
  /// violation reported with its query index ("" = all consistent).
  std::string CheckInvariants() const TGM_REQUIRES(role_) {
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      if (std::string err = queries_[q].table.CheckInvariants();
          !err.empty()) {
        return "query " + std::to_string(q) + ": " + err;
      }
    }
    return std::string();
  }

 private:
  struct QueryState {
    std::shared_ptr<const CompiledQueryPlan> plan;
    Timestamp window = 0;
    PartialTable table;

    QueryState(std::shared_ptr<const CompiledQueryPlan> p, Timestamp w,
               bool entity_index)
        : plan(std::move(p)),
          window(w),
          table(plan->node_count(), entity_index, /*external_lifetime=*/true) {
    }
  };

  StreamLimits limits_;
  ThreadRole role_;
  std::vector<QueryState> queries_ TGM_GUARDED_BY(role_);
  std::int64_t probes_executed_ TGM_GUARDED_BY(role_) = 0;
  std::int64_t inserts_executed_ TGM_GUARDED_BY(role_) = 0;
  std::int64_t erases_executed_ TGM_GUARDED_BY(role_) = 0;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_ENTITY_SHARD_H_
