#include "query/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "query/stream/engine.h"

namespace tgm {

namespace {

std::size_t FractionCount(std::size_t n, double fraction) {
  std::size_t count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  return std::clamp<std::size_t>(count, 1, n);
}

}  // namespace

void Pipeline::Prepare() {
  if (prepared_) return;
  training_ = BuildTrainingData(world_, config_.dataset);
  test_log_ = BuildTestLog(world_, config_.dataset);
  std::vector<const std::vector<TemporalGraph>*> sets;
  for (const auto& positives : training_.positives) sets.push_back(&positives);
  sets.push_back(&training_.background);
  interest_.emplace(sets, world_.dict());
  static_pos_cache_.resize(training_.positives.size());
  prepared_ = true;
}

std::vector<const TemporalGraph*> Pipeline::Positives(int behavior_idx,
                                                      double fraction) const {
  TGM_CHECK(prepared_);
  const auto& graphs =
      training_.positives[static_cast<std::size_t>(behavior_idx)];
  std::size_t count = FractionCount(graphs.size(), fraction);
  std::vector<const TemporalGraph*> ptrs;
  ptrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ptrs.push_back(&graphs[i]);
  return ptrs;
}

std::vector<const TemporalGraph*> Pipeline::Negatives(double fraction) const {
  TGM_CHECK(prepared_);
  std::size_t count = FractionCount(training_.background.size(), fraction);
  std::vector<const TemporalGraph*> ptrs;
  ptrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ptrs.push_back(&training_.background[i]);
  }
  return ptrs;
}

Timestamp Pipeline::WindowFor(int behavior_idx) const {
  TGM_CHECK(prepared_);
  Timestamp duration =
      training_.max_duration[static_cast<std::size_t>(behavior_idx)];
  return static_cast<Timestamp>(
      std::llround(static_cast<double>(duration) * config_.window_slack));
}

MineResult Pipeline::MineTemporal(int behavior_idx,
                                  const MinerConfig& miner_config,
                                  double fraction) const {
  Miner miner(miner_config, Positives(behavior_idx, fraction),
              Negatives(fraction));
  return miner.Mine();
}

std::vector<MinedPattern> Pipeline::TemporalQueries(
    const MineResult& result) const {
  return SelectTopQueries(result.top, *interest_, config_.top_patterns);
}

std::vector<Interval> Pipeline::SearchTemporal(
    int behavior_idx, const std::vector<MinedPattern>& queries) const {
  TemporalQuerySearcher::Options options;
  options.window = WindowFor(behavior_idx);
  options.max_matches = config_.search_match_cap;
  TemporalQuerySearcher searcher(options);
  std::vector<Pattern> patterns;
  patterns.reserve(queries.size());
  for (const MinedPattern& q : queries) patterns.push_back(q.pattern);
  return searcher.SearchAll(patterns, test_log_.graph);
}

std::vector<Interval> Pipeline::MonitorTemporal(
    int behavior_idx, const std::vector<MinedPattern>& queries,
    int num_shards) const {
  StreamEngine::Options options;
  options.window = WindowFor(behavior_idx);
  options.num_shards = num_shards;
  options.batch_size = 64;
  // Offline replay must match SearchTemporal exactly: no backpressure —
  // the offline searcher never drops work, so this stage must not either.
  options.max_partials_per_query = std::numeric_limits<std::size_t>::max();
  StreamEngine engine(options);
  for (const MinedPattern& q : queries) engine.AddQuery(q.pattern);

  const TemporalGraph& log = test_log_.graph;
  std::vector<Interval> intervals;
  auto sink = [&intervals](const StreamAlert& alert) {
    intervals.push_back(alert.interval);
  };
  for (const TemporalEdge& e : log.edges()) {
    engine.OnEvent(StreamEvent::FromEdge(log, e), sink);
  }
  engine.Flush(sink);
  std::sort(intervals.begin(), intervals.end());
  intervals.erase(std::unique(intervals.begin(), intervals.end()),
                  intervals.end());
  return intervals;
}

const std::vector<StaticGraph>& Pipeline::StaticPositives(int behavior_idx) {
  auto& cache = static_pos_cache_[static_cast<std::size_t>(behavior_idx)];
  if (cache.empty()) {
    for (const TemporalGraph& g :
         training_.positives[static_cast<std::size_t>(behavior_idx)]) {
      cache.push_back(StaticGraph::Collapse(g));
    }
  }
  return cache;
}

const std::vector<StaticGraph>& Pipeline::StaticNegatives() {
  if (static_neg_cache_.empty()) {
    for (const TemporalGraph& g : training_.background) {
      static_neg_cache_.push_back(StaticGraph::Collapse(g));
    }
  }
  return static_neg_cache_;
}

GspanResult Pipeline::MineStatic(int behavior_idx, double fraction) {
  TGM_CHECK(prepared_);
  const auto& pos = StaticPositives(behavior_idx);
  const auto& neg = StaticNegatives();
  std::size_t pos_count = FractionCount(pos.size(), fraction);
  std::size_t neg_count = FractionCount(neg.size(), fraction);
  std::vector<const StaticGraph*> pos_ptrs;
  for (std::size_t i = 0; i < pos_count; ++i) pos_ptrs.push_back(&pos[i]);
  std::vector<const StaticGraph*> neg_ptrs;
  for (std::size_t i = 0; i < neg_count; ++i) neg_ptrs.push_back(&neg[i]);
  GspanConfig cfg = config_.gspan;
  cfg.max_edges = config_.query_size;
  if (cfg.max_millis == 0) cfg.max_millis = config_.miner.max_millis;
  GspanMiner miner(cfg, std::move(pos_ptrs), std::move(neg_ptrs));
  return miner.Mine();
}

std::vector<Interval> Pipeline::SearchStatic(
    int behavior_idx, const std::vector<StaticMinedPattern>& queries) const {
  StaticQuerySearcher::Options options;
  options.window = WindowFor(behavior_idx);
  options.max_matches = config_.search_match_cap;
  StaticQuerySearcher searcher(options);
  std::vector<StaticGraph> patterns;
  patterns.reserve(queries.size());
  for (const StaticMinedPattern& q : queries) patterns.push_back(q.graph);
  return searcher.SearchAll(patterns, test_log_.graph);
}

NodeSetQuery Pipeline::MineNodeSet(int behavior_idx, double fraction) const {
  return NodeSetQuery::Mine(Positives(behavior_idx, fraction),
                            Negatives(fraction), config_.nodeset_k,
                            config_.miner.score_kind, config_.miner.epsilon,
                            config_.miner.min_pos_freq);
}

std::vector<Interval> Pipeline::SearchNodeSet(int behavior_idx,
                                              const NodeSetQuery& query)
    const {
  NodeSetSearcher::Options options;
  options.window = WindowFor(behavior_idx);
  options.max_matches = config_.search_match_cap;
  NodeSetSearcher searcher(options);
  return searcher.Search(query, test_log_.graph);
}

AccuracyResult Pipeline::Evaluate(int behavior_idx,
                                  const std::vector<Interval>& matches)
    const {
  return EvaluateAccuracy(
      matches, test_log_.truth,
      AllBehaviors()[static_cast<std::size_t>(behavior_idx)]);
}

AccuracyResult Pipeline::RunTGMiner(int behavior_idx, int query_size,
                                    double fraction) const {
  MinerConfig cfg = config_.miner;
  cfg.max_edges = query_size > 0 ? query_size : config_.query_size;
  MineResult result = MineTemporal(behavior_idx, cfg, fraction);
  std::vector<MinedPattern> queries = TemporalQueries(result);
  std::vector<Interval> matches = SearchTemporal(behavior_idx, queries);
  return Evaluate(behavior_idx, matches);
}

AccuracyResult Pipeline::RunNtemp(int behavior_idx, double fraction) {
  GspanResult result = MineStatic(behavior_idx, fraction);
  std::vector<StaticMinedPattern> queries = result.top;
  if (static_cast<int>(queries.size()) > config_.top_patterns) {
    queries.resize(static_cast<std::size_t>(config_.top_patterns));
  }
  std::vector<Interval> matches = SearchStatic(behavior_idx, queries);
  return Evaluate(behavior_idx, matches);
}

AccuracyResult Pipeline::RunNodeSet(int behavior_idx, double fraction) const {
  NodeSetQuery query = MineNodeSet(behavior_idx, fraction);
  std::vector<Interval> matches = SearchNodeSet(behavior_idx, query);
  return Evaluate(behavior_idx, matches);
}

}  // namespace tgm
