# Empty compiler generated dependencies file for api_query_roundtrip_test.
# This may be replaced when dependencies are built.
