file(REMOVE_RECURSE
  "CMakeFiles/live_surveillance.dir/live_surveillance.cpp.o"
  "CMakeFiles/live_surveillance.dir/live_surveillance.cpp.o.d"
  "live_surveillance"
  "live_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
