file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_operations.dir/bench_micro_operations.cc.o"
  "CMakeFiles/bench_micro_operations.dir/bench_micro_operations.cc.o.d"
  "bench_micro_operations"
  "bench_micro_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
