file(REMOVE_RECURSE
  "CMakeFiles/stream_monitor_test.dir/stream_monitor_test.cc.o"
  "CMakeFiles/stream_monitor_test.dir/stream_monitor_test.cc.o.d"
  "stream_monitor_test"
  "stream_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
