#include "query/nodeset.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace tgm {

std::vector<std::pair<double, LabelId>> RankDiscriminativeLabels(
    const std::unordered_map<LabelId, std::int64_t>& pos_count,
    const std::unordered_map<LabelId, std::int64_t>& neg_count,
    std::int64_t num_pos, std::int64_t num_neg,
    const DiscriminativeScore& score, double min_pos_freq) {
  // Canonicalize before ranking: the count maps are hash tables, so their
  // iteration order is hash-layout-dependent. Pull the keys out, sort
  // them, and only ever probe the maps from then on — the ranking is a
  // pure function of the (label, count) multiset.
  std::vector<LabelId> labels;
  labels.reserve(pos_count.size());
  for (const auto& [label, count] : pos_count) labels.push_back(label);
  std::sort(labels.begin(), labels.end());

  std::vector<std::pair<double, LabelId>> ranked;
  ranked.reserve(labels.size());
  for (LabelId label : labels) {
    double x = static_cast<double>(pos_count.at(label)) /
               static_cast<double>(num_pos);
    if (x < min_pos_freq) continue;
    auto it = neg_count.find(label);
    double y = it == neg_count.end()
                   ? 0.0
                   : static_cast<double>(it->second) /
                         static_cast<double>(num_neg);
    ranked.emplace_back(score(x, y), label);
  }
  // (score desc, label asc) is a total order over unique labels, so the
  // sort pins the full tie-break, not just the score order.
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  return ranked;
}

NodeSetQuery NodeSetQuery::Mine(
    const std::vector<const TemporalGraph*>& positives,
    const std::vector<const TemporalGraph*>& negatives, int k,
    ScoreKind score_kind, double epsilon, double min_pos_freq) {
  TGM_CHECK(!positives.empty() && !negatives.empty());
  std::unordered_map<LabelId, std::int64_t> pos_count;
  std::unordered_map<LabelId, std::int64_t> neg_count;
  for (const TemporalGraph* g : positives) {
    for (LabelId l : g->DistinctNodeLabels()) ++pos_count[l];
  }
  for (const TemporalGraph* g : negatives) {
    for (LabelId l : g->DistinctNodeLabels()) ++neg_count[l];
  }
  DiscriminativeScore score(score_kind,
                            static_cast<std::int64_t>(positives.size()),
                            static_cast<std::int64_t>(negatives.size()),
                            epsilon);
  std::vector<std::pair<double, LabelId>> ranked = RankDiscriminativeLabels(
      pos_count, neg_count, static_cast<std::int64_t>(positives.size()),
      static_cast<std::int64_t>(negatives.size()), score, min_pos_freq);
  NodeSetQuery query;
  for (const auto& [s, label] : ranked) {
    if (static_cast<int>(query.labels_.size()) >= k) break;
    query.labels_.push_back(label);
  }
  return query;
}

std::vector<Interval> NodeSetSearcher::Search(const NodeSetQuery& query,
                                              const TemporalGraph& log)
    const {
  TGM_CHECK(log.finalized());
  const std::vector<LabelId>& labels = query.labels();
  if (labels.empty()) return {};

  // Rarest label anchors the sliding windows.
  std::size_t anchor_idx = 0;
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::size_t count = log.LabelPositions(labels[i]).size();
    if (count < best) {
      best = count;
      anchor_idx = i;
    }
  }
  if (best == 0 || best == std::numeric_limits<std::size_t>::max()) return {};

  EdgePosSpan anchors = log.LabelPositions(labels[anchor_idx]);
  std::vector<Interval> intervals;
  Timestamp skip_until = std::numeric_limits<Timestamp>::min();
  std::int64_t found = 0;

  for (EdgePos anchor_pos : anchors) {
    Timestamp t0 = log.edge(anchor_pos).ts;
    if (t0 < skip_until) continue;
    // The anchor can sit anywhere inside the match: for each other label,
    // take the occurrence nearest to the anchor and require the spanned
    // interval to stay within the window.
    Timestamp earliest = t0;
    Timestamp latest = t0;
    bool all_present = true;
    for (std::size_t i = 0; i < labels.size() && all_present; ++i) {
      if (i == anchor_idx) continue;
      EdgePosSpan positions = log.LabelPositions(labels[i]);
      auto it = std::lower_bound(
          positions.begin(), positions.end(), t0,
          [&log](EdgePos p, Timestamp t) { return log.edge(p).ts < t; });
      Timestamp best_ts = 0;
      bool have = false;
      if (it != positions.end()) {
        best_ts = log.edge(*it).ts;
        have = true;
      }
      if (it != positions.begin()) {
        Timestamp prev_ts = log.edge(*std::prev(it)).ts;
        if (!have || t0 - prev_ts < best_ts - t0) {
          best_ts = prev_ts;
          have = true;
        }
      }
      if (!have) {
        all_present = false;
        break;
      }
      Timestamp new_earliest = std::min(earliest, best_ts);
      Timestamp new_latest = std::max(latest, best_ts);
      if (options_.window > 0 &&
          new_latest - new_earliest > options_.window) {
        all_present = false;
        break;
      }
      earliest = new_earliest;
      latest = new_latest;
    }
    if (!all_present) continue;
    intervals.push_back(Interval{earliest, latest});
    skip_until = t0 + std::max<Timestamp>(options_.window, latest - t0) + 1;
    if (options_.max_matches > 0 && ++found >= options_.max_matches) break;
  }
  return intervals;
}

}  // namespace tgm
