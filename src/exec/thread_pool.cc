#include "exec/thread_pool.h"

namespace tgm {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(lock, [this]() TGM_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace tgm
