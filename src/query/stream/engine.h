#ifndef TGM_QUERY_STREAM_ENGINE_H_
#define TGM_QUERY_STREAM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "exec/spsc_queue.h"
#include "exec/work_stealing.h"
#include "query/stream/entity_shard.h"
#include "query/stream/shard.h"

namespace tgm {

/// How the engine splits work across its shards.
enum class ShardingMode {
  /// Queries are partitioned round-robin; every shard sees every event.
  /// One query never spans shards, so a single hot watch caps at one
  /// core; scaling comes from query count.
  kQueryRoundRobin,
  /// Partials are partitioned by `hash(entity) % num_shards` — the entity
  /// their next transition requires, the same key PartialTable buckets
  /// by — and events are routed to the shards owning their endpoints'
  /// buckets through per-shard SPSC inboxes (shards drain continuously;
  /// no per-batch broadcast+join). A single query's work spreads across
  /// shards; partials whose next required entity hashes elsewhere are
  /// handed off, and wildcard-bucket partials live on the query's home
  /// shard (query % num_shards). The alert stream, drops, and per-query
  /// stats are bit-identical to kQueryRoundRobin for every shard count
  /// and batch size.
  kEntityHash,
};

/// Per-query snapshot row of EngineStats.
struct EngineQueryStats {
  std::size_t query_index = 0;
  /// kQueryRoundRobin: the shard owning this query's whole state.
  /// kEntityHash: the query's *home* shard (wildcard bucket location);
  /// entity buckets are spread across all shards. Both modes report
  /// query_index % num_shards.
  std::size_t shard = 0;
  std::size_t live_partials = 0;
  std::size_t peak_partials = 0;  ///< high-water mark of live partials
  std::size_t index_buckets = 0;  ///< occupied entity buckets (all shards)
  std::size_t wildcard_partials = 0;
  std::int64_t dropped_partials = 0;  ///< backpressure evictions/drops
  std::int64_t alerts = 0;
  /// Events this query never probed: it had no live partials and the
  /// seed-dispatch bitmap proved its edge-0 labels cannot match the event
  /// (see SeedDispatchIndex).
  std::int64_t seed_skips = 0;
};

/// Per-shard inbox/routing row of EngineStats (kEntityHash mode; empty in
/// kQueryRoundRobin, which has no inboxes).
struct EngineShardStats {
  std::size_t shard = 0;
  std::size_t inbox_depth = 0;  ///< ops queued right now
  std::size_t inbox_peak = 0;   ///< high-water mark of queued ops
  /// Probe ops routed to this shard (the per-shard share of event work —
  /// the routing-skew numerator).
  std::int64_t events_routed = 0;
  /// Partials inserted here that were produced by a probe on a different
  /// shard (cross-shard handoffs received).
  std::int64_t handoffs_in = 0;
};

/// A point-in-time snapshot of engine health; take it between events (the
/// engine is externally synchronized, see StreamEngine).
struct EngineStats {
  std::vector<EngineQueryStats> queries;  ///< ascending query_index
  /// kQueryRoundRobin: events processed per shard (every shard sees every
  /// event). kEntityHash: probe ops routed per shard (== events_routed).
  std::vector<std::int64_t> shard_events;
  /// Per-shard inbox depth/peak + handoff rows (kEntityHash only).
  std::vector<EngineShardStats> shards;
  std::int64_t out_of_order_events = 0;
  std::size_t live_partials = 0;
  std::int64_t dropped_partials = 0;
  std::int64_t alerts = 0;
  std::int64_t seed_skips = 0;  ///< total over queries (seed dispatch)
  /// Total cross-shard partial handoffs (kEntityHash only).
  std::int64_t handoffs = 0;
  /// max/mean of shard_events (1.0 = perfectly balanced; 0 if no events).
  double routing_skew = 0.0;
};

/// The online surveillance engine (Section 1: behaviour queries "applied
/// on the real-time monitoring data for surveillance and policy compliance
/// checking"), replacing the monolithic scan-everything StreamMonitor:
///
/// - Queries are compiled once (CompiledQueryPlan); per-event work touches
///   only the partials the event's entity ids can extend (PartialTable's
///   entity-keyed index).
/// - Events are buffered into batches of `batch_size` and dispatched as
///   `std::span` views into a double buffer (the batch being processed and
///   the batch being filled are distinct vectors, swapped per batch — no
///   per-shard copy, allocation-free steady state).
/// - Two sharding modes (ShardingMode): round-robin query partitioning
///   (every shard sees every event through one deterministic ParallelFor
///   chunk per shard) or entity-hash data partitioning (per-shard SPSC
///   inboxes fed by a central sequencer on the caller thread; shards drain
///   continuously). Both produce the identical canonical
///   (event, query index, interval) alert stream, drop counters, and
///   per-query stats for every shard count and batch size.
/// - Backpressure: per-query partial caps evict closest-to-death-first
///   with per-query drop accounting (StreamLimits::max_partials); an
///   EngineStats snapshot exposes live partials, index occupancy, drops,
///   per-shard event counts, and (entity-hash) inbox depths, handoffs and
///   routing skew.
///
/// The engine is externally synchronized: one caller feeds OnEvent/Flush
/// (internally it fans work out to its own workers). Alerts surface on the
/// OnEvent call that completes a batch, and on Flush for a partial batch;
/// with batch_size = 1 (the default and the StreamMonitor facade setting)
/// every OnEvent is synchronous.
///
/// Concurrency contract (machine-checked on Clang, see base/annotations.h):
/// the caller thread is the *sequencer* — all central decision state
/// (batching buffers, per-query QueryControl, dispatch bitmaps, probe
/// bookkeeping) is TGM_GUARDED_BY(sequencer_role_), claimed by each public
/// entry point for its duration. Shard-owned state carries each shard's
/// own role capability: the worker loop holds its shard's RoleGuard for
/// its lifetime, and the sequencer may claim a shard role only where it
/// provably owns the shard — inline (no worker thread) or after
/// QuiesceShards(). A worker lambda reaching into sequencer state (or
/// vice versa) no longer type-checks.
class StreamEngine {
 public:
  struct Options {
    /// Maximum allowed match span; also the partial-match expiry horizon.
    Timestamp window = 0;
    /// Per-query live-partial high-water mark (oldest-first eviction).
    std::size_t max_partials_per_query = 100000;
    /// Worker shards; <= 0 means all hardware threads. 1 runs inline with
    /// no worker threads (both modes).
    int num_shards = 1;
    /// Events per fan-out batch (>= 1). Larger batches amortize the
    /// per-batch dispatch at the cost of alert latency.
    std::size_t batch_size = 1;
    /// How work is split across shards; see ShardingMode. The alert
    /// stream is identical in both modes.
    ShardingMode sharding = ShardingMode::kQueryRoundRobin;
    /// Disable to run the legacy full-scan matching path (bench baseline).
    /// Both paths accept exactly the same matches; while no partials are
    /// dropped their alert streams are identical. Under backpressure the
    /// eviction tie-break among equal-first_ts partials follows insertion
    /// order, which differs between the paths (candidate probe order vs.
    /// wildcard scan order), so capped runs may evict different victims.
    /// The bit-identical guarantee across shard counts and batch sizes is
    /// per-path and holds with or without drops.
    bool entity_index = true;
    /// Disable to expire constrained queries' partials by the window alone
    /// instead of the tighter per-partial guard deadlines; alerts are
    /// identical either way (guards are still enforced on extension), only
    /// peak live partials differ. Bench comparison knob; no effect on
    /// unconstrained queries. See StreamLimits::guard_expiry.
    bool guard_expiry = true;
  };

  using AlertSink = std::function<void(const StreamAlert&)>;

  explicit StreamEngine(const Options& options);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers a behaviour query; returns its index in alerts. Must not be
  /// called while events are buffered (register queries up front, or Flush
  /// first).
  std::size_t AddQuery(const Pattern& query);

  /// Same, with a per-query expiry window overriding Options::window
  /// (0 = unbounded). Lets one engine host behaviour queries with
  /// different lifetimes — e.g. a Session's live watches, where every
  /// BehaviorQuery artifact carries its own mined window.
  std::size_t AddQuery(const Pattern& query, Timestamp window);

  /// Same, with the query's timed-automata guards (TemporalConstraints).
  /// The caller is responsible for `constraints.ValidateFor(query)` (the
  /// api layer does); a trivial value is exactly the unconstrained
  /// overload.
  std::size_t AddQuery(const Pattern& query, Timestamp window,
                       const TemporalConstraints& constraints);

  /// Feeds one event. Timestamps must be non-decreasing: a decreasing
  /// `ts` is clamped to the newest timestamp seen (so window expiry stays
  /// monotonic instead of silently corrupting) and counted in
  /// `out_of_order_events`. Invokes `sink` for every alert of the batch
  /// this event completes.
  void OnEvent(const StreamEvent& event, const AlertSink& sink);

  /// Processes any buffered partial batch (call at end of stream, or
  /// before reading stats that must include all fed events).
  void Flush(const AlertSink& sink);

  std::size_t query_count() const {
    RoleGuard seq(sequencer_role_);
    return query_count_;
  }
  int num_shards() const { return num_shards_; }
  ShardingMode sharding() const { return options_.sharding; }

  /// True while a partial batch is buffered (fed events not yet
  /// processed). AddQuery is only legal when this is false; callers that
  /// want a recoverable error instead of the TGM_CHECK can test this
  /// first (Session does).
  bool has_buffered_events() const {
    RoleGuard seq(sequencer_role_);
    return !batch_.empty();
  }

  /// Number of live partial matches (all queries).
  std::size_t PartialCount() const;
  std::int64_t dropped_partials() const;
  std::int64_t out_of_order_events() const {
    RoleGuard seq(sequencer_role_);
    return out_of_order_events_;
  }

  EngineStats Stats() const;

  /// Full-engine structural validator ("" = consistent, else the first
  /// violation). Quiesces the shards, then checks every shard table's
  /// PartialTable::CheckInvariants plus the engine-level cross-shard
  /// accounting: central live counts vs. the sum of shard-table live
  /// counts, the age heap's agreement with shard seq indexes, and
  /// sent-vs-executed op counters (probes, inserts, erases). Run
  /// automatically at every batch boundary when built with
  /// -DTGMINER_CHECK_INVARIANTS=ON; callable any time between events.
  std::string CheckInvariants();

 private:
  // --- entity-hash mode: central per-query control state ---------------
  /// Heap entry of the engine-held age order over one query's partials
  /// (all shards): same (expiry, first_ts, seq) key as the round-robin
  /// PartialTable heap, plus where the partial lives so expiry/eviction
  /// can address the erase.
  struct AgeEntry {
    Timestamp expiry = 0;
    Timestamp first_ts = 0;
    std::uint64_t seq = 0;
    std::uint32_t shard = 0;
    bool wildcard = false;
  };
  struct AgeEntryGreater {
    bool operator()(const AgeEntry& a, const AgeEntry& b) const {
      if (a.expiry != b.expiry) return a.expiry > b.expiry;
      if (a.first_ts != b.first_ts) return a.first_ts > b.first_ts;
      return a.seq > b.seq;
    }
  };
  /// Everything the sequencer decides with: the per-query facts that must
  /// be global for drops, dedup, and stats to be bit-identical to a
  /// single table.
  struct QueryControl {
    std::shared_ptr<const CompiledQueryPlan> plan;
    Timestamp window = 0;  ///< effective (engine window folded w/ deadline)
    std::set<Interval> emitted;
    std::priority_queue<AgeEntry, std::vector<AgeEntry>, AgeEntryGreater>
        by_age;
    std::uint64_t next_seq = 0;
    std::size_t live = 0;
    std::size_t peak = 0;
    std::size_t wildcard_live = 0;
    std::int64_t alerts = 0;
    std::int64_t dropped = 0;
    std::int64_t seed_skips = 0;
  };
  /// One entity-hash worker: shard state + its op/result queues. With
  /// num_shards == 1 the thread is never started and ops execute inline
  /// on the caller (zero queue/thread overhead — the 1-shard baseline).
  struct EntityWorker {
    explicit EntityWorker(const StreamLimits& limits) : shard(limits) {}
    EntityShard shard;
    std::unique_ptr<SpscQueue<EntityShardOp>> inbox;
    std::unique_ptr<SpscQueue<EntityShardResult>> outbox;
    std::thread thread;
    // Engine-side accounting (only the engine thread writes these).
    std::size_t inbox_peak = 0;
    std::int64_t events_routed = 0;
    std::int64_t handoffs_in = 0;
  };
  /// A probe hit plus the shard that produced it (handoff accounting).
  struct CollectedExt {
    ProbeExtension ext;
    std::uint32_t origin = 0;
  };

  void ProcessBatch(const AlertSink& sink) TGM_REQUIRES(sequencer_role_);
  void ProcessBatchRoundRobin(std::span<const StreamEvent> batch,
                              const AlertSink& sink)
      TGM_REQUIRES(sequencer_role_);
  void ProcessBatchEntityHash(std::span<const StreamEvent> batch,
                              const AlertSink& sink)
      TGM_REQUIRES(sequencer_role_);
  void EmitMerged(const AlertSink& sink) TGM_REQUIRES(sequencer_role_);

  std::size_t ShardOf(std::int64_t entity) const;
  void PushOp(std::size_t shard, EntityShardOp&& op)
      TGM_REQUIRES(sequencer_role_);
  void HandleResult(std::size_t shard, EntityShardResult& result)
      TGM_REQUIRES(sequencer_role_);
  bool DrainOutboxes() TGM_REQUIRES(sequencer_role_);
  void WaitForProbes() TGM_REQUIRES(sequencer_role_);
  /// Sends the erase for the query's closest-to-death partial (heap top).
  void EraseTop(std::size_t query, QueryControl& qc)
      TGM_REQUIRES(sequencer_role_);
  void SendProbes(std::size_t query, QueryControl& qc, std::size_t event_index,
                  const StreamEvent& event) TGM_REQUIRES(sequencer_role_);
  /// Routes, sequences, and dispatches one new partial, applying the
  /// backpressure cap first. `origin` is the shard whose probe produced
  /// it, or -1 for a seed (no handoff either way).
  void SendInsert(std::size_t query, QueryControl& qc,
                  std::uint32_t next_edge, Timestamp first_ts,
                  Timestamp last_ts, std::span<const std::int64_t> binding,
                  int origin) TGM_REQUIRES(sequencer_role_);
  /// Blocks until every op sent so far has executed (flush token per
  /// shard). Establishes that the engine may touch shard state directly;
  /// no-op when running inline.
  void QuiesceShards() TGM_REQUIRES(sequencer_role_);
  /// CheckInvariants body; split out so the ProcessBatch tail (which
  /// already holds the sequencer role) can run it without re-acquiring.
  std::string CheckInvariantsInternal() TGM_REQUIRES(sequencer_role_);

  Options options_;
  StreamLimits limits_;
  int num_shards_ = 1;

  /// The sequencer capability: stands for "I am the externally
  /// synchronized caller thread". Every public entry point claims it with
  /// a RoleGuard for its duration; the entity-hash worker lambdas never
  /// hold it, so code running on a worker cannot touch the guarded
  /// members below (it would not compile under Clang's analysis).
  ThreadRole sequencer_role_;

  std::size_t query_count_ TGM_GUARDED_BY(sequencer_role_) = 0;

  // Shared batching state (both modes).
  /// Filling side of the double buffer.
  std::vector<StreamEvent> batch_ TGM_GUARDED_BY(sequencer_role_);
  /// Processing side (span target).
  std::vector<StreamEvent> active_ TGM_GUARDED_BY(sequencer_role_);
  std::vector<ShardAlert> merged_ TGM_GUARDED_BY(sequencer_role_);
  bool any_event_ TGM_GUARDED_BY(sequencer_role_) = false;
  Timestamp last_ts_ TGM_GUARDED_BY(sequencer_role_) = 0;
  std::int64_t out_of_order_events_ TGM_GUARDED_BY(sequencer_role_) = 0;

  // kQueryRoundRobin state. The containers themselves are structurally
  // immutable after the constructor (no guard needed to index them); the
  // *elements* are confined — each StreamShard's state by its own role
  // capability, each shard_alerts_ slot by the convention that only the
  // worker running that shard's batch writes it.
  std::unique_ptr<StealScheduler> pool_;  // num_shards - 1 workers
  std::vector<StreamShard> shards_;
  std::vector<std::vector<ShardAlert>> shard_alerts_;  // per-shard outbox

  // kEntityHash state. `workers_` is likewise fixed after construction;
  // each EntityShard is confined by its role, the queues are internally
  // synchronized, and the engine-side counters inside EntityWorker are
  // written only by the sequencer.
  std::vector<std::unique_ptr<EntityWorker>> workers_;
  std::vector<QueryControl> controls_ TGM_GUARDED_BY(sequencer_role_);
  SeedDispatchIndex seed_dispatch_ TGM_GUARDED_BY(sequencer_role_);
  bool dispatch_dirty_ TGM_GUARDED_BY(sequencer_role_) = false;
  Notifier results_ready_;  // internally synchronized
  std::size_t outstanding_probes_ TGM_GUARDED_BY(sequencer_role_) = 0;
  std::size_t flush_acks_ TGM_GUARDED_BY(sequencer_role_) = 0;
  std::uint64_t flush_token_ TGM_GUARDED_BY(sequencer_role_) = 0;
  /// Op counters for the sent-vs-executed accounting identity (the shard
  /// side is EntityShard::inserts_executed/erases_executed; probes pair
  /// with the per-worker events_routed).
  std::int64_t inserts_sent_ TGM_GUARDED_BY(sequencer_role_) = 0;
  std::int64_t erases_sent_ TGM_GUARDED_BY(sequencer_role_) = 0;
  // Per-event scratch (capacity persists across events).
  std::vector<std::size_t> advancing_ TGM_GUARDED_BY(sequencer_role_);
  std::vector<std::vector<CollectedExt>> exts_by_query_
      TGM_GUARDED_BY(sequencer_role_);
  std::vector<Interval> completions_scratch_ TGM_GUARDED_BY(sequencer_role_);
  std::vector<EntityShardResult> inline_results_
      TGM_GUARDED_BY(sequencer_role_);
  BindingBuf seed_binding_ TGM_GUARDED_BY(sequencer_role_);
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_ENGINE_H_
