// TemporalConstraints across the layers: validation and normalization of
// the guard structs, compilation into CompiledQueryPlan (seed horizons,
// label-alternative accept sets, the SeedMatches/SeedDispatchKeys single
// source of truth), guard enforcement in the stream runtime and the
// offline searcher (including offline/online parity on constrained
// queries), the guard-expiry peak-partials reduction, and the
// QueryConstraintsBuilder front door. The degenerate-case suites pin that
// a trivial annotation is bit-identical to the unconstrained path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "api/builders.h"
#include "query/searcher.h"
#include "query/stream/engine.h"
#include "temporal/constraints.h"
#include "test_util.h"

namespace tgm {
namespace {

// A -(el 5)-> B -(el 6)-> C chain (node labels 0, 1, 2).
Pattern ChainPattern() {
  return Pattern::SingleEdge(0, 1, 5).GrowForward(1, 2, 6);
}

StreamEvent Ev(std::int64_t src, std::int64_t dst, LabelId src_label,
               LabelId dst_label, LabelId elabel, Timestamp ts) {
  return StreamEvent{src, dst, src_label, dst_label, elabel, ts};
}

struct EngineRun {
  std::vector<StreamAlert> alerts;
  std::size_t peak_partials = 0;
  std::size_t live_partials = 0;
  std::int64_t dropped = 0;
};

EngineRun RunEngine(const Pattern& query, const TemporalConstraints& c,
                    const std::vector<StreamEvent>& events, Timestamp window,
                    bool guard_expiry = true, int num_shards = 1,
                    std::size_t batch_size = 1) {
  StreamEngine::Options options;
  options.window = window;
  options.num_shards = num_shards;
  options.batch_size = batch_size;
  options.guard_expiry = guard_expiry;
  StreamEngine engine(options);
  engine.AddQuery(query, window, c);
  EngineRun run;
  auto sink = [&run](const StreamAlert& a) { run.alerts.push_back(a); };
  for (const StreamEvent& e : events) engine.OnEvent(e, sink);
  engine.Flush(sink);
  run.live_partials = engine.PartialCount();
  run.dropped = engine.dropped_partials();
  for (const EngineQueryStats& q : engine.Stats().queries) {
    run.peak_partials = std::max(run.peak_partials, q.peak_partials);
  }
  return run;
}

std::vector<Interval> AlertIntervals(const EngineRun& run) {
  std::vector<Interval> out;
  for (const StreamAlert& a : run.alerts) out.push_back(a.interval);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- struct-level validation ----------------------------------------------

TEST(TemporalConstraintsTest, TrivialityAndNormalize) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  EXPECT_TRUE(c.IsTrivial());
  EXPECT_TRUE(TemporalConstraints().IsTrivial());

  c.mutable_guard(1).elabel_alts = {9, 7, 9, 7};
  EXPECT_FALSE(c.IsTrivial());
  c.Normalize();
  EXPECT_EQ(c.guard(1).elabel_alts, (std::vector<LabelId>{7, 9}));

  TemporalConstraints d(p.edge_count());
  d.set_deadline(10);
  EXPECT_FALSE(d.IsTrivial());
}

TEST(TemporalConstraintsTest, GuardOutOfRangeIsTrivial) {
  TemporalConstraints c(1);
  c.mutable_guard(0).elabel_alts = {3};
  EXPECT_EQ(c.guard(5).min_gap, 0);
  EXPECT_EQ(c.guard(5).max_gap, kNoGapLimit);
  EXPECT_TRUE(c.guard(5).elabel_alts.empty());
}

TEST(TemporalConstraintsTest, ValidateForRejectsInconsistentGuards) {
  Pattern p = ChainPattern();

  TemporalConstraints too_many(p.edge_count() + 1);
  EXPECT_FALSE(too_many.ValidateFor(p).ok());

  TemporalConstraints negative_min(p.edge_count());
  negative_min.mutable_guard(1).min_gap = -3;
  EXPECT_FALSE(negative_min.ValidateFor(p).ok());

  TemporalConstraints crossed(p.edge_count());
  crossed.mutable_guard(1).min_gap = 10;
  crossed.mutable_guard(1).max_gap = 5;
  EXPECT_FALSE(crossed.ValidateFor(p).ok());

  TemporalConstraints crossed_seed(p.edge_count());
  crossed_seed.mutable_guard(1).min_since_seed = 10;
  crossed_seed.mutable_guard(1).max_since_seed = 5;
  EXPECT_FALSE(crossed_seed.ValidateFor(p).ok());

  TemporalConstraints seed_gap(p.edge_count());
  seed_gap.mutable_guard(0).max_gap = 5;
  EXPECT_FALSE(seed_gap.ValidateFor(p).ok());

  TemporalConstraints bad_alt(p.edge_count());
  bad_alt.mutable_guard(1).elabel_alts = {-2};
  EXPECT_FALSE(bad_alt.ValidateFor(p).ok());

  TemporalConstraints bad_deadline(p.edge_count());
  bad_deadline.set_deadline(-1);
  EXPECT_FALSE(bad_deadline.ValidateFor(p).ok());

  TemporalConstraints below_sentinel(p.edge_count());
  below_sentinel.mutable_guard(1).max_gap = -7;
  EXPECT_FALSE(below_sentinel.ValidateFor(p).ok());

  // Zero is a real (satisfiable) upper bound, not the sentinel.
  TemporalConstraints zero_gap(p.edge_count());
  zero_gap.mutable_guard(1).max_gap = 0;
  EXPECT_TRUE(zero_gap.ValidateFor(p).ok());

  // Seed-edge label alternatives are fine; only time bounds are rejected.
  TemporalConstraints seed_alt(p.edge_count());
  seed_alt.mutable_guard(0).elabel_alts = {9};
  EXPECT_TRUE(seed_alt.ValidateFor(p).ok());
}

TEST(TemporalConstraintsTest, EffectiveWindowFoldsDeadline) {
  TemporalConstraints c;
  EXPECT_EQ(c.EffectiveWindow(100), 100);
  EXPECT_EQ(c.EffectiveWindow(0), 0);
  c.set_deadline(50);
  EXPECT_EQ(c.EffectiveWindow(100), 50);
  EXPECT_EQ(c.EffectiveWindow(30), 30);
  EXPECT_EQ(c.EffectiveWindow(0), 50);
}

// --- compilation ------------------------------------------------------------

TEST(CompiledPlanConstraintsTest, GuardsAndSeedHorizonBakedIn) {
  Pattern p = ChainPattern().GrowForward(2, 3, 7);  // 3 edges
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).min_gap = 2;
  c.mutable_guard(1).max_gap = 20;
  c.mutable_guard(2).max_since_seed = 10;
  c.set_deadline(50);

  CompiledQueryPlan plan(p, c);
  EXPECT_TRUE(plan.constrained());
  EXPECT_EQ(plan.transition(1).min_gap, 2);
  EXPECT_EQ(plan.transition(1).max_gap, 20);
  EXPECT_EQ(plan.transition(2).max_since_seed, 10);
  // Suffix-min over {deadline 50, max_since_seed(2) 10}: every prefix
  // state is dead once now - first_ts exceeds 10.
  EXPECT_EQ(plan.transition(0).seed_horizon, 10);
  EXPECT_EQ(plan.transition(1).seed_horizon, 10);
  EXPECT_EQ(plan.transition(2).seed_horizon, 10);
  EXPECT_EQ(plan.EffectiveWindow(100), 50);
  EXPECT_EQ(plan.EffectiveWindow(0), 50);

  CompiledQueryPlan plain(p);
  EXPECT_FALSE(plain.constrained());
  EXPECT_EQ(plain.transition(0).seed_horizon, kNoGapLimit);
  EXPECT_EQ(plain.EffectiveWindow(100), 100);
}

TEST(CompiledPlanConstraintsTest, AcceptsLabelCoversAlternatives) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(0).elabel_alts = {9, 5};  // 5 == the pattern's own label
  c.Normalize();
  CompiledQueryPlan plan(p, c);
  // The pattern's own label is filtered out of the alternative list.
  EXPECT_EQ(plan.transition(0).elabel_alts, (std::vector<LabelId>{9}));
  EXPECT_TRUE(plan.transition(0).AcceptsLabel(5));
  EXPECT_TRUE(plan.transition(0).AcceptsLabel(9));
  EXPECT_FALSE(plan.transition(0).AcceptsLabel(6));
}

// Satellite regression: the seed-dispatch keys and the SeedMatches
// predicate must agree — every event SeedMatches accepts carries a
// dispatch key, for plain and alternative-labeled plans alike (a dispatch
// bitmap that misses a key would silently drop seeds on idle queries).
TEST(CompiledPlanConstraintsTest, SeedDispatchKeysAgreeWithSeedMatches) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(0).elabel_alts = {9};
  c.Normalize();

  for (const CompiledQueryPlan& plan :
       {CompiledQueryPlan(p), CompiledQueryPlan(p, c)}) {
    std::set<std::pair<LabelId, LabelId>> keys;
    for (const auto& key : plan.SeedDispatchKeys()) keys.insert(key);
    for (LabelId elabel = 0; elabel <= 10; ++elabel) {
      for (LabelId src_label = 0; src_label <= 3; ++src_label) {
        for (LabelId dst_label = 0; dst_label <= 3; ++dst_label) {
          StreamEvent event = Ev(1, 2, src_label, dst_label, elabel, 10);
          if (plan.SeedMatches(event)) {
            EXPECT_TRUE(keys.count({elabel, src_label}))
                << "SeedMatches accepts (elabel=" << elabel
                << ", src_label=" << src_label
                << ") but SeedDispatchKeys does not list it";
          }
        }
      }
    }
    // And the keys are tight: each key admits at least one seed event.
    for (const auto& [elabel, src_label] : keys) {
      StreamEvent event = Ev(1, 2, src_label, plan.transition(0).dst_label,
                             elabel, 10);
      EXPECT_TRUE(plan.SeedMatches(event));
    }
  }
}

// --- stream runtime enforcement ---------------------------------------------

TEST(StreamConstraintsTest, MaxGapRejectsSlowExtension) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).max_gap = 10;

  // Fast pair completes; slow pair (gap 20, still inside the window) does
  // not.
  std::vector<StreamEvent> events = {
      Ev(1, 2, 0, 1, 5, 100), Ev(2, 3, 1, 2, 6, 105),   // gap 5: match
      Ev(4, 5, 0, 1, 5, 200), Ev(5, 6, 1, 2, 6, 220),   // gap 20: blocked
  };
  EngineRun constrained = RunEngine(p, c, events, /*window=*/1000);
  ASSERT_EQ(constrained.alerts.size(), 1u);
  EXPECT_EQ(constrained.alerts[0].interval, (Interval{100, 105}));

  EngineRun plain =
      RunEngine(p, TemporalConstraints(), events, /*window=*/1000);
  EXPECT_EQ(plain.alerts.size(), 2u);
}

TEST(StreamConstraintsTest, MinGapRejectsFastExtension) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).min_gap = 10;

  std::vector<StreamEvent> events = {
      Ev(1, 2, 0, 1, 5, 100), Ev(2, 3, 1, 2, 6, 105),   // gap 5: blocked
      Ev(4, 5, 0, 1, 5, 200), Ev(5, 6, 1, 2, 6, 215),   // gap 15: match
  };
  EngineRun run = RunEngine(p, c, events, /*window=*/1000);
  ASSERT_EQ(run.alerts.size(), 1u);
  EXPECT_EQ(run.alerts[0].interval, (Interval{200, 215}));
}

TEST(StreamConstraintsTest, MaxSinceSeedBoundsLaterEdges) {
  Pattern p = ChainPattern().GrowForward(2, 3, 7);  // 3 edges
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(2).max_since_seed = 10;

  // Edges at +4, +8 from the seed: edge 2 lands at seed+8 <= 10: match.
  std::vector<StreamEvent> ok = {
      Ev(1, 2, 0, 1, 5, 100),
      Ev(2, 3, 1, 2, 6, 104),
      Ev(3, 4, 2, 3, 7, 108),
  };
  EXPECT_EQ(RunEngine(p, c, ok, /*window=*/1000).alerts.size(), 1u);

  // Edge 2 at seed+12 > 10: blocked even though each gap is small.
  std::vector<StreamEvent> late = {
      Ev(1, 2, 0, 1, 5, 100),
      Ev(2, 3, 1, 2, 6, 106),
      Ev(3, 4, 2, 3, 7, 112),
  };
  EXPECT_EQ(RunEngine(p, c, late, /*window=*/1000).alerts.size(), 0u);
}

TEST(StreamConstraintsTest, DeadlineTightensWindow) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.set_deadline(10);

  std::vector<StreamEvent> events = {
      Ev(1, 2, 0, 1, 5, 100), Ev(2, 3, 1, 2, 6, 120),  // span 20
  };
  EXPECT_EQ(RunEngine(p, c, events, /*window=*/1000).alerts.size(), 0u);
  EXPECT_EQ(RunEngine(p, TemporalConstraints(), events, /*window=*/1000)
                .alerts.size(),
            1u);
  // The deadline also binds when the engine window is unbounded.
  EXPECT_EQ(RunEngine(p, c, events, /*window=*/0).alerts.size(), 0u);
}

TEST(StreamConstraintsTest, LabelAlternativesSeedAndExtend) {
  Pattern p = ChainPattern();  // edge labels 5 then 6
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(0).elabel_alts = {9};   // seed accepts 5 or 9
  c.mutable_guard(1).elabel_alts = {8};   // extension accepts 6 or 8
  c.Normalize();

  std::vector<StreamEvent> events = {
      Ev(1, 2, 0, 1, 9, 100),  Ev(2, 3, 1, 2, 6, 101),   // alt seed
      Ev(4, 5, 0, 1, 5, 200),  Ev(5, 6, 1, 2, 8, 201),   // alt extension
      Ev(7, 8, 0, 1, 9, 300),  Ev(8, 9, 1, 2, 8, 301),   // both alt
      Ev(10, 11, 0, 1, 8, 400), Ev(11, 12, 1, 2, 5, 401),  // wrong slots
  };
  EngineRun run = RunEngine(p, c, events, /*window=*/1000);
  EXPECT_EQ(AlertIntervals(run),
            (std::vector<Interval>{{100, 101}, {200, 201}, {300, 301}}));

  // Unconstrained, none of the alternative-labeled pairs match.
  EXPECT_EQ(
      RunEngine(p, TemporalConstraints(), events, /*window=*/1000).alerts
          .size(),
      0u);
}

TEST(StreamConstraintsTest, GuardExpiryShrinksPeakPartialsAlertsIdentical) {
  Pattern p = ChainPattern();
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).max_gap = 2;

  // A long parade of seeds that never extend (each waits on edge 1 with a
  // 2-tick max gap), plus a few real matches scattered in.
  std::vector<StreamEvent> events;
  std::int64_t entity = 100;
  for (Timestamp ts = 1; ts <= 200; ++ts) {
    events.push_back(Ev(entity, entity + 1, 0, 1, 5, ts));
    entity += 2;
    if (ts % 50 == 0) {
      events.push_back(Ev(entity, entity + 1, 0, 1, 5, ts));
      events.push_back(Ev(entity + 1, entity + 2, 1, 2, 6, ts + 1));
      entity += 3;
    }
  }

  EngineRun guard_on =
      RunEngine(p, c, events, /*window=*/1000, /*guard_expiry=*/true);
  EngineRun guard_off =
      RunEngine(p, c, events, /*window=*/1000, /*guard_expiry=*/false);
  // Same alert stream (guards are checked on extension either way)...
  EXPECT_EQ(guard_on.alerts, guard_off.alerts);
  EXPECT_EQ(guard_on.alerts.size(), 4u);
  EXPECT_EQ(guard_on.dropped, guard_off.dropped);
  // ...but the guard-driven expiry keeps only the partials that can still
  // complete (max_gap 2), while window-only expiry hoards all of them.
  EXPECT_LT(guard_on.peak_partials, guard_off.peak_partials / 10);
  EXPECT_LT(guard_on.live_partials, guard_off.live_partials);
}

// --- degenerate-case parity (stream) ----------------------------------------

TEST(StreamConstraintsTest, TrivialConstraintsBitIdenticalToUnconstrained) {
  std::mt19937_64 rng(20260807);
  Pattern p = ChainPattern();
  std::vector<StreamEvent> events;
  std::uniform_int_distribution<std::int64_t> ent(1, 30);
  std::uniform_int_distribution<int> lbl(0, 2);
  std::uniform_int_distribution<int> el(5, 6);
  Timestamp ts = 1;
  for (int i = 0; i < 400; ++i) {
    std::int64_t s = ent(rng);
    std::int64_t d = ent(rng);
    if (s == d) continue;
    events.push_back(Ev(s, d, lbl(rng), lbl(rng), el(rng), ts));
    ts += static_cast<Timestamp>(rng() % 3);
  }

  // Explicit trivial guards and infinite gaps are the same degenerate
  // case: identical alerts, stats, and live/peak partials — including
  // under backpressure (window 0 + tiny cap exercises EvictOldest order).
  TemporalConstraints trivial(p.edge_count());
  TemporalConstraints infinite(p.edge_count());
  infinite.mutable_guard(1).max_gap = kNoGapLimit;
  infinite.mutable_guard(1).min_gap = 0;

  for (Timestamp window : {Timestamp{0}, Timestamp{20}}) {
    SCOPED_TRACE(window);
    EngineRun plain =
        RunEngine(p, TemporalConstraints(), events, window);
    for (const TemporalConstraints& c : {trivial, infinite}) {
      EngineRun run = RunEngine(p, c, events, window);
      EXPECT_EQ(plain.alerts, run.alerts);
      EXPECT_EQ(plain.peak_partials, run.peak_partials);
      EXPECT_EQ(plain.live_partials, run.live_partials);
      EXPECT_EQ(plain.dropped, run.dropped);
    }
  }
}

// --- offline searcher enforcement -------------------------------------------

TEST(SearcherConstraintsTest, GuardsEnforcedOffline) {
  // Data: two A->B->C chains, one tight (gap 5) one slow (gap 20).
  TemporalGraph g;
  for (LabelId l : {0, 1, 2, 0, 1, 2}) g.AddNode(l);
  g.AddEdge(0, 1, 100, 5);
  g.AddEdge(1, 2, 105, 6);
  g.AddEdge(3, 4, 200, 5);
  g.AddEdge(4, 5, 220, 6);
  g.Finalize(TiePolicy::kRequireStrict);

  Pattern p = ChainPattern();
  TemporalQuerySearcher searcher({.window = 1000});

  EXPECT_EQ(searcher.Search(p, g).size(), 2u);

  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).max_gap = 10;
  std::vector<Interval> hits = searcher.Search(p, c, g);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{100, 105}));

  TemporalConstraints min_c(p.edge_count());
  min_c.mutable_guard(1).min_gap = 10;
  hits = searcher.Search(p, min_c, g);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{200, 220}));

  TemporalConstraints dl(p.edge_count());
  dl.set_deadline(10);
  hits = searcher.Search(p, dl, g);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{100, 105}));
}

TEST(SearcherConstraintsTest, LabelAlternativesWidenSignatureEnumeration) {
  // The anchor edge's own label never occurs in the data; only the
  // alternative does. The signature-index enumeration must still find it.
  TemporalGraph g;
  for (LabelId l : {0, 1, 2}) g.AddNode(l);
  g.AddEdge(0, 1, 100, 9);  // label 9, not the pattern's 5
  g.AddEdge(1, 2, 101, 6);
  g.Finalize(TiePolicy::kRequireStrict);

  Pattern p = ChainPattern();
  TemporalQuerySearcher searcher({.window = 1000});
  EXPECT_TRUE(searcher.Search(p, g).empty());

  TemporalConstraints c(p.edge_count());
  c.mutable_guard(0).elabel_alts = {9};
  std::vector<Interval> hits = searcher.Search(p, c, g);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{100, 101}));
}

TEST(SearcherConstraintsTest, TrivialConstraintsMatchUnconstrainedSearch) {
  std::mt19937_64 rng(7);
  TemporalGraph g = testing::RandomGraph(rng, 40, 400, 3);
  Pattern p = ChainPattern();
  // ChainPattern's edge labels (5, 6) never occur in RandomGraph; use an
  // unlabeled chain instead.
  Pattern unlabeled =
      Pattern::SingleEdge(0, 1).GrowForward(1, 2).GrowForward(2, 0);
  TemporalQuerySearcher searcher({.window = 50});
  for (const Pattern& q : {p, unlabeled}) {
    EXPECT_EQ(searcher.Search(q, g),
              searcher.Search(q, TemporalConstraints(q.edge_count()), g));
  }
}

// Offline Search and an online engine replay must agree on constrained
// queries exactly as they do on plain ones.
TEST(SearcherConstraintsTest, ConstrainedOfflineOnlineParity) {
  std::mt19937_64 rng(42);
  Pattern p = Pattern::SingleEdge(0, 1).GrowForward(1, 2);
  TemporalConstraints c(p.edge_count());
  c.mutable_guard(1).min_gap = 1;
  c.mutable_guard(1).max_gap = 6;
  c.set_deadline(40);

  std::size_t total_matches = 0;
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE(round);
    TemporalGraph g = testing::RandomGraph(rng, 25, 300, 3);
    TemporalQuerySearcher searcher({.window = 50});
    std::vector<Interval> offline = searcher.Search(p, c, g);

    StreamEngine::Options options;
    options.window = 50;
    StreamEngine engine(options);
    engine.AddQuery(p, 50, c);
    std::vector<Interval> online;
    auto sink = [&online](const StreamAlert& a) {
      online.push_back(a.interval);
    };
    for (const TemporalEdge& e : g.edges()) {
      engine.OnEvent(StreamEvent::FromEdge(g, e), sink);
    }
    engine.Flush(sink);
    std::sort(online.begin(), online.end());
    online.erase(std::unique(online.begin(), online.end()), online.end());

    EXPECT_EQ(offline, online);
    total_matches += offline.size();
  }
  EXPECT_GT(total_matches, 0u) << "fixture too sparse to be meaningful";
}

// --- builder -----------------------------------------------------------------

TEST(QueryConstraintsBuilderTest, BuildsValidatedConstraints) {
  Pattern p = ChainPattern().GrowForward(2, 3, 7);
  auto built = api::QueryConstraintsBuilder(p.edge_count())
                   .MaxGap(1, 30)
                   .MinGap(2, 5)
                   .MaxSinceSeed(2, 120)
                   .AlternativeEdgeLabel(1, 8)
                   .AlternativeEdgeLabel(1, 8)  // deduped by Normalize
                   .Deadline(600)
                   .Build(p);
  ASSERT_TRUE(built.ok()) << built.status().message();
  const TemporalConstraints& c = *built;
  EXPECT_EQ(c.guard(1).max_gap, 30);
  EXPECT_EQ(c.guard(2).min_gap, 5);
  EXPECT_EQ(c.guard(2).max_since_seed, 120);
  EXPECT_EQ(c.guard(1).elabel_alts, (std::vector<LabelId>{8}));
  EXPECT_EQ(c.deadline(), 600);
  EXPECT_FALSE(c.IsTrivial());
}

TEST(QueryConstraintsBuilderTest, RejectsOutOfRangeAndInvalid) {
  Pattern p = ChainPattern();
  auto out_of_range =
      api::QueryConstraintsBuilder(p.edge_count()).MaxGap(7, 10).Build(p);
  EXPECT_FALSE(out_of_range.ok());

  auto seed_gap =
      api::QueryConstraintsBuilder(p.edge_count()).MaxGap(0, 10).Build(p);
  EXPECT_FALSE(seed_gap.ok());

  auto crossed = api::QueryConstraintsBuilder(p.edge_count())
                     .MinGap(1, 20)
                     .MaxGap(1, 10)
                     .Build(p);
  EXPECT_FALSE(crossed.ok());
}

}  // namespace
}  // namespace tgm
