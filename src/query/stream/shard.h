#ifndef TGM_QUERY_STREAM_SHARD_H_
#define TGM_QUERY_STREAM_SHARD_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "query/stream/query_runtime.h"

namespace tgm {

/// An alert produced inside a shard, tagged with its batch position so the
/// engine can merge shard outputs into the canonical order. The member
/// order makes the defaulted comparison exactly the merge key
/// (event, query, interval).
struct ShardAlert {
  std::uint32_t event_index = 0;  ///< position of the event in its batch
  std::size_t query_index = 0;    ///< engine-global query index
  Interval interval;

  friend auto operator<=>(const ShardAlert&, const ShardAlert&) = default;
};

/// Label -> query seed-dispatch bitmaps: a query with no live partials can
/// only react to an event that seeds it, and seeding requires the event's
/// (edge label, source label) to be one of the plan's seed-dispatch keys
/// (the edge-0 labels, one pair per disjunctive label alternative — see
/// CompiledQueryPlan::SeedDispatchKeys, the shared source of truth with
/// SeedMatches). Per event the dispatcher looks up the two bitmap rows
/// once and tests the intersection bit per idle query — no expiry scan, no
/// index probe, no seed test. The decision is a pure per-query function of
/// the event, so skipping changes no alert or stat other than the
/// `seed_skips` counter itself.
///
/// Used over *local* query slots by each round-robin StreamShard, and over
/// *global* query indexes by the entity-hash engine's central sequencer —
/// one implementation so the two sharding modes cannot drift.
class SeedDispatchIndex {
 public:
  using Bitmap = std::vector<std::uint64_t>;
  /// The two bitmap rows of one event (null = no query seeds on that
  /// label, i.e. every idle query is skipped).
  struct Rows {
    const Bitmap* by_elabel = nullptr;
    const Bitmap* by_src_label = nullptr;
  };

  /// Clears and re-sizes for `query_count` queries; follow with Add per
  /// query.
  void Reset(std::size_t query_count) {
    words_ = (query_count + 63) / 64;
    by_elabel_.clear();
    by_src_label_.clear();
  }

  void Add(std::size_t query, const CompiledQueryPlan& plan) {
    auto set_bit = [&](std::unordered_map<LabelId, Bitmap>& map,
                       LabelId label) {
      Bitmap& bits = map[label];
      bits.resize(words_, 0);
      bits[query >> 6] |= std::uint64_t{1} << (query & 63);
    };
    // Derived from the plan's own dispatch keys — the same accept set as
    // SeedMatches — so label alternatives can never drift from the
    // predicate the dispatch is a necessary condition of.
    for (const auto& [elabel, src_label] : plan.SeedDispatchKeys()) {
      set_bit(by_elabel_, elabel);
      set_bit(by_src_label_, src_label);
    }
  }

  Rows Lookup(const StreamEvent& event) const {
    return Rows{RowFor(by_elabel_, event.elabel),
                RowFor(by_src_label_, event.src_label)};
  }

  /// Whether `query` could seed on the event the rows were looked up for.
  static bool Test(const Rows& rows, std::size_t query) {
    if (rows.by_elabel == nullptr || rows.by_src_label == nullptr) {
      return false;
    }
    const std::uint64_t bit = std::uint64_t{1} << (query & 63);
    return ((*rows.by_elabel)[query >> 6] & (*rows.by_src_label)[query >> 6] &
            bit) != 0;
  }

 private:
  static const Bitmap* RowFor(const std::unordered_map<LabelId, Bitmap>& map,
                              LabelId label) {
    auto it = map.find(label);
    return it == map.end() ? nullptr : &it->second;
  }

  std::unordered_map<LabelId, Bitmap> by_elabel_;
  std::unordered_map<LabelId, Bitmap> by_src_label_;
  std::size_t words_ = 0;
};

/// One worker shard of the round-robin stream engine: a disjoint subset of
/// the registered queries plus all of their live state. Every shard sees
/// the full event batch (events are broadcast; queries are partitioned),
/// so a query's state evolution is identical no matter how many shards the
/// engine runs — the root of the engine's shard-count determinism.
///
/// Idle queries are skipped per event via a SeedDispatchIndex over the
/// shard's local query slots; skips are counted per query
/// (`EngineQueryStats::seed_skips`). Deliberate trade: a skipped query
/// also skips its emitted-interval dedup pruning, so a query that goes
/// permanently idle retains its final window's worth of dedup entries —
/// a bounded, non-growing set; pruning it would require running Advance,
/// which is the cost the dispatch exists to avoid.
///
/// A shard is single-threaded by construction: the engine gives each
/// batch's ProcessBatch call to exactly one worker, and no state is shared
/// between shards. That confinement is a machine-checked contract: every
/// piece of shard state is TGM_GUARDED_BY(role()) and every accessor
/// requires the role, so any caller — the ParallelFor chunk that owns a
/// batch, or the engine reading stats between batches — must claim
/// ownership with a visible RoleGuard (base/mutex.h) for the code to
/// compile under Clang's thread-safety analysis.
class StreamShard {
 public:
  explicit StreamShard(const StreamLimits& limits) : limits_(limits) {}

  /// The shard's confinement capability; hold it (RoleGuard) to touch any
  /// shard state. Legitimate claimants: the worker running this shard's
  /// ProcessBatch, and the engine thread while no batch is in flight.
  const ThreadRole& role() const TGM_RETURN_CAPABILITY(role_) {
    return role_;
  }

  /// Registers a query under its engine-global index. Indexes must arrive
  /// in increasing order (the engine assigns round-robin). `window`
  /// overrides the shard-wide StreamLimits::window for this query;
  /// `constraints` are the query's timed-automata guards (a trivial value
  /// is the plain unconstrained query).
  void AddQuery(std::size_t global_index, const Pattern& query,
                Timestamp window, const TemporalConstraints& constraints)
      TGM_REQUIRES(role_) {
    StreamLimits limits = limits_;
    limits.window = window;
    queries_.emplace_back(global_index, query, constraints, limits);
    dispatch_dirty_ = true;
  }
  void AddQuery(std::size_t global_index, const Pattern& query,
                Timestamp window) TGM_REQUIRES(role_) {
    AddQuery(global_index, query, window, TemporalConstraints());
  }
  void AddQuery(std::size_t global_index, const Pattern& query)
      TGM_REQUIRES(role_) {
    AddQuery(global_index, query, limits_.window);
  }

  /// Feeds every event of `batch` (in order) to every query of this
  /// shard. `out` is replaced with the alerts, already sorted by
  /// (event_index, query_index, interval) because queries are advanced in
  /// ascending global order and each advance reports sorted intervals.
  void ProcessBatch(std::span<const StreamEvent> batch,
                    std::vector<ShardAlert>* out) TGM_REQUIRES(role_);

  const std::vector<QueryRuntime>& queries() const TGM_REQUIRES(role_) {
    return queries_;
  }
  std::int64_t events_processed() const TGM_REQUIRES(role_) {
    return events_processed_;
  }

  std::size_t PartialCount() const TGM_REQUIRES(role_) {
    std::size_t total = 0;
    for (const QueryRuntime& q : queries_) total += q.table().live();
    return total;
  }
  std::int64_t dropped_partials() const TGM_REQUIRES(role_) {
    std::int64_t total = 0;
    for (const QueryRuntime& q : queries_) total += q.dropped_partials();
    return total;
  }

  /// Structural validator: every query table's CheckInvariants, first
  /// violation reported with its query index ("" = all consistent).
  std::string CheckInvariants() const TGM_REQUIRES(role_) {
    for (const QueryRuntime& q : queries_) {
      if (std::string err = q.table().CheckInvariants(); !err.empty()) {
        return "query " + std::to_string(q.global_index()) + ": " + err;
      }
    }
    return std::string();
  }

 private:
  StreamLimits limits_;
  ThreadRole role_;
  std::vector<QueryRuntime> queries_ TGM_GUARDED_BY(role_);
  std::int64_t events_processed_ TGM_GUARDED_BY(role_) = 0;
  std::vector<Interval> scratch_ TGM_GUARDED_BY(role_);
  /// Seed-dispatch bitmaps over local query slots.
  SeedDispatchIndex seed_dispatch_ TGM_GUARDED_BY(role_);
  bool dispatch_dirty_ TGM_GUARDED_BY(role_) = false;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_SHARD_H_
