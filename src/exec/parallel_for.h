#ifndef TGM_EXEC_PARALLEL_FOR_H_
#define TGM_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

#include "exec/work_stealing.h"

namespace tgm {

/// Deterministic parallel-for: runs `body(i)` for every i in [0, n).
///
/// The index space is split into contiguous chunks whose boundaries are a
/// pure function of (n, chunk count) — never of timing — so iterations see
/// a schedule-independent index assignment. Results must be written to
/// per-index (or per-chunk) slots; callers that then combine slots in
/// index order get output bit-identical to the serial loop, which is how
/// the miner keeps `num_threads > 1` results equal to serial mining.
///
/// Chunks are stealable tasks on the scheduler, oversubscribed several per
/// thread, so uneven per-index costs rebalance instead of the call
/// tail-waiting on its slowest fixed chunk. Which thread runs a chunk
/// varies run to run; which *indices* form a chunk does not.
///
/// Chunk 0 runs on the calling thread; the call blocks until every chunk
/// has finished. With a null scheduler, zero workers, or n < 2 the loop
/// runs inline. If bodies throw, the exception from the lowest-indexed
/// chunk is rethrown after all chunks complete (again
/// schedule-independent). Safe to call from inside a scheduler task:
/// the join helps (steals) instead of sleeping.
template <typename Body>
void ParallelFor(StealScheduler* pool, std::size_t n, const Body& body) {
  const std::size_t workers =
      pool == nullptr ? 0 : static_cast<std::size_t>(pool->num_workers());
  if (workers == 0 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Oversubscribe so early finishers steal remaining chunks; the count is a
  // pure function of (n, workers), keeping chunk boundaries deterministic.
  // 2x is deliberately mild: each extra chunk costs an enqueue/steal/join
  // round-trip, which on small regions rivals the chunk's own work.
  constexpr std::size_t kChunksPerThread = 2;
  const std::size_t max_chunks = (workers + 1) * kChunksPerThread;
  const std::size_t chunks = n < max_chunks ? n : max_chunks;
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  // Chunk c covers [c*base + min(c, rem), ...) — the first `rem` chunks get
  // one extra iteration. Depends only on (n, chunks).
  auto chunk_begin = [base, rem](std::size_t c) {
    return c * base + (c < rem ? c : rem);
  };

  // Chunk c is the only writer of errors[c]; the group join orders every
  // write before the final read. Keeping per-chunk slots (instead of the
  // group's own first-recorded error) makes the rethrown exception the
  // lowest-indexed one regardless of steal schedule.
  std::vector<std::exception_ptr> errors(chunks);
  auto run_chunk = [&body, &errors, chunk_begin](std::size_t c,
                                                 std::size_t end) {
    try {
      for (std::size_t i = chunk_begin(c); i < end; ++i) body(i);
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };

  TaskGroup group(pool);
  for (std::size_t c = 1; c < chunks; ++c) {
    group.Run([&run_chunk, &chunk_begin, c] { run_chunk(c, chunk_begin(c + 1)); });
  }
  run_chunk(0, chunk_begin(1));
  group.Wait();
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(std::move(e));
  }
}

}  // namespace tgm

#endif  // TGM_EXEC_PARALLEL_FOR_H_
