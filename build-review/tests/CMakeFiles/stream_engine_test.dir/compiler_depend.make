# Empty compiler generated dependencies file for stream_engine_test.
# This may be replaced when dependencies are built.
