#ifndef TGM_API_BUILDERS_H_
#define TGM_API_BUILDERS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "api/status.h"
#include "mining/miner_config.h"

/// \file builders.h
/// Fluent, validating builders for the library's configuration structs.
///
/// The raw structs (`MinerConfig`, `SessionOptions`) stay plain
/// aggregates — cheap to copy, trivially defaultable — while the builders
/// give callers a chained, discoverable construction path whose `Build()`
/// validates ranges and returns `StatusOr` instead of letting a bad knob
/// (zero max_edges, negative thread count) surface later as a TGM_CHECK
/// crash deep inside the miner.

namespace tgm::api {

/// Chained construction of a MinerConfig:
///
///   TGM_ASSIGN_OR_RETURN(MinerConfig config,
///                        MinerConfigBuilder("TGMiner")
///                            .MaxEdges(6)
///                            .TopK(32)
///                            .MinPosFreq(0.75)
///                            .Threads(4)
///                            .RootBatch(16)
///                            .Build());
class MinerConfigBuilder {
 public:
  /// Starts from the TGMiner preset.
  MinerConfigBuilder() : config_(MinerConfig::TGMiner()) {}
  /// Starts from a named paper preset (TGMiner, SubPrune, SupPrune,
  /// PruneGI, PruneVF2, LinearScan); unknown names fall back to TGMiner
  /// exactly like MinerConfig::ByName.
  explicit MinerConfigBuilder(std::string_view preset)
      : config_(MinerConfig::ByName(std::string(preset))) {}
  /// Starts from an existing config (tweak-and-validate).
  explicit MinerConfigBuilder(const MinerConfig& config) : config_(config) {}

  MinerConfigBuilder& MaxEdges(int v) { config_.max_edges = v; return *this; }
  MinerConfigBuilder& TopK(int v) { config_.top_k = v; return *this; }
  MinerConfigBuilder& MinPosFreq(double v) {
    config_.min_pos_freq = v;
    return *this;
  }
  MinerConfigBuilder& MaxEmbeddingsPerGraph(std::int64_t v) {
    config_.max_embeddings_per_graph = v;
    return *this;
  }
  MinerConfigBuilder& StopAtTopKTies(bool v) {
    config_.stop_at_top_k_ties = v;
    return *this;
  }
  MinerConfigBuilder& CheckReferenceScoreFirst(bool v) {
    config_.check_reference_score_first = v;
    return *this;
  }
  MinerConfigBuilder& Threads(int v) { config_.num_threads = v; return *this; }
  MinerConfigBuilder& RootBatch(int v) { config_.root_batch = v; return *this; }
  MinerConfigBuilder& MaxVisited(std::int64_t v) {
    config_.max_visited = v;
    return *this;
  }
  MinerConfigBuilder& MaxMillis(std::int64_t v) {
    config_.max_millis = v;
    return *this;
  }

  /// Validates and returns the config.
  StatusOr<MinerConfig> Build() const {
    if (config_.max_edges < 1) {
      return Status::InvalidArgument("max_edges must be >= 1, got " +
                                     std::to_string(config_.max_edges));
    }
    if (config_.top_k < 1) {
      return Status::InvalidArgument("top_k must be >= 1, got " +
                                     std::to_string(config_.top_k));
    }
    if (config_.min_pos_freq < 0.0 || config_.min_pos_freq > 1.0) {
      return Status::InvalidArgument(
          "min_pos_freq must be in [0, 1], got " +
          std::to_string(config_.min_pos_freq));
    }
    if (config_.num_threads < 0) {
      return Status::InvalidArgument(
          "num_threads must be >= 0 (0 = all hardware threads), got " +
          std::to_string(config_.num_threads));
    }
    if (config_.root_batch < 1) {
      return Status::InvalidArgument("root_batch must be >= 1, got " +
                                     std::to_string(config_.root_batch));
    }
    if (config_.max_embeddings_per_graph < 0 || config_.max_visited < 0 ||
        config_.max_millis < 0) {
      return Status::InvalidArgument(
          "embedding/visit/time budgets must be >= 0 (0 = unlimited)");
    }
    return config_;
  }

 private:
  MinerConfig config_;
};

/// Execution options of a Session (see api/session.h). A plain aggregate;
/// build through SessionOptionsBuilder for validation.
struct SessionOptions {
  /// Match cap of one offline Search pass (guards pathological queries).
  std::int64_t search_match_cap = 200000;
  /// Worker shards of the online engine (Watch); <= 0 = all hardware
  /// threads.
  int watch_shards = 1;
  /// Events per engine fan-out batch (>= 1).
  std::size_t watch_batch_size = 1;
  /// Per-query live-partial cap of the online engine. Defaults to
  /// uncapped so Watch and Search agree exactly (the offline searcher
  /// never drops work); production monitors with bounded memory should
  /// lower it and accept drop accounting.
  std::size_t watch_max_partials = std::numeric_limits<std::size_t>::max();
};

/// Chained construction of SessionOptions:
///
///   TGM_ASSIGN_OR_RETURN(SessionOptions opts, SessionOptionsBuilder()
///                            .WatchShards(4)
///                            .WatchBatchSize(64)
///                            .Build());
class SessionOptionsBuilder {
 public:
  SessionOptionsBuilder() = default;
  explicit SessionOptionsBuilder(const SessionOptions& options)
      : options_(options) {}

  SessionOptionsBuilder& SearchMatchCap(std::int64_t v) {
    options_.search_match_cap = v;
    return *this;
  }
  SessionOptionsBuilder& WatchShards(int v) {
    options_.watch_shards = v;
    return *this;
  }
  SessionOptionsBuilder& WatchBatchSize(std::size_t v) {
    options_.watch_batch_size = v;
    return *this;
  }
  SessionOptionsBuilder& WatchMaxPartials(std::size_t v) {
    options_.watch_max_partials = v;
    return *this;
  }

  StatusOr<SessionOptions> Build() const {
    if (options_.search_match_cap < 1) {
      return Status::InvalidArgument(
          "search_match_cap must be >= 1, got " +
          std::to_string(options_.search_match_cap));
    }
    if (options_.watch_batch_size < 1) {
      return Status::InvalidArgument("watch_batch_size must be >= 1");
    }
    return options_;
  }

 private:
  SessionOptions options_;
};

}  // namespace tgm::api

#endif  // TGM_API_BUILDERS_H_
