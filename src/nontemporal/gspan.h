#ifndef TGM_NONTEMPORAL_GSPAN_H_
#define TGM_NONTEMPORAL_GSPAN_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <tuple>
#include <vector>

#include "mining/score.h"
#include "nontemporal/dfs_code.h"
#include "nontemporal/static_graph.h"

namespace tgm {

/// Configuration for the discriminative non-temporal miner.
struct GspanConfig {
  ScoreKind score_kind = ScoreKind::kLogRatio;
  double epsilon = 1e-6;
  int max_edges = 6;
  int top_k = 32;
  bool use_naive_bound = true;
  double min_pos_freq = 0.0;
  bool order_children_by_score = true;
  /// See MinerConfig::stop_at_top_k_ties.
  bool stop_at_top_k_ties = false;
  std::int64_t max_embeddings_per_graph = 0;  // 0 = unlimited
  std::int64_t max_visited = 0;               // 0 = unlimited
  /// Wall-clock budget in milliseconds; 0 = unlimited.
  std::int64_t max_millis = 0;
};

/// A mined non-temporal pattern.
struct StaticMinedPattern {
  DfsCode code;
  StaticGraph graph;
  double freq_pos = 0.0;
  double freq_neg = 0.0;
  double score = -std::numeric_limits<double>::infinity();
  std::int64_t support_pos = 0;
  std::int64_t support_neg = 0;
};

struct GspanResult {
  std::vector<StaticMinedPattern> top;
  double best_score = -std::numeric_limits<double>::infinity();
  std::int64_t patterns_visited = 0;
  double elapsed_seconds = 0.0;
  bool timed_out = false;
};

/// Discriminative directed gSpan — the `Ntemp` baseline substrate.
///
/// The paper's Ntemp baseline "remove[s] all the temporal information in
/// the training data, appl[ies] existing algorithms [11] to mine
/// discriminative non-temporal graph patterns" (Section 6.1). We implement
/// the canonical-community equivalent from scratch: gSpan [31] DFS codes
/// extended to directed, edge-labeled simple graphs, rightmost-path
/// extension, minimality filtering for duplicate elimination, embedding
/// lists for support counting, and the same discriminative objective and
/// naive upper-bound pruning as the temporal miner.
class GspanMiner {
 public:
  GspanMiner(const GspanConfig& config,
             std::vector<const StaticGraph*> positives,
             std::vector<const StaticGraph*> negatives);
  GspanMiner(const GspanConfig& config,
             const std::vector<StaticGraph>& positives,
             const std::vector<StaticGraph>& negatives);

  GspanResult Mine();

 private:
  /// Embedding of the current code in one data graph: discovery id -> data
  /// node, injective.
  struct SEmbedding {
    std::vector<NodeId> nodes;
    friend bool operator==(const SEmbedding&, const SEmbedding&) = default;
    friend auto operator<=>(const SEmbedding& a, const SEmbedding& b) {
      return a.nodes <=> b.nodes;
    }
  };
  struct SGraphEmbeddings {
    std::int32_t graph = 0;
    std::vector<SEmbedding> embeds;
  };
  using SEmbeddingTable = std::vector<SGraphEmbeddings>;
  struct ChildBuckets {
    SEmbeddingTable pos;
    SEmbeddingTable neg;
  };
  struct EntryKey {
    DfsCodeEntry entry;
    // Bucketing order: plain lexicographic on fields (uniqueness only).
    friend bool operator<(const EntryKey& a, const EntryKey& b) {
      auto key = [](const DfsCodeEntry& e) {
        return std::make_tuple(e.from, e.to, e.along, e.from_label, e.elabel,
                               e.to_label);
      };
      return key(a.entry) < key(b.entry);
    }
  };

  double Dfs(const DfsCode& code, SEmbeddingTable pos_table,
             SEmbeddingTable neg_table);
  bool BudgetExhausted();
  void CollectExtensions(const DfsCode& code, const SEmbeddingTable& table,
                         const std::vector<const StaticGraph*>& graphs,
                         bool positive_side,
                         std::map<EntryKey, ChildBuckets>& out) const;
  void UpdateTop(const DfsCode& code, double freq_pos, double freq_neg,
                 double score, std::int64_t support_pos,
                 std::int64_t support_neg);
  void DedupeAndCap(SEmbeddingTable& table);

  GspanConfig config_;
  std::vector<const StaticGraph*> pos_graphs_;
  std::vector<const StaticGraph*> neg_graphs_;
  DiscriminativeScore score_;
  std::vector<StaticMinedPattern> top_;
  double best_score_;
  std::int64_t visited_ = 0;
  bool timed_out_ = false;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace tgm

#endif  // TGM_NONTEMPORAL_GSPAN_H_
