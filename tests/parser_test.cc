#include "syslog/parser.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mining/miner.h"

namespace tgm {
namespace {

TEST(ParserTest, ParsesWellFormedLog) {
  SyslogWorld world;
  std::stringstream ss(
      "# sshd login fragment\n"
      "100 accept 3:sock:client:22 12:proc:sshd\n"
      "110 fork 12:proc:sshd 13:proc:sshd-session\n"
      "120 read 57:file:/etc/shadow 13:proc:sshd-session\n");
  ParseStats stats;
  auto g = ParseSyscallLog(ss, world, &stats);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(stats.events_parsed, 3);
  EXPECT_EQ(stats.lines_skipped, 1);  // the comment
  EXPECT_EQ(g->node_count(), 4u);
  EXPECT_EQ(g->edge_count(), 3u);
  EXPECT_EQ(world.dict().Name(g->label(0)), "sock:client:22");
  EXPECT_EQ(g->edge(0).ts, 100);
  EXPECT_EQ(world.dict().Name(g->edge(0).elabel), "op:accept");
}

TEST(ParserTest, SharedEntityIdsShareNodes) {
  SyslogWorld world;
  std::stringstream ss(
      "10 read 5:file:x 9:proc:a\n"
      "20 write 9:proc:a 5:file:x\n");
  auto g = ParseSyscallLog(ss, world, nullptr);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_EQ(g->edge(0).src, g->edge(1).dst);
}

TEST(ParserTest, SkipsMalformedLines) {
  SyslogWorld world;
  std::stringstream ss(
      "10 read 5:file:x 9:proc:a\n"
      "garbage\n"
      "20 flurp 5:file:x 9:proc:a\n"      // unknown op
      "30 read nofield 9:proc:a\n"        // bad entity
      "-5 read 5:file:x 9:proc:a\n"       // negative ts
      "40 read 9:proc:a 9:proc:a\n"       // self-loop
      "50 write 9:proc:a 5:file:x\n");
  ParseStats stats;
  auto g = ParseSyscallLog(ss, world, &stats);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(stats.events_parsed, 2);
  EXPECT_EQ(stats.lines_skipped, 5);
}

TEST(ParserTest, EmptyLogReturnsNullopt) {
  SyslogWorld world;
  std::stringstream ss("# only comments\n\n");
  EXPECT_FALSE(ParseSyscallLog(ss, world, nullptr).has_value());
}

TEST(ParserTest, OutOfOrderTimestampsAreSorted) {
  SyslogWorld world;
  std::stringstream ss(
      "300 read 5:file:x 9:proc:a\n"
      "100 write 9:proc:a 6:file:y\n");
  auto g = ParseSyscallLog(ss, world, nullptr);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->edge(0).ts, 100);
  EXPECT_EQ(g->edge(1).ts, 300);
}

TEST(ParserTest, OpTokenAcceptsPrefixedForm) {
  SyslogWorld world;
  EXPECT_EQ(ParseOpToken("read", world), world.Op(EdgeOp::kRead));
  EXPECT_EQ(ParseOpToken("op:read", world), world.Op(EdgeOp::kRead));
  EXPECT_EQ(ParseOpToken("bogus", world), kInvalidLabel);
}

TEST(ParserTest, ParsedLogIsMinable) {
  // End-to-end: parse two tiny logs and mine them against each other.
  SyslogWorld world;
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    std::stringstream p(
        "10 fork 1:proc:sshd 2:proc:bash\n"
        "20 read 3:file:/hr/salaries 2:proc:bash\n"
        "30 send 2:proc:bash 4:sock:remote\n");
    pos.push_back(*ParseSyscallLog(p, world, nullptr));
    std::stringstream n(
        "10 fork 1:proc:sshd 2:proc:bash\n"
        "20 send 2:proc:bash 4:sock:remote\n"
        "30 read 3:file:/hr/salaries 2:proc:bash\n");
    neg.push_back(*ParseSyscallLog(n, world, nullptr));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 2;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();
  ASSERT_FALSE(result.top.empty());
  EXPECT_EQ(result.top.front().freq_pos, 1.0);
  EXPECT_EQ(result.top.front().freq_neg, 0.0);
}

}  // namespace
}  // namespace tgm
