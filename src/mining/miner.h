#ifndef TGM_MINING_MINER_H_
#define TGM_MINING_MINER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "base/mutex.h"
#include "exec/work_stealing.h"
#include "matching/matcher.h"
#include "mining/arena.h"
#include "mining/miner_config.h"
#include "mining/node_seq.h"
#include "mining/registry.h"
#include "mining/result.h"
#include "temporal/pattern.h"
#include "temporal/residual.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// One match of the current pattern inside a data graph, reduced to what
/// growth needs: the node map and the position of the last matched edge.
/// Matches that agree on both behave identically for every future growth
/// step and for residual computation, so they are deduplicated. The node
/// map lives inline (NodeSeq), so embeddings are flat objects the dedupe
/// sort can compare without chasing pointers.
struct Embedding {
  NodeSeq nodes;      // pattern node -> data node
  EdgePos last = -1;  // position of the matched max-timestamp edge

  friend bool operator==(const Embedding&, const Embedding&) = default;
  friend auto operator<=>(const Embedding& a, const Embedding& b) {
    if (auto cmp = a.nodes <=> b.nodes; cmp != 0) return cmp;
    return a.last <=> b.last;
  }
};

/// All embeddings of the current pattern in one data graph.
struct GraphEmbeddings {
  std::int32_t graph = 0;  // index into the side's graph vector
  std::vector<Embedding> embeds;
};

/// Embeddings across one side (positive or negative); only graphs with at
/// least one embedding appear, in ascending graph order, so the entry count
/// is the pattern's support on that side.
using EmbeddingTable = std::vector<GraphEmbeddings>;

/// The discriminative temporal graph pattern miner (TGMiner and its five
/// ablation baselines, selected via MinerConfig).
///
/// Search: depth-first consecutive growth (Section 3) — every child pattern
/// appends one edge with timestamp |E|+1, grown forward / backward / inward
/// from the parent, so the pattern space is a tree (Theorem 1: complete, no
/// repetition) and no canonical labeling is ever needed.
///
/// Growth is driven by embedding lists: for each data graph the miner keeps
/// every (node map, last position) match of the current pattern; child
/// candidates are exactly the data edges at later positions touching the
/// mapped nodes, bucketed by extension key.
///
/// Pruning: the naive score upper bound (Section 4.1) plus subgraph pruning
/// (Lemma 4) and supergraph pruning (Proposition 2) against the registry of
/// already-explored patterns, with residual-set equivalence via I-values
/// (Lemma 6) or linear scans, and temporal subgraph tests via the
/// configured matcher.
///
/// Parallelism: two levels, both deterministic for every thread count.
///
///  1. Data-parallel inner loops (`MinerConfig::num_threads > 1`):
///     per-graph extension collection, per-graph embedding dedupe,
///     residual construction, the pruning passes' subgraph-isomorphism
///     tests, and root-bucket preparation run on the internal
///     StealScheduler via the deterministic ParallelFor
///     (exec/parallel_for.h) / TaskGroup, merging per-index results in
///     index order. Nested joins help-steal, so these loops run inside
///     subtree tasks too.
///  2. Root-subtree parallelism (`MinerConfig::root_batch > 1`): the root
///     buckets are independent subtrees of the pattern-space tree, mined
///     in batches of stealable tasks — one task per root, so a worker
///     that finishes an easy subtree steals a pending one instead of the
///     batch joining on its slowest member. Each task owns a WorkerState
///     — thread-local PatternRegistry, top-k list, MinerStats, subgraph
///     tester, and scratch — seeded from a read-only snapshot of the
///     registry/top/best-score committed by earlier batches. When the
///     batch joins, worker results are committed in ascending
///     root-bucket order: registries are absorbed, top-k insertions are
///     replayed, and stats are summed. Batch membership and snapshots
///     depend only on root indices — never on which thread ran a subtree
///     or in what order tasks were stolen — so ranked output is
///     bit-identical for any thread count and any steal schedule.
///
/// root_batch == 1 (the default) makes level 2 degenerate into the exact
/// serial search: each root's snapshot holds every earlier root, which is
/// what the serial DFS dispatch sees. root_batch == 0 auto-sizes batches
/// from the root count and thread count (see MinerConfig::root_batch). A
/// max_millis wall-clock budget truncates either mode at a
/// timing-dependent point, so timed-out runs may differ across thread
/// counts (see MinerConfig::num_threads).
class Miner {
 public:
  /// The graph pointers must outlive the miner. Graphs must be finalized
  /// and free of self-loops.
  Miner(const MinerConfig& config,
        std::vector<const TemporalGraph*> positives,
        std::vector<const TemporalGraph*> negatives);

  /// Convenience constructor over owned graph vectors.
  Miner(const MinerConfig& config, const std::vector<TemporalGraph>& positives,
        const std::vector<TemporalGraph>& negatives);

  /// Runs the search and returns the retained top patterns plus stats.
  MineResult Mine();

 private:
  struct ExtensionKey {
    NodeId src = kNewNode;  // existing pattern node id, or kNewNode
    NodeId dst = kNewNode;
    LabelId src_label = kInvalidLabel;  // used when src == kNewNode
    LabelId dst_label = kInvalidLabel;  // used when dst == kNewNode
    LabelId elabel = kNoEdgeLabel;

    friend bool operator==(const ExtensionKey&,
                           const ExtensionKey&) = default;
    friend auto operator<=>(const ExtensionKey&,
                            const ExtensionKey&) = default;
  };
  struct ChildBuckets {
    EmbeddingTable pos;
    EmbeddingTable neg;
  };
  /// One candidate child embedding tagged with its extension key — an entry
  /// of the flat per-graph extension stream that sort-then-group turns into
  /// buckets (the seed used a std::map per graph here).
  struct FlatExtension {
    ExtensionKey key;
    Embedding emb;
    /// Position in the generation order; sorting by (key, seq) reproduces a
    /// stable sort without its per-call temporary buffer.
    std::int32_t seq = 0;
  };
  /// One (extension key, side, graph) run of child embeddings.
  /// BuildChildren groups the run list into per-key ChildBuckets laid out
  /// exactly as the seed's std::map produced them, keeping ranked results
  /// bit-identical.
  struct KeyedEmbeds {
    ExtensionKey key;
    std::int32_t graph = 0;
    bool positive = true;
    std::vector<Embedding> embeds;
  };
  /// One child (or root) pattern's extension key, support buckets, and
  /// one-step score, ready for the DFS dispatch loop.
  struct ChildWork {
    ExtensionKey key;
    ChildBuckets buckets;
    double score = 0.0;
  };

  /// Per-subtree mining state. The DFS and every helper below it operate
  /// exclusively on one WorkerState, so a root subtree is a pure function
  /// of (its root bucket, the committed snapshot it was seeded from) and
  /// can run on any pool worker without locks. The serial search is the
  /// degenerate case of one worker per batch whose snapshot holds all
  /// earlier roots.
  struct WorkerState {
    /// Counters for this subtree only; committed via MinerStats::MergeFrom
    /// in ascending root order.
    MinerStats stats;
    /// Patterns registered while mining this subtree. Candidate scans
    /// consult `committed` first, then this — the exact registration order
    /// a serial run would have produced.
    PatternRegistry local;
    /// Read-only snapshot of the registries committed by earlier batches.
    /// Mutated only between batches, on the dispatching thread.
    const PatternRegistry* committed = nullptr;
    /// Top-k list seeded from the committed top; updated like the serial
    /// list so in-subtree gates (UpdateTop early-out, stop_at_top_k_ties)
    /// see the scores a serial run would see.
    std::vector<MinedPattern> top;
    /// Every successful UpdateTop insertion, in insertion order — the
    /// replay log for the deterministic commit (an insertion that a later
    /// sibling commit invalidates is simply skipped during replay).
    std::vector<MinedPattern> inserts;
    double best_score = 0.0;
    /// Patterns visited by committed batches when this batch started; the
    /// max_visited budget cut is committed + own, which is exact for
    /// root_batch == 1 and index-deterministic (siblings excluded) above.
    std::int64_t committed_visited = 0;
    /// BudgetExhausted call counter; the wall clock is read every 64 calls.
    std::int64_t budget_calls = 0;
    /// Scheduler for the data-parallel inner loops (ParallelFor chunks,
    /// pruning-pass test fan-out, residual construction). Set for every
    /// worker: the stealing scheduler's helping joins make nested
    /// parallel regions inside subtree tasks safe.
    StealScheduler* pool = nullptr;
    /// Subgraph tester for the pruning passes. Testers memoize (SeqMatcher
    /// caches per-argument reps), so they are per-worker, never shared.
    TemporalSubgraphTester* tester = nullptr;
    std::unique_ptr<TemporalSubgraphTester> owned_tester;
    /// Reused mark buffer for TrySubgraphPrune's condition-(3) check.
    std::vector<char> mapped_scratch;

    explicit WorkerState(ResidualEquivAlgo algo) : local(algo) {}
  };

  /// Merges key-sorted runs into per-key ChildWork items (scored, and
  /// score-ordered when config_.order_children_by_score). Consumes `runs`.
  std::vector<ChildWork> BuildChildren(std::vector<KeyedEmbeds>& runs) const;

  /// Mixes an extension key into the hash used by CollectGraphExtensions'
  /// open-addressing run table.
  static std::uint64_t HashKey(const ExtensionKey& key);

  /// Returns one WorkerState seeded from the committed snapshot (all
  /// workers of a batch get identical seeds; which root a worker mines is
  /// decided by the dispatch loop). `batch_size` decides whether the
  /// worker may use the inner-loop pool and the shared memoizing tester
  /// (only single-subtree batches can: nothing else runs concurrently).
  WorkerState MakeWorker(std::size_t batch_size);

  /// Returns the best score seen in the subtree rooted at `pattern`.
  /// Consumes both tables: embeddings are moved into child buckets and the
  /// spent buffers are recycled through the scratch arena.
  double Dfs(WorkerState& ws, const Pattern& pattern,
             EmbeddingTable& pos_table, EmbeddingTable& neg_table);

  /// True if a visit/time budget has been exhausted (sets ws stats flags).
  bool BudgetExhausted(WorkerState& ws);

  /// Invokes `fn` over pruning candidates from the committed snapshot
  /// first, then the worker-local registry — the combined sequence is the
  /// single-registry order of a serial run. `fn` returns false to stop.
  template <typename Fn>
  void ForEachCandidate(
      const WorkerState& ws, std::int64_t pos_i_value,
      const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
      std::int64_t* equiv_tests, Fn&& fn) const {
    bool stopped = false;
    auto wrapped = [&](const PatternRegistry::CandidateMeta& meta,
                       const RegisteredPattern& entry) {
      if (!fn(meta, entry)) {
        stopped = true;
        return false;
      }
      return true;
    };
    ws.committed->ForEachPosCandidate(pos_i_value, pos_cuts, equiv_tests,
                                      wrapped);
    if (stopped) return;
    ws.local.ForEachPosCandidate(pos_i_value, pos_cuts, equiv_tests,
                                 wrapped);
  }

  /// One registry candidate materialized out of the ForEachCandidate
  /// stream so a pruning pass can fan its subgraph-isomorphism tests out
  /// over the pool. Pointers are stable for the duration of a pruning
  /// pass: entries live in a std::deque and no registration happens
  /// mid-pass. `cum_equiv_tests` is the equiv-test counter value *after*
  /// enumerating this candidate — the replay data that lets the parallel
  /// path charge exactly the tests a serial early-exit scan would have.
  struct PruneCandidate {
    const PatternRegistry::CandidateMeta* meta = nullptr;
    const RegisteredPattern* entry = nullptr;
    std::int64_t cum_equiv_tests = 0;
  };

  /// Materializes the full candidate stream for one pruning pass without
  /// touching ws counters; returns the total equiv-test count of the
  /// complete enumeration. Callers replay counter charges from the
  /// per-candidate cumulative values.
  std::int64_t CollectPruneCandidates(
      const WorkerState& ws, std::int64_t pos_i_value,
      const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
      std::vector<PruneCandidate>& out) const;

  /// Lane testers for the parallel pruning fan-out: each concurrent test
  /// lane borrows a memoizing tester (testers are never shared across
  /// threads), returning it when the pass ends so memo state accumulates
  /// across passes instead of being rebuilt.
  std::unique_ptr<TemporalSubgraphTester> AcquireLaneTester()
      TGM_EXCLUDES(lane_tester_mu_);
  void ReleaseLaneTester(std::unique_ptr<TemporalSubgraphTester> tester)
      TGM_EXCLUDES(lane_tester_mu_);

  /// Runs `test(s, tester)` over survivors [0, n) as chunked stealable
  /// tasks — one borrowed lane tester per chunk, so its memo warms across
  /// the chunk — and returns the smallest s whose test triggered (n if
  /// none). Lanes past the current best trigger are skipped; the result
  /// equals the serial early-exit scan's stop index for every schedule.
  std::size_t FanOutFirstTrigger(
      StealScheduler* pool, std::size_t n,
      const std::function<bool(std::size_t, TemporalSubgraphTester&)>& test);

  /// Resolves config_.root_batch against the actual root-bucket count:
  /// >= 1 is taken as-is, 0 auto-sizes from the thread count (see
  /// MinerConfig::root_batch).
  std::size_t ResolveRootBatch(std::size_t root_count) const;

  /// Appends one side's key-grouped extension runs to `out`, graphs in
  /// ascending order. Run order within a graph is first-encounter (hash
  /// probe) order, NOT key order — consumers must group through
  /// BuildChildren, whose key sort establishes the deterministic order.
  /// `pool` may be null (inline).
  void CollectExtensions(StealScheduler* pool, const EmbeddingTable& table,
                         const std::vector<const TemporalGraph*>& graphs,
                         bool positive_side,
                         std::vector<KeyedEmbeds>& out) const;

  /// One data graph's contribution to CollectExtensions: one run per
  /// distinct extension key, runs in first-encounter order, embeddings
  /// within a run in the serial visit order. Pure; safe to run for
  /// different graphs concurrently.
  void CollectGraphExtensions(const GraphEmbeddings& ge,
                              const TemporalGraph& g,
                              std::vector<KeyedEmbeds>& out) const;

  /// Records `pattern` in the worker-local registry; materializes the
  /// residual cut lists only when the registry's equivalence algorithm
  /// actually stores them (the kLinearScan ablation), instead of copying
  /// them unconditionally.
  void RegisterEntry(WorkerState& ws, const Pattern& pattern,
                     const ResidualSet& pos_res, const ResidualSet& neg_res,
                     double branch_best);

  /// Returns every embedding buffer in `table` to the scratch arena and
  /// empties the table.
  static void ReleaseTable(EmbeddingTable& table);

  /// Dedupes (and caps) every per-graph embedding list in `tables`, using
  /// `pool` when non-null: one parallel unit per (table, graph) entry.
  /// Adds the cap-hit count to `*cap_hits` in index order.
  void DedupeAndCapAll(StealScheduler* pool,
                       const std::vector<EmbeddingTable*>& tables,
                       std::int64_t* cap_hits) const;

  ResidualSet BuildResidual(const EmbeddingTable& table,
                            const std::vector<const TemporalGraph*>& graphs)
      const;

  Pattern Grow(const Pattern& parent, const ExtensionKey& key) const;

  bool TrySubgraphPrune(WorkerState& ws, const Pattern& pattern,
                        const ResidualSet& pos_res, double* inherited_bound);
  bool TrySupergraphPrune(WorkerState& ws, const Pattern& pattern,
                          const ResidualSet& pos_res,
                          const ResidualSet& neg_res,
                          double* inherited_bound);

  void UpdateTop(WorkerState& ws, const Pattern& pattern, double freq_pos,
                 double freq_neg, double score, std::int64_t support_pos,
                 std::int64_t support_neg);

  /// Replays one worker insertion into the committed top-k list (the
  /// ordered insert of UpdateTop without the support/frequency gates,
  /// which the worker already applied).
  void CommitTopEntry(MinedPattern mined);

  /// Folds one finished worker into the committed state. Must be called in
  /// ascending root-bucket order — that order is the determinism contract.
  void CommitWorker(WorkerState& ws);

  /// Budget check between batches, on the committed state only.
  bool CommittedBudgetExhausted();

  /// Returns the number of cap hits (callers fold it into stats).
  std::int64_t DedupeAndCap(EmbeddingTable& table) const;

  /// Sort-unique-truncate for one graph's embedding list; returns 1 if the
  /// cap was hit, 0 otherwise. Pure per-entry work.
  std::int64_t DedupeAndCapGraph(GraphEmbeddings& ge) const;

  MinerConfig config_;
  std::vector<const TemporalGraph*> pos_graphs_;
  std::vector<const TemporalGraph*> neg_graphs_;

  DiscriminativeScore score_;
  /// Steal-capable scheduler for batch subtrees and the data-parallel
  /// inner loops; null when the resolved num_threads is 1 (the serial
  /// path has zero scheduler overhead).
  std::unique_ptr<StealScheduler> pool_;
  /// Tester lent to single-subtree batches so the serial search keeps one
  /// warm memo across roots; multi-subtree batches build per-worker ones.
  std::unique_ptr<TemporalSubgraphTester> tester_;
  /// Free list backing AcquireLaneTester/ReleaseLaneTester.
  Mutex lane_tester_mu_;
  std::vector<std::unique_ptr<TemporalSubgraphTester>> lane_testers_
      TGM_GUARDED_BY(lane_tester_mu_);

  /// Committed state: everything below reflects exactly the root subtrees
  /// committed so far, is read-only while a batch is in flight, and is
  /// advanced by CommitWorker in ascending root order between batches.
  PatternRegistry registry_;
  /// stats_.patterns_visited doubles as the committed visit count that
  /// seeds WorkerState::committed_visited and gates the max_visited
  /// budget between batches.
  MinerStats stats_;
  std::vector<MinedPattern> top_;
  double best_score_;
  /// Latched by whichever worker observes the max_millis cutoff first so
  /// sibling subtrees stop promptly (truncation points are
  /// timing-dependent either way; see MinerConfig::num_threads).
  ///
  /// All accesses are memory_order_relaxed, deliberately: the flag is a
  /// pure go/stop signal that carries no data — no reader dereferences
  /// anything "published" by the writer, so no acquire/release pairing is
  /// needed, and a worker reading a stale false merely visits a few more
  /// patterns before stopping (the cutoff is timing-dependent anyway).
  /// Every result a worker produced before stopping is ordered with the
  /// main thread by the batch's TaskGroup join (the group's wait mutex),
  /// not by this flag.
  std::atomic<bool> timed_out_{false};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace tgm

#endif  // TGM_MINING_MINER_H_
