// Regenerates Table 1: statistics of the training data — average node and
// edge counts, distinct-label counts and trace size class per behaviour,
// plus the background set.
//
// Paper reference values (Table 1): bzip2-decompress 11/12/15 … sshd-login
// 281/730/269, apt-get-install 1006/1879/272, background 172/749/9065.
// Shape to reproduce: per-behaviour ordering and size classes, background
// label count dwarfing the behaviours'.

#include "bench_common.h"
#include "syslog/dataset.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Table 1", "training data statistics");

  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = static_cast<int>(flags.GetInt("runs", 50));
  config.background_graphs =
      static_cast<int>(flags.GetInt("background", 400));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.gen.size_scale = flags.GetDouble("scale", 1.0);

  TrainingData data = BuildTrainingData(world, config);

  std::printf("%-18s %12s %12s %14s %8s\n", "Behavior", "Avg.#nodes",
              "Avg.#edges", "Total #labels", "Size");
  std::int64_t total_nodes = 0;
  std::int64_t total_edges = 0;
  std::int64_t total_graphs = 0;
  for (std::size_t i = 0; i < AllBehaviors().size(); ++i) {
    BehaviorKind kind = AllBehaviors()[i];
    BehaviorStats stats = ComputeStats(data.positives[i]);
    std::printf("%-18s %12.0f %12.0f %14lld %8s\n",
                BehaviorName(kind).c_str(), stats.avg_nodes, stats.avg_edges,
                static_cast<long long>(stats.total_labels),
                SizeClassName(BehaviorSizeClass(kind)).c_str());
    for (const TemporalGraph& g : data.positives[i]) {
      total_nodes += static_cast<std::int64_t>(g.node_count());
      total_edges += static_cast<std::int64_t>(g.edge_count());
      ++total_graphs;
    }
  }
  BehaviorStats bg = ComputeStats(data.background);
  std::printf("%-18s %12.0f %12.0f %14lld %8s\n", "background", bg.avg_nodes,
              bg.avg_edges, static_cast<long long>(bg.total_labels), "-");
  for (const TemporalGraph& g : data.background) {
    total_nodes += static_cast<std::int64_t>(g.node_count());
    total_edges += static_cast<std::int64_t>(g.edge_count());
    ++total_graphs;
  }
  std::printf("\nTotals: %lld graphs, %lld nodes, %lld edges\n",
              static_cast<long long>(total_graphs),
              static_cast<long long>(total_nodes),
              static_cast<long long>(total_edges));
  std::printf("(paper totals at full scale: 11200 graphs, 1905621 nodes, "
              "7923788 edges)\n");
  return 0;
}
