# Empty dependencies file for bench_stream_monitor.
# This may be replaced when dependencies are built.
