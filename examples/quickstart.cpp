// Quickstart: build temporal graphs by hand, mine the discriminative
// temporal pattern that separates the positive set from the negative set,
// and verify it with a temporal subgraph test.
//
// The scenario is the paper's running example in miniature: positive runs
// contain an ordered chain (login -> read -> exfiltrate) while negative
// runs contain the same edges in a harmless order.

#include <cstdio>

#include "matching/seq_matcher.h"
#include "mining/miner.h"
#include "temporal/label_dict.h"
#include "temporal/temporal_graph.h"

int main() {
  using namespace tgm;

  LabelDict dict;
  LabelId sshd = dict.Intern("proc:sshd");
  LabelId bash = dict.Intern("proc:bash");
  LabelId secrets = dict.Intern("file:/hr/salaries.csv");
  LabelId remote = dict.Intern("sock:remote:443");

  // Positive runs: sshd forks bash, bash reads the HR file, bash sends to
  // a remote socket — in that order.
  std::vector<TemporalGraph> positives;
  for (int run = 0; run < 5; ++run) {
    TemporalGraph g;
    NodeId a = g.AddNode(sshd);
    NodeId b = g.AddNode(bash);
    NodeId f = g.AddNode(secrets);
    NodeId s = g.AddNode(remote);
    g.AddEdge(a, b, 10);  // fork
    g.AddEdge(f, b, 20);  // read
    g.AddEdge(b, s, 30);  // send
    g.Finalize();
    positives.push_back(std::move(g));
  }

  // Negative runs: the same entities interact, but the socket traffic
  // precedes the file read — no exfiltration.
  std::vector<TemporalGraph> negatives;
  for (int run = 0; run < 5; ++run) {
    TemporalGraph g;
    NodeId a = g.AddNode(sshd);
    NodeId b = g.AddNode(bash);
    NodeId f = g.AddNode(secrets);
    NodeId s = g.AddNode(remote);
    g.AddEdge(a, b, 10);
    g.AddEdge(b, s, 20);  // send first...
    g.AddEdge(f, b, 30);  // ...then read: harmless order
    g.Finalize();
    negatives.push_back(std::move(g));
  }

  // Mine the most discriminative T-connected temporal patterns.
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  Miner miner(config, positives, negatives);
  MineResult result = miner.Mine();

  std::printf("mined %lld patterns, best score %.3f\n",
              static_cast<long long>(result.stats.patterns_visited),
              result.best_score);
  std::printf("top patterns:\n");
  int shown = 0;
  for (const MinedPattern& m : result.top) {
    if (m.score < result.best_score || shown >= 3) break;
    std::printf("  %s  freq+=%.2f freq-=%.2f\n",
                m.pattern.ToString(&dict).c_str(), m.freq_pos, m.freq_neg);
    ++shown;
  }

  // The discriminative skeleton is the read-then-send order.
  Pattern expected = Pattern::SingleEdge(secrets, bash).GrowForward(1, remote);
  SeqMatcher matcher;
  bool contained = false;
  for (const MinedPattern& m : result.top) {
    if (m.score == result.best_score &&
        matcher.Contains(expected, m.pattern)) {
      contained = true;
      break;
    }
  }
  std::printf("read-then-send chain found in a top pattern: %s\n",
              contained ? "yes" : "no");
  return contained ? 0 : 1;
}
