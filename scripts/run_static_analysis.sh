#!/usr/bin/env bash
# TGMiner static-analysis wall. Four gates:
#
#   1. assert() ban — production code uses TGM_CHECK/TGM_DCHECK
#      (temporal/common.h), never bare assert: TGM_CHECK survives NDEBUG
#      and prints the failed expression with its location; assert
#      silently vanishes from release builds. Toolchain-independent.
#   2. Clang -Werror=thread-safety build — the capability annotations of
#      src/base/annotations.h (mutex-guarded exec/ state, role-confined
#      stream-engine state) are enforced, not decorative. Needs clang++.
#   3. clang-tidy over compile_commands.json (.clang-tidy config). Needs
#      clang-tidy.
#   4. tgm-lint (tools/lint/tgm_lint.py) — the project-contract linter:
#      determinism (no unordered-container iteration into results without
#      a canonical sort or waiver; no pointer-keyed ordered containers),
#      layering (the include DAG of tools/lint/layers.conf), Status
#      discipline (no discarded Status/StatusOr results), and the
#      raw-primitive ban (std::mutex/condition_variable outside
#      src/base/). Toolchain-independent (python3; token engine, with a
#      libclang AST refinement when the binding is installed).
#
# Gate order puts the toolchain-independent gates (1, 4) first, so a
# gcc-only host always gets them; the clang gates report their missing
# toolchain per-gate as a loud SKIP instead of aborting the whole script.
# Skips are never silent: the summary names every skipped gate, and
# --require-clang (what CI uses) turns those skips into hard failures so
# CI cannot go green without the full wall.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/run_static_analysis.sh [MODE] [--require-clang]

Modes:
  (none)                   Run all four gates:
                             1 assert() ban          (toolchain-independent)
                             2 -Werror=thread-safety (needs clang++)
                             3 clang-tidy            (needs clang-tidy)
                             4 tgm-lint              (needs python3)
                           Missing clang tooling SKIPs gates 2/3 loudly;
                           with --require-clang the skip is a failure.
  --seeded-defect[=WHICH]  Prove the wall bites: seed a historical or
                           synthetic defect and require the gate to
                           REJECT it. WHICH is one of
                             spsc-deadlock   (gate 2, needs clang++)
                             nested-join     (gate 2, needs clang++)
                             determinism     (gate 4)
                             layering        (gate 4)
                             status-discard  (gate 4)
                             raw-primitive   (gate 4)
                             all             (default: every variant)
  --audit-waivers          List every tgm-lint suppression in src/ with
                           its file, line, and reason (CI uploads this as
                           an artifact). Fails on malformed waivers.
  --help                   This text.

Environment: CLANGXX (default clang++), CLANG_TIDY (default clang-tidy),
PYTHON3 (default python3), BUILD_DIR (default build-static-analysis).
EOF
}

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

CLANGXX="${CLANGXX:-clang++}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
PYTHON3="${PYTHON3:-python3}"
BUILD_DIR="${BUILD_DIR:-build-static-analysis}"
TGM_LINT=(tools/lint/tgm_lint.py --root "${REPO_ROOT}" --src src
          --layers tools/lint/layers.conf)

fail() { echo "FAIL: $*" >&2; exit 1; }

MODE="run"
SEED_WHICH="all"
REQUIRE_CLANG=0
for arg in "$@"; do
  case "${arg}" in
    --help|-h) usage; exit 0 ;;
    --seeded-defect) MODE="seed" ;;
    --seeded-defect=*) MODE="seed"; SEED_WHICH="${arg#*=}" ;;
    --audit-waivers) MODE="audit" ;;
    --require-clang) REQUIRE_CLANG=1 ;;
    *) usage >&2; fail "unknown argument '${arg}'" ;;
  esac
done

command -v "${PYTHON3}" >/dev/null 2>&1 \
  || fail "${PYTHON3} not found — gate 4 (tgm-lint) needs python3"

HAVE_CLANGXX=0
command -v "${CLANGXX}" >/dev/null 2>&1 && HAVE_CLANGXX=1
HAVE_TIDY=0
command -v "${CLANG_TIDY}" >/dev/null 2>&1 && HAVE_TIDY=1

SKIPPED=()
skip_or_fail() {  # $1 gate label, $2 missing tool
  if [[ ${REQUIRE_CLANG} -eq 1 ]]; then
    fail "$1 requires $2 and --require-clang is set"
  fi
  echo "   SKIP: $1 — $2 not found (install it or set its env var;" \
       "CI runs this gate with --require-clang)"
  SKIPPED+=("$1")
}

# --- Waiver audit mode --------------------------------------------------
if [[ "${MODE}" == "audit" ]]; then
  exec "${PYTHON3}" "${TGM_LINT[@]}" --audit-waivers
fi

# --- Seeded-defect mode: every gate must bite ---------------------------
# Each variant re-introduces a defect (two historical deadlocks for the
# thread-safety wall, one synthetic violation per tgm-lint check) and
# requires the gate to REJECT it — proving enforcement, not just that
# clean code passes.
if [[ "${MODE}" == "seed" ]]; then
  WORK="$(mktemp -d)"
  trap 'rm -rf "${WORK}"' EXIT

  want() { [[ "${SEED_WHICH}" == "all" || "${SEED_WHICH}" == "$1" ]]; }
  RAN_ANY=0

  if want spsc-deadlock; then
    RAN_ANY=1
    if [[ ${HAVE_CLANGXX} -eq 0 ]]; then
      skip_or_fail "seed spsc-deadlock" "${CLANGXX}"
    else
      echo "== Seeded defect [spsc-deadlock]: SpscQueue slow-path re-lock"
      mkdir -p "${WORK}/exec"
      # Swap the non-notifying ring op back to the notifying TryPush inside
      # Push()'s mu_-held wait loop — the exact shape of the PR-7 self
      # deadlock (TryPush locks mu_ via NotifyConsumerIfParked).
      sed 's/while (!TryPushNoNotify(v)) {/while (!TryPush(v)) {/' \
        src/exec/spsc_queue.h > "${WORK}/exec/spsc_queue.h"
      cmp -s src/exec/spsc_queue.h "${WORK}/exec/spsc_queue.h" \
        && fail "seed pattern did not match spsc_queue.h — update the sed in $0"
      cat > "${WORK}/seeded_tu.cc" <<'EOF'
// Instantiates the blocking slow paths: Clang's thread-safety analysis
// checks templates at instantiation, so without this TU the seeded
// defect would go unnoticed.
#include "exec/spsc_queue.h"
void SeededDefectInstantiation() {
  tgm::SpscQueue<int> q(8);
  q.Push(1);
  int out = 0;
  q.PopBlocking(&out);
}
EOF
      set +e
      OUT="$("${CLANGXX}" -std=c++20 -fsyntax-only \
          -Wthread-safety -Werror=thread-safety \
          -I "${WORK}" -I src "${WORK}/seeded_tu.cc" 2>&1)"
      STATUS=$?
      set -e
      [[ ${STATUS} -ne 0 ]] \
        || fail "seeded deadlock COMPILED — the thread-safety wall is not biting"
      echo "${OUT}" | grep -q 'thread-safety' \
        || fail "seeded build failed for the wrong reason: ${OUT}"
      echo "   OK: seeded deadlock rejected by -Werror=thread-safety:"
      echo "${OUT}" | grep 'requires negative capability\|acquiring mutex\|thread-safety' \
        | head -3 | sed 's/^/   | /'
      # Sanity: the pristine header must still compile with the same TU.
      "${CLANGXX}" -std=c++20 -fsyntax-only -Wthread-safety \
          -Werror=thread-safety -I src "${WORK}/seeded_tu.cc" \
        || fail "pristine spsc_queue.h does not pass the wall"
      echo "   OK: pristine header passes the same check"
    fi
  fi

  if want nested-join; then
    RAN_ANY=1
    if [[ ${HAVE_CLANGXX} -eq 0 ]]; then
      skip_or_fail "seed nested-join" "${CLANGXX}"
    else
      echo "== Seeded defect [nested-join]: blocking join in TaskGroup"
      mkdir -p "${WORK}/exec"
      # Swap TaskGroup::ParkUntilProgress's bounded park for helping while
      # wait_mu_ is held — the old ThreadPool nested-Submit deadlock
      # re-born. HelpOne() is TGM_EXCLUDES(wait_mu_); the wall must reject.
      sed 's/done_cv_.WaitFor(lock, kParkTimeout);/while (pending_ != 0) HelpOne();/' \
        src/exec/work_stealing.cc > "${WORK}/exec/work_stealing.cc"
      cmp -s src/exec/work_stealing.cc "${WORK}/exec/work_stealing.cc" \
        && fail "seed pattern did not match work_stealing.cc — update the sed in $0"
      set +e
      OUT="$("${CLANGXX}" -std=c++20 -fsyntax-only \
          -Wthread-safety -Werror=thread-safety \
          -I src "${WORK}/exec/work_stealing.cc" 2>&1)"
      STATUS=$?
      set -e
      [[ ${STATUS} -ne 0 ]] \
        || fail "seeded nested-join deadlock COMPILED — the wall is not biting"
      echo "${OUT}" | grep -q 'thread-safety' \
        || fail "seeded scheduler build failed for the wrong reason: ${OUT}"
      echo "   OK: seeded nested-join deadlock rejected by -Werror=thread-safety:"
      echo "${OUT}" | grep "wait_mu_\|thread-safety" | head -3 | sed 's/^/   | /'
      "${CLANGXX}" -std=c++20 -fsyntax-only -Wthread-safety \
          -Werror=thread-safety -I src src/exec/work_stealing.cc \
        || fail "pristine work_stealing.cc does not pass the wall"
      echo "   OK: pristine scheduler passes the same check"
    fi
  fi

  # tgm-lint seeds: copy the tree, inject one violation, require the gate
  # to reject it with the right check tag.
  seed_lint() {  # $1 variant, $2 target file, $3 expected tag, $4 payload
    RAN_ANY=1
    echo "== Seeded defect [$1]: injecting into $2"
    local tree="${WORK}/lint-$1"
    mkdir -p "${tree}/tools/lint"
    cp -r src "${tree}/src"
    cp tools/lint/layers.conf "${tree}/tools/lint/layers.conf"
    printf '%s\n' "$4" >> "${tree}/$2"
    set +e
    OUT="$("${PYTHON3}" tools/lint/tgm_lint.py --root "${tree}" --src src \
        --layers tools/lint/layers.conf 2>&1)"
    STATUS=$?
    set -e
    [[ ${STATUS} -ne 0 ]] \
      || fail "seeded $1 violation PASSED tgm-lint — gate 4 is not biting"
    echo "${OUT}" | grep -q "\[$3\]" \
      || fail "seeded $1 violation rejected for the wrong reason: ${OUT}"
    echo "${OUT}" | grep "\[$3\]" | head -2 | sed 's/^/   | /'
    echo "   OK: seeded $1 violation rejected by tgm-lint [$3]"
  }

  if want determinism; then
    seed_lint determinism src/query/interest.cc unordered-iter \
'namespace tgm { namespace seeded {
std::vector<int> LeakHashOrder(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) { out.push_back(k + v); }
  return out;
} } }'
  fi
  if want layering; then
    seed_lint layering src/temporal/sequence.h layering \
'#include "api/session.h"'
  fi
  if want status-discard; then
    seed_lint status-discard src/api/session.cc status-discard \
'namespace tgm { namespace api { namespace seeded {
void DropError(Session& s, const StreamEvent& e, const WatchSink& sink) {
  s.Feed(e, sink);
} } } }'
  fi
  if want raw-primitive; then
    seed_lint raw-primitive src/mining/miner.cc raw-primitive \
'#include <mutex>
static std::mutex tgm_lint_seeded_mu;'
  fi

  [[ ${RAN_ANY} -eq 1 ]] \
    || fail "unknown --seeded-defect variant '${SEED_WHICH}' (see --help)"
  if [[ ${#SKIPPED[@]} -gt 0 ]]; then
    echo "Seeded-defect run finished; SKIPPED (no clang): ${SKIPPED[*]}"
  else
    echo "All seeded defects rejected — the wall bites."
  fi
  exit 0
fi

# --- Gate 1: no bare assert() in production code -----------------------
# static_assert is fine (compile-time); assert( is not. src/ only — tests
# are gtest-macro territory anyway. Toolchain-independent, so it runs
# first on every host.
echo "== Gate 1: assert() ban over src/"
if grep -rnE '(^|[^_[:alnum:]])assert\(' --include='*.h' --include='*.cc' src/ \
    | grep -v 'static_assert' | grep -v '// *assert-ok:'; then
  fail "bare assert() in src/ — use TGM_CHECK/TGM_DCHECK (temporal/common.h)"
fi
echo "   OK: no bare assert() sites"

# --- Gate 4: tgm-lint project-contract checks ---------------------------
# Runs second (before the clang gates) because it is also
# toolchain-independent: determinism, layering, Status discipline, and
# the raw-primitive ban all gate a gcc-only host. Uses the compilation
# database when present (enables the libclang AST refinement).
echo "== Gate 4: tgm-lint (determinism, layering, status-discard, raw-primitive)"
LINT_ARGS=()
if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
  LINT_ARGS+=(--compdb "${BUILD_DIR}/compile_commands.json")
elif [[ -f build/compile_commands.json ]]; then
  LINT_ARGS+=(--compdb build/compile_commands.json)
fi
"${PYTHON3}" "${TGM_LINT[@]}" "${LINT_ARGS[@]}" \
  || fail "tgm-lint found contract violations (waive only with a reason)"
echo "   OK: tgm-lint clean over src/"

# --- Gate 2: full Clang build with -Werror=thread-safety ----------------
echo "== Gate 2: Clang -Werror=thread-safety build"
if [[ ${HAVE_CLANGXX} -eq 0 ]]; then
  skip_or_fail "gate 2 (thread-safety build)" "${CLANGXX}"
else
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DTGMINER_CHECK_INVARIANTS=ON \
    > "${BUILD_DIR}.configure.log" 2>&1 \
    || { cat "${BUILD_DIR}.configure.log"; fail "clang configure failed"; }
  cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    || fail "clang build failed (thread-safety violations are errors)"
  echo "   OK: clang build clean under -Werror=thread-safety"
fi

# --- Gate 3: clang-tidy over the compilation database -------------------
echo "== Gate 3: clang-tidy"
if [[ ${HAVE_TIDY} -eq 0 || ${HAVE_CLANGXX} -eq 0 ]]; then
  skip_or_fail "gate 3 (clang-tidy)" "${CLANG_TIDY}"
else
  [[ -f "${BUILD_DIR}/compile_commands.json" ]] \
    || fail "no compile_commands.json in ${BUILD_DIR}"
  # First-party sources only: the database also holds gtest/bench TUs.
  mapfile -t SOURCES < <(find src -name '*.cc' | sort)
  "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}" \
    || fail "clang-tidy reported findings (WarningsAsErrors: '*')"
  echo "   OK: clang-tidy clean over ${#SOURCES[@]} sources"
fi

if [[ ${#SKIPPED[@]} -gt 0 ]]; then
  echo "Gates passed WITH SKIPS (${SKIPPED[*]}) — install clang or run" \
       "with --require-clang for the full wall."
else
  echo "All static-analysis gates passed."
fi
