// Cross-module invariants: properties that must hold across the whole
// pipeline regardless of seeds or scales.

#include <gtest/gtest.h>

#include "mining/miner.h"
#include "syslog/dataset.h"
#include "test_util.h"

namespace tgm {
namespace {

class DatasetInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetInvariantTest, TruthIntervalsContainInstanceEvents) {
  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = 2;
  config.background_graphs = 2;
  config.test_instances = 12;
  config.seed = static_cast<std::uint64_t>(GetParam());
  TestLog log = BuildTestLog(world, config);
  // Every truth interval is within the log's global time span and
  // intervals are disjoint and ordered.
  ASSERT_FALSE(log.truth.empty());
  Timestamp log_begin = log.graph.edges().front().ts;
  Timestamp log_end = log.graph.edges().back().ts;
  for (std::size_t i = 0; i < log.truth.size(); ++i) {
    EXPECT_GE(log.truth[i].t_begin, log_begin - 1);
    EXPECT_LE(log.truth[i].t_end, log_end + 1);
    EXPECT_LE(log.truth[i].t_begin, log.truth[i].t_end);
    if (i > 0) EXPECT_GE(log.truth[i].t_begin, log.truth[i - 1].t_end);
  }
  // Instance counts add up.
  std::int64_t total = 0;
  for (std::int64_t c : log.instance_counts) total += c;
  EXPECT_EQ(total, static_cast<std::int64_t>(log.truth.size()));
}

TEST_P(DatasetInvariantTest, TrainingGraphsAreStrictlyOrdered) {
  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = 2;
  config.background_graphs = 3;
  config.seed = static_cast<std::uint64_t>(GetParam()) + 100;
  TrainingData data = BuildTrainingData(world, config);
  auto check = [](const TemporalGraph& g) {
    for (std::size_t i = 1; i < g.edge_count(); ++i) {
      EXPECT_LE(g.edge(static_cast<EdgePos>(i - 1)).ts,
                g.edge(static_cast<EdgePos>(i)).ts);
    }
  };
  for (const auto& runs : data.positives) {
    for (const TemporalGraph& g : runs) check(g);
  }
  for (const TemporalGraph& g : data.background) check(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetInvariantTest, ::testing::Range(1, 6));

class MinerInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MinerInvariantTest, StatsAreInternallyConsistent) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 900);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
    neg.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  MineResult result = Miner(config, pos, neg).Mine();
  const MinerStats& s = result.stats;
  EXPECT_LE(s.patterns_expanded, s.patterns_visited);
  EXPECT_LE(s.subgraph_prune_triggers + s.supergraph_prune_triggers +
                s.naive_prunes,
            s.patterns_visited);
  EXPECT_GE(s.elapsed_seconds, 0.0);
  EXPECT_GE(s.SubgraphTriggerRate(), 0.0);
  EXPECT_LE(s.SubgraphTriggerRate(), 1.0);
}

TEST_P(MinerInvariantTest, TopListSortedAndBounded) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1900);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
    neg.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  config.top_k = 7;
  MineResult result = Miner(config, pos, neg).Mine();
  EXPECT_LE(result.top.size(), 7u);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].score, result.top[i].score);
  }
  if (!result.top.empty()) {
    EXPECT_DOUBLE_EQ(result.top.front().score, result.best_score);
  }
  for (const MinedPattern& m : result.top) {
    EXPECT_TRUE(m.pattern.IsCanonical());
    EXPECT_GT(m.support_pos, 0);
    EXPECT_LE(m.pattern.edge_count(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerInvariantTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace tgm
