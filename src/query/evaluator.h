#ifndef TGM_QUERY_EVALUATOR_H_
#define TGM_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "query/searcher.h"
#include "syslog/dataset.h"

namespace tgm {

/// Section 6.2 accuracy metrics. An identified instance (a match interval)
/// is *correct* if it is fully contained in a ground-truth interval of the
/// target behaviour; a behaviour instance is *discovered* if at least one
/// correct identified instance lies inside it.
///
///   precision = #correct / #identified,  recall = #discovered / #instances.
struct AccuracyResult {
  std::int64_t identified = 0;
  std::int64_t correct = 0;
  std::int64_t discovered = 0;
  std::int64_t instances = 0;

  double precision() const {
    return identified == 0 ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(identified);
  }
  double recall() const {
    return instances == 0 ? 0.0
                          : static_cast<double>(discovered) /
                                static_cast<double>(instances);
  }
};

/// Evaluates match intervals against the test log's ground truth for one
/// behaviour.
AccuracyResult EvaluateAccuracy(const std::vector<Interval>& matches,
                                const std::vector<TruthInstance>& truth,
                                BehaviorKind behavior);

}  // namespace tgm

#endif  // TGM_QUERY_EVALUATOR_H_
