file(REMOVE_RECURSE
  "CMakeFiles/work_stealing_test.dir/work_stealing_test.cc.o"
  "CMakeFiles/work_stealing_test.dir/work_stealing_test.cc.o.d"
  "work_stealing_test"
  "work_stealing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_stealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
