# Empty dependencies file for bench_fig12_training_amount.
# This may be replaced when dependencies are built.
