#ifndef TGM_QUERY_STREAM_SHARD_H_
#define TGM_QUERY_STREAM_SHARD_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "query/stream/query_runtime.h"

namespace tgm {

/// An alert produced inside a shard, tagged with its batch position so the
/// engine can merge shard outputs into the canonical order. The member
/// order makes the defaulted comparison exactly the merge key
/// (event, query, interval).
struct ShardAlert {
  std::uint32_t event_index = 0;  ///< position of the event in its batch
  std::size_t query_index = 0;    ///< engine-global query index
  Interval interval;

  friend auto operator<=>(const ShardAlert&, const ShardAlert&) = default;
};

/// One worker shard of the stream engine: a disjoint subset of the
/// registered queries plus all of their live state. Every shard sees the
/// full event batch (events are broadcast; queries are partitioned), so a
/// query's state evolution is identical no matter how many shards the
/// engine runs — the root of the engine's shard-count determinism.
///
/// Seed dispatch: a query with no live partials can only react to an
/// event that seeds it, and seeding requires the event's (edge label,
/// source label) to be one of the plan's seed-dispatch keys (the edge-0
/// labels, one pair per disjunctive label alternative — see
/// CompiledQueryPlan::SeedDispatchKeys, the shared source of truth with
/// SeedMatches). The shard keeps two
/// label -> query bitmaps (by edge label, by source label); per event it
/// intersects the two bitmap rows and skips every idle query whose bit is
/// clear — no expiry scan, no index probe, no seed test. Skips are
/// counted per query (`EngineQueryStats::seed_skips`). The decision is a
/// pure per-query function of the event, so the alert stream — and every
/// other stat — is unchanged by the dispatch and stays bit-identical
/// across shard counts and batch sizes. Deliberate trade: a skipped query
/// also skips its emitted-interval dedup pruning, so a query that goes
/// permanently idle retains its final window's worth of dedup entries —
/// a bounded, non-growing set; pruning it would require running Advance,
/// which is the cost the dispatch exists to avoid.
///
/// A shard is single-threaded by construction: the engine gives each
/// batch's ProcessBatch call to exactly one worker, and no state is shared
/// between shards.
class StreamShard {
 public:
  explicit StreamShard(const StreamLimits& limits) : limits_(limits) {}

  /// Registers a query under its engine-global index. Indexes must arrive
  /// in increasing order (the engine assigns round-robin). `window`
  /// overrides the shard-wide StreamLimits::window for this query;
  /// `constraints` are the query's timed-automata guards (a trivial value
  /// is the plain unconstrained query).
  void AddQuery(std::size_t global_index, const Pattern& query,
                Timestamp window, const TemporalConstraints& constraints) {
    StreamLimits limits = limits_;
    limits.window = window;
    queries_.emplace_back(global_index, query, constraints, limits);
    dispatch_dirty_ = true;
  }
  void AddQuery(std::size_t global_index, const Pattern& query,
                Timestamp window) {
    AddQuery(global_index, query, window, TemporalConstraints());
  }
  void AddQuery(std::size_t global_index, const Pattern& query) {
    AddQuery(global_index, query, limits_.window);
  }

  /// Feeds every event of `batch` (in order) to every query of this
  /// shard. `out` is replaced with the alerts, already sorted by
  /// (event_index, query_index, interval) because queries are advanced in
  /// ascending global order and each advance reports sorted intervals.
  void ProcessBatch(std::span<const StreamEvent> batch,
                    std::vector<ShardAlert>* out);

  const std::vector<QueryRuntime>& queries() const { return queries_; }
  std::int64_t events_processed() const { return events_processed_; }

  std::size_t PartialCount() const {
    std::size_t total = 0;
    for (const QueryRuntime& q : queries_) total += q.table().live();
    return total;
  }
  std::int64_t dropped_partials() const {
    std::int64_t total = 0;
    for (const QueryRuntime& q : queries_) total += q.dropped_partials();
    return total;
  }

 private:
  using SeedBitmap = std::vector<std::uint64_t>;

  /// (Re)builds the label -> query bitmaps after registrations.
  void RebuildSeedDispatch();
  /// The bitmap row for `label`, or null if no query of this shard seeds
  /// on it.
  static const SeedBitmap* RowFor(
      const std::unordered_map<LabelId, SeedBitmap>& map, LabelId label);

  StreamLimits limits_;
  std::vector<QueryRuntime> queries_;
  std::int64_t events_processed_ = 0;
  std::vector<Interval> scratch_;
  /// Seed-dispatch bitmaps over local query slots, keyed by the queries'
  /// edge-0 labels.
  std::unordered_map<LabelId, SeedBitmap> seed_by_elabel_;
  std::unordered_map<LabelId, SeedBitmap> seed_by_src_label_;
  std::size_t seed_words_ = 0;
  bool dispatch_dirty_ = false;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_SHARD_H_
