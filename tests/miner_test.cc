#include "mining/miner.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;
using ::tgm::testing::MakePattern;

// A dataset where positives share the ordered chain A->B, B->C and
// negatives contain the same edges in the opposite order.
class PlantedPatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Labels: A=0 B=1 C=2 D=3.
    for (int i = 0; i < 4; ++i) {
      positives_.push_back(MakeGraph(
          {0, 1, 2, 3},
          {{0, 1, 1}, {3, 0, 2}, {1, 2, 3}, {2, 3, 4}}));
    }
    for (int i = 0; i < 4; ++i) {
      // Reversed order: B->C before A->B, plus noise.
      negatives_.push_back(MakeGraph(
          {0, 1, 2, 3},
          {{1, 2, 1}, {2, 3, 2}, {0, 1, 3}, {3, 0, 4}}));
    }
  }

  std::vector<TemporalGraph> positives_;
  std::vector<TemporalGraph> negatives_;
};

TEST_F(PlantedPatternTest, FindsTheOrderedChain) {
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 2;
  Miner miner(config, positives_, negatives_);
  MineResult result = miner.Mine();
  ASSERT_FALSE(result.top.empty());
  const MinedPattern& best = result.top.front();
  EXPECT_EQ(best.freq_pos, 1.0);
  EXPECT_EQ(best.freq_neg, 0.0);
  // The planted discriminator: A->B then B->C (in canonical form).
  Pattern planted = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  bool found = false;
  for (const MinedPattern& m : result.top) {
    if (m.pattern == planted) {
      found = true;
      EXPECT_EQ(m.score, result.best_score);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PlantedPatternTest, SingleEdgesAreNotDiscriminative) {
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 1;
  Miner miner(config, positives_, negatives_);
  MineResult result = miner.Mine();
  // Every single edge occurs in all graphs on both sides.
  ASSERT_FALSE(result.top.empty());
  EXPECT_NEAR(result.top.front().freq_neg, 1.0, 1e-12);
  EXPECT_NEAR(result.best_score, std::log(1.0 / (1.0 + 1e-6)), 1e-9);
}

TEST_F(PlantedPatternTest, AllSixMinersAgreeOnBestScore) {
  std::vector<MinerConfig> configs = {
      MinerConfig::TGMiner(),   MinerConfig::SubPrune(),
      MinerConfig::SupPrune(),  MinerConfig::PruneGI(),
      MinerConfig::PruneVF2(),  MinerConfig::LinearScan(),
  };
  for (auto& config : configs) config.max_edges = 3;
  std::vector<double> best;
  for (const auto& config : configs) {
    Miner miner(config, positives_, negatives_);
    best.push_back(miner.Mine().best_score);
  }
  for (std::size_t i = 1; i < best.size(); ++i) {
    EXPECT_DOUBLE_EQ(best[0], best[i]) << "config " << i;
  }
}

TEST_F(PlantedPatternTest, StatsAreRecorded) {
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  Miner miner(config, positives_, negatives_);
  MineResult result = miner.Mine();
  EXPECT_GT(result.stats.patterns_visited, 0);
  EXPECT_GE(result.stats.patterns_expanded, 0);
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
}

TEST_F(PlantedPatternTest, MaxEdgesIsRespected) {
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 2;
  Miner miner(config, positives_, negatives_);
  MineResult result = miner.Mine();
  for (const MinedPattern& m : result.top) {
    EXPECT_LE(m.pattern.edge_count(), 2u);
  }
}

TEST_F(PlantedPatternTest, MinPosFreqFiltersRarePatterns) {
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  config.min_pos_freq = 0.9;
  Miner miner(config, positives_, negatives_);
  MineResult result = miner.Mine();
  EXPECT_GT(result.best_score, 0.0);  // planted pattern still found
}

TEST(MinerTest, SupportCountsFractionOfGraphs) {
  // Pattern present in 2 of 3 positives.
  std::vector<TemporalGraph> pos;
  pos.push_back(MakeGraph({0, 1}, {{0, 1, 1}}));
  pos.push_back(MakeGraph({0, 1}, {{0, 1, 1}}));
  pos.push_back(MakeGraph({1, 0}, {{0, 1, 1}}));  // B->A instead
  std::vector<TemporalGraph> neg;
  neg.push_back(MakeGraph({2, 3}, {{0, 1, 1}}));
  MinerConfig config;
  config.max_edges = 1;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();
  bool checked = false;
  for (const MinedPattern& m : result.top) {
    if (m.pattern == Pattern::SingleEdge(0, 1)) {
      EXPECT_NEAR(m.freq_pos, 2.0 / 3.0, 1e-12);
      EXPECT_EQ(m.freq_neg, 0.0);
      EXPECT_EQ(m.support_pos, 2);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(MinerTest, MultiEdgePatternsAreMined) {
  // Positives have a double A->B edge, negatives only single.
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(MakeGraph({0, 1}, {{0, 1, 1}, {0, 1, 2}}));
    neg.push_back(MakeGraph({0, 1}, {{0, 1, 1}}));
  }
  MinerConfig config;
  config.max_edges = 2;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();
  Pattern doubled = Pattern::SingleEdge(0, 1).GrowInward(0, 1);
  bool found = false;
  for (const MinedPattern& m : result.top) {
    if (m.pattern == doubled) {
      found = true;
      EXPECT_EQ(m.freq_pos, 1.0);
      EXPECT_EQ(m.freq_neg, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

// Brute-force enumeration of all T-connected canonical patterns occurring
// in a graph set (as subgraphs), up to max_edges.
std::set<Pattern, bool (*)(const Pattern&, const Pattern&)> BruteForcePatterns(
    const std::vector<TemporalGraph>& graphs, int max_edges) {
  auto less = +[](const Pattern& a, const Pattern& b) {
    if (a.labels() != b.labels()) return a.labels() < b.labels();
    auto key = [](const PatternEdge& e) {
      return std::make_tuple(e.src, e.dst, e.elabel);
    };
    const auto& ea = a.edges();
    const auto& eb = b.edges();
    if (ea.size() != eb.size()) return ea.size() < eb.size();
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (key(ea[i]) != key(eb[i])) return key(ea[i]) < key(eb[i]);
    }
    return false;
  };
  std::set<Pattern, bool (*)(const Pattern&, const Pattern&)> out(less);
  for (const TemporalGraph& g : graphs) {
    std::size_t n = g.edge_count();
    std::vector<std::size_t> chosen;
    std::function<void(std::size_t)> rec = [&](std::size_t start) {
      if (!chosen.empty() &&
          static_cast<int>(chosen.size()) <= max_edges) {
        // Build the sub-temporal-graph induced by the chosen edges.
        TemporalGraph sub;
        std::vector<NodeId> remap(g.node_count(), kInvalidNode);
        for (std::size_t idx : chosen) {
          const TemporalEdge& e = g.edge(static_cast<EdgePos>(idx));
          for (NodeId v : {e.src, e.dst}) {
            if (remap[static_cast<std::size_t>(v)] == kInvalidNode) {
              remap[static_cast<std::size_t>(v)] = sub.AddNode(g.label(v));
            }
          }
        }
        for (std::size_t idx : chosen) {
          const TemporalEdge& e = g.edge(static_cast<EdgePos>(idx));
          sub.AddEdge(remap[static_cast<std::size_t>(e.src)],
                      remap[static_cast<std::size_t>(e.dst)], e.ts, e.elabel);
        }
        sub.Finalize(TiePolicy::kRequireStrict);
        auto p = Pattern::FromTemporalGraph(sub);
        if (p.has_value()) out.insert(*p);
      }
      if (static_cast<int>(chosen.size()) >= max_edges) return;
      for (std::size_t i = start; i < n; ++i) {
        chosen.push_back(i);
        rec(i + 1);
        chosen.pop_back();
      }
    };
    rec(0);
  }
  return out;
}

// Theorem 1: with all pruning off, the miner visits every T-connected
// pattern occurring anywhere in the data, exactly once.
class GrowthCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(GrowthCompletenessTest, VisitsExactlyTheOccurringPatterns) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<TemporalGraph> pos;
  pos.push_back(tgm::testing::RandomGraph(rng, 4, 6, 2));
  std::vector<TemporalGraph> neg;
  neg.push_back(tgm::testing::RandomGraph(rng, 3, 3, 2));

  MinerConfig config;
  config.max_edges = 4;
  config.top_k = 100000;
  config.use_naive_bound = false;
  config.use_subgraph_pruning = false;
  config.use_supergraph_pruning = false;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();

  auto expected = BruteForcePatterns(pos, config.max_edges);
  auto expected_neg = BruteForcePatterns(neg, config.max_edges);
  for (const Pattern& p : expected_neg) expected.insert(p);

  // Visited count equals the number of distinct patterns (no repetition).
  EXPECT_EQ(result.stats.patterns_visited,
            static_cast<std::int64_t>(expected.size()));

  // Every pattern with positive support is in the retained list (top_k is
  // huge), and matches the brute-force set restricted to pos occurrences.
  auto expected_pos = BruteForcePatterns(pos, config.max_edges);
  std::size_t with_pos_support = 0;
  for (const MinedPattern& m : result.top) {
    if (m.support_pos > 0) {
      ++with_pos_support;
      EXPECT_TRUE(expected_pos.contains(m.pattern)) << m.pattern.ToString();
    }
  }
  EXPECT_EQ(with_pos_support, expected_pos.size());
}

TEST_P(GrowthCompletenessTest, PruningPreservesBestScore) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 777);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 3; ++i) {
    pos.push_back(tgm::testing::RandomGraph(rng, 5, 8, 2));
    neg.push_back(tgm::testing::RandomGraph(rng, 5, 8, 2));
  }
  MinerConfig off;
  off.max_edges = 3;
  off.use_naive_bound = false;
  off.use_subgraph_pruning = false;
  off.use_supergraph_pruning = false;
  Miner slow(off, pos, neg);
  double reference = slow.Mine().best_score;

  for (const MinerConfig& config :
       {MinerConfig::TGMiner(), MinerConfig::SubPrune(),
        MinerConfig::SupPrune(), MinerConfig::PruneGI(),
        MinerConfig::PruneVF2(), MinerConfig::LinearScan()}) {
    MinerConfig c = config;
    c.max_edges = 3;
    Miner fast(c, pos, neg);
    EXPECT_DOUBLE_EQ(fast.Mine().best_score, reference)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrowthCompletenessTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace tgm
