// Regenerates Figure 13(a-c): mining response time of the six miners —
// TGMiner, PruneGI, SubPrune, LinearScan, PruneVF2, SupPrune — on small,
// medium, and large behaviour traces.
//
// Paper shape to reproduce: TGMiner fastest everywhere; PruneGI /
// LinearScan / PruneVF2 up to 6x / 17x / 32x slower (overhead of graph
// indexes, linear residual comparisons, and VF2 subtests respectively);
// SubPrune up to 50x slower; SupPrune slowest, timing out on medium and
// large behaviours (the paper's 2-day budget, emulated here by
// --budget_ms).

#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct MinerSpec {
  const char* name;
  tgm::MinerConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv, {"miners", "classes", "json_out"});
  bench::Banner("Figure 13", "mining response time per miner and size class");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  // Large traces are scaled down so the slow ablations terminate within
  // the bench budget; the *ratios* are what Figure 13 is about.
  config.dataset.gen.size_scale = flags.GetDouble("scale", 0.6);
  Pipeline pipeline(config);
  pipeline.Prepare();

  std::int64_t budget_ms = flags.GetInt("budget_ms", 45000);
  int max_edges = static_cast<int>(flags.GetInt("max_edges", 6));
  // Comma-separated selections (empty = all), e.g. --miners=TGMiner
  // --classes=medium, plus --json_out=BENCH_fig13.json for the bench
  // trajectory.
  std::string miner_filter = flags.GetString("miners", "");
  std::string class_filter = flags.GetString("classes", "");
  std::string json_out = flags.GetString("json_out", "");
  bench::JsonBenchWriter json;
  // Threads for every miner's parallel work. With the default
  // --root_batch=16 the DFS itself runs across root subtrees on the pool:
  // subtrees are mined in fixed batches of 16 with per-worker registries
  // committed in ascending root order, so for runs that finish within
  // --budget_ms the mined results are bit-identical across --threads
  // values and only the response times change. TIMEOUT rows truncate at a
  // timing-dependent point, so their results may differ per thread count.
  // --root_batch=1 recovers the exact serial search (inner-loop
  // parallelism only) and --root_batch=0 auto-sizes batches from the
  // thread count (adaptive; repeatable per thread count but not
  // comparable across thread counts); note results are comparable across
  // runs only for equal --root_batch, which is therefore recorded in the
  // JSON payload.
  int num_threads = static_cast<int>(flags.GetInt("threads", 1, 0, 4096));
  int root_batch = static_cast<int>(flags.GetInt("root_batch", 16, 0, 4096));

  const std::vector<MinerSpec> miners = {
      {"TGMiner", MinerConfig::TGMiner()},  {"PruneGI", MinerConfig::PruneGI()},
      {"SubPrune", MinerConfig::SubPrune()},
      {"LinearScan", MinerConfig::LinearScan()},
      {"PruneVF2", MinerConfig::PruneVF2()},
      {"SupPrune", MinerConfig::SupPrune()},
      // Extra ablation beyond the paper: the find-good-patterns-early
      // child-ordering heuristic disabled (DESIGN.md §5).
      {"TGM-noorder",
       [] {
         MinerConfig c = MinerConfig::TGMiner();
         c.order_children_by_score = false;
         return c;
       }()},
  };
  // Representative behaviour per Table 1 size class. The large class runs
  // on a training subsample so the slow ablations terminate within the
  // bench budget.
  struct ClassSpec {
    const char* name;
    int behavior_idx;
    double fraction;
  };
  struct ClassRow {
    const char* name;
    const char* key;  // --classes selector
    int behavior_idx;
    double fraction;
  };
  const std::vector<ClassRow> classes = {
      {"small (gzip-decompress)", "small", 1, 1.0},
      {"medium (scp-download)", "medium", 4, 1.0},
      {"large (sshd-login, 50% data)", "large", 9, 0.5},
  };
  {
    std::vector<std::string> miner_names;
    for (const MinerSpec& spec : miners) miner_names.emplace_back(spec.name);
    bench::RequireKnownNames(miner_filter, "miners", miner_names);
    std::vector<std::string> class_names;
    for (const ClassRow& row : classes) class_names.emplace_back(row.key);
    bench::RequireKnownNames(class_filter, "classes", class_names);
  }

  for (const auto& [class_name, class_key, behavior_idx, fraction] : classes) {
    if (!bench::NameSelected(class_filter, class_key)) continue;
    std::printf("\n--- %s ---\n", class_name);
    std::printf("%-12s %10s %12s %14s %14s %9s\n", "Miner", "Time (s)",
                "Visited", "Subgr.tests", "Resid.tests", "Status");
    double tgminer_time = 0.0;
    for (const MinerSpec& spec : miners) {
      if (!bench::NameSelected(miner_filter, spec.name)) continue;
      MinerConfig mc = spec.config;
      mc.max_edges = max_edges;
      mc.min_pos_freq = 0.5;
      mc.max_embeddings_per_graph = 2000;
      mc.max_millis = budget_ms;
      mc.num_threads = num_threads;
      mc.root_batch = root_batch;
      MineResult result = pipeline.MineTemporal(behavior_idx, mc, fraction);
      const char* status = result.stats.timed_out        ? "TIMEOUT"
                           : result.stats.visit_cap_hit ? "VISIT-CAP"
                                                         : "ok";
      json.Add(std::string("fig13/") + class_key + "/" + spec.name,
               result.stats.elapsed_seconds,
               {{"patterns_visited",
                 static_cast<double>(result.stats.patterns_visited)},
                {"subgraph_tests",
                 static_cast<double>(result.stats.subgraph_tests)},
                {"residual_equiv_tests",
                 static_cast<double>(result.stats.residual_equiv_tests)},
                {"timed_out", result.stats.timed_out ? 1.0 : 0.0},
                // Multicore baselines are only comparable for equal
                // parallelism settings; record them with every row.
                {"threads", static_cast<double>(num_threads)},
                {"root_batch", static_cast<double>(root_batch)}});
      std::printf("%-12s %10.2f %12lld %14lld %14lld %9s", spec.name,
                  result.stats.elapsed_seconds,
                  static_cast<long long>(result.stats.patterns_visited),
                  static_cast<long long>(result.stats.subgraph_tests),
                  static_cast<long long>(result.stats.residual_equiv_tests),
                  status);
      if (std::string(spec.name) == "TGMiner") {
        tgminer_time = result.stats.elapsed_seconds;
      } else if (tgminer_time > 0.0) {
        std::printf("  (%.1fx)",
                    result.stats.elapsed_seconds / tgminer_time);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(paper shape: TGMiner fastest; PruneGI/LinearScan/PruneVF2 "
              "up to 6/17/32x slower;\n SupPrune times out on medium/large "
              "behaviours)\n");
  if (!json_out.empty() && !json.WriteTo(json_out)) return 1;
  return 0;
}
