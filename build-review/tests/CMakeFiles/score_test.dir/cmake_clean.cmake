file(REMOVE_RECURSE
  "CMakeFiles/score_test.dir/score_test.cc.o"
  "CMakeFiles/score_test.dir/score_test.cc.o.d"
  "score_test"
  "score_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
