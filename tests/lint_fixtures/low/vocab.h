// Layer 'low' of the fixture DAG: includes nothing, includable by all.
#ifndef TGM_LINT_FIXTURE_LOW_VOCAB_H_
#define TGM_LINT_FIXTURE_LOW_VOCAB_H_

namespace lintfix {
using Id = long;
}  // namespace lintfix

#endif
