#include "temporal/pattern.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;
using ::tgm::testing::MakePattern;
using ::tgm::testing::RandomPattern;

TEST(PatternTest, SingleEdgeShape) {
  Pattern p = Pattern::SingleEdge(3, 7);
  EXPECT_EQ(p.node_count(), 2u);
  EXPECT_EQ(p.edge_count(), 1u);
  EXPECT_EQ(p.label(0), 3);
  EXPECT_EQ(p.label(1), 7);
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PatternTest, ForwardGrowthAddsNewDestination) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowForward(1, 2);
  EXPECT_EQ(p.node_count(), 3u);
  EXPECT_EQ(p.edge_count(), 2u);
  EXPECT_EQ(p.edge(1).src, 1);
  EXPECT_EQ(p.edge(1).dst, 2);
  EXPECT_EQ(p.label(2), 2);
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PatternTest, BackwardGrowthAddsNewSource) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowBackward(5, 0);
  EXPECT_EQ(p.node_count(), 3u);
  EXPECT_EQ(p.edge(1).src, 2);
  EXPECT_EQ(p.edge(1).dst, 0);
  EXPECT_EQ(p.label(2), 5);
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PatternTest, InwardGrowthAllowsMultiEdges) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowInward(0, 1);
  EXPECT_EQ(p.node_count(), 2u);
  EXPECT_EQ(p.edge_count(), 2u);
  EXPECT_TRUE(p.IsCanonical());
}

TEST(PatternTest, ConsecutiveGrowthFigure4) {
  // Figure 4: g1 (A->B) grows to g4 via forward, backward, inward.
  // Labels: A=0, B=1, C=2.
  Pattern g1 = Pattern::SingleEdge(0, 1);
  Pattern g2 = g1.GrowForward(0, 2);   // A->C
  Pattern g3 = g2.GrowInward(0, 1);    // second A->B
  EXPECT_EQ(g3.edge_count(), 3u);
  EXPECT_TRUE(g3.IsCanonical());
  EXPECT_EQ(g3.Parent(), g2);
  EXPECT_EQ(g2.Parent(), g1);
}

TEST(PatternTest, ParentRemovesIntroducedNode) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowForward(1, 2);
  Pattern parent = p.Parent();
  EXPECT_EQ(parent, Pattern::SingleEdge(0, 1));
  EXPECT_EQ(parent.node_count(), 2u);
}

TEST(PatternTest, ParentOfInwardKeepsNodes) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowInward(1, 0);
  Pattern parent = p.Parent();
  EXPECT_EQ(parent.node_count(), 2u);
  EXPECT_EQ(parent, Pattern::SingleEdge(0, 1));
}

TEST(PatternTest, EqualityIsStructural) {
  Pattern a = Pattern::SingleEdge(0, 1).GrowForward(1, 2);
  Pattern b = Pattern::SingleEdge(0, 1).GrowForward(1, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Pattern c = Pattern::SingleEdge(0, 1).GrowForward(0, 2);
  EXPECT_NE(a, c);
}

TEST(PatternTest, EdgeLabelsParticipateInIdentity) {
  Pattern a = Pattern::SingleEdge(0, 1, 5);
  Pattern b = Pattern::SingleEdge(0, 1, 6);
  EXPECT_NE(a, b);
}

TEST(PatternTest, RoundTripThroughTemporalGraph) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowForward(1, 2).GrowBackward(3, 0);
  TemporalGraph g = p.ToTemporalGraph();
  EXPECT_EQ(g.node_count(), p.node_count());
  EXPECT_EQ(g.edge_count(), p.edge_count());
  auto back = Pattern::FromTemporalGraph(g);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(PatternTest, FromTemporalGraphCanonicalizesNodeIds) {
  // Same structure with scrambled node ids and sparse timestamps.
  TemporalGraph g = MakeGraph({2, 0, 1}, {{1, 2, 5}, {2, 0, 9}});
  auto p = Pattern::FromTemporalGraph(g);
  ASSERT_TRUE(p.has_value());
  // Canonical: node0 = source of first edge (label 0), node1 = label 1,
  // node2 = label 2.
  EXPECT_EQ(p->label(0), 0);
  EXPECT_EQ(p->label(1), 1);
  EXPECT_EQ(p->label(2), 2);
  EXPECT_TRUE(p->IsCanonical());
}

TEST(PatternTest, FromTemporalGraphRejectsNonTConnected) {
  TemporalGraph g = MakeGraph({0, 1, 2, 3}, {{0, 1, 1}, {2, 3, 2}});
  EXPECT_FALSE(Pattern::FromTemporalGraph(g).has_value());
}

TEST(PatternTest, DegreesCountMultiEdges) {
  Pattern p = Pattern::SingleEdge(0, 1).GrowInward(0, 1).GrowInward(1, 0);
  EXPECT_EQ(p.out_degree(0), 2);
  EXPECT_EQ(p.in_degree(1), 2);
  EXPECT_EQ(p.out_degree(1), 1);
  EXPECT_EQ(p.in_degree(0), 1);
}

class RandomPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternTest, GrowthAlwaysProducesCanonicalPatterns) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  Pattern p = RandomPattern(rng, 8, 4);
  EXPECT_TRUE(p.IsCanonical());
  EXPECT_EQ(p.edge_count(), 8u);
  // Round trip preserves identity (Lemma 1's canonical-form consequence).
  auto back = Pattern::FromTemporalGraph(p.ToTemporalGraph());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST_P(RandomPatternTest, ParentChainReachesSingleEdge) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  Pattern p = RandomPattern(rng, 7, 3);
  int steps = 0;
  while (p.edge_count() > 1) {
    p = p.Parent();
    EXPECT_TRUE(p.IsCanonical());
    ++steps;
  }
  EXPECT_EQ(steps, 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace tgm
