#ifndef TGM_API_SESSION_H_
#define TGM_API_SESSION_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/behavior_query.h"
#include "api/builders.h"
#include "api/event_record.h"
#include "api/status.h"
#include "mining/miner_config.h"
#include "mining/result.h"
#include "query/interest.h"
#include "query/searcher.h"
#include "query/stream/engine.h"
#include "temporal/label_dict.h"
#include "temporal/temporal_graph.h"

namespace tgm::api {

/// The training-amount rounding rule shared by Session::Mine and the
/// Pipeline facade (the Figure 12/15 knob): ceil(fraction * n), clamped
/// to [1, n]. One definition, so Mine-vs-Pipeline parity cannot drift.
inline std::size_t TrainingFractionCount(std::size_t n, double fraction) {
  if (n == 0) return 0;  // clamp's lo > hi would be UB
  std::size_t count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  return std::clamp<std::size_t>(count, 1, n);
}

/// What to mine: two named corpora plus the knobs of one discovery run.
struct MineSpec {
  /// Corpus holding the target behaviour's closed-environment runs.
  std::string positives;
  /// Corpus holding the background / contrast runs.
  std::string negatives;
  /// Miner knobs; build through MinerConfigBuilder for validation.
  MinerConfig config = MinerConfig::TGMiner();
  /// How many top-ranked patterns form the behaviour query.
  int top_patterns = 5;
  /// Optional domain-knowledge ranking (Appendix M) breaking score ties;
  /// null ranks by score alone. Not owned; must outlive the Mine call.
  const InterestModel* interest = nullptr;
  /// Fraction of each corpus used for training (the Figure 12/15 knob);
  /// always at least one graph per side.
  double fraction = 1.0;
  /// Explicit search window for the resulting query. 0 derives it as
  /// `window_slack` times the longest positive-graph lifetime ("no longer
  /// than the longest observed lifetime", §6.1).
  Timestamp window = 0;
  double window_slack = 1.25;
};

/// Per-call overrides of the online engine used by a Watch replay; zero /
/// unset fields fall back to the SessionOptions defaults.
struct WatchOptions {
  int shards = 0;
  /// Sharding mode override (see ShardingMode); unset uses
  /// SessionOptions::watch_sharding.
  std::optional<ShardingMode> sharding;
  std::size_t batch_size = 0;
  std::size_t max_partials = 0;
};

/// Handle of one live-watched behaviour query.
using WatchId = std::size_t;

/// An alert of the live surveillance engine: pattern `pattern` of watch
/// `watch` completed inside `interval`.
struct WatchAlert {
  WatchId watch = 0;
  std::size_t pattern = 0;
  Interval interval;

  friend bool operator==(const WatchAlert&, const WatchAlert&) = default;
};

using WatchSink = std::function<void(const WatchAlert&)>;

/// The library's stable front door: one analysis context owning the label
/// dictionary, the ingested graph corpora, and (lazily) the online
/// surveillance engine.
///
/// The serving workflow (paper Fig. 2, decoupled from the training
/// simulator):
///
///   Session s;
///   s.Ingest("runs", events_of_one_run);        // any audit-log source
///   s.Ingest("background", background_events);  // ...
///   auto query = s.Mine({.positives = "runs", .negatives = "background"});
///   s.SaveQuery(*query, file);                  // durable artifact
///   auto hits = s.Search(*query, "last-week");  // offline (Searcher)
///   auto id = s.Watch(*query);                  // online (StreamEngine)
///   s.Feed(live_event, on_alert);               // alerts as they fire
///
/// Corpora are named, append-only collections of finalized temporal
/// graphs. They can be *ingested* (built from generic EventRecord
/// streams, owned by the session) or *attached* (non-owning views over
/// graphs owned elsewhere — the bundled syslog simulator plugs in this
/// way through Pipeline, making it just one data source among any).
///
/// BehaviorQuery is the unit of exchange: `Mine` produces the artifact,
/// `Search` (offline) and `Watch` (online) execute it, and
/// `SaveQuery`/`LoadQuery` persist it across sessions — Load re-interns
/// labels into this session's dictionary, so artifacts move freely
/// between processes with different interning orders. An analyst can
/// sharpen a mined artifact with timed-automata guards
/// (QueryConstraintsBuilder -> BehaviorQuery::set_constraints); both
/// execution paths enforce the guards identically and they persist with
/// the artifact (tquery version 2). Search and a Watch
/// replay of the same log return identical intervals for any shard
/// count (pinned by tests/api_session_test.cc), provided Search's match
/// cap (SessionOptions::search_match_cap) is not hit — a capped Search
/// truncates, a replay never does; raise the cap when exact offline /
/// online parity matters on very dense logs.
///
/// Error model: recoverable failures (unknown corpus, malformed input,
/// invalid options) return Status/StatusOr; TGM_CHECK stays reserved for
/// library bugs. Not thread-safe; one caller per session.
class Session {
 public:
  /// A session owning its dictionary (label id 0 reserved as "<none>" so
  /// kNoEdgeLabel never collides with a real label).
  Session() : Session(SessionOptions{}) {}
  explicit Session(const SessionOptions& options);
  /// A session sharing an externally owned dictionary (e.g. a
  /// SyslogWorld's); `dict` must outlive the session. If the dictionary
  /// is empty, id 0 is reserved as "<none>"; a non-empty dictionary must
  /// already follow that reservation (checked — a real label at id 0
  /// would silently alias kNoEdgeLabel in every match).
  explicit Session(LabelDict* dict, const SessionOptions& options = {});

  LabelDict& dict() { return *dict_; }
  const LabelDict& dict() const { return *dict_; }
  const SessionOptions& options() const { return options_; }

  // --- ingestion --------------------------------------------------------

  /// Builds one temporal graph from an event stream and appends it to
  /// `corpus` (created on first use). Entity ids map to dense node ids in
  /// first-appearance order; labels are interned. Rejects negative
  /// timestamps, whitespace in labels, and entities whose label changes
  /// mid-graph. Self-loop events are accepted (log corpora may contain
  /// them; Search/Watch handle them) — but mining a corpus containing
  /// one fails, checked per Mine run. Returns the graph's index within
  /// the corpus.
  [[nodiscard]] StatusOr<std::size_t> Ingest(std::string_view corpus,
                               std::span<const EventRecord> events);

  /// Appends an already-built graph (finalized, or finalizable) to
  /// `corpus`; the session takes ownership.
  [[nodiscard]] StatusOr<std::size_t> IngestGraph(std::string_view corpus,
                                    TemporalGraph graph);

  /// Registers a non-owning view over externally owned graphs as (part
  /// of) `corpus`. The graphs must be finalized, must use this session's
  /// dictionary, and must outlive the session. This is how bulk
  /// simulator/test data plugs in without copies.
  [[nodiscard]] Status AttachCorpus(std::string_view corpus,
                      std::span<const TemporalGraph> graphs);

  /// The graphs of a corpus (ingested and attached, in registration
  /// order), or kNotFound. The span views session-internal storage: any
  /// later ingest/attach into the *same* corpus invalidates it (the
  /// graphs themselves stay put; re-call Corpus after growing one).
  [[nodiscard]] StatusOr<std::span<const TemporalGraph* const>> Corpus(
      std::string_view name) const;
  /// Registered corpus names, sorted.
  std::vector<std::string> CorpusNames() const;

  // --- discovery --------------------------------------------------------

  /// Runs discriminative mining over the spec's corpora and compiles the
  /// top-ranked patterns into a BehaviorQuery artifact (window stamped,
  /// provenance filled).
  [[nodiscard]] StatusOr<BehaviorQuery> Mine(const MineSpec& spec) const;

  /// The raw mining result (full retained top list plus search stats) for
  /// callers that post-process rankings themselves (benches, Pipeline).
  [[nodiscard]] StatusOr<MineResult> MineRaw(const MineSpec& spec) const;

  // --- execution: the one offline/online entry-point pair ---------------

  /// Offline: searches the query over every graph of `log_corpus` and
  /// returns the union of distinct match intervals, sorted ascending.
  [[nodiscard]] StatusOr<std::vector<Interval>> Search(const BehaviorQuery& query,
                                         std::string_view log_corpus) const;

  /// Online replay: registers the query with a fresh stream engine and
  /// replays `log_corpus` as a live event stream; returns the distinct
  /// alert intervals, sorted ascending — identical to Search over the
  /// same corpus for every shard count and batch size.
  [[nodiscard]] StatusOr<std::vector<Interval>> Watch(const BehaviorQuery& query,
                                        std::string_view log_corpus,
                                        const WatchOptions& options = {})
      const;

  /// Online, live: registers the query with the session's lazily started
  /// stream engine (SessionOptions decide shards/batching/backpressure;
  /// the query's own window decides expiry). Returns the watch handle
  /// alerts carry. Watches must be registered while no events are
  /// buffered (before the first Feed, or right after FlushWatches with
  /// batch_size 1).
  [[nodiscard]] StatusOr<WatchId> Watch(const BehaviorQuery& query);

  /// Feeds one live event to every watched query. `record` labels are
  /// interned on the fly; alerts of the batch this event completes are
  /// delivered to `sink` in canonical (event, watch, pattern, interval)
  /// order.
  [[nodiscard]] Status Feed(const EventRecord& record, const WatchSink& sink);
  /// Same, for producers that already intern labels (replaying graph
  /// edges via StreamEvent::FromEdge).
  [[nodiscard]] Status Feed(const StreamEvent& event, const WatchSink& sink);

  /// Delivers any buffered partial batch (end of stream, or before stats
  /// that must include all fed events).
  [[nodiscard]] Status FlushWatches(const WatchSink& sink);

  /// Live-engine health snapshot (empty stats before the first Watch).
  EngineStats WatchStats() const;
  std::size_t watch_count() const { return watches_.size(); }

  // --- persistence ------------------------------------------------------

  /// Persists a validated query artifact (`tquery` text format).
  [[nodiscard]] Status SaveQuery(const BehaviorQuery& query, std::ostream& os) const;
  /// Reloads an artifact, re-interning its labels into this session's
  /// dictionary.
  [[nodiscard]] StatusOr<BehaviorQuery> LoadQuery(std::istream& is);

 private:
  struct CorpusData {
    /// Ingested graphs (deque: stable addresses under append).
    std::deque<TemporalGraph> owned;
    /// Ingested + attached, in registration order.
    std::vector<const TemporalGraph*> graphs;
  };
  struct WatchEntry {
    std::size_t first_engine_index = 0;
    std::size_t pattern_count = 0;
  };
  /// The training graphs one MineSpec actually selects — resolved once
  /// and shared by MineRaw (the mining run) and Mine (window derivation,
  /// provenance), so the artifact can never describe a different subset
  /// than the miner consumed.
  struct TrainingSubset {
    std::vector<const TemporalGraph*> positives;
    std::vector<const TemporalGraph*> negatives;
  };
  [[nodiscard]] StatusOr<TrainingSubset> ResolveTrainingSubset(const MineSpec& spec) const;
  /// Runs one mining pass over an already-resolved subset (shared by
  /// MineRaw and Mine so neither resolves twice).
  static MineResult RunMiner(const MinerConfig& config,
                             const TrainingSubset& subset);

  [[nodiscard]] StatusOr<const CorpusData*> FindCorpus(std::string_view name) const;
  CorpusData& CorpusFor(std::string_view name);
  [[nodiscard]] Status EnsureEngine();
  /// Adapts a WatchSink to the engine's StreamAlert sink (query index ->
  /// (watch, pattern ordinal)). `sink` must outlive the returned functor's
  /// use (it is consumed within one OnEvent/Flush call).
  StreamEngine::AlertSink EngineSink(const WatchSink& sink);

  SessionOptions options_;
  std::unique_ptr<LabelDict> owned_dict_;
  LabelDict* dict_;  // owned_dict_.get() or external
  std::map<std::string, CorpusData, std::less<>> corpora_;

  // Live surveillance state (lazily created by the first live Watch).
  std::unique_ptr<StreamEngine> engine_;
  std::vector<WatchEntry> watches_;
  /// watch id + pattern ordinal per engine query index.
  std::vector<std::pair<WatchId, std::size_t>> engine_index_map_;
};

}  // namespace tgm::api

#endif  // TGM_API_SESSION_H_
