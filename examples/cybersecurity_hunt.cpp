// Cybersecurity behaviour hunt — the paper's Example 1 end to end.
//
// A security analyst wants to find every sshd login in a week of syscall
// logs without hand-writing a query over low-level entities. The pipeline:
//  1. run sshd-login repeatedly in a closed environment (simulated),
//  2. mine its most discriminative temporal patterns against background,
//  3. rank them with the domain-knowledge interest score,
//  4. search the 7-day monitoring log and report every identified login
//     with its time interval, scored against ground truth.

#include <cstdio>

#include "query/pipeline.h"

int main() {
  using namespace tgm;

  PipelineConfig config;
  config.dataset.runs_per_behavior = 12;
  config.dataset.background_graphs = 60;
  config.dataset.test_instances = 60;
  config.dataset.seed = 7;
  config.query_size = 6;
  config.miner.max_millis = 60000;

  Pipeline pipeline(config);
  std::printf("collecting closed-environment syscall logs...\n");
  pipeline.Prepare();

  int sshd_idx = 0;
  while (AllBehaviors()[static_cast<std::size_t>(sshd_idx)] !=
         BehaviorKind::kSshdLogin) {
    ++sshd_idx;
  }

  std::printf("mining discriminative temporal patterns for sshd-login...\n");
  MinerConfig miner_config = pipeline.config().miner;
  miner_config.max_edges = config.query_size;
  MineResult mined = pipeline.MineTemporal(sshd_idx, miner_config);
  std::printf("  explored %lld patterns in %.2fs; best score %.2f\n",
              static_cast<long long>(mined.stats.patterns_visited),
              mined.stats.elapsed_seconds, mined.best_score);

  std::vector<MinedPattern> queries = pipeline.TemporalQueries(mined);
  std::printf("behavior query built from %zu top-ranked patterns:\n",
              queries.size());
  for (const MinedPattern& q : queries) {
    std::printf("  %s\n", q.pattern.ToString(&pipeline.world().dict()).c_str());
  }

  std::printf("searching the 7-day monitoring log (%zu events)...\n",
              pipeline.test_log().graph.edge_count());
  std::vector<Interval> matches = pipeline.SearchTemporal(sshd_idx, queries);
  AccuracyResult accuracy = pipeline.Evaluate(sshd_idx, matches);

  std::printf("identified %lld sshd-login instances "
              "(precision %.1f%%, recall %.1f%%)\n",
              static_cast<long long>(accuracy.identified),
              100 * accuracy.precision(), 100 * accuracy.recall());
  std::size_t shown = 0;
  for (const Interval& m : matches) {
    if (shown++ >= 5) {
      std::printf("  ... and %zu more\n", matches.size() - 5);
      break;
    }
    std::printf("  login activity in [%lld, %lld]\n",
                static_cast<long long>(m.begin),
                static_cast<long long>(m.end));
  }
  return accuracy.identified > 0 ? 0 : 1;
}
