#ifndef TGM_EXEC_SPSC_QUEUE_H_
#define TGM_EXEC_SPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/invariants.h"
#include "base/mutex.h"

namespace tgm {

struct SpscQueueTestPeer;

/// A bounded lock-free single-producer/single-consumer ring queue, the
/// transport of the entity-hash stream engine's per-shard inboxes and
/// outboxes (query/stream/engine.h).
///
/// The fast path is wait-free for both sides: one release store of the
/// tail (push) or head (pop) index per element, no CAS, no shared cache
/// line between the two indices. Blocking is layered on top for the slow
/// path only: a side that finds the queue empty (consumer) or full
/// (producer) spins briefly, then parks on a mutex/condvar pair. The
/// opposite side checks the (atomic) parked flag after its index store and
/// signals through the mutex; parked waits additionally use a bounded
/// timeout, so a wakeup lost to the flag race costs at most one timeout
/// period rather than a hang — the queue's progress guarantee never rests
/// on the flag ordering alone.
///
/// Locking contract (machine-checked on Clang via -Werror=thread-safety):
/// every notifying operation — TryPush/TryPop and the Notify*IfParked
/// helpers they call — is TGM_EXCLUDES(mu_), because notifying locks mu_
/// internally. The blocking slow paths hold mu_ across their parked wait
/// loops, so inside those loops only the non-notifying ring ops
/// (TryPushNoNotify/TryPopNoNotify, capability-neutral) are legal;
/// re-introducing the notifying call there — the PR 7 self-deadlock — is
/// now a compile error, not a hang (`scripts/run_static_analysis.sh
/// --seeded-defect` pins this).
///
/// Exactly one thread may push and one may pop (they may be the same
/// thread, which trivially never blocks itself in TryPush/TryPop). Size
/// reads from other threads are approximate.
template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer-side current depth (exact for the producer, approximate for
  /// anyone else).
  std::size_t SizeApprox() const {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    return t - h;
  }

  bool Empty() const { return SizeApprox() == 0; }

  /// Producer only. Moves from `v` and returns true if the element was
  /// enqueued; leaves `v` untouched and returns false when full.
  bool TryPush(T& v) TGM_EXCLUDES(mu_) {
    if (!TryPushNoNotify(v)) return false;
    NotifyConsumerIfParked();
    return true;
  }

  /// Producer only. Blocks (spin, then parked timed waits) until the
  /// element is enqueued. Safe only when the consumer is a different,
  /// live thread.
  void Push(T v) TGM_EXCLUDES(mu_) {
    for (int spin = 0; spin < kSpins; ++spin) {
      if (TryPush(v)) return;
      std::this_thread::yield();
    }
    {
      MutexLock lock(mu_);
      producer_parked_.store(true, std::memory_order_seq_cst);
      // Only the non-notifying variant may run under mu_: the notifying
      // TryPush (TGM_EXCLUDES(mu_)) would re-lock mu_ when the consumer
      // is parked — swapping it in here must not compile.
      while (!TryPushNoNotify(v)) {
        not_full_.WaitFor(lock, kParkTimeout);
      }
      producer_parked_.store(false, std::memory_order_seq_cst);
    }
    NotifyConsumerIfParked();
  }

  /// Consumer only. Moves the front element into `*out` and returns true;
  /// returns false when empty.
  bool TryPop(T* out) TGM_EXCLUDES(mu_) {
    if (!TryPopNoNotify(out)) return false;
    NotifyProducerIfParked();
    return true;
  }

  /// Consumer only. Blocks (spin, then parked timed waits) until an
  /// element arrives.
  void PopBlocking(T* out) TGM_EXCLUDES(mu_) {
    for (int spin = 0; spin < kSpins; ++spin) {
      if (TryPop(out)) return;
      std::this_thread::yield();
    }
    {
      MutexLock lock(mu_);
      consumer_parked_.store(true, std::memory_order_seq_cst);
      // See Push(): the notifying TryPop must never run while mu_ is held.
      while (!TryPopNoNotify(out)) {
        not_empty_.WaitFor(lock, kParkTimeout);
      }
      consumer_parked_.store(false, std::memory_order_seq_cst);
    }
    NotifyProducerIfParked();
  }

  /// Structural validator (base/invariants.h): returns "" when the ring
  /// representation is consistent, else a description of the first
  /// violated invariant. Call only from a thread that may observe both
  /// indices coherently — in practice a quiescent queue (no concurrent
  /// push/pop). `quiescent` additionally demands that neither side is
  /// parked, which must hold whenever no thread is inside Push/PopBlocking.
  std::string CheckInvariants(bool quiescent = true) const {
    const std::size_t cap = slots_.size();
    if (cap < 2 || (cap & (cap - 1)) != 0) {
      return "capacity " + std::to_string(cap) + " is not a power of two >= 2";
    }
    if (mask_ != cap - 1) {
      return "mask " + std::to_string(mask_) + " != capacity-1 " +
             std::to_string(cap - 1);
    }
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > cap) {
      return "depth " + std::to_string(t - h) + " (head " + std::to_string(h) +
             ", tail " + std::to_string(t) + ") exceeds capacity " +
             std::to_string(cap);
    }
    if (quiescent) {
      if (producer_parked_.load(std::memory_order_seq_cst)) {
        return "producer parked flag set on a quiescent queue";
      }
      if (consumer_parked_.load(std::memory_order_seq_cst)) {
        return "consumer parked flag set on a quiescent queue";
      }
    }
    return std::string();
  }

 private:
  friend struct SpscQueueTestPeer;

  static constexpr int kSpins = 128;
  static constexpr std::chrono::microseconds kParkTimeout{500};

  /// Ring push without the parked-consumer wakeup; capability-neutral —
  /// safe to call with mu_ held (the blocking slow paths) or not (via
  /// TryPush).
  bool TryPushNoNotify(T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Ring pop without the parked-producer wakeup; capability-neutral —
  /// safe to call with mu_ held (the blocking slow paths) or not (via
  /// TryPop).
  bool TryPopNoNotify(T* out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Must not be called with mu_ held. A wakeup lost to the flag race is
  /// recovered by the waiter's bounded wait_for timeout.
  void NotifyConsumerIfParked() TGM_EXCLUDES(mu_) {
    if (consumer_parked_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      not_empty_.NotifyOne();
    }
  }

  /// Must not be called with mu_ held; see NotifyConsumerIfParked().
  void NotifyProducerIfParked() TGM_EXCLUDES(mu_) {
    if (producer_parked_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      not_full_.NotifyOne();
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Pop index, written by the consumer only.
  alignas(64) std::atomic<std::size_t> head_{0};
  /// Push index, written by the producer only.
  alignas(64) std::atomic<std::size_t> tail_{0};
  /// Guards no data — it is the parked-wakeup handshake channel. The
  /// capability contract it anchors (EXCLUDES on every notifying op) is
  /// what makes the handshake deadlock-free by construction.
  alignas(64) Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::atomic<bool> consumer_parked_{false};
  std::atomic<bool> producer_parked_{false};
};

/// A many-to-one wakeup channel: the entity-hash engine parks on one
/// Notifier while any of its shards may have pushed results into their
/// (per-shard) SPSC outboxes. Epoch-counted so a notify between reading
/// the epoch and waiting is never lost; waits are additionally bounded,
/// mirroring SpscQueue's parking discipline.
class Notifier {
 public:
  std::uint64_t Epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  void Notify() TGM_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.NotifyAll();
  }

  /// Returns once the epoch has moved past `seen` (or after a bounded
  /// timeout; callers re-check their condition in a loop).
  void Wait(std::uint64_t seen) TGM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.WaitFor(lock, std::chrono::microseconds(500), [&] {
      return epoch_.load(std::memory_order_relaxed) != seen;
    });
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  Mutex mu_;
  CondVar cv_;
};

}  // namespace tgm

#endif  // TGM_EXEC_SPSC_QUEUE_H_
