#ifndef TGM_NONTEMPORAL_STATIC_GRAPH_H_
#define TGM_NONTEMPORAL_STATIC_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "temporal/common.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// A directed edge of a non-temporal graph.
struct StaticEdge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LabelId elabel = kNoEdgeLabel;

  friend bool operator==(const StaticEdge&, const StaticEdge&) = default;
};

/// A simple directed labeled graph — the non-temporal view used by the
/// Ntemp baseline. Multi-edges are collapsed: the paper notes that
/// canonical labeling on non-temporal graphs has difficulties with
/// multi-edges, so the non-temporal baseline "collapse[s] multi-edges into
/// a single edge" (Section 7.1), losing part of the signal.
class StaticGraph {
 public:
  StaticGraph() = default;

  NodeId AddNode(LabelId label);
  /// Adds the edge unless an identical (src, dst, elabel) edge exists.
  void AddEdge(NodeId src, NodeId dst, LabelId elabel = kNoEdgeLabel);
  /// Builds adjacency indexes; call once after construction.
  void Finalize();

  /// Collapses a temporal graph: drops timestamps, dedupes parallel edges.
  static StaticGraph Collapse(const TemporalGraph& g);

  std::size_t node_count() const { return node_labels_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  LabelId label(NodeId v) const {
    TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) < node_labels_.size());
    return node_labels_[static_cast<std::size_t>(v)];
  }
  const std::vector<StaticEdge>& edges() const { return edges_; }
  const StaticEdge& edge(std::size_t i) const { return edges_[i]; }

  /// Edge indexes leaving / entering `v` (requires Finalize).
  const std::vector<std::int32_t>& out_edges(NodeId v) const;
  const std::vector<std::int32_t>& in_edges(NodeId v) const;

  /// True if the directed edge (src, dst, elabel) exists.
  bool HasEdge(NodeId src, NodeId dst, LabelId elabel) const;

  std::string ToString() const;

 private:
  std::vector<LabelId> node_labels_;
  std::vector<StaticEdge> edges_;
  std::vector<std::vector<std::int32_t>> out_edges_;
  std::vector<std::vector<std::int32_t>> in_edges_;
  bool finalized_ = false;
};

}  // namespace tgm

#endif  // TGM_NONTEMPORAL_STATIC_GRAPH_H_
