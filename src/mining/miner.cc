#include "mining/miner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>

#include "base/invariants.h"
#include "exec/parallel_for.h"
#include "mining/key_index.h"

namespace tgm {

namespace {

NodeId FindMappedNode(const NodeSeq& nodes, NodeId data_node) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == data_node) return static_cast<NodeId>(i);
  }
  return kNewNode;
}

std::size_t CountEmbeddings(const EmbeddingTable& table) {
  std::size_t n = 0;
  for (const GraphEmbeddings& ge : table) n += ge.embeds.size();
  return n;
}

/// Number of entries in an ascending position list that lie strictly after
/// `last` — the incident tail-edge count CSR enumeration works from.
std::size_t TailSuffixCount(EdgePosSpan positions, EdgePos last) {
  return static_cast<std::size_t>(
      positions.end() -
      std::upper_bound(positions.begin(), positions.end(), last));
}

}  // namespace

Miner::Miner(const MinerConfig& config,
             std::vector<const TemporalGraph*> positives,
             std::vector<const TemporalGraph*> negatives)
    : config_(config),
      pos_graphs_(std::move(positives)),
      neg_graphs_(std::move(negatives)),
      score_(config.score_kind, static_cast<std::int64_t>(pos_graphs_.size()),
             static_cast<std::int64_t>(neg_graphs_.size()), config.epsilon),
      pool_(ResolveNumThreads(config.num_threads) > 1
                ? std::make_unique<StealScheduler>(
                      ResolveNumThreads(config.num_threads) - 1)
                : nullptr),
      tester_(MakeTester(config.subgraph_algo)),
      registry_(config.residual_algo),
      best_score_(-std::numeric_limits<double>::infinity()) {
  TGM_CHECK(config_.max_edges >= 1);
  TGM_CHECK(!pos_graphs_.empty());
  TGM_CHECK(!neg_graphs_.empty());
  for (const TemporalGraph* g : pos_graphs_) TGM_CHECK(g->finalized());
  for (const TemporalGraph* g : neg_graphs_) TGM_CHECK(g->finalized());
}

Miner::Miner(const MinerConfig& config,
             const std::vector<TemporalGraph>& positives,
             const std::vector<TemporalGraph>& negatives)
    : Miner(config,
            [&positives] {
              std::vector<const TemporalGraph*> ptrs;
              ptrs.reserve(positives.size());
              for (const TemporalGraph& g : positives) ptrs.push_back(&g);
              return ptrs;
            }(),
            [&negatives] {
              std::vector<const TemporalGraph*> ptrs;
              ptrs.reserve(negatives.size());
              for (const TemporalGraph& g : negatives) ptrs.push_back(&g);
              return ptrs;
            }()) {}

std::int64_t Miner::DedupeAndCapGraph(GraphEmbeddings& ge) const {
  std::sort(ge.embeds.begin(), ge.embeds.end());
  ge.embeds.erase(std::unique(ge.embeds.begin(), ge.embeds.end()),
                  ge.embeds.end());
  if (config_.max_embeddings_per_graph > 0 &&
      static_cast<std::int64_t>(ge.embeds.size()) >
          config_.max_embeddings_per_graph) {
    ge.embeds.resize(
        static_cast<std::size_t>(config_.max_embeddings_per_graph));
    return 1;
  }
  return 0;
}

std::int64_t Miner::DedupeAndCap(EmbeddingTable& table) const {
  std::int64_t cap_hits = 0;
  for (GraphEmbeddings& ge : table) cap_hits += DedupeAndCapGraph(ge);
  return cap_hits;
}

void Miner::DedupeAndCapAll(StealScheduler* pool,
                            const std::vector<EmbeddingTable*>& tables,
                            std::int64_t* cap_hits) const {
  std::size_t total_embeddings = 0;
  for (const EmbeddingTable* table : tables) {
    total_embeddings += CountEmbeddings(*table);
  }
  if (pool == nullptr ||
      static_cast<std::int64_t>(total_embeddings) <
          config_.parallel_min_embeddings) {
    for (EmbeddingTable* table : tables) {
      *cap_hits += DedupeAndCap(*table);
    }
    return;
  }
  // One unit per (table, graph) entry so a single large child still
  // spreads across the pool. Cap hits are folded in index order.
  std::vector<GraphEmbeddings*> units;
  for (EmbeddingTable* table : tables) {
    for (GraphEmbeddings& ge : *table) units.push_back(&ge);
  }
  std::vector<std::int64_t> hits(units.size(), 0);
  ParallelFor(pool, units.size(),
              [&](std::size_t i) { hits[i] = DedupeAndCapGraph(*units[i]); });
  for (std::int64_t h : hits) *cap_hits += h;
}

void Miner::ReleaseTable(EmbeddingTable& table) {
  for (GraphEmbeddings& ge : table) {
    ScratchPool<Embedding>::Release(std::move(ge.embeds));
  }
  ScratchPool<GraphEmbeddings>::Release(std::move(table));
  table.clear();
}

std::uint64_t Miner::HashKey(const ExtensionKey& k) {
  auto mix = [](std::uint64_t h, std::int32_t x) {
    h ^= static_cast<std::uint32_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    return h;
  };
  std::uint64_t h = 0x243f6a8885a308d3ull;
  h = mix(h, k.src);
  h = mix(h, k.dst);
  h = mix(h, k.src_label);
  h = mix(h, k.dst_label);
  return mix(h, k.elabel);
}

void Miner::CollectGraphExtensions(const GraphEmbeddings& ge,
                                   const TemporalGraph& g,
                                   std::vector<KeyedEmbeds>& out) const {
  const auto& edges = g.edges();
  const std::size_t base = out.size();

  // Deep DFS levels see one or two embeddings with short tails, so every
  // fixed per-call cost here is hot. Strategy selection is driven by the
  // actual tail work instead of worst-case sizes.
  std::size_t total_tail = 0;
  for (const Embedding& emb : ge.embeds) {
    total_tail += edges.size() - static_cast<std::size_t>(emb.last) - 1;
  }
  if (total_tail == 0) return;

  // Run lookup: candidates go straight into their run's embedding list, so
  // nothing is sorted or moved twice, and BuildChildren's key sort erases
  // the first-encounter order.
  HybridKeyIndex run_index(
      base, [](const ExtensionKey& key) { return HashKey(key); },
      [&out](std::size_t i) -> const ExtensionKey& { return out[i].key; });
  auto find_run = [&](const ExtensionKey& key) -> std::size_t {
    std::size_t idx = run_index.Find(key, out.size());
    if (idx != kKeyIndexNotFound) return idx;
    idx = out.size();
    KeyedEmbeds& run = out.emplace_back();
    run.key = key;
    run.graph = ge.graph;
    run.embeds = ScratchPool<Embedding>::Acquire();
    run_index.Inserted(idx);
    return idx;
  };

  // O(1) data-node -> pattern-slot lookup for the tail scan; entries are
  // set per embedding and unset afterwards, so the full fill happens once
  // per call. The fill costs node_count stores while the payoff is one
  // inline-map scan saved per tail edge, so short total tails keep the
  // scanning fallback.
  std::vector<NodeId> node_slot;
  const bool use_node_slot =
      total_tail * ge.embeds.front().nodes.size() >= 2 * g.node_count();
  if (use_node_slot) {
    node_slot = ScratchPool<NodeId>::Acquire();
    node_slot.assign(g.node_count(), kNewNode);
  }

  // CSR-driven candidate enumeration: when the per-node position lists say
  // few tail edges touch the mapped nodes, gather exactly those positions
  // from the incidence spans instead of scanning the whole tail. The
  // gathered set, sorted ascending, is precisely the positions the linear
  // scan would have accepted, in the same order — candidate streams (and
  // therefore run first-encounter order and ranked output) are identical
  // either way, so the cutover is purely a cost decision.
  std::vector<EdgePos> incident;
  bool incident_acquired = false;

  for (const Embedding& emb : ge.embeds) {
    if (use_node_slot) {
      for (std::size_t i = 0; i < emb.nodes.size(); ++i) {
        node_slot[static_cast<std::size_t>(emb.nodes[i])] =
            static_cast<NodeId>(i);
      }
    }
    auto process = [&](std::size_t p) {
      const TemporalEdge& e = edges[p];
      NodeId u = use_node_slot
                     ? node_slot[static_cast<std::size_t>(e.src)]
                     : FindMappedNode(emb.nodes, e.src);
      NodeId v = use_node_slot
                     ? node_slot[static_cast<std::size_t>(e.dst)]
                     : FindMappedNode(emb.nodes, e.dst);
      if (u == kNewNode && v == kNewNode) return;  // not T-connected
      ExtensionKey key;
      key.src = u;
      key.dst = v;
      key.src_label = g.label(e.src);
      key.dst_label = g.label(e.dst);
      key.elabel = e.elabel;
      Embedding& child = out[find_run(key)].embeds.emplace_back();
      child.nodes = emb.nodes;
      if (u == kNewNode) child.nodes.push_back(e.src);
      if (v == kNewNode) child.nodes.push_back(e.dst);
      child.last = static_cast<EdgePos>(p);
    };

    // Incident tail-edge estimate from the CSR spans. Edges joining two
    // mapped nodes are counted twice (once per endpoint) — acceptable for
    // a cost estimate, deduplicated in the gather below. Short tails are
    // exempt outright — a linear scan of a few dozen edges beats any
    // amount of per-node bookkeeping — and the loop bails as soon as the
    // estimate disqualifies the gather, so dense embeddings pay at most
    // one or two binary searches, not one per mapped node.
    constexpr std::size_t kCsrGatherMinTail = 64;
    const std::size_t tail_len =
        edges.size() - static_cast<std::size_t>(emb.last) - 1;
    std::size_t incident_estimate = tail_len < kCsrGatherMinTail ? tail_len : 0;
    for (std::size_t i = 0;
         i < emb.nodes.size() && 2 * incident_estimate < tail_len; ++i) {
      incident_estimate += TailSuffixCount(g.out_edges(emb.nodes[i]), emb.last);
      incident_estimate += TailSuffixCount(g.in_edges(emb.nodes[i]), emb.last);
    }
    if (2 * incident_estimate < tail_len) {
      if (!incident_acquired) {
        incident = ScratchPool<EdgePos>::Acquire();
        incident_acquired = true;
      }
      incident.clear();
      for (std::size_t i = 0; i < emb.nodes.size(); ++i) {
        for (EdgePosSpan span :
             {g.out_edges(emb.nodes[i]), g.in_edges(emb.nodes[i])}) {
          auto it = std::upper_bound(span.begin(), span.end(), emb.last);
          incident.insert(incident.end(), it, span.end());
        }
      }
      std::sort(incident.begin(), incident.end());
      incident.erase(std::unique(incident.begin(), incident.end()),
                     incident.end());
      for (EdgePos p : incident) process(static_cast<std::size_t>(p));
    } else {
      for (std::size_t p = static_cast<std::size_t>(emb.last) + 1;
           p < edges.size(); ++p) {
        process(p);
      }
    }
    if (use_node_slot) {
      for (std::size_t i = 0; i < emb.nodes.size(); ++i) {
        node_slot[static_cast<std::size_t>(emb.nodes[i])] = kNewNode;
      }
    }
  }
  if (incident_acquired) ScratchPool<EdgePos>::Release(std::move(incident));
  if (use_node_slot) ScratchPool<NodeId>::Release(std::move(node_slot));
}

void Miner::CollectExtensions(StealScheduler* pool, const EmbeddingTable& table,
                              const std::vector<const TemporalGraph*>& graphs,
                              bool positive_side,
                              std::vector<KeyedEmbeds>& out) const {
  std::size_t first = out.size();
  if (pool != nullptr && table.size() > 1 &&
      static_cast<std::int64_t>(CountEmbeddings(table)) >=
          config_.parallel_min_embeddings) {
    // Each graph's contribution is computed independently in parallel and
    // appended in ascending graph order — the exact order the serial loop
    // visits graphs — so `out` is identical for every thread count.
    std::vector<std::vector<KeyedEmbeds>> per_graph(table.size());
    ParallelFor(pool, table.size(), [&](std::size_t i) {
      const GraphEmbeddings& ge = table[i];
      CollectGraphExtensions(ge, *graphs[static_cast<std::size_t>(ge.graph)],
                             per_graph[i]);
    });
    for (std::vector<KeyedEmbeds>& runs : per_graph) {
      for (KeyedEmbeds& run : runs) out.push_back(std::move(run));
    }
  } else {
    for (const GraphEmbeddings& ge : table) {
      CollectGraphExtensions(ge, *graphs[static_cast<std::size_t>(ge.graph)],
                             out);
    }
  }
  for (std::size_t i = first; i < out.size(); ++i) {
    out[i].positive = positive_side;
  }
}

std::vector<Miner::ChildWork> Miner::BuildChildren(
    std::vector<KeyedEmbeds>& runs) const {
  // Merge the runs into per-key buckets through a second open-addressing
  // key -> child view. The runs arrive positive side first, graphs
  // ascending within each side (CollectExtensions appends them that way for
  // every thread count), so appending each run to its child in arrival
  // order reproduces the exact per-key bucket layout the seed built by
  // inserting into a std::map — without comparison-sorting the whole run
  // list. Only the small distinct-key children list is sorted, which also
  // erases the hash-driven first-encounter order. The vector itself is
  // pooled: every DFS level builds one, so callers release it (after
  // recycling any leftover bucket tables) when the level unwinds.
  std::vector<ChildWork> children = ScratchPool<ChildWork>::Acquire();
  HybridKeyIndex child_index(
      0, [](const ExtensionKey& key) { return HashKey(key); },
      [&children](std::size_t i) -> const ExtensionKey& {
        return children[i].key;
      });
  for (KeyedEmbeds& run : runs) {
    std::size_t idx = child_index.Find(run.key, children.size());
    if (idx == kKeyIndexNotFound) {
      idx = children.size();
      children.emplace_back().key = run.key;
      child_index.Inserted(idx);
    }
    ChildWork& child = children[idx];
    EmbeddingTable& side = run.positive ? child.buckets.pos
                                        : child.buckets.neg;
    if (side.capacity() == 0) side = ScratchPool<GraphEmbeddings>::Acquire();
    side.push_back(GraphEmbeddings{run.graph, std::move(run.embeds)});
  }
  std::sort(children.begin(), children.end(),
            [](const ChildWork& a, const ChildWork& b) {
              return a.key < b.key;
            });
  for (ChildWork& work : children) {
    double fp = static_cast<double>(work.buckets.pos.size()) /
                static_cast<double>(pos_graphs_.size());
    double fn = static_cast<double>(work.buckets.neg.size()) /
                static_cast<double>(neg_graphs_.size());
    work.score = score_(fp, fn);
  }
  if (config_.order_children_by_score) {
    std::stable_sort(children.begin(), children.end(),
                     [](const ChildWork& a, const ChildWork& b) {
                       return a.score > b.score;
                     });
  }
  return children;
}

ResidualSet Miner::BuildResidual(
    const EmbeddingTable& table,
    const std::vector<const TemporalGraph*>& graphs) const {
  std::vector<std::pair<std::int32_t, EdgePos>> cuts;
  for (const GraphEmbeddings& ge : table) {
    for (const Embedding& emb : ge.embeds) {
      cuts.emplace_back(ge.graph, emb.last);
    }
  }
  return ResidualSet(std::move(cuts), graphs);
}

Pattern Miner::Grow(const Pattern& parent, const ExtensionKey& key) const {
  if (key.src != kNewNode && key.dst != kNewNode) {
    return parent.GrowInward(key.src, key.dst, key.elabel);
  }
  if (key.src != kNewNode) {
    return parent.GrowForward(key.src, key.dst_label, key.elabel);
  }
  TGM_DCHECK(key.dst != kNewNode);
  return parent.GrowBackward(key.src_label, key.dst, key.elabel);
}

void Miner::UpdateTop(WorkerState& ws, const Pattern& pattern,
                      double freq_pos, double freq_neg, double score,
                      std::int64_t support_pos, std::int64_t support_neg) {
  if (support_pos == 0) return;  // patterns absent from Gp are never queries
  // The support floor is a hard constraint on results as well as on
  // expansion: a pattern occurring in a minority of the behaviour's runs is
  // run-specific noise, not a behaviour signature, no matter its score.
  if (freq_pos < config_.min_pos_freq) return;
  ws.best_score = std::max(ws.best_score, score);
  if (static_cast<int>(ws.top.size()) >= config_.top_k &&
      score <= ws.top.back().score) {
    return;
  }
  MinedPattern mined;
  mined.pattern = pattern;
  mined.freq_pos = freq_pos;
  mined.freq_neg = freq_neg;
  mined.score = score;
  mined.support_pos = support_pos;
  mined.support_neg = support_neg;
  // Insert keeping descending score order, stable for equal scores.
  auto it = std::upper_bound(ws.top.begin(), ws.top.end(), mined,
                             [](const MinedPattern& a, const MinedPattern& b) {
                               return a.score > b.score;
                             });
  ws.top.insert(it, mined);
  if (static_cast<int>(ws.top.size()) > config_.top_k) ws.top.pop_back();
  // Log the insertion for the commit replay; entries later displaced from
  // ws.top stay in the log and are re-gated (and then dropped) at commit.
  ws.inserts.push_back(std::move(mined));
}

void Miner::CommitTopEntry(MinedPattern mined) {
  if (static_cast<int>(top_.size()) >= config_.top_k &&
      mined.score <= top_.back().score) {
    return;
  }
  auto it = std::upper_bound(top_.begin(), top_.end(), mined,
                             [](const MinedPattern& a, const MinedPattern& b) {
                               return a.score > b.score;
                             });
  top_.insert(it, std::move(mined));
  if (static_cast<int>(top_.size()) > config_.top_k) top_.pop_back();
}

std::int64_t Miner::CollectPruneCandidates(
    const WorkerState& ws, std::int64_t pos_i_value,
    const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
    std::vector<PruneCandidate>& out) const {
  // Same committed-then-local order and counting as ForEachCandidate, but
  // into a materialized list: cum_equiv_tests snapshots the counter at each
  // candidate so an early-exit scan's charges can be replayed afterwards.
  std::int64_t equiv_tests = 0;
  auto sink = [&](const PatternRegistry::CandidateMeta& meta,
                  const RegisteredPattern& entry) {
    out.push_back(PruneCandidate{&meta, &entry, equiv_tests});
    return true;
  };
  ws.committed->ForEachPosCandidate(pos_i_value, pos_cuts, &equiv_tests, sink);
  ws.local.ForEachPosCandidate(pos_i_value, pos_cuts, &equiv_tests, sink);
  return equiv_tests;
}

std::unique_ptr<TemporalSubgraphTester> Miner::AcquireLaneTester() {
  {
    MutexLock lock(lane_tester_mu_);
    if (!lane_testers_.empty()) {
      std::unique_ptr<TemporalSubgraphTester> tester =
          std::move(lane_testers_.back());
      lane_testers_.pop_back();
      return tester;
    }
  }
  return MakeTester(config_.subgraph_algo);
}

void Miner::ReleaseLaneTester(std::unique_ptr<TemporalSubgraphTester> tester) {
  MutexLock lock(lane_tester_mu_);
  lane_testers_.push_back(std::move(tester));
}

std::size_t Miner::FanOutFirstTrigger(
    StealScheduler* pool, std::size_t n,
    const std::function<bool(std::size_t, TemporalSubgraphTester&)>& test) {
  // Chunk boundaries are a pure function of (n, workers) — never of
  // timing — and each chunk borrows one tester for its whole range, so
  // the memoizing testers see runs of candidates instead of singletons.
  //
  // `first_trigger` holds the smallest index that triggered so far. It
  // only ever decreases, so any lane it causes to be skipped lies past
  // the final value — exactly the lanes a serial early-exit scan never
  // reaches — and every index below the final value was tested. The
  // returned index therefore equals the serial stop for every schedule.
  const std::size_t chunks =
      std::min(n, (static_cast<std::size_t>(pool->num_workers()) + 1) * 2);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  auto chunk_begin = [base, rem](std::size_t c) {
    return c * base + std::min(c, rem);
  };
  std::atomic<std::size_t> first_trigger{n};
  auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = chunk_begin(c);
    const std::size_t end = chunk_begin(c + 1);
    if (begin > first_trigger.load(std::memory_order_acquire)) return;
    std::unique_ptr<TemporalSubgraphTester> tester = AcquireLaneTester();
    for (std::size_t s = begin; s < end; ++s) {
      if (s > first_trigger.load(std::memory_order_acquire)) break;
      if (test(s, *tester)) {
        std::size_t cur = first_trigger.load(std::memory_order_acquire);
        while (s < cur && !first_trigger.compare_exchange_weak(
                              cur, s, std::memory_order_acq_rel)) {
        }
        break;  // later indices in this chunk are past the trigger
      }
    }
    ReleaseLaneTester(std::move(tester));
  };
  TaskGroup group(pool);
  for (std::size_t c = 1; c < chunks; ++c) {
    group.Run([&run_chunk, c] { run_chunk(c); });
  }
  run_chunk(0);
  group.Wait();
  return first_trigger.load(std::memory_order_acquire);
}

bool Miner::TrySubgraphPrune(WorkerState& ws, const Pattern& pattern,
                             const ResidualSet& pos_res,
                             double* inherited_bound) {
  if (ws.pool != nullptr && ws.pool->num_workers() > 0 &&
      static_cast<std::int64_t>(
          ws.committed->PosCandidateCountBound(pos_res.i_value()) +
          ws.local.PosCandidateCountBound(pos_res.i_value())) >=
          std::max<std::int64_t>(2, config_.parallel_min_prune_candidates)) {
    // Pooled pass: materialize the candidate stream, apply the cheap gates
    // serially in candidate order, fan the expensive mapping tests out,
    // then charge the counters exactly as the serial early-exit scan would
    // have — so search-shape stats stay bit-identical to a serial run.
    // With no workers the streaming path below is strictly cheaper (it
    // stops enumerating at the first trigger), so this pass requires a
    // pool that can actually overlap the tests — and a candidate bucket at
    // least the fan-out floor deep, checked on the O(1) count bound so the
    // (common) shallow passes never pay for materialization at all.
    std::vector<PruneCandidate> cands;
    const std::int64_t total_equiv =
        CollectPruneCandidates(ws, pos_res.i_value(), pos_res.cuts(), cands);
    std::vector<std::size_t> survivors;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const PatternRegistry::CandidateMeta& meta = *cands[c].meta;
      if (config_.check_reference_score_first &&
          meta.branch_best >= ws.best_score) {
        continue;
      }
      if (static_cast<std::int32_t>(pattern.edge_count()) > meta.edge_count) {
        continue;
      }
      survivors.push_back(c);
    }

    // The verdict for one survivor — the serial lambda body after its
    // gates: a mapping exists, condition (3) holds, and the reference
    // branch's best stays below the current best. A pure function of the
    // candidate (ws.best_score is constant for the whole pass).
    auto test_survivor = [&](std::size_t s, TemporalSubgraphTester& tester,
                             std::vector<char>& mapped) {
      const PruneCandidate& cand = cands[survivors[s]];
      auto mapping = tester.FindMapping(pattern, cand.entry->pattern);
      if (!mapping.has_value()) return false;
      mapped.assign(static_cast<std::size_t>(cand.meta->node_count), 0);
      for (NodeId target : *mapping) {
        mapped[static_cast<std::size_t>(target)] = 1;
      }
      for (std::size_t v = 0; v < mapped.size(); ++v) {
        if (mapped[v] != 0) continue;
        LabelId l = cand.entry->pattern.label(static_cast<NodeId>(v));
        if (pos_res.ResidualLabelSetContains(l, pos_graphs_)) return false;
      }
      return cand.meta->branch_best < ws.best_score;
    };

    std::size_t stop_s = survivors.size();
    if (static_cast<std::int64_t>(survivors.size()) >=
        std::max<std::int64_t>(2, config_.parallel_min_prune_candidates)) {
      stop_s = FanOutFirstTrigger(
          ws.pool, survivors.size(),
          [&](std::size_t s, TemporalSubgraphTester& tester) {
            std::vector<char> mapped = ScratchPool<char>::Acquire();
            const bool hit = test_survivor(s, tester, mapped);
            ScratchPool<char>::Release(std::move(mapped));
            return hit;
          });
    } else {
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        if (test_survivor(s, *ws.tester, ws.mapped_scratch)) {
          stop_s = s;
          break;
        }
      }
    }

    // Counter replay: a serial scan stopping at the triggering candidate
    // charges its cumulative enumeration count and one subgraph test per
    // survivor reached; a full scan charges the totals. Tests the fan-out
    // ran beyond the stop index are speculative waste, never stats.
    const bool pruned = stop_s < survivors.size();
    if (pruned) {
      const PruneCandidate& cand = cands[survivors[stop_s]];
      ws.stats.residual_equiv_tests += cand.cum_equiv_tests;
      ws.stats.subgraph_tests += static_cast<std::int64_t>(stop_s) + 1;
      *inherited_bound = cand.meta->branch_best;
    } else {
      ws.stats.residual_equiv_tests += total_equiv;
      ws.stats.subgraph_tests += static_cast<std::int64_t>(survivors.size());
    }
    return pruned;
  }

  bool pruned = false;
  ForEachCandidate(
      ws, pos_res.i_value(), pos_res.cuts(), &ws.stats.residual_equiv_tests,
      [&](const PatternRegistry::CandidateMeta& meta,
          const RegisteredPattern& g1) {
        // Optional eager gate: only a reference branch that never reached
        // the current best score can justify pruning (Lemma 4), so a
        // practical implementation may skip the tests outright.
        if (config_.check_reference_score_first &&
            meta.branch_best >= ws.best_score) {
          return true;
        }
        if (static_cast<std::int32_t>(pattern.edge_count()) >
            meta.edge_count) {
          return true;
        }
        ++ws.stats.subgraph_tests;
        auto mapping = ws.tester->FindMapping(pattern, g1.pattern);
        if (!mapping.has_value()) return true;
        // Condition (3): labels of g1 nodes that no node of the current
        // pattern maps to must not occur in the current pattern's positive
        // residual node label set. The mark buffer lives in the worker so
        // this per-candidate check does not allocate.
        std::vector<char>& mapped = ws.mapped_scratch;
        mapped.assign(static_cast<std::size_t>(meta.node_count), 0);
        for (NodeId target : *mapping) {
          mapped[static_cast<std::size_t>(target)] = 1;
        }
        for (std::size_t v = 0; v < mapped.size(); ++v) {
          if (mapped[v] != 0) continue;
          LabelId l = g1.pattern.label(static_cast<NodeId>(v));
          if (pos_res.ResidualLabelSetContains(l, pos_graphs_)) return true;
        }
        // The prune itself is gated on the reference branch's best score
        // (checked last in the paper's order).
        if (meta.branch_best >= ws.best_score) return true;
        pruned = true;
        *inherited_bound = meta.branch_best;
        return false;
      });
  return pruned;
}

bool Miner::TrySupergraphPrune(WorkerState& ws, const Pattern& pattern,
                               const ResidualSet& pos_res,
                               const ResidualSet& neg_res,
                               double* inherited_bound) {
  if (ws.pool != nullptr && ws.pool->num_workers() > 0 &&
      static_cast<std::int64_t>(
          ws.committed->PosCandidateCountBound(pos_res.i_value()) +
          ws.local.PosCandidateCountBound(pos_res.i_value())) >=
          std::max<std::int64_t>(2, config_.parallel_min_prune_candidates)) {
    // Pooled pass, mirroring TrySubgraphPrune (including its O(1)
    // count-bound gate above). The neg-residual
    // equivalence check is cheap, so it stays in the serial gate phase;
    // `extra` replays its per-candidate counter increment (the serial path
    // charges one residual_equiv_tests per candidate that reaches the
    // check, before knowing the outcome).
    std::vector<PruneCandidate> cands;
    const std::int64_t total_equiv =
        CollectPruneCandidates(ws, pos_res.i_value(), pos_res.cuts(), cands);
    std::vector<std::size_t> survivors;
    std::vector<std::int64_t> survivor_extra;
    std::int64_t extra = 0;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const PatternRegistry::CandidateMeta& meta = *cands[c].meta;
      if (config_.check_reference_score_first &&
          meta.branch_best >= ws.best_score) {
        continue;
      }
      if (meta.node_count != static_cast<std::int32_t>(pattern.node_count())) {
        continue;
      }
      if (meta.edge_count > static_cast<std::int32_t>(pattern.edge_count())) {
        continue;
      }
      ++extra;
      if (ws.local.algo() == ResidualEquivAlgo::kIValue) {
        if (meta.neg_i_value != neg_res.i_value()) continue;
      } else {
        if (cands[c].entry->neg_cuts != neg_res.cuts()) continue;
      }
      survivors.push_back(c);
      survivor_extra.push_back(extra);
    }

    auto test_survivor = [&](std::size_t s, TemporalSubgraphTester& tester) {
      const PruneCandidate& cand = cands[survivors[s]];
      if (!tester.Contains(cand.entry->pattern, pattern)) return false;
      return cand.meta->branch_best < ws.best_score;
    };

    std::size_t stop_s = survivors.size();
    if (static_cast<std::int64_t>(survivors.size()) >=
        std::max<std::int64_t>(2, config_.parallel_min_prune_candidates)) {
      stop_s = FanOutFirstTrigger(
          ws.pool, survivors.size(),
          [&](std::size_t s, TemporalSubgraphTester& tester) {
            return test_survivor(s, tester);
          });
    } else {
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        if (test_survivor(s, *ws.tester)) {
          stop_s = s;
          break;
        }
      }
    }

    const bool pruned = stop_s < survivors.size();
    if (pruned) {
      const PruneCandidate& cand = cands[survivors[stop_s]];
      ws.stats.residual_equiv_tests +=
          cand.cum_equiv_tests + survivor_extra[stop_s];
      ws.stats.subgraph_tests += static_cast<std::int64_t>(stop_s) + 1;
      *inherited_bound = cand.meta->branch_best;
    } else {
      ws.stats.residual_equiv_tests += total_equiv + extra;
      ws.stats.subgraph_tests += static_cast<std::int64_t>(survivors.size());
    }
    return pruned;
  }

  bool pruned = false;
  ForEachCandidate(
      ws, pos_res.i_value(), pos_res.cuts(), &ws.stats.residual_equiv_tests,
      [&](const PatternRegistry::CandidateMeta& meta,
          const RegisteredPattern& g1) {
        if (config_.check_reference_score_first &&
            meta.branch_best >= ws.best_score) {
          return true;
        }
        if (meta.node_count !=
            static_cast<std::int32_t>(pattern.node_count())) {
          return true;
        }
        if (meta.edge_count >
            static_cast<std::int32_t>(pattern.edge_count())) {
          return true;
        }
        // Negative residual sets must match as well.
        ++ws.stats.residual_equiv_tests;
        if (ws.local.algo() == ResidualEquivAlgo::kIValue) {
          if (meta.neg_i_value != neg_res.i_value()) return true;
        } else {
          if (g1.neg_cuts != neg_res.cuts()) return true;
        }
        ++ws.stats.subgraph_tests;
        if (!ws.tester->Contains(g1.pattern, pattern)) return true;
        if (meta.branch_best >= ws.best_score) return true;
        pruned = true;
        *inherited_bound = meta.branch_best;
        return false;
      });
  return pruned;
}

void Miner::RegisterEntry(WorkerState& ws, const Pattern& pattern,
                          const ResidualSet& pos_res,
                          const ResidualSet& neg_res, double branch_best) {
  RegisteredPattern entry;
  entry.pattern = pattern;
  entry.pos_i_value = pos_res.i_value();
  entry.neg_i_value = neg_res.i_value();
  entry.node_count = static_cast<std::int32_t>(pattern.node_count());
  entry.edge_count = static_cast<std::int32_t>(pattern.edge_count());
  entry.branch_best = branch_best;
  // The cut lists are only consulted (and kept) by the kLinearScan
  // ablation; the I-value path compares the integer compression, so the
  // copies would be made and immediately discarded.
  if (ws.local.algo() == ResidualEquivAlgo::kLinearScan) {
    entry.pos_cuts = pos_res.cuts();
    entry.neg_cuts = neg_res.cuts();
  }
  ws.local.Add(std::move(entry));
}

double Miner::Dfs(WorkerState& ws, const Pattern& pattern,
                  EmbeddingTable& pos_table, EmbeddingTable& neg_table) {
  ++ws.stats.patterns_visited;

  std::int64_t support_pos = static_cast<std::int64_t>(pos_table.size());
  std::int64_t support_neg = static_cast<std::int64_t>(neg_table.size());
  double freq_pos = static_cast<double>(support_pos) /
                    static_cast<double>(pos_graphs_.size());
  double freq_neg = static_cast<double>(support_neg) /
                    static_cast<double>(neg_graphs_.size());
  double own_score = score_(freq_pos, freq_neg);
  UpdateTop(ws, pattern, freq_pos, freq_neg, own_score, support_pos,
            support_neg);

  if (static_cast<int>(pattern.edge_count()) >= config_.max_edges) {
    return own_score;
  }
  if (BudgetExhausted(ws)) return own_score;
  if (config_.use_naive_bound && support_pos == 0) {
    // F(0, y) is the global minimum and frequency is anti-monotone: every
    // supergraph also has zero positive support. This is the degenerate
    // case of the Section 4.1 bound.
    ++ws.stats.naive_prunes;
    return own_score;
  }
  if (config_.use_naive_bound &&
      score_.UpperBound(freq_pos) < ws.best_score) {
    ++ws.stats.naive_prunes;
    return own_score;
  }
  if (config_.stop_at_top_k_ties &&
      static_cast<int>(ws.top.size()) >= config_.top_k &&
      score_.UpperBound(freq_pos) <= ws.top.back().score) {
    ++ws.stats.naive_prunes;
    return own_score;
  }
  if (freq_pos < config_.min_pos_freq) {
    return own_score;
  }

  // Residual sets for the two sides are independent pure functions of
  // their tables, so with a pool (and enough embeddings to amortize a
  // task) the negative side builds as a stealable sub-task while this
  // thread builds the positive side. ResidualSet has no default
  // constructor, hence the optionals.
  std::optional<ResidualSet> pos_res_opt;
  std::optional<ResidualSet> neg_res_opt;
  if (ws.pool != nullptr &&
      static_cast<std::int64_t>(CountEmbeddings(pos_table) +
                                CountEmbeddings(neg_table)) >=
          config_.parallel_min_embeddings) {
    TaskGroup residual_group(ws.pool);
    residual_group.Run(
        [&] { neg_res_opt.emplace(BuildResidual(neg_table, neg_graphs_)); });
    pos_res_opt.emplace(BuildResidual(pos_table, pos_graphs_));
    residual_group.Wait();
  } else {
    pos_res_opt.emplace(BuildResidual(pos_table, pos_graphs_));
    neg_res_opt.emplace(BuildResidual(neg_table, neg_graphs_));
  }
  const ResidualSet& pos_res = *pos_res_opt;
  const ResidualSet& neg_res = *neg_res_opt;

  double inherited = 0.0;
  if (config_.use_subgraph_pruning &&
      TrySubgraphPrune(ws, pattern, pos_res, &inherited)) {
    ++ws.stats.subgraph_prune_triggers;
    RegisterEntry(ws, pattern, pos_res, neg_res, inherited);
    return std::max(own_score, inherited);
  }
  if (config_.use_supergraph_pruning &&
      TrySupergraphPrune(ws, pattern, pos_res, neg_res, &inherited)) {
    ++ws.stats.supergraph_prune_triggers;
    RegisterEntry(ws, pattern, pos_res, neg_res, inherited);
    return std::max(own_score, inherited);
  }

  ++ws.stats.patterns_expanded;
  std::vector<KeyedEmbeds> runs = ScratchPool<KeyedEmbeds>::Acquire();
  CollectExtensions(ws.pool, pos_table, pos_graphs_, /*positive_side=*/true,
                    runs);
  CollectExtensions(ws.pool, neg_table, neg_graphs_, /*positive_side=*/false,
                    runs);
  // The parent's embeddings have been copied into the child streams;
  // recycle the buffers for the levels below.
  ReleaseTable(pos_table);
  ReleaseTable(neg_table);

  std::vector<ChildWork> children = BuildChildren(runs);
  ScratchPool<KeyedEmbeds>::Release(std::move(runs));

  // With a pool, per-graph embedding evaluation for every child happens up
  // front, in parallel across (child, graph) units; the recursion below
  // then visits children in the exact serial order with all pruning state
  // sequential. Serial runs keep the seed's lazy per-child dedupe so a
  // budget break skips the work for children that are never visited (the
  // parallel pre-pass may therefore count cap hits for unvisited children
  // on budget-truncated runs; ranked results are unaffected).
  const bool prededuped = ws.pool != nullptr && !BudgetExhausted(ws);
  if (prededuped) {
    std::vector<EmbeddingTable*> child_tables;
    child_tables.reserve(children.size() * 2);
    for (ChildWork& child : children) {
      child_tables.push_back(&child.buckets.pos);
      child_tables.push_back(&child.buckets.neg);
    }
    DedupeAndCapAll(ws.pool, child_tables, &ws.stats.embedding_cap_hits);
  }

  double branch_best = own_score;
  for (ChildWork& child : children) {
    Pattern grown = Grow(pattern, child.key);
    if (!prededuped) {
      ws.stats.embedding_cap_hits += DedupeAndCap(child.buckets.pos);
      ws.stats.embedding_cap_hits += DedupeAndCap(child.buckets.neg);
    }
    double sub = Dfs(ws, grown, child.buckets.pos, child.buckets.neg);
    // Paths that return before expanding leave their tables populated;
    // recycle them here so every level reuses warmed buffers.
    ReleaseTable(child.buckets.pos);
    ReleaseTable(child.buckets.neg);
    branch_best = std::max(branch_best, sub);
    if (BudgetExhausted(ws)) break;
  }

  // Recycle before returning the pooled children vector: a budget break
  // leaves unvisited children's tables populated, and Release would
  // destroy (not pool) the nested buffers. Already-released tables are
  // empty, so the sweep is idempotent.
  for (ChildWork& child : children) {
    ReleaseTable(child.buckets.pos);
    ReleaseTable(child.buckets.neg);
  }
  children.clear();
  ScratchPool<ChildWork>::Release(std::move(children));

  RegisterEntry(ws, pattern, pos_res, neg_res, branch_best);
  return branch_best;
}

bool Miner::BudgetExhausted(WorkerState& ws) {
  if (config_.max_visited > 0 &&
      ws.committed_visited + ws.stats.patterns_visited >=
          config_.max_visited) {
    // Unlike a wall-clock cut this one is reported (visit_cap_hit) AND
    // deterministic: committed + own visits depend only on root indices,
    // never on timing, so capped searches rank identically for every
    // thread count (subtrees in the same batch each stop against their own
    // count, so the summed total may overshoot max_visited by at most the
    // in-flight batch).
    ws.stats.visit_cap_hit = true;
    return true;
  }
  if (config_.max_millis > 0) {
    if (ws.stats.timed_out) return true;
    if (timed_out_.load(std::memory_order_relaxed)) {
      ws.stats.timed_out = true;
      return true;
    }
    // Amortize the clock read on the *call* count, not the visit count: a
    // visit-count trigger never fires while patterns_visited stalls
    // between calls (deep unwinds, one pattern doing unbounded embedding
    // work), and calls happen at least once per visit, so counting calls
    // bounds the staleness in both regimes.
    if ((++ws.budget_calls & 63) == 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
      if (elapsed >= config_.max_millis) {
        timed_out_.store(true, std::memory_order_relaxed);
        ws.stats.timed_out = true;
        return true;
      }
    }
  }
  return false;
}

std::size_t Miner::ResolveRootBatch(std::size_t root_count) const {
  if (config_.root_batch != 0) {
    // Explicit settings pass through (negatives clamp to the serial 1, as
    // before the sentinel existed).
    return static_cast<std::size_t>(std::max(config_.root_batch, 1));
  }
  const std::size_t threads =
      pool_ != nullptr ? static_cast<std::size_t>(pool_->num_workers()) + 1
                       : 1;
  if (threads <= 1 || root_count <= 1) return 1;
  // Adaptive sizing trades pruning context for parallelism: subtrees in
  // one batch cannot prune against each other, and measured pruning loss
  // grows with batch size (see bench/BM_MineParallel root_batch=0 rows).
  // A few batch rounds (~4) keep the loss bounded while oversubscribing
  // each round (up to 4 roots per thread) so steals can level skew.
  const std::size_t batch =
      std::min(4 * threads, std::max(threads, root_count / 4));
  return std::max<std::size_t>(batch, 1);
}

Miner::WorkerState Miner::MakeWorker(std::size_t batch_size) {
  WorkerState ws(config_.residual_algo);
  ws.committed = &registry_;
  ws.top = top_;
  ws.best_score = best_score_;
  ws.committed_visited = stats_.patterns_visited;
  // Every worker drives the inner-loop scheduler: its helping joins make
  // nested parallel regions inside subtree tasks safe, so concurrent
  // subtrees simply share the steal pool.
  ws.pool = pool_.get();
  if (batch_size <= 1) {
    // Nothing runs concurrently with a single-subtree batch, so the worker
    // may share the miner's memoizing tester (keeping the serial search's
    // warm memo across roots).
    ws.tester = tester_.get();
  } else {
    ws.owned_tester = MakeTester(config_.subgraph_algo);
    ws.tester = ws.owned_tester.get();
  }
  return ws;
}

void Miner::CommitWorker(WorkerState& ws) {
  stats_.MergeFrom(ws.stats);
  best_score_ = std::max(best_score_, ws.best_score);
  for (MinedPattern& mined : ws.inserts) CommitTopEntry(std::move(mined));
  registry_.Absorb(std::move(ws.local));
}

bool Miner::CommittedBudgetExhausted() {
  if (config_.max_visited > 0 &&
      stats_.patterns_visited >= config_.max_visited) {
    stats_.visit_cap_hit = true;
    return true;
  }
  if (config_.max_millis > 0) {
    if (!timed_out_.load(std::memory_order_relaxed)) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
      if (elapsed >= config_.max_millis) {
        timed_out_.store(true, std::memory_order_relaxed);
      }
    }
    if (timed_out_.load(std::memory_order_relaxed)) {
      stats_.timed_out = true;
      return true;
    }
  }
  return false;
}

MineResult Miner::Mine() {
  start_time_ = std::chrono::steady_clock::now();
  auto start = start_time_;
  // Reset the committed state so repeated Mine() calls are independent.
  registry_ = PatternRegistry(config_.residual_algo);
  stats_ = MinerStats{};
  top_.clear();
  best_score_ = -std::numeric_limits<double>::infinity();
  timed_out_.store(false, std::memory_order_relaxed);

  // Root level: bucket every data edge into a one-edge pattern. A root is
  // an extension whose endpoints are both new, so root buckets flow through
  // the same flat sort-then-group machinery as DFS extensions; ExtensionKey
  // order with src == dst == kNewNode degenerates to the (src label, dst
  // label, edge label) tuple order the seed's root map used.
  std::vector<KeyedEmbeds> runs = ScratchPool<KeyedEmbeds>::Acquire();
  auto scan_side = [&](const std::vector<const TemporalGraph*>& graphs,
                       bool positive) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const TemporalGraph& g = *graphs[gi];
      const auto& edges = g.edges();
      std::vector<FlatExtension> flat = ScratchPool<FlatExtension>::Acquire();
      for (std::size_t p = 0; p < edges.size(); ++p) {
        const TemporalEdge& e = edges[p];
        TGM_CHECK(e.src != e.dst);  // self-loops unsupported by the miner
        FlatExtension& ext = flat.emplace_back();
        ext.key.src = kNewNode;
        ext.key.dst = kNewNode;
        ext.key.src_label = g.label(e.src);
        ext.key.dst_label = g.label(e.dst);
        ext.key.elabel = e.elabel;
        ext.seq = static_cast<std::int32_t>(flat.size() - 1);
        ext.emb.nodes = {e.src, e.dst};
        ext.emb.last = static_cast<EdgePos>(p);
      }
      std::sort(flat.begin(), flat.end(),
                [](const FlatExtension& a, const FlatExtension& b) {
                  if (a.key != b.key) return a.key < b.key;
                  return a.seq < b.seq;
                });
      std::size_t i = 0;
      while (i < flat.size()) {
        KeyedEmbeds run;
        run.key = flat[i].key;
        run.graph = static_cast<std::int32_t>(gi);
        run.positive = positive;
        run.embeds = ScratchPool<Embedding>::Acquire();
        std::size_t j = i;
        while (j < flat.size() && flat[j].key == run.key) {
          run.embeds.push_back(std::move(flat[j].emb));
          ++j;
        }
        runs.push_back(std::move(run));
        i = j;
      }
      ScratchPool<FlatExtension>::Release(std::move(flat));
    }
  };
  scan_side(pos_graphs_, true);
  scan_side(neg_graphs_, false);

  std::vector<ChildWork> work = BuildChildren(runs);
  ScratchPool<KeyedEmbeds>::Release(std::move(runs));

  // Root subtrees are mined in batches of stealable tasks — one task per
  // root, so a worker that finishes an easy subtree takes a pending one
  // instead of the batch joining on its slowest member. Every subtree in a
  // batch runs against the same read-only committed snapshot (registry,
  // top-k, best score, visit count) on its own WorkerState, then the
  // workers are committed in ascending root-bucket order — so the search
  // is a pure function of (inputs, root_batch), independent of thread
  // count, steal order, and scheduling. With root_batch == 1 (the default)
  // each snapshot holds every earlier root and the search is exactly the
  // serial DFS dispatch, including the inner-loop pool use.
  const std::size_t batch_size = ResolveRootBatch(work.size());
  for (std::size_t begin = 0; begin < work.size(); begin += batch_size) {
    // Budget check between batches (the first batch always runs, as the
    // serial dispatch always mined at least one root).
    if (begin > 0 && CommittedBudgetExhausted()) break;
    const std::size_t n = std::min(batch_size, work.size() - begin);

    // Root-bucket preparation for this batch, data-parallel across
    // (root, graph) units when pooled — never for roots a budget break
    // would leave unvisited.
    std::vector<EmbeddingTable*> root_tables;
    root_tables.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      root_tables.push_back(&work[begin + i].buckets.pos);
      root_tables.push_back(&work[begin + i].buckets.neg);
    }
    DedupeAndCapAll(pool_.get(), root_tables, &stats_.embedding_cap_hits);

    std::vector<WorkerState> workers;
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) workers.push_back(MakeWorker(n));

    // One stealable task per root subtree; root 0 runs on this thread and
    // the join helps-steal pending siblings, so single-subtree batches
    // (n == 1) run entirely inline.
    auto mine_root = [&](std::size_t i) {
      WorkerState& ws = workers[i];
      ChildWork& w = work[begin + i];
      Pattern root = Pattern::SingleEdge(w.key.src_label, w.key.dst_label,
                                         w.key.elabel);
      Dfs(ws, root, w.buckets.pos, w.buckets.neg);
      ReleaseTable(w.buckets.pos);
      ReleaseTable(w.buckets.neg);
    };
    {
      TaskGroup batch_group(pool_.get());
      for (std::size_t i = 1; i < n; ++i) {
        batch_group.Run([&mine_root, i] { mine_root(i); });
      }
      mine_root(0);
      batch_group.Wait();
    }
    // The join above quiesces the scheduler, so the batch boundary is
    // where structural audits are cheap and race-free.
    TGM_VALIDATE_INVARIANTS(
        "Miner batch boundary",
        pool_ != nullptr ? pool_->CheckInvariants() : std::string());

    // Deterministic merge: ascending root-bucket index, regardless of
    // which worker (or steal schedule) finished first.
    for (WorkerState& ws : workers) CommitWorker(ws);
  }
  // A budget break can leave later roots unmined with populated buckets;
  // recycle them (released tables are empty, so the sweep is idempotent)
  // before pooling the work vector itself.
  for (ChildWork& w : work) {
    ReleaseTable(w.buckets.pos);
    ReleaseTable(w.buckets.neg);
  }
  work.clear();
  ScratchPool<ChildWork>::Release(std::move(work));

  MineResult result;
  result.top = top_;
  result.best_score = best_score_;
  stats_.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats = stats_;
  return result;
}

}  // namespace tgm
