// Datacenter monitoring — the paper's Example 2.
//
// Nodes are system performance alerts (cpu-high, io-latency, full table
// joins...), edges are triggering dependencies between alerts over time.
// The operator wants a *behaviour query* for "disk failure episode" —
// without hand-specifying how alerts cascade. We mine it from labelled
// episodes: disk failures cascade io-latency -> cpu-high -> query-timeout
// in a fixed temporal order, while workload spikes raise the same alerts
// in a different order.

#include <cstdio>
#include <random>

#include "mining/miner.h"
#include "query/interest.h"
#include "temporal/label_dict.h"

namespace {

using namespace tgm;

// One monitoring episode: a temporal graph of alert dependencies.
TemporalGraph DiskFailureEpisode(LabelDict& dict, std::mt19937_64& rng) {
  TemporalGraph g;
  NodeId smart = g.AddNode(dict.Intern("alert:smart-errors"));
  NodeId io = g.AddNode(dict.Intern("alert:io-latency"));
  NodeId cpu = g.AddNode(dict.Intern("alert:cpu-high"));
  NodeId timeout = g.AddNode(dict.Intern("alert:query-timeout"));
  NodeId replica = g.AddNode(dict.Intern("alert:replica-lag"));
  Timestamp t = 100 + static_cast<Timestamp>(rng() % 50);
  // The failure cascade: SMART errors trigger io latency, io latency
  // triggers cpu pressure and query timeouts, timeouts lag the replicas.
  g.AddEdge(smart, io, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(io, cpu, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(io, timeout, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(timeout, replica, t += 10 + static_cast<Timestamp>(rng() % 20));
  // Unrelated noise alerts fire throughout.
  NodeId gc = g.AddNode(dict.Intern("alert:gc-pause"));
  g.AddEdge(gc, cpu, 100 + static_cast<Timestamp>(rng() % 40));
  g.Finalize();
  return g;
}

TemporalGraph WorkloadSpikeEpisode(LabelDict& dict, std::mt19937_64& rng) {
  TemporalGraph g;
  NodeId joins = g.AddNode(dict.Intern("alert:full-table-joins"));
  NodeId cpu = g.AddNode(dict.Intern("alert:cpu-high"));
  NodeId io = g.AddNode(dict.Intern("alert:io-latency"));
  NodeId timeout = g.AddNode(dict.Intern("alert:query-timeout"));
  NodeId replica = g.AddNode(dict.Intern("alert:replica-lag"));
  Timestamp t = 100 + static_cast<Timestamp>(rng() % 50);
  // A workload spike raises the *same alerts in a different order*: the
  // joins hammer the cpu first, io latency follows the cpu contention.
  g.AddEdge(joins, cpu, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(cpu, timeout, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(cpu, io, t += 10 + static_cast<Timestamp>(rng() % 20));
  g.AddEdge(timeout, replica, t += 10 + static_cast<Timestamp>(rng() % 20));
  NodeId gc = g.AddNode(dict.Intern("alert:gc-pause"));
  g.AddEdge(gc, cpu, 100 + static_cast<Timestamp>(rng() % 40));
  g.Finalize();
  return g;
}

}  // namespace

int main() {
  using namespace tgm;
  LabelDict dict;
  std::mt19937_64 rng(2026);

  std::vector<TemporalGraph> disk_failures;
  std::vector<TemporalGraph> workload_spikes;
  for (int i = 0; i < 20; ++i) {
    disk_failures.push_back(DiskFailureEpisode(dict, rng));
    workload_spikes.push_back(WorkloadSpikeEpisode(dict, rng));
  }

  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 4;
  Miner miner(config, disk_failures, workload_spikes);
  MineResult result = miner.Mine();

  std::printf("disk-failure episodes vs workload spikes: best score %.2f\n",
              result.best_score);
  std::printf("the alert-cascade signature of a disk failure:\n");
  int shown = 0;
  for (const MinedPattern& m : result.top) {
    if (m.score < result.best_score || shown >= 3) break;
    std::printf("  %s\n", m.pattern.ToString(&dict).c_str());
    ++shown;
  }

  // The reverse direction answers "what does a pure workload spike look
  // like" — useful for suppressing false pages.
  Miner reverse(config, workload_spikes, disk_failures);
  MineResult reverse_result = reverse.Mine();
  std::printf("the workload-spike signature (for alert suppression):\n");
  shown = 0;
  for (const MinedPattern& m : reverse_result.top) {
    if (m.score < reverse_result.best_score || shown >= 3) break;
    std::printf("  %s\n", m.pattern.ToString(&dict).c_str());
    ++shown;
  }
  return (result.best_score > 0 && reverse_result.best_score > 0) ? 0 : 1;
}
