file(REMOVE_RECURSE
  "CMakeFiles/parallel_miner_test.dir/parallel_miner_test.cc.o"
  "CMakeFiles/parallel_miner_test.dir/parallel_miner_test.cc.o.d"
  "parallel_miner_test"
  "parallel_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
