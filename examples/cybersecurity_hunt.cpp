// Cybersecurity behaviour hunt — the paper's Example 1 end to end, on the
// tgm::api front door.
//
// A security analyst wants to find every sshd login in a week of syscall
// logs without hand-writing a query over low-level entities. The
// workflow:
//  1. run sshd-login repeatedly in a closed environment (the bundled
//     simulator — just one Session data source),
//  2. Session::Mine its most discriminative temporal patterns against
//     background, ranked with the domain-knowledge interest score,
//  3. persist the BehaviorQuery artifact,
//  4. in a *fresh analyst session*, reload the artifact, ingest the 7-day
//     monitoring log as generic event records, and Session::Search it —
//     every identified login with its time interval, scored against
//     ground truth,
//  5. sharpen the query with timed-automata max-gap guards
//     (QueryConstraintsBuilder) and show the guard eliminating a decoy —
//     the same syscalls as a real login, stretched by one implausibly
//     long pause — that window-only matching cannot reject.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "api/builders.h"
#include "query/pipeline.h"

int main() {
  using namespace tgm;

  PipelineConfig config;
  config.dataset.runs_per_behavior = 12;
  config.dataset.background_graphs = 60;
  config.dataset.test_instances = 60;
  config.dataset.seed = 7;
  config.query_size = 6;
  config.miner.max_millis = 60000;

  Pipeline pipeline(config);
  std::printf("collecting closed-environment syscall logs...\n");
  pipeline.Prepare();

  int sshd_idx = 0;
  while (AllBehaviors()[static_cast<std::size_t>(sshd_idx)] !=
         BehaviorKind::kSshdLogin) {
    ++sshd_idx;
  }

  std::printf("mining discriminative temporal patterns for sshd-login...\n");
  api::MineSpec spec;
  spec.positives = Pipeline::PositivesCorpus(sshd_idx);
  spec.negatives = std::string(Pipeline::kBackgroundCorpus);
  spec.config = pipeline.config().miner;
  spec.config.max_edges = config.query_size;
  spec.interest = &pipeline.interest();
  spec.window = pipeline.WindowFor(sshd_idx);
  StatusOr<api::BehaviorQuery> mined = pipeline.session().Mine(spec);
  if (!mined.ok()) {
    std::printf("mining failed: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("  explored %lld patterns in %.2fs\n",
              static_cast<long long>(mined->provenance().patterns_visited),
              mined->provenance().elapsed_seconds);
  std::printf("behavior query built from %zu top-ranked patterns:\n",
              mined->size());
  for (const MinedPattern& q : mined->patterns()) {
    std::printf("  %s\n", q.pattern.ToString(&pipeline.world().dict()).c_str());
  }

  // Persist the artifact; any future session can run it.
  std::stringstream artifact;
  if (Status saved = pipeline.session().SaveQuery(*mined, artifact);
      !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("persisted the query as a %zu-byte tquery artifact\n",
              artifact.str().size());

  // The analyst's session: fresh dictionary, fresh corpora. The weekly
  // monitoring log arrives as generic event records (entity ids +
  // labels), as from any real audit source.
  api::Session analyst;
  StatusOr<api::BehaviorQuery> query = analyst.LoadQuery(artifact);
  if (!query.ok()) {
    std::printf("load failed: %s\n", query.status().ToString().c_str());
    return 1;
  }

  const TemporalGraph& log = pipeline.test_log().graph;
  const LabelDict& dict = pipeline.world().dict();
  std::vector<api::EventRecord> week;
  week.reserve(log.edge_count());
  Timestamp last_ts = 0;
  for (const TemporalEdge& e : log.edges()) {
    week.push_back(api::EventRecord{
        e.src, e.dst, dict.Name(log.label(e.src)), dict.Name(log.label(e.dst)),
        e.elabel == kNoEdgeLabel ? "" : dict.Name(e.elabel), e.ts});
    last_ts = std::max(last_ts, e.ts);
  }
  if (auto ingested = analyst.Ingest("seven-day-log", week); !ingested.ok()) {
    std::printf("ingest failed: %s\n",
                ingested.status().ToString().c_str());
    return 1;
  }
  std::printf("searching the 7-day monitoring log (%zu events)...\n",
              week.size());
  StatusOr<std::vector<Interval>> matches =
      analyst.Search(*query, "seven-day-log");
  if (!matches.ok()) {
    std::printf("search failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }
  AccuracyResult accuracy = pipeline.Evaluate(sshd_idx, *matches);

  std::printf("identified %lld sshd-login instances "
              "(precision %.1f%%, recall %.1f%%)\n",
              static_cast<long long>(accuracy.identified),
              100 * accuracy.precision(), 100 * accuracy.recall());
  std::size_t shown = 0;
  for (const Interval& m : *matches) {
    if (shown++ >= 5) {
      std::printf("  ... and %zu more\n", matches->size() - 5);
      break;
    }
    std::printf("  login activity in [%lld, %lld]\n",
                static_cast<long long>(m.begin),
                static_cast<long long>(m.end));
  }

  // --- sharpening the hunt with timed-automata gap guards ---------------
  // An evasion attempt: replay the query's top pattern event by event with
  // fresh entities, but stretch the pause after the seed edge to nearly
  // the whole search window. The span still fits the window, so the
  // window-only query flags it; a real login's events come in a burst, so
  // a max-gap guard between consecutive edges rejects the stretched chain
  // without losing a single true match.
  std::size_t top = mined->size();
  for (std::size_t i = 0; i < mined->size(); ++i) {
    if (mined->patterns()[i].pattern.edge_count() >= 2) {
      top = i;
      break;
    }
  }
  if (top == mined->size()) {
    std::printf("no multi-edge pattern mined; cannot demo gap guards\n");
    return 1;
  }
  const Pattern& shape = mined->patterns()[top].pattern;
  const Timestamp window = mined->window();
  const Timestamp hops = static_cast<Timestamp>(shape.edge_count()) - 1;
  // One slow hop of (window - hops) then 1-tick hops: total span
  // window - 1, inside the window but with a pause no real login shows.
  const Timestamp slow_gap = window - hops;
  const Timestamp max_gap = slow_gap - 1;
  const Timestamp decoy_start = last_ts + window + 1;
  const std::int64_t decoy_entity_base = 10'000'000;
  std::vector<api::EventRecord> decoy;
  Timestamp ts = decoy_start;
  for (std::size_t k = 0; k < shape.edge_count(); ++k) {
    const PatternEdge& e = shape.edge(k);
    if (k == 1) ts += slow_gap;
    else if (k > 1) ts += 1;
    decoy.push_back(api::EventRecord{
        decoy_entity_base + e.src, decoy_entity_base + e.dst,
        dict.Name(shape.label(e.src)), dict.Name(shape.label(e.dst)),
        e.elabel == kNoEdgeLabel ? "" : dict.Name(e.elabel), ts});
  }
  std::vector<api::EventRecord> week_with_decoy = week;
  week_with_decoy.insert(week_with_decoy.end(), decoy.begin(), decoy.end());
  if (auto ingested = analyst.Ingest("seven-day-log+decoy", week_with_decoy);
      !ingested.ok()) {
    std::printf("decoy ingest failed: %s\n",
                ingested.status().ToString().c_str());
    return 1;
  }

  api::BehaviorQuery plain({query->patterns()[top]}, window);
  api::QueryConstraintsBuilder guards(shape.edge_count());
  for (std::size_t k = 1; k < shape.edge_count(); ++k) {
    guards.MaxGap(k, max_gap);
  }
  StatusOr<TemporalConstraints> built =
      guards.Build(query->patterns()[top].pattern);
  if (!built.ok()) {
    std::printf("constraint build failed: %s\n",
                built.status().ToString().c_str());
    return 1;
  }
  api::BehaviorQuery sharpened = plain;
  sharpened.set_constraints(0, *built);

  // Guards persist with the artifact (tquery version 2): reload before
  // searching so the smoke run covers the constrained round-trip too.
  std::stringstream sharpened_artifact;
  if (Status saved = analyst.SaveQuery(sharpened, sharpened_artifact);
      !saved.ok()) {
    std::printf("constrained save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (sharpened_artifact.str().rfind("tquery 2 ", 0) != 0) {
    std::printf("constrained artifact is not tquery version 2\n");
    return 1;
  }
  StatusOr<api::BehaviorQuery> resharpened =
      analyst.LoadQuery(sharpened_artifact);
  if (!resharpened.ok()) {
    std::printf("constrained reload failed: %s\n",
                resharpened.status().ToString().c_str());
    return 1;
  }

  StatusOr<std::vector<Interval>> plain_hits =
      analyst.Search(plain, "seven-day-log+decoy");
  StatusOr<std::vector<Interval>> sharp_hits =
      analyst.Search(*resharpened, "seven-day-log+decoy");
  if (!plain_hits.ok() || !sharp_hits.ok()) {
    std::printf("constrained search failed\n");
    return 1;
  }
  auto hits_decoy = [&](const std::vector<Interval>& hits) {
    return std::any_of(hits.begin(), hits.end(), [&](const Interval& m) {
      return m.end >= decoy_start;
    });
  };
  bool plain_fooled = hits_decoy(*plain_hits);
  bool sharp_fooled = hits_decoy(*sharp_hits);
  bool sharp_subset = std::all_of(
      sharp_hits->begin(), sharp_hits->end(), [&](const Interval& m) {
        return std::find(plain_hits->begin(), plain_hits->end(), m) !=
               plain_hits->end();
      });
  std::printf("decoy chain planted at t=%lld with a %lld-tick pause "
              "(window %lld)\n",
              static_cast<long long>(decoy_start),
              static_cast<long long>(slow_gap),
              static_cast<long long>(window));
  std::printf("  window-only query:   %zu matches, decoy %s\n",
              plain_hits->size(), plain_fooled ? "FLAGGED" : "missed");
  std::printf("  max-gap(%lld) query: %zu matches, decoy %s\n",
              static_cast<long long>(max_gap), sharp_hits->size(),
              sharp_fooled ? "flagged" : "REJECTED");
  bool guards_work = plain_fooled && !sharp_fooled && sharp_subset &&
                     !sharp_hits->empty();
  if (!guards_work) {
    std::printf("gap-guard demo failed (plain_fooled=%d sharp_fooled=%d "
                "subset=%d sharp_matches=%zu)\n",
                plain_fooled, sharp_fooled, sharp_subset,
                sharp_hits->size());
  }

  return accuracy.identified > 0 && guards_work ? 0 : 1;
}
