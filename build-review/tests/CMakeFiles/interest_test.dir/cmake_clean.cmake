file(REMOVE_RECURSE
  "CMakeFiles/interest_test.dir/interest_test.cc.o"
  "CMakeFiles/interest_test.dir/interest_test.cc.o.d"
  "interest_test"
  "interest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
