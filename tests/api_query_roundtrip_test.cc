// BehaviorQuery persistence: the `tquery` text format round-trips the
// artifact bit-identically — patterns, scores/support provenance, window
// — including label-dict re-interning across sessions, and Search/Watch
// over a reloaded artifact reproduce the in-memory query's intervals
// exactly. Malformed artifacts yield line-numbered diagnostics.

#include "api/behavior_query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "api/session.h"
#include "test_util.h"

namespace tgm {
namespace {

using api::BehaviorQuery;
using api::QueryProvenance;
using ::tgm::testing::MakePattern;

// A dictionary with the label alphabet L0..L5 (plus the id-0 reserve).
LabelDict MakeDict() {
  LabelDict dict;
  dict.Intern("<none>");
  for (int i = 0; i < 6; ++i) dict.Intern("L" + std::to_string(i));
  return dict;
}

BehaviorQuery MakeQuery() {
  std::vector<MinedPattern> patterns;
  MinedPattern a;
  a.pattern = MakePattern({1, 2, 3}, {{0, 1}, {1, 2}});
  a.score = 1.0 / 3.0;  // needs full double precision to round-trip
  a.freq_pos = 0.9999999999999991;
  a.freq_neg = 1e-17;
  a.support_pos = 41;
  a.support_neg = 1;
  patterns.push_back(a);
  MinedPattern b;
  b.pattern = MakePattern({2, 2}, {{0, 1}});
  b.score = -std::numeric_limits<double>::infinity();  // default-score entry
  patterns.push_back(b);

  QueryProvenance prov;
  prov.patterns_visited = 12345;
  prov.patterns_expanded = 678;
  prov.truncated = true;
  prov.elapsed_seconds = 0.125;
  prov.positive_graphs = 30;
  prov.negative_graphs = 150;
  prov.positives = "train/sshd login";  // whitespace sanitized on save
  prov.negatives = "train/background";
  return BehaviorQuery(std::move(patterns), /*window=*/777, std::move(prov));
}

TEST(BehaviorQueryRoundTripTest, SaveLoadIsBitIdentical) {
  LabelDict dict = MakeDict();
  BehaviorQuery query = MakeQuery();
  std::stringstream ss;
  query.Save(ss, dict);

  LabelDict dict2 = MakeDict();  // identical interning order
  StatusOr<BehaviorQuery> back = BehaviorQuery::Load(ss, dict2);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back->window(), 777);
  ASSERT_EQ(back->size(), query.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    const MinedPattern& in = query.patterns()[i];
    const MinedPattern& out = back->patterns()[i];
    EXPECT_EQ(out.pattern, in.pattern) << "pattern " << i;
    EXPECT_EQ(out.score, in.score) << "pattern " << i;
    EXPECT_EQ(out.freq_pos, in.freq_pos) << "pattern " << i;
    EXPECT_EQ(out.freq_neg, in.freq_neg) << "pattern " << i;
    EXPECT_EQ(out.support_pos, in.support_pos);
    EXPECT_EQ(out.support_neg, in.support_neg);
  }
  const QueryProvenance& prov = back->provenance();
  EXPECT_EQ(prov.patterns_visited, 12345);
  EXPECT_EQ(prov.patterns_expanded, 678);
  EXPECT_TRUE(prov.truncated);
  EXPECT_EQ(prov.elapsed_seconds, 0.125);
  EXPECT_EQ(prov.positive_graphs, 30);
  EXPECT_EQ(prov.negative_graphs, 150);
  EXPECT_EQ(prov.positives, "train/sshd_login");  // sanitized
  EXPECT_EQ(prov.negatives, "train/background");
}

TEST(BehaviorQueryRoundTripTest, ReinternsLabelsAcrossDictionaries) {
  LabelDict dict = MakeDict();
  BehaviorQuery query = MakeQuery();
  std::stringstream ss;
  query.Save(ss, dict);

  // A dictionary with a different interning order: ids shift, names hold.
  LabelDict shifted;
  shifted.Intern("<none>");
  shifted.Intern("unrelated:x");
  shifted.Intern("L3");
  StatusOr<BehaviorQuery> back = BehaviorQuery::Load(ss, shifted);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const Pattern& original = query.patterns()[0].pattern;
  const Pattern& reloaded = back->patterns()[0].pattern;
  ASSERT_EQ(reloaded.node_count(), original.node_count());
  for (std::size_t v = 0; v < original.node_count(); ++v) {
    // Ids differ, names agree — the artifact is interning-independent.
    EXPECT_EQ(shifted.Name(reloaded.label(static_cast<NodeId>(v))),
              dict.Name(original.label(static_cast<NodeId>(v))));
  }
  EXPECT_NE(reloaded.label(0), original.label(0));
}

TEST(BehaviorQueryRoundTripTest, DoubleRoundTripIsStable) {
  // Save -> Load -> Save must reproduce the byte stream (a fixpoint
  // format: no precision decay over repeated round-trips).
  LabelDict dict = MakeDict();
  std::stringstream first;
  MakeQuery().Save(first, dict);
  LabelDict dict2 = MakeDict();
  StatusOr<BehaviorQuery> back = BehaviorQuery::Load(first, dict2);
  ASSERT_TRUE(back.ok());
  std::stringstream second;
  back->Save(second, dict2);
  LabelDict dict3 = MakeDict();
  std::stringstream reference;
  MakeQuery().Save(reference, dict3);
  EXPECT_EQ(second.str(), reference.str());
}

TEST(BehaviorQueryRoundTripTest, SearchAndWatchReloadedMatchInMemory) {
  // End to end through a Session: mine, persist, reload in the same
  // session, and pin that Search and Watch(1/2/4 shards) over the same
  // log are bit-identical between the in-memory and reloaded artifacts.
  api::Session session;
  for (int run = 0; run < 4; ++run) {
    std::vector<api::EventRecord> pos = {
        {1, 2, "A", "B", "", run * 100 + 10},
        {3, 2, "C", "B", "", run * 100 + 20},
        {2, 4, "B", "D", "", run * 100 + 30},
    };
    std::vector<api::EventRecord> neg = {
        {1, 2, "A", "B", "", run * 100 + 10},
        {2, 4, "B", "D", "", run * 100 + 20},
        {3, 2, "C", "B", "", run * 100 + 30},
    };
    ASSERT_TRUE(session.Ingest("pos", pos).ok());
    ASSERT_TRUE(session.Ingest("neg", neg).ok());
    // The log interleaves both shapes.
    ASSERT_TRUE(session.Ingest("log", run % 2 == 0 ? pos : neg).ok());
  }
  api::MineSpec spec;
  spec.positives = "pos";
  spec.negatives = "neg";
  spec.config.max_edges = 3;
  StatusOr<BehaviorQuery> mined = session.Mine(spec);
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->empty());

  std::stringstream artifact;
  ASSERT_TRUE(session.SaveQuery(*mined, artifact).ok());
  StatusOr<BehaviorQuery> reloaded = session.LoadQuery(artifact);
  ASSERT_TRUE(reloaded.ok());

  StatusOr<std::vector<Interval>> in_memory = session.Search(*mined, "log");
  StatusOr<std::vector<Interval>> from_disk =
      session.Search(*reloaded, "log");
  ASSERT_TRUE(in_memory.ok());
  ASSERT_TRUE(from_disk.ok());
  ASSERT_FALSE(in_memory->empty());
  EXPECT_EQ(*from_disk, *in_memory);

  for (int shards : {1, 2, 4}) {
    api::WatchOptions options;
    options.shards = shards;
    StatusOr<std::vector<Interval>> watched =
        session.Watch(*reloaded, "log", options);
    ASSERT_TRUE(watched.ok());
    EXPECT_EQ(*watched, *in_memory) << "shards=" << shards;
  }
}

// A constraint annotation on any pattern bumps the artifact to tquery
// version 2; an unconstrained artifact keeps the historical version-1
// byte layout so older readers stay compatible.
TEST(BehaviorQueryRoundTripTest, UnconstrainedStaysVersion1) {
  LabelDict dict = MakeDict();
  std::stringstream ss;
  MakeQuery().Save(ss, dict);
  EXPECT_EQ(ss.str().rfind("tquery 1 ", 0), 0u);
  EXPECT_EQ(ss.str().find("constraints"), std::string::npos);
}

TEST(BehaviorQueryRoundTripTest, ConstraintsRoundTripExactly) {
  LabelDict dict = MakeDict();
  BehaviorQuery query = MakeQuery();
  TemporalConstraints c(query.patterns()[0].pattern.edge_count());
  c.mutable_guard(1).min_gap = 3;
  c.mutable_guard(1).max_gap = 40;
  c.mutable_guard(1).min_since_seed = 1;
  c.mutable_guard(1).max_since_seed = 90;
  c.mutable_guard(1).elabel_alts = {dict.Lookup("L4"), dict.Lookup("L5")};
  c.mutable_guard(0).elabel_alts = {dict.Lookup("L3")};
  c.set_deadline(120);
  query.set_constraints(0, std::move(c));
  // Pattern 1 stays unconstrained: its v2 block is `constraints 0 0`.

  std::stringstream ss;
  query.Save(ss, dict);
  EXPECT_EQ(ss.str().rfind("tquery 2 ", 0), 0u);

  // Reload across a dictionary with a different interning order: guard
  // values survive verbatim, alternative labels resolve by name.
  LabelDict shifted;
  shifted.Intern("<none>");
  shifted.Intern("unrelated:x");
  StatusOr<BehaviorQuery> back = BehaviorQuery::Load(ss, shifted);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(back->constrained());
  const TemporalConstraints& rc = back->constraints(0);
  EXPECT_EQ(rc.deadline(), 120);
  EXPECT_EQ(rc.guard(1).min_gap, 3);
  EXPECT_EQ(rc.guard(1).max_gap, 40);
  EXPECT_EQ(rc.guard(1).min_since_seed, 1);
  EXPECT_EQ(rc.guard(1).max_since_seed, 90);
  ASSERT_EQ(rc.guard(1).elabel_alts.size(), 2u);
  EXPECT_EQ(shifted.Name(rc.guard(1).elabel_alts[0]), "L4");
  EXPECT_EQ(shifted.Name(rc.guard(1).elabel_alts[1]), "L5");
  ASSERT_EQ(rc.guard(0).elabel_alts.size(), 1u);
  EXPECT_EQ(shifted.Name(rc.guard(0).elabel_alts[0]), "L3");
  EXPECT_TRUE(back->constraints(1).IsTrivial());

  // Save -> Load -> Save is a fixpoint for v2 artifacts too.
  std::stringstream second;
  back->Save(second, shifted);
  LabelDict third_dict = MakeDict();
  StatusOr<BehaviorQuery> third = BehaviorQuery::Load(second, third_dict);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  std::stringstream reference;
  third->Save(reference, third_dict);
  std::stringstream expected;
  query.Save(expected, dict);
  EXPECT_EQ(reference.str(), expected.str());
}

TEST(BehaviorQueryRoundTripTest, ConstraintsDiagnosticsAreLineNumbered) {
  auto load = [](const std::string& text) {
    std::stringstream ss(text);
    LabelDict fresh = MakeDict();
    return BehaviorQuery::Load(ss, fresh);
  };
  // A well-formed single-pattern v2 artifact, tampered with per case.
  const std::string header =
      "tquery 2 1\nwindow 100\nprovenance 1 1 0 0.5 1 1 - -\n"
      "q 1 1 0 1 0\ntpattern 3 2\nn L0\nn L1\nn L2\ne 0 1 L4\ne 1 2 L5\n";

  StatusOr<BehaviorQuery> good =
      load(header + "constraints 1 50\ng 1 2 10 0 -1 1 L3\n");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->constraints(0).guard(1).max_gap, 10);
  EXPECT_EQ(good->constraints(0).deadline(), 50);

  // A v2 pattern without its constraints block.
  StatusOr<BehaviorQuery> missing = load(header);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(missing.status().message().find("constraints"),
            std::string::npos);

  // Guard line referencing a nonexistent pattern edge (line 12).
  StatusOr<BehaviorQuery> bad_edge =
      load(header + "constraints 1 0\ng 7 0 10 0 -1 0\n");
  ASSERT_FALSE(bad_edge.ok());
  EXPECT_NE(bad_edge.status().message().find("edge 7"), std::string::npos);
  EXPECT_NE(bad_edge.status().message().find("line 12"), std::string::npos);

  // Two guards for the same transition (line 13).
  StatusOr<BehaviorQuery> duplicate =
      load(header + "constraints 2 0\ng 1 0 10 0 -1 0\ng 1 0 9 0 -1 0\n");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate guard"),
            std::string::npos);
  EXPECT_NE(duplicate.status().message().find("line 13"), std::string::npos);

  // Inconsistent bounds are caught by validation with file context.
  StatusOr<BehaviorQuery> crossed =
      load(header + "constraints 1 0\ng 1 20 10 0 -1 0\n");
  ASSERT_FALSE(crossed.ok());
  EXPECT_NE(crossed.status().message().find("invalid constraints"),
            std::string::npos);

  // Malformed guard line shape (missing alt names).
  StatusOr<BehaviorQuery> short_line =
      load(header + "constraints 1 0\ng 1 0 10 0 -1 2 L3\n");
  ASSERT_FALSE(short_line.ok());
  EXPECT_NE(short_line.status().message().find("line 12"),
            std::string::npos);
}

TEST(BehaviorQueryRoundTripTest, FutureFormatVersionIsRejected) {
  // A version-3 artifact (written by some newer build) must be refused
  // with a clear diagnostic, not best-effort misread.
  std::stringstream ss(
      "tquery 3 1\nwindow 5\nprovenance 1 1 0 0.5 1 1 - -\n");
  LabelDict dict = MakeDict();
  StatusOr<BehaviorQuery> future = BehaviorQuery::Load(ss, dict);
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(future.status().message().find("version 3"), std::string::npos);
  EXPECT_NE(future.status().message().find("versions 1-2"),
            std::string::npos);
  EXPECT_NE(future.status().message().find("line 1"), std::string::npos);
}

TEST(BehaviorQueryRoundTripTest, LoadDiagnosticsAreLineNumbered) {
  auto load = [](const std::string& text) {
    std::stringstream ss(text);
    LabelDict fresh = MakeDict();
    return BehaviorQuery::Load(ss, fresh);
  };

  StatusOr<BehaviorQuery> bad_header = load("nonsense 1 1\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_EQ(bad_header.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad_header.status().message().find("line 1"), std::string::npos);

  StatusOr<BehaviorQuery> bad_version = load("tquery 9 0\n");
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().message().find("version 9"),
            std::string::npos);

  // A zero-pattern artifact could never execute; Load flags it with file
  // context instead of deferring to a downstream Validate failure.
  StatusOr<BehaviorQuery> no_patterns = load("tquery 1 0\nwindow 5\n");
  ASSERT_FALSE(no_patterns.ok());
  EXPECT_NE(no_patterns.status().message().find("at least one pattern"),
            std::string::npos);

  StatusOr<BehaviorQuery> bad_window =
      load("tquery 1 1\nwindow -4\n");
  ASSERT_FALSE(bad_window.ok());
  EXPECT_NE(bad_window.status().message().find("line 2"), std::string::npos);

  StatusOr<BehaviorQuery> bad_prov =
      load("tquery 1 1\nwindow 5\nprovenance zero\n");
  ASSERT_FALSE(bad_prov.ok());
  EXPECT_NE(bad_prov.status().message().find("line 3"), std::string::npos);

  // Truncated mid-pattern: the embedded tpattern parser reports its line.
  StatusOr<BehaviorQuery> truncated =
      load("tquery 1 1\nwindow 5\nprovenance 1 1 0 0.5 1 1 - -\n"
           "q 1 1 0 1 0\ntpattern 2 1\nn L0\n");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(truncated.status().message().find("line 6"), std::string::npos);
}

TEST(BehaviorQueryRoundTripTest, ValidateCatchesUnexecutableArtifacts) {
  EXPECT_EQ(BehaviorQuery{}.Validate().code(),
            StatusCode::kInvalidArgument);

  std::vector<MinedPattern> patterns(1);
  patterns[0].pattern = MakePattern({1, 2}, {{0, 1}});
  EXPECT_EQ(BehaviorQuery(patterns, -1).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(BehaviorQuery(patterns, 10).Validate().ok());
}

}  // namespace
}  // namespace tgm