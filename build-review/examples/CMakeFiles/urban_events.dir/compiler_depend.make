# Empty compiler generated dependencies file for urban_events.
# This may be replaced when dependencies are built.
