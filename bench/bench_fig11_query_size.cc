// Regenerates Figure 11: average TGMiner query accuracy as the behaviour
// query size (the size of the largest explorable pattern) varies 1..10.
//
// Paper shape to reproduce: precision climbs from ~0.72 at size 1 to ~0.97
// and plateaus around size 6; recall declines slightly with size.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Figure 11", "query accuracy vs behavior query size");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  // Figure 11 mines per (behaviour, size) pair — trim the dataset a bit
  // relative to Table 2's defaults to keep the sweep quick.
  config.dataset.runs_per_behavior =
      static_cast<int>(flags.GetInt("runs", 12));
  config.dataset.background_graphs =
      static_cast<int>(flags.GetInt("background", 60));
  Pipeline pipeline(config);
  pipeline.Prepare();

  std::printf("%10s %12s %12s\n", "Query size", "Precision", "Recall");
  for (int size = 1; size <= 10; ++size) {
    double sum_p = 0.0;
    double sum_r = 0.0;
    for (int i = 0; i < kNumBehaviors; ++i) {
      AccuracyResult r = pipeline.RunTGMiner(i, /*query_size=*/size);
      sum_p += r.precision();
      sum_r += r.recall();
    }
    std::printf("%10d %12.3f %12.3f\n", size, sum_p / kNumBehaviors,
                sum_r / kNumBehaviors);
  }
  std::printf("(paper shape: precision ~0.72 at size 1 rising to ~0.97, "
              "plateau beyond size 6;\n recall declines slightly with "
              "size)\n");
  return 0;
}
