# Empty compiler generated dependencies file for bench_table3_pruning_trigger.
# This may be replaced when dependencies are built.
