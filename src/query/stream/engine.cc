#include "query/stream/engine.h"

#include <algorithm>

#include "exec/parallel_for.h"

namespace tgm {

StreamEngine::StreamEngine(const Options& options) : options_(options) {
  int shards = ResolveNumThreads(options_.num_shards);
  TGM_CHECK(shards >= 1);
  if (options_.batch_size == 0) options_.batch_size = 1;
  limits_.window = options_.window;
  limits_.max_partials = options_.max_partials_per_query;
  limits_.entity_index = options_.entity_index;
  limits_.guard_expiry = options_.guard_expiry;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shards_.emplace_back(limits_);
  shard_alerts_.resize(static_cast<std::size_t>(shards));
  if (shards > 1) pool_ = std::make_unique<ThreadPool>(shards - 1);
  batch_.reserve(options_.batch_size);
}

std::size_t StreamEngine::AddQuery(const Pattern& query) {
  return AddQuery(query, options_.window);
}

std::size_t StreamEngine::AddQuery(const Pattern& query, Timestamp window) {
  return AddQuery(query, window, TemporalConstraints());
}

std::size_t StreamEngine::AddQuery(const Pattern& query, Timestamp window,
                                   const TemporalConstraints& constraints) {
  TGM_CHECK(query.edge_count() >= 1);
  TGM_CHECK(window >= 0);
  // Registering mid-batch would make buffered events see a different query
  // set than their arrival order implies.
  TGM_CHECK(batch_.empty());
  std::size_t index = query_count_++;
  shards_[index % shards_.size()].AddQuery(index, query, window, constraints);
  return index;
}

void StreamEngine::OnEvent(const StreamEvent& event, const AlertSink& sink) {
  StreamEvent accepted = event;
  if (any_event_ && accepted.ts < last_ts_) {
    // Stream precondition violated. Clamping to the newest timestamp keeps
    // window expiry monotonic (a raw out-of-order ts would expire live
    // partials of every query against a time that then jumps back); the
    // counter surfaces the violation instead of hiding it.
    ++out_of_order_events_;
    accepted.ts = last_ts_;
  }
  last_ts_ = accepted.ts;
  any_event_ = true;
  batch_.push_back(accepted);
  if (batch_.size() >= options_.batch_size) ProcessBatch(sink);
}

void StreamEngine::Flush(const AlertSink& sink) { ProcessBatch(sink); }

void StreamEngine::ProcessBatch(const AlertSink& sink) {
  if (batch_.empty()) return;
  // Broadcast the batch: one deterministic chunk per shard (the pool has
  // shards-1 workers, so ParallelFor assigns exactly one shard per chunk;
  // shard 0 runs on the calling thread). Shards share nothing but the
  // read-only batch.
  ParallelFor(pool_.get(), shards_.size(), [this](std::size_t s) {
    shards_[s].ProcessBatch(batch_, &shard_alerts_[s]);
  });
  // Merge the per-shard outboxes into canonical (event, query, interval)
  // order. Keys never collide across shards (queries are partitioned), so
  // the merged order — and therefore the sink-visible alert stream — is
  // independent of the shard count. A flat sort (rather than a k-way
  // merge of the already-sorted outboxes) is deliberate: alerts per batch
  // are few, and the sort does not depend on the outboxes' order at all.
  merged_.clear();
  for (const std::vector<ShardAlert>& alerts : shard_alerts_) {
    merged_.insert(merged_.end(), alerts.begin(), alerts.end());
  }
  std::sort(merged_.begin(), merged_.end());
  for (const ShardAlert& alert : merged_) {
    sink(StreamAlert{alert.query_index, alert.interval});
  }
  batch_.clear();
}

std::size_t StreamEngine::PartialCount() const {
  std::size_t total = 0;
  for (const StreamShard& shard : shards_) total += shard.PartialCount();
  return total;
}

std::int64_t StreamEngine::dropped_partials() const {
  std::int64_t total = 0;
  for (const StreamShard& shard : shards_) total += shard.dropped_partials();
  return total;
}

EngineStats StreamEngine::Stats() const {
  EngineStats stats;
  stats.out_of_order_events = out_of_order_events_;
  stats.shard_events.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const StreamShard& shard = shards_[s];
    stats.shard_events.push_back(shard.events_processed());
    for (const QueryRuntime& query : shard.queries()) {
      EngineQueryStats row;
      row.query_index = query.global_index();
      row.shard = s;
      row.live_partials = query.table().live();
      row.peak_partials = query.table().peak();
      row.index_buckets = query.table().bucket_count();
      row.wildcard_partials = query.table().wildcard_size();
      row.dropped_partials = query.dropped_partials();
      row.alerts = query.alerts();
      row.seed_skips = query.seed_skips();
      stats.queries.push_back(row);
      stats.live_partials += row.live_partials;
      stats.dropped_partials += row.dropped_partials;
      stats.alerts += row.alerts;
      stats.seed_skips += row.seed_skips;
    }
  }
  std::sort(stats.queries.begin(), stats.queries.end(),
            [](const EngineQueryStats& a, const EngineQueryStats& b) {
              return a.query_index < b.query_index;
            });
  return stats;
}

}  // namespace tgm
