// The stream engine subsystem (src/query/stream/): compiled query plans,
// the entity-keyed partial index vs. the legacy full-scan path,
// out-of-order input handling, backpressure (oldest-first eviction with
// per-query drop accounting), batching/Flush, and the EngineStats surface.

#include "query/stream/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "query/stream/compiled_plan.h"
#include "query/stream_monitor.h"
#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakePattern;

StreamEvent Ev(std::int64_t src, std::int64_t dst, LabelId src_label,
               LabelId dst_label, Timestamp ts,
               LabelId elabel = kNoEdgeLabel) {
  return StreamEvent{src, dst, src_label, dst_label, elabel, ts};
}

std::vector<StreamAlert> FeedAll(StreamEngine& engine,
                                 const std::vector<StreamEvent>& events) {
  std::vector<StreamAlert> alerts;
  auto sink = [&alerts](const StreamAlert& a) {
    alerts.push_back(a);
  };
  for (const StreamEvent& e : events) engine.OnEvent(e, sink);
  engine.Flush(sink);
  return alerts;
}

std::vector<StreamEvent> GraphEvents(const TemporalGraph& log) {
  std::vector<StreamEvent> events;
  for (const TemporalEdge& e : log.edges()) {
    events.push_back(StreamEvent::FromEdge(log, e));
  }
  return events;
}

TEST(CompiledQueryPlanTest, TransitionsRecordBoundSlots) {
  // A(0)->B(1), C(2)->B, A->C: forward seed, backward growth, inward edge.
  Pattern p = Pattern::SingleEdge(0, 1).GrowBackward(2, 1).GrowInward(0, 2);
  CompiledQueryPlan plan(p);
  ASSERT_EQ(plan.edge_count(), 3u);

  EXPECT_FALSE(plan.transition(0).src_bound);
  EXPECT_FALSE(plan.transition(0).dst_bound);
  EXPECT_EQ(plan.transition(0).bound_nodes, 0u);

  // Edge 1 (C->B): B bound by edge 0, C new.
  EXPECT_FALSE(plan.transition(1).src_bound);
  EXPECT_TRUE(plan.transition(1).dst_bound);
  EXPECT_EQ(plan.transition(1).bound_nodes, 2u);

  // Edge 2 (A->C): both bound.
  EXPECT_TRUE(plan.transition(2).src_bound);
  EXPECT_TRUE(plan.transition(2).dst_bound);
  EXPECT_EQ(plan.transition(2).bound_nodes, 3u);

  EXPECT_EQ(plan.transition(1).src_label, 2);
  EXPECT_EQ(plan.transition(1).dst_label, 1);
}

TEST(CompiledQueryPlanTest, SeedMatchesChecksLabelsAndLoopShape) {
  CompiledQueryPlan plan(MakePattern({0, 1}, {{0, 1}}));
  EXPECT_TRUE(plan.SeedMatches(Ev(7, 8, 0, 1, 5)));
  EXPECT_FALSE(plan.SeedMatches(Ev(7, 8, 1, 0, 5)));   // labels swapped
  EXPECT_FALSE(plan.SeedMatches(Ev(7, 7, 0, 1, 5)));   // loop vs non-loop
  EXPECT_FALSE(plan.SeedMatches(Ev(7, 8, 0, 1, 5, 3)));  // edge label
}

TEST(StreamEngineTest, IndexedPathMatchesFullScanPath) {
  // The entity-keyed index is a pure acceleration structure in the
  // drop-free regime: on random streams that stay under the partial cap,
  // the indexed engine must produce the exact alert sequence and
  // live-partial counts of the wildcard full-scan path. (Under
  // backpressure the eviction tie-break follows insertion order, which
  // legitimately differs between the paths — see
  // StreamEngine::Options::entity_index.)
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    TemporalGraph log = tgm::testing::RandomGraph(rng, 7, 40, 2);
    StreamEngine::Options indexed;
    indexed.window = 30;
    StreamEngine::Options scan = indexed;
    scan.entity_index = false;
    StreamEngine a(indexed);
    StreamEngine b(scan);
    for (int q = 0; q < 4; ++q) {
      Pattern query = tgm::testing::RandomPattern(
          rng, 2 + static_cast<int>(rng() % 2), 2);
      a.AddQuery(query);
      b.AddQuery(query);
    }
    std::vector<StreamEvent> events = GraphEvents(log);
    EXPECT_EQ(FeedAll(a, events), FeedAll(b, events)) << "trial " << trial;
    EXPECT_EQ(a.PartialCount(), b.PartialCount());
    EXPECT_EQ(a.dropped_partials(), b.dropped_partials());
  }
}

TEST(StreamEngineTest, AgreesWithOfflineSearcherAcrossBatchSizes) {
  // The batched engine replaying a finalized log produces exactly the
  // offline searcher's distinct match intervals, for every batch size.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    TemporalGraph log = tgm::testing::RandomGraph(rng, 6, 25, 2);
    Pattern query = tgm::testing::RandomPattern(
        rng, 2 + static_cast<int>(rng() % 2), 2);

    TemporalQuerySearcher::Options search_options;
    search_options.window = 40;
    std::vector<Interval> offline =
        TemporalQuerySearcher(search_options).Search(query, log);

    for (std::size_t batch_size : {std::size_t{1}, std::size_t{7}}) {
      StreamEngine::Options options;
      options.window = 40;
      options.batch_size = batch_size;
      StreamEngine engine(options);
      engine.AddQuery(query);
      std::vector<Interval> online;
      for (const StreamAlert& a : FeedAll(engine, GraphEvents(log))) {
        online.push_back(a.interval);
      }
      std::sort(online.begin(), online.end());
      online.erase(std::unique(online.begin(), online.end()), online.end());
      EXPECT_EQ(online, offline) << "batch_size " << batch_size << "\n"
                                 << query.ToString() << "\n"
                                 << log.ToString();
    }
  }
}

TEST(StreamEngineTest, BatchingDefersAlertsUntilBatchBoundaryOrFlush) {
  StreamEngine::Options options;
  options.window = 100;
  options.batch_size = 4;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));

  std::vector<StreamAlert> alerts;
  auto sink = [&alerts](const StreamAlert& a) {
    alerts.push_back(a);
  };
  engine.OnEvent(Ev(10, 11, 0, 1, 5), sink);
  engine.OnEvent(Ev(11, 12, 1, 2, 15), sink);
  EXPECT_TRUE(alerts.empty());  // batch of 4 not complete yet
  engine.Flush(sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].interval, (Interval{5, 15}));

  // A full batch delivers without Flush.
  alerts.clear();
  for (int i = 0; i < 4; ++i) {
    engine.OnEvent(i % 2 == 0 ? Ev(20 + i, 40 + i, 0, 1, 20 + i)
                              : Ev(40 + i - 1, 60 + i, 1, 2, 20 + i),
                   sink);
  }
  EXPECT_EQ(alerts.size(), 2u);
}

TEST(StreamEngineTest, OutOfOrderTimestampClampedAndCounted) {
  StreamEngine::Options options;
  options.window = 100;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));

  auto alerts = FeedAll(engine, {
                                    Ev(10, 11, 0, 1, 50),
                                    Ev(11, 12, 1, 2, 20),  // decreasing ts
                                });
  EXPECT_EQ(engine.out_of_order_events(), 1);
  // The violating event was clamped to ts=50, so the completed match
  // carries the clamped (monotonic) interval, not a backwards one.
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].interval, (Interval{50, 50}));
  EXPECT_EQ(engine.Stats().out_of_order_events, 1);
}

TEST(StreamEngineTest, MonitorFacadeSurfacesOutOfOrderCounter) {
  StreamMonitor::Options options;
  options.window = 100;
  StreamMonitor monitor(options);
  monitor.AddQuery(MakePattern({0, 1}, {{0, 1}}));
  monitor.OnEvent(Ev(1, 2, 0, 1, 10), [](const StreamAlert&) {});
  EXPECT_EQ(monitor.out_of_order_events(), 0);
  monitor.OnEvent(Ev(1, 2, 0, 1, 3), [](const StreamAlert&) {});
  EXPECT_EQ(monitor.out_of_order_events(), 1);
}

TEST(StreamEngineTest, BackpressureEvictsOldestFirst) {
  StreamEngine::Options options;
  options.window = 1000000;
  options.max_partials_per_query = 2;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));

  // Three seed partials under a cap of two: P1 (oldest) must be evicted,
  // P2 and P3 must survive and still be completable.
  auto alerts = FeedAll(engine, {
                                    Ev(10, 11, 0, 1, 1),  // P1
                                    Ev(20, 21, 0, 1, 2),  // P2
                                    Ev(30, 31, 0, 1, 3),  // P3 evicts P1
                                    Ev(11, 12, 1, 2, 4),  // would finish P1
                                    Ev(21, 22, 1, 2, 5),  // finishes P2
                                    Ev(31, 32, 1, 2, 6),  // finishes P3
                                });
  EXPECT_EQ(engine.dropped_partials(), 1);
  ASSERT_EQ(alerts.size(), 2u);
  // The evicted oldest partial never produced an alert.
  EXPECT_EQ(alerts[0].interval, (Interval{2, 5}));
  EXPECT_EQ(alerts[1].interval, (Interval{3, 6}));
}

TEST(StreamEngineTest, EvictionOrderFollowsFirstTsNotInsertionTime) {
  StreamEngine::Options options;
  options.window = 1000000;
  options.max_partials_per_query = 2;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}}));

  // P1 seeds at ts=1; P2 seeds at ts=2; extending P1 at ts=3 replaces...
  // no — the extension is a NEW partial inheriting first_ts=1 while P1
  // stays live, so the cap is hit and the oldest by first_ts (P1 itself,
  // seeded before its extension) is evicted, not the younger P2.
  auto alerts = FeedAll(engine, {
                                    Ev(10, 11, 0, 1, 1),  // P1 (first_ts 1)
                                    Ev(20, 21, 0, 1, 2),  // P2 (first_ts 2)
                                    // Extension of P1 inherits first_ts=1;
                                    // inserting it evicts P1 (oldest).
                                    Ev(11, 12, 1, 2, 3),
                                    // P2 must still be alive: walk it to
                                    // completion (evicting as we go is fine
                                    // for the older P1-extension).
                                    Ev(21, 22, 1, 2, 4),
                                    Ev(22, 23, 2, 3, 5),
                                });
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].interval, (Interval{2, 5}));
  EXPECT_GE(engine.dropped_partials(), 2);
}

TEST(StreamEngineTest, PerQueryDropCountersAreIndependent) {
  StreamEngine::Options options;
  options.window = 1000000;
  options.max_partials_per_query = 2;
  StreamEngine engine(options);
  std::size_t q0 = engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));
  std::size_t q1 = engine.AddQuery(MakePattern({3, 4, 5}, {{0, 1}, {1, 2}}));

  std::vector<StreamEvent> events;
  // Five seeds for q0 (3 evictions), three for q1 (1 eviction).
  for (int i = 0; i < 5; ++i) {
    events.push_back(Ev(100 + i, 200 + i, 0, 1, 10 + i));
  }
  for (int i = 0; i < 3; ++i) {
    events.push_back(Ev(300 + i, 400 + i, 3, 4, 20 + i));
  }
  FeedAll(engine, events);

  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.queries.size(), 2u);
  EXPECT_EQ(stats.queries[q0].dropped_partials, 3);
  EXPECT_EQ(stats.queries[q1].dropped_partials, 1);
  EXPECT_EQ(stats.dropped_partials, 4);
  EXPECT_EQ(stats.queries[q0].live_partials, 2u);
  EXPECT_EQ(stats.queries[q1].live_partials, 2u);
}

TEST(StreamEngineTest, StatsSnapshotReportsIndexOccupancyAndPeaks) {
  StreamEngine::Options options;
  options.window = 1000000;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));

  std::vector<StreamEvent> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(Ev(100 + i, 200 + i, 0, 1, 10 + i));
  }
  FeedAll(engine, events);

  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.queries.size(), 1u);
  EXPECT_EQ(stats.queries[0].live_partials, 4u);
  EXPECT_EQ(stats.queries[0].peak_partials, 4u);
  // Each partial waits on its own bound entity -> four occupied buckets,
  // nothing in the wildcard bucket.
  EXPECT_EQ(stats.queries[0].index_buckets, 4u);
  EXPECT_EQ(stats.queries[0].wildcard_partials, 0u);
  EXPECT_EQ(stats.live_partials, 4u);
  ASSERT_EQ(stats.shard_events.size(), 1u);
  EXPECT_EQ(stats.shard_events[0], 4);
  EXPECT_EQ(stats.queries[0].alerts, 0);
}

TEST(StreamEngineTest, FullScanModeFilesEverythingUnderWildcard) {
  StreamEngine::Options options;
  options.window = 1000000;
  options.entity_index = false;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {1, 2}}));
  FeedAll(engine, {Ev(1, 2, 0, 1, 1), Ev(3, 4, 0, 1, 2)});

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries[0].index_buckets, 0u);
  EXPECT_EQ(stats.queries[0].wildcard_partials, 2u);
}

TEST(StreamEngineTest, SeedDispatchSkipsIdleQueriesAndCountsThem) {
  // Two queries with disjoint edge-0 labels. Events that can only concern
  // query 0 must never probe idle query 1: the shard's label->query
  // bitmap skips it and the per-query seed_skips counter records it —
  // without changing the alert stream.
  StreamEngine::Options options;
  options.window = 100;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1}, {{0, 1}}));  // seeds on src label 0
  engine.AddQuery(MakePattern({2, 3}, {{0, 1}}));  // seeds on src label 2

  std::vector<StreamAlert> alerts = FeedAll(
      engine, {Ev(1, 2, 0, 1, 1), Ev(1, 2, 0, 1, 2), Ev(1, 2, 0, 1, 3)});
  // The single-edge query 0 completes on every event; query 1 never fires.
  ASSERT_EQ(alerts.size(), 3u);
  for (const StreamAlert& a : alerts) EXPECT_EQ(a.query_index, 0u);

  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.queries.size(), 2u);
  EXPECT_EQ(stats.queries[0].seed_skips, 0);
  EXPECT_EQ(stats.queries[1].seed_skips, 3);
  EXPECT_EQ(stats.seed_skips, 3);
}

TEST(StreamEngineTest, SeedDispatchNeverSkipsLiveQueries) {
  // A(0)->B(1) then C(2)->B: the second event's source label (2) cannot
  // seed the query, but by then the query holds a live partial — the
  // dispatch must still deliver the event so the extension completes.
  StreamEngine::Options options;
  options.window = 100;
  StreamEngine engine(options);
  engine.AddQuery(MakePattern({0, 1, 2}, {{0, 1}, {2, 1}}));

  std::vector<StreamAlert> alerts =
      FeedAll(engine, {Ev(1, 2, 0, 1, 1), Ev(5, 2, 2, 1, 4)});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].interval, (Interval{1, 4}));
  EXPECT_EQ(engine.Stats().queries[0].seed_skips, 0);
}

TEST(StreamEngineTest, SeedSkipsIdenticalAcrossShardsAndBatches) {
  // The skip decision is a pure per-query function of the event, so the
  // counters — like every other stat — are shard- and batch-invariant.
  std::mt19937_64 rng(123);
  TemporalGraph log = tgm::testing::RandomGraph(rng, 8, 60, 3);
  std::vector<StreamEvent> events = GraphEvents(log);

  auto run = [&](int shards, std::size_t batch) {
    StreamEngine::Options options;
    options.window = 40;
    options.num_shards = shards;
    options.batch_size = batch;
    StreamEngine engine(options);
    std::mt19937_64 qrng(5);
    for (int q = 0; q < 6; ++q) {
      engine.AddQuery(tgm::testing::RandomPattern(qrng, 2, 3));
    }
    FeedAll(engine, events);
    std::vector<std::int64_t> skips;
    for (const EngineQueryStats& q : engine.Stats().queries) {
      skips.push_back(q.seed_skips);
    }
    return skips;
  };
  std::vector<std::int64_t> reference = run(1, 1);
  EXPECT_GT(std::accumulate(reference.begin(), reference.end(),
                            std::int64_t{0}),
            0);
  EXPECT_EQ(run(2, 1), reference);
  EXPECT_EQ(run(4, 16), reference);
}

TEST(StreamEngineTest, PerQueryWindowOverridesEngineDefault) {
  // One engine, two identical patterns, different expiry horizons: the
  // tight window must reject the wide-span completion the loose one (the
  // engine default) accepts — the basis of Session live watches, where
  // every BehaviorQuery carries its own mined window.
  StreamEngine::Options options;
  options.window = 1000;
  StreamEngine engine(options);
  Pattern chain = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  engine.AddQuery(chain, /*window=*/5);
  engine.AddQuery(chain);  // inherits the engine-wide 1000

  std::vector<StreamAlert> alerts =
      FeedAll(engine, {Ev(1, 2, 0, 1, 0), Ev(2, 3, 1, 2, 50)});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].query_index, 1u);
  EXPECT_EQ(alerts[0].interval, (Interval{0, 50}));
}

}  // namespace
}  // namespace tgm
