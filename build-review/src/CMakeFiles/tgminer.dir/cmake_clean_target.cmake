file(REMOVE_RECURSE
  "libtgminer.a"
)
