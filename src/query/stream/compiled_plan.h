#ifndef TGM_QUERY_STREAM_COMPILED_PLAN_H_
#define TGM_QUERY_STREAM_COMPILED_PLAN_H_

#include <cstdint>
#include <vector>

#include "query/stream/event.h"
#include "temporal/pattern.h"

namespace tgm {

/// One state transition of a compiled behaviour query: matching pattern
/// edge k moves a partial match from state k to state k+1. Everything the
/// per-event dispatch needs — labels, which binding slots must already be
/// bound, injectivity scan length — is precomputed here, so the hot path
/// never re-derives it from the Pattern (cf. the per-edge guards of timed
/// automata for temporal graph patterns).
struct PlanTransition {
  LabelId elabel = kNoEdgeLabel;
  /// Binding slots of the edge endpoints (canonical pattern node ids).
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Labels required of a *newly bound* endpoint (already-bound endpoints
  /// were label-checked when first bound).
  LabelId src_label = kInvalidLabel;
  LabelId dst_label = kInvalidLabel;
  bool self_loop = false;
  /// Whether the endpoint slot is necessarily bound in any partial waiting
  /// on this transition (the node appears in an earlier pattern edge).
  /// Canonical consecutive growth guarantees at least one of the two for
  /// every edge after the first.
  bool src_bound = false;
  bool dst_bound = false;
  /// Number of bound binding slots in a partial waiting on this transition
  /// (canonical numbering makes the bound slots exactly [0, bound_nodes)),
  /// i.e. the injectivity scan length.
  std::uint32_t bound_nodes = 0;
};

/// A behaviour query compiled for per-event dispatch: the edge sequence is
/// flattened into a transition table indexed by the partial's next
/// unmatched edge. Built once at query registration; read-only afterwards
/// (shared freely across threads).
class CompiledQueryPlan {
 public:
  explicit CompiledQueryPlan(const Pattern& pattern);

  const Pattern& pattern() const { return pattern_; }
  std::size_t edge_count() const { return transitions_.size(); }
  std::size_t node_count() const { return pattern_.node_count(); }
  const PlanTransition& transition(std::size_t k) const {
    TGM_DCHECK(k < transitions_.size());
    return transitions_[k];
  }

  /// Cheap seed test: can `event` start a fresh partial (match edge 0)?
  bool SeedMatches(const StreamEvent& event) const {
    const PlanTransition& t = transitions_[0];
    return event.elabel == t.elabel &&
           t.self_loop == (event.src_entity == event.dst_entity) &&
           event.src_label == t.src_label &&
           (t.self_loop || event.dst_label == t.dst_label);
  }

 private:
  Pattern pattern_;
  std::vector<PlanTransition> transitions_;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_COMPILED_PLAN_H_
