#include "syslog/parser.h"

#include <charconv>
#include <istream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace tgm {

namespace {

const std::pair<const char*, EdgeOp> kOpTokens[] = {
    {"fork", EdgeOp::kFork},       {"exec", EdgeOp::kExec},
    {"read", EdgeOp::kRead},       {"write", EdgeOp::kWrite},
    {"mmap", EdgeOp::kMmap},       {"stat", EdgeOp::kStat},
    {"connect", EdgeOp::kConnect}, {"accept", EdgeOp::kAccept},
    {"send", EdgeOp::kSend},       {"recv", EdgeOp::kRecv},
    {"pipew", EdgeOp::kPipeW},     {"piper", EdgeOp::kPipeR},
    {"chmod", EdgeOp::kChmod},     {"unlink", EdgeOp::kUnlink},
    {"lock", EdgeOp::kLock},
};

// Splits "57:file:/etc/passwd" into id 57 and label "file:/etc/passwd".
bool SplitEntity(std::string_view token, std::int64_t* id,
                 std::string_view* label) {
  std::size_t colon = token.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= token.size()) {
    return false;
  }
  std::string_view id_part = token.substr(0, colon);
  auto [ptr, ec] = std::from_chars(id_part.data(),
                                   id_part.data() + id_part.size(), *id);
  if (ec != std::errc() || ptr != id_part.data() + id_part.size()) {
    return false;
  }
  *label = token.substr(colon + 1);
  return true;
}

}  // namespace

LabelId ParseOpToken(std::string_view token, SyslogWorld& world) {
  if (token.rfind("op:", 0) == 0) token = token.substr(3);
  for (const auto& [name, op] : kOpTokens) {
    if (token == name) return world.Op(op);
  }
  return kInvalidLabel;
}

std::optional<TemporalGraph> ParseSyscallLog(std::istream& is,
                                             SyslogWorld& world,
                                             ParseStats* stats) {
  ParseStats local;
  TemporalGraph g;
  std::unordered_map<std::int64_t, NodeId> entity_to_node;

  std::string line;
  while (std::getline(is, line)) {
    ++local.lines_total;
    // Trim leading whitespace; skip blanks and comments.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      ++local.lines_skipped;
      continue;
    }
    std::istringstream ls(line);
    Timestamp ts = 0;
    std::string op_token;
    std::string src_token;
    std::string dst_token;
    if (!(ls >> ts >> op_token >> src_token >> dst_token) || ts < 0) {
      ++local.lines_skipped;
      continue;
    }
    LabelId op = ParseOpToken(op_token, world);
    std::int64_t src_id = 0;
    std::int64_t dst_id = 0;
    std::string_view src_label;
    std::string_view dst_label;
    if (op == kInvalidLabel || !SplitEntity(src_token, &src_id, &src_label) ||
        !SplitEntity(dst_token, &dst_id, &dst_label) || src_id == dst_id) {
      ++local.lines_skipped;
      continue;
    }
    auto node_of = [&](std::int64_t id, std::string_view label) {
      auto it = entity_to_node.find(id);
      if (it != entity_to_node.end()) return it->second;
      NodeId node = g.AddNode(world.dict().Intern(label));
      entity_to_node.emplace(id, node);
      return node;
    };
    NodeId src = node_of(src_id, src_label);
    NodeId dst = node_of(dst_id, dst_label);
    g.AddEdge(src, dst, ts, op);
    ++local.events_parsed;
  }

  if (stats != nullptr) *stats = local;
  if (local.events_parsed == 0) return std::nullopt;
  g.Finalize(TiePolicy::kBreakByInsertionOrder);
  return g;
}

}  // namespace tgm
