file(REMOVE_RECURSE
  "CMakeFiles/api_session_test.dir/api_session_test.cc.o"
  "CMakeFiles/api_session_test.dir/api_session_test.cc.o.d"
  "api_session_test"
  "api_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
