#ifndef TGM_EXEC_WORK_STEALING_H_
#define TGM_EXEC_WORK_STEALING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/invariants.h"
#include "base/mutex.h"

namespace tgm {

class StealScheduler;

/// One participant's task store: a Chase-Lev-style double-ended queue —
/// the owner pushes and pops at the bottom (LIFO, so nested tasks run in
/// depth-first order with warm caches) while thieves take from the top
/// (FIFO, so the oldest — typically largest — pending task migrates
/// first). The classic Chase-Lev structure earns its lock-freedom with a
/// subtle circular-buffer/CAS protocol; the tasks scheduled here are
/// coarse (root subtrees, ParallelFor chunks, subgraph-isomorphism tests),
/// so this deque keeps only the *access pattern* and uses a plain mutex,
/// which the thread-safety analysis can then check. An atomic size mirror
/// lets empty probes (the steal scan's common case) skip the lock.
template <typename T>
class WorkDeque {
 public:
  WorkDeque() = default;
  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner side: push one item at the bottom.
  void PushBottom(T item) TGM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    items_.push_back(std::move(item));
    size_.store(items_.size(), std::memory_order_release);
  }

  /// Owner side: pop the most recently pushed item (LIFO).
  bool TryPopBottom(T* out) TGM_EXCLUDES(mu_) {
    if (size_.load(std::memory_order_acquire) == 0) return false;
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    size_.store(items_.size(), std::memory_order_release);
    return true;
  }

  /// Thief side: take the oldest pending item (FIFO).
  bool TrySteal(T* out) TGM_EXCLUDES(mu_) {
    if (size_.load(std::memory_order_acquire) == 0) return false;
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_release);
    return true;
  }

  /// Racy size probe; exact only when no concurrent push/pop is running.
  std::size_t SizeApprox() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Structural validator (base/invariants.h): the atomic size mirror must
  /// agree with the guarded container. Returns "" when consistent.
  std::string CheckInvariants() const TGM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const std::size_t mirrored = size_.load(std::memory_order_acquire);
    if (mirrored != items_.size()) {
      return "size mirror " + std::to_string(mirrored) +
             " != guarded size " + std::to_string(items_.size());
    }
    return std::string();
  }

 private:
  mutable Mutex mu_;
  std::deque<T> items_ TGM_GUARDED_BY(mu_);
  /// Mirror of items_.size(), updated under mu_; read lock-free by the
  /// empty probes above.
  std::atomic<std::size_t> size_{0};
};

/// A join scope for tasks running on a StealScheduler.
///
/// Run() hands a task to the scheduler; Wait() blocks until every task of
/// this group has finished — but a *helping* block: while tasks are
/// pending, the waiter executes queued tasks (its own deque first, then
/// the injector, then steals) instead of sleeping. That is what makes
/// nesting legal: a pool worker that reaches a join inside a task works
/// the backlog — including the very subtasks it is waiting for — so the
/// old ThreadPool::Submit no-nesting restriction is gone by construction.
///
/// Determinism is the caller's contract, exactly as with the old pool:
/// tasks must write per-slot results merged in a fixed order
/// (exec/parallel_for.h layers that on top). If tasks throw, Wait()
/// rethrows one captured exception — the *first to be recorded*, which is
/// completion-order dependent; callers needing a schedule-independent
/// choice keep per-task error slots (again, see ParallelFor).
///
/// With a null scheduler (or zero workers) Run() executes inline on the
/// caller, so serial configurations pay nothing.
class TaskGroup {
 public:
  explicit TaskGroup(StealScheduler* sched) : sched_(sched) {}
  /// Joins outstanding tasks (exceptions are swallowed here; call Wait()
  /// before destruction to observe them).
  ~TaskGroup() { WaitNoRethrow(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the group's scheduler (inline when the scheduler is
  /// null or workerless). Safe to call from inside another task.
  void Run(std::function<void()> fn) TGM_EXCLUDES(wait_mu_);

  /// Helping join: returns once every task Run() so far has finished,
  /// executing queued tasks while it waits. Rethrows the group's first
  /// recorded task exception, if any. The group is reusable afterwards.
  void Wait() TGM_EXCLUDES(wait_mu_);

  /// Structural validator: pending count non-negative; a quiescent group
  /// (no task in flight, nobody in Wait) must have zero pending tasks.
  std::string CheckInvariants(bool quiescent = true) const
      TGM_EXCLUDES(wait_mu_);

 private:
  friend class StealScheduler;

  void WaitNoRethrow() TGM_EXCLUDES(wait_mu_);
  /// Executes one queued scheduler task if any is available. Must not be
  /// called with wait_mu_ held: the task it runs may be one of this very
  /// group's, whose completion locks wait_mu_ to signal — the nested-join
  /// self-deadlock this scheduler exists to eliminate.
  bool HelpOne() TGM_EXCLUDES(wait_mu_);
  /// Bounded park while nothing is runnable; completions notify done_cv_,
  /// new stealable work is re-polled on timeout.
  void ParkUntilProgress() TGM_EXCLUDES(wait_mu_);
  /// Called by the scheduler after a task of this group finished.
  void OnTaskFinished() TGM_EXCLUDES(wait_mu_);
  /// Captures std::current_exception() as the group error (first wins).
  void RecordError() TGM_EXCLUDES(err_mu_);
  void RethrowIfError() TGM_EXCLUDES(err_mu_);

  StealScheduler* const sched_;
  /// The join channel: pending_ counts scheduled-but-unfinished tasks;
  /// done_cv_ signals decrements to zero.
  mutable Mutex wait_mu_;
  CondVar done_cv_;
  std::int64_t pending_ TGM_GUARDED_BY(wait_mu_) = 0;
  mutable Mutex err_mu_;
  std::exception_ptr error_ TGM_GUARDED_BY(err_mu_);
};

/// The steal-capable execution engine behind the miner and the stream
/// engine: N worker threads, one WorkDeque per worker, plus a shared
/// injector deque for submissions from non-worker threads.
///
/// Scheduling: a worker runs its own deque bottom-first (LIFO), then takes
/// from the injector, then steals the top of sibling deques in a
/// round-robin scan — so nested tasks stay local and depth-first while
/// idle workers drain whoever is behind, which is what removes the
/// join-on-slowest-member tail that fixed chunk assignment had.
///
/// Blocked joins help instead of sleeping (TaskGroup::Wait), so tasks may
/// freely schedule and join subtasks on the same scheduler; the old
/// ThreadPool's "tasks must not block on other tasks" restriction is
/// lifted. Idle workers park on a condvar with the bounded-timeout
/// discipline of SpscQueue: wakeups lost to the sleeper-count race cost at
/// most one timeout period, never a hang.
///
/// The scheduler provides mechanism only; determinism is the callers'
/// contract (per-slot results merged in fixed order — see ParallelFor and
/// the miner's commit protocol), which is why ranked miner output is
/// bit-identical for every worker count and steal schedule.
class StealScheduler {
 public:
  /// Spawns `num_workers` workers (0 is allowed; everything then runs
  /// inline on the submitting/waiting thread).
  explicit StealScheduler(int num_workers);

  /// Drains queued tasks, then joins the workers. Group tasks are always
  /// joined by their TaskGroup before it dies, so at destruction time only
  /// detached Submit() tasks can still be queued; they are run, not
  /// dropped.
  ~StealScheduler() TGM_EXCLUDES(mu_);

  StealScheduler(const StealScheduler&) = delete;
  StealScheduler& operator=(const StealScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a detached (join-less) task; with zero workers it runs
  /// inline. Prefer TaskGroup for anything that must be joined.
  void Submit(std::function<void()> task) TGM_EXCLUDES(mu_);

  /// Executes one queued task on the calling thread if any is runnable.
  /// The helping primitive under TaskGroup::Wait; also usable directly by
  /// tests. Must not be called while holding a TaskGroup's wait_mu_ (see
  /// TaskGroup::HelpOne).
  bool RunOneTask();

  /// Structural validator. Always checks per-deque consistency and the
  /// sleeper count range; `quiescent` (no task executing) additionally
  /// requires the enqueue/execute counters to agree with the queued
  /// backlog. Call at task boundaries — e.g. the miner validates between
  /// root batches under TGMINER_CHECK_INVARIANTS.
  std::string CheckInvariants(bool quiescent = true) const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// Routes a task to the calling worker's own deque (LIFO nesting) or,
  /// from outside the pool, to the shared injector; wakes a sleeper.
  void Enqueue(std::function<void()> fn, TaskGroup* group) TGM_EXCLUDES(mu_);
  /// Takes one task as worker `self` (own deque, injector, steal scan);
  /// `self` < 0 means a non-worker thread (injector, then steal scan).
  bool AcquireTask(int self, Task* out);
  /// Lock-free probe of every queue's size mirror; used by idle workers
  /// to skip the park when work raced their sleeper registration.
  bool AnyWorkApprox() const;
  /// Runs `t`, records its error (if grouped), signals its group.
  void Execute(Task& t);
  void NotifyIfSleeping() TGM_EXCLUDES(mu_);
  void WorkerLoop(int index) TGM_EXCLUDES(mu_);

  std::vector<WorkDeque<Task>> deques_;  // one per worker
  WorkDeque<Task> injector_;             // submissions from non-workers
  /// Lifetime task counters; quiescent invariant: enqueued - executed ==
  /// queued backlog.
  std::atomic<std::int64_t> tasks_enqueued_{0};
  std::atomic<std::int64_t> tasks_executed_{0};
  /// Parking channel for idle workers. Guards stop_ only; the sleeper
  /// count is an atomic so enqueues can probe it without taking the lock
  /// (the bounded WaitFor recovers wakeups lost to that race).
  Mutex mu_;
  CondVar cv_;
  bool stop_ TGM_GUARDED_BY(mu_) = false;
  std::atomic<int> sleepers_{0};
  /// Written once by the constructor before any worker can observe it;
  /// read-only afterwards.
  std::vector<std::thread> workers_;
};

/// Resolves a `num_threads` config knob into a concrete thread count:
/// values <= 0 mean "all hardware threads"; anything else is taken as-is.
int ResolveNumThreads(int requested);

}  // namespace tgm

#endif  // TGM_EXEC_WORK_STEALING_H_
