#include "query/stream_monitor.h"

#include <algorithm>

namespace tgm {

std::size_t StreamMonitor::AddQuery(const Pattern& query) {
  TGM_CHECK(query.edge_count() >= 1);
  QueryState state;
  state.pattern = query;
  queries_.push_back(std::move(state));
  return queries_.size() - 1;
}

void StreamMonitor::OnEvent(
    const StreamEvent& event,
    const std::function<void(const StreamAlert&)>& sink) {
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    Advance(queries_[qi], qi, event, sink);
  }
}

std::size_t StreamMonitor::PartialCount() const {
  std::size_t total = 0;
  for (const QueryState& q : queries_) total += q.partials.size();
  return total;
}

void StreamMonitor::Advance(
    QueryState& state, std::size_t query_index, const StreamEvent& event,
    const std::function<void(const StreamAlert&)>& sink) {
  const Pattern& pattern = state.pattern;
  std::vector<Partial>& partials = state.partials;

  if (options_.window > 0) {
    // Expire by full scan (stable compaction). Extensions inherit their
    // base's first_ts but sit at the back of the list, so it is not
    // ordered by first_ts; expiring only from the front would strand
    // expired partials behind any younger one — alive forever as far as
    // PartialCount and the max_partials cap are concerned, though the
    // window check makes them unextendable.
    std::size_t live = 0;
    for (std::size_t i = 0; i < partials.size(); ++i) {
      if (event.ts - partials[i].first_ts > options_.window) continue;
      if (live != i) partials[live] = std::move(partials[i]);
      ++live;
    }
    partials.resize(live);
    // Emitted-interval dedup entries older than the window can never be
    // duplicated again; the set is ordered by begin, so they form its
    // prefix.
    auto it = state.emitted.begin();
    while (it != state.emitted.end() &&
           event.ts - it->begin > options_.window) {
      it = state.emitted.erase(it);
    }
  }

  auto try_extend = [&](const Partial* base) {
    std::size_t k = base == nullptr ? 0 : base->next_edge;
    const PatternEdge& qe = pattern.edge(k);
    if (event.elabel != qe.elabel) return;
    if ((qe.src == qe.dst) != (event.src_entity == event.dst_entity)) return;

    std::int64_t bound_src =
        base == nullptr
            ? kUnbound
            : base->binding[static_cast<std::size_t>(qe.src)];
    std::int64_t bound_dst =
        base == nullptr
            ? kUnbound
            : base->binding[static_cast<std::size_t>(qe.dst)];
    if (bound_src != kUnbound && bound_src != event.src_entity) return;
    if (bound_dst != kUnbound && bound_dst != event.dst_entity) return;
    if (bound_src == kUnbound) {
      if (event.src_label != pattern.label(qe.src)) return;
      // Injectivity: the new entity must not already be bound elsewhere.
      if (base != nullptr &&
          std::find(base->binding.begin(), base->binding.end(),
                    event.src_entity) != base->binding.end()) {
        return;
      }
    }
    if (bound_dst == kUnbound && qe.src != qe.dst) {
      if (event.dst_label != pattern.label(qe.dst)) return;
      if (base != nullptr &&
          std::find(base->binding.begin(), base->binding.end(),
                    event.dst_entity) != base->binding.end()) {
        return;
      }
      if (bound_src == kUnbound && event.src_entity == event.dst_entity) {
        return;
      }
    }

    Partial extended;
    if (base == nullptr) {
      extended.binding.assign(pattern.node_count(), kUnbound);
      extended.first_ts = event.ts;
    } else {
      extended = *base;
    }
    extended.binding[static_cast<std::size_t>(qe.src)] = event.src_entity;
    extended.binding[static_cast<std::size_t>(qe.dst)] = event.dst_entity;
    extended.next_edge = k + 1;
    extended.last_ts = event.ts;
    if (options_.window > 0 &&
        extended.last_ts - extended.first_ts > options_.window) {
      return;
    }

    if (extended.next_edge == pattern.edge_count()) {
      Interval interval{extended.first_ts, extended.last_ts};
      // One ordered probe both tests and records the interval.
      if (state.emitted.insert(interval).second) {
        sink(StreamAlert{query_index, interval});
      }
      return;
    }
    if (partials.size() + pending_.size() >=
        options_.max_partials_per_query) {
      ++dropped_partials_;
      return;
    }
    pending_.push_back(std::move(extended));
  };

  // Existing partials first. Extensions land in pending_, so the live list
  // is never reallocated mid-scan and each base is read in place — no
  // per-partial snapshot copy, and nothing appended during this event can
  // be re-extended by the same event.
  for (const Partial& base : partials) try_extend(&base);
  // And a fresh partial starting at this event.
  try_extend(nullptr);

  for (Partial& p : pending_) partials.push_back(std::move(p));
  pending_.clear();
}

}  // namespace tgm
