#include "query/searcher.h"

#include <algorithm>
#include <limits>
#include <set>

namespace tgm {

struct TemporalQuerySearcher::SearchContext {
  const Pattern* query = nullptr;
  const TemporalGraph* log = nullptr;
  const Options* options = nullptr;
  std::vector<std::size_t> plan;     // order in which pattern edges bind
  std::vector<NodeId> node_map;      // pattern node -> data node
  std::vector<bool> used;            // data node bound
  std::vector<EdgePos> pos_of;       // pattern edge -> data position (-1)
  std::int64_t raw_matches = 0;
  bool stop = false;
  std::set<Interval> intervals;
};

void TemporalQuerySearcher::Extend(SearchContext& ctx,
                                   std::size_t step) const {
  if (ctx.stop) return;
  const Pattern& query = *ctx.query;
  const TemporalGraph& log = *ctx.log;
  std::size_t num_edges = query.edge_count();
  if (step == ctx.plan.size()) {
    ++ctx.raw_matches;
    Interval interval{log.edge(ctx.pos_of[0]).ts,
                      log.edge(ctx.pos_of[num_edges - 1]).ts};
    ctx.intervals.insert(interval);
    if (ctx.options->max_matches > 0 &&
        ctx.raw_matches >= ctx.options->max_matches) {
      ctx.stop = true;
    }
    return;
  }

  std::size_t k = ctx.plan[step];
  const PatternEdge& qe = query.edge(k);
  bool ascending = k == 0 || ctx.pos_of[k - 1] >= 0;

  // Position bounds from the already-bound neighbours in pattern order.
  EdgePos lo = -1;
  EdgePos hi = std::numeric_limits<EdgePos>::max();
  if (k > 0 && ctx.pos_of[k - 1] >= 0) lo = ctx.pos_of[k - 1];
  if (k + 1 < num_edges && ctx.pos_of[k + 1] >= 0) hi = ctx.pos_of[k + 1];

  Timestamp min_ts = std::numeric_limits<Timestamp>::max();
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  for (std::size_t i = 0; i < num_edges; ++i) {
    if (ctx.pos_of[i] < 0) continue;
    Timestamp ts = log.edge(ctx.pos_of[i]).ts;
    min_ts = std::min(min_ts, ts);
    max_ts = std::max(max_ts, ts);
  }

  NodeId ms = ctx.node_map[static_cast<std::size_t>(qe.src)];
  NodeId md = ctx.node_map[static_cast<std::size_t>(qe.dst)];

  auto try_position = [&](EdgePos p) {
    if (ctx.stop) return;
    if (p <= lo || p >= hi) return;
    const TemporalEdge& de = log.edge(p);
    if (de.elabel != qe.elabel) return;
    if (ctx.options->window > 0) {
      Timestamp new_min = std::min(min_ts, de.ts);
      Timestamp new_max = std::max(max_ts, de.ts);
      if (new_max - new_min > ctx.options->window) return;
    }
    if ((qe.src == qe.dst) != (de.src == de.dst)) return;
    if (ms != kInvalidNode && de.src != ms) return;
    if (md != kInvalidNode && de.dst != md) return;
    if (ms == kInvalidNode) {
      if (log.label(de.src) != query.label(qe.src)) return;
      if (ctx.used[static_cast<std::size_t>(de.src)]) return;
    }
    if (md == kInvalidNode && qe.src != qe.dst) {
      if (log.label(de.dst) != query.label(qe.dst)) return;
      if (ctx.used[static_cast<std::size_t>(de.dst)]) return;
      if (ms == kInvalidNode && de.src == de.dst) return;
    }
    bool bound_src = false;
    bool bound_dst = false;
    if (ms == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.src)] = de.src;
      ctx.used[static_cast<std::size_t>(de.src)] = true;
      bound_src = true;
    }
    if (qe.src != qe.dst &&
        ctx.node_map[static_cast<std::size_t>(qe.dst)] == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = de.dst;
      ctx.used[static_cast<std::size_t>(de.dst)] = true;
      bound_dst = true;
    }
    ctx.pos_of[k] = p;
    Extend(ctx, step + 1);
    ctx.pos_of[k] = -1;
    if (bound_dst) {
      ctx.used[static_cast<std::size_t>(de.dst)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = kInvalidNode;
    }
    if (bound_src) {
      ctx.used[static_cast<std::size_t>(de.src)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.src)] = kInvalidNode;
    }
  };

  // Candidate list selection: adjacency when an endpoint is bound,
  // signature index otherwise. Lists are ascending in position (and thus
  // in timestamp), so window violations terminate the scan early in the
  // ascending direction.
  EdgePosSpan positions;
  if (ms != kInvalidNode) {
    positions = log.out_edges(ms);
  } else if (md != kInvalidNode) {
    positions = log.in_edges(md);
  } else {
    positions = log.EdgesWithSignature(query.label(qe.src),
                                       query.label(qe.dst), qe.elabel);
  }

  if (ascending) {
    auto it = std::upper_bound(positions.begin(), positions.end(), lo);
    for (; it != positions.end() && !ctx.stop; ++it) {
      if (*it >= hi) break;
      if (ctx.options->window > 0 && max_ts != std::numeric_limits<Timestamp>::min() &&
          log.edge(*it).ts - min_ts > ctx.options->window) {
        break;  // positions only get later; no candidate can fit the window
      }
      try_position(*it);
    }
  } else {
    auto it = std::lower_bound(positions.begin(), positions.end(), hi);
    while (it != positions.begin() && !ctx.stop) {
      --it;
      if (*it <= lo) break;
      if (ctx.options->window > 0 && min_ts != std::numeric_limits<Timestamp>::max() &&
          max_ts - log.edge(*it).ts > ctx.options->window) {
        break;  // positions only get earlier
      }
      try_position(*it);
    }
  }
}

std::vector<Interval> TemporalQuerySearcher::Search(
    const Pattern& query, const TemporalGraph& log) const {
  TGM_CHECK(log.finalized());
  std::size_t num_edges = query.edge_count();
  if (num_edges == 0 || log.edge_count() == 0) return {};

  // Anchor: the pattern edge with the fewest signature occurrences.
  std::size_t anchor = 0;
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  for (std::size_t k = 0; k < num_edges; ++k) {
    const PatternEdge& qe = query.edge(k);
    std::size_t count = log.EdgesWithSignature(query.label(qe.src),
                                               query.label(qe.dst), qe.elabel)
                            .size();
    if (count < best_count) {
      best_count = count;
      anchor = k;
    }
  }
  if (best_count == 0) return {};

  SearchContext ctx;
  ctx.query = &query;
  ctx.log = &log;
  ctx.options = &options_;
  ctx.plan.push_back(anchor);
  for (std::size_t k = anchor + 1; k < num_edges; ++k) ctx.plan.push_back(k);
  for (std::size_t k = anchor; k-- > 0;) ctx.plan.push_back(k);
  ctx.node_map.assign(query.node_count(), kInvalidNode);
  ctx.used.assign(log.node_count(), false);
  ctx.pos_of.assign(num_edges, -1);

  Extend(ctx, 0);

  return std::vector<Interval>(ctx.intervals.begin(), ctx.intervals.end());
}

std::vector<Interval> TemporalQuerySearcher::SearchAll(
    const std::vector<Pattern>& queries, const TemporalGraph& log) const {
  std::set<Interval> all;
  for (const Pattern& q : queries) {
    for (const Interval& interval : Search(q, log)) {
      all.insert(interval);
    }
  }
  return std::vector<Interval>(all.begin(), all.end());
}

}  // namespace tgm
