file(REMOVE_RECURSE
  "CMakeFiles/stream_shard_test.dir/stream_shard_test.cc.o"
  "CMakeFiles/stream_shard_test.dir/stream_shard_test.cc.o.d"
  "stream_shard_test"
  "stream_shard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
