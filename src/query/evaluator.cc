#include "query/evaluator.h"

#include <algorithm>

namespace tgm {

AccuracyResult EvaluateAccuracy(const std::vector<Interval>& matches,
                                const std::vector<TruthInstance>& truth,
                                BehaviorKind behavior) {
  AccuracyResult result;
  std::vector<TruthInstance> targets;
  for (const TruthInstance& t : truth) {
    if (t.behavior == behavior) targets.push_back(t);
  }
  std::sort(targets.begin(), targets.end(),
            [](const TruthInstance& a, const TruthInstance& b) {
              return a.t_begin < b.t_begin;
            });
  result.instances = static_cast<std::int64_t>(targets.size());
  std::vector<bool> hit(targets.size(), false);

  result.identified = static_cast<std::int64_t>(matches.size());
  for (const Interval& m : matches) {
    // Find candidate truth intervals with t_begin <= m.begin; the intervals
    // are non-overlapping by construction, so checking the closest
    // predecessor suffices.
    auto it = std::upper_bound(
        targets.begin(), targets.end(), m.begin,
        [](Timestamp t, const TruthInstance& inst) { return t < inst.t_begin; });
    if (it == targets.begin()) continue;
    --it;
    if (m.begin >= it->t_begin && m.end <= it->t_end) {
      ++result.correct;
      hit[static_cast<std::size_t>(it - targets.begin())] = true;
    }
  }
  for (bool h : hit) result.discovered += h ? 1 : 0;
  return result;
}

}  // namespace tgm
