#include "query/stream/query_runtime.h"

#include <algorithm>

namespace tgm {

void QueryRuntime::Advance(const StreamEvent& event,
                           std::vector<Interval>* completions) {
  const auto out_base =
      static_cast<std::vector<Interval>::difference_type>(completions->size());
  if (limits_.window > 0) {
    // A partial expires when event.ts - first_ts > window, i.e. exactly
    // when first_ts < event.ts - window.
    table_.ExpireBefore(event.ts - limits_.window);
    // Emitted-interval dedup entries older than the window can never be
    // duplicated again; the set is ordered by begin, so they form its
    // prefix.
    while (!emitted_.empty() &&
           event.ts - emitted_.begin()->begin > limits_.window) {
      emitted_.erase(emitted_.begin());
    }
  }

  // Existing partials first. Extensions land in the pending scratch, so
  // the table is never mutated mid-scan and nothing produced by this event
  // can be re-extended by it.
  candidates_.clear();
  table_.CollectCandidates(event.src_entity, event.dst_entity, &candidates_);
  for (std::uint32_t slot : candidates_) TryExtend(event, slot, completions);
  // And a fresh partial starting at this event.
  TrySeed(event, completions);

  InsertPending();
  // Intervals are distinct (dedup above), so this order is total.
  std::sort(completions->begin() + out_base, completions->end());
}

void QueryRuntime::TryExtend(const StreamEvent& event, std::uint32_t slot,
                             std::vector<Interval>* completions) {
  const std::uint32_t k = table_.next_edge(slot);
  const PlanTransition& t = plan_.transition(k);
  if (event.elabel != t.elabel) return;
  if (t.self_loop != (event.src_entity == event.dst_entity)) return;

  std::span<const std::int64_t> binding = table_.binding(slot);
  const std::int64_t bound_src =
      t.src_bound ? binding[static_cast<std::size_t>(t.src)] : kUnbound;
  const std::int64_t bound_dst =
      t.dst_bound ? binding[static_cast<std::size_t>(t.dst)] : kUnbound;
  if (bound_src != kUnbound && bound_src != event.src_entity) return;
  if (bound_dst != kUnbound && bound_dst != event.dst_entity) return;
  // Canonical numbering makes the bound slots exactly [0, t.bound_nodes),
  // so injectivity only needs to scan that prefix.
  std::span<const std::int64_t> bound = binding.first(t.bound_nodes);
  if (bound_src == kUnbound) {
    if (event.src_label != t.src_label) return;
    // Injectivity: the new entity must not already be bound elsewhere.
    if (std::find(bound.begin(), bound.end(), event.src_entity) !=
        bound.end()) {
      return;
    }
  }
  if (bound_dst == kUnbound && !t.self_loop) {
    if (event.dst_label != t.dst_label) return;
    if (std::find(bound.begin(), bound.end(), event.dst_entity) !=
        bound.end()) {
      return;
    }
    if (bound_src == kUnbound && event.src_entity == event.dst_entity) return;
  }

  const Timestamp first = table_.first_ts(slot);
  if (limits_.window > 0 && event.ts - first > limits_.window) return;
  if (k + 1 == plan_.edge_count()) {
    Complete(Interval{first, event.ts}, completions);
    return;
  }
  QueuePending(binding, event, k, first);
}

void QueryRuntime::TrySeed(const StreamEvent& event,
                           std::vector<Interval>* completions) {
  if (!plan_.SeedMatches(event)) return;
  if (plan_.edge_count() == 1) {
    Complete(Interval{event.ts, event.ts}, completions);
    return;
  }
  QueuePending({}, event, 0, event.ts);
}

void QueryRuntime::Complete(Interval interval,
                            std::vector<Interval>* completions) {
  // One ordered probe both tests and records the interval.
  if (emitted_.insert(interval).second) {
    completions->push_back(interval);
    ++alerts_;
  }
}

void QueryRuntime::QueuePending(std::span<const std::int64_t> base_binding,
                                const StreamEvent& event,
                                std::uint32_t matched_edge,
                                Timestamp first_ts) {
  const std::size_t n = plan_.node_count();
  const std::size_t off = pending_bindings_.size();
  pending_bindings_.resize(off + n, kUnbound);
  if (!base_binding.empty()) {
    std::copy(base_binding.begin(), base_binding.end(),
              pending_bindings_.begin() +
                  static_cast<std::ptrdiff_t>(off));
  }
  const PlanTransition& t = plan_.transition(matched_edge);
  pending_bindings_[off + static_cast<std::size_t>(t.src)] = event.src_entity;
  pending_bindings_[off + static_cast<std::size_t>(t.dst)] = event.dst_entity;
  pending_.push_back(PendingMeta{matched_edge + 1, first_ts});
}

void QueryRuntime::InsertPending() {
  const std::size_t n = plan_.node_count();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    std::span<const std::int64_t> binding{pending_bindings_.data() + i * n, n};
    if (table_.live() >= limits_.max_partials) {
      // Backpressure: make room by evicting the oldest live partial (see
      // StreamLimits::max_partials). With a zero cap nothing can be
      // stored at all, so the newcomer itself is the drop.
      ++dropped_partials_;
      if (limits_.max_partials == 0) continue;
      table_.EvictOldest();
    }
    const PlanTransition& t = plan_.transition(pending_[i].next_edge);
    PartialTable::Role role = PartialTable::Role::kWildcard;
    std::int64_t key = 0;
    if (binding[static_cast<std::size_t>(t.src)] != kUnbound) {
      role = PartialTable::Role::kSrc;
      key = binding[static_cast<std::size_t>(t.src)];
    } else if (binding[static_cast<std::size_t>(t.dst)] != kUnbound) {
      role = PartialTable::Role::kDst;
      key = binding[static_cast<std::size_t>(t.dst)];
    }
    table_.Insert(binding, pending_[i].next_edge, pending_[i].first_ts, role,
                  key);
  }
  pending_.clear();
  pending_bindings_.clear();
}

}  // namespace tgm
