#ifndef TGM_BASE_ANNOTATIONS_H_
#define TGM_BASE_ANNOTATIONS_H_

/// \file annotations.h
/// Clang thread-safety (capability) annotations, Abseil-style.
///
/// Under Clang these expand to the attributes that drive the
/// `-Wthread-safety` capability analysis: the compiler proves, per
/// function, that every access to a `TGM_GUARDED_BY(mu)` member happens
/// while `mu` is held, that `TGM_REQUIRES(mu)` functions are only called
/// with `mu` held, and that `TGM_EXCLUDES(mu)` functions are never called
/// while it is. Off Clang every macro is a no-op, so annotated code builds
/// unchanged under GCC/MSVC.
///
/// The annotations attach to the project's own synchronization vocabulary
/// (base/mutex.h: Mutex, MutexLock, CondVar, ThreadRole, RoleGuard) rather
/// than `std::mutex`, because libstdc++'s `std::mutex` carries no
/// capability attributes — the analysis can only track acquisitions it can
/// see. Clang builds add `-Wthread-safety -Werror=thread-safety`
/// (top-level CMakeLists), so a locking-discipline violation is a build
/// failure: the PR 7 SpscQueue self-deadlock (re-running a notifying
/// TGM_EXCLUDES(mu_) ring op from inside the parked wait loop that holds
/// `mu_`) is exactly the class of bug this rejects at compile time —
/// `scripts/run_static_analysis.sh --seeded-defect` re-introduces that
/// pattern and asserts the build fails.

#if defined(__clang__) && defined(__has_attribute)
#define TGM_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define TGM_TS_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a class as a capability ("mutex", "role", ...). Instances can be
/// named in the other annotations below.
#define TGM_CAPABILITY(x) TGM_TS_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock, RoleGuard).
#define TGM_SCOPED_CAPABILITY TGM_TS_ATTRIBUTE__(scoped_lockable)

/// Declares that the member it annotates is protected by the given
/// capability: reads and writes require holding it.
#define TGM_GUARDED_BY(x) TGM_TS_ATTRIBUTE__(guarded_by(x))

/// Same for the data a pointer member points to.
#define TGM_PT_GUARDED_BY(x) TGM_TS_ATTRIBUTE__(pt_guarded_by(x))

/// The annotated function may only be called while holding the given
/// capability (it neither acquires nor releases it).
#define TGM_REQUIRES(...) \
  TGM_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define TGM_REQUIRES_SHARED(...) \
  TGM_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability (and does not release
/// it before returning); callers must not already hold it.
#define TGM_ACQUIRE(...) \
  TGM_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The annotated function releases a capability the caller holds.
#define TGM_RELEASE(...) \
  TGM_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The annotated function acquires the capability when it returns the
/// given value (try_lock-style).
#define TGM_TRY_ACQUIRE(...) \
  TGM_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the capability
/// — it acquires and releases it internally. This is the contract whose
/// violation was the PR 7 deadlock.
#define TGM_EXCLUDES(...) TGM_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The annotated accessor returns a reference to the named capability
/// (lets `obj.role()` stand for `obj.role_` in callers' annotations).
#define TGM_RETURN_CAPABILITY(x) TGM_TS_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is correct but inexpressible; say why in a comment.
#define TGM_NO_THREAD_SAFETY_ANALYSIS \
  TGM_TS_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TGM_BASE_ANNOTATIONS_H_
