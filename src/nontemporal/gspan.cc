#include "nontemporal/gspan.h"

#include <algorithm>
#include <chrono>

namespace tgm {

GspanMiner::GspanMiner(const GspanConfig& config,
                       std::vector<const StaticGraph*> positives,
                       std::vector<const StaticGraph*> negatives)
    : config_(config),
      pos_graphs_(std::move(positives)),
      neg_graphs_(std::move(negatives)),
      score_(config.score_kind, static_cast<std::int64_t>(pos_graphs_.size()),
             static_cast<std::int64_t>(neg_graphs_.size()), config.epsilon),
      best_score_(-std::numeric_limits<double>::infinity()) {
  TGM_CHECK(config_.max_edges >= 1);
  TGM_CHECK(!pos_graphs_.empty());
  TGM_CHECK(!neg_graphs_.empty());
}

GspanMiner::GspanMiner(const GspanConfig& config,
                       const std::vector<StaticGraph>& positives,
                       const std::vector<StaticGraph>& negatives)
    : GspanMiner(config,
                 [&positives] {
                   std::vector<const StaticGraph*> ptrs;
                   ptrs.reserve(positives.size());
                   for (const StaticGraph& g : positives) ptrs.push_back(&g);
                   return ptrs;
                 }(),
                 [&negatives] {
                   std::vector<const StaticGraph*> ptrs;
                   ptrs.reserve(negatives.size());
                   for (const StaticGraph& g : negatives) ptrs.push_back(&g);
                   return ptrs;
                 }()) {}

void GspanMiner::DedupeAndCap(SEmbeddingTable& table) {
  for (SGraphEmbeddings& ge : table) {
    std::sort(ge.embeds.begin(), ge.embeds.end());
    ge.embeds.erase(std::unique(ge.embeds.begin(), ge.embeds.end()),
                    ge.embeds.end());
    if (config_.max_embeddings_per_graph > 0 &&
        static_cast<std::int64_t>(ge.embeds.size()) >
            config_.max_embeddings_per_graph) {
      ge.embeds.resize(
          static_cast<std::size_t>(config_.max_embeddings_per_graph));
    }
  }
}

void GspanMiner::CollectExtensions(const DfsCode& code,
                                   const SEmbeddingTable& table,
                                   const std::vector<const StaticGraph*>&
                                       graphs,
                                   bool positive_side,
                                   std::map<EntryKey, ChildBuckets>& out)
    const {
  std::vector<std::int32_t> path = RightmostPath(code);
  std::int32_t rightmost = path.back();
  std::int32_t next_id = rightmost + 1;

  auto dir_edge_in_code = [&code](std::int32_t a, std::int32_t b,
                                  LabelId elabel) {
    for (const DfsCodeEntry& e : code) {
      std::int32_t s = e.along ? e.from : e.to;
      std::int32_t d = e.along ? e.to : e.from;
      if (s == a && d == b && e.elabel == elabel) return true;
    }
    return false;
  };

  for (const SGraphEmbeddings& ge : table) {
    const StaticGraph& g = *graphs[static_cast<std::size_t>(ge.graph)];
    for (const SEmbedding& emb : ge.embeds) {
      auto is_mapped = [&emb](NodeId data_node) {
        return std::find(emb.nodes.begin(), emb.nodes.end(), data_node) !=
               emb.nodes.end();
      };
      auto emit = [&](const DfsCodeEntry& entry, NodeId new_node) {
        ChildBuckets& bucket = out[EntryKey{entry}];
        SEmbeddingTable& side = positive_side ? bucket.pos : bucket.neg;
        if (side.empty() || side.back().graph != ge.graph) {
          side.push_back(SGraphEmbeddings{ge.graph, {}});
        }
        SEmbedding child = emb;
        if (new_node != kInvalidNode) child.nodes.push_back(new_node);
        side.back().embeds.push_back(std::move(child));
      };

      NodeId fr = emb.nodes[static_cast<std::size_t>(rightmost)];
      // Backward extensions from the rightmost vertex.
      for (std::int32_t v : path) {
        if (v == rightmost) continue;
        NodeId fv = emb.nodes[static_cast<std::size_t>(v)];
        for (std::int32_t ei : g.out_edges(fr)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (de.dst != fv) continue;
          if (dir_edge_in_code(rightmost, v, de.elabel)) continue;
          emit(DfsCodeEntry{rightmost, v, g.label(fr), g.label(fv), de.elabel,
                            true},
               kInvalidNode);
        }
        for (std::int32_t ei : g.in_edges(fr)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (de.src != fv) continue;
          if (dir_edge_in_code(v, rightmost, de.elabel)) continue;
          emit(DfsCodeEntry{rightmost, v, g.label(fr), g.label(fv), de.elabel,
                            false},
               kInvalidNode);
        }
      }
      // Forward extensions from rightmost-path nodes.
      for (std::int32_t u : path) {
        NodeId fu = emb.nodes[static_cast<std::size_t>(u)];
        for (std::int32_t ei : g.out_edges(fu)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (is_mapped(de.dst)) continue;
          emit(DfsCodeEntry{u, next_id, g.label(fu), g.label(de.dst),
                            de.elabel, true},
               de.dst);
        }
        for (std::int32_t ei : g.in_edges(fu)) {
          const StaticEdge& de = g.edge(static_cast<std::size_t>(ei));
          if (is_mapped(de.src)) continue;
          emit(DfsCodeEntry{u, next_id, g.label(fu), g.label(de.src),
                            de.elabel, false},
               de.src);
        }
      }
    }
  }
}

void GspanMiner::UpdateTop(const DfsCode& code, double freq_pos,
                           double freq_neg, double score,
                           std::int64_t support_pos,
                           std::int64_t support_neg) {
  if (support_pos == 0) return;
  // As in the temporal miner, the support floor also filters results:
  // minority-run patterns are noise, not behaviour signatures.
  if (freq_pos < config_.min_pos_freq) return;
  best_score_ = std::max(best_score_, score);
  if (static_cast<int>(top_.size()) >= config_.top_k &&
      score <= top_.back().score) {
    return;
  }
  StaticMinedPattern mined;
  mined.code = code;
  mined.graph = GraphFromCode(code);
  mined.freq_pos = freq_pos;
  mined.freq_neg = freq_neg;
  mined.score = score;
  mined.support_pos = support_pos;
  mined.support_neg = support_neg;
  auto it = std::upper_bound(
      top_.begin(), top_.end(), mined,
      [](const StaticMinedPattern& a, const StaticMinedPattern& b) {
        return a.score > b.score;
      });
  top_.insert(it, std::move(mined));
  if (static_cast<int>(top_.size()) > config_.top_k) top_.pop_back();
}

bool GspanMiner::BudgetExhausted() {
  if (config_.max_visited > 0 && visited_ >= config_.max_visited) return true;
  if (config_.max_millis > 0) {
    if ((visited_ & 63) == 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
      if (elapsed >= config_.max_millis) timed_out_ = true;
    }
    if (timed_out_) return true;
  }
  return false;
}

double GspanMiner::Dfs(const DfsCode& code, SEmbeddingTable pos_table,
                       SEmbeddingTable neg_table) {
  ++visited_;
  std::int64_t support_pos = static_cast<std::int64_t>(pos_table.size());
  std::int64_t support_neg = static_cast<std::int64_t>(neg_table.size());
  double freq_pos = static_cast<double>(support_pos) /
                    static_cast<double>(pos_graphs_.size());
  double freq_neg = static_cast<double>(support_neg) /
                    static_cast<double>(neg_graphs_.size());
  double own_score = score_(freq_pos, freq_neg);
  UpdateTop(code, freq_pos, freq_neg, own_score, support_pos, support_neg);

  if (static_cast<int>(code.size()) >= config_.max_edges) return own_score;
  if (BudgetExhausted()) return own_score;
  if (support_pos == 0) return own_score;
  if (config_.use_naive_bound && score_.UpperBound(freq_pos) < best_score_) {
    return own_score;
  }
  if (config_.stop_at_top_k_ties &&
      static_cast<int>(top_.size()) >= config_.top_k &&
      score_.UpperBound(freq_pos) <= top_.back().score) {
    return own_score;
  }
  if (freq_pos < config_.min_pos_freq) return own_score;

  std::map<EntryKey, ChildBuckets> extensions;
  CollectExtensions(code, pos_table, pos_graphs_, true, extensions);
  CollectExtensions(code, neg_table, neg_graphs_, false, extensions);
  pos_table.clear();
  pos_table.shrink_to_fit();
  neg_table.clear();
  neg_table.shrink_to_fit();

  struct ChildWork {
    DfsCodeEntry entry;
    ChildBuckets buckets;
    double score = 0.0;
  };
  std::vector<ChildWork> children;
  children.reserve(extensions.size());
  for (auto& [key, buckets] : extensions) {
    ChildWork work;
    work.entry = key.entry;
    work.score = score_(static_cast<double>(buckets.pos.size()) /
                            static_cast<double>(pos_graphs_.size()),
                        static_cast<double>(buckets.neg.size()) /
                            static_cast<double>(neg_graphs_.size()));
    work.buckets = std::move(buckets);
    children.push_back(std::move(work));
  }
  extensions.clear();
  if (config_.order_children_by_score) {
    std::stable_sort(children.begin(), children.end(),
                     [](const ChildWork& a, const ChildWork& b) {
                       return a.score > b.score;
                     });
  }

  double branch_best = own_score;
  for (ChildWork& child : children) {
    DfsCode child_code = code;
    child_code.push_back(child.entry);
    // Expand only minimal codes: every pattern is reached exactly once via
    // its canonical (minimal) DFS code, as in gSpan.
    if (!IsMinimalCode(child_code)) continue;
    DedupeAndCap(child.buckets.pos);
    DedupeAndCap(child.buckets.neg);
    branch_best = std::max(
        branch_best, Dfs(child_code, std::move(child.buckets.pos),
                         std::move(child.buckets.neg)));
    if (BudgetExhausted()) break;
  }
  return branch_best;
}

GspanResult GspanMiner::Mine() {
  start_time_ = std::chrono::steady_clock::now();
  auto start = start_time_;

  std::map<EntryKey, ChildBuckets> roots;
  auto scan_side = [&](const std::vector<const StaticGraph*>& graphs,
                       bool positive) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const StaticGraph& g = *graphs[gi];
      for (const StaticEdge& e : g.edges()) {
        TGM_CHECK(e.src != e.dst);  // self-loops unsupported
        // Both orientations are offered; IsMinimalCode keeps exactly the
        // canonical one, so each one-edge pattern is expanded once.
        DfsCodeEntry fwd{0, 1, g.label(e.src), g.label(e.dst), e.elabel,
                         true};
        DfsCodeEntry rev{0, 1, g.label(e.dst), g.label(e.src), e.elabel,
                         false};
        for (const DfsCodeEntry& entry : {fwd, rev}) {
          ChildBuckets& bucket = roots[EntryKey{entry}];
          SEmbeddingTable& side = positive ? bucket.pos : bucket.neg;
          if (side.empty() ||
              side.back().graph != static_cast<std::int32_t>(gi)) {
            side.push_back(
                SGraphEmbeddings{static_cast<std::int32_t>(gi), {}});
          }
          side.back().embeds.push_back(
              entry.along ? SEmbedding{{e.src, e.dst}}
                          : SEmbedding{{e.dst, e.src}});
        }
      }
    }
  };
  scan_side(pos_graphs_, true);
  scan_side(neg_graphs_, false);

  struct RootWork {
    DfsCodeEntry entry;
    ChildBuckets buckets;
    double score = 0.0;
  };
  std::vector<RootWork> work;
  for (auto& [key, buckets] : roots) {
    RootWork w;
    w.entry = key.entry;
    w.score = score_(static_cast<double>(buckets.pos.size()) /
                         static_cast<double>(pos_graphs_.size()),
                     static_cast<double>(buckets.neg.size()) /
                         static_cast<double>(neg_graphs_.size()));
    w.buckets = std::move(buckets);
    work.push_back(std::move(w));
  }
  roots.clear();
  if (config_.order_children_by_score) {
    std::stable_sort(work.begin(), work.end(),
                     [](const RootWork& a, const RootWork& b) {
                       return a.score > b.score;
                     });
  }

  for (RootWork& w : work) {
    DfsCode code{w.entry};
    if (!IsMinimalCode(code)) continue;
    DedupeAndCap(w.buckets.pos);
    DedupeAndCap(w.buckets.neg);
    Dfs(code, std::move(w.buckets.pos), std::move(w.buckets.neg));
    if (BudgetExhausted()) break;
  }

  GspanResult result;
  result.top = top_;
  result.best_score = best_score_;
  result.patterns_visited = visited_;
  result.timed_out = timed_out_;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace tgm
