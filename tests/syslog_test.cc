#include <gtest/gtest.h>

#include "syslog/background.h"
#include "syslog/behaviors.h"
#include "syslog/dataset.h"

namespace tgm {
namespace {

TEST(EntityTest, LabelsArePrefixed) {
  SyslogWorld world;
  LabelId p = world.Proc("sshd");
  LabelId f = world.File("/etc/passwd");
  EXPECT_EQ(world.dict().Name(p), "proc:sshd");
  EXPECT_EQ(world.dict().Name(f), "file:/etc/passwd");
  EXPECT_NE(p, f);
}

TEST(EntityTest, ReservedZeroLabel) {
  SyslogWorld world;
  // Label id 0 is reserved so edge label 0 (= kNoEdgeLabel) is unambiguous.
  EXPECT_EQ(world.dict().Name(0), "<none>");
  EXPECT_NE(world.Op(EdgeOp::kRead), kNoEdgeLabel);
}

TEST(ScriptTest, CoreEventsAreStrictlyOrdered) {
  SyslogWorld world;
  std::mt19937_64 rng(1);
  ScriptBuilder b(&world, &rng);
  std::int32_t p = b.Proc("a");
  std::int32_t f = b.File("x");
  b.Read(f, p);
  b.Write(p, f);
  b.Read(f, p);
  InstanceScript script = b.Finish();
  ASSERT_EQ(script.event_count(), 3u);
  EXPECT_LT(script.events()[0].tick, script.events()[1].tick);
  EXPECT_LT(script.events()[1].tick, script.events()[2].tick);
}

TEST(ScriptTest, DropProbabilityDropsEverythingAtOne) {
  SyslogWorld world;
  std::mt19937_64 rng(2);
  ScriptBuilder b(&world, &rng);
  b.SetDropProb(1.0);
  std::int32_t p = b.Proc("a");
  std::int32_t f = b.File("x");
  for (int i = 0; i < 10; ++i) b.Read(f, p);
  EXPECT_EQ(b.Finish().event_count(), 0u);
}

TEST(ScriptTest, ShuffleKeepsEdgesChangesOrder) {
  SyslogWorld world;
  std::mt19937_64 rng(3);
  ScriptBuilder b(&world, &rng);
  std::int32_t p = b.Proc("a");
  std::int32_t f = b.File("x");
  std::int32_t g = b.File("y");
  for (int i = 0; i < 10; ++i) {
    b.Read(f, p);
    b.Write(p, g);
  }
  InstanceScript script = b.Finish();
  std::size_t before = script.event_count();
  script.Shuffle(rng);
  EXPECT_EQ(script.event_count(), before);
}

TEST(ScriptTest, ToGraphIsFinalizedAndSelfLoopFree) {
  SyslogWorld world;
  std::mt19937_64 rng(4);
  InstanceScript script =
      GenerateBehavior(world, BehaviorKind::kSshdLogin, rng, GenOptions{});
  TemporalGraph g = script.ToGraph();
  EXPECT_TRUE(g.finalized());
  for (const TemporalEdge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(ScriptTest, MergeOffsetsEvents) {
  SyslogWorld world;
  std::mt19937_64 rng(5);
  ScriptBuilder b1(&world, &rng);
  std::int32_t p1 = b1.Proc("a");
  b1.Read(b1.File("x"), p1);
  InstanceScript s1 = b1.Finish();
  ScriptBuilder b2(&world, &rng);
  std::int32_t p2 = b2.Proc("b");
  b2.Read(b2.File("y"), p2);
  InstanceScript s2 = b2.Finish();
  std::size_t slots_before = s1.slot_count();
  s1.Merge(s2, 100000);
  EXPECT_EQ(s1.slot_count(), slots_before + s2.slot_count());
  EXPECT_GE(s1.Duration(), 100000);
}

TEST(BehaviorsTest, AllTwelveGenerate) {
  SyslogWorld world;
  std::mt19937_64 rng(6);
  for (BehaviorKind kind : AllBehaviors()) {
    InstanceScript script = GenerateBehavior(world, kind, rng, GenOptions{});
    EXPECT_GT(script.event_count(), 5u) << BehaviorName(kind);
    EXPECT_GT(script.slot_count(), 3u) << BehaviorName(kind);
  }
}

TEST(BehaviorsTest, DeterministicGivenSeed) {
  SyslogWorld w1;
  SyslogWorld w2;
  std::mt19937_64 r1(77);
  std::mt19937_64 r2(77);
  InstanceScript a =
      GenerateBehavior(w1, BehaviorKind::kScpDownload, r1, GenOptions{});
  InstanceScript b =
      GenerateBehavior(w2, BehaviorKind::kScpDownload, r2, GenOptions{});
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t i = 0; i < a.event_count(); ++i) {
    EXPECT_EQ(a.events()[i].src_slot, b.events()[i].src_slot);
    EXPECT_EQ(a.events()[i].tick, b.events()[i].tick);
  }
}

TEST(BehaviorsTest, SizeClassesFollowTable1) {
  EXPECT_EQ(BehaviorSizeClass(BehaviorKind::kBzip2Decompress),
            SizeClass::kSmall);
  EXPECT_EQ(BehaviorSizeClass(BehaviorKind::kScpDownload),
            SizeClass::kMedium);
  EXPECT_EQ(BehaviorSizeClass(BehaviorKind::kSshdLogin), SizeClass::kLarge);
  EXPECT_EQ(BehaviorSizeClass(BehaviorKind::kAptGetInstall),
            SizeClass::kLarge);
}

TEST(BehaviorsTest, SizeClassesOrderedBySize) {
  SyslogWorld world;
  std::mt19937_64 rng(8);
  double small = 0.0;
  double medium = 0.0;
  double large = 0.0;
  int ns = 0;
  int nm = 0;
  int nl = 0;
  for (BehaviorKind kind : AllBehaviors()) {
    double total = 0.0;
    for (int i = 0; i < 5; ++i) {
      total += static_cast<double>(
          GenerateBehavior(world, kind, rng, GenOptions{}).event_count());
    }
    total /= 5.0;
    switch (BehaviorSizeClass(kind)) {
      case SizeClass::kSmall:
        small += total;
        ++ns;
        break;
      case SizeClass::kMedium:
        medium += total;
        ++nm;
        break;
      case SizeClass::kLarge:
        large += total;
        ++nl;
        break;
    }
  }
  small /= ns;
  medium /= nm;
  large /= nl;
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
}

TEST(BehaviorsTest, SizeScaleGrowsTraces) {
  SyslogWorld world;
  std::mt19937_64 r1(9);
  std::mt19937_64 r2(9);
  GenOptions small_opts;
  small_opts.size_scale = 0.5;
  GenOptions big_opts;
  big_opts.size_scale = 2.0;
  auto a = GenerateBehavior(world, BehaviorKind::kAptGetUpdate, r1,
                            small_opts);
  auto b = GenerateBehavior(world, BehaviorKind::kAptGetUpdate, r2, big_opts);
  EXPECT_LT(a.event_count(), b.event_count());
}

TEST(BackgroundTest, GeneratesActivity) {
  SyslogWorld world;
  std::mt19937_64 rng(10);
  InstanceScript script =
      GenerateBackground(world, rng, GenOptions{}, /*decoy_prob=*/0.0);
  EXPECT_GT(script.event_count(), 20u);
}

TEST(BackgroundTest, DecoysIncreaseSize) {
  SyslogWorld world;
  std::mt19937_64 r1(11);
  std::mt19937_64 r2(11);
  InstanceScript without =
      GenerateBackground(world, r1, GenOptions{}, /*decoy_prob=*/0.0);
  InstanceScript with =
      GenerateBackground(world, r2, GenOptions{}, /*decoy_prob=*/1.0);
  EXPECT_GT(with.event_count(), without.event_count());
}

TEST(DatasetTest, TrainingDataShape) {
  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = 3;
  config.background_graphs = 5;
  TrainingData data = BuildTrainingData(world, config);
  ASSERT_EQ(data.positives.size(), static_cast<std::size_t>(kNumBehaviors));
  for (const auto& runs : data.positives) {
    EXPECT_EQ(runs.size(), 3u);
  }
  EXPECT_EQ(data.background.size(), 5u);
  for (Timestamp d : data.max_duration) EXPECT_GT(d, 0);
}

TEST(DatasetTest, TrainingIsDeterministic) {
  SyslogWorld w1;
  SyslogWorld w2;
  DatasetConfig config;
  config.runs_per_behavior = 2;
  config.background_graphs = 2;
  TrainingData a = BuildTrainingData(w1, config);
  TrainingData b = BuildTrainingData(w2, config);
  for (std::size_t i = 0; i < a.positives.size(); ++i) {
    for (std::size_t j = 0; j < a.positives[i].size(); ++j) {
      EXPECT_EQ(a.positives[i][j].edge_count(),
                b.positives[i][j].edge_count());
    }
  }
}

TEST(DatasetTest, TestLogHasBalancedTruth) {
  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = 2;
  config.background_graphs = 2;
  config.test_instances = 24;
  TestLog log = BuildTestLog(world, config);
  EXPECT_EQ(log.truth.size(), 24u);
  for (std::int64_t count : log.instance_counts) {
    EXPECT_EQ(count, 2);  // 24 / 12 behaviours
  }
  EXPECT_GT(log.graph.edge_count(), 24u);
  // Truth intervals are ordered and within the log span.
  for (std::size_t i = 1; i < log.truth.size(); ++i) {
    EXPECT_GE(log.truth[i].t_begin, log.truth[i - 1].t_end);
  }
}

TEST(DatasetTest, ComputeStatsAverages) {
  SyslogWorld world;
  std::mt19937_64 rng(13);
  std::vector<TemporalGraph> graphs;
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(
        GenerateBehavior(world, BehaviorKind::kWgetDownload, rng, GenOptions{})
            .ToGraph());
  }
  BehaviorStats stats = ComputeStats(graphs);
  EXPECT_GT(stats.avg_nodes, 5.0);
  EXPECT_GT(stats.avg_edges, stats.avg_nodes * 0.5);
  EXPECT_GT(stats.total_labels, 5);
}

TEST(DatasetTest, ReplicateMultipliesGraphs) {
  SyslogWorld world;
  std::mt19937_64 rng(14);
  std::vector<TemporalGraph> graphs;
  graphs.push_back(
      GenerateBehavior(world, BehaviorKind::kGzipDecompress, rng, GenOptions{})
          .ToGraph());
  std::vector<TemporalGraph> syn = ReplicateGraphs(graphs, 4);
  EXPECT_EQ(syn.size(), 4u);
  EXPECT_EQ(syn[3].edge_count(), graphs[0].edge_count());
}

// Property sweep over behaviours: every generated instance is loadable,
// self-loop free, and its duration covers all events.
class BehaviorSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BehaviorSweepTest, InstanceWellFormed) {
  auto [behavior_idx, seed] = GetParam();
  SyslogWorld world;
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  BehaviorKind kind = AllBehaviors()[static_cast<std::size_t>(behavior_idx)];
  InstanceScript script = GenerateBehavior(world, kind, rng, GenOptions{});
  TemporalGraph g = script.ToGraph();
  EXPECT_GT(g.edge_count(), 0u);
  for (const TemporalEdge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_NE(e.elabel, kNoEdgeLabel);  // all syscall edges are typed
  }
  EXPECT_EQ(g.Span(), script.Duration() - g.edges().front().ts);
}

INSTANTIATE_TEST_SUITE_P(AllBehaviorsAndSeeds, BehaviorSweepTest,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace tgm
