#include "matching/matcher.h"

#include "matching/index_matcher.h"
#include "matching/seq_matcher.h"
#include "matching/vf2_matcher.h"

namespace tgm {

std::unique_ptr<TemporalSubgraphTester> MakeTester(SubgraphTestAlgo algo) {
  switch (algo) {
    case SubgraphTestAlgo::kSequence:
      return std::make_unique<SeqMatcher>();
    case SubgraphTestAlgo::kVf2:
      return std::make_unique<Vf2Matcher>();
    case SubgraphTestAlgo::kGraphIndex:
      return std::make_unique<IndexMatcher>();
  }
  TGM_CHECK(false);
}

}  // namespace tgm
