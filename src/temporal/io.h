#ifndef TGM_TEMPORAL_IO_H_
#define TGM_TEMPORAL_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "temporal/label_dict.h"
#include "temporal/pattern.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// Line-based text serialization for temporal graphs, patterns, and (via
/// api/behavior_query.h) compiled behaviour-query artifacts, so mined
/// queries can be exported, versioned and re-loaded.
///
/// Graph format:
///   tgraph <num_nodes> <num_edges>
///   n <label-name>                  (one per node, in node-id order)
///   e <src> <dst> <ts> <elabel-name>
/// Pattern format is identical with header `tpattern` and no timestamps
/// (edge order is the line order). The behaviour-query artifact format
/// (`tquery` header, one provenance block plus an embedded `tpattern`
/// record per pattern) composes these records; see api/behavior_query.h.
///
/// Label names must not contain whitespace; the syslog generator's labels
/// satisfy this by construction.
///
/// Parsers come in two flavours:
///  - `Parse*` returns StatusOr with a line-numbered kDataLoss diagnostic
///    on malformed input ("line 4: edge references node 7 of 2") — use
///    these for anything user- or file-fed.
///  - `Read*` is the legacy `std::optional` surface, kept as a thin
///    wrapper over `Parse*` for existing callers; it drops the
///    diagnostic. Note the parsers are strictly line-oriented (one
///    record element per line, as every writer in this tree emits); the
///    pre-StatusOr token readers incidentally accepted records with
///    arbitrary line breaks, which was never part of the format. They
///    also reject zero-edge `tpattern` records (the old reader returned
///    an empty Pattern, which no consumer can execute).

/// Line-oriented cursor over an istream used by the text-format parsers:
/// hands out whitespace-trimmed non-empty lines and tracks 1-based line
/// numbers so errors can point at their source. Records never contain
/// blank lines, so skipping them makes concatenated artifacts and
/// trailing newlines harmless.
class LineCursor {
 public:
  explicit LineCursor(std::istream& is) : is_(is) {}

  /// Advances to the next non-blank line; returns false at end of stream.
  /// The line (with any trailing '\r' stripped) is stored in `*line`.
  bool Next(std::string* line);

  /// 1-based number of the line most recently returned by Next (0 before
  /// the first call).
  int line_number() const { return line_; }

  /// A kDataLoss status pointing at the current line.
  Status Error(std::string_view message) const;

 private:
  std::istream& is_;
  int line_ = 0;
};

/// Splits one record line into whitespace-separated tokens. Shared by the
/// tgraph/tpattern parsers here and the tquery parser composed on top of
/// them (api/behavior_query.cc), so the embedded and outer records always
/// tokenize identically.
void TokenizeRecordLine(const std::string& line,
                        std::vector<std::string_view>* out);

/// Strict full-token int64 parse (no trailing characters); returns false
/// on any malformation.
bool ParseInt64Token(std::string_view token, std::int64_t* out);

/// Writes `g` using names from `dict`.
void WriteTemporalGraph(std::ostream& os, const TemporalGraph& g,
                        const LabelDict& dict);

/// Parses a graph, interning labels into `dict`. The graph is returned
/// finalized. Malformed input — bad header, wrong tags, edges referencing
/// out-of-range node ids, negative timestamps, trailing tokens — yields a
/// line-numbered kDataLoss status.
StatusOr<TemporalGraph> ParseTemporalGraph(std::istream& is, LabelDict& dict);
StatusOr<TemporalGraph> ParseTemporalGraph(LineCursor& cursor,
                                           LabelDict& dict);

/// Legacy wrapper over ParseTemporalGraph: nullopt on any parse error.
std::optional<TemporalGraph> ReadTemporalGraph(std::istream& is,
                                               LabelDict& dict);

/// Writes a pattern using names from `dict`.
void WritePattern(std::ostream& os, const Pattern& p, const LabelDict& dict);

/// Parses a pattern, interning labels into `dict`; diagnostics as for
/// ParseTemporalGraph.
StatusOr<Pattern> ParsePattern(std::istream& is, LabelDict& dict);
StatusOr<Pattern> ParsePattern(LineCursor& cursor, LabelDict& dict);

/// Legacy wrapper over ParsePattern: nullopt on any parse error.
std::optional<Pattern> ReadPattern(std::istream& is, LabelDict& dict);

/// Graphviz DOT rendering of a pattern: nodes carry their labels, edges
/// their temporal order (and edge label when present). Paste into `dot
/// -Tpng` to visualize mined behaviour queries like the paper's Figures
/// 1(c) and 10.
std::string PatternToDot(const Pattern& p, const LabelDict& dict,
                         std::string_view graph_name = "pattern");

/// DOT rendering of a (small) temporal graph with timestamps on edges.
std::string TemporalGraphToDot(const TemporalGraph& g, const LabelDict& dict,
                               std::string_view graph_name = "tgraph");

}  // namespace tgm

#endif  // TGM_TEMPORAL_IO_H_
