#!/usr/bin/env python3
"""tgm-lint: TGMiner's project-contract linter.

Four checks, each enforcing a contract the test suite can only sample but
never prove:

  determinism     Iteration over unordered associative containers
                  (std::unordered_map/set/...) feeds result-adjacent code in
                  nondeterministic order unless the site is followed by a
                  canonical sort / drains into an ordered container, or
                  carries a waiver. Pointer-keyed ordered containers
                  (std::map<T*, ...>, std::set<T*>) are flagged at the
                  declaration: pointer order is allocation order, which no
                  rerun reproduces.
  layering        The include DAG of tools/lint/layers.conf (derived from
                  the prose contract in src/tgminer/tgminer.h) is enforced:
                  a file may include only files in its own or a lower
                  layer. Every linted file must be covered by the manifest.
  status-discard  Any call to a function returning tgm::Status /
                  tgm::StatusOr<T> whose result is discarded (a bare
                  expression statement, or an explicit (void) cast without
                  a waiver). Belt and braces for the [[nodiscard]]
                  attribute on gcc builds and for macro-expanded contexts
                  the compiler never warns about.
  raw-primitive   std::mutex / std::condition_variable / friends outside
                  src/base/: all locking goes through the annotated
                  base/mutex.h wrappers so the Clang thread-safety wall
                  sees every acquisition. (Extends the assert() ban of
                  run_static_analysis.sh Gate 1.)

Engine: a token-level analyzer (comments and string literals stripped,
line structure preserved) that needs nothing but Python. When the libclang
Python binding is importable and a compilation database is supplied, the
determinism check is refined per translation unit with real AST type
resolution (range-for over a type spelling containing "unordered_"); any
libclang failure falls back to the token analysis for that file, so
gcc-only hosts get the same gate with slightly coarser type inference.

Waivers are inline comments carrying a mandatory reason:

    // tgm-lint: unordered-iter-ok(<reason>)
    // tgm-lint: pointer-key-ok(<reason>)
    // tgm-lint: layering-ok(<reason>)
    // tgm-lint: status-discard-ok(<reason>)
    // tgm-lint: raw-primitive-ok(<reason>)

A waiver suppresses findings of its kind on its own line, or — when the
comment stands alone — on the next code line. `--audit-waivers` lists
every waiver with its location and reason; a waiver with an empty reason
is itself a finding, so suppressions are never anonymous.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys
from dataclasses import dataclass, field

CHECK_GROUPS = ("determinism", "layering", "status-discard", "raw-primitive")

# finding kind -> check group (waiver token is "<kind>-ok").
KIND_TO_GROUP = {
    "unordered-iter": "determinism",
    "pointer-key": "determinism",
    "layering": "layering",
    "status-discard": "status-discard",
    "raw-primitive": "raw-primitive",
    "waiver": None,  # malformed waivers are reported unconditionally
}

UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
ORDERED_ASSOC_RE = re.compile(r"\bstd::(?:map|set|multimap|multiset)\b")
RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any)\b")
SORT_CALL_RE = re.compile(
    r"\bstd::(?:ranges::)?(?:stable_)?sort\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
WAIVER_RE = re.compile(
    r"//\s*tgm-lint:\s*([a-z-]+)-ok\s*\(([^)]*)\)")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Statement openers that mean "this fragment is not a bare call statement".
STMT_SKIP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "co_return", "throw", "goto", "break", "continue", "using",
    "namespace", "class", "struct", "enum", "template", "typedef", "public",
    "private", "protected", "static_assert", "delete", "new", "typename",
    "friend", "extern", "operator",
}
# Macros that consume a Status expression by construction.
CONSUMING_MACROS = re.compile(
    r"^(?:TGM_RETURN_IF_ERROR|TGM_ASSIGN_OR_RETURN|TGM_CHECK|TGM_DCHECK|"
    r"TGM_VALIDATE_INVARIANTS|EXPECT_\w+|ASSERT_\w+)\b")


@dataclass
class Finding:
    path: str      # repo-root-relative, forward slashes
    line: int      # 1-based
    kind: str      # key of KIND_TO_GROUP
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.kind}] {self.message}"


@dataclass
class Waiver:
    path: str
    line: int       # line the waiver comment sits on
    applies_to: int  # code line it suppresses
    kind: str
    reason: str
    used: bool = False


@dataclass
class FileText:
    path: str                  # root-relative
    raw_lines: list
    code_lines: list           # comments/strings stripped, same line count
    waivers: list = field(default_factory=list)

    @property
    def code(self):
        return "\n".join(self.code_lines)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving line
    structure (and the quotes of #include "..." paths, which layering
    needs — include lines are kept verbatim)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    line_start = 0
    line_is_include = False

    def flush_line_marker(pos):
        nonlocal line_start, line_is_include
        line_start = pos
        line_is_include = False

    # Pre-scan include lines so their quoted paths survive stripping.
    include_lines = set()
    for ln, line in enumerate(text.split("\n")):
        if INCLUDE_RE.match(line):
            include_lines.add(ln)
    cur_line = 0

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("\n")
            cur_line += 1
            if state in ("line_comment",):
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                if cur_line in include_lines:
                    # keep include path text verbatim
                    j = text.find('"', i + 1)
                    if j == -1:
                        j = n - 1
                    out.append(text[i:j + 1])
                    i = j + 1
                    continue
                # Raw string literal?
                m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append('"')
                    i += 1 + len(m.group(1)) + 1
                    continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
            continue
        if state == "line_comment":
            out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
            continue
        if state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
            i += 1
            continue
        if state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
            else:
                out.append(" ")
                i += 1
            continue
    return "".join(out)


def collect_waivers(path, raw_lines, code_lines, findings):
    """Parses waiver comments. A waiver on a line with code applies to that
    line; a comment-only line applies to the next non-blank code line."""
    waivers = []
    for idx, line in enumerate(raw_lines):
        for m in WAIVER_RE.finditer(line):
            kind, reason = m.group(1), m.group(2).strip()
            lineno = idx + 1
            if kind not in KIND_TO_GROUP or kind == "waiver":
                findings.append(Finding(
                    path, lineno, "waiver",
                    f"unknown waiver kind '{kind}-ok' (expected one of: "
                    + ", ".join(k + "-ok" for k in KIND_TO_GROUP
                                if k != "waiver") + ")"))
                continue
            if not reason:
                findings.append(Finding(
                    path, lineno, "waiver",
                    f"waiver '{kind}-ok' has an empty reason — every "
                    "suppression must say why"))
                continue
            applies_to = lineno
            if code_lines[idx].strip() == "":
                # Comment-only line: suppresses the next code line.
                j = idx + 1
                while j < len(code_lines) and code_lines[j].strip() == "":
                    j += 1
                applies_to = j + 1 if j < len(code_lines) else lineno
            waivers.append(Waiver(path, lineno, applies_to, kind, reason))
    return waivers


# --------------------------------------------------------------------------
# Token-level type tracking for the determinism check
# --------------------------------------------------------------------------

def skip_template_args(code, i):
    """code[i] == '<'; returns index just past the matching '>'."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return i  # malformed / not a template argument list
        i += 1
    return i


def first_template_arg(code, open_idx):
    """code[open_idx] == '<'; returns the first template argument text."""
    depth = 0
    i = open_idx
    start = open_idx + 1
    n = len(code)
    while i < n:
        c = code[i]
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
            if depth == 0:
                return code[start:i].strip()
        elif c == "," and depth == 1:
            return code[start:i].strip()
        i += 1
    return ""


def declared_names_after_type(code, i):
    """After a type ends at index i, yields (name, line_offset_idx) for the
    declarator names up to the next ';', '{', ')', or '='. Handles
    'const T& name', 'T* name', 'T name, other', 'T name_;'."""
    n = len(code)
    names = []
    while i < n and code[i] in " \t\n&*":
        i += 1
    # 'const'/'constexpr' may trail ("T const& x") — also allow leading refs
    while True:
        m = IDENT_RE.match(code, i)
        if not m:
            break
        word = m.group(0)
        j = m.end()
        if word in ("const", "constexpr", "volatile"):
            i = j
            while i < n and code[i] in " \t\n&*":
                i += 1
            continue
        # word is a candidate declarator name if the next non-space char
        # terminates a declarator.
        k = j
        while k < n and code[k] in " \t\n":
            k += 1
        if k < n and code[k] in ";,={()[":
            if k < n and code[k] == "(":
                # function declaration returning the type, not a variable —
                # unless it's a constructor-style initializer T name(args);
                # treat as non-variable (rare in this tree).
                break
            names.append((word, m.start()))
            if k < n and code[k] == ",":
                i = k + 1
                while i < n and code[i] in " \t\n&*":
                    i += 1
                continue
        break
    return names


def line_of_index(code, idx):
    return code.count("\n", 0, idx) + 1


@dataclass
class TypeInfo:
    unordered_vars: dict = field(default_factory=dict)   # name -> line
    ordered_sinks: set = field(default_factory=set)      # std::set/map vars
    unordered_aliases: set = field(default_factory=set)  # using X = unordered


def scan_types(ft, aliases_global):
    """One pass over a file's code collecting unordered-container variable
    names, using-aliases, and ordered sink variables."""
    code = ft.code
    info = TypeInfo()
    # using NAME = std::unordered_map<...>;
    for m in re.finditer(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);", code):
        target = m.group(2)
        if UNORDERED_RE.search(target) or any(
                re.search(r"\b%s\b" % re.escape(a), target)
                for a in aliases_global):
            info.unordered_aliases.add(m.group(1))
    alias_names = info.unordered_aliases | aliases_global
    alias_re = (re.compile(
        r"\b(?:%s)\b" % "|".join(re.escape(a) for a in sorted(alias_names)))
        if alias_names else None)

    def record_decls(type_re, sink):
        for m in type_re.finditer(code):
            i = m.end()
            if i < len(code) and code[i] == "<":
                i = skip_template_args(code, i)
            for name, pos in declared_names_after_type(code, i):
                if sink == "unordered":
                    info.unordered_vars[name] = line_of_index(code, pos)
                else:
                    info.ordered_sinks.add(name)

    record_decls(UNORDERED_RE, "unordered")
    if alias_re:
        record_decls(alias_re, "unordered")
    record_decls(ORDERED_ASSOC_RE, "ordered")
    return info


def base_identifier(expr):
    """'table_->by_entity_' -> 'by_entity_'; '(*m)' -> 'm'; 'a.b().c' -> None
    (call results are handled via the method-name map)."""
    expr = expr.strip()
    while expr.startswith("(") and expr.endswith(")"):
        expr = expr[1:-1].strip()
    expr = expr.lstrip("*&").strip()
    if expr.endswith(")"):
        return None
    m = re.search(r"([A-Za-z_]\w*)$", expr)
    return m.group(1) if m else None


def method_call_name(expr):
    """'g->DistinctNodeLabels()' -> 'DistinctNodeLabels' for no-arg calls."""
    m = re.search(r"(?:\.|->|::)([A-Za-z_]\w*)\s*\(\s*\)$", expr.strip())
    return m.group(1) if m else None


def scan_unordered_returning_methods(files):
    """Names of functions declared to return (a reference to) an unordered
    container, collected across all linted files."""
    names = set()
    pat = re.compile(
        r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
    for ft in files:
        code = ft.code
        for m in pat.finditer(code):
            i = skip_template_args(code, m.end() - 1)
            j = i
            n = len(code)
            while j < n and code[j] in " \t\n&*":
                j += 1
            mm = IDENT_RE.match(code, j)
            if not mm:
                continue
            k = mm.end()
            while k < n and code[k] in " \t\n":
                k += 1
            if k < n and code[k] == "(":
                names.add(mm.group(0))
    return names


def find_matching_paren(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def body_extent_lines(code, after_paren_idx):
    """Given the index just past a for(...)'s closing paren, returns the
    last line of the loop body (brace-matched, or single statement)."""
    n = len(code)
    i = after_paren_idx
    while i < n and code[i] in " \t\n":
        i += 1
    if i < n and code[i] == "{":
        depth = 0
        for j in range(i, n):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    return line_of_index(code, j)
        return line_of_index(code, n - 1)
    # single statement: up to the ';'
    j = code.find(";", i)
    return line_of_index(code, j if j != -1 else n - 1)


SORT_WINDOW_LINES = 12  # canonical sort must appear within this many lines
                        # after the loop body ends


def check_determinism_tokens(ft, info, unordered_methods):
    """Flags range-for / .begin() iteration over unordered containers unless
    canonically sorted afterwards or drained into an ordered sink, plus
    pointer-keyed ordered container declarations."""
    findings = []
    code = ft.code
    lines = ft.code_lines

    def exempt_by_sort(start_line, end_line):
        lo = start_line - 1
        hi = min(len(lines), end_line + SORT_WINDOW_LINES)
        window = "\n".join(lines[lo:hi])
        if SORT_CALL_RE.search(window):
            return True
        for sink in info.ordered_sinks:
            if re.search(r"\b%s\s*(?:\.|->)\s*(?:insert|emplace)\s*\(|"
                         r"\b%s\s*\[" % (re.escape(sink), re.escape(sink)),
                         window):
                return True
        return False

    # Range-for loops.
    for m in re.finditer(r"\bfor\s*\(", code):
        open_idx = m.end() - 1
        close_idx = find_matching_paren(code, open_idx)
        if close_idx == -1:
            continue
        header = code[open_idx + 1:close_idx]
        if ":" in header:
            # strip any '::' qualifications before looking for the range ':'
            probe = header.replace("::", "  ")
            if ":" in probe:
                range_expr = header[probe.index(":") + 1:]
                target = None
                base = base_identifier(range_expr)
                if base and base in info.unordered_vars:
                    target = f"'{base}'"
                else:
                    meth = method_call_name(range_expr)
                    if meth and meth in unordered_methods:
                        target = f"{meth}()"
                if target:
                    line = line_of_index(code, m.start())
                    end_line = body_extent_lines(code, close_idx + 1)
                    if not exempt_by_sort(line, end_line):
                        findings.append(Finding(
                            ft.path, line, "unordered-iter",
                            f"range-for over unordered container {target} "
                            "with no canonical sort, ordered sink, or "
                            "waiver — iteration order is hash-layout-"
                            "dependent"))
        # iterator loops: for (auto it = m.begin(); ...)
        for mm in re.finditer(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*begin\s*\(",
                              header):
            if mm.group(1) in info.unordered_vars:
                line = line_of_index(code, m.start())
                end_line = body_extent_lines(code, close_idx + 1)
                if not exempt_by_sort(line, end_line):
                    findings.append(Finding(
                        ft.path, line, "unordered-iter",
                        f"iterator loop over unordered container "
                        f"'{mm.group(1)}' with no canonical sort, ordered "
                        "sink, or waiver"))

    # Pointer-keyed ordered containers at the declaration.
    for m in ORDERED_ASSOC_RE.finditer(code):
        i = m.end()
        if i >= len(code) or code[i] != "<":
            continue
        arg = first_template_arg(code, i)
        if arg.endswith("*"):
            findings.append(Finding(
                ft.path, line_of_index(code, m.start()), "pointer-key",
                f"{m.group(0)}<{arg}, ...> is keyed on a pointer — "
                "iteration order is allocation order; key on a stable id "
                "or add a waiver"))
    return findings


# --------------------------------------------------------------------------
# Layering
# --------------------------------------------------------------------------

@dataclass
class LayerManifest:
    names: list                 # layer names, bottom (0) -> top
    patterns: list              # (pattern, layer_index) in file order
    path: str

    def layer_of(self, relpath):
        """Most-specific (longest) matching pattern wins, so a file-level
        exception ('src/api/status.h') can sit in a lower layer than its
        directory's glob ('src/api/*') regardless of declaration order."""
        best = None
        best_len = -1
        for pat, idx in self.patterns:
            if fnmatch.fnmatch(relpath, pat) and len(pat) > best_len:
                best, best_len = idx, len(pat)
        return best


def parse_layers_conf(path):
    names, patterns = [], []
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        raise SystemExit(f"tgm-lint: cannot read layers manifest: {e}")
    for lineno, line in enumerate(raw.split("\n"), 1):
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        if not stripped[0].isspace():
            parts = stripped.split()
            if len(parts) != 2 or parts[0] != "layer":
                raise SystemExit(
                    f"{path}:{lineno}: expected 'layer <name>' or an "
                    f"indented pattern, got '{stripped}'")
            if parts[1] in names:
                raise SystemExit(
                    f"{path}:{lineno}: duplicate layer '{parts[1]}'")
            names.append(parts[1])
        else:
            if not names:
                raise SystemExit(
                    f"{path}:{lineno}: pattern before any 'layer' line")
            patterns.append((stripped.strip(), len(names) - 1))
    if not names:
        raise SystemExit(f"{path}: no layers defined")
    return LayerManifest(names, patterns, path)


def check_layering(ft, manifest, src_prefix):
    findings = []
    my_layer = manifest.layer_of(ft.path)
    if my_layer is None:
        findings.append(Finding(
            ft.path, 1, "layering",
            f"file not covered by any pattern in {manifest.path} — add it "
            "to its layer"))
        return findings
    for idx, line in enumerate(ft.code_lines):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        inc = src_prefix + m.group(1)
        inc_layer = manifest.layer_of(inc)
        if inc_layer is None:
            # Not a first-party header under the manifest (e.g. a path we
            # do not model); only enforce edges between modeled files.
            continue
        if inc_layer > my_layer:
            findings.append(Finding(
                ft.path, idx + 1, "layering",
                f'upward include: "{m.group(1)}" is layer '
                f"'{manifest.names[inc_layer]}' but this file is layer "
                f"'{manifest.names[my_layer]}' "
                f"(see {manifest.path})"))
    return findings


# --------------------------------------------------------------------------
# Status discipline
# --------------------------------------------------------------------------

def scan_status_returning_names(files):
    """Unqualified names of functions declared/defined returning Status or
    StatusOr<...> anywhere in the linted set."""
    names = set()
    pat = re.compile(r"\b(?:tgm::)?(Status|StatusOr)\b")
    for ft in files:
        code = ft.code
        for m in pat.finditer(code):
            i = m.end()
            n = len(code)
            if m.group(1) == "StatusOr":
                while i < n and code[i] in " \t\n":
                    i += 1
                if i >= n or code[i] != "<":
                    continue
                i = skip_template_args(code, i)
            # Skip refs/qualifiers, then expect (Qualified::)*Name (
            while True:
                while i < n and code[i] in " \t\n&*":
                    i += 1
                mm = IDENT_RE.match(code, i)
                if not mm:
                    break
                word = mm.group(0)
                j = mm.end()
                if code.startswith("::", j):
                    i = j + 2
                    continue
                k = j
                while k < n and code[k] in " \t\n":
                    k += 1
                if k < n and code[k] == "(":
                    if word not in ("operator",):
                        names.add(word)
                break
    # Factory/ctor-ish names that return Status by design but whose result
    # is itself the object (never bare-called): keep them out of the set.
    names.discard("Status")
    names.discard("StatusOr")
    names.discard("Ok")
    return names


def split_statements(code):
    """Yields (start_index, fragment) for ';'-terminated fragments, resetting
    at braces so block structure does not leak between statements."""
    start = 0
    depth = 0
    for i, c in enumerate(code):
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c in "{}" and depth == 0:
            start = i + 1
        elif c == ";" and depth == 0:
            frag = code[start:i]
            yield start, frag
            start = i + 1


BARE_CALL_RE = re.compile(
    r"^\s*(?P<void>\(\s*void\s*\)\s*)?"
    r"(?P<chain>(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*)"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")


def check_status_discard(ft, status_names):
    findings = []
    code = ft.code
    for start, frag in split_statements(code):
        stripped = frag.strip()
        if not stripped:
            continue
        if CONSUMING_MACROS.match(stripped):
            continue
        first = IDENT_RE.match(stripped)
        if first and first.group(0) in STMT_SKIP_KEYWORDS:
            continue
        if "=" in stripped.split("(", 1)[0]:
            continue  # assignment / initialization consumes
        m = BARE_CALL_RE.match(stripped)
        if not m or m.group("name") not in status_names:
            continue
        # The call must span the whole statement (outermost call).
        open_idx = stripped.index("(", m.start("name"))
        close_idx = find_matching_paren(stripped, open_idx)
        if close_idx == -1 or stripped[close_idx + 1:].strip():
            continue
        line = line_of_index(code, start + len(frag) - len(frag.lstrip()))
        what = ("explicit (void) discard of" if m.group("void")
                else "discarded")
        findings.append(Finding(
            ft.path, line, "status-discard",
            f"{what} result of Status-returning call "
            f"'{m.group('name')}(...)' — handle, propagate "
            "(TGM_RETURN_IF_ERROR), or waive with a reason"))
    return findings


# --------------------------------------------------------------------------
# Raw synchronization primitives
# --------------------------------------------------------------------------

def check_raw_primitives(ft, exempt_prefixes):
    findings = []
    if any(ft.path.startswith(p) for p in exempt_prefixes):
        return findings
    for idx, line in enumerate(ft.code_lines):
        m = RAW_PRIMITIVE_RE.search(line)
        if m:
            findings.append(Finding(
                ft.path, idx + 1, "raw-primitive",
                f"{m.group(0)} outside src/base/ — use the annotated "
                "wrappers in base/mutex.h so the thread-safety wall sees "
                "this acquisition"))
    return findings


# --------------------------------------------------------------------------
# Optional libclang refinement (determinism only)
# --------------------------------------------------------------------------

def try_libclang():
    try:
        import clang.cindex as ci  # type: ignore
        # Verify a usable library is actually loadable.
        ci.Index.create()
        return ci
    except Exception:
        return None


def ast_unordered_findings(ci, compdb_path, ft, abs_path, info,
                           sort_exempt):
    """Returns (ok, findings): AST-resolved range-for-over-unordered sites
    for one file, or ok=False to fall back to token results."""
    try:
        import clang.cindex as _  # noqa: F401
        compdb = ci.CompilationDatabase.fromDirectory(
            os.path.dirname(compdb_path))
        cmds = compdb.getCompileCommands(abs_path)
        if not cmds:
            return False, []
        args = [a for a in list(cmds[0].arguments)[1:]
                if a not in ("-c", "-o", abs_path)
                and not a.endswith((".o", ".cc", ".cpp"))]
        index = ci.Index.create()
        tu = index.parse(abs_path, args=args)
        if any(d.severity >= ci.Diagnostic.Error
               for d in tu.diagnostics):
            return False, []
        findings = []
        for cur in tu.cursor.walk_preorder():
            if cur.kind != ci.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            if not cur.location.file or \
                    os.path.realpath(cur.location.file.name) != abs_path:
                continue
            children = list(cur.get_children())
            if not children:
                continue
            range_type = children[0].type.spelling
            if "unordered_" in range_type:
                line = cur.location.line
                if not sort_exempt(line):
                    findings.append(Finding(
                        ft.path, line, "unordered-iter",
                        f"range-for over {range_type} (AST-resolved) with "
                        "no canonical sort, ordered sink, or waiver"))
        return True, findings
    except Exception:
        return False, []


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def discover_files(root, src_dirs, compdb_path):
    """Returns sorted root-relative paths of first-party sources to lint:
    the union of compdb entries under the src dirs and a glob of .h/.cc
    files (headers are not compdb entries but carry contracts too)."""
    rels = set()
    for d in src_dirs:
        base = os.path.join(root, d)
        for dirpath, _, filenames in os.walk(base):
            for fn in filenames:
                if fn.endswith((".h", ".cc", ".cpp", ".hpp")):
                    rels.add(os.path.relpath(
                        os.path.join(dirpath, fn), root).replace(os.sep, "/"))
    if compdb_path:
        try:
            with open(compdb_path, encoding="utf-8") as f:
                for entry in json.load(f):
                    p = os.path.realpath(os.path.join(
                        entry.get("directory", "."), entry["file"]))
                    rel = os.path.relpath(p, root).replace(os.sep, "/")
                    if any(rel.startswith(d.rstrip("/") + "/")
                           for d in src_dirs):
                        rels.add(rel)
        except (OSError, ValueError, KeyError) as e:
            raise SystemExit(
                f"tgm-lint: cannot read compilation database "
                f"{compdb_path}: {e}")
    return sorted(rels)


def load_file(root, rel, findings):
    abs_path = os.path.join(root, rel)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"tgm-lint: cannot read {rel}: {e}")
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text).split("\n")
    ft = FileText(rel, raw_lines, code_lines)
    ft.waivers = collect_waivers(rel, raw_lines, code_lines, findings)
    return ft


def apply_waivers(findings, files_by_path):
    """Drops findings covered by a matching waiver; marks waivers used."""
    kept = []
    for f in findings:
        if f.kind == "waiver":
            kept.append(f)
            continue
        ft = files_by_path.get(f.path)
        waived = False
        if ft:
            for w in ft.waivers:
                if w.kind == f.kind and w.applies_to == f.line:
                    w.used = True
                    waived = True
                    break
        if not waived:
            kept.append(f)
    return kept


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="tgm_lint",
        description="TGMiner project-contract linter (determinism, "
                    "layering, Status discipline, raw-primitive ban).")
    ap.add_argument("--root", default=".",
                    help="repository root all paths are relative to")
    ap.add_argument("--src", action="append", default=[],
                    help="source dir(s) under root to lint "
                         "(default: src)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (adds its first-party TUs "
                         "to the file set and enables the libclang AST "
                         "refinement when importable)")
    ap.add_argument("--layers", default="tools/lint/layers.conf",
                    help="layer manifest for the layering check "
                         "(root-relative)")
    ap.add_argument("--checks", default=",".join(CHECK_GROUPS),
                    help="comma-separated subset of: "
                         + ", ".join(CHECK_GROUPS))
    ap.add_argument("--mode", choices=("auto", "ast", "tokens"),
                    default="auto",
                    help="auto: libclang refinement when importable; "
                         "tokens: pure token engine; ast: require libclang")
    ap.add_argument("--audit-waivers", action="store_true",
                    help="list every waiver with its reason and exit "
                         "(malformed waivers still fail)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-run summary line")
    args = ap.parse_args(argv)

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    for c in checks:
        if c not in CHECK_GROUPS:
            ap.error(f"unknown check '{c}' (expected subset of: "
                     + ", ".join(CHECK_GROUPS) + ")")

    root = os.path.realpath(args.root)
    src_dirs = args.src or ["src"]
    files_rel = discover_files(root, src_dirs, args.compdb)
    if not files_rel:
        print(f"tgm-lint: no source files under {src_dirs} in {root}",
              file=sys.stderr)
        return 2

    findings = []
    files = [load_file(root, rel, findings) for rel in files_rel]
    files_by_path = {ft.path: ft for ft in files}

    ci_mod = None
    if args.mode in ("auto", "ast"):
        ci_mod = try_libclang()
        if args.mode == "ast" and (ci_mod is None or not args.compdb):
            print("tgm-lint: --mode=ast requires the libclang python "
                  "binding and --compdb", file=sys.stderr)
            return 2

    if "determinism" in checks:
        unordered_methods = scan_unordered_returning_methods(files)

        def sibling_of(path):
            stem, ext = os.path.splitext(path)
            other = {".cc": ".h", ".cpp": ".hpp", ".h": ".cc",
                     ".hpp": ".cpp"}.get(ext)
            alt = {".cc": ".hpp", ".h": ".cpp"}.get(ext)
            for cand in (other, alt):
                if cand and stem + cand in files_by_path:
                    return files_by_path[stem + cand]
            return None

        for ft in files:
            info = scan_types(ft, set())
            # Members live in the header but are iterated in the source:
            # merge the declaration info of the .h/.cc sibling.
            sib = sibling_of(ft.path)
            if sib is not None:
                sib_info = scan_types(sib, set())
                for name, line in sib_info.unordered_vars.items():
                    info.unordered_vars.setdefault(name, line)
                info.ordered_sinks |= sib_info.ordered_sinks
            token_findings = check_determinism_tokens(
                ft, info, unordered_methods)
            used_ast = False
            if ci_mod is not None and args.compdb \
                    and ft.path.endswith((".cc", ".cpp")):
                token_lines = {f.line for f in token_findings
                               if f.kind == "unordered-iter"}

                def sort_exempt(line, _tl=token_lines):
                    # reuse token-side judgment: a line the token engine
                    # did NOT flag (but AST did) is checked with the same
                    # sort-window heuristic around that line.
                    if line in _tl:
                        return False
                    lo = max(0, line - 1)
                    hi = min(len(ft.code_lines), line + SORT_WINDOW_LINES)
                    return bool(SORT_CALL_RE.search(
                        "\n".join(ft.code_lines[lo:hi])))

                ok, ast_findings = ast_unordered_findings(
                    ci_mod, args.compdb, ft,
                    os.path.join(root, ft.path), info, sort_exempt)
                if ok:
                    used_ast = True
                    findings.extend(
                        [f for f in token_findings
                         if f.kind == "pointer-key"] + ast_findings)
            if not used_ast:
                findings.extend(token_findings)

    if "layering" in checks:
        manifest = parse_layers_conf(os.path.join(root, args.layers))
        # Includes are written relative to the src/ include root; rebuild
        # the manifest-relative path with the first src dir's prefix.
        src_prefix = src_dirs[0].rstrip("/") + "/"
        for ft in files:
            findings.extend(check_layering(ft, manifest, src_prefix))

    if "status-discard" in checks:
        status_names = scan_status_returning_names(files)
        for ft in files:
            findings.extend(check_status_discard(ft, status_names))

    if "raw-primitive" in checks:
        exempt = [src_dirs[0].rstrip("/") + "/base/"]
        for ft in files:
            findings.extend(check_raw_primitives(ft, exempt))

    findings = apply_waivers(findings, files_by_path)
    findings.sort(key=lambda f: (f.path, f.line, f.kind))

    all_waivers = [w for ft in files for w in ft.waivers]
    if args.audit_waivers:
        print(f"tgm-lint waiver audit: {len(all_waivers)} waiver(s)")
        for w in sorted(all_waivers, key=lambda w: (w.path, w.line)):
            print(f"  {w.path}:{w.line}: {w.kind}-ok — {w.reason}")
        malformed = [f for f in findings if f.kind == "waiver"]
        for f in malformed:
            print(f.render(), file=sys.stderr)
        return 1 if malformed else 0

    for f in findings:
        print(f.render())
    if not args.quiet:
        mode = "ast+tokens" if ci_mod is not None else "tokens"
        print(f"tgm-lint: {len(findings)} finding(s) across "
              f"{len(files)} file(s), {len(all_waivers)} waiver(s) "
              f"[engine: {mode}; checks: {','.join(checks)}]",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
