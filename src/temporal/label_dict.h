#ifndef TGM_TEMPORAL_LABEL_DICT_H_
#define TGM_TEMPORAL_LABEL_DICT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "temporal/common.h"

namespace tgm {

/// Bidirectional interning dictionary between human-readable labels
/// ("proc:sshd", "file:/var/log/wtmp") and dense LabelId values.
///
/// Dense ids let graphs store labels as int32 and let the matchers compare
/// labels with a single integer comparison. Not thread-safe; each pipeline
/// owns one dictionary.
class LabelDict {
 public:
  LabelDict() = default;

  /// Returns the id for `name`, interning it on first use.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidLabel if it was never interned.
  LabelId Lookup(std::string_view name) const;

  /// Returns the label string for `id`. `id` must be a valid id.
  const std::string& Name(LabelId id) const;

  /// Number of distinct labels interned so far.
  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace tgm

#endif  // TGM_TEMPORAL_LABEL_DICT_H_
