file(REMOVE_RECURSE
  "CMakeFiles/concurrent_edges_test.dir/concurrent_edges_test.cc.o"
  "CMakeFiles/concurrent_edges_test.dir/concurrent_edges_test.cc.o.d"
  "concurrent_edges_test"
  "concurrent_edges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_edges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
