#ifndef TGM_EXEC_THREAD_POOL_H_
#define TGM_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"

namespace tgm {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// The pool provides mechanism only; determinism is the callers' contract.
/// ParallelFor (exec/parallel_for.h) builds on Submit() so that every
/// parallel region computes results that are a pure function of its inputs
/// and are merged in index order, never in completion order.
///
/// A pool for a total parallelism of N spawns N-1 workers; the Nth
/// participant is the thread that blocks in ParallelFor.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is allowed and spawns none).
  explicit ThreadPool(int num_workers);

  /// Drains nothing: outstanding tasks submitted through ParallelFor are
  /// always joined before their region returns, so at destruction time the
  /// queue is empty unless a caller misused raw Submit().
  ~ThreadPool() TGM_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not block on other tasks in this pool
  /// (the pool has no work stealing, so that can deadlock).
  void Submit(std::function<void()> task) TGM_EXCLUDES(mu_);

 private:
  void WorkerLoop() TGM_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ TGM_GUARDED_BY(mu_);
  bool stop_ TGM_GUARDED_BY(mu_) = false;
  /// Written once by the constructor before any worker can observe it;
  /// read-only afterwards (num_workers(), the destructor's join loop).
  std::vector<std::thread> workers_;
};

/// Resolves a `num_threads` config knob into a concrete thread count:
/// values <= 0 mean "all hardware threads"; anything else is taken as-is.
int ResolveNumThreads(int requested);

}  // namespace tgm

#endif  // TGM_EXEC_THREAD_POOL_H_
