# Empty compiler generated dependencies file for interest_test.
# This may be replaced when dependencies are built.
