#include "query/evaluator.h"

#include <gtest/gtest.h>

namespace tgm {
namespace {

std::vector<TruthInstance> MakeTruth() {
  return {
      {BehaviorKind::kSshLogin, 100, 200},
      {BehaviorKind::kScpDownload, 300, 400},
      {BehaviorKind::kSshLogin, 500, 600},
  };
}

TEST(EvaluatorTest, PerfectMatches) {
  AccuracyResult r = EvaluateAccuracy({{110, 190}, {510, 590}}, MakeTruth(),
                                      BehaviorKind::kSshLogin);
  EXPECT_EQ(r.identified, 2);
  EXPECT_EQ(r.correct, 2);
  EXPECT_EQ(r.discovered, 2);
  EXPECT_EQ(r.instances, 2);
  EXPECT_DOUBLE_EQ(r.precision(), 1.0);
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
}

TEST(EvaluatorTest, MatchInOtherBehaviorIntervalIsIncorrect) {
  // A match inside the scp interval does not count for ssh-login.
  AccuracyResult r = EvaluateAccuracy({{310, 390}}, MakeTruth(),
                                      BehaviorKind::kSshLogin);
  EXPECT_EQ(r.correct, 0);
  EXPECT_DOUBLE_EQ(r.precision(), 0.0);
}

TEST(EvaluatorTest, PartialOverlapIsIncorrect) {
  // Containment is required, not overlap.
  AccuracyResult r = EvaluateAccuracy({{150, 250}}, MakeTruth(),
                                      BehaviorKind::kSshLogin);
  EXPECT_EQ(r.correct, 0);
}

TEST(EvaluatorTest, BoundaryContainmentCounts) {
  AccuracyResult r = EvaluateAccuracy({{100, 200}}, MakeTruth(),
                                      BehaviorKind::kSshLogin);
  EXPECT_EQ(r.correct, 1);
}

TEST(EvaluatorTest, MultipleMatchesOneInstance) {
  AccuracyResult r = EvaluateAccuracy({{110, 150}, {120, 160}, {130, 170}},
                                      MakeTruth(), BehaviorKind::kSshLogin);
  EXPECT_EQ(r.identified, 3);
  EXPECT_EQ(r.correct, 3);
  EXPECT_EQ(r.discovered, 1);  // one instance discovered
  EXPECT_DOUBLE_EQ(r.recall(), 0.5);
}

TEST(EvaluatorTest, NoMatchesGivesZeroPrecisionZeroRecall) {
  AccuracyResult r =
      EvaluateAccuracy({}, MakeTruth(), BehaviorKind::kSshLogin);
  EXPECT_DOUBLE_EQ(r.precision(), 0.0);
  EXPECT_DOUBLE_EQ(r.recall(), 0.0);
}

TEST(EvaluatorTest, NoInstancesOfBehavior) {
  AccuracyResult r = EvaluateAccuracy({{100, 150}}, MakeTruth(),
                                      BehaviorKind::kGccCompile);
  EXPECT_EQ(r.instances, 0);
  EXPECT_EQ(r.correct, 0);
  EXPECT_DOUBLE_EQ(r.recall(), 0.0);
}

TEST(EvaluatorTest, MatchBeforeAllInstances) {
  AccuracyResult r =
      EvaluateAccuracy({{10, 20}}, MakeTruth(), BehaviorKind::kSshLogin);
  EXPECT_EQ(r.correct, 0);
}

}  // namespace
}  // namespace tgm
