#ifndef TGM_QUERY_STREAM_MONITOR_H_
#define TGM_QUERY_STREAM_MONITOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "query/searcher.h"
#include "temporal/pattern.h"

namespace tgm {

/// An event arriving on the live monitoring stream. Node identities are
/// the producer's (e.g. pid/inode-derived) stable entity ids; labels are
/// interned entity labels as in TemporalGraph.
struct StreamEvent {
  std::int64_t src_entity = 0;
  std::int64_t dst_entity = 0;
  LabelId src_label = kInvalidLabel;
  LabelId dst_label = kInvalidLabel;
  LabelId elabel = kNoEdgeLabel;
  Timestamp ts = 0;
};

/// An alert: a behaviour query completed inside the stream.
struct StreamAlert {
  std::size_t query_index = 0;
  Interval interval;
};

/// Online behaviour-query monitoring (Section 1: "the formulated behavior
/// queries can also be applied on the real-time monitoring data for
/// surveillance and policy compliance checking").
///
/// The monitor maintains, per registered query, the set of partial matches
/// (prefixes of the query's edge sequence bound to concrete stream
/// entities). Each incoming event can extend a partial match by the next
/// query edge — temporal order is free because the stream itself arrives
/// in time order. Partial matches expire once the window has passed, which
/// bounds memory by (events in window) x (query size).
///
/// Expiry scans the full partial list: an extension inherits its base's
/// first_ts but is appended at the back, so the list is NOT ordered by
/// first_ts and a front-only expiry would strand never-completable
/// partials behind younger ones (inflating PartialCount and burning the
/// max_partials cap). The scan is O(live partials), the same as the
/// extension pass every event already performs.
///
/// One alert is emitted per completed match interval; the dedup set is
/// ordered by interval begin, so duplicate suppression is O(log alerts)
/// per completion and expiring old dedup entries pops the ordered front.
class StreamMonitor {
 public:
  struct Options {
    /// Maximum allowed match span; also the partial-match expiry horizon.
    Timestamp window = 0;
    /// Cap on live partial matches per query (safety valve; counts
    /// evictions in `dropped_partials`).
    std::size_t max_partials_per_query = 100000;
  };

  explicit StreamMonitor(const Options& options) : options_(options) {}

  /// Registers a behaviour query; returns its index in alerts.
  std::size_t AddQuery(const Pattern& query);

  /// Feeds one event (must be non-decreasing in ts); invokes `sink` for
  /// every alert it completes.
  void OnEvent(const StreamEvent& event,
               const std::function<void(const StreamAlert&)>& sink);

  /// Number of live partial matches (all queries).
  std::size_t PartialCount() const;

  std::int64_t dropped_partials() const { return dropped_partials_; }

 private:
  struct Partial {
    // query node -> stream entity id (kUnbound when not bound yet).
    std::vector<std::int64_t> binding;
    std::size_t next_edge = 0;  // first unmatched query edge
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
  };
  struct QueryState {
    Pattern pattern;
    std::vector<Partial> partials;
    // Dedup of emitted alert intervals, ordered by (begin, end): lookup
    // and insert are one O(log) probe, window expiry erases from the
    // ordered front.
    std::set<Interval> emitted;
  };

  static constexpr std::int64_t kUnbound = -1;

  void Advance(QueryState& state, std::size_t query_index,
               const StreamEvent& event,
               const std::function<void(const StreamAlert&)>& sink);

  Options options_;
  std::vector<QueryState> queries_;
  /// Extensions produced by the current event, appended to the live list
  /// after the scan (so the scan extends in place, copy-free). A member
  /// only to reuse its capacity across events.
  std::vector<Partial> pending_;
  std::int64_t dropped_partials_ = 0;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_MONITOR_H_
