#include "query/stream_monitor.h"

#include <algorithm>

namespace tgm {

std::size_t StreamMonitor::AddQuery(const Pattern& query) {
  TGM_CHECK(query.edge_count() >= 1);
  QueryState state;
  state.pattern = query;
  queries_.push_back(std::move(state));
  return queries_.size() - 1;
}

void StreamMonitor::OnEvent(
    const StreamEvent& event,
    const std::function<void(const StreamAlert&)>& sink) {
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    Advance(queries_[qi], qi, event, sink);
  }
}

std::size_t StreamMonitor::PartialCount() const {
  std::size_t total = 0;
  for (const QueryState& q : queries_) total += q.partials.size();
  return total;
}

void StreamMonitor::Advance(
    QueryState& state, std::size_t query_index, const StreamEvent& event,
    const std::function<void(const StreamAlert&)>& sink) {
  const Pattern& pattern = state.pattern;

  // Expire partials whose window has closed. Partials are appended in
  // first_ts order, so expiry pops from the front.
  if (options_.window > 0) {
    while (!state.partials.empty() &&
           event.ts - state.partials.front().first_ts > options_.window) {
      state.partials.pop_front();
    }
    // Emitted-interval dedup entries older than the window can never be
    // duplicated again.
    std::erase_if(state.emitted, [&](const Interval& interval) {
      return event.ts - interval.begin > options_.window;
    });
  }

  auto try_extend = [&](const Partial* base) {
    std::size_t k = base == nullptr ? 0 : base->next_edge;
    const PatternEdge& qe = pattern.edge(k);
    if (event.elabel != qe.elabel) return;
    if ((qe.src == qe.dst) != (event.src_entity == event.dst_entity)) return;

    std::int64_t bound_src =
        base == nullptr
            ? kUnbound
            : base->binding[static_cast<std::size_t>(qe.src)];
    std::int64_t bound_dst =
        base == nullptr
            ? kUnbound
            : base->binding[static_cast<std::size_t>(qe.dst)];
    if (bound_src != kUnbound && bound_src != event.src_entity) return;
    if (bound_dst != kUnbound && bound_dst != event.dst_entity) return;
    if (bound_src == kUnbound) {
      if (event.src_label != pattern.label(qe.src)) return;
      // Injectivity: the new entity must not already be bound elsewhere.
      if (base != nullptr &&
          std::find(base->binding.begin(), base->binding.end(),
                    event.src_entity) != base->binding.end()) {
        return;
      }
    }
    if (bound_dst == kUnbound && qe.src != qe.dst) {
      if (event.dst_label != pattern.label(qe.dst)) return;
      if (base != nullptr &&
          std::find(base->binding.begin(), base->binding.end(),
                    event.dst_entity) != base->binding.end()) {
        return;
      }
      if (bound_src == kUnbound && event.src_entity == event.dst_entity) {
        return;
      }
    }

    Partial extended;
    if (base == nullptr) {
      extended.binding.assign(pattern.node_count(), kUnbound);
      extended.first_ts = event.ts;
    } else {
      extended = *base;
    }
    extended.binding[static_cast<std::size_t>(qe.src)] = event.src_entity;
    extended.binding[static_cast<std::size_t>(qe.dst)] = event.dst_entity;
    extended.next_edge = k + 1;
    extended.last_ts = event.ts;
    if (options_.window > 0 &&
        extended.last_ts - extended.first_ts > options_.window) {
      return;
    }

    if (extended.next_edge == pattern.edge_count()) {
      Interval interval{extended.first_ts, extended.last_ts};
      if (std::find(state.emitted.begin(), state.emitted.end(), interval) ==
          state.emitted.end()) {
        state.emitted.push_back(interval);
        sink(StreamAlert{query_index, interval});
      }
      return;
    }
    if (state.partials.size() >= options_.max_partials_per_query) {
      ++dropped_partials_;
      return;
    }
    state.partials.push_back(std::move(extended));
  };

  // Existing partials first (snapshot the size: extensions appended during
  // this event must not be re-extended by the same event).
  std::size_t live = state.partials.size();
  for (std::size_t i = 0; i < live; ++i) {
    // deque iterators invalidate on push_back; index access is stable.
    Partial snapshot = state.partials[i];
    try_extend(&snapshot);
  }
  // And a fresh partial starting at this event.
  try_extend(nullptr);
}

}  // namespace tgm
