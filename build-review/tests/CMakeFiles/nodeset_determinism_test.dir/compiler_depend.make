# Empty compiler generated dependencies file for nodeset_determinism_test.
# This may be replaced when dependencies are built.
