#include "syslog/entity.h"

namespace tgm {

std::string EdgeOpName(EdgeOp op) {
  switch (op) {
    case EdgeOp::kFork:
      return "op:fork";
    case EdgeOp::kExec:
      return "op:exec";
    case EdgeOp::kRead:
      return "op:read";
    case EdgeOp::kWrite:
      return "op:write";
    case EdgeOp::kMmap:
      return "op:mmap";
    case EdgeOp::kStat:
      return "op:stat";
    case EdgeOp::kConnect:
      return "op:connect";
    case EdgeOp::kAccept:
      return "op:accept";
    case EdgeOp::kSend:
      return "op:send";
    case EdgeOp::kRecv:
      return "op:recv";
    case EdgeOp::kPipeW:
      return "op:pipew";
    case EdgeOp::kPipeR:
      return "op:piper";
    case EdgeOp::kChmod:
      return "op:chmod";
    case EdgeOp::kUnlink:
      return "op:unlink";
    case EdgeOp::kLock:
      return "op:lock";
  }
  return "op:unknown";
}

SyslogWorld::SyslogWorld() {
  // Reserve id 0 so kNoEdgeLabel is never a real label.
  LabelId reserved = dict_.Intern("<none>");
  TGM_CHECK(reserved == 0);
}

LabelId SyslogWorld::Proc(std::string_view name) {
  return dict_.Intern("proc:" + std::string(name));
}

LabelId SyslogWorld::File(std::string_view name) {
  return dict_.Intern("file:" + std::string(name));
}

LabelId SyslogWorld::Sock(std::string_view name) {
  return dict_.Intern("sock:" + std::string(name));
}

LabelId SyslogWorld::Pipe(std::string_view name) {
  return dict_.Intern("pipe:" + std::string(name));
}

LabelId SyslogWorld::Op(EdgeOp op) { return dict_.Intern(EdgeOpName(op)); }

}  // namespace tgm
