// Cybersecurity behaviour hunt — the paper's Example 1 end to end, on the
// tgm::api front door.
//
// A security analyst wants to find every sshd login in a week of syscall
// logs without hand-writing a query over low-level entities. The
// workflow:
//  1. run sshd-login repeatedly in a closed environment (the bundled
//     simulator — just one Session data source),
//  2. Session::Mine its most discriminative temporal patterns against
//     background, ranked with the domain-knowledge interest score,
//  3. persist the BehaviorQuery artifact,
//  4. in a *fresh analyst session*, reload the artifact, ingest the 7-day
//     monitoring log as generic event records, and Session::Search it —
//     every identified login with its time interval, scored against
//     ground truth.

#include <cstdio>
#include <sstream>
#include <vector>

#include "query/pipeline.h"

int main() {
  using namespace tgm;

  PipelineConfig config;
  config.dataset.runs_per_behavior = 12;
  config.dataset.background_graphs = 60;
  config.dataset.test_instances = 60;
  config.dataset.seed = 7;
  config.query_size = 6;
  config.miner.max_millis = 60000;

  Pipeline pipeline(config);
  std::printf("collecting closed-environment syscall logs...\n");
  pipeline.Prepare();

  int sshd_idx = 0;
  while (AllBehaviors()[static_cast<std::size_t>(sshd_idx)] !=
         BehaviorKind::kSshdLogin) {
    ++sshd_idx;
  }

  std::printf("mining discriminative temporal patterns for sshd-login...\n");
  api::MineSpec spec;
  spec.positives = Pipeline::PositivesCorpus(sshd_idx);
  spec.negatives = std::string(Pipeline::kBackgroundCorpus);
  spec.config = pipeline.config().miner;
  spec.config.max_edges = config.query_size;
  spec.interest = &pipeline.interest();
  spec.window = pipeline.WindowFor(sshd_idx);
  StatusOr<api::BehaviorQuery> mined = pipeline.session().Mine(spec);
  if (!mined.ok()) {
    std::printf("mining failed: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("  explored %lld patterns in %.2fs\n",
              static_cast<long long>(mined->provenance().patterns_visited),
              mined->provenance().elapsed_seconds);
  std::printf("behavior query built from %zu top-ranked patterns:\n",
              mined->size());
  for (const MinedPattern& q : mined->patterns()) {
    std::printf("  %s\n", q.pattern.ToString(&pipeline.world().dict()).c_str());
  }

  // Persist the artifact; any future session can run it.
  std::stringstream artifact;
  if (Status saved = pipeline.session().SaveQuery(*mined, artifact);
      !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("persisted the query as a %zu-byte tquery artifact\n",
              artifact.str().size());

  // The analyst's session: fresh dictionary, fresh corpora. The weekly
  // monitoring log arrives as generic event records (entity ids +
  // labels), as from any real audit source.
  api::Session analyst;
  StatusOr<api::BehaviorQuery> query = analyst.LoadQuery(artifact);
  if (!query.ok()) {
    std::printf("load failed: %s\n", query.status().ToString().c_str());
    return 1;
  }

  const TemporalGraph& log = pipeline.test_log().graph;
  const LabelDict& dict = pipeline.world().dict();
  std::vector<api::EventRecord> week;
  week.reserve(log.edge_count());
  for (const TemporalEdge& e : log.edges()) {
    week.push_back(api::EventRecord{
        e.src, e.dst, dict.Name(log.label(e.src)), dict.Name(log.label(e.dst)),
        e.elabel == kNoEdgeLabel ? "" : dict.Name(e.elabel), e.ts});
  }
  if (auto ingested = analyst.Ingest("seven-day-log", week); !ingested.ok()) {
    std::printf("ingest failed: %s\n",
                ingested.status().ToString().c_str());
    return 1;
  }
  std::printf("searching the 7-day monitoring log (%zu events)...\n",
              week.size());
  StatusOr<std::vector<Interval>> matches =
      analyst.Search(*query, "seven-day-log");
  if (!matches.ok()) {
    std::printf("search failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }
  AccuracyResult accuracy = pipeline.Evaluate(sshd_idx, *matches);

  std::printf("identified %lld sshd-login instances "
              "(precision %.1f%%, recall %.1f%%)\n",
              static_cast<long long>(accuracy.identified),
              100 * accuracy.precision(), 100 * accuracy.recall());
  std::size_t shown = 0;
  for (const Interval& m : *matches) {
    if (shown++ >= 5) {
      std::printf("  ... and %zu more\n", matches->size() - 5);
      break;
    }
    std::printf("  login activity in [%lld, %lld]\n",
                static_cast<long long>(m.begin),
                static_cast<long long>(m.end));
  }
  return accuracy.identified > 0 ? 0 : 1;
}
