#include "mining/registry.h"

namespace tgm {

void PatternRegistry::Add(RegisteredPattern entry) {
  if (algo_ == ResidualEquivAlgo::kIValue) {
    // The integer compression is all that is kept; drop any cut lists.
    entry.pos_cuts.clear();
    entry.pos_cuts.shrink_to_fit();
    entry.neg_cuts.clear();
    entry.neg_cuts.shrink_to_fit();
  }
  std::size_t idx = entries_.size();
  std::int64_t key = entry.pos_i_value;
  meta_.push_back(CandidateMeta{entry.branch_best, entry.neg_i_value,
                                entry.node_count, entry.edge_count});
  entries_.push_back(std::move(entry));
  if (algo_ == ResidualEquivAlgo::kIValue) {
    by_pos_i_[key].push_back(idx);
  }
}

void PatternRegistry::Absorb(PatternRegistry&& other) {
  TGM_CHECK(other.algo_ == algo_);
  if (&other == this || other.entries_.empty()) return;
  const std::size_t offset = entries_.size();
  meta_.insert(meta_.end(), other.meta_.begin(), other.meta_.end());
  for (RegisteredPattern& entry : other.entries_) {
    entries_.push_back(std::move(entry));
  }
  if (algo_ == ResidualEquivAlgo::kIValue) {
    // Bucket-local index order is registration order; rebasing and
    // appending keeps absorbed candidates after the existing ones, exactly
    // where serial registration would have put them.
    // tgm-lint: unordered-iter-ok(disjoint per-key buckets; merged order is visit-order-independent)
    for (auto& [key, indices] : other.by_pos_i_) {
      std::vector<std::size_t>& dst = by_pos_i_[key];
      dst.reserve(dst.size() + indices.size());
      for (std::size_t idx : indices) dst.push_back(idx + offset);
    }
  }
  other.entries_.clear();
  other.meta_.clear();
  other.by_pos_i_.clear();
}

}  // namespace tgm
