#include "query/stream/entity_shard.h"

namespace tgm {

void EntityShard::AddQuery(std::size_t global_index,
                           std::shared_ptr<const CompiledQueryPlan> plan,
                           Timestamp window) {
  TGM_CHECK(global_index == queries_.size());
  queries_.emplace_back(std::move(plan), window, limits_.entity_index);
}

void EntityShard::Execute(EntityShardOp& op,
                          std::vector<EntityShardResult>* results) {
  switch (op.kind) {
    case EntityShardOp::Kind::kProbe: {
      QueryState& q = queries_[op.query];
      ++probes_executed_;
      const StreamEvent& event = *op.event;
      EntityShardResult r;
      r.kind = EntityShardResult::Kind::kProbe;
      r.query = op.query;
      r.event_index = op.event_index;
      auto probe = [&](std::uint32_t slot, std::uint8_t tag) {
        const std::uint32_t k = q.table.next_edge(slot);
        const Timestamp first = q.table.first_ts(slot);
        const ExtendOutcome outcome =
            MatchTransition(*q.plan, q.window, event, k, q.table.binding(slot),
                            first, q.table.last_ts(slot));
        if (outcome == ExtendOutcome::kReject) return;
        ProbeExtension ext;
        ext.tag = tag;
        ext.first_ts = first;
        if (outcome == ExtendOutcome::kComplete) {
          ext.complete = true;
          ext.interval = Interval{first, event.ts};
        } else {
          ext.next_edge = k + 1;
          ext.last_ts = event.ts;
          FillExtendedBinding(*q.plan, k, q.table.binding(slot), event,
                              ext.binding.Resize(q.plan->node_count()));
        }
        r.exts.push_back(std::move(ext));
      };
      if ((op.probe_mask & kProbeSrc) != 0) {
        q.table.ForEachInBucket(event.src_entity,
                                [&](std::uint32_t s) { probe(s, 0); });
      }
      if ((op.probe_mask & kProbeDst) != 0) {
        q.table.ForEachInBucket(event.dst_entity,
                                [&](std::uint32_t s) { probe(s, 1); });
      }
      if ((op.probe_mask & kProbeWildcard) != 0) {
        q.table.ForEachWildcard([&](std::uint32_t s) { probe(s, 2); });
      }
      results->push_back(std::move(r));
      break;
    }
    case EntityShardOp::Kind::kInsert:
      queries_[op.query].table.InsertWithSeq(op.binding.view(), op.next_edge,
                                             op.first_ts, op.last_ts, op.role,
                                             op.key, op.seq);
      ++inserts_executed_;
      break;
    case EntityShardOp::Kind::kErase: {
      const bool erased = queries_[op.query].table.EraseBySeq(op.seq);
      TGM_DCHECK(erased);
      (void)erased;
      ++erases_executed_;
      break;
    }
    case EntityShardOp::Kind::kFlush: {
      EntityShardResult r;
      r.kind = EntityShardResult::Kind::kFlushAck;
      r.token = op.token;
      results->push_back(std::move(r));
      break;
    }
    case EntityShardOp::Kind::kStop:
      break;
  }
}

}  // namespace tgm
