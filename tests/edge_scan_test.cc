#include "matching/edge_scan_matcher.h"

#include <gtest/gtest.h>

#include <functional>

#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;
using ::tgm::testing::MakePattern;

TEST(EdgeScanTest, FindsSingleMatch) {
  TemporalGraph g = MakeGraph({0, 1, 2}, {{0, 1, 1}, {1, 2, 2}});
  Pattern p = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  EdgeScanMatcher matcher;
  std::vector<DataMatch> matches = matcher.AllMatches(p, g);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].node_map, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(matches[0].edge_map, (std::vector<EdgePos>{0, 1}));
}

TEST(EdgeScanTest, RespectsTemporalOrder) {
  // Data has B->C before A->B: the ordered pattern cannot match.
  TemporalGraph g = MakeGraph({0, 1, 2}, {{1, 2, 1}, {0, 1, 2}});
  Pattern p = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  EdgeScanMatcher matcher;
  EXPECT_FALSE(matcher.Exists(p, g));
}

TEST(EdgeScanTest, CountsAllEmbeddings) {
  // Two A->B edges each followed by two B->C edges: 2 choices for the
  // first pattern edge x later B->C edges.
  TemporalGraph g = MakeGraph(
      {0, 1, 2}, {{0, 1, 1}, {0, 1, 2}, {1, 2, 3}, {1, 2, 4}});
  Pattern p = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  EdgeScanMatcher matcher;
  // Matches: (e0,e2) (e0,e3) (e1,e2) (e1,e3).
  EXPECT_EQ(matcher.AllMatches(p, g).size(), 4u);
}

TEST(EdgeScanTest, InjectiveNodeMapping) {
  // Pattern wants two distinct B destinations.
  TemporalGraph g = MakeGraph({0, 1}, {{0, 1, 1}, {0, 1, 2}});
  Pattern p = Pattern::SingleEdge(0, 1).GrowForward(0, 1);
  EdgeScanMatcher matcher;
  EXPECT_FALSE(matcher.Exists(p, g));
}

TEST(EdgeScanTest, WindowBoundsMatchSpan) {
  TemporalGraph g = MakeGraph({0, 1, 2}, {{0, 1, 0}, {1, 2, 1000}});
  Pattern p = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  EdgeScanMatcher::Options narrow;
  narrow.window = 100;
  EXPECT_FALSE(EdgeScanMatcher(narrow).Exists(p, g));
  EdgeScanMatcher::Options wide;
  wide.window = 2000;
  EXPECT_TRUE(EdgeScanMatcher(wide).Exists(p, g));
}

TEST(EdgeScanTest, MaxMatchesCapsEnumeration) {
  TemporalGraph g = MakeGraph(
      {0, 1, 2}, {{0, 1, 1}, {0, 1, 2}, {1, 2, 3}, {1, 2, 4}});
  Pattern p = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  EdgeScanMatcher::Options options;
  options.max_matches = 2;
  std::vector<DataMatch> matches = EdgeScanMatcher(options).AllMatches(p, g);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(EdgeScanTest, BackwardGrowthEdgeMatches) {
  // Pattern: A->B then C->B (backward-grown node C).
  Pattern p = Pattern::SingleEdge(0, 1).GrowBackward(2, 1);
  TemporalGraph g = MakeGraph({0, 1, 2}, {{0, 1, 1}, {2, 1, 2}});
  EdgeScanMatcher matcher;
  EXPECT_TRUE(matcher.Exists(p, g));
}

TEST(EdgeScanTest, EdgeLabelsMustMatch) {
  TemporalGraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddEdge(0, 1, 1, /*elabel=*/7);
  g.Finalize();
  EdgeScanMatcher matcher;
  EXPECT_TRUE(matcher.Exists(Pattern::SingleEdge(0, 1, 7), g));
  EXPECT_FALSE(matcher.Exists(Pattern::SingleEdge(0, 1, 8), g));
}

TEST(EdgeScanTest, SinkCanStopEnumeration) {
  TemporalGraph g = MakeGraph({0, 1}, {{0, 1, 1}, {0, 1, 2}, {0, 1, 3}});
  Pattern p = Pattern::SingleEdge(0, 1);
  EdgeScanMatcher matcher;
  int seen = 0;
  matcher.EnumerateMatches(p, g, [&seen](const DataMatch&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

// Cross-check against a brute-force enumerator over edge subsets.
class EdgeScanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeScanPropertyTest, MatchCountEqualsBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  TemporalGraph g = tgm::testing::RandomGraph(rng, 5, 8, 2);
  Pattern p = tgm::testing::RandomPattern(rng, 2 + static_cast<int>(rng() % 2),
                                          2);
  EdgeScanMatcher matcher;
  std::vector<DataMatch> matches = matcher.AllMatches(p, g);

  // Brute force: choose |E(p)| data-edge positions in increasing order and
  // test whether they form a match under some node identification.
  std::size_t k = p.edge_count();
  std::size_t n = g.edge_count();
  std::int64_t expected = 0;
  std::vector<std::size_t> idx(k);
  std::function<void(std::size_t, std::size_t)> choose =
      [&](std::size_t depth, std::size_t start) {
        if (depth == k) {
          // Try to build a consistent injective node map.
          std::vector<NodeId> map(p.node_count(), kInvalidNode);
          std::vector<bool> used(g.node_count(), false);
          for (std::size_t i = 0; i < k; ++i) {
            const PatternEdge& qe = p.edge(i);
            const TemporalEdge& de = g.edge(static_cast<EdgePos>(idx[i]));
            if (de.elabel != qe.elabel) return;
            for (auto [qn, dn] : {std::pair{qe.src, de.src},
                                  std::pair{qe.dst, de.dst}}) {
              if (g.label(dn) != p.label(qn)) return;
              NodeId& slot = map[static_cast<std::size_t>(qn)];
              if (slot == kInvalidNode) {
                if (used[static_cast<std::size_t>(dn)]) return;
                slot = dn;
                used[static_cast<std::size_t>(dn)] = true;
              } else if (slot != dn) {
                return;
              }
            }
          }
          ++expected;
          return;
        }
        for (std::size_t i = start; i < n; ++i) {
          idx[depth] = i;
          choose(depth + 1, i + 1);
        }
      };
  choose(0, 0);
  EXPECT_EQ(static_cast<std::int64_t>(matches.size()), expected)
      << p.ToString() << "\n"
      << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeScanPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace tgm
