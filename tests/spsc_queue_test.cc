// SpscQueue / Notifier: the lock-free transport under the entity-hash
// stream engine's shard inboxes (exec/spsc_queue.h). Single-threaded
// ring-buffer semantics (capacity rounding, FIFO order, full/empty
// edges), then threaded producer/consumer stress — the TSAN CI job runs
// this suite to pin the acquire/release index protocol and the parked
// wakeup handshake race-free.

#include "exec/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace tgm {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.Empty());
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(q.TryPush(v));
  }
  EXPECT_EQ(q.SizeApprox(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, TryPushFailsWhenFullAndLeavesValueIntact) {
  SpscQueue<std::string> q(2);
  std::string a = "a", b = "b", c = "keepme";
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));
  EXPECT_EQ(c, "keepme");  // failed push must not consume the value
  std::string out;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(q.TryPush(c));  // slot freed, push succeeds now
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "b");
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "keepme");
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, WrapsAroundManyTimes) {
  SpscQueue<int> q(4);
  int next_out = 0;
  for (int i = 0; i < 1000; ++i) {
    int v = i;
    ASSERT_TRUE(q.TryPush(v));
    // Keep a partial backlog queued across wraps (never draining fully,
    // never filling up) so head and tail stay offset while both lap the
    // ring many times.
    if (q.SizeApprox() < 3) continue;
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out));
    ASSERT_EQ(out, next_out++);
  }
  int out = -1;
  while (q.TryPop(&out)) ASSERT_EQ(out, next_out++);
  EXPECT_EQ(next_out, 1000);
}

TEST(SpscQueueTest, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> q(4);
  auto v = std::make_unique<int>(42);
  ASSERT_TRUE(q.TryPush(v));
  EXPECT_EQ(v, nullptr);  // moved from on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscQueueTest, ThreadedProducerConsumerPreservesOrder) {
  // Tiny capacity so both sides exercise the full ring repeatedly and the
  // blocking Push/PopBlocking slow paths (spin -> parked timed wait) fire.
  constexpr int kCount = 20000;
  SpscQueue<std::int64_t> q(4);
  std::thread producer([&q] {
    for (std::int64_t i = 0; i < kCount; ++i) q.Push(i);
  });
  std::int64_t expected = 0;
  for (int i = 0; i < kCount; ++i) {
    std::int64_t out = -1;
    q.PopBlocking(&out);
    ASSERT_EQ(out, expected++);
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, ThreadedBurstsWithIdleGaps) {
  // Bursty producer: the consumer repeatedly drains to empty and parks,
  // so wakeups happen from the genuinely-parked state, not just the spin
  // phase.
  constexpr int kBursts = 50;
  constexpr int kPerBurst = 64;
  SpscQueue<int> q(16);
  std::thread producer([&] {
    for (int b = 0; b < kBursts; ++b) {
      for (int i = 0; i < kPerBurst; ++i) q.Push(b * kPerBurst + i);
      std::this_thread::yield();
    }
  });
  std::int64_t sum = 0;
  for (int i = 0; i < kBursts * kPerBurst; ++i) {
    int out = 0;
    q.PopBlocking(&out);
    sum += out;
  }
  producer.join();
  const std::int64_t n = static_cast<std::int64_t>(kBursts) * kPerBurst;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(SpscQueueTest, BothSidesParkRepeatedly) {
  // Regression for a self-deadlock: the blocking slow paths used to run the
  // notifying TryPush/TryPop while holding mu_, which re-locked the
  // non-recursive mu_ whenever the opposite side's parked flag was set
  // (e.g. consumer parked on empty, producer fills the ring and parks,
  // consumer wakes under mu_ and pops with producer_parked_ true). Force
  // both sides through the genuinely-parked state many times on a
  // capacity-2 ring with stalls longer than the spin phase; under the old
  // code this hangs, now it must drain in FIFO order.
  constexpr int kRounds = 400;
  SpscQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < kRounds; ++i) {
      q.Push(i);
      if (i % 3 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    int out = -1;
    q.PopBlocking(&out);
    ASSERT_EQ(out, i);
    if (i % 5 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

TEST(NotifierTest, NotifyAdvancesEpoch) {
  Notifier n;
  const std::uint64_t e0 = n.Epoch();
  n.Notify();
  EXPECT_NE(n.Epoch(), e0);
}

TEST(NotifierTest, WaitReturnsAfterStaleEpoch) {
  // A notify that lands before Wait must not be lost: the epoch already
  // moved, so Wait(seen) returns immediately.
  Notifier n;
  const std::uint64_t seen = n.Epoch();
  n.Notify();
  n.Wait(seen);  // must not hang
  SUCCEED();
}

TEST(NotifierTest, CrossThreadWakeup) {
  Notifier n;
  std::atomic<bool> done{false};
  std::thread waker([&] {
    n.Notify();
    done.store(true);
  });
  // Bounded waits mean this loop terminates even if a single wakeup is
  // missed; the test pins that it terminates promptly under contention.
  std::uint64_t seen = n.Epoch();
  while (!done.load()) {
    n.Wait(seen);
    seen = n.Epoch();
  }
  waker.join();
  SUCCEED();
}

}  // namespace
}  // namespace tgm
