#ifndef TGM_MINING_MINER_CONFIG_H_
#define TGM_MINING_MINER_CONFIG_H_

#include <cstdint>
#include <string>

#include "matching/matcher.h"
#include "mining/score.h"

namespace tgm {

/// How residual graph set equivalence (Section 4.4) is decided.
enum class ResidualEquivAlgo {
  /// I-value integers (Lemma 6): constant-time comparison. TGMiner.
  kIValue,
  /// Materialized (graph, cut) lists compared element-wise — the
  /// LinearScan ablation baseline.
  kLinearScan,
};

/// Configuration of the mining engine. The six algorithms evaluated in
/// Figure 13 are all instances of this one engine (see the factory
/// functions below), so measured differences isolate each contribution.
struct MinerConfig {
  ScoreKind score_kind = ScoreKind::kLogRatio;
  double epsilon = 1e-6;

  /// Size of the largest patterns that are allowed to be explored
  /// (Figure 14's knob). Must be >= 1.
  int max_edges = 6;

  /// How many top-scoring patterns to retain in the result.
  int top_k = 32;

  /// Naive upper-bound pruning (Section 4.1). All paper baselines use it.
  bool use_naive_bound = true;

  /// Subgraph pruning (Lemma 4).
  bool use_subgraph_pruning = true;

  /// Supergraph pruning (Proposition 2).
  bool use_supergraph_pruning = true;

  /// Temporal subgraph test algorithm used when discovering pruning
  /// opportunities.
  SubgraphTestAlgo subgraph_algo = SubgraphTestAlgo::kSequence;

  /// Residual graph set equivalence test algorithm.
  ResidualEquivAlgo residual_algo = ResidualEquivAlgo::kIValue;

  /// Optional minimum positive frequency. 0 disables the floor. Frequency
  /// is anti-monotone, so this is a sound additional prune; behaviour
  /// patterns of interest occur in (nearly) every positive run.
  double min_pos_freq = 0.0;

  /// Cap on stored embeddings per (pattern, data graph); 0 = unlimited.
  /// When hit, the embedding list is truncated deterministically and
  /// `MinerStats::embedding_cap_hits` is incremented (results may then be
  /// approximate; tests run uncapped).
  std::int64_t max_embeddings_per_graph = 0;

  /// Visit-order heuristic: explore higher-scoring candidates first so a
  /// good F* is found early (improves pruning; does not affect coverage).
  bool order_children_by_score = true;

  /// Stop exploring a branch once the retained top-k is full and the
  /// branch's upper bound cannot *exceed* the k-th best score (it could
  /// only add more ties). On cleanly separable data the log-ratio score
  /// has large tie plateaus of "perfect" patterns, and query formulation
  /// only needs top_k of them; this cuts those plateaus. Off by default to
  /// preserve the paper-exact search semantics measured in Figure 13.
  bool stop_at_top_k_ties = false;

  /// Order of pruning-condition evaluation. The paper evaluates the
  /// lemmas' structural conditions first — residual equivalence, then the
  /// temporal subgraph test, then the label condition — and gates the
  /// actual prune on the reference branch's best score last (Section 4.2;
  /// its reported overheads, 70M subgraph tests and 400M residual tests
  /// for sshd-login, only arise in this order). Setting this flag checks
  /// the cheap score gate first instead, skipping the expensive tests on
  /// unusable references — a practical speedup used by the accuracy
  /// pipeline, at the cost of no longer measuring the paper's overheads.
  bool check_reference_score_first = false;

  /// Threads used for the miner's parallel work. 1 = fully serial (no
  /// scheduler is created); 0 = all hardware threads. Parallel work runs
  /// on a steal-capable scheduler (exec/work_stealing.h) whose workers
  /// take pending tasks from each other, so joins never idle on a slow
  /// member; what gets scheduled depends on `root_batch`:
  ///
  ///  - root_batch == 1 (default): the data-parallel inner loops —
  ///    root-bucket preparation, per-graph embedding dedupe, per-graph
  ///    extension collection, residual construction, and the pruning
  ///    passes' subgraph tests — run on the scheduler. The DFS skeleton —
  ///    visit order, pruning decisions, registry and top-k updates — runs
  ///    on the calling thread and every parallel region merges per-index
  ///    results in index order, so ranked results are bit-identical for
  ///    every thread count and steal schedule.
  ///  - root_batch != 1: whole root subtrees additionally run as
  ///    stealable tasks (see root_batch below); nested joins inside a
  ///    subtree help-steal, so the inner loops fan out from subtree tasks
  ///    too. Ranked results remain bit-identical for every thread count
  ///    because subtree inputs are fixed at batch start and commits
  ///    happen in ascending root-bucket order.
  ///
  /// Both invariants hold provided the search runs to its natural end or a
  /// max_visited cap. A max_millis wall-clock cutoff truncates the search
  /// at a timing-dependent point, so timed-out runs may differ across
  /// thread counts (just as they may across repeated serial runs). On
  /// budget-truncated runs the stats.embedding_cap_hits counter may also
  /// differ: the pooled pre-pass dedupes (and counts) buckets a
  /// lazily-deduping serial run never reaches. Ranked results and the
  /// search-shape counters (patterns_visited/expanded, prune triggers) are
  /// unaffected.
  int num_threads = 1;

  /// Number of root subtrees mined concurrently per batch. The root-level
  /// ChildWork buckets are independent subtrees of the pattern-space tree
  /// (Theorem 1), so they can be explored in parallel; each subtree in a
  /// batch runs on a pool worker with its own thread-local registry,
  /// top-k list, and stats, all seeded from a read-only snapshot of the
  /// state committed by earlier batches, and the per-subtree results are
  /// committed in ascending root-bucket order once the batch joins.
  ///
  /// 1 (default) reproduces the fully serial search exactly: each "batch"
  /// is one root whose snapshot contains every earlier root, which is
  /// precisely what the serial DFS dispatch sees. Values > 1 trade pruning
  /// visibility for parallelism: subtrees in the same batch cannot see
  /// each other's registrations or best scores, so the search explores
  /// (somewhat) more patterns and its ranked tail may cut score ties
  /// differently than root_batch=1 — the maximum score is preserved
  /// either way (the pruning rules are sound under any registry subset,
  /// Theorem 2). For a fixed root_batch the search is deterministic: batch
  /// membership and snapshots depend only on root indices, never on
  /// timing, thread count, or steal order. Keep it an explicit constant
  /// when comparing runs across machines.
  ///
  /// 0 is the adaptive sentinel: batches are auto-sized from the
  /// root-bucket count and the resolved thread count (a few rounds,
  /// oversubscribed so steals level skew). Adaptive runs are repeatable
  /// for a fixed (corpus, num_threads) pair, but because the derived
  /// batch size changes with the thread count, results are comparable
  /// across thread counts only in best score, not in ranked tail —
  /// measure with explicit values, deploy with 0.
  int root_batch = 1;

  /// Minimum number of embeddings in a parallel region before the pool is
  /// engaged; smaller regions run inline because the handoff overhead
  /// exceeds the work (deep DFS nodes have a handful of embeddings, roots
  /// have thousands). Purely a scheduling knob: the inline fallback
  /// computes identical results. Tests set 0 to force the parallel paths
  /// on small fixtures.
  std::int64_t parallel_min_embeddings = 512;

  /// Minimum number of gate-surviving registry candidates in one pruning
  /// pass before its subgraph-isomorphism tests fan out across the
  /// scheduler; passes below the floor test serially on the worker's own
  /// tester. Purely a scheduling knob: the fan-out replays the serial
  /// early-exit counters exactly, so results and stats are identical
  /// either way. The floor is deliberately high: cheap sequence-algebra
  /// tests with an early first trigger lose more to task handoff than
  /// they gain from overlap, so only passes with a deep survivor list
  /// (the expensive ones) fan out. Tests set 0 to force the parallel
  /// path on small fixtures.
  std::int64_t parallel_min_prune_candidates = 32;

  /// Safety cap on visited patterns; 0 = unlimited.
  std::int64_t max_visited = 0;

  /// Wall-clock budget in milliseconds; 0 = unlimited. When exceeded the
  /// search stops and `MinerStats::timed_out` is set — the equivalent of
  /// the paper's two-day timeout that SupPrune hits on medium/large
  /// behaviours (Section 6.3).
  std::int64_t max_millis = 0;

  /// Presets reproducing the paper's six miners.
  static MinerConfig TGMiner();
  static MinerConfig SubPrune();    // subgraph pruning only
  static MinerConfig SupPrune();    // supergraph pruning only
  static MinerConfig PruneGI();     // all pruning, graph-index subtests
  static MinerConfig PruneVF2();    // all pruning, VF2 subtests
  static MinerConfig LinearScan();  // all pruning, linear residual tests

  /// Preset lookup by paper name (for benches); returns TGMiner for
  /// unknown names.
  static MinerConfig ByName(const std::string& name);
};

inline MinerConfig MinerConfig::TGMiner() { return MinerConfig{}; }

inline MinerConfig MinerConfig::SubPrune() {
  MinerConfig c;
  c.use_supergraph_pruning = false;
  return c;
}

inline MinerConfig MinerConfig::SupPrune() {
  MinerConfig c;
  c.use_subgraph_pruning = false;
  return c;
}

inline MinerConfig MinerConfig::PruneGI() {
  MinerConfig c;
  c.subgraph_algo = SubgraphTestAlgo::kGraphIndex;
  return c;
}

inline MinerConfig MinerConfig::PruneVF2() {
  MinerConfig c;
  c.subgraph_algo = SubgraphTestAlgo::kVf2;
  return c;
}

inline MinerConfig MinerConfig::LinearScan() {
  MinerConfig c;
  c.residual_algo = ResidualEquivAlgo::kLinearScan;
  return c;
}

inline MinerConfig MinerConfig::ByName(const std::string& name) {
  if (name == "SubPrune") return SubPrune();
  if (name == "SupPrune") return SupPrune();
  if (name == "PruneGI") return PruneGI();
  if (name == "PruneVF2") return PruneVF2();
  if (name == "LinearScan") return LinearScan();
  return TGMiner();
}

}  // namespace tgm

#endif  // TGM_MINING_MINER_CONFIG_H_
