#include "matching/edge_scan_matcher.h"

#include <algorithm>

namespace tgm {

struct EdgeScanMatcher::SearchContext {
  const Pattern* pattern = nullptr;
  const TemporalGraph* graph = nullptr;
  const Options* options = nullptr;
  const std::function<bool(const DataMatch&)>* sink = nullptr;
  DataMatch match;
  std::vector<bool> used;  // data node already mapped
  std::int64_t delivered = 0;
  bool stop = false;
};

bool EdgeScanMatcher::Extend(SearchContext& ctx, std::size_t k) const {
  const Pattern& pattern = *ctx.pattern;
  const TemporalGraph& graph = *ctx.graph;
  if (k == pattern.edge_count()) {
    ++ctx.delivered;
    if (!(*ctx.sink)(ctx.match)) ctx.stop = true;
    if (ctx.options->max_matches > 0 &&
        ctx.delivered >= ctx.options->max_matches) {
      ctx.stop = true;
    }
    return true;
  }

  const PatternEdge& qe = pattern.edge(k);
  NodeId ms = ctx.match.node_map[static_cast<std::size_t>(qe.src)];
  NodeId md = ctx.match.node_map[static_cast<std::size_t>(qe.dst)];
  EdgePos after = (k == 0) ? -1 : ctx.match.edge_map[k - 1];
  Timestamp first_ts =
      (k == 0) ? 0 : graph.edge(ctx.match.edge_map[0]).ts;

  auto try_position = [&](EdgePos pos) {
    if (ctx.stop) return;
    const TemporalEdge& de = graph.edge(pos);
    if (de.elabel != qe.elabel) return;
    if (ctx.options->window > 0 && k > 0 &&
        de.ts - first_ts > ctx.options->window) {
      return;
    }
    if ((qe.src == qe.dst) != (de.src == de.dst)) return;
    // Endpoint compatibility.
    if (ms != kInvalidNode && de.src != ms) return;
    if (md != kInvalidNode && de.dst != md) return;
    if (ms == kInvalidNode) {
      if (graph.label(de.src) != pattern.label(qe.src)) return;
      if (ctx.used[static_cast<std::size_t>(de.src)]) return;
    }
    if (md == kInvalidNode && qe.src != qe.dst) {
      if (graph.label(de.dst) != pattern.label(qe.dst)) return;
      if (ctx.used[static_cast<std::size_t>(de.dst)]) return;
      if (ms == kInvalidNode && de.dst == de.src) return;  // injectivity
    }
    // Bind.
    bool bound_src = false;
    bool bound_dst = false;
    if (ms == kInvalidNode) {
      ctx.match.node_map[static_cast<std::size_t>(qe.src)] = de.src;
      ctx.used[static_cast<std::size_t>(de.src)] = true;
      bound_src = true;
    }
    if (qe.src != qe.dst &&
        ctx.match.node_map[static_cast<std::size_t>(qe.dst)] ==
            kInvalidNode) {
      ctx.match.node_map[static_cast<std::size_t>(qe.dst)] = de.dst;
      ctx.used[static_cast<std::size_t>(de.dst)] = true;
      bound_dst = true;
    }
    ctx.match.edge_map.push_back(pos);
    Extend(ctx, k + 1);
    ctx.match.edge_map.pop_back();
    if (bound_dst) {
      ctx.used[static_cast<std::size_t>(de.dst)] = false;
      ctx.match.node_map[static_cast<std::size_t>(qe.dst)] = kInvalidNode;
    }
    if (bound_src) {
      ctx.used[static_cast<std::size_t>(de.src)] = false;
      ctx.match.node_map[static_cast<std::size_t>(qe.src)] = kInvalidNode;
    }
  };

  if (k == 0) {
    EdgePosSpan candidates = graph.EdgesWithSignature(
        pattern.label(qe.src), pattern.label(qe.dst), qe.elabel);
    for (EdgePos pos : candidates) {
      if (ctx.stop) break;
      try_position(pos);
    }
  } else if (ms != kInvalidNode) {
    EdgePosSpan positions = graph.out_edges(ms);
    auto it = std::upper_bound(positions.begin(), positions.end(), after);
    for (; it != positions.end() && !ctx.stop; ++it) try_position(*it);
  } else {
    TGM_DCHECK(md != kInvalidNode);  // T-connectivity
    EdgePosSpan positions = graph.in_edges(md);
    auto it = std::upper_bound(positions.begin(), positions.end(), after);
    for (; it != positions.end() && !ctx.stop; ++it) try_position(*it);
  }
  return false;
}

std::int64_t EdgeScanMatcher::EnumerateMatches(
    const Pattern& pattern, const TemporalGraph& graph,
    const std::function<bool(const DataMatch&)>& sink) const {
  TGM_CHECK(graph.finalized());
  if (pattern.edge_count() == 0) return 0;
  SearchContext ctx;
  ctx.pattern = &pattern;
  ctx.graph = &graph;
  ctx.options = &options_;
  ctx.sink = &sink;
  ctx.match.node_map.assign(pattern.node_count(), kInvalidNode);
  ctx.match.edge_map.reserve(pattern.edge_count());
  ctx.used.assign(graph.node_count(), false);
  Extend(ctx, 0);
  return ctx.delivered;
}

bool EdgeScanMatcher::Exists(const Pattern& pattern,
                             const TemporalGraph& graph) const {
  bool found = false;
  EnumerateMatches(pattern, graph, [&found](const DataMatch&) {
    found = true;
    return false;
  });
  return found;
}

std::vector<DataMatch> EdgeScanMatcher::AllMatches(
    const Pattern& pattern, const TemporalGraph& graph) const {
  std::vector<DataMatch> matches;
  EnumerateMatches(pattern, graph, [&matches](const DataMatch& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

}  // namespace tgm
