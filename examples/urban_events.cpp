// Urban computing — the paper's Example 3.
//
// Heterogeneous city data (traffic, health reports, food production) is
// fused into temporal graphs: nodes are detected events, edges connect
// events that are geographically close, timestamped by detection time.
// Domain experts ask: are these unusual events caused by river pollution?
// We mine the temporal dependency pattern of river-pollution episodes
// against ordinary-congestion episodes and use it as a query template.

#include <cstdio>
#include <random>

#include "matching/edge_scan_matcher.h"
#include "mining/miner.h"
#include "temporal/label_dict.h"

namespace {

using namespace tgm;

TemporalGraph PollutionEpisode(LabelDict& dict, std::mt19937_64& rng) {
  TemporalGraph g;
  NodeId discharge = g.AddNode(dict.Intern("event:chemical-discharge"));
  NodeId fish = g.AddNode(dict.Intern("event:fish-kill"));
  NodeId sick = g.AddNode(dict.Intern("event:high-sickness-rate"));
  NodeId food = g.AddNode(dict.Intern("event:food-yield-drop"));
  NodeId jam = g.AddNode(dict.Intern("event:traffic-jam"));
  Timestamp t = static_cast<Timestamp>(rng() % 24);
  // Pollution propagates downstream over days: discharge -> fish kill ->
  // sickness in river districts -> irrigation-fed food yield drop.
  g.AddEdge(discharge, fish, t += 24 + static_cast<Timestamp>(rng() % 12));
  g.AddEdge(fish, sick, t += 24 + static_cast<Timestamp>(rng() % 12));
  g.AddEdge(sick, food, t += 24 + static_cast<Timestamp>(rng() % 12));
  // A traffic jam near the hospital follows the sickness spike.
  g.AddEdge(sick, jam, t += 6 + static_cast<Timestamp>(rng() % 6));
  g.Finalize();
  return g;
}

TemporalGraph CongestionEpisode(LabelDict& dict, std::mt19937_64& rng) {
  TemporalGraph g;
  NodeId concert = g.AddNode(dict.Intern("event:stadium-concert"));
  NodeId jam = g.AddNode(dict.Intern("event:traffic-jam"));
  NodeId sick = g.AddNode(dict.Intern("event:high-sickness-rate"));
  NodeId food = g.AddNode(dict.Intern("event:food-yield-drop"));
  Timestamp t = static_cast<Timestamp>(rng() % 24);
  // Ordinary city life: a concert causes jams; sickness and a late-season
  // yield dip exist too, but the jam precedes the sickness report here.
  g.AddEdge(concert, jam, t += 6 + static_cast<Timestamp>(rng() % 6));
  g.AddEdge(jam, sick, t += 24 + static_cast<Timestamp>(rng() % 12));
  g.AddEdge(sick, food, t += 24 + static_cast<Timestamp>(rng() % 12));
  g.Finalize();
  return g;
}

}  // namespace

int main() {
  using namespace tgm;
  LabelDict dict;
  std::mt19937_64 rng(11);

  std::vector<TemporalGraph> pollution;
  std::vector<TemporalGraph> ordinary;
  for (int i = 0; i < 25; ++i) {
    pollution.push_back(PollutionEpisode(dict, rng));
    ordinary.push_back(CongestionEpisode(dict, rng));
  }

  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  Miner miner(config, pollution, ordinary);
  MineResult result = miner.Mine();

  std::printf("river-pollution signature (score %.2f):\n", result.best_score);
  int shown = 0;
  for (const MinedPattern& m : result.top) {
    if (m.score < result.best_score || shown >= 3) break;
    std::printf("  %s\n", m.pattern.ToString(&dict).c_str());
    ++shown;
  }

  // Use the top pattern as a query template on a "this month" feed.
  std::mt19937_64 feed_rng(12);
  TemporalGraph this_month = PollutionEpisode(dict, feed_rng);
  EdgeScanMatcher matcher;
  bool alarm = !result.top.empty() &&
               matcher.Exists(result.top.front().pattern, this_month);
  std::printf("does this month's event feed match the pollution signature? "
              "%s\n", alarm ? "YES - investigate the river" : "no");
  return alarm ? 0 : 1;
}
