#ifndef TGM_QUERY_STREAM_ENGINE_H_
#define TGM_QUERY_STREAM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/thread_pool.h"
#include "query/stream/shard.h"

namespace tgm {

/// Per-query snapshot row of EngineStats.
struct EngineQueryStats {
  std::size_t query_index = 0;
  std::size_t shard = 0;
  std::size_t live_partials = 0;
  std::size_t peak_partials = 0;  ///< high-water mark of live partials
  std::size_t index_buckets = 0;  ///< occupied entity buckets
  std::size_t wildcard_partials = 0;
  std::int64_t dropped_partials = 0;  ///< backpressure evictions/drops
  std::int64_t alerts = 0;
  /// Events this query never probed: it had no live partials and the
  /// shard's seed-dispatch bitmap proved its edge-0 labels cannot match
  /// the event (see StreamShard).
  std::int64_t seed_skips = 0;
};

/// A point-in-time snapshot of engine health; take it between events (the
/// engine is externally synchronized, see StreamEngine).
struct EngineStats {
  std::vector<EngineQueryStats> queries;  ///< ascending query_index
  std::vector<std::int64_t> shard_events;
  std::int64_t out_of_order_events = 0;
  std::size_t live_partials = 0;
  std::int64_t dropped_partials = 0;
  std::int64_t alerts = 0;
  std::int64_t seed_skips = 0;  ///< total over queries (seed dispatch)
};

/// The online surveillance engine (Section 1: behaviour queries "applied
/// on the real-time monitoring data for surveillance and policy compliance
/// checking"), replacing the monolithic scan-everything StreamMonitor:
///
/// - Queries are compiled once (CompiledQueryPlan) and partitioned
///   round-robin across `num_shards` worker shards; per-event work inside
///   a shard touches only the partials the event's entity ids can extend
///   (PartialTable's entity-keyed index).
/// - Events are buffered into batches of `batch_size` and broadcast to
///   every shard through the exec/ pool (one deterministic ParallelFor
///   chunk per shard); per-shard alerts come back tagged with their batch
///   position and are merged in (event, query index, interval) order
///   before reaching the sink.
/// - Because every shard sees every event and a query lives in exactly one
///   shard, the alert stream — including drop counters and all per-query
///   stats — is bit-identical for every shard count and batch size.
/// - Backpressure: per-query partial caps evict oldest-first with
///   per-query drop accounting (StreamLimits::max_partials); an
///   EngineStats snapshot exposes live partials, index occupancy, drops,
///   and per-shard event counts.
///
/// The engine is externally synchronized: one caller feeds OnEvent/Flush
/// (internally it fans work out to its own pool). Alerts surface on the
/// OnEvent call that completes a batch, and on Flush for a partial batch;
/// with batch_size = 1 (the default and the StreamMonitor facade setting)
/// every OnEvent is synchronous.
class StreamEngine {
 public:
  struct Options {
    /// Maximum allowed match span; also the partial-match expiry horizon.
    Timestamp window = 0;
    /// Per-query live-partial high-water mark (oldest-first eviction).
    std::size_t max_partials_per_query = 100000;
    /// Worker shards queries are partitioned across; <= 0 means all
    /// hardware threads. 1 runs inline with no pool.
    int num_shards = 1;
    /// Events per fan-out batch (>= 1). Larger batches amortize the
    /// per-batch shard join at the cost of alert latency.
    std::size_t batch_size = 1;
    /// Disable to run the legacy full-scan matching path (bench baseline).
    /// Both paths accept exactly the same matches; while no partials are
    /// dropped their alert streams are identical. Under backpressure the
    /// eviction tie-break among equal-first_ts partials follows insertion
    /// order, which differs between the paths (candidate probe order vs.
    /// wildcard scan order), so capped runs may evict different victims.
    /// The bit-identical guarantee across shard counts and batch sizes is
    /// per-path and holds with or without drops.
    bool entity_index = true;
    /// Disable to expire constrained queries' partials by the window alone
    /// instead of the tighter per-partial guard deadlines; alerts are
    /// identical either way (guards are still enforced on extension), only
    /// peak live partials differ. Bench comparison knob; no effect on
    /// unconstrained queries. See StreamLimits::guard_expiry.
    bool guard_expiry = true;
  };

  using AlertSink = std::function<void(const StreamAlert&)>;

  explicit StreamEngine(const Options& options);

  /// Registers a behaviour query; returns its index in alerts. Must not be
  /// called while events are buffered (register queries up front, or Flush
  /// first).
  std::size_t AddQuery(const Pattern& query);

  /// Same, with a per-query expiry window overriding Options::window
  /// (0 = unbounded). Lets one engine host behaviour queries with
  /// different lifetimes — e.g. a Session's live watches, where every
  /// BehaviorQuery artifact carries its own mined window.
  std::size_t AddQuery(const Pattern& query, Timestamp window);

  /// Same, with the query's timed-automata guards (TemporalConstraints).
  /// The caller is responsible for `constraints.ValidateFor(query)` (the
  /// api layer does); a trivial value is exactly the unconstrained
  /// overload.
  std::size_t AddQuery(const Pattern& query, Timestamp window,
                       const TemporalConstraints& constraints);

  /// Feeds one event. Timestamps must be non-decreasing: a decreasing
  /// `ts` is clamped to the newest timestamp seen (so window expiry stays
  /// monotonic instead of silently corrupting) and counted in
  /// `out_of_order_events`. Invokes `sink` for every alert of the batch
  /// this event completes.
  void OnEvent(const StreamEvent& event, const AlertSink& sink);

  /// Processes any buffered partial batch (call at end of stream, or
  /// before reading stats that must include all fed events).
  void Flush(const AlertSink& sink);

  std::size_t query_count() const { return query_count_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// True while a partial batch is buffered (fed events not yet
  /// processed). AddQuery is only legal when this is false; callers that
  /// want a recoverable error instead of the TGM_CHECK can test this
  /// first (Session does).
  bool has_buffered_events() const { return !batch_.empty(); }

  /// Number of live partial matches (all queries).
  std::size_t PartialCount() const;
  std::int64_t dropped_partials() const;
  std::int64_t out_of_order_events() const { return out_of_order_events_; }

  EngineStats Stats() const;

 private:
  void ProcessBatch(const AlertSink& sink);

  Options options_;
  StreamLimits limits_;
  std::unique_ptr<ThreadPool> pool_;  // num_shards - 1 workers
  std::vector<StreamShard> shards_;
  std::vector<std::vector<ShardAlert>> shard_alerts_;  // per-shard outbox
  std::vector<StreamEvent> batch_;                     // shared inbox
  std::vector<ShardAlert> merged_;
  std::size_t query_count_ = 0;
  bool any_event_ = false;
  Timestamp last_ts_ = 0;
  std::int64_t out_of_order_events_ = 0;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_ENGINE_H_
