# Empty dependencies file for parallel_miner_test.
# This may be replaced when dependencies are built.
