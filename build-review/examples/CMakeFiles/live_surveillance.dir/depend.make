# Empty dependencies file for live_surveillance.
# This may be replaced when dependencies are built.
