// The work-stealing layer: WorkDeque owner-LIFO / thief-FIFO semantics,
// TaskGroup's helping join (the nested-join-steals-instead-of-deadlocking
// regression the scheduler exists for), detached-task draining, structural
// invariants, and a randomized steal-schedule stress run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <random>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/work_stealing.h"

namespace tgm {
namespace {

TEST(WorkDequeTest, OwnerPopsLifo) {
  WorkDeque<int> dq;
  dq.PushBottom(1);
  dq.PushBottom(2);
  dq.PushBottom(3);
  EXPECT_EQ(dq.SizeApprox(), 3u);
  int v = 0;
  ASSERT_TRUE(dq.TryPopBottom(&v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(dq.TryPopBottom(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(dq.TryPopBottom(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(dq.TryPopBottom(&v));
  EXPECT_EQ(dq.CheckInvariants(), "");
}

TEST(WorkDequeTest, ThiefStealsFifo) {
  WorkDeque<int> dq;
  dq.PushBottom(1);
  dq.PushBottom(2);
  dq.PushBottom(3);
  int v = 0;
  ASSERT_TRUE(dq.TrySteal(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(dq.TrySteal(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(dq.TrySteal(&v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(dq.TrySteal(&v));
}

TEST(WorkDequeTest, OwnerAndThiefWorkOppositeEnds) {
  WorkDeque<int> dq;
  for (int i = 1; i <= 4; ++i) dq.PushBottom(i);
  int v = 0;
  ASSERT_TRUE(dq.TrySteal(&v));  // oldest
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(dq.TryPopBottom(&v));  // newest
  EXPECT_EQ(v, 4);
  ASSERT_TRUE(dq.TrySteal(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(dq.TryPopBottom(&v));
  EXPECT_EQ(v, 3);
  EXPECT_EQ(dq.SizeApprox(), 0u);
  EXPECT_EQ(dq.CheckInvariants(), "");
}

TEST(TaskGroupTest, NullSchedulerRunsInline) {
  TaskGroup group(nullptr);
  int runs = 0;
  group.Run([&] { ++runs; });
  group.Run([&] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(group.CheckInvariants(), "");
}

TEST(TaskGroupTest, ZeroWorkerSchedulerRunsInline) {
  StealScheduler sched(0);
  EXPECT_EQ(sched.num_workers(), 0);
  TaskGroup group(&sched);
  int runs = 0;
  group.Run([&] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sched.CheckInvariants(), "");
}

TEST(TaskGroupTest, WaitRethrowsTaskError) {
  StealScheduler sched(2);
  TaskGroup group(&sched);
  for (int i = 0; i < 8; ++i) {
    group.Run([i] {
      if (i == 5) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Group and scheduler stay usable after an exception.
  std::atomic<int> runs{0};
  group.Run([&] { runs.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(sched.CheckInvariants(), "");
}

TEST(StealSchedulerTest, DetachedSubmitTasksAllRun) {
  std::atomic<int> done{0};
  {
    StealScheduler sched(3);
    for (int i = 0; i < 64; ++i) {
      sched.Submit([&] { done.fetch_add(1); });
    }
    // Destructor drains queued detached tasks before joining.
  }
  EXPECT_EQ(done.load(), 64);
}

// The regression this scheduler exists for: the old pool documented
// "tasks must not block on other tasks in this pool" because a worker
// waiting on a nested join parked forever while the subtask sat in the
// queue behind it. With one worker and nested groups, any non-helping
// join deadlocks immediately.
TEST(StealSchedulerTest, NestedJoinStealsInsteadOfDeadlocking) {
  StealScheduler sched(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(&sched);
  for (int i = 0; i < 4; ++i) {
    outer.Run([&] {
      TaskGroup mid(&sched);
      for (int j = 0; j < 4; ++j) {
        mid.Run([&] {
          TaskGroup inner(&sched);
          inner.Run([&] { leaves.fetch_add(1); });
          inner.Wait();
        });
      }
      mid.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 16);
  EXPECT_EQ(sched.CheckInvariants(), "");
}

TEST(StealSchedulerTest, NestedParallelForCompletes) {
  for (int workers : {1, 3}) {
    StealScheduler sched(workers);
    std::vector<std::atomic<int>> hits(64 * 32);
    for (auto& h : hits) h.store(0);
    ParallelFor(&sched, std::size_t{64}, [&](std::size_t i) {
      ParallelFor(&sched, std::size_t{32}, [&](std::size_t j) {
        hits[i * 32 + j].fetch_add(1);
      });
    });
    for (std::size_t k = 0; k < hits.size(); ++k) {
      ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
    }
    EXPECT_EQ(sched.CheckInvariants(), "");
  }
}

TEST(StealSchedulerTest, RunOneTaskFromNonWorkerThread) {
  // Queued group tasks can be executed by any thread that offers to help.
  // Keep the single worker provably occupied first so the backlog can only
  // drain through this (non-worker) thread's RunOneTask calls.
  StealScheduler busy(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  TaskGroup blocker(&busy);
  blocker.Run([&] {
    started.store(true);
    while (!release.load()) {
    }
  });
  while (!started.load()) {
  }
  std::atomic<int> runs{0};
  TaskGroup group(&busy);
  for (int i = 0; i < 8; ++i) group.Run([&] { runs.fetch_add(1); });
  while (busy.RunOneTask()) {
  }
  EXPECT_EQ(runs.load(), 8);
  release.store(true);
  group.Wait();
  blocker.Wait();
  EXPECT_EQ(busy.CheckInvariants(), "");
}

TEST(StealSchedulerTest, RandomizedStealScheduleStress) {
  // Seeded randomized nesting: tasks spawn subtasks and spin for random
  // short periods so the steal schedule varies wildly; the counters and
  // structural invariants must hold regardless.
  std::mt19937 rng(20260808u);
  for (int round = 0; round < 4; ++round) {
    const int workers = 1 + static_cast<int>(rng() % 4);
    StealScheduler sched(workers);
    std::atomic<std::int64_t> sum{0};
    TaskGroup root(&sched);
    const int top_level = 16 + static_cast<int>(rng() % 17);
    std::int64_t expected = 0;
    for (int i = 0; i < top_level; ++i) {
      const int fan = static_cast<int>(rng() % 5);
      const unsigned spin = rng() % 256;
      expected += 1 + fan;
      root.Run([&sum, &sched, fan, spin] {
        for (volatile unsigned s = 0; s < spin; ++s) {
        }
        sum.fetch_add(1);
        TaskGroup nested(&sched);
        for (int f = 0; f < fan; ++f) {
          nested.Run([&sum] { sum.fetch_add(1); });
        }
        nested.Wait();
      });
    }
    root.Wait();
    EXPECT_EQ(sum.load(), expected) << "round " << round;
    EXPECT_EQ(sched.CheckInvariants(), "") << "round " << round;
  }
}

}  // namespace
}  // namespace tgm
