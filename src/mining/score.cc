#include "mining/score.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "temporal/common.h"

namespace tgm {

DiscriminativeScore::DiscriminativeScore(ScoreKind kind, std::int64_t num_pos,
                                         std::int64_t num_neg, double epsilon)
    : kind_(kind), num_pos_(num_pos), num_neg_(num_neg), epsilon_(epsilon) {
  TGM_CHECK(num_pos_ > 0);
  TGM_CHECK(num_neg_ > 0);
  TGM_CHECK(epsilon_ > 0.0);
}

double DiscriminativeScore::operator()(double x, double y) const {
  TGM_DCHECK(x >= 0.0 && x <= 1.0 + 1e-12);
  TGM_DCHECK(y >= 0.0 && y <= 1.0 + 1e-12);
  switch (kind_) {
    case ScoreKind::kLogRatio:
      return LogRatio(x, y);
    case ScoreKind::kGTest:
      return GTest(x, y);
    case ScoreKind::kInfoGain:
      return InfoGain(x, y);
  }
  TGM_CHECK(false);
}

double DiscriminativeScore::LogRatio(double x, double y) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(x / (y + epsilon_));
}

namespace {

double XLogXOverY(double x, double y) {
  if (x <= 0.0) return 0.0;
  return x * std::log(x / y);
}

double Entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

double DiscriminativeScore::GTest(double x, double y) const {
  // Two-sided G statistic comparing the positive-class rate x against the
  // negative-class rate y, signed so that patterns over-represented in the
  // positive class score high. Clamping keeps logs finite at y in {0, 1}.
  double yc = std::clamp(y, epsilon_, 1.0 - epsilon_);
  double g = 2.0 * static_cast<double>(num_pos_) *
             (XLogXOverY(x, yc) + XLogXOverY(1.0 - x, 1.0 - yc));
  return (x >= y) ? g : -g;
}

double DiscriminativeScore::InfoGain(double x, double y) const {
  double np = static_cast<double>(num_pos_);
  double nn = static_cast<double>(num_neg_);
  double total = np + nn;
  double prior = np / total;
  double p_feature = (x * np + y * nn) / total;
  if (p_feature <= 0.0) return 0.0;
  double gain = Entropy(prior);
  if (p_feature > 0.0) {
    double pos_given_f = (x * np) / (p_feature * total);
    gain -= p_feature * Entropy(pos_given_f);
  }
  if (p_feature < 1.0) {
    double pos_given_not_f = ((1.0 - x) * np) / ((1.0 - p_feature) * total);
    gain -= (1.0 - p_feature) * Entropy(pos_given_not_f);
  }
  // Sign the gain so patterns more frequent in the positive class rank
  // first (information gain itself is class-symmetric).
  return (x >= y) ? gain : -gain;
}

std::string DiscriminativeScore::KindName(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kLogRatio:
      return "log-ratio";
    case ScoreKind::kGTest:
      return "G-test";
    case ScoreKind::kInfoGain:
      return "information-gain";
  }
  return "unknown";
}

}  // namespace tgm
