#ifndef TGM_TEMPORAL_RESIDUAL_H_
#define TGM_TEMPORAL_RESIDUAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "temporal/common.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// A residual graph set R(G, g) for a pattern g over a graph set G
/// (Section 4.2), represented compactly.
///
/// Because edges are totally ordered, the residual graph of a match G' in
/// data graph G is fully determined by the *cut position*: the edge-list
/// position of the last matched edge. Two matches in the same graph with
/// the same cut yield the identical residual graph, so the set is exactly
/// the set of distinct (graph index, cut position) pairs.
///
/// The I-value compression (Lemma 6) is
///   I(G, g) = sum over distinct cuts of |R| = |E_G| - cut - 1,
/// and under the precondition g1 ⊆t g2, R(G,g1) = R(G,g2) iff their
/// I-values are equal — a constant-time equivalence test once I is cached.
class ResidualSet {
 public:
  ResidualSet() = default;

  /// Builds from (graph index, cut position) pairs; duplicates are removed.
  /// `graphs` supplies edge counts for the I-value.
  ResidualSet(std::vector<std::pair<std::int32_t, EdgePos>> cuts,
              const std::vector<const TemporalGraph*>& graphs);

  /// Sorted, deduplicated cut list.
  const std::vector<std::pair<std::int32_t, EdgePos>>& cuts() const {
    return cuts_;
  }

  /// The integer compression I(G, g).
  std::int64_t i_value() const { return i_value_; }

  /// Structural set equality — the "linear scan" equivalence test used by
  /// the LinearScan ablation baseline. O(|cuts|).
  bool StructurallyEqual(const ResidualSet& other) const {
    return cuts_ == other.cuts_;
  }

  /// True if label `l` appears in the residual node label set L(G, g),
  /// i.e. some residual edge of some cut touches a node labeled `l`.
  /// O(|cuts| * log) using the graphs' per-label position lists.
  bool ResidualLabelSetContains(
      LabelId l, const std::vector<const TemporalGraph*>& graphs) const;

 private:
  std::vector<std::pair<std::int32_t, EdgePos>> cuts_;
  std::int64_t i_value_ = 0;
};

}  // namespace tgm

#endif  // TGM_TEMPORAL_RESIDUAL_H_
