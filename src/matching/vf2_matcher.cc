#include "matching/vf2_matcher.h"

#include <algorithm>
#include <array>

namespace tgm {

struct Vf2Matcher::SearchContext {
  const Pattern* small = nullptr;
  const Pattern* big = nullptr;
  // Node order: connected order (each node after the first is adjacent to an
  // earlier node) so adjacency checks bind early.
  std::vector<NodeId> order;
  std::vector<NodeId> map;       // small -> big
  std::vector<bool> used;        // big side
  // Multi-edge counts between ordered node pairs, per direction.
  // small_adj[u] lists (v, #edges u->v, #edges v->u) for neighbours v.
  std::vector<std::vector<std::array<std::int32_t, 3>>> small_adj;
  std::vector<std::vector<std::array<std::int32_t, 3>>> big_adj;
  std::optional<std::vector<NodeId>> found;
};

namespace {

std::vector<std::vector<std::array<std::int32_t, 3>>> BuildAdjacency(
    const Pattern& p) {
  std::vector<std::vector<std::array<std::int32_t, 3>>> adj(p.node_count());
  auto bump = [&adj](NodeId a, NodeId b, int dir) {
    auto& list = adj[static_cast<std::size_t>(a)];
    for (auto& entry : list) {
      if (entry[0] == b) {
        ++entry[static_cast<std::size_t>(dir)];
        return;
      }
    }
    std::array<std::int32_t, 3> entry{b, 0, 0};
    entry[static_cast<std::size_t>(dir)] = 1;
    list.push_back(entry);
  };
  for (const PatternEdge& e : p.edges()) {
    bump(e.src, e.dst, 1);
    if (e.src != e.dst) bump(e.dst, e.src, 2);
  }
  return adj;
}

std::vector<NodeId> ConnectedOrder(const Pattern& p) {
  // First-appearance order is a connected order for canonical patterns.
  std::vector<NodeId> order(p.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<NodeId>(i);
  }
  return order;
}

std::int32_t CountEdges(
    const std::vector<std::vector<std::array<std::int32_t, 3>>>& adj,
    NodeId a, NodeId b, int dir) {
  for (const auto& entry : adj[static_cast<std::size_t>(a)]) {
    if (entry[0] == b) return entry[static_cast<std::size_t>(dir)];
  }
  return 0;
}

}  // namespace

bool Vf2Matcher::TemporalEdgeMappingExists(const Pattern& small,
                                           const Pattern& big,
                                           const std::vector<NodeId>& map) {
  // Greedy leftmost: walk small's edges in temporal order; for each, take
  // the earliest unused target edge between the mapped endpoints that lies
  // strictly after the previously chosen position.
  std::size_t next_pos = 0;
  const auto& big_edges = big.edges();
  for (const PatternEdge& e : small.edges()) {
    NodeId ws = map[static_cast<std::size_t>(e.src)];
    NodeId wd = map[static_cast<std::size_t>(e.dst)];
    bool found = false;
    for (std::size_t j = next_pos; j < big_edges.size(); ++j) {
      const PatternEdge& b = big_edges[j];
      if (b.src == ws && b.dst == wd && b.elabel == e.elabel) {
        next_pos = j + 1;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool Vf2Matcher::Search(SearchContext& ctx, std::size_t depth) {
  if (depth == ctx.order.size()) {
    if (TemporalEdgeMappingExists(*ctx.small, *ctx.big, ctx.map)) {
      ctx.found = ctx.map;
      return true;
    }
    return false;
  }
  NodeId u = ctx.order[depth];
  LabelId want = ctx.small->label(u);
  for (std::size_t b = 0; b < ctx.big->node_count(); ++b) {
    NodeId v = static_cast<NodeId>(b);
    if (ctx.used[b]) continue;
    if (ctx.big->label(v) != want) continue;
    if (ctx.small->out_degree(u) > ctx.big->out_degree(v)) continue;
    if (ctx.small->in_degree(u) > ctx.big->in_degree(v)) continue;
    // Adjacency consistency with already-mapped neighbours (multi-edge
    // counts must be dominated in both directions).
    bool feasible = true;
    for (const auto& entry : ctx.small_adj[static_cast<std::size_t>(u)]) {
      NodeId nb = entry[0];
      NodeId mapped = ctx.map[static_cast<std::size_t>(nb)];
      if (mapped == kInvalidNode) continue;
      if (entry[1] > CountEdges(ctx.big_adj, v, mapped, 1) ||
          entry[2] > CountEdges(ctx.big_adj, v, mapped, 2)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    ctx.map[static_cast<std::size_t>(u)] = v;
    ctx.used[b] = true;
    bool ok = Search(ctx, depth + 1);
    ctx.map[static_cast<std::size_t>(u)] = kInvalidNode;
    ctx.used[b] = false;
    if (ok) return true;
  }
  return false;
}

bool Vf2Matcher::Contains(const Pattern& small, const Pattern& big) {
  return FindMapping(small, big).has_value();
}

std::optional<std::vector<NodeId>> Vf2Matcher::FindMapping(
    const Pattern& small, const Pattern& big) {
  ++test_count_;
  if (small.edge_count() > big.edge_count()) return std::nullopt;
  if (small.node_count() > big.node_count()) return std::nullopt;
  if (small.edge_count() == 0) return std::vector<NodeId>{};

  SearchContext ctx;
  ctx.small = &small;
  ctx.big = &big;
  ctx.order = ConnectedOrder(small);
  ctx.map.assign(small.node_count(), kInvalidNode);
  ctx.used.assign(big.node_count(), false);
  ctx.small_adj = BuildAdjacency(small);
  ctx.big_adj = BuildAdjacency(big);
  if (Search(ctx, 0)) return ctx.found;
  return std::nullopt;
}

}  // namespace tgm
