// Stream-engine throughput: events/sec of the online surveillance engine
// (src/query/stream/) as a function of registered query count, matching
// path (entity-keyed partial index vs. the legacy full-scan wildcard
// path), shard count, and sharding mode (round-robin query partitioning
// vs. entity-hash data partitioning).
//
// Shape to reproduce: the entity index must beat the full scan on the
// many-queries workload — the scan path touches every live partial of
// every query per event, the index only the partials the event's entities
// can extend. Shard rows split the same workload across worker shards
// (events/sec needs a multicore host to show wall-clock scaling; on a
// 1-core container the rows pin the merge/inbox overhead instead, and
// the entity-hash rows' routing_skew / handoffs / inbox_peak counters
// document how the work *distributes* across shards). The hot-query rows
// replay a hub-skewed stream against a single query — the workload
// round-robin cannot scale (one query = one shard) but entity-hash
// spreads by construction.
//
// Flags: --queries=Q (largest query-count step), --events=N, --window=W,
// --shards=S (extra shard counts, plumbed like --threads), --max_gap=G
// (adds a constrained comparison: every query's transitions get a max-gap
// guard of G, run once with guard-driven per-partial expiry and once with
// window-only expiry — identical alerts required, peak live partials is
// the measurement), --seed, --json_out=FILE. Alert totals are
// cross-checked across all configurations of a step: every path, shard
// count, and sharding mode must agree.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <random>

#include "bench_common.h"
#include "query/stream/engine.h"
#include "temporal/constraints.h"

/// Heap-allocation counter behind the steady-state dispatch assertion:
/// the double-buffered span dispatch must not allocate (or copy batches)
/// once vector capacities are warm. Replacing global operator new is
/// per-binary instrumentation — counts every allocation in the process.
static std::atomic<std::int64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace tgm;

/// Random canonical query over `num_labels` node labels (the bench-local
/// twin of tests/test_util.h's RandomPattern — bench binaries do not see
/// the tests/ include dir).
Pattern RandomQuery(std::mt19937_64& rng, int num_edges, int num_labels) {
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  Pattern p = Pattern::SingleEdge(label(rng), label(rng));
  while (static_cast<int>(p.edge_count()) < num_edges) {
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    int choice = static_cast<int>(rng() % 3);
    if (choice == 0) {
      p = p.GrowForward(node(rng), label(rng));
    } else if (choice == 1) {
      p = p.GrowBackward(label(rng), node(rng));
    } else {
      NodeId u = node(rng);
      NodeId v = node(rng);
      if (u == v) continue;
      p = p.GrowInward(u, v);
    }
  }
  return p;
}

struct RunStats {
  double events_per_sec = 0;
  std::int64_t alerts = 0;
  std::size_t peak_partials = 0;
  std::int64_t dropped = 0;
  std::int64_t seed_skips = 0;
  // Entity-hash routing counters (zero in round-robin mode).
  std::int64_t handoffs = 0;
  double routing_skew = 0;
  std::size_t inbox_peak = 0;  ///< max over shards
};

RunStats RunEngine(const std::vector<Pattern>& queries,
                   const std::vector<StreamEvent>& events, Timestamp window,
                   bool entity_index, int num_shards,
                   const std::vector<TemporalConstraints>& constraints = {},
                   bool guard_expiry = true,
                   ShardingMode mode = ShardingMode::kQueryRoundRobin) {
  StreamEngine::Options options;
  options.window = window;
  options.entity_index = entity_index;
  options.num_shards = num_shards;
  options.batch_size = num_shards > 1 ? 32 : 1;
  options.max_partials_per_query = 50000;
  options.guard_expiry = guard_expiry;
  options.sharding = mode;
  StreamEngine engine(options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (q < constraints.size()) {
      engine.AddQuery(queries[q], window, constraints[q]);
    } else {
      engine.AddQuery(queries[q]);
    }
  }

  RunStats stats;
  auto sink = [&stats](const StreamAlert&) { ++stats.alerts; };
  auto start = std::chrono::steady_clock::now();
  for (const StreamEvent& e : events) engine.OnEvent(e, sink);
  engine.Flush(sink);
  auto stop = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(stop - start).count();
  stats.events_per_sec =
      static_cast<double>(events.size()) / (seconds > 0 ? seconds : 1e-9);
  stats.dropped = engine.dropped_partials();
  EngineStats engine_stats = engine.Stats();
  stats.seed_skips = engine_stats.seed_skips;
  for (const EngineQueryStats& q : engine_stats.queries) {
    stats.peak_partials += q.peak_partials;
  }
  stats.handoffs = engine_stats.handoffs;
  stats.routing_skew = engine_stats.routing_skew;
  for (const EngineShardStats& s : engine_stats.shards) {
    if (s.inbox_peak > stats.inbox_peak) stats.inbox_peak = s.inbox_peak;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv, {"queries", "events", "window", "shards",
                                  "max_gap", "json_out"});
  bench::Banner("Stream engine", "online surveillance events/sec");

  const int max_queries =
      static_cast<int>(flags.GetInt("queries", 64, 1, 1 << 20));
  const std::int64_t num_events = flags.GetInt("events", 20000, 1,
                                               std::int64_t{1} << 32);
  const Timestamp window = flags.GetInt("window", 500, 1);
  const int extra_shards =
      static_cast<int>(flags.GetInt("shards", 0, 0, 4096));
  const Timestamp max_gap = flags.GetInt("max_gap", 0, 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::string json_out = flags.GetString("json_out", "");
  bench::JsonBenchWriter json;

  // One fixed workload per query-count step: a dense entity population so
  // partials chain and accumulate (the regime the index exists for).
  const int num_labels = 3;
  const std::int64_t num_entities = 500;
  std::mt19937_64 rng(seed);
  std::vector<Pattern> queries;
  for (int q = 0; q < max_queries; ++q) {
    queries.push_back(RandomQuery(rng, 3, num_labels));
  }
  std::vector<StreamEvent> events;
  events.reserve(static_cast<std::size_t>(num_events));
  std::uniform_int_distribution<std::int64_t> entity(0, num_entities - 1);
  for (std::int64_t i = 0; i < num_events; ++i) {
    std::int64_t src = entity(rng);
    std::int64_t dst = entity(rng);
    if (src == dst) dst = (dst + 1) % num_entities;
    events.push_back(StreamEvent{src, dst,
                                 static_cast<LabelId>(src % num_labels),
                                 static_cast<LabelId>(dst % num_labels),
                                 kNoEdgeLabel, i});
  }

  std::printf("%8s %8s %8s %14s %10s %12s %10s %12s\n", "queries", "path",
              "shards", "events/sec", "alerts", "peak_partials", "dropped",
              "seed_skips");
  std::vector<int> steps;
  for (int q = 4; q < max_queries; q *= 4) steps.push_back(q);
  steps.push_back(max_queries);
  bool ok = true;
  for (int num_queries : steps) {
    std::vector<Pattern> subset(queries.begin(),
                                queries.begin() + num_queries);
    auto row = [&](const char* path, bool indexed, int shards,
                   ShardingMode mode = ShardingMode::kQueryRoundRobin) {
      RunStats stats = RunEngine(subset, events, window, indexed, shards, {},
                                 true, mode);
      std::printf("%8d %8s %8d %14.0f %10lld %12zu %10lld %12lld\n",
                  num_queries, path, shards, stats.events_per_sec,
                  static_cast<long long>(stats.alerts), stats.peak_partials,
                  static_cast<long long>(stats.dropped),
                  static_cast<long long>(stats.seed_skips));
      std::string name = std::string("StreamEngine/") + path + "/queries:" +
                         std::to_string(num_queries) + "/shards:" +
                         std::to_string(shards);
      json.Add(name, static_cast<double>(events.size()) /
                         stats.events_per_sec,
               {{"events_per_sec", stats.events_per_sec},
                {"queries", static_cast<double>(num_queries)},
                {"shards", static_cast<double>(shards)},
                {"indexed", indexed ? 1.0 : 0.0},
                {"entity_hash", mode == ShardingMode::kEntityHash ? 1.0 : 0.0},
                {"alerts", static_cast<double>(stats.alerts)},
                {"dropped", static_cast<double>(stats.dropped)},
                {"seed_skips", static_cast<double>(stats.seed_skips)},
                {"handoffs", static_cast<double>(stats.handoffs)},
                {"routing_skew", stats.routing_skew},
                {"inbox_peak", static_cast<double>(stats.inbox_peak)}});
      return stats;
    };
    RunStats scan = row("scan", false, 1);
    RunStats index = row("index", true, 1);
    // Shard rows must always agree with the single-shard index row (the
    // engine's shard-determinism guarantee, drops or not). Scan vs index
    // agreement is only guaranteed drop-free: under backpressure the
    // eviction tie-break follows insertion order, which differs between
    // the two matching paths.
    if (scan.dropped == 0 && index.dropped == 0 &&
        scan.alerts != index.alerts) {
      std::fprintf(stderr,
                   "error: drop-free alert mismatch at queries=%d: scan "
                   "%lld vs index %lld\n",
                   num_queries, static_cast<long long>(scan.alerts),
                   static_cast<long long>(index.alerts));
      ok = false;
    } else if (scan.dropped != 0 || index.dropped != 0) {
      std::printf("  (cap hit at queries=%d: scan/index alert parity not "
                  "checked under backpressure)\n",
                  num_queries);
    }
    if (num_queries == max_queries) {
      auto check_mode = [&](const char* path, int shards,
                            const RunStats& sharded) {
        if (sharded.alerts != index.alerts ||
            sharded.dropped != index.dropped ||
            sharded.seed_skips != index.seed_skips) {
          std::fprintf(stderr,
                       "error: shard determinism violated at queries=%d "
                       "%s shards=%d: alerts %lld vs %lld, dropped %lld vs "
                       "%lld, seed_skips %lld vs %lld\n",
                       num_queries, path, shards,
                       static_cast<long long>(sharded.alerts),
                       static_cast<long long>(index.alerts),
                       static_cast<long long>(sharded.dropped),
                       static_cast<long long>(index.dropped),
                       static_cast<long long>(sharded.seed_skips),
                       static_cast<long long>(index.seed_skips));
          ok = false;
        }
      };
      std::vector<int> shard_steps = {2, 4};
      if (extra_shards > 1 && extra_shards != 2 && extra_shards != 4) {
        shard_steps.push_back(extra_shards);
      }
      for (int shards : shard_steps) {
        check_mode("index", shards, row("index", true, shards));
      }
      // Entity-hash sweep: shards=1 is the inline no-thread path (the
      // no-regression baseline against round-robin shards=1); multi-shard
      // rows carry the routing counters (handoffs, skew, inbox peaks)
      // into the JSON. Alerts/drops/skips must match the round-robin
      // oracle bit-for-bit in every configuration.
      check_mode("ehash", 1,
                 row("ehash", true, 1, ShardingMode::kEntityHash));
      for (int shards : shard_steps) {
        check_mode("ehash", shards,
                   row("ehash", true, shards, ShardingMode::kEntityHash));
      }
    }
  }

  // Single hot query over a hub-skewed stream: the workload round-robin
  // cannot parallelize (one query lives on one shard) but entity-hash
  // spreads across shards by construction. On a 1-core host the
  // events/sec columns stay flat; the routing_skew / handoffs counters
  // are the evidence that the work *distributes* (the max/mean probe
  // share per shard), which is what this row exists to record.
  {
    std::mt19937_64 hot_rng(seed + 1);
    Pattern hot_query = RandomQuery(hot_rng, 3, 2);
    std::vector<StreamEvent> hot_events;
    hot_events.reserve(static_cast<std::size_t>(num_events));
    const std::int64_t num_spokes = 499;
    for (std::int64_t i = 0; i < num_events; ++i) {
      std::int64_t a = 0;  // the hub
      std::int64_t b = 1 + static_cast<std::int64_t>(hot_rng() % num_spokes);
      if (i % 4 == 3) {  // a quarter of the traffic is spoke-to-spoke
        a = 1 + static_cast<std::int64_t>(hot_rng() % num_spokes);
        if (a == b) b = a % num_spokes + 1;
      } else if (hot_rng() % 2 == 0) {
        std::swap(a, b);
      }
      hot_events.push_back(StreamEvent{a, b, static_cast<LabelId>(a % 2),
                                       static_cast<LabelId>(b % 2),
                                       kNoEdgeLabel, i});
    }
    const std::vector<Pattern> hot_queries = {hot_query};
    RunStats hot_rr =
        RunEngine(hot_queries, hot_events, window, true, 1);
    std::printf("%8s %8s %8d %14.0f %10lld %12zu %10lld %12lld\n", "hot",
                "index", 1, hot_rr.events_per_sec,
                static_cast<long long>(hot_rr.alerts), hot_rr.peak_partials,
                static_cast<long long>(hot_rr.dropped),
                static_cast<long long>(hot_rr.seed_skips));
    json.Add("StreamEngine/hot/index/shards:1",
             static_cast<double>(hot_events.size()) / hot_rr.events_per_sec,
             {{"events_per_sec", hot_rr.events_per_sec},
              {"alerts", static_cast<double>(hot_rr.alerts)}});
    for (int shards : {1, 2, 4}) {
      RunStats hot_eh = RunEngine(hot_queries, hot_events, window, true,
                                  shards, {}, true, ShardingMode::kEntityHash);
      std::printf("%8s %8s %8d %14.0f %10lld %12zu %10lld %12lld\n", "hot",
                  "ehash", shards, hot_eh.events_per_sec,
                  static_cast<long long>(hot_eh.alerts), hot_eh.peak_partials,
                  static_cast<long long>(hot_eh.dropped),
                  static_cast<long long>(hot_eh.seed_skips));
      json.Add("StreamEngine/hot/ehash/shards:" + std::to_string(shards),
               static_cast<double>(hot_events.size()) / hot_eh.events_per_sec,
               {{"events_per_sec", hot_eh.events_per_sec},
                {"shards", static_cast<double>(shards)},
                {"alerts", static_cast<double>(hot_eh.alerts)},
                {"handoffs", static_cast<double>(hot_eh.handoffs)},
                {"routing_skew", hot_eh.routing_skew},
                {"inbox_peak", static_cast<double>(hot_eh.inbox_peak)}});
      if (hot_eh.alerts != hot_rr.alerts || hot_eh.dropped != hot_rr.dropped) {
        std::fprintf(stderr,
                     "error: hot-query determinism violated at shards=%d: "
                     "alerts %lld vs %lld, dropped %lld vs %lld\n",
                     shards, static_cast<long long>(hot_eh.alerts),
                     static_cast<long long>(hot_rr.alerts),
                     static_cast<long long>(hot_eh.dropped),
                     static_cast<long long>(hot_rr.dropped));
        ok = false;
      }
      if (shards > 1) {
        std::printf("  (hot ehash shards=%d: routing_skew %.2f, handoffs "
                    "%lld, inbox_peak %zu)\n",
                    shards, hot_eh.routing_skew,
                    static_cast<long long>(hot_eh.handoffs),
                    hot_eh.inbox_peak);
      }
    }
  }
  // Constrained comparison: the same event stream under queries whose
  // every transition carries a max-gap guard, executed with guard-driven
  // per-partial expiry (the PartialTable deadline heap) vs window-only
  // expiry. Guards are enforced on extension either way, so the alert
  // streams must be identical; only peak live partials may differ — the
  // number this row exists to measure.
  if (max_gap > 0) {
    std::vector<TemporalConstraints> constraints;
    constraints.reserve(queries.size());
    for (const Pattern& q : queries) {
      TemporalConstraints c(q.edge_count());
      for (std::size_t k = 1; k < q.edge_count(); ++k) {
        c.mutable_guard(k).max_gap = max_gap;
      }
      constraints.push_back(std::move(c));
    }
    auto constrained_row = [&](const char* path, bool guard_expiry) {
      RunStats stats = RunEngine(queries, events, window, true, 1,
                                 constraints, guard_expiry);
      std::printf("%8d %8s %8d %14.0f %10lld %12zu %10lld %12lld\n",
                  max_queries, path, 1, stats.events_per_sec,
                  static_cast<long long>(stats.alerts), stats.peak_partials,
                  static_cast<long long>(stats.dropped),
                  static_cast<long long>(stats.seed_skips));
      json.Add(std::string("StreamEngine/") + path + "/queries:" +
                   std::to_string(max_queries) + "/max_gap:" +
                   std::to_string(max_gap),
               static_cast<double>(events.size()) / stats.events_per_sec,
               {{"events_per_sec", stats.events_per_sec},
                {"queries", static_cast<double>(max_queries)},
                {"max_gap", static_cast<double>(max_gap)},
                {"guard_expiry", guard_expiry ? 1.0 : 0.0},
                {"peak_partials", static_cast<double>(stats.peak_partials)},
                {"alerts", static_cast<double>(stats.alerts)},
                {"dropped", static_cast<double>(stats.dropped)}});
      return stats;
    };
    RunStats window_only = constrained_row("cons-win", false);
    RunStats guard_driven = constrained_row("cons-gex", true);
    if (window_only.dropped == 0 && guard_driven.dropped == 0 &&
        guard_driven.alerts != window_only.alerts) {
      std::fprintf(stderr,
                   "error: constrained alert mismatch at max_gap=%lld: "
                   "guard-expiry %lld vs window-only %lld\n",
                   static_cast<long long>(max_gap),
                   static_cast<long long>(guard_driven.alerts),
                   static_cast<long long>(window_only.alerts));
      ok = false;
    }
    if (guard_driven.peak_partials > window_only.peak_partials) {
      std::fprintf(stderr,
                   "error: guard expiry raised peak partials (%zu vs %zu)\n",
                   guard_driven.peak_partials, window_only.peak_partials);
      ok = false;
    }
    std::printf("  (max_gap=%lld guard expiry holds peak live partials at "
                "%zu vs %zu window-only, %.1fx reduction, identical "
                "alerts)\n",
                static_cast<long long>(max_gap),
                guard_driven.peak_partials, window_only.peak_partials,
                guard_driven.peak_partials > 0
                    ? static_cast<double>(window_only.peak_partials) /
                          static_cast<double>(guard_driven.peak_partials)
                    : 0.0);
  }

  // Steady-state dispatch allocations: with the double-buffered span
  // dispatch, feeding events through a warm engine whose only query
  // matches nothing must not allocate at all — no per-batch copies, no
  // per-event scratch growth — on the inline (shards=1) paths of both
  // sharding modes. A regression here (a reintroduced batch copy, a
  // per-event vector) fails the bench, not just slows it.
  {
    auto steady_allocs = [&](ShardingMode mode) {
      StreamEngine::Options options;
      options.window = window;
      options.num_shards = 1;
      options.batch_size = 32;
      options.sharding = mode;
      StreamEngine engine(options);
      // Labels absent from the stream: the seed-dispatch bitmap skips
      // every event, isolating the dispatch path itself.
      engine.AddQuery(Pattern::SingleEdge(98, 99));
      const StreamEngine::AlertSink sink = [](const StreamAlert&) {};
      const std::size_t half = events.size() / 2;
      for (std::size_t i = 0; i < half; ++i) engine.OnEvent(events[i], sink);
      engine.Flush(sink);
      const std::int64_t before =
          g_heap_allocs.load(std::memory_order_relaxed);
      for (std::size_t i = half; i < events.size(); ++i) {
        engine.OnEvent(events[i], sink);
      }
      engine.Flush(sink);
      return g_heap_allocs.load(std::memory_order_relaxed) - before;
    };
    const std::int64_t rr_allocs =
        steady_allocs(ShardingMode::kQueryRoundRobin);
    const std::int64_t eh_allocs = steady_allocs(ShardingMode::kEntityHash);
    std::printf("  (steady-state dispatch allocations over %zu events: "
                "%lld round-robin, %lld entity-hash)\n",
                events.size() - events.size() / 2,
                static_cast<long long>(rr_allocs),
                static_cast<long long>(eh_allocs));
    if (rr_allocs != 0 || eh_allocs != 0) {
      std::fprintf(stderr,
                   "error: batch dispatch allocated in steady state "
                   "(round-robin %lld, entity-hash %lld; expected 0)\n",
                   static_cast<long long>(rr_allocs),
                   static_cast<long long>(eh_allocs));
      ok = false;
    }
    json.Add("StreamEngine/dispatch_steady_allocs", 0.0,
             {{"rr_allocs", static_cast<double>(rr_allocs)},
              {"ehash_allocs", static_cast<double>(eh_allocs)}});
  }

  std::printf("(events=%lld window=%lld entities=%lld; scan = wildcard "
              "full-scan path, index = entity-keyed partial index; shard "
              "rows need a multicore host for wall-clock scaling)\n",
              static_cast<long long>(num_events),
              static_cast<long long>(window),
              static_cast<long long>(num_entities));

  if (!json_out.empty() && !json.WriteTo(json_out)) return 1;
  return ok ? 0 : 1;
}
