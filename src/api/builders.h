#ifndef TGM_API_BUILDERS_H_
#define TGM_API_BUILDERS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "api/status.h"
#include "mining/miner_config.h"
#include "query/stream/engine.h"
#include "temporal/constraints.h"
#include "temporal/pattern.h"

/// \file builders.h
/// Fluent, validating builders for the library's configuration structs.
///
/// The raw structs (`MinerConfig`, `SessionOptions`) stay plain
/// aggregates — cheap to copy, trivially defaultable — while the builders
/// give callers a chained, discoverable construction path whose `Build()`
/// validates ranges and returns `StatusOr` instead of letting a bad knob
/// (zero max_edges, negative thread count) surface later as a TGM_CHECK
/// crash deep inside the miner.

namespace tgm::api {

/// Chained construction of a MinerConfig:
///
///   TGM_ASSIGN_OR_RETURN(MinerConfig config,
///                        MinerConfigBuilder("TGMiner")
///                            .MaxEdges(6)
///                            .TopK(32)
///                            .MinPosFreq(0.75)
///                            .Threads(4)
///                            .RootBatch(16)
///                            .Build());
class MinerConfigBuilder {
 public:
  /// Starts from the TGMiner preset.
  MinerConfigBuilder() : config_(MinerConfig::TGMiner()) {}
  /// Starts from a named paper preset (TGMiner, SubPrune, SupPrune,
  /// PruneGI, PruneVF2, LinearScan); unknown names fall back to TGMiner
  /// exactly like MinerConfig::ByName.
  explicit MinerConfigBuilder(std::string_view preset)
      : config_(MinerConfig::ByName(std::string(preset))) {}
  /// Starts from an existing config (tweak-and-validate).
  explicit MinerConfigBuilder(const MinerConfig& config) : config_(config) {}

  MinerConfigBuilder& MaxEdges(int v) { config_.max_edges = v; return *this; }
  MinerConfigBuilder& TopK(int v) { config_.top_k = v; return *this; }
  MinerConfigBuilder& MinPosFreq(double v) {
    config_.min_pos_freq = v;
    return *this;
  }
  MinerConfigBuilder& MaxEmbeddingsPerGraph(std::int64_t v) {
    config_.max_embeddings_per_graph = v;
    return *this;
  }
  MinerConfigBuilder& StopAtTopKTies(bool v) {
    config_.stop_at_top_k_ties = v;
    return *this;
  }
  MinerConfigBuilder& CheckReferenceScoreFirst(bool v) {
    config_.check_reference_score_first = v;
    return *this;
  }
  MinerConfigBuilder& Threads(int v) { config_.num_threads = v; return *this; }
  MinerConfigBuilder& RootBatch(int v) { config_.root_batch = v; return *this; }
  MinerConfigBuilder& MaxVisited(std::int64_t v) {
    config_.max_visited = v;
    return *this;
  }
  MinerConfigBuilder& MaxMillis(std::int64_t v) {
    config_.max_millis = v;
    return *this;
  }

  /// Validates and returns the config.
  [[nodiscard]] StatusOr<MinerConfig> Build() const {
    if (config_.max_edges < 1) {
      return Status::InvalidArgument("max_edges must be >= 1, got " +
                                     std::to_string(config_.max_edges));
    }
    if (config_.top_k < 1) {
      return Status::InvalidArgument("top_k must be >= 1, got " +
                                     std::to_string(config_.top_k));
    }
    if (config_.min_pos_freq < 0.0 || config_.min_pos_freq > 1.0) {
      return Status::InvalidArgument(
          "min_pos_freq must be in [0, 1], got " +
          std::to_string(config_.min_pos_freq));
    }
    if (config_.num_threads < 0) {
      return Status::InvalidArgument(
          "num_threads must be >= 0 (0 = all hardware threads), got " +
          std::to_string(config_.num_threads));
    }
    if (config_.root_batch < 1) {
      return Status::InvalidArgument("root_batch must be >= 1, got " +
                                     std::to_string(config_.root_batch));
    }
    if (config_.max_embeddings_per_graph < 0 || config_.max_visited < 0 ||
        config_.max_millis < 0) {
      return Status::InvalidArgument(
          "embedding/visit/time budgets must be >= 0 (0 = unlimited)");
    }
    return config_;
  }

 private:
  MinerConfig config_;
};

/// Execution options of a Session (see api/session.h). A plain aggregate;
/// build through SessionOptionsBuilder for validation.
struct SessionOptions {
  /// Match cap of one offline Search pass (guards pathological queries).
  std::int64_t search_match_cap = 200000;
  /// Worker shards of the online engine (Watch); <= 0 = all hardware
  /// threads.
  int watch_shards = 1;
  /// How the online engine splits work across shards: round-robin query
  /// partitioning (default) or entity-hash data partitioning, which lets
  /// a single hot watch span every shard. The alert stream is
  /// bit-identical either way (see ShardingMode).
  ShardingMode watch_sharding = ShardingMode::kQueryRoundRobin;
  /// Events per engine fan-out batch (>= 1).
  std::size_t watch_batch_size = 1;
  /// Per-query live-partial cap of the online engine. Defaults to
  /// uncapped so Watch and Search agree exactly (the offline searcher
  /// never drops work); production monitors with bounded memory should
  /// lower it and accept drop accounting.
  std::size_t watch_max_partials = std::numeric_limits<std::size_t>::max();
};

/// Chained construction of SessionOptions:
///
///   TGM_ASSIGN_OR_RETURN(SessionOptions opts, SessionOptionsBuilder()
///                            .WatchShards(4)
///                            .WatchBatchSize(64)
///                            .Build());
class SessionOptionsBuilder {
 public:
  SessionOptionsBuilder() = default;
  explicit SessionOptionsBuilder(const SessionOptions& options)
      : options_(options) {}

  SessionOptionsBuilder& SearchMatchCap(std::int64_t v) {
    options_.search_match_cap = v;
    return *this;
  }
  SessionOptionsBuilder& WatchShards(int v) {
    options_.watch_shards = v;
    return *this;
  }
  SessionOptionsBuilder& WatchSharding(ShardingMode v) {
    options_.watch_sharding = v;
    return *this;
  }
  SessionOptionsBuilder& WatchBatchSize(std::size_t v) {
    options_.watch_batch_size = v;
    return *this;
  }
  SessionOptionsBuilder& WatchMaxPartials(std::size_t v) {
    options_.watch_max_partials = v;
    return *this;
  }

  [[nodiscard]] StatusOr<SessionOptions> Build() const {
    if (options_.search_match_cap < 1) {
      return Status::InvalidArgument(
          "search_match_cap must be >= 1, got " +
          std::to_string(options_.search_match_cap));
    }
    if (options_.watch_batch_size < 1) {
      return Status::InvalidArgument("watch_batch_size must be >= 1");
    }
    return options_;
  }

 private:
  SessionOptions options_;
};

/// Chained construction of a TemporalConstraints annotation for one
/// behaviour-query pattern (timed-automata guards; see
/// temporal/constraints.h). Transition indices are pattern edge positions;
/// edge 0 is the seed edge and accepts only label alternatives (time-gap
/// bounds on it are rejected at Build, like every other inconsistency):
///
///   TGM_ASSIGN_OR_RETURN(
///       TemporalConstraints c,
///       QueryConstraintsBuilder(pattern.edge_count())
///           .MaxGap(1, 30)              // edge 1 within 30s of edge 0
///           .MinGap(2, 5)               // edge 2 at least 5s after edge 1
///           .MaxSinceSeed(2, 120)       // ... and within 120s of the seed
///           .AlternativeEdgeLabel(1, sudo_label)  // edge 1: ssh OR sudo
///           .Deadline(600)              // whole match within 10 minutes
///           .Build(pattern));
class QueryConstraintsBuilder {
 public:
  explicit QueryConstraintsBuilder(std::size_t edge_count)
      : constraints_(edge_count) {}
  /// Starts from an existing annotation (tweak-and-validate).
  explicit QueryConstraintsBuilder(TemporalConstraints constraints)
      : constraints_(std::move(constraints)) {}

  /// Edge k must occur at least `v` after edge k-1.
  QueryConstraintsBuilder& MinGap(std::size_t k, Timestamp v) {
    if (TransitionGuard* g = GuardAt(k, "MinGap")) g->min_gap = v;
    return *this;
  }
  /// Edge k must occur at most `v` after edge k-1 (kNoGapLimit resets to
  /// unbounded).
  QueryConstraintsBuilder& MaxGap(std::size_t k, Timestamp v) {
    if (TransitionGuard* g = GuardAt(k, "MaxGap")) g->max_gap = v;
    return *this;
  }
  /// Edge k must occur at least `v` after the seed edge.
  QueryConstraintsBuilder& MinSinceSeed(std::size_t k, Timestamp v) {
    if (TransitionGuard* g = GuardAt(k, "MinSinceSeed")) g->min_since_seed = v;
    return *this;
  }
  /// Edge k must occur at most `v` after the seed edge.
  QueryConstraintsBuilder& MaxSinceSeed(std::size_t k, Timestamp v) {
    if (TransitionGuard* g = GuardAt(k, "MaxSinceSeed")) g->max_since_seed = v;
    return *this;
  }
  /// Edge k also accepts edge label `label` (disjunction with the
  /// pattern's own label; call repeatedly for more alternatives).
  QueryConstraintsBuilder& AlternativeEdgeLabel(std::size_t k, LabelId label) {
    if (TransitionGuard* g = GuardAt(k, "AlternativeEdgeLabel")) {
      g->elabel_alts.push_back(label);
    }
    return *this;
  }
  /// The whole match must span at most `v` (composes with the query
  /// window as min; 0 = window only).
  QueryConstraintsBuilder& Deadline(Timestamp v) {
    constraints_.set_deadline(v);
    return *this;
  }

  /// Normalizes, validates against `pattern`, and returns the annotation.
  [[nodiscard]] StatusOr<TemporalConstraints> Build(const Pattern& pattern) const {
    if (!deferred_error_.empty()) {
      return Status::InvalidArgument(deferred_error_);
    }
    TemporalConstraints result = constraints_;
    result.Normalize();
    TGM_RETURN_IF_ERROR(result.ValidateFor(pattern));
    return result;
  }

 private:
  /// Chained setters cannot return Status, so an out-of-range transition
  /// index is parked here and surfaces from Build.
  TransitionGuard* GuardAt(std::size_t k, std::string_view setter) {
    if (k < constraints_.size()) return &constraints_.mutable_guard(k);
    if (deferred_error_.empty()) {
      deferred_error_ = std::string(setter) + " on transition " +
                        std::to_string(k) + " of a query with " +
                        std::to_string(constraints_.size()) + " edges";
    }
    return nullptr;
  }

  TemporalConstraints constraints_;
  std::string deferred_error_;
};

}  // namespace tgm::api

#endif  // TGM_API_BUILDERS_H_
