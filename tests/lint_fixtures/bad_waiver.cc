// VIOLATIONS (waiver parsing, exactly 2 findings): a waiver with an empty
// reason and a waiver of an unknown kind. Suppressions are never
// anonymous and never typo-silently-ignored.

namespace lintfix {

// tgm-lint: unordered-iter-ok()
int a = 1;

// tgm-lint: speling-mistake-ok(some reason)
int b = 2;

}  // namespace lintfix
