#ifndef TGM_MATCHING_VF2_MATCHER_H_
#define TGM_MATCHING_VF2_MATCHER_H_

#include <optional>
#include <vector>

#include "matching/matcher.h"

namespace tgm {

/// Modified VF2 temporal subgraph tester — the `PruneVF2` ablation baseline
/// of Figure 13.
///
/// Classic VF2 is node-oriented: it extends a partial node mapping one node
/// pair at a time, checking label equality, degree lookahead, and adjacency
/// consistency (every already-mapped neighbour must be connected with at
/// least as many parallel edges in the target). The temporal modification:
/// once a full node mapping is found, an order-preserving injective edge
/// mapping is sought with a greedy leftmost assignment over the target's
/// temporally ordered edge list (greedy is exact by the standard exchange
/// argument). Because temporal order is only enforced at the end, VF2
/// explores many node mappings that the sequence encoding would never
/// enumerate — which is exactly why the paper's SeqMatcher wins.
class Vf2Matcher : public TemporalSubgraphTester {
 public:
  bool Contains(const Pattern& small, const Pattern& big) override;
  std::optional<std::vector<NodeId>> FindMapping(const Pattern& small,
                                                 const Pattern& big) override;

 private:
  struct SearchContext;
  bool Search(SearchContext& ctx, std::size_t depth);
  static bool TemporalEdgeMappingExists(const Pattern& small,
                                        const Pattern& big,
                                        const std::vector<NodeId>& map);
};

}  // namespace tgm

#endif  // TGM_MATCHING_VF2_MATCHER_H_
