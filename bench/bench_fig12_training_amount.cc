// Regenerates Figure 12: average TGMiner query accuracy as the amount of
// used training data varies from 0.01 to 1.0 (query size fixed at 6).
//
// Paper shape to reproduce: precision rises from ~0.91 at 1% data to ~0.97
// at 100%, with diminishing returns; recall moves similarly in a narrow
// band.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Figure 12", "query accuracy vs amount of used training data");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  Pipeline pipeline(config);
  pipeline.Prepare();

  const double fractions[] = {0.01, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::printf("%10s %12s %12s\n", "Fraction", "Precision", "Recall");
  for (double fraction : fractions) {
    double sum_p = 0.0;
    double sum_r = 0.0;
    for (int i = 0; i < kNumBehaviors; ++i) {
      AccuracyResult r =
          pipeline.RunTGMiner(i, /*query_size=*/-1, fraction);
      sum_p += r.precision();
      sum_r += r.recall();
    }
    std::printf("%10.2f %12.3f %12.3f\n", fraction, sum_p / kNumBehaviors,
                sum_r / kNumBehaviors);
  }
  std::printf("(paper shape: precision 0.91 -> 0.97 with diminishing "
              "returns as data grows)\n");
  return 0;
}
