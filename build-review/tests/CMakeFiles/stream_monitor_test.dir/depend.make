# Empty dependencies file for stream_monitor_test.
# This may be replaced when dependencies are built.
