// Additional query-layer edge cases: searcher plans, window boundaries,
// pipeline determinism, and formulation invariants.

#include <gtest/gtest.h>

#include "query/evaluator.h"
#include "query/interest.h"
#include "query/nodeset.h"
#include "query/searcher.h"
#include "query/static_search.h"
#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;
using ::tgm::testing::MakePattern;

TEST(TemporalSearchEdgeTest, EmptyQueryYieldsNothing) {
  TemporalGraph log = MakeGraph({0, 1}, {{0, 1, 1}});
  TemporalQuerySearcher searcher({});
  EXPECT_TRUE(searcher.Search(Pattern{}, log).empty());
}

TEST(TemporalSearchEdgeTest, EmptyLogYieldsNothing) {
  TemporalGraph log;
  log.Finalize();
  TemporalQuerySearcher searcher({});
  EXPECT_TRUE(searcher.Search(Pattern::SingleEdge(0, 1), log).empty());
}

TEST(TemporalSearchEdgeTest, MatchCapRespected) {
  // 30 disjoint occurrences, cap at 10.
  TemporalGraph log = [] {
    TemporalGraph g;
    for (int i = 0; i < 30; ++i) {
      NodeId a = g.AddNode(0);
      NodeId b = g.AddNode(1);
      g.AddEdge(a, b, 10 * i + 1);
    }
    g.Finalize();
    return g;
  }();
  TemporalQuerySearcher::Options options;
  options.max_matches = 10;
  std::vector<Interval> hits =
      TemporalQuerySearcher(options).Search(Pattern::SingleEdge(0, 1), log);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(TemporalSearchEdgeTest, BackwardExtensionAcrossAnchor) {
  // Rarest edge is the middle one; both directions must extend.
  TemporalGraph log = MakeGraph({0, 5, 2, 0, 2},
                                {{0, 1, 10}, {1, 2, 20}, {3, 4, 30}});
  // Pattern: A->X, X->C where X is the rare label 5.
  Pattern q = MakePattern({0, 5, 2}, {{0, 1}, {1, 2}});
  TemporalQuerySearcher::Options options;
  options.window = 100;
  std::vector<Interval> hits = TemporalQuerySearcher(options).Search(q, log);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{10, 20}));
}

TEST(TemporalSearchEdgeTest, ExactWindowBoundaryIncluded) {
  TemporalGraph log = MakeGraph({0, 1, 2}, {{0, 1, 0}, {1, 2, 100}});
  Pattern q = MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  TemporalQuerySearcher::Options options;
  options.window = 100;  // span == window exactly
  EXPECT_EQ(TemporalQuerySearcher(options).Search(q, log).size(), 1u);
}

TEST(StaticSearchEdgeTest, AnchorlessSignatureShortCircuits) {
  TemporalGraph log = MakeGraph({0, 1}, {{0, 1, 1}});
  StaticGraph q;
  q.AddNode(7);
  q.AddNode(8);
  q.AddEdge(0, 1);
  q.Finalize();
  StaticQuerySearcher searcher({});
  EXPECT_TRUE(searcher.Search(q, log).empty());
}

TEST(StaticSearchEdgeTest, MultipleComponentsViaPlanFallback) {
  // A disconnected static pattern still searches (plan falls back), the
  // window keeping it local.
  TemporalGraph log =
      MakeGraph({0, 1, 2, 3}, {{0, 1, 10}, {2, 3, 20}});
  StaticGraph q;
  q.AddNode(0);
  q.AddNode(1);
  q.AddNode(2);
  q.AddNode(3);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  q.Finalize();
  StaticQuerySearcher::Options options;
  options.window = 100;
  std::vector<Interval> hits = StaticQuerySearcher(options).Search(q, log);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], (Interval{10, 20}));
}

TEST(NodeSetEdgeTest, SingleLabelQueryMatchesEveryOccurrenceWindow) {
  TemporalGraph log = MakeGraph({7, 8}, {{0, 1, 100}, {0, 1, 5000}});
  std::vector<TemporalGraph> pos;
  pos.push_back(MakeGraph({7}, {}));
  // A graph with no edges has no label positions; build one with an edge.
  pos.back() = MakeGraph({7, 7}, {{0, 1, 1}});
  std::vector<TemporalGraph> neg;
  neg.push_back(MakeGraph({9, 9}, {{0, 1, 1}}));
  NodeSetQuery q = NodeSetQuery::Mine({&pos[0]}, {&neg[0]}, 1);
  ASSERT_EQ(q.labels().size(), 1u);
  NodeSetSearcher::Options options;
  options.window = 200;
  // Two non-overlapping windows -> two matches.
  EXPECT_EQ(NodeSetSearcher(options).Search(q, log).size(), 2u);
}

TEST(NodeSetEdgeTest, MineRespectsSupportFloor) {
  // Label 8 occurs in 1 of 4 positives; floor 0.5 excludes it.
  std::vector<TemporalGraph> pos;
  for (int i = 0; i < 4; ++i) {
    pos.push_back(MakeGraph({7, i == 0 ? 8 : 7}, {{0, 1, 1}}));
  }
  std::vector<TemporalGraph> neg;
  neg.push_back(MakeGraph({9, 9}, {{0, 1, 1}}));
  std::vector<const TemporalGraph*> pp;
  for (auto& g : pos) pp.push_back(&g);
  NodeSetQuery q =
      NodeSetQuery::Mine(pp, {&neg[0]}, 2, ScoreKind::kLogRatio, 1e-6, 0.5);
  for (LabelId l : q.labels()) EXPECT_NE(l, 8);
}

TEST(InterestEdgeTest, PatternInterestSumsNodeInterests) {
  LabelDict dict;
  LabelId a = dict.Intern("proc:rare");
  LabelId b = dict.Intern("proc:common");
  std::vector<TemporalGraph> graphs;
  for (int i = 0; i < 2; ++i) {
    TemporalGraph g;
    g.AddNode(b);
    g.AddNode(i == 0 ? a : b);
    g.AddEdge(0, 1, 1);
    g.Finalize();
    graphs.push_back(std::move(g));
  }
  InterestModel model({&graphs}, dict);
  Pattern p = Pattern::SingleEdge(a, b);
  EXPECT_DOUBLE_EQ(model.InterestOfPattern(p),
                   model.InterestOfLabel(a) + model.InterestOfLabel(b));
}

TEST(EvaluatorEdgeTest, NestedTruthIntervalsNotRequired) {
  // Matches at the exact beginning/end of distinct instances.
  std::vector<TruthInstance> truth = {
      {BehaviorKind::kWgetDownload, 0, 10},
      {BehaviorKind::kWgetDownload, 20, 30},
  };
  AccuracyResult r = EvaluateAccuracy({{0, 10}, {20, 30}, {11, 19}}, truth,
                                      BehaviorKind::kWgetDownload);
  EXPECT_EQ(r.correct, 2);
  EXPECT_EQ(r.discovered, 2);
  EXPECT_EQ(r.identified, 3);
}

}  // namespace
}  // namespace tgm
