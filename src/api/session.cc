#include "api/session.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "mining/miner.h"
#include "query/stream/event.h"

namespace tgm::api {

namespace {

bool HasWhitespace(std::string_view s) {
  return s.find_first_of(" \t\r\n") != std::string_view::npos;
}

Status ValidateCorpusName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus name must not be empty");
  }
  if (HasWhitespace(name)) {
    return Status::InvalidArgument(
        "corpus name must not contain whitespace: '" + std::string(name) +
        "'");
  }
  return Status::Ok();
}

Status ValidateLabelToken(std::string_view label, const std::string& context,
                          const char* what) {
  if (label.empty()) {
    return Status::InvalidArgument(context + ": empty " + std::string(what));
  }
  if (HasWhitespace(label)) {
    return Status::InvalidArgument(
        context + ": " + what + " '" + std::string(label) +
        "' contains whitespace (labels must be single tokens; they "
        "round-trip through the text formats)");
  }
  return Status::Ok();
}

/// Every label of `g` must already be interned in `dict`.
Status ValidateGraphLabels(const TemporalGraph& g, const LabelDict& dict) {
  const LabelId limit = static_cast<LabelId>(dict.size());
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    LabelId l = g.label(static_cast<NodeId>(v));
    if (l < 0 || l >= limit) {
      return Status::InvalidArgument(
          "graph node " + std::to_string(v) + " carries label id " +
          std::to_string(l) + ", outside this session's dictionary (size " +
          std::to_string(dict.size()) + ")");
    }
  }
  for (const TemporalEdge& e : g.edges()) {
    if (e.elabel < 0 || e.elabel >= limit) {
      return Status::InvalidArgument(
          "graph edge carries label id " + std::to_string(e.elabel) +
          ", outside this session's dictionary (size " +
          std::to_string(dict.size()) + ")");
    }
  }
  return Status::Ok();
}

}  // namespace

Session::Session(const SessionOptions& options)
    : options_(options),
      owned_dict_(std::make_unique<LabelDict>()),
      dict_(owned_dict_.get()) {
  // Reserve id 0 so kNoEdgeLabel never collides with a real label (the
  // same convention SyslogWorld establishes for its dictionary).
  LabelId reserved = dict_->Intern("<none>");
  TGM_CHECK(reserved == kNoEdgeLabel);
}

Session::Session(LabelDict* dict, const SessionOptions& options)
    : options_(options), dict_(dict) {
  TGM_CHECK(dict_ != nullptr);
  if (dict_->size() == 0) {
    dict_->Intern("<none>");
  } else {
    // A real label at id 0 would alias kNoEdgeLabel: every unlabeled
    // edge would silently match it. Fail fast on dictionaries built
    // without the reservation (SyslogWorld and owned dicts follow it).
    TGM_CHECK(dict_->Name(kNoEdgeLabel) == "<none>");
  }
}

Session::CorpusData& Session::CorpusFor(std::string_view name) {
  auto it = corpora_.find(name);
  if (it == corpora_.end()) {
    it = corpora_.emplace(std::string(name), CorpusData{}).first;
  }
  return it->second;
}

StatusOr<const Session::CorpusData*> Session::FindCorpus(
    std::string_view name) const {
  auto it = corpora_.find(name);
  if (it == corpora_.end()) {
    std::string message = "unknown corpus '" + std::string(name) + "'";
    if (corpora_.empty()) {
      message += " (no corpora ingested yet)";
    } else {
      message += "; have:";
      for (const auto& [corpus_name, data] : corpora_) {
        message += " '" + corpus_name + "'";
      }
    }
    return Status::NotFound(std::move(message));
  }
  return &it->second;
}

StatusOr<std::size_t> Session::Ingest(std::string_view corpus,
                                      std::span<const EventRecord> events) {
  TGM_RETURN_IF_ERROR(ValidateCorpusName(corpus));
  if (events.empty()) {
    return Status::InvalidArgument("cannot ingest an empty event stream as "
                                   "a graph of corpus '" +
                                   std::string(corpus) + "'");
  }

  TemporalGraph g;
  // Entity id -> (node id, label id); labels must stay consistent.
  std::unordered_map<std::int64_t, std::pair<NodeId, LabelId>> nodes;
  auto map_entity = [&](std::int64_t entity, const std::string& label,
                        std::size_t event_index,
                        NodeId* out) -> Status {
    LabelId interned = dict_->Intern(label);
    auto [it, inserted] = nodes.try_emplace(entity, kInvalidNode, interned);
    if (inserted) {
      it->second.first = g.AddNode(interned);
    } else if (it->second.second != interned) {
      return Status::InvalidArgument(
          "event " + std::to_string(event_index) + ": entity " +
          std::to_string(entity) + " relabeled from '" +
          dict_->Name(it->second.second) + "' to '" + label +
          "' within one graph");
    }
    *out = it->second.first;
    return Status::Ok();
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventRecord& rec = events[i];
    if (rec.ts < 0) {
      return Status::InvalidArgument("event " + std::to_string(i) +
                                     ": negative timestamp " +
                                     std::to_string(rec.ts));
    }
    // Self-loop events are representable (and matched live by the
    // compiled plans), so log corpora may contain them; only mining
    // forbids them, enforced per-run in ResolveTrainingSubset.
    const std::string context = "event " + std::to_string(i);
    TGM_RETURN_IF_ERROR(
        ValidateLabelToken(rec.src_label, context, "source label"));
    TGM_RETURN_IF_ERROR(
        ValidateLabelToken(rec.dst_label, context, "destination label"));
    if (!rec.edge_label.empty()) {
      TGM_RETURN_IF_ERROR(
          ValidateLabelToken(rec.edge_label, context, "edge label"));
    }
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    TGM_RETURN_IF_ERROR(map_entity(rec.src_entity, rec.src_label, i, &src));
    TGM_RETURN_IF_ERROR(map_entity(rec.dst_entity, rec.dst_label, i, &dst));
    LabelId elabel =
        rec.edge_label.empty() ? kNoEdgeLabel : dict_->Intern(rec.edge_label);
    g.AddEdge(src, dst, rec.ts, elabel);
  }
  g.Finalize(TiePolicy::kBreakByInsertionOrder);

  CorpusData& data = CorpusFor(corpus);
  data.owned.push_back(std::move(g));
  data.graphs.push_back(&data.owned.back());
  return data.graphs.size() - 1;
}

StatusOr<std::size_t> Session::IngestGraph(std::string_view corpus,
                                           TemporalGraph graph) {
  TGM_RETURN_IF_ERROR(ValidateCorpusName(corpus));
  TGM_RETURN_IF_ERROR(ValidateGraphLabels(graph, *dict_));
  if (!graph.finalized()) graph.Finalize(TiePolicy::kBreakByInsertionOrder);
  CorpusData& data = CorpusFor(corpus);
  data.owned.push_back(std::move(graph));
  data.graphs.push_back(&data.owned.back());
  return data.graphs.size() - 1;
}

Status Session::AttachCorpus(std::string_view corpus,
                             std::span<const TemporalGraph> graphs) {
  TGM_RETURN_IF_ERROR(ValidateCorpusName(corpus));
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (!graphs[i].finalized()) {
      return Status::InvalidArgument(
          "attached graph " + std::to_string(i) + " of corpus '" +
          std::string(corpus) + "' is not finalized");
    }
    // Same screen as IngestGraph: a graph interned against a different
    // dictionary would silently mis-match every query.
    TGM_RETURN_IF_ERROR(ValidateGraphLabels(graphs[i], *dict_));
  }
  CorpusData& data = CorpusFor(corpus);
  for (const TemporalGraph& g : graphs) data.graphs.push_back(&g);
  return Status::Ok();
}

StatusOr<std::span<const TemporalGraph* const>> Session::Corpus(
    std::string_view name) const {
  TGM_ASSIGN_OR_RETURN(const CorpusData* data, FindCorpus(name));
  return std::span<const TemporalGraph* const>(data->graphs);
}

std::vector<std::string> Session::CorpusNames() const {
  std::vector<std::string> names;
  names.reserve(corpora_.size());
  for (const auto& [name, data] : corpora_) names.push_back(name);
  return names;
}

StatusOr<Session::TrainingSubset> Session::ResolveTrainingSubset(
    const MineSpec& spec) const {
  // Negated-positive form so NaN (every comparison false) is rejected
  // rather than flowing into the ceil/cast of TrainingFractionCount (UB).
  if (!(spec.fraction > 0.0 && spec.fraction <= 1.0)) {
    return Status::InvalidArgument("fraction must be in (0, 1], got " +
                                   std::to_string(spec.fraction));
  }
  TGM_ASSIGN_OR_RETURN(const CorpusData* pos, FindCorpus(spec.positives));
  TGM_ASSIGN_OR_RETURN(const CorpusData* neg, FindCorpus(spec.negatives));
  if (pos->graphs.empty() || neg->graphs.empty()) {
    return Status::FailedPrecondition(
        "mining needs non-empty corpora; '" + spec.positives + "' has " +
        std::to_string(pos->graphs.size()) + " graphs, '" + spec.negatives +
        "' has " + std::to_string(neg->graphs.size()));
  }

  TrainingSubset subset;
  std::size_t pos_count =
      TrainingFractionCount(pos->graphs.size(), spec.fraction);
  std::size_t neg_count =
      TrainingFractionCount(neg->graphs.size(), spec.fraction);
  subset.positives.assign(
      pos->graphs.begin(),
      pos->graphs.begin() + static_cast<std::ptrdiff_t>(pos_count));
  subset.negatives.assign(
      neg->graphs.begin(),
      neg->graphs.begin() + static_cast<std::ptrdiff_t>(neg_count));

  // The miner TGM_CHECK-aborts on self-loop edges. Ingest rejects them up
  // front, but IngestGraph/AttachCorpus corpora arrive pre-built, so the
  // precondition must be re-checked here as a Status, not a crash.
  auto check_self_loops =
      [](const std::vector<const TemporalGraph*>& graphs,
         const std::string& corpus) -> Status {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      for (const TemporalEdge& e : graphs[i]->edges()) {
        if (e.src == e.dst) {
          return Status::FailedPrecondition(
              "graph " + std::to_string(i) + " of corpus '" + corpus +
              "' has a self-loop on node " + std::to_string(e.src) +
              "; mining requires self-loop-free graphs");
        }
      }
    }
    return Status::Ok();
  };
  TGM_RETURN_IF_ERROR(check_self_loops(subset.positives, spec.positives));
  TGM_RETURN_IF_ERROR(check_self_loops(subset.negatives, spec.negatives));
  return subset;
}

MineResult Session::RunMiner(const MinerConfig& config,
                             const TrainingSubset& subset) {
  // The subset vectors hold non-owning pointers; copying them into the
  // miner is cheap and lets callers keep the subset for provenance.
  Miner miner(config, subset.positives, subset.negatives);
  return miner.Mine();
}

StatusOr<MineResult> Session::MineRaw(const MineSpec& spec) const {
  TGM_ASSIGN_OR_RETURN(MinerConfig config,
                       MinerConfigBuilder(spec.config).Build());
  TGM_ASSIGN_OR_RETURN(TrainingSubset subset, ResolveTrainingSubset(spec));
  return RunMiner(config, subset);
}

StatusOr<BehaviorQuery> Session::Mine(const MineSpec& spec) const {
  if (spec.top_patterns < 1) {
    return Status::InvalidArgument("top_patterns must be >= 1, got " +
                                   std::to_string(spec.top_patterns));
  }
  if (spec.window < 0) {
    return Status::InvalidArgument("window must be >= 0, got " +
                                   std::to_string(spec.window));
  }
  if (spec.window == 0 && !(spec.window_slack > 0.0)) {  // NaN-safe
    return Status::InvalidArgument("window_slack must be positive to derive "
                                   "a window from the training data");
  }
  // Resolve the training subset once; the same graphs drive the mining
  // run, the window derivation, and the provenance counts, so the
  // artifact always describes exactly the run that produced it.
  TGM_ASSIGN_OR_RETURN(MinerConfig config,
                       MinerConfigBuilder(spec.config).Build());
  TGM_ASSIGN_OR_RETURN(TrainingSubset subset, ResolveTrainingSubset(spec));
  MineResult result = RunMiner(config, subset);

  std::vector<MinedPattern> selected;
  if (spec.interest != nullptr) {
    selected = SelectTopQueries(result.top, *spec.interest,
                                spec.top_patterns);
  } else {
    selected = result.top;
    if (selected.size() > static_cast<std::size_t>(spec.top_patterns)) {
      selected.resize(static_cast<std::size_t>(spec.top_patterns));
    }
  }

  if (selected.empty()) {
    // An empty artifact would fail Validate() on every downstream call;
    // surface the real cause here instead.
    return Status::FailedPrecondition(
        "mining found no discriminative patterns for '" + spec.positives +
        "' vs '" + spec.negatives + "' (visited " +
        std::to_string(result.stats.patterns_visited) +
        " patterns); relax the config (min_pos_freq, budgets) or provide "
        "more training runs");
  }

  Timestamp window = spec.window;
  if (window == 0) {
    Timestamp longest = 0;
    for (const TemporalGraph* g : subset.positives) {
      longest = std::max(longest, g->Span());
    }
    window = static_cast<Timestamp>(
        std::llround(static_cast<double>(longest) * spec.window_slack));
    if (window == 0) {
      // Window 0 means *unbounded* to Search/Watch — the opposite of the
      // tight lifetime bound this derivation promises. Zero-span training
      // graphs (or a tiny slack) cannot derive a meaningful horizon.
      return Status::FailedPrecondition(
          "derived search window is 0 (longest positive lifetime " +
          std::to_string(longest) + ", slack " +
          std::to_string(spec.window_slack) +
          "); set spec.window explicitly or increase window_slack");
    }
  }

  QueryProvenance prov;
  prov.patterns_visited = result.stats.patterns_visited;
  prov.patterns_expanded = result.stats.patterns_expanded;
  prov.truncated = result.stats.truncated();
  prov.elapsed_seconds = result.stats.elapsed_seconds;
  prov.positive_graphs = static_cast<std::int64_t>(subset.positives.size());
  prov.negative_graphs = static_cast<std::int64_t>(subset.negatives.size());
  prov.positives = spec.positives;
  prov.negatives = spec.negatives;

  return BehaviorQuery(std::move(selected), window, std::move(prov));
}

StatusOr<std::vector<Interval>> Session::Search(
    const BehaviorQuery& query, std::string_view log_corpus) const {
  TGM_RETURN_IF_ERROR(query.Validate());
  TGM_ASSIGN_OR_RETURN(const CorpusData* corpus, FindCorpus(log_corpus));

  TemporalQuerySearcher::Options options;
  options.window = query.window();
  options.max_matches = options_.search_match_cap;
  TemporalQuerySearcher searcher(options);
  std::vector<Pattern> patterns;
  patterns.reserve(query.size());
  for (const MinedPattern& m : query.patterns()) {
    patterns.push_back(m.pattern);
  }

  std::vector<Interval> intervals;
  for (const TemporalGraph* g : corpus->graphs) {
    std::vector<Interval> hits =
        searcher.SearchAll(patterns, query.constraints(), *g);
    intervals.insert(intervals.end(), hits.begin(), hits.end());
  }
  std::sort(intervals.begin(), intervals.end());
  intervals.erase(std::unique(intervals.begin(), intervals.end()),
                  intervals.end());
  return intervals;
}

StatusOr<std::vector<Interval>> Session::Watch(
    const BehaviorQuery& query, std::string_view log_corpus,
    const WatchOptions& options) const {
  TGM_RETURN_IF_ERROR(query.Validate());
  TGM_ASSIGN_OR_RETURN(const CorpusData* corpus, FindCorpus(log_corpus));

  StreamEngine::Options engine_options;
  engine_options.window = query.window();
  engine_options.num_shards =
      options.shards != 0 ? options.shards : options_.watch_shards;
  engine_options.sharding =
      options.sharding.value_or(options_.watch_sharding);
  engine_options.batch_size = options.batch_size != 0
                                  ? options.batch_size
                                  : options_.watch_batch_size;
  engine_options.max_partials_per_query = options.max_partials != 0
                                              ? options.max_partials
                                              : options_.watch_max_partials;

  std::vector<Interval> intervals;
  auto sink = [&intervals](const StreamAlert& alert) {
    intervals.push_back(alert.interval);
  };
  // One engine per log graph: each graph is an independent stream (their
  // timestamp ranges may overlap), exactly how Search treats them.
  for (const TemporalGraph* g : corpus->graphs) {
    StreamEngine engine(engine_options);
    for (std::size_t i = 0; i < query.size(); ++i) {
      engine.AddQuery(query.patterns()[i].pattern, query.window(),
                      query.constraints(i));
    }
    for (const TemporalEdge& e : g->edges()) {
      engine.OnEvent(StreamEvent::FromEdge(*g, e), sink);
    }
    engine.Flush(sink);
  }
  std::sort(intervals.begin(), intervals.end());
  intervals.erase(std::unique(intervals.begin(), intervals.end()),
                  intervals.end());
  return intervals;
}

StreamEngine::AlertSink Session::EngineSink(const WatchSink& sink) {
  // One shared translation from engine alerts (global query index) to
  // watch alerts (watch id + pattern ordinal); Feed and FlushWatches must
  // never diverge on this mapping.
  return [this, &sink](const StreamAlert& alert) {
    const auto& [watch, ordinal] = engine_index_map_[alert.query_index];
    sink(WatchAlert{watch, ordinal, alert.interval});
  };
}

Status Session::EnsureEngine() {
  if (engine_) return Status::Ok();
  StreamEngine::Options engine_options;
  // Expiry horizons are per-watch (each registered query carries its
  // artifact's window); the engine-level default is never used.
  engine_options.window = 0;
  engine_options.num_shards = options_.watch_shards;
  engine_options.sharding = options_.watch_sharding;
  engine_options.batch_size = options_.watch_batch_size;
  engine_options.max_partials_per_query = options_.watch_max_partials;
  engine_ = std::make_unique<StreamEngine>(engine_options);
  return Status::Ok();
}

StatusOr<WatchId> Session::Watch(const BehaviorQuery& query) {
  TGM_RETURN_IF_ERROR(query.Validate());
  TGM_RETURN_IF_ERROR(EnsureEngine());
  if (engine_->has_buffered_events()) {
    return Status::FailedPrecondition(
        "cannot register a watch while events are buffered; call "
        "FlushWatches first");
  }
  WatchId id = watches_.size();
  WatchEntry entry;
  entry.first_engine_index = engine_index_map_.size();
  entry.pattern_count = query.size();
  for (std::size_t ordinal = 0; ordinal < query.size(); ++ordinal) {
    std::size_t engine_index =
        engine_->AddQuery(query.patterns()[ordinal].pattern, query.window(),
                          query.constraints(ordinal));
    TGM_CHECK(engine_index == engine_index_map_.size());
    engine_index_map_.emplace_back(id, ordinal);
  }
  watches_.push_back(entry);
  return id;
}

Status Session::Feed(const StreamEvent& event, const WatchSink& sink) {
  if (!engine_ || watches_.empty()) {
    return Status::FailedPrecondition(
        "no live watches registered; call Watch(query) first");
  }
  if (event.ts < 0) {
    return Status::InvalidArgument("event timestamp is negative (" +
                                   std::to_string(event.ts) + ")");
  }
  engine_->OnEvent(event, EngineSink(sink));
  return Status::Ok();
}

Status Session::Feed(const EventRecord& record, const WatchSink& sink) {
  // Same label screening as Ingest (the single-token invariant protects
  // the dictionary every text format and future save depends on).
  // Self-loop events are fine here (the compiled plans dispatch on them);
  // only mining forbids them.
  TGM_RETURN_IF_ERROR(
      ValidateLabelToken(record.src_label, "live event", "source label"));
  TGM_RETURN_IF_ERROR(
      ValidateLabelToken(record.dst_label, "live event", "destination label"));
  if (!record.edge_label.empty()) {
    TGM_RETURN_IF_ERROR(
        ValidateLabelToken(record.edge_label, "live event", "edge label"));
  }
  StreamEvent event;
  event.src_entity = record.src_entity;
  event.dst_entity = record.dst_entity;
  // A label never seen by this session cannot occur in any mined pattern,
  // but interning keeps ids stable if a future query uses it.
  event.src_label = dict_->Intern(record.src_label);
  event.dst_label = dict_->Intern(record.dst_label);
  event.elabel = record.edge_label.empty() ? kNoEdgeLabel
                                           : dict_->Intern(record.edge_label);
  event.ts = record.ts;
  return Feed(event, sink);
}

Status Session::FlushWatches(const WatchSink& sink) {
  if (!engine_) return Status::Ok();
  engine_->Flush(EngineSink(sink));
  return Status::Ok();
}

EngineStats Session::WatchStats() const {
  if (!engine_) return EngineStats{};
  return engine_->Stats();
}

Status Session::SaveQuery(const BehaviorQuery& query, std::ostream& os) const {
  TGM_RETURN_IF_ERROR(query.Validate());
  const LabelId limit = static_cast<LabelId>(dict_->size());
  for (const MinedPattern& m : query.patterns()) {
    const Pattern& p = m.pattern;
    for (std::size_t v = 0; v < p.node_count(); ++v) {
      LabelId l = p.label(static_cast<NodeId>(v));
      if (l < 0 || l >= limit) {
        return Status::InvalidArgument(
            "pattern node label id " + std::to_string(l) +
            " is outside this session's dictionary");
      }
    }
    for (const PatternEdge& e : p.edges()) {
      if (e.elabel < 0 || e.elabel >= limit) {
        return Status::InvalidArgument(
            "pattern edge label id " + std::to_string(e.elabel) +
            " is outside this session's dictionary");
      }
    }
  }
  // Constraint label alternatives are saved by name, so they must resolve
  // through this dictionary too.
  for (const TemporalConstraints& c : query.constraints()) {
    for (const TransitionGuard& g : c.guards()) {
      for (LabelId alt : g.elabel_alts) {
        if (alt < 0 || alt >= limit) {
          return Status::InvalidArgument(
              "constraint alternative edge-label id " + std::to_string(alt) +
              " is outside this session's dictionary");
        }
      }
    }
  }
  query.Save(os, *dict_);
  return Status::Ok();
}

StatusOr<BehaviorQuery> Session::LoadQuery(std::istream& is) {
  return BehaviorQuery::Load(is, *dict_);
}

}  // namespace tgm::api
