#ifndef TGM_TEMPORAL_TEMPORAL_GRAPH_H_
#define TGM_TEMPORAL_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "temporal/common.h"
#include "temporal/label_dict.h"

namespace tgm {

/// One directed, timestamped interaction between two system entities.
struct TemporalEdge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Timestamp ts = 0;
  /// Optional edge label (syscall type such as read/write/fork). Graphs that
  /// do not use edge labels leave this as kNoEdgeLabel; all algorithms treat
  /// the edge label as part of edge identity, which degenerates gracefully.
  LabelId elabel = kNoEdgeLabel;

  friend bool operator==(const TemporalEdge&, const TemporalEdge&) = default;
};

/// Policy for turning raw event streams into the strict total edge order the
/// paper's model requires (Section 5 discusses concurrent edges).
enum class TiePolicy {
  /// Reject graphs with duplicate timestamps (TGM_CHECK failure).
  kRequireStrict,
  /// Sequentialize concurrent edges by their insertion order — the paper's
  /// "pre-defined policy" option for approximating concurrent data.
  kBreakByInsertionOrder,
};

/// Read-only view over an ascending run of edge positions inside one of the
/// graph's flat index arrays. Everything the matchers and the miner iterate
/// is one of these — contiguous, cache-resident, no per-node heap objects.
using EdgePosSpan = std::span<const EdgePos>;

/// A heterogeneous temporal graph: labeled nodes, directed multi-edges
/// totally ordered by timestamp (the paper's `G = (V, E, A, T)`).
///
/// Usage: AddNode/AddEdge in any order, then Finalize() exactly once.
/// Finalize sorts edges, enforces/establishes the total order, and builds
/// the adjacency and label indexes used by the matchers and the miner.
/// After Finalize the graph is immutable.
///
/// Layout: all post-Finalize indexes are flat CSR-style arrays — one
/// contiguous position array plus an offset array per index — so the
/// repeated temporal scans of the mining and matching hot paths walk
/// contiguous memory instead of chasing per-node/per-key heap vectors:
///  - adjacency: `out_csr_`/`in_csr_` + per-node offsets,
///  - label incidence: positions grouped by label, sorted label keys
///    binary-searched on lookup,
///  - one-edge signatures: positions grouped by packed
///    (src label, dst label, edge label) key, sorted keys binary-searched
///    on lookup.
class TemporalGraph {
 public:
  TemporalGraph() = default;

  /// Adds a node with label `label`; returns its dense id.
  NodeId AddNode(LabelId label);

  /// Adds a directed edge. Both endpoints must already exist.
  void AddEdge(NodeId src, NodeId dst, Timestamp ts,
               LabelId elabel = kNoEdgeLabel);

  /// Sorts edges into the strict total order and builds indexes.
  void Finalize(TiePolicy policy = TiePolicy::kBreakByInsertionOrder);

  bool finalized() const { return finalized_; }
  std::size_t node_count() const { return node_labels_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  LabelId label(NodeId v) const {
    TGM_DCHECK(v >= 0 && static_cast<std::size_t>(v) < node_labels_.size());
    return node_labels_[static_cast<std::size_t>(v)];
  }

  /// Edges in strict temporal order; index into this vector is the EdgePos.
  const std::vector<TemporalEdge>& edges() const { return edges_; }
  const TemporalEdge& edge(EdgePos p) const {
    TGM_DCHECK(p >= 0 && static_cast<std::size_t>(p) < edges_.size());
    return edges_[static_cast<std::size_t>(p)];
  }

  /// Positions of out-/in-edges per node, ascending. Requires Finalize.
  EdgePosSpan out_edges(NodeId v) const;
  EdgePosSpan in_edges(NodeId v) const;

  std::int32_t out_degree(NodeId v) const {
    return static_cast<std::int32_t>(out_edges(v).size());
  }
  std::int32_t in_degree(NodeId v) const {
    return static_cast<std::int32_t>(in_edges(v).size());
  }

  /// True if some edge strictly after position `pos` touches a node labeled
  /// `l`. This answers the residual-node-label-set membership queries used
  /// by subgraph pruning (Section 4.2) in O(log n). Requires Finalize.
  bool LabelOccursAfter(LabelId l, EdgePos pos) const;

  /// Positions of edges whose source/destination labels (and edge label)
  /// equal the key — the "one-edge substructure" index used by the
  /// graph-index matcher and the query searcher. Empty if none.
  EdgePosSpan EdgesWithSignature(LabelId src_label, LabelId dst_label,
                                 LabelId elabel) const;

  /// Positions (ascending) of edges incident to a node labeled `l`.
  EdgePosSpan LabelPositions(LabelId l) const;

  /// True if the graph is T-connected: for every edge, the edges strictly
  /// before it (plus itself) form a connected graph (Section 2).
  bool IsTConnected() const;

  /// Timestamp span max(ts) - min(ts); 0 for graphs with < 2 edges.
  Timestamp Span() const;

  /// Set of distinct node labels in this graph.
  std::vector<LabelId> DistinctNodeLabels() const;

  /// Human-readable dump (for tests and examples).
  std::string ToString(const LabelDict* dict = nullptr) const;

 private:
  static std::int64_t PackSignature(LabelId src_label, LabelId dst_label,
                                    LabelId elabel);

  std::vector<LabelId> node_labels_;
  std::vector<TemporalEdge> edges_;
  bool finalized_ = false;

  // CSR adjacency: node v's out-edge positions are
  // out_csr_[out_offsets_[v] .. out_offsets_[v+1]), ascending. Offsets have
  // node_count()+1 entries. Same shape for in-edges.
  std::vector<EdgePos> out_csr_;
  std::vector<std::int32_t> out_offsets_;
  std::vector<EdgePos> in_csr_;
  std::vector<std::int32_t> in_offsets_;

  // Label incidence index: label_keys_ holds the distinct incident labels in
  // ascending order; label l's positions (ascending, deduped) are
  // label_csr_[label_offsets_[k] .. label_offsets_[k+1]) where k is l's rank
  // in label_keys_ (binary search on lookup).
  std::vector<LabelId> label_keys_;
  std::vector<std::int32_t> label_offsets_;
  std::vector<EdgePos> label_csr_;

  // One-edge signature index, same sorted-key CSR shape keyed by the packed
  // (src label, dst label, edge label) signature.
  std::vector<std::int64_t> sig_keys_;
  std::vector<std::int32_t> sig_offsets_;
  std::vector<EdgePos> sig_csr_;
};

}  // namespace tgm

#endif  // TGM_TEMPORAL_TEMPORAL_GRAPH_H_
