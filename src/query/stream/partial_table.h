#ifndef TGM_QUERY_STREAM_PARTIAL_TABLE_H_
#define TGM_QUERY_STREAM_PARTIAL_TABLE_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "temporal/common.h"

namespace tgm {

struct PartialTableTestPeer;

/// Storage for one query's live partial matches, organised for O(touched)
/// per-event work instead of O(live):
///
/// - **Slot arena.** Partial metadata lives in a flat slot vector and all
///   bindings in one `slots x node_count` array (every partial of a query
///   has the same binding width), so steady-state insert/remove recycles
///   slots and never allocates.
/// - **Entity-keyed index.** Each partial is filed under the concrete
///   entity its next unmatched edge requires: the bound source entity if
///   the transition's source slot is bound, else the bound destination
///   entity, else a wildcard bucket (canonical consecutive growth makes
///   the wildcard reachable only by edge 0, but the bucket keeps the
///   structure total). The index is one role-agnostic entity -> bucket
///   map — the same key the entity-hash engine shards the table by — so
///   an event probes exactly `by_entity[event.src] ∪ by_entity[event.dst]
///   ∪ wildcard`: the only partials that can possibly extend, instead of
///   a scan of all of them. When the event is a self-loop
///   (src == dst) the two probes name the *same* bucket; ForEachExtendable
///   dedups at the bucket level so no partial is ever probed twice (a
///   naive two-sided probe would double-extend every partial in that
///   bucket). With `entity_index = false` everything is filed under the
///   wildcard bucket, which *is* the legacy full-scan path (used as the
///   bench baseline).
/// - **Expiry order.** A min-heap keyed by (expiry, first_ts, insertion
///   seq) drives both expiry (pop while `expiry < now`) and backpressure
///   eviction (pop the top), replacing the full compaction scan the old
///   monitor ran per event. The expiry timestamp is computed by the
///   caller per partial — the window horizon for a plain query, tightened
///   by the max-gap / since-seed guard deadlines for a constrained one
///   (see QueryRuntime), which is how dead constrained partials leave the
///   table long before the window would reclaim them. For an
///   unconstrained query every expiry is `first_ts + window` (or
///   kNeverExpires), so the heap order collapses to the historical
///   (first_ts, seq) age order and both expiry and eviction behave
///   bit-identically to the pre-constraint table. Partials are only ever
///   removed through this heap, so it needs no lazy deletion.
///
/// Bucket iteration order is insertion order (swap-removal perturbs it
/// deterministically), so every operation is a pure function of the event
/// history — the basis of the engine's cross-shard determinism.
///
/// **External-lifetime mode** (`external_lifetime = true`): the table is
/// one entity-hash shard's fragment of a query's partials. Expiry and
/// eviction decisions are made centrally by the engine (which owns the
/// age heap across all fragments), so the local heap is not maintained;
/// instead every insert carries the engine-assigned sequence number and
/// removal is addressed by it (EraseBySeq). ExpireAt/EvictOldest must not
/// be called in this mode.
class PartialTable {
 public:
  /// Where a partial is filed: under the concrete entity its next
  /// transition requires, or in the wildcard bucket (no bound endpoint —
  /// or the index is disabled).
  enum class Role : std::uint8_t { kEntity, kWildcard };

  /// Expiry value of a partial nothing can ever expire.
  static constexpr Timestamp kNeverExpires =
      std::numeric_limits<Timestamp>::max();

  PartialTable(std::size_t node_count, bool entity_index,
               bool external_lifetime = false)
      : node_count_(node_count),
        entity_index_(entity_index),
        external_lifetime_(external_lifetime) {}

  std::size_t live() const { return live_; }
  /// High-water mark of live partials.
  std::size_t peak() const { return peak_; }
  /// Occupied entity buckets (excluding the wildcard bucket).
  std::size_t bucket_count() const { return by_entity_.size(); }
  std::size_t wildcard_size() const { return wildcard_.size(); }

  std::span<const std::int64_t> binding(std::uint32_t slot) const {
    return {bindings_.data() + slot * node_count_, node_count_};
  }
  std::uint32_t next_edge(std::uint32_t slot) const {
    return meta_[slot].next_edge;
  }
  Timestamp first_ts(std::uint32_t slot) const { return meta_[slot].first_ts; }
  /// Timestamp of the partial's most recently matched edge (the reference
  /// point of the next transition's gap guard).
  Timestamp last_ts(std::uint32_t slot) const { return meta_[slot].last_ts; }

  /// Invokes `fn(slot)` for every partial an event (src_entity,
  /// dst_entity) can possibly extend, in the deterministic probe order
  /// (src-entity bucket, dst-entity bucket, wildcard). The dst probe is
  /// skipped when both entities name the same bucket (self-loop events) —
  /// the probe-dedup that keeps a partial from being extended twice by
  /// one event. `fn` must not mutate the table (extensions are deferred
  /// by the callers).
  template <typename Fn>
  void ForEachExtendable(std::int64_t src_entity, std::int64_t dst_entity,
                         Fn&& fn) const {
    if (entity_index_) {
      auto src_it = by_entity_.find(src_entity);
      if (src_it != by_entity_.end()) {
        for (std::uint32_t slot : src_it->second) fn(slot);
      }
      if (dst_entity != src_entity) {
        auto dst_it = by_entity_.find(dst_entity);
        if (dst_it != by_entity_.end()) {
          for (std::uint32_t slot : dst_it->second) fn(slot);
        }
      }
    }
    for (std::uint32_t slot : wildcard_) fn(slot);
  }

  /// One-sided probe of the entity-hash shard path: `fn(slot)` over the
  /// bucket of `entity` alone (the shard owning hash(entity) probes only
  /// that side; the other entity's bucket lives wherever it hashes).
  template <typename Fn>
  void ForEachInBucket(std::int64_t entity, Fn&& fn) const {
    auto it = by_entity_.find(entity);
    if (it == by_entity_.end()) return;
    for (std::uint32_t slot : it->second) fn(slot);
  }

  template <typename Fn>
  void ForEachWildcard(Fn&& fn) const {
    for (std::uint32_t slot : wildcard_) fn(slot);
  }

  /// Files a new partial; `binding` must have node_count entries. `role`
  /// and `key` describe where the *next* transition requires it (with the
  /// index disabled the role is forced to wildcard). `expiry` is the
  /// stream time at which the partial becomes dead (kNeverExpires = only
  /// eviction can remove it). Not available in external-lifetime mode.
  std::uint32_t Insert(std::span<const std::int64_t> binding,
                       std::uint32_t next_edge, Timestamp first_ts,
                       Timestamp last_ts, Timestamp expiry, Role role,
                       std::int64_t key);

  /// External-lifetime insert: files the partial under the engine's
  /// sequence number `seq` instead of maintaining the local age heap.
  /// Removal is by EraseBySeq only.
  std::uint32_t InsertWithSeq(std::span<const std::int64_t> binding,
                              std::uint32_t next_edge, Timestamp first_ts,
                              Timestamp last_ts, Role role, std::int64_t key,
                              std::uint64_t seq);

  /// Removes the partial filed under engine sequence number `seq`
  /// (external-lifetime mode). Returns false if no such partial exists.
  bool EraseBySeq(std::uint64_t seq);

  /// Removes every partial whose expiry precedes `now` (window expiry and
  /// guard-deadline expiry in one pass; a partial with expiry == now can
  /// still extend on an event at `now` and stays).
  void ExpireAt(Timestamp now);

  /// Removes the partial closest to death — smallest (expiry, first_ts,
  /// insertion seq); for unconstrained queries this is exactly the oldest
  /// partial. Requires live() > 0.
  void EvictOldest();

  /// Whether a partial is filed under engine sequence number `seq`
  /// (external-lifetime mode; the engine's cross-shard validator uses it
  /// to check its age heap against the shard tables).
  bool HasSeq(std::uint64_t seq) const {
    return by_seq_.find(seq) != by_seq_.end();
  }

  /// Structural validator (base/invariants.h): returns "" when the
  /// representation is consistent, else a description of the first
  /// violated invariant. Checked relations: binding-arena and free-list
  /// bounds; live count == allocated − free == Σ bucket sizes; every
  /// bucket entry's meta (role, key, bucket_pos) points back at its
  /// bucket; no empty entity buckets; the age heap (internal mode) or the
  /// seq index (external-lifetime mode) covers exactly the live slots.
  std::string CheckInvariants() const;

 private:
  friend struct PartialTableTestPeer;
  struct Meta {
    std::uint32_t next_edge = 0;
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
    Role role = Role::kWildcard;
    std::int64_t key = 0;
    std::uint32_t bucket_pos = 0;
    std::uint64_t seq = 0;
  };
  // (expiry, first_ts, insertion seq, slot); first_ts keeps eviction
  // oldest-first within equal expiries (and therefore globally for
  // unconstrained queries, where expiry is first_ts plus a constant);
  // seq makes the order total and deterministic under ties.
  using AgeKey =
      std::tuple<Timestamp, Timestamp, std::uint64_t, std::uint32_t>;

  std::uint32_t AllocateSlot(std::span<const std::int64_t> binding,
                             std::uint32_t next_edge, Timestamp first_ts,
                             Timestamp last_ts, Role role, std::int64_t key,
                             std::uint64_t seq);
  std::vector<std::uint32_t>& BucketFor(Role role, std::int64_t key);
  void Remove(std::uint32_t slot);

  std::size_t node_count_;
  bool entity_index_;
  bool external_lifetime_;
  std::vector<Meta> meta_;
  std::vector<std::int64_t> bindings_;  // slots x node_count_
  std::vector<std::uint32_t> free_slots_;
  /// Role-agnostic entity -> bucket index (the entity-hash routing key).
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> by_entity_;
  std::vector<std::uint32_t> wildcard_;
  std::priority_queue<AgeKey, std::vector<AgeKey>, std::greater<AgeKey>>
      by_age_;
  /// External-lifetime mode: engine seq -> slot for EraseBySeq.
  std::unordered_map<std::uint64_t, std::uint32_t> by_seq_;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_PARTIAL_TABLE_H_
