#include "syslog/background.h"

#include <string>

namespace tgm {

namespace {

const char* const kDaemonPool[] = {
    "cron",    "systemd",  "rsyslogd", "dbus-daemon",
    "bash",    "top",      "snapd",    "NetworkManager",
    "sshd",    "scp",      "ssh",      "update-notifier",
};

const char* const kConfigPool[] = {
    "/etc/passwd",        "/etc/group",         "/etc/hosts",
    "/etc/resolv.conf",   "/etc/nsswitch.conf", "/etc/crontab",
    "/etc/profile",       "/etc/bash.bashrc",   "~/.bashrc",
    "/etc/motd",          "/etc/login.defs",    "/etc/ld.so.cache",
    "/etc/ssh/ssh_config", "/etc/apt/sources.list",
};

const char* const kLogPool[] = {
    "/var/log/syslog",  "/var/log/auth.log", "/var/run/utmp",
    "/var/log/wtmp",    "/var/log/lastlog",  "/var/log/kern.log",
};

const char* const kSockPool[] = {
    "remote:80", "remote:443", "dns:53", "remote:22", "client:22",
};

const char* const kLibPool[] = {
    "/lib/libc.so.6",          "/lib/libz.so.1",
    "/usr/lib/libssl.so.3",    "/usr/lib/libcrypto.so.3",
    "/usr/lib/libreadline.so.8", "/usr/lib/libstdc++.so.6",
    "/usr/lib/libpam.so.0",    "/lib/security/pam_unix.so",
};

const char* const kHelperPool[] = {"sh", "awk", "grep", "sed", "sort"};

// The shared path universe: files the *behaviours* also touch (headers,
// package payloads, downloads, list files). Real background activity
// covers almost every common path (the paper's background spans 9065
// labels), which is what keeps "rare pool file" patterns from looking
// perfectly discriminative by sampling accident.
const char* const kSharedPathPool[] = {
    "/usr/include/stdio.h",
    "/usr/include/stdlib.h",
    "/usr/include/string.h",
    "/usr/include/c++/iostream",
    "/usr/include/c++/vector",
    "/usr/include/c++/string",
    "/var/lib/apt/lists/archive-main_Packages",
    "/var/lib/apt/lists/archive-universe_Packages",
    "/var/lib/apt/lists/archive-security_Packages",
    "/var/lib/apt/lists/archive-updates_Packages",
    "/var/cache/apt/pkgcache.bin",
    "/var/lib/dpkg/status",
    "index.html",
    "download.bin",
    "payload.dat",
    "data.tar",
    "data",
    "a.out",
    "main.c",
    "main.cpp",
    "/tmp/cc-temp.s",
    "/tmp/cc-temp.o",
    "~/.ssh/known_hosts",
    "~/.netrc",
    "/etc/wgetrc",
    "/dev/tty",
    "/var/log/xferlog",
    "/etc/shadow",
    "/etc/pam.d/common-auth",
    "/etc/ssh/sshd_config",
};

}  // namespace

InstanceScript GenerateBackground(SyslogWorld& world, std::mt19937_64& rng,
                                  const GenOptions& options,
                                  double decoy_prob) {
  ScriptBuilder b(&world, &rng);

  int num_daemons = b.Uniform(8, 12);
  for (int d = 0; d < num_daemons; ++d) {
    std::int32_t proc =
        b.Proc(kDaemonPool[static_cast<std::size_t>(b.Uniform(0, 11))]);
    if (b.Chance(0.5)) {
      b.Mmap(b.File(kLibPool[static_cast<std::size_t>(b.Uniform(0, 7))]),
             proc);
    }
    int rounds =
        std::max(2, static_cast<int>(b.Uniform(14, 32) * options.size_scale));
    for (int r = 0; r < rounds; ++r) {
      switch (b.Uniform(0, 6)) {
        case 0:
          b.Read(b.File(kConfigPool[static_cast<std::size_t>(
                     b.Uniform(0, 13))]),
                 proc);
          break;
        case 1:
          b.Write(proc, b.File(kLogPool[static_cast<std::size_t>(
                            b.Uniform(0, 5))]));
          break;
        case 2: {
          std::int32_t tmp =
              b.File("/tmp/noise" + std::to_string(b.Uniform(0, 49)));
          if (b.Chance(0.5)) {
            b.Write(proc, tmp);
          } else {
            b.Read(tmp, proc);
          }
          break;
        }
        case 3: {
          std::int32_t sock =
              b.Sock(kSockPool[static_cast<std::size_t>(b.Uniform(0, 4))]);
          if (b.Chance(0.3)) b.Connect(proc, sock);
          if (b.Chance(0.5)) {
            b.Send(proc, sock);
          } else {
            b.Recv(sock, proc);
          }
          break;
        }
        case 4: {
          std::int32_t helper = b.Proc(
              kHelperPool[static_cast<std::size_t>(b.Uniform(0, 4))]);
          b.Fork(proc, helper);
          if (b.Chance(0.6)) {
            b.Read(b.File(kConfigPool[static_cast<std::size_t>(
                       b.Uniform(0, 13))]),
                   helper);
          }
          break;
        }
        case 5: {
          if (b.Chance(0.5)) {
            // Rare labels: large id space so most appear in few graphs.
            std::int32_t doc = b.File("/home/user/doc" +
                                      std::to_string(b.Uniform(0, 4999)));
            b.Read(doc, proc);
          } else {
            // Shared path universe (see kSharedPathPool above). Also cover
            // the behaviours' per-instance pool files.
            std::int32_t f;
            if (b.Chance(0.3)) {
              f = b.File("/usr/share/pkg/data" +
                         std::to_string(b.Uniform(0, 39)));
            } else {
              f = b.File(kSharedPathPool[static_cast<std::size_t>(
                  b.Uniform(0, 29))]);
            }
            if (b.Chance(0.5)) {
              b.Read(f, proc);
            } else {
              b.Write(proc, f);
            }
          }
          break;
        }
        default:
          b.Mmap(b.File(kLibPool[static_cast<std::size_t>(b.Uniform(0, 7))]),
                 proc);
          break;
      }
    }
  }

  InstanceScript script = b.Finish();

  // Order-shuffled behaviour decoys.
  GenOptions decoy_options = options;
  decoy_options.disruption_prob = 0.0;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (BehaviorKind kind : AllBehaviors()) {
    double p = decoy_prob;
    GenOptions opts = decoy_options;
    if (BehaviorSizeClass(kind) == SizeClass::kLarge) {
      // Large decoys are down-scaled and rarer to keep background graphs
      // near their Table 1 size (avg ~749 edges).
      p *= 0.4;
      opts.size_scale *= 0.3;
      opts.noise_level *= 0.3;
    }
    if (unit(rng) >= p) continue;
    InstanceScript decoy = GenerateBehavior(world, kind, rng, opts);
    decoy.Shuffle(rng);
    Timestamp span = std::max<Timestamp>(script.Duration(), 1);
    std::uniform_int_distribution<Timestamp> offset(0, span);
    script.Merge(decoy, offset(rng));
  }
  return script;
}

}  // namespace tgm
