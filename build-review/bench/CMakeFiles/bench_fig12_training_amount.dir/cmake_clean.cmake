file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_training_amount.dir/bench_fig12_training_amount.cc.o"
  "CMakeFiles/bench_fig12_training_amount.dir/bench_fig12_training_amount.cc.o.d"
  "bench_fig12_training_amount"
  "bench_fig12_training_amount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_training_amount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
