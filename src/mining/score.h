#ifndef TGM_MINING_SCORE_H_
#define TGM_MINING_SCORE_H_

#include <cstdint>
#include <string>

namespace tgm {

/// Discriminative score functions F(x, y) over positive frequency x and
/// negative frequency y (Problem 1). All satisfy the paper's partial
/// (anti-)monotonicity on the region of interest: for fixed x, smaller y
/// gives a larger score; for fixed y, larger x gives a larger score.
enum class ScoreKind {
  /// F(x, y) = log(x / (y + eps)) — the function adopted from GAIA [11]
  /// that the paper uses with eps = 1e-6.
  kLogRatio,
  /// Signed two-class G-test statistic (leap search [30]).
  kGTest,
  /// Information gain of the pattern-presence feature w.r.t. the class.
  kInfoGain,
};

/// Evaluates a discriminative score and its anti-monotone upper bound.
///
/// The bound (Section 4.1) is F(x, 0): any supergraph g' of g satisfies
/// freq(Gp, g') <= freq(Gp, g) = x and freq(Gn, g') >= 0, hence
/// F(g') <= F(x, 0).
class DiscriminativeScore {
 public:
  /// `num_pos` / `num_neg` are |Gp| and |Gn| (used by G-test and info gain
  /// to weight the classes).
  DiscriminativeScore(ScoreKind kind, std::int64_t num_pos,
                      std::int64_t num_neg, double epsilon = 1e-6);

  /// F(x, y); x, y in [0, 1].
  double operator()(double x, double y) const;

  /// F(x, 0) — the largest score any supergraph can reach.
  double UpperBound(double x) const { return (*this)(x, 0.0); }

  ScoreKind kind() const { return kind_; }
  static std::string KindName(ScoreKind kind);

 private:
  double LogRatio(double x, double y) const;
  double GTest(double x, double y) const;
  double InfoGain(double x, double y) const;

  ScoreKind kind_;
  std::int64_t num_pos_;
  std::int64_t num_neg_;
  double epsilon_;
};

}  // namespace tgm

#endif  // TGM_MINING_SCORE_H_
