file(REMOVE_RECURSE
  "CMakeFiles/query_layer_test.dir/query_layer_test.cc.o"
  "CMakeFiles/query_layer_test.dir/query_layer_test.cc.o.d"
  "query_layer_test"
  "query_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
