// RankDiscriminativeLabels must be deterministic by construction: the
// ranking the NodeSet baseline (and anything downstream of its query
// labels) sees may not depend on std::unordered_map hash layout. These
// tests perturb everything a hash table's iteration order can depend on —
// insertion order, rehash history, container identity — and pin the
// ranked output bit-identical, including full tie-break order.

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "mining/score.h"
#include "query/nodeset.h"
#include "syslog/dataset.h"
#include "syslog/entity.h"

namespace tgm {
namespace {

using Counts = std::unordered_map<LabelId, std::int64_t>;
using Ranked = std::vector<std::pair<double, LabelId>>;

// Builds the same (label -> count) mapping with the given insertion order
// and an optional pre-reserve, so the table's bucket layout (and thus its
// iteration order) differs across calls while its contents do not.
Counts BuildCounts(const std::vector<std::pair<LabelId, std::int64_t>>& kv,
                   const std::vector<std::size_t>& order,
                   std::size_t reserve) {
  Counts out;
  if (reserve > 0) out.reserve(reserve);
  for (std::size_t idx : order) out.emplace(kv[idx].first, kv[idx].second);
  return out;
}

std::vector<std::size_t> Iota(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(NodeSetDeterminismTest, RankingIdenticalAcrossRepeatedRuns) {
  // 40 labels, many sharing counts so score ties exercise the tie-break.
  std::vector<std::pair<LabelId, std::int64_t>> pos_kv, neg_kv;
  for (LabelId l = 1; l <= 40; ++l) {
    pos_kv.emplace_back(l, 3 + (l % 5));
    if (l % 2 == 0) neg_kv.emplace_back(l, 1 + (l % 3));
  }
  DiscriminativeScore score(ScoreKind::kLogRatio, 8, 8, 1e-6);
  Counts pos = BuildCounts(pos_kv, Iota(pos_kv.size()), 0);
  Counts neg = BuildCounts(neg_kv, Iota(neg_kv.size()), 0);

  Ranked first = RankDiscriminativeLabels(pos, neg, 8, 8, score, 0.0);
  ASSERT_FALSE(first.empty());
  for (int run = 0; run < 10; ++run) {
    EXPECT_EQ(first, RankDiscriminativeLabels(pos, neg, 8, 8, score, 0.0))
        << "run " << run;
  }
}

TEST(NodeSetDeterminismTest, RankingImmuneToHashLayoutPerturbation) {
  // The nearest portable stand-in for hash-seed perturbation: shuffle the
  // insertion order and vary the reserve (bucket count trajectory) so the
  // tables' internal layouts — and therefore their iteration orders —
  // genuinely differ. The ranking must not.
  std::vector<std::pair<LabelId, std::int64_t>> pos_kv, neg_kv;
  for (LabelId l = 1; l <= 64; ++l) {
    pos_kv.emplace_back(l * 7 % 97, 2 + (l % 4));
    if (l % 3 != 0) neg_kv.emplace_back(l * 7 % 97, 1 + (l % 2));
  }
  DiscriminativeScore score(ScoreKind::kGTest, 10, 10, 1e-6);

  Ranked baseline;
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::size_t> pos_order = Iota(pos_kv.size());
    std::vector<std::size_t> neg_order = Iota(neg_kv.size());
    std::shuffle(pos_order.begin(), pos_order.end(), rng);
    std::shuffle(neg_order.begin(), neg_order.end(), rng);
    Counts pos = BuildCounts(pos_kv, pos_order,
                             (trial % 4) * 64);  // vary rehash history
    Counts neg = BuildCounts(neg_kv, neg_order, (trial % 3) * 32);
    Ranked got = RankDiscriminativeLabels(pos, neg, 10, 10, score, 0.1);
    if (trial == 0) {
      baseline = got;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(baseline, got) << "trial " << trial;
    }
  }
}

TEST(NodeSetDeterminismTest, TieBreakIsAscendingLabelIdWithinEqualScore) {
  // All labels get identical counts -> identical scores; the full order
  // must then be ascending label id, independent of hash order.
  std::vector<std::pair<LabelId, std::int64_t>> kv;
  for (LabelId l : {19, 3, 42, 7, 23, 11}) kv.emplace_back(l, 4);
  DiscriminativeScore score(ScoreKind::kLogRatio, 4, 4, 1e-6);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::size_t> order = Iota(kv.size());
    std::shuffle(order.begin(), order.end(), rng);
    Counts pos = BuildCounts(kv, order, (trial % 2) * 16);
    Ranked got = RankDiscriminativeLabels(pos, {}, 4, 4, score, 0.0);
    ASSERT_EQ(got.size(), kv.size());
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, got[0].first);
      EXPECT_LT(got[i - 1].second, got[i].second);
    }
  }
}

TEST(NodeSetDeterminismTest, MineEndToEndStableAcrossRuns) {
  // The public entry point over real graphs: repeated Mine calls must
  // produce the same top-k label list.
  SyslogWorld world;
  DatasetConfig config;
  config.runs_per_behavior = 6;
  config.background_graphs = 6;
  config.seed = 11;
  TrainingData data = BuildTrainingData(world, config);
  std::vector<const TemporalGraph*> pos, neg;
  for (const TemporalGraph& g : data.positives[0]) pos.push_back(&g);
  for (const TemporalGraph& g : data.background) neg.push_back(&g);
  ASSERT_FALSE(pos.empty());
  ASSERT_FALSE(neg.empty());

  NodeSetQuery first = NodeSetQuery::Mine(pos, neg, 5);
  ASSERT_FALSE(first.labels().empty());
  for (int run = 0; run < 5; ++run) {
    NodeSetQuery again = NodeSetQuery::Mine(pos, neg, 5);
    EXPECT_EQ(first.labels(), again.labels()) << "run " << run;
  }
}

}  // namespace
}  // namespace tgm
