#ifndef TGM_QUERY_STREAM_MONITOR_H_
#define TGM_QUERY_STREAM_MONITOR_H_

#include <cstdint>
#include <functional>

#include "query/stream/engine.h"
#include "query/stream/event.h"
#include "temporal/pattern.h"

namespace tgm {

/// Online behaviour-query monitoring (Section 1: "the formulated behavior
/// queries can also be applied on the real-time monitoring data for
/// surveillance and policy compliance checking").
///
/// Compatibility facade over the stream engine subsystem
/// (src/query/stream/): a single-shard, batch-of-one StreamEngine, so
/// every OnEvent is synchronous and alerts arrive in the engine's
/// canonical (event, query index, interval) order. Use StreamEngine
/// directly for sharded execution, batching, and the full stats surface;
/// this class keeps the original monitor's constructor-and-two-calls API
/// for existing callers and tests.
class StreamMonitor {
 public:
  struct Options {
    /// Maximum allowed match span; also the partial-match expiry horizon.
    Timestamp window = 0;
    /// Cap on live partial matches per query. When exceeded the oldest
    /// partial is evicted to make room (counted in `dropped_partials`).
    std::size_t max_partials_per_query = 100000;
  };

  explicit StreamMonitor(const Options& options)
      : engine_(EngineOptions(options)) {}

  /// Registers a behaviour query; returns its index in alerts.
  std::size_t AddQuery(const Pattern& query) {
    return engine_.AddQuery(query);
  }

  /// Feeds one event (must be non-decreasing in ts — a decreasing ts is
  /// clamped to the newest timestamp seen and counted in
  /// `out_of_order_events`); invokes `sink` for every alert it completes.
  void OnEvent(const StreamEvent& event,
               const std::function<void(const StreamAlert&)>& sink) {
    engine_.OnEvent(event, sink);
  }

  /// Number of live partial matches (all queries).
  std::size_t PartialCount() const { return engine_.PartialCount(); }

  std::int64_t dropped_partials() const { return engine_.dropped_partials(); }

  /// Events that violated the non-decreasing-ts precondition (clamped).
  std::int64_t out_of_order_events() const {
    return engine_.out_of_order_events();
  }

  /// Full engine snapshot (live partials, index occupancy, drops, ...).
  EngineStats Stats() const { return engine_.Stats(); }

 private:
  static StreamEngine::Options EngineOptions(const Options& options);

  StreamEngine engine_;
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_MONITOR_H_
