file(REMOVE_RECURSE
  "CMakeFiles/nodeset_determinism_test.dir/nodeset_determinism_test.cc.o"
  "CMakeFiles/nodeset_determinism_test.dir/nodeset_determinism_test.cc.o.d"
  "nodeset_determinism_test"
  "nodeset_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodeset_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
