# Empty dependencies file for bench_micro_operations.
# This may be replaced when dependencies are built.
