#include "query/static_search.h"

#include <algorithm>
#include <limits>
#include <set>

namespace tgm {

struct StaticQuerySearcher::SearchContext {
  const StaticGraph* query = nullptr;
  const TemporalGraph* log = nullptr;
  const Options* options = nullptr;
  std::vector<std::size_t> plan;       // pattern edge visit order
  std::vector<NodeId> node_map;        // pattern node -> data node
  std::vector<bool> used_node;         // data node bound
  std::vector<EdgePos> pos_of;         // pattern edge -> data position
  std::vector<bool> used_pos_lookup;   // (unused; distinctness via pos_of)
  std::int64_t raw_matches = 0;
  bool stop = false;
  std::set<Interval> intervals;
};

namespace {

// Edge visit order: anchor first, then edges with at least one endpoint
// already visited (pattern connectivity guarantees progress).
std::vector<std::size_t> BuildPlan(const StaticGraph& query,
                                   std::size_t anchor) {
  std::size_t num_edges = query.edge_count();
  std::vector<std::size_t> plan;
  std::vector<bool> edge_done(num_edges, false);
  std::vector<bool> node_seen(query.node_count(), false);
  auto visit_edge = [&](std::size_t k) {
    plan.push_back(k);
    edge_done[k] = true;
    node_seen[static_cast<std::size_t>(query.edge(k).src)] = true;
    node_seen[static_cast<std::size_t>(query.edge(k).dst)] = true;
  };
  visit_edge(anchor);
  while (plan.size() < num_edges) {
    std::size_t next = num_edges;
    for (std::size_t k = 0; k < num_edges; ++k) {
      if (edge_done[k]) continue;
      const StaticEdge& e = query.edge(k);
      if (node_seen[static_cast<std::size_t>(e.src)] ||
          node_seen[static_cast<std::size_t>(e.dst)]) {
        next = k;
        break;
      }
    }
    if (next == num_edges) {
      // Disconnected pattern: fall back to the first remaining edge.
      for (std::size_t k = 0; k < num_edges; ++k) {
        if (!edge_done[k]) {
          next = k;
          break;
        }
      }
    }
    visit_edge(next);
  }
  return plan;
}

}  // namespace

void StaticQuerySearcher::Extend(SearchContext& ctx, std::size_t step) const {
  if (ctx.stop) return;
  const StaticGraph& query = *ctx.query;
  const TemporalGraph& log = *ctx.log;
  if (step == ctx.plan.size()) {
    ++ctx.raw_matches;
    Timestamp lo = std::numeric_limits<Timestamp>::max();
    Timestamp hi = std::numeric_limits<Timestamp>::min();
    for (EdgePos p : ctx.pos_of) {
      Timestamp ts = log.edge(p).ts;
      lo = std::min(lo, ts);
      hi = std::max(hi, ts);
    }
    ctx.intervals.insert(Interval{lo, hi});
    if (ctx.options->max_matches > 0 &&
        ctx.raw_matches >= ctx.options->max_matches) {
      ctx.stop = true;
    }
    return;
  }

  std::size_t k = ctx.plan[step];
  const StaticEdge& qe = query.edge(k);
  NodeId ms = ctx.node_map[static_cast<std::size_t>(qe.src)];
  NodeId md = ctx.node_map[static_cast<std::size_t>(qe.dst)];

  Timestamp min_ts = std::numeric_limits<Timestamp>::max();
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  for (std::size_t i = 0; i < ctx.plan.size(); ++i) {
    std::size_t bound_edge = ctx.plan[i];
    if (ctx.pos_of[bound_edge] < 0) continue;
    Timestamp ts = log.edge(ctx.pos_of[bound_edge]).ts;
    min_ts = std::min(min_ts, ts);
    max_ts = std::max(max_ts, ts);
  }

  auto try_position = [&](EdgePos p) {
    if (ctx.stop) return;
    const TemporalEdge& de = log.edge(p);
    if (de.elabel != qe.elabel) return;
    // Distinct data edges per pattern edge.
    for (EdgePos existing : ctx.pos_of) {
      if (existing == p) return;
    }
    if (ctx.options->window > 0 &&
        min_ts != std::numeric_limits<Timestamp>::max()) {
      Timestamp new_min = std::min(min_ts, de.ts);
      Timestamp new_max = std::max(max_ts, de.ts);
      if (new_max - new_min > ctx.options->window) return;
    }
    if ((qe.src == qe.dst) != (de.src == de.dst)) return;
    if (ms != kInvalidNode && de.src != ms) return;
    if (md != kInvalidNode && de.dst != md) return;
    if (ms == kInvalidNode) {
      if (log.label(de.src) != query.label(qe.src)) return;
      if (ctx.used_node[static_cast<std::size_t>(de.src)]) return;
    }
    if (md == kInvalidNode && qe.src != qe.dst) {
      if (log.label(de.dst) != query.label(qe.dst)) return;
      if (ctx.used_node[static_cast<std::size_t>(de.dst)]) return;
      if (ms == kInvalidNode && de.src == de.dst) return;
    }
    bool bound_src = false;
    bool bound_dst = false;
    if (ms == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.src)] = de.src;
      ctx.used_node[static_cast<std::size_t>(de.src)] = true;
      bound_src = true;
    }
    if (qe.src != qe.dst &&
        ctx.node_map[static_cast<std::size_t>(qe.dst)] == kInvalidNode) {
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = de.dst;
      ctx.used_node[static_cast<std::size_t>(de.dst)] = true;
      bound_dst = true;
    }
    ctx.pos_of[k] = p;
    Extend(ctx, step + 1);
    ctx.pos_of[k] = -1;
    if (bound_dst) {
      ctx.used_node[static_cast<std::size_t>(de.dst)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.dst)] = kInvalidNode;
    }
    if (bound_src) {
      ctx.used_node[static_cast<std::size_t>(de.src)] = false;
      ctx.node_map[static_cast<std::size_t>(qe.src)] = kInvalidNode;
    }
  };

  // Candidate positions, restricted to the window around already-bound
  // edges when possible.
  EdgePosSpan positions;
  if (ms != kInvalidNode) {
    positions = log.out_edges(ms);
  } else if (md != kInvalidNode) {
    positions = log.in_edges(md);
  } else {
    positions = log.EdgesWithSignature(query.label(qe.src),
                                       query.label(qe.dst), qe.elabel);
  }

  if (options_.window > 0 && min_ts != std::numeric_limits<Timestamp>::max()) {
    // Binary search the window range [max_ts - window, min_ts + window] in
    // the ascending-position (ascending-ts) list.
    Timestamp lo_ts = max_ts - options_.window;
    Timestamp hi_ts = min_ts + options_.window;
    auto first = std::lower_bound(
        positions.begin(), positions.end(), lo_ts,
        [&log](EdgePos p, Timestamp t) { return log.edge(p).ts < t; });
    for (auto it = first; it != positions.end() && !ctx.stop; ++it) {
      if (log.edge(*it).ts > hi_ts) break;
      try_position(*it);
    }
  } else {
    for (auto it = positions.begin(); it != positions.end() && !ctx.stop;
         ++it) {
      try_position(*it);
    }
  }
}

std::vector<Interval> StaticQuerySearcher::Search(
    const StaticGraph& query, const TemporalGraph& log) const {
  TGM_CHECK(log.finalized());
  std::size_t num_edges = query.edge_count();
  if (num_edges == 0 || log.edge_count() == 0) return {};

  std::size_t anchor = 0;
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t k = 0; k < num_edges; ++k) {
    const StaticEdge& qe = query.edge(k);
    std::size_t count = log.EdgesWithSignature(query.label(qe.src),
                                               query.label(qe.dst), qe.elabel)
                            .size();
    if (count < best) {
      best = count;
      anchor = k;
    }
  }
  if (best == 0) return {};

  SearchContext ctx;
  ctx.query = &query;
  ctx.log = &log;
  ctx.options = &options_;
  ctx.plan = BuildPlan(query, anchor);
  ctx.node_map.assign(query.node_count(), kInvalidNode);
  ctx.used_node.assign(log.node_count(), false);
  ctx.pos_of.assign(num_edges, -1);

  Extend(ctx, 0);
  return std::vector<Interval>(ctx.intervals.begin(), ctx.intervals.end());
}

std::vector<Interval> StaticQuerySearcher::SearchAll(
    const std::vector<StaticGraph>& queries, const TemporalGraph& log) const {
  std::set<Interval> all;
  for (const StaticGraph& q : queries) {
    for (const Interval& interval : Search(q, log)) all.insert(interval);
  }
  return std::vector<Interval>(all.begin(), all.end());
}

}  // namespace tgm
