#include "temporal/residual.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;

class ResidualSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Graph 0: labels A(0) B(1) C(2); 4 edges.
    g0_ = MakeGraph({0, 1, 2}, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}, {2, 1, 4}});
    // Graph 1: labels A(0) D(3); 2 edges.
    g1_ = MakeGraph({0, 3}, {{0, 1, 1}, {1, 0, 2}});
    graphs_ = {&g0_, &g1_};
  }

  TemporalGraph g0_;
  TemporalGraph g1_;
  std::vector<const TemporalGraph*> graphs_;
};

TEST_F(ResidualSetTest, IValueSumsSuffixSizes) {
  // Cut after position 1 in g0 leaves 2 edges; cut after 0 in g1 leaves 1.
  ResidualSet rs({{0, 1}, {1, 0}}, graphs_);
  EXPECT_EQ(rs.i_value(), 3);
}

TEST_F(ResidualSetTest, DuplicateCutsCollapse) {
  // The same (graph, cut) from two matches is one residual graph.
  ResidualSet rs({{0, 1}, {0, 1}, {0, 1}}, graphs_);
  EXPECT_EQ(rs.cuts().size(), 1u);
  EXPECT_EQ(rs.i_value(), 2);
}

TEST_F(ResidualSetTest, DistinctCutsInSameGraphAreDistinctResiduals) {
  ResidualSet rs({{0, 1}, {0, 2}}, graphs_);
  EXPECT_EQ(rs.cuts().size(), 2u);
  EXPECT_EQ(rs.i_value(), 2 + 1);
}

TEST_F(ResidualSetTest, FullCutHasZeroIValue) {
  ResidualSet rs({{0, 3}}, graphs_);
  EXPECT_EQ(rs.i_value(), 0);
}

TEST_F(ResidualSetTest, StructuralEqualityMatchesCutEquality) {
  ResidualSet a({{0, 1}, {1, 0}}, graphs_);
  ResidualSet b({{1, 0}, {0, 1}}, graphs_);  // order-insensitive
  ResidualSet c({{0, 2}, {1, 0}}, graphs_);
  EXPECT_TRUE(a.StructurallyEqual(b));
  EXPECT_FALSE(a.StructurallyEqual(c));
}

TEST_F(ResidualSetTest, ResidualLabelSetMembership) {
  // Cut after position 2 in g0: remaining edge is (2,1)@4 touching labels
  // C(2) and B(1) only.
  ResidualSet rs({{0, 2}}, graphs_);
  EXPECT_TRUE(rs.ResidualLabelSetContains(1, graphs_));
  EXPECT_TRUE(rs.ResidualLabelSetContains(2, graphs_));
  EXPECT_FALSE(rs.ResidualLabelSetContains(0, graphs_));
  EXPECT_FALSE(rs.ResidualLabelSetContains(3, graphs_));
}

TEST_F(ResidualSetTest, ResidualLabelSetUnionsAcrossCuts) {
  ResidualSet rs({{0, 2}, {1, 0}}, graphs_);
  EXPECT_TRUE(rs.ResidualLabelSetContains(3, graphs_));  // D in g1 residual
  EXPECT_TRUE(rs.ResidualLabelSetContains(0, graphs_));  // A in g1 residual
}

TEST_F(ResidualSetTest, EmptySet) {
  ResidualSet rs({}, graphs_);
  EXPECT_EQ(rs.i_value(), 0);
  EXPECT_TRUE(rs.cuts().empty());
  EXPECT_FALSE(rs.ResidualLabelSetContains(0, graphs_));
}

// Lemma 6 sanity: for nested patterns (sub/super relation holds by
// construction), equal I-values coincide with structural equality on a
// bundle of random cut configurations.
class ResidualLemma6Test : public ::testing::TestWithParam<int> {};

TEST_P(ResidualLemma6Test, IValueEqualityMatchesStructuralEqualityWhenNested) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  TemporalGraph g = tgm::testing::RandomGraph(rng, 6, 12, 3);
  std::vector<const TemporalGraph*> graphs = {&g};
  // Build two cut sets where the second dominates the first pointwise
  // (what happens for g1 ⊆t g2 matches in the same graph).
  std::vector<std::pair<std::int32_t, EdgePos>> cuts1;
  std::vector<std::pair<std::int32_t, EdgePos>> cuts2;
  for (int i = 0; i < 4; ++i) {
    EdgePos c1 = static_cast<EdgePos>(rng() % g.edge_count());
    EdgePos c2 = static_cast<EdgePos>(
        c1 + static_cast<EdgePos>(rng() % (g.edge_count() - c1)));
    cuts1.emplace_back(0, c1);
    cuts2.emplace_back(0, c2);
  }
  ResidualSet r1(cuts1, graphs);
  ResidualSet r2(cuts2, graphs);
  if (r1.i_value() == r2.i_value() &&
      r1.cuts().size() == r2.cuts().size()) {
    // With pointwise domination and equal sums, the sets must coincide.
    bool dominated = true;
    for (std::size_t i = 0; i < r1.cuts().size(); ++i) {
      if (r1.cuts()[i].second > r2.cuts()[i].second) dominated = false;
    }
    if (dominated) {
      EXPECT_TRUE(r1.StructurallyEqual(r2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResidualLemma6Test, ::testing::Range(0, 20));

}  // namespace
}  // namespace tgm
