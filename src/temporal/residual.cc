#include "temporal/residual.h"

#include <algorithm>

namespace tgm {

ResidualSet::ResidualSet(std::vector<std::pair<std::int32_t, EdgePos>> cuts,
                         const std::vector<const TemporalGraph*>& graphs)
    : cuts_(std::move(cuts)) {
  std::sort(cuts_.begin(), cuts_.end());
  cuts_.erase(std::unique(cuts_.begin(), cuts_.end()), cuts_.end());
  for (const auto& [graph_idx, cut] : cuts_) {
    TGM_DCHECK(graph_idx >= 0 &&
               static_cast<std::size_t>(graph_idx) < graphs.size());
    const TemporalGraph& g = *graphs[static_cast<std::size_t>(graph_idx)];
    std::int64_t remaining =
        static_cast<std::int64_t>(g.edge_count()) - cut - 1;
    TGM_DCHECK(remaining >= 0);
    i_value_ += remaining;
  }
}

bool ResidualSet::ResidualLabelSetContains(
    LabelId l, const std::vector<const TemporalGraph*>& graphs) const {
  for (const auto& [graph_idx, cut] : cuts_) {
    const TemporalGraph& g = *graphs[static_cast<std::size_t>(graph_idx)];
    EdgePosSpan positions = g.LabelPositions(l);
    // Any incident position strictly after the cut means the label occurs
    // in this residual graph.
    auto it = std::upper_bound(positions.begin(), positions.end(), cut);
    if (it != positions.end()) return true;
  }
  return false;
}

}  // namespace tgm
