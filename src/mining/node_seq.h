#ifndef TGM_MINING_NODE_SEQ_H_
#define TGM_MINING_NODE_SEQ_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <initializer_list>

#include "temporal/common.h"

namespace tgm {

/// Node-map sequence of an embedding (pattern node -> data node, in pattern
/// node order) with inline storage.
///
/// The miner materializes one of these per embedding per DFS level, and the
/// dedupe pass compares them pairwise; with std::vector that is one heap
/// allocation and one pointer chase per embedding. Patterns have at most
/// max_edges + 1 nodes and max_edges is small (<= 12 across the paper's
/// workloads and this repo's tests), so the sequence lives inline in the
/// embedding — copies are memcpys and comparisons stay cache-resident. The
/// rare longer sequence spills to the heap with the usual doubling growth.
class NodeSeq {
 public:
  NodeSeq() = default;

  NodeSeq(std::initializer_list<NodeId> init) {
    for (NodeId v : init) push_back(v);
  }

  NodeSeq(const NodeSeq& other) { CopyFrom(other); }

  NodeSeq(NodeSeq&& other) noexcept { MoveFrom(other); }

  NodeSeq& operator=(const NodeSeq& other) {
    if (this != &other) {
      FreeHeap();
      CopyFrom(other);
    }
    return *this;
  }

  NodeSeq& operator=(NodeSeq&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(other);
    }
    return *this;
  }

  NodeSeq& operator=(std::initializer_list<NodeId> init) {
    clear();
    for (NodeId v : init) push_back(v);
    return *this;
  }

  ~NodeSeq() { FreeHeap(); }

  void push_back(NodeId v) {
    std::int32_t cap = heap_cap_ == 0 ? kInlineCapacity : heap_cap_;
    if (size_ == cap) Grow();
    data()[size_++] = v;
  }

  void clear() { size_ = 0; }

  std::size_t size() const { return static_cast<std::size_t>(size_); }
  bool empty() const { return size_ == 0; }

  NodeId operator[](std::size_t i) const {
    TGM_DCHECK(i < size());
    return data()[i];
  }
  NodeId& operator[](std::size_t i) {
    TGM_DCHECK(i < size());
    return data()[i];
  }

  const NodeId* data() const { return heap_cap_ == 0 ? inline_ : heap_; }
  NodeId* data() { return heap_cap_ == 0 ? inline_ : heap_; }

  const NodeId* begin() const { return data(); }
  const NodeId* end() const { return data() + size_; }

  friend bool operator==(const NodeSeq& a, const NodeSeq& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic, matching std::vector<NodeId> ordering so the dedupe
  /// sort order (and thus every downstream ranked result) is unchanged.
  friend std::strong_ordering operator<=>(const NodeSeq& a, const NodeSeq& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }

 private:
  static constexpr std::int32_t kInlineCapacity = 14;

  void CopyFrom(const NodeSeq& other) {
    size_ = other.size_;
    if (other.size_ <= kInlineCapacity) {
      heap_cap_ = 0;
      std::copy(other.begin(), other.end(), inline_);
    } else {
      heap_cap_ = other.size_;
      heap_ = new NodeId[static_cast<std::size_t>(heap_cap_)];
      std::copy(other.begin(), other.end(), heap_);
    }
  }

  void MoveFrom(NodeSeq& other) noexcept {
    size_ = other.size_;
    heap_cap_ = other.heap_cap_;
    if (heap_cap_ == 0) {
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
    } else {
      heap_ = other.heap_;
      other.heap_cap_ = 0;
    }
    other.size_ = 0;
  }

  void FreeHeap() {
    if (heap_cap_ != 0) {
      delete[] heap_;
      heap_cap_ = 0;
    }
  }

  void Grow() {
    std::int32_t new_cap =
        heap_cap_ == 0 ? 2 * kInlineCapacity : 2 * heap_cap_;
    NodeId* grown = new NodeId[static_cast<std::size_t>(new_cap)];
    std::copy(begin(), end(), grown);
    FreeHeap();
    heap_ = grown;
    heap_cap_ = new_cap;
  }

  std::int32_t size_ = 0;
  /// 0 while the elements live in `inline_`; otherwise the heap capacity.
  std::int32_t heap_cap_ = 0;
  union {
    NodeId inline_[kInlineCapacity];
    NodeId* heap_;
  };
};

}  // namespace tgm

#endif  // TGM_MINING_NODE_SEQ_H_
