// Parity tests for the CSR/flat-index TemporalGraph layout: every indexed
// accessor must return exactly the sequences a straightforward
// pointer-per-node / map-per-key reference implementation produces, on
// randomized graphs including empty (edge-less) nodes, duplicate-timestamp
// tie-breaks, shared src/dst labels, and absent keys. The miner's NodeSeq
// inline small-vector is covered here too, including its heap-spill path.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "mining/node_seq.h"
#include "temporal/temporal_graph.h"

namespace tgm {
namespace {

/// The seed's layout, rebuilt naively from the finalized edge list.
struct ReferenceIndexes {
  std::vector<std::vector<EdgePos>> out_edges;
  std::vector<std::vector<EdgePos>> in_edges;
  std::map<LabelId, std::vector<EdgePos>> label_positions;
  std::map<std::tuple<LabelId, LabelId, LabelId>, std::vector<EdgePos>>
      signatures;

  explicit ReferenceIndexes(const TemporalGraph& g)
      : out_edges(g.node_count()), in_edges(g.node_count()) {
    for (std::size_t i = 0; i < g.edge_count(); ++i) {
      const TemporalEdge& e = g.edge(static_cast<EdgePos>(i));
      EdgePos pos = static_cast<EdgePos>(i);
      out_edges[static_cast<std::size_t>(e.src)].push_back(pos);
      in_edges[static_cast<std::size_t>(e.dst)].push_back(pos);
      label_positions[g.label(e.src)].push_back(pos);
      label_positions[g.label(e.dst)].push_back(pos);
      signatures[{g.label(e.src), g.label(e.dst), e.elabel}].push_back(pos);
    }
    for (auto& [label, positions] : label_positions) {
      positions.erase(std::unique(positions.begin(), positions.end()),
                      positions.end());
    }
  }
};

std::vector<EdgePos> ToVector(EdgePosSpan span) {
  return std::vector<EdgePos>(span.begin(), span.end());
}

void ExpectParity(const TemporalGraph& g, LabelId max_label,
                  LabelId max_elabel) {
  ReferenceIndexes ref(g);
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    NodeId node = static_cast<NodeId>(v);
    EXPECT_EQ(ToVector(g.out_edges(node)), ref.out_edges[v]) << "node " << v;
    EXPECT_EQ(ToVector(g.in_edges(node)), ref.in_edges[v]) << "node " << v;
  }
  // Sweep past the used label range so absent keys are exercised as well.
  for (LabelId l = 0; l <= max_label + 2; ++l) {
    auto it = ref.label_positions.find(l);
    std::vector<EdgePos> want =
        it == ref.label_positions.end() ? std::vector<EdgePos>{} : it->second;
    EXPECT_EQ(ToVector(g.LabelPositions(l)), want) << "label " << l;
    // LabelOccursAfter must agree with the reference list at every cut,
    // including past-the-end cuts.
    for (EdgePos pos = 0;
         pos <= static_cast<EdgePos>(g.edge_count()); ++pos) {
      bool want_after = !want.empty() && want.back() > pos;
      EXPECT_EQ(g.LabelOccursAfter(l, pos), want_after)
          << "label " << l << " pos " << pos;
    }
  }
  for (LabelId sl = 0; sl <= max_label + 1; ++sl) {
    for (LabelId dl = 0; dl <= max_label + 1; ++dl) {
      for (LabelId el = 0; el <= max_elabel + 1; ++el) {
        auto it = ref.signatures.find({sl, dl, el});
        std::vector<EdgePos> want =
            it == ref.signatures.end() ? std::vector<EdgePos>{} : it->second;
        EXPECT_EQ(ToVector(g.EdgesWithSignature(sl, dl, el)), want)
            << "signature (" << sl << "," << dl << "," << el << ")";
      }
    }
  }
}

TEST(CsrParityTest, RandomizedGraphsMatchReference) {
  std::mt19937_64 rng(20260728);
  for (int round = 0; round < 12; ++round) {
    int nodes = 2 + static_cast<int>(rng() % 20);
    int edges = static_cast<int>(rng() % 120);  // may leave nodes empty
    LabelId max_label = 1 + static_cast<LabelId>(rng() % 5);
    LabelId max_elabel = static_cast<LabelId>(rng() % 3);
    TemporalGraph g;
    for (int i = 0; i < nodes; ++i) {
      g.AddNode(static_cast<LabelId>(rng() % (max_label + 1)));
    }
    for (int i = 0; i < edges; ++i) {
      NodeId u = static_cast<NodeId>(rng() % nodes);
      NodeId v = static_cast<NodeId>(rng() % nodes);
      // Duplicate timestamps on purpose: ties break by insertion order.
      Timestamp ts = static_cast<Timestamp>(rng() % 40);
      g.AddEdge(u, v, ts, static_cast<LabelId>(rng() % (max_elabel + 1)));
    }
    g.Finalize(TiePolicy::kBreakByInsertionOrder);
    ExpectParity(g, max_label, max_elabel);
  }
}

TEST(CsrParityTest, EmptyGraphHasEmptyIndexes) {
  TemporalGraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.Finalize();
  EXPECT_TRUE(g.out_edges(0).empty());
  EXPECT_TRUE(g.in_edges(1).empty());
  EXPECT_TRUE(g.LabelPositions(0).empty());
  EXPECT_TRUE(g.EdgesWithSignature(0, 1, kNoEdgeLabel).empty());
  EXPECT_FALSE(g.LabelOccursAfter(0, 0));
}

TEST(CsrParityTest, SharedEndpointLabelPositionsAreDeduped) {
  // Both endpoints carry label 0, so each position would appear twice
  // without dedupe.
  TemporalGraph g;
  g.AddNode(0);
  g.AddNode(0);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 0, 2);
  g.Finalize();
  EXPECT_EQ(ToVector(g.LabelPositions(0)), (std::vector<EdgePos>{0, 1}));
}

TEST(CsrParityTest, DuplicateTimestampsKeepInsertionOrder) {
  TemporalGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(static_cast<LabelId>(i));
  g.AddEdge(2, 3, 7);  // inserted first among the ts=7 ties
  g.AddEdge(0, 1, 7);
  g.AddEdge(1, 2, 3);
  g.Finalize(TiePolicy::kBreakByInsertionOrder);
  // Sorted order: (1->2)@3, then the two @7 edges in insertion order.
  EXPECT_EQ(g.edge(0).src, 1);
  EXPECT_EQ(g.edge(1).src, 2);
  EXPECT_EQ(g.edge(2).src, 0);
  ExpectParity(g, 3, 0);
}

TEST(NodeSeqTest, InlineAndHeapPathsBehaveLikeVector) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    // Cross the inline capacity (14) often enough to exercise the spill.
    std::size_t len = rng() % 40;
    std::vector<NodeId> want;
    NodeSeq seq;
    for (std::size_t i = 0; i < len; ++i) {
      NodeId v = static_cast<NodeId>(rng() % 100);
      want.push_back(v);
      seq.push_back(v);
    }
    ASSERT_EQ(seq.size(), want.size());
    for (std::size_t i = 0; i < len; ++i) EXPECT_EQ(seq[i], want[i]);
    EXPECT_TRUE(std::equal(seq.begin(), seq.end(), want.begin(), want.end()));

    NodeSeq copy = seq;             // copy keeps contents
    NodeSeq moved = std::move(seq);  // move empties the source
    EXPECT_EQ(copy, moved);
    EXPECT_EQ(seq.size(), 0u);  // NOLINT(bugprone-use-after-move): asserted

    copy.push_back(1);
    EXPECT_NE(copy, moved);  // size mismatch
  }
}

TEST(NodeSeqTest, ComparisonIsLexicographicLikeVector) {
  NodeSeq a{1, 2, 3};
  NodeSeq b{1, 2, 4};
  NodeSeq prefix{1, 2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(prefix < a);  // shorter prefix sorts first
  EXPECT_TRUE(a == (NodeSeq{1, 2, 3}));
  NodeSeq long_a;
  NodeSeq long_b;
  for (NodeId v = 0; v < 30; ++v) {
    long_a.push_back(v);
    long_b.push_back(v);
  }
  EXPECT_EQ(long_a, long_b);
  long_b.push_back(0);
  EXPECT_TRUE(long_a < long_b);
}

}  // namespace
}  // namespace tgm
