// Regenerates Figure 14: TGMiner response time as the size of the largest
// patterns that are allowed to be explored grows {5, 15, 25, 35, 45}.
//
// Paper shape to reproduce: response time grows with the size cap; at cap
// 5 all behaviours finish within ~10 seconds; small < medium < large
// throughout.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tgm;
  bench::Flags flags(argc, argv);
  bench::Banner("Figure 14",
                "response time vs size of largest explorable pattern");

  PipelineConfig config = bench::DefaultPipelineConfig(flags);
  config.dataset.gen.size_scale = flags.GetDouble("scale", 0.6);
  Pipeline pipeline(config);
  pipeline.Prepare();

  std::int64_t budget_ms = flags.GetInt("budget_ms", 45000);
  // Full (paper-faithful) search semantics; the medium/large classes run
  // on training subsamples so the deep caps stay within the bench budget.
  struct ClassSpec {
    const char* name;
    int behavior_idx;
    double fraction;
  };
  const std::vector<ClassSpec> classes = {
      {"small", 1, 1.0},    // gzip-decompress
      {"medium", 4, 0.5},   // scp-download, 50% data
      {"large", 9, 0.25},   // sshd-login, 25% data
  };
  const int sizes[] = {5, 15, 25, 35, 45};

  std::printf("%10s %12s %12s %12s   (+ = hit budget)\n", "Max size",
              "small (s)", "medium (s)", "large (s)");
  for (int size : sizes) {
    std::printf("%10d", size);
    for (const auto& [class_name, behavior_idx, fraction] : classes) {
      MinerConfig mc = MinerConfig::TGMiner();
      mc.max_edges = size;
      mc.min_pos_freq = 0.5;
      mc.max_embeddings_per_graph = 2000;
      mc.max_millis = budget_ms;
      MineResult result = pipeline.MineTemporal(behavior_idx, mc, fraction);
      if (result.stats.timed_out) {
        std::printf(" %10.0f+", result.stats.elapsed_seconds);
      } else {
        std::printf(" %11.2f", result.stats.elapsed_seconds);
      }
      (void)class_name;
    }
    std::printf("\n");
  }
  std::printf("(paper shape: monotone growth in the size cap; all behaviours "
              "finish within ~10s at cap 5)\n");
  return 0;
}
