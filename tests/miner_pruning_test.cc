#include <gtest/gtest.h>

#include "mining/miner.h"
#include "test_util.h"

namespace tgm {
namespace {

using ::tgm::testing::MakeGraph;

// Datasets engineered so the Section 4.2 pruning rules demonstrably fire,
// plus equivalence checks that pruning never changes results (Theorem 2).

// Graphs with long shared chains create many sub/supergraph pairs with
// identical residual sets.
std::vector<TemporalGraph> ChainGraphs(int count, int chain_length,
                                       int label_period) {
  std::vector<TemporalGraph> graphs;
  for (int i = 0; i < count; ++i) {
    TemporalGraph g;
    for (int v = 0; v <= chain_length; ++v) {
      g.AddNode(static_cast<LabelId>(v % label_period));
    }
    for (int e = 0; e < chain_length; ++e) {
      g.AddEdge(static_cast<NodeId>(e), static_cast<NodeId>(e + 1),
                static_cast<Timestamp>(e + 1));
    }
    g.Finalize();
    graphs.push_back(std::move(g));
  }
  return graphs;
}

TEST(PruningTest, SubgraphPruningTriggersOnChains) {
  std::vector<TemporalGraph> pos = ChainGraphs(4, 8, 3);
  std::vector<TemporalGraph> neg = ChainGraphs(4, 3, 2);
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 5;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();
  EXPECT_GT(result.stats.subgraph_prune_triggers +
                result.stats.supergraph_prune_triggers +
                result.stats.naive_prunes,
            0);
}

TEST(PruningTest, PrunedResultEqualsUnprunedResult) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<TemporalGraph> pos;
    std::vector<TemporalGraph> neg;
    for (int i = 0; i < 4; ++i) {
      pos.push_back(tgm::testing::RandomGraph(rng, 5, 9, 2));
      neg.push_back(tgm::testing::RandomGraph(rng, 5, 9, 2));
    }
    MinerConfig off;
    off.max_edges = 3;
    off.top_k = 4096;
    off.use_naive_bound = false;
    off.use_subgraph_pruning = false;
    off.use_supergraph_pruning = false;
    MineResult base = Miner(off, pos, neg).Mine();

    MinerConfig on = MinerConfig::TGMiner();
    on.max_edges = 3;
    on.top_k = 4096;
    MineResult pruned = Miner(on, pos, neg).Mine();

    // Theorem 2: the maximum score is preserved exactly.
    EXPECT_DOUBLE_EQ(base.best_score, pruned.best_score);
    // And the best-scoring patterns found by the pruned search are a
    // subset of the full tie set (ties may be cut, the maximum may not).
    std::vector<Pattern> full_ties;
    for (const MinedPattern& m : base.top) {
      if (m.score == base.best_score) full_ties.push_back(m.pattern);
    }
    for (const MinedPattern& m : pruned.top) {
      if (m.score != pruned.best_score) continue;
      bool found = false;
      for (const Pattern& p : full_ties) found = found || (p == m.pattern);
      EXPECT_TRUE(found) << m.pattern.ToString();
    }
  }
}

TEST(PruningTest, SubgraphTestsAreCounted) {
  std::vector<TemporalGraph> pos = ChainGraphs(3, 7, 2);
  std::vector<TemporalGraph> neg = ChainGraphs(3, 2, 2);
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 4;
  Miner miner(config, pos, neg);
  MineResult result = miner.Mine();
  // Chains of repeated labels produce candidate pairs, so tests happen.
  EXPECT_GT(result.stats.residual_equiv_tests, 0);
}

TEST(PruningTest, TimeBudgetSetsTimedOut) {
  std::mt19937_64 rng(17);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 6; ++i) {
    pos.push_back(tgm::testing::RandomGraph(rng, 8, 40, 2));
    neg.push_back(tgm::testing::RandomGraph(rng, 8, 40, 2));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 12;
  config.use_naive_bound = false;  // force a big search
  config.max_millis = 1;
  MineResult result = Miner(config, pos, neg).Mine();
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(PruningTest, VisitCapStopsSearch) {
  std::vector<TemporalGraph> pos = ChainGraphs(3, 10, 2);
  std::vector<TemporalGraph> neg = ChainGraphs(3, 2, 2);
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 10;
  // The uncapped search visits 19 patterns on this fixture; the cap must
  // actually bind for the truncation reporting below to be exercised.
  config.max_visited = 10;
  MineResult result = Miner(config, pos, neg).Mine();
  // The cap is checked between visits, so allow a small overshoot.
  EXPECT_LE(result.stats.patterns_visited, 15);
  // A capped search is a truncated search and must say so: callers could
  // not previously tell a max_visited cut from a completed search.
  EXPECT_TRUE(result.stats.visit_cap_hit);
  EXPECT_TRUE(result.stats.truncated());
  EXPECT_FALSE(result.stats.timed_out);
}

TEST(PruningTest, CompletedSearchReportsNoTruncation) {
  std::vector<TemporalGraph> pos = ChainGraphs(3, 6, 2);
  std::vector<TemporalGraph> neg = ChainGraphs(3, 2, 2);
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  config.max_visited = 1000000;
  config.max_millis = 600000;
  MineResult result = Miner(config, pos, neg).Mine();
  EXPECT_FALSE(result.stats.visit_cap_hit);
  EXPECT_FALSE(result.stats.timed_out);
  EXPECT_FALSE(result.stats.truncated());
}

TEST(PruningTest, EmbeddingCapIsDeterministic) {
  std::vector<TemporalGraph> pos = ChainGraphs(3, 12, 1);  // all same label
  std::vector<TemporalGraph> neg = ChainGraphs(3, 3, 1);
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 3;
  config.max_embeddings_per_graph = 4;
  MineResult a = Miner(config, pos, neg).Mine();
  MineResult b = Miner(config, pos, neg).Mine();
  EXPECT_EQ(a.stats.patterns_visited, b.stats.patterns_visited);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_GT(a.stats.embedding_cap_hits, 0);
}

TEST(PruningTest, StopAtTopKTiesPreservesBestScore) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<TemporalGraph> pos;
    std::vector<TemporalGraph> neg;
    for (int i = 0; i < 4; ++i) {
      pos.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
      neg.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
    }
    MinerConfig base = MinerConfig::TGMiner();
    base.max_edges = 3;
    MineResult full = Miner(base, pos, neg).Mine();

    MinerConfig cut = base;
    cut.stop_at_top_k_ties = true;
    cut.top_k = 4;
    MineResult cut_result = Miner(cut, pos, neg).Mine();
    EXPECT_DOUBLE_EQ(full.best_score, cut_result.best_score);
    EXPECT_LE(cut_result.stats.patterns_visited,
              full.stats.patterns_visited);
  }
}

class ScoreKindPruningTest : public ::testing::TestWithParam<ScoreKind> {};

TEST_P(ScoreKindPruningTest, PruningPreservesBestScoreForEveryScore) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<TemporalGraph> pos;
    std::vector<TemporalGraph> neg;
    for (int i = 0; i < 4; ++i) {
      pos.push_back(tgm::testing::RandomGraph(rng, 5, 9, 2));
      neg.push_back(tgm::testing::RandomGraph(rng, 5, 9, 2));
    }
    MinerConfig off;
    off.score_kind = GetParam();
    off.max_edges = 3;
    off.use_naive_bound = false;
    off.use_subgraph_pruning = false;
    off.use_supergraph_pruning = false;
    double reference = Miner(off, pos, neg).Mine().best_score;

    MinerConfig on = MinerConfig::TGMiner();
    on.score_kind = GetParam();
    on.max_edges = 3;
    EXPECT_DOUBLE_EQ(Miner(on, pos, neg).Mine().best_score, reference)
        << DiscriminativeScore::KindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllScores, ScoreKindPruningTest,
                         ::testing::Values(ScoreKind::kLogRatio,
                                           ScoreKind::kGTest,
                                           ScoreKind::kInfoGain),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case ScoreKind::kLogRatio:
                               return "LogRatio";
                             case ScoreKind::kGTest:
                               return "GTest";
                             case ScoreKind::kInfoGain:
                               return "InfoGain";
                           }
                           return "Unknown";
                         });

TEST(PruningTest, ConditionOrderDoesNotChangeResults) {
  std::mt19937_64 rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<TemporalGraph> pos;
    std::vector<TemporalGraph> neg;
    for (int i = 0; i < 4; ++i) {
      pos.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
      neg.push_back(tgm::testing::RandomGraph(rng, 5, 10, 2));
    }
    MinerConfig paper_order = MinerConfig::TGMiner();
    paper_order.max_edges = 3;
    MinerConfig eager = paper_order;
    eager.check_reference_score_first = true;
    MineResult a = Miner(paper_order, pos, neg).Mine();
    MineResult b = Miner(eager, pos, neg).Mine();
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.stats.patterns_visited, b.stats.patterns_visited);
    // The eager order performs at most as many expensive tests.
    EXPECT_LE(b.stats.subgraph_tests, a.stats.subgraph_tests);
  }
}

// The paper (Section 6.1) observes that the different score functions
// "deliver a common set of discriminative patterns" — on cleanly planted
// data the top pattern coincides.
TEST(PruningTest, ScoreFunctionsAgreeOnPlantedPattern) {
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  for (int i = 0; i < 5; ++i) {
    pos.push_back(MakeGraph({0, 1, 2}, {{0, 1, 1}, {1, 2, 2}}));
    neg.push_back(MakeGraph({0, 1, 2}, {{1, 2, 1}, {0, 1, 2}}));
  }
  Pattern planted =
      tgm::testing::MakePattern({0, 1, 2}, {{0, 1}, {1, 2}});
  for (ScoreKind kind :
       {ScoreKind::kLogRatio, ScoreKind::kGTest, ScoreKind::kInfoGain}) {
    MinerConfig config = MinerConfig::TGMiner();
    config.score_kind = kind;
    config.max_edges = 2;
    MineResult result = Miner(config, pos, neg).Mine();
    bool found = false;
    for (const MinedPattern& m : result.top) {
      if (m.score == result.best_score && m.pattern == planted) found = true;
    }
    EXPECT_TRUE(found) << DiscriminativeScore::KindName(kind);
  }
}

}  // namespace
}  // namespace tgm
