# Empty dependencies file for query_layer_test.
# This may be replaced when dependencies are built.
