#ifndef TGM_MINING_REGISTRY_H_
#define TGM_MINING_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mining/miner_config.h"
#include "temporal/pattern.h"
#include "temporal/residual.h"

namespace tgm {

/// A fully explored (or pruned-with-inherited-bound) pattern recorded for
/// later pruning-opportunity discovery.
struct RegisteredPattern {
  Pattern pattern;
  std::int64_t pos_i_value = 0;
  std::int64_t neg_i_value = 0;
  std::int32_t node_count = 0;
  std::int32_t edge_count = 0;
  /// Upper bound on the discriminative score of every pattern in this
  /// pattern's branch (exact maximum for fully explored branches).
  double branch_best = 0.0;
  /// Materialized residual cut lists — stored only under
  /// ResidualEquivAlgo::kLinearScan, where the equivalence test is a
  /// linear scan over these vectors (the LinearScan ablation).
  std::vector<std::pair<std::int32_t, EdgePos>> pos_cuts;
  std::vector<std::pair<std::int32_t, EdgePos>> neg_cuts;
};

/// Store of discovered patterns.
///
/// Under kIValue, entries are bucketed by the positive residual I-value so
/// pruning candidates are found by one hash lookup and each candidate's
/// residual-set equivalence check is a constant-time integer comparison
/// (Lemma 6). Under kLinearScan every lookup walks all entries and each
/// equivalence check compares the materialized cut lists element-wise.
class PatternRegistry {
 public:
  explicit PatternRegistry(ResidualEquivAlgo algo) : algo_(algo) {}

  void Add(RegisteredPattern entry);

  /// Invokes `fn(entry)` for every candidate whose positive residual set
  /// *may* equal one with I-value `pos_i_value`; `fn` returns false to stop
  /// early. `equiv_tests` is incremented once per candidate comparison.
  void ForEachPosCandidate(
      std::int64_t pos_i_value,
      const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
      std::int64_t* equiv_tests,
      const std::function<bool(const RegisteredPattern&)>& fn) const;

  std::size_t size() const { return entries_.size(); }
  ResidualEquivAlgo algo() const { return algo_; }

 private:
  ResidualEquivAlgo algo_;
  std::deque<RegisteredPattern> entries_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_pos_i_;
};

}  // namespace tgm

#endif  // TGM_MINING_REGISTRY_H_
