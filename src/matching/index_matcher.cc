#include "matching/index_matcher.h"

#include <algorithm>

#include "temporal/flat_index.h"

namespace tgm {

std::int64_t IndexMatcher::Signature(LabelId src_label, LabelId dst_label,
                                     LabelId elabel) {
  return (static_cast<std::int64_t>(src_label) << 42) ^
         (static_cast<std::int64_t>(dst_label) << 21) ^
         static_cast<std::int64_t>(elabel);
}

std::span<const EdgePos> IndexMatcher::EdgeIndex::Lookup(
    std::int64_t signature) const {
  return LookupCsr(keys, offsets, csr, signature);
}

const IndexMatcher::EdgeIndex& IndexMatcher::GetIndex(const Pattern& big) {
  auto it = index_cache_.find(big);
  if (it != index_cache_.end()) return it->second;
  EdgeIndex index;
  const auto& edges = big.edges();
  // (signature, position) pairs sorted then grouped into the flat CSR;
  // positions come out ascending within a signature because the pair sort
  // orders by position after the key.
  std::vector<std::pair<std::int64_t, EdgePos>> pairs;
  pairs.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const PatternEdge& e = edges[i];
    pairs.emplace_back(Signature(big.label(e.src), big.label(e.dst), e.elabel),
                       static_cast<EdgePos>(i));
  }
  std::sort(pairs.begin(), pairs.end());
  GroupSortedPairs(pairs, index.keys, index.offsets, index.csr);
  ++indexes_built_;
  return index_cache_.emplace(big, std::move(index)).first->second;
}

bool IndexMatcher::Contains(const Pattern& small, const Pattern& big) {
  return FindMapping(small, big).has_value();
}

std::optional<std::vector<NodeId>> IndexMatcher::FindMapping(
    const Pattern& small, const Pattern& big) {
  ++test_count_;
  if (small.edge_count() > big.edge_count()) return std::nullopt;
  if (small.node_count() > big.node_count()) return std::nullopt;
  if (small.edge_count() == 0) return std::vector<NodeId>{};

  const EdgeIndex& index = GetIndex(big);
  const auto& big_edges = big.edges();

  // Frontier join: start from the first query edge's candidate list, then
  // extend every partial match with every compatible later edge.
  std::vector<Partial> frontier;
  for (std::size_t k = 0; k < small.edge_count(); ++k) {
    const PatternEdge& qe = small.edge(k);
    std::span<const EdgePos> candidates = index.Lookup(
        Signature(small.label(qe.src), small.label(qe.dst), qe.elabel));
    if (candidates.empty()) return std::nullopt;

    std::vector<Partial> next;
    auto extend = [&](const Partial* base) {
      EdgePos after = (base == nullptr) ? -1 : base->last;
      auto start = std::upper_bound(candidates.begin(), candidates.end(),
                                    after);
      for (auto cit = start; cit != candidates.end(); ++cit) {
        const PatternEdge& be = big_edges[static_cast<std::size_t>(*cit)];
        // A self-loop query edge can only match a self-loop target edge.
        if ((qe.src == qe.dst) != (be.src == be.dst)) continue;
        NodeId ms = (base == nullptr)
                        ? kInvalidNode
                        : base->map[static_cast<std::size_t>(qe.src)];
        NodeId md = (base == nullptr)
                        ? kInvalidNode
                        : base->map[static_cast<std::size_t>(qe.dst)];
        // Endpoint consistency + injectivity.
        if (ms != kInvalidNode && ms != be.src) continue;
        if (md != kInvalidNode && md != be.dst) continue;
        Partial p = (base == nullptr)
                        ? Partial{std::vector<NodeId>(small.node_count(),
                                                      kInvalidNode),
                                  std::vector<bool>(big.node_count(), false),
                                  -1}
                        : *base;
        if (p.map[static_cast<std::size_t>(qe.src)] == kInvalidNode) {
          if (p.used[static_cast<std::size_t>(be.src)]) continue;
          p.map[static_cast<std::size_t>(qe.src)] = be.src;
          p.used[static_cast<std::size_t>(be.src)] = true;
        }
        if (p.map[static_cast<std::size_t>(qe.dst)] == kInvalidNode) {
          if (qe.src == qe.dst) {
            // self-loop: dst already bound by src above.
          } else if (p.used[static_cast<std::size_t>(be.dst)]) {
            continue;
          } else {
            p.map[static_cast<std::size_t>(qe.dst)] = be.dst;
            p.used[static_cast<std::size_t>(be.dst)] = true;
          }
        }
        p.last = *cit;
        next.push_back(std::move(p));
      }
    };

    if (k == 0) {
      extend(nullptr);
    } else {
      for (const Partial& base : frontier) extend(&base);
    }
    if (next.empty()) return std::nullopt;
    frontier = std::move(next);
  }
  return frontier.front().map;
}

}  // namespace tgm
