file(REMOVE_RECURSE
  "CMakeFiles/stream_engine_test.dir/stream_engine_test.cc.o"
  "CMakeFiles/stream_engine_test.dir/stream_engine_test.cc.o.d"
  "stream_engine_test"
  "stream_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
