#ifndef TGM_MINING_REGISTRY_H_
#define TGM_MINING_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mining/miner_config.h"
#include "temporal/pattern.h"
#include "temporal/residual.h"

namespace tgm {

/// A fully explored (or pruned-with-inherited-bound) pattern recorded for
/// later pruning-opportunity discovery.
struct RegisteredPattern {
  Pattern pattern;
  std::int64_t pos_i_value = 0;
  std::int64_t neg_i_value = 0;
  std::int32_t node_count = 0;
  std::int32_t edge_count = 0;
  /// Upper bound on the discriminative score of every pattern in this
  /// pattern's branch (exact maximum for fully explored branches).
  double branch_best = 0.0;
  /// Materialized residual cut lists — stored only under
  /// ResidualEquivAlgo::kLinearScan, where the equivalence test is a
  /// linear scan over these vectors (the LinearScan ablation).
  std::vector<std::pair<std::int32_t, EdgePos>> pos_cuts;
  std::vector<std::pair<std::int32_t, EdgePos>> neg_cuts;
};

/// Store of discovered patterns.
///
/// Under kIValue, entries are bucketed by the positive residual I-value so
/// pruning candidates are found by one hash lookup and each candidate's
/// residual-set equivalence check is a constant-time integer comparison
/// (Lemma 6). Under kLinearScan every lookup walks all entries and each
/// equivalence check compares the materialized cut lists element-wise.
///
/// The miner's pruning passes gate millions of candidates on a few scalar
/// fields before doing any real work, so those fields are mirrored in a
/// flat array parallel to the entry store; the gate scan stays
/// cache-resident and the full entry (pattern, cut lists) is only touched
/// for candidates that survive.
class PatternRegistry {
 public:
  /// The gate fields of one registered pattern, stored contiguously.
  struct CandidateMeta {
    double branch_best = 0.0;
    std::int64_t neg_i_value = 0;
    std::int32_t node_count = 0;
    std::int32_t edge_count = 0;
  };

  explicit PatternRegistry(ResidualEquivAlgo algo) : algo_(algo) {}

  void Add(RegisteredPattern entry);

  /// Appends every entry of `other` (which must use the same algorithm)
  /// after this registry's entries, preserving `other`'s registration
  /// order, and folds its I-value buckets in with rebased indices. `other`
  /// is left empty. This is the merge step of parallel root-subtree
  /// mining: each subtree records its patterns in a thread-local registry,
  /// and the registries are absorbed into the shared committed registry in
  /// ascending root-bucket order, so the combined entry order — and hence
  /// every later candidate scan — is identical to a serial run that mined
  /// the subtrees in that order.
  void Absorb(PatternRegistry&& other);

  /// Invokes `fn(meta, entry)` for every candidate whose positive residual
  /// set *may* equal one with I-value `pos_i_value`; `fn` returns false to
  /// stop early. `equiv_tests` is incremented once per candidate
  /// comparison. Callbacks should gate on `meta` (flat, hot) and touch
  /// `entry` only past the gates.
  ///
  /// Statically dispatched: this runs once per visited pattern with a
  /// capturing lambda, and a std::function callback would heap-allocate and
  /// indirect-call in that loop.
  template <typename Fn>
  void ForEachPosCandidate(
      std::int64_t pos_i_value,
      const std::vector<std::pair<std::int32_t, EdgePos>>& pos_cuts,
      std::int64_t* equiv_tests, Fn&& fn) const {
    if (algo_ == ResidualEquivAlgo::kIValue) {
      auto it = by_pos_i_.find(pos_i_value);
      if (it == by_pos_i_.end()) return;
      for (std::size_t idx : it->second) {
        ++*equiv_tests;  // one O(1) integer comparison per candidate
        if (!fn(meta_[idx], entries_[idx])) return;
      }
      return;
    }
    // LinearScan: walk everything, compare materialized cut lists.
    for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
      ++*equiv_tests;
      if (entries_[idx].pos_cuts != pos_cuts) continue;
      if (!fn(meta_[idx], entries_[idx])) return;
    }
  }

  /// Cheap upper bound on the candidates ForEachPosCandidate would visit
  /// for `pos_i_value`: the I-value bucket size (kIValue) or the full
  /// entry count (kLinearScan). Lets the miner size-gate its pooled
  /// pruning pass — which materializes the whole stream — without
  /// enumerating anything.
  std::size_t PosCandidateCountBound(std::int64_t pos_i_value) const {
    if (algo_ == ResidualEquivAlgo::kIValue) {
      auto it = by_pos_i_.find(pos_i_value);
      return it == by_pos_i_.end() ? 0 : it->second.size();
    }
    return entries_.size();
  }

  std::size_t size() const { return entries_.size(); }
  ResidualEquivAlgo algo() const { return algo_; }

 private:
  ResidualEquivAlgo algo_;
  std::deque<RegisteredPattern> entries_;
  /// Gate fields of entries_[i], contiguous for the candidate scans.
  std::vector<CandidateMeta> meta_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_pos_i_;
};

}  // namespace tgm

#endif  // TGM_MINING_REGISTRY_H_
