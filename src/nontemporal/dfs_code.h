#ifndef TGM_NONTEMPORAL_DFS_CODE_H_
#define TGM_NONTEMPORAL_DFS_CODE_H_

#include <string>
#include <vector>

#include "nontemporal/static_graph.h"
#include "temporal/common.h"

namespace tgm {

/// One entry of a directed DFS code (gSpan [31] extended to directed,
/// edge-labeled graphs).
///
/// `from` / `to` are DFS discovery ids. A forward entry has
/// `to == max_id + 1` (discovers a new node); a backward entry has
/// `to < from` (closes a cycle to a node on the rightmost path). `along`
/// records the direction of the underlying edge: true means the edge runs
/// from `from` to `to`, false means it runs `to` -> `from`.
struct DfsCodeEntry {
  std::int32_t from = 0;
  std::int32_t to = 0;
  LabelId from_label = kInvalidLabel;
  LabelId to_label = kInvalidLabel;
  LabelId elabel = kNoEdgeLabel;
  bool along = true;

  bool IsForward() const { return to > from; }

  friend bool operator==(const DfsCodeEntry&, const DfsCodeEntry&) = default;

  /// gSpan's neighbourhood-restricted total order on same-position
  /// extension entries plus the label tiebreak; used when choosing the
  /// minimal extension. Structural order follows the classic rules:
  ///   both forward:  smaller `to` first, then larger `from` first;
  ///   both backward: smaller `from` first, then smaller `to` first;
  ///   backward (i1,j1) precedes forward (i2,j2) iff i1 < j2;
  ///   forward  (i1,j1) precedes backward (i2,j2) iff j1 <= i2.
  bool operator<(const DfsCodeEntry& other) const;
};

/// A DFS code — sequence of entries in discovery order.
using DfsCode = std::vector<DfsCodeEntry>;

/// Lexicographic comparison of codes under DfsCodeEntry::operator<.
bool DfsCodeLess(const DfsCode& a, const DfsCode& b);

/// Reconstructs the pattern graph a code describes.
StaticGraph GraphFromCode(const DfsCode& code);

/// Discovery ids on the rightmost path of `code`, root first. The
/// rightmost path is the path from id 0 to the highest id following the
/// forward (tree) entries.
std::vector<std::int32_t> RightmostPath(const DfsCode& code);

/// Computes the minimal DFS code of `g` (the canonical form). `g` must be
/// connected and simple.
DfsCode MinimalDfsCode(const StaticGraph& g);

/// True iff `code` is its own graph's minimal code. Mining only expands
/// minimal codes, which deduplicates the search space exactly as in gSpan.
bool IsMinimalCode(const DfsCode& code);

std::string CodeToString(const DfsCode& code);

}  // namespace tgm

#endif  // TGM_NONTEMPORAL_DFS_CODE_H_
