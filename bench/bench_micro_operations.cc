// Microbenchmarks (google-benchmark) for the primitive operations whose
// costs explain the Figure 13 ablation gaps:
//  - temporal subgraph tests: SeqMatcher vs Vf2Matcher vs IndexMatcher
//    (Section 4.3 — the paper reports >70M such tests for sshd-login),
//  - residual-set equivalence: I-value comparison vs linear scan
//    (Section 4.4 — >400M such tests for sshd-login),
//  - sequence encoding, pattern canonical hashing, and data-graph match
//    enumeration.

#include <benchmark/benchmark.h>

#include <random>

#include "matching/edge_scan_matcher.h"
#include "matching/index_matcher.h"
#include "matching/seq_matcher.h"
#include "matching/vf2_matcher.h"
#include "mining/miner.h"
#include "temporal/residual.h"
#include "temporal/sequence.h"

namespace tgm {
namespace {

Pattern RandomPattern(std::mt19937_64& rng, int num_edges, int num_labels) {
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  Pattern p = Pattern::SingleEdge(label(rng), label(rng));
  while (static_cast<int>(p.edge_count()) < num_edges) {
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    switch (rng() % 3) {
      case 0:
        p = p.GrowForward(node(rng), label(rng));
        break;
      case 1:
        p = p.GrowBackward(label(rng), node(rng));
        break;
      default: {
        NodeId u = node(rng);
        NodeId v = node(rng);
        if (u != v) p = p.GrowInward(u, v);
        break;
      }
    }
  }
  return p;
}

Pattern GrowRandomly(std::mt19937_64& rng, Pattern p, int extra,
                     int num_labels) {
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  for (int i = 0; i < extra;) {
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    switch (rng() % 3) {
      case 0:
        p = p.GrowForward(node(rng), label(rng));
        ++i;
        break;
      case 1:
        p = p.GrowBackward(label(rng), node(rng));
        ++i;
        break;
      default: {
        NodeId u = node(rng);
        NodeId v = node(rng);
        if (u != v) {
          p = p.GrowInward(u, v);
          ++i;
        }
        break;
      }
    }
  }
  return p;
}

// Containment test pairs: (small, grown-super) so the answer is true and
// the matchers do real work.
std::vector<std::pair<Pattern, Pattern>> MakePairs(int small_edges,
                                                   int extra_edges) {
  std::mt19937_64 rng(99);
  std::vector<std::pair<Pattern, Pattern>> pairs;
  for (int i = 0; i < 32; ++i) {
    Pattern small = RandomPattern(rng, small_edges, 3);
    Pattern big = GrowRandomly(rng, small, extra_edges, 3);
    pairs.emplace_back(std::move(small), std::move(big));
  }
  return pairs;
}

template <typename MatcherT>
void BM_SubgraphTest(benchmark::State& state) {
  auto pairs = MakePairs(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  MatcherT matcher;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [small, big] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(matcher.Contains(small, big));
  }
}

BENCHMARK_TEMPLATE(BM_SubgraphTest, SeqMatcher)
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 10});
BENCHMARK_TEMPLATE(BM_SubgraphTest, Vf2Matcher)
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 10});
BENCHMARK_TEMPLATE(BM_SubgraphTest, IndexMatcher)
    ->Args({4, 4})
    ->Args({6, 6})
    ->Args({8, 10});

// Appendix J ablation: each SeqMatcher acceleration disabled in turn.
void BM_SeqMatcherAblation(benchmark::State& state) {
  auto pairs = MakePairs(6, 8);
  SeqMatcher::Options options;
  options.label_sequence_test = state.range(0) != 0;
  options.local_information_match = state.range(1) != 0;
  options.prefix_pruning = state.range(2) != 0;
  SeqMatcher matcher(options);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [small, big] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(matcher.Contains(small, big));
  }
}
BENCHMARK(BM_SeqMatcherAblation)
    ->Args({1, 1, 1})   // all prunings on (TGMiner)
    ->Args({0, 1, 1})   // no label sequence test
    ->Args({1, 0, 1})   // no local information match
    ->Args({1, 1, 0})   // no prefix pruning
    ->Args({0, 0, 0});  // plain enumeration

void BM_BuildSequenceRep(benchmark::State& state) {
  std::mt19937_64 rng(7);
  Pattern p = RandomPattern(rng, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSequenceRep(p));
  }
}
BENCHMARK(BM_BuildSequenceRep)->Arg(6)->Arg(20)->Arg(45);

void BM_PatternHash(benchmark::State& state) {
  std::mt19937_64 rng(8);
  Pattern p = RandomPattern(rng, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Hash());
  }
}
BENCHMARK(BM_PatternHash)->Arg(6)->Arg(45);

// Residual equivalence: the I-value path is one integer comparison; the
// linear-scan path compares materialized cut lists.
void BM_ResidualEquivIValue(benchmark::State& state) {
  std::mt19937_64 rng(9);
  TemporalGraph g;
  for (int i = 0; i < 50; ++i) g.AddNode(static_cast<LabelId>(i % 5));
  Timestamp ts = 1;
  for (int i = 0; i < 1000; ++i) {
    g.AddEdge(static_cast<NodeId>(rng() % 50),
              static_cast<NodeId>((rng() % 49 + 1)), ts++);
  }
  g.Finalize();
  std::vector<const TemporalGraph*> graphs = {&g};
  std::vector<std::pair<std::int32_t, EdgePos>> cuts;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    cuts.emplace_back(0, static_cast<EdgePos>(rng() % 1000));
  }
  ResidualSet a(cuts, graphs);
  ResidualSet b(cuts, graphs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.i_value() == b.i_value());
  }
}
BENCHMARK(BM_ResidualEquivIValue)->Arg(16)->Arg(256)->Arg(4096);

void BM_ResidualEquivLinearScan(benchmark::State& state) {
  std::mt19937_64 rng(9);
  TemporalGraph g;
  for (int i = 0; i < 50; ++i) g.AddNode(static_cast<LabelId>(i % 5));
  Timestamp ts = 1;
  for (int i = 0; i < 1000; ++i) {
    g.AddEdge(static_cast<NodeId>(rng() % 50),
              static_cast<NodeId>((rng() % 49 + 1)), ts++);
  }
  g.Finalize();
  std::vector<const TemporalGraph*> graphs = {&g};
  std::vector<std::pair<std::int32_t, EdgePos>> cuts;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    cuts.emplace_back(0, static_cast<EdgePos>(rng() % 1000));
  }
  ResidualSet a(cuts, graphs);
  ResidualSet b(cuts, graphs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.StructurallyEqual(b));
  }
}
BENCHMARK(BM_ResidualEquivLinearScan)->Arg(16)->Arg(256)->Arg(4096);

void BM_EdgeScanEnumerate(benchmark::State& state) {
  std::mt19937_64 rng(10);
  TemporalGraph g;
  for (int i = 0; i < 100; ++i) g.AddNode(static_cast<LabelId>(i % 8));
  Timestamp ts = 1;
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng() % 100);
    NodeId v = static_cast<NodeId>(rng() % 100);
    if (u == v) continue;
    g.AddEdge(u, v, ts++);
  }
  g.Finalize();
  Pattern p = RandomPattern(rng, static_cast<int>(state.range(0)), 8);
  EdgeScanMatcher::Options options;
  options.max_matches = 10000;
  EdgeScanMatcher matcher(options);
  for (auto _ : state) {
    std::int64_t n = matcher.EnumerateMatches(
        p, g, [](const DataMatch&) { return true; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_EdgeScanEnumerate)->Arg(2)->Arg(3)->Arg(4);

// End-to-end mining throughput of the parallelized hot paths. Args are
// (num_threads, root_batch): root_batch=1 rows measure the data-parallel
// inner loops alone (the DFS skeleton stays on the calling thread);
// root_batch=16 rows mine whole root subtrees concurrently on the pool
// with per-worker registries merged in ascending root order. Results are
// bit-identical across thread counts within each root_batch value; on a
// multicore host the time/iteration should drop with threads, most
// steeply for the subtree rows, whose parallel grain is an entire DFS.
void BM_MineParallel(benchmark::State& state) {
  std::mt19937_64 rng(1234);
  std::vector<TemporalGraph> pos;
  std::vector<TemporalGraph> neg;
  auto random_graph = [&rng](int nodes, int edges, int labels) {
    TemporalGraph g;
    for (int i = 0; i < nodes; ++i) {
      g.AddNode(static_cast<LabelId>(rng() % labels));
    }
    Timestamp ts = 1;
    for (int i = 0; i < edges;) {
      NodeId u = static_cast<NodeId>(rng() % nodes);
      NodeId v = static_cast<NodeId>(rng() % nodes);
      if (u == v) continue;
      g.AddEdge(u, v, ts++);
      ++i;
    }
    g.Finalize();
    return g;
  };
  for (int i = 0; i < 24; ++i) {
    pos.push_back(random_graph(12, 60, 3));
    neg.push_back(random_graph(12, 60, 3));
  }
  MinerConfig config = MinerConfig::TGMiner();
  config.max_edges = 4;
  config.max_embeddings_per_graph = 500;
  config.num_threads = static_cast<int>(state.range(0));
  config.root_batch = static_cast<int>(state.range(1));
  std::int64_t visited = 0;
  for (auto _ : state) {
    MineResult result = Miner(config, pos, neg).Mine();
    visited = result.stats.patterns_visited;
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_MineParallel)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({8, 16})
    // root_batch=0: the adaptive sentinel sizes batches from the thread
    // count, so these rows measure the prune-loss-vs-speedup trade of the
    // auto batch against the explicit rows above (patterns_visited shows
    // the extra exploration, time/iteration the payoff).
    ->Args({4, 0})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgm

BENCHMARK_MAIN();
