#ifndef TGM_TESTS_TEST_UTIL_H_
#define TGM_TESTS_TEST_UTIL_H_

#include <random>
#include <vector>

#include "temporal/pattern.h"
#include "temporal/temporal_graph.h"

namespace tgm::testing {

/// Builds a finalized temporal graph from labels and (src, dst, ts) edges.
inline TemporalGraph MakeGraph(
    const std::vector<LabelId>& labels,
    const std::vector<std::tuple<NodeId, NodeId, Timestamp>>& edges,
    TiePolicy policy = TiePolicy::kBreakByInsertionOrder) {
  TemporalGraph g;
  for (LabelId l : labels) g.AddNode(l);
  for (const auto& [src, dst, ts] : edges) g.AddEdge(src, dst, ts);
  g.Finalize(policy);
  return g;
}

/// Builds a canonical pattern from labels and (src, dst) edges in temporal
/// order. Edges must respect canonical first-appearance numbering.
inline Pattern MakePattern(const std::vector<LabelId>& labels,
                           const std::vector<std::pair<NodeId, NodeId>>& edges) {
  TemporalGraph g;
  for (LabelId l : labels) g.AddNode(l);
  Timestamp ts = 1;
  for (const auto& [src, dst] : edges) g.AddEdge(src, dst, ts++);
  g.Finalize(TiePolicy::kRequireStrict);
  auto p = Pattern::FromTemporalGraph(g);
  TGM_CHECK(p.has_value());
  return *p;
}

/// Grows a random canonical pattern of `num_edges` edges over an alphabet
/// of `num_labels` node labels (edge labels default).
inline Pattern RandomPattern(std::mt19937_64& rng, int num_edges,
                             int num_labels) {
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  Pattern p = Pattern::SingleEdge(label(rng), label(rng));
  while (static_cast<int>(p.edge_count()) < num_edges) {
    int choice = static_cast<int>(rng() % 3);
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    if (choice == 0) {
      p = p.GrowForward(node(rng), label(rng));
    } else if (choice == 1) {
      p = p.GrowBackward(label(rng), node(rng));
    } else {
      NodeId u = node(rng);
      NodeId v = node(rng);
      if (u == v) continue;  // the miner never grows self-loops
      p = p.GrowInward(u, v);
    }
  }
  return p;
}

/// Grows `extra` additional random edges on top of `base` (so `base` ⊆t
/// result by construction).
inline Pattern GrowRandomly(std::mt19937_64& rng, const Pattern& base,
                            int extra, int num_labels) {
  Pattern p = base;
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  for (int i = 0; i < extra;) {
    std::uniform_int_distribution<NodeId> node(
        0, static_cast<NodeId>(p.node_count()) - 1);
    int choice = static_cast<int>(rng() % 3);
    if (choice == 0) {
      p = p.GrowForward(node(rng), label(rng));
    } else if (choice == 1) {
      p = p.GrowBackward(label(rng), node(rng));
    } else {
      NodeId u = node(rng);
      NodeId v = node(rng);
      if (u == v) continue;
      p = p.GrowInward(u, v);
    }
    ++i;
  }
  return p;
}

/// Random data graph: `num_nodes` labeled nodes, `num_edges` edges with
/// strictly increasing timestamps (no self-loops).
inline TemporalGraph RandomGraph(std::mt19937_64& rng, int num_nodes,
                                 int num_edges, int num_labels) {
  TemporalGraph g;
  std::uniform_int_distribution<LabelId> label(0, num_labels - 1);
  for (int i = 0; i < num_nodes; ++i) g.AddNode(label(rng));
  std::uniform_int_distribution<NodeId> node(0, num_nodes - 1);
  Timestamp ts = 1;
  for (int i = 0; i < num_edges;) {
    NodeId u = node(rng);
    NodeId v = node(rng);
    if (u == v) continue;
    g.AddEdge(u, v, ts);
    ts += 1 + static_cast<Timestamp>(rng() % 3);
    ++i;
  }
  g.Finalize(TiePolicy::kRequireStrict);
  return g;
}

}  // namespace tgm::testing

#endif  // TGM_TESTS_TEST_UTIL_H_
