#ifndef TGM_API_STATUS_H_
#define TGM_API_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "temporal/common.h"

/// \file status.h
/// The library's uniform error model: `tgm::Status` and
/// `tgm::StatusOr<T>`.
///
/// Public entry points (the io parsers, Session ingestion, query
/// registration, the config builders) report recoverable failures through
/// these types instead of the bare `std::optional` / bool / silent-clamp
/// returns they historically used: a failure carries a code that callers
/// can branch on and a human-readable message (line-numbered for parsers)
/// that callers can surface. TGM_CHECK remains reserved for representation
/// invariants whose violation means a bug, not bad input.

namespace tgm {

/// Canonical error space (a deliberately small subset of the familiar
/// google/absl code set — only what the library actually raises).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< malformed input or out-of-range option
  kNotFound = 2,          ///< named corpus / label / file does not exist
  kAlreadyExists = 3,     ///< name collision on registration
  kFailedPrecondition = 4,///< call sequencing violated (e.g. watch mid-batch)
  kDataLoss = 5,          ///< parse failure of a persisted artifact
  kInternal = 6,          ///< invariant failure surfaced as a status
};

/// Returns the canonical lower-case name ("invalid-argument", ...).
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A success-or-error value: code + message. Cheap to copy on the success
/// path (empty message, no allocation).
///
/// [[nodiscard]] at the class level: any call returning a Status by value
/// must consume it — a dropped error compiles into silent data loss.
/// Builds enforce the attribute with -Werror=unused-result and tgm-lint's
/// status-discard check backstops macro-expanded and (void)-cast sites.
class [[nodiscard]] Status {
 public:
  /// Default is OK, so `Status s; ... return s;` reads naturally.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const {
    if (ok()) return "ok";
    std::string out(StatusCodeName(code_));
    out += ": ";
    out += message_;
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the status explaining why there is none. The invariant is
/// exactly one of the two: `ok()` implies a value, `!ok()` implies a
/// non-OK status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (the success path of `return value;`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (the failure path of
  /// `return Status::InvalidArgument(...);`).
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    TGM_CHECK(!status_.ok());  // an OK status carries no value
  }

  bool ok() const { return value_.has_value(); }
  /// OK when a value is present.
  const Status& status() const { return status_; }

  /// Value access requires ok() (checked: misuse is a caller bug).
  const T& value() const& {
    TGM_CHECK(ok());
    return *value_;
  }
  T& value() & {
    TGM_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    TGM_CHECK(ok());
    return *std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller:
///   TGM_RETURN_IF_ERROR(session.Ingest(...));
#define TGM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tgm::Status tgm_status_tmp_ = (expr);        \
    if (!tgm_status_tmp_.ok()) return tgm_status_tmp_; \
  } while (0)

/// Unwraps a StatusOr into `lhs`, propagating a non-OK status:
///   TGM_ASSIGN_OR_RETURN(auto graph, ParseTemporalGraph(is, dict));
#define TGM_ASSIGN_OR_RETURN(lhs, expr)                        \
  TGM_ASSIGN_OR_RETURN_IMPL_(                                  \
      TGM_STATUS_CONCAT_(tgm_statusor_, __LINE__), lhs, expr)
#define TGM_STATUS_CONCAT_INNER_(a, b) a##b
#define TGM_STATUS_CONCAT_(a, b) TGM_STATUS_CONCAT_INNER_(a, b)
#define TGM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace tgm

#endif  // TGM_API_STATUS_H_
