// VIOLATIONS (raw-primitive, exactly 2 findings): a bare std::mutex and a
// std::condition_variable outside src/base/ — invisible to the Clang
// thread-safety wall, which only sees the annotated base/mutex.h wrappers.
#include <condition_variable>
#include <mutex>

namespace lintfix {

struct Queue {
  std::mutex mu;                // finding 1
  std::condition_variable cv;   // finding 2
  int depth = 0;
};

}  // namespace lintfix
