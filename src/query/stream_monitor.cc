#include "query/stream_monitor.h"

namespace tgm {

StreamEngine::Options StreamMonitor::EngineOptions(const Options& options) {
  StreamEngine::Options engine_options;
  engine_options.window = options.window;
  engine_options.max_partials_per_query = options.max_partials_per_query;
  engine_options.num_shards = 1;
  engine_options.batch_size = 1;
  engine_options.entity_index = true;
  return engine_options;
}

}  // namespace tgm
