#ifndef TGM_QUERY_STREAM_QUERY_RUNTIME_H_
#define TGM_QUERY_STREAM_QUERY_RUNTIME_H_

#include <cstdint>
#include <set>
#include <vector>

#include "query/stream/compiled_plan.h"
#include "query/stream/event.h"
#include "query/stream/partial_table.h"

namespace tgm {

/// Per-query limits shared by every runtime of an engine.
struct StreamLimits {
  /// Maximum allowed match span; also the partial-match expiry horizon
  /// (0 = unbounded).
  Timestamp window = 0;
  /// High-water mark on live partials per query. When a new partial would
  /// exceed it, the *oldest* live partial (smallest first_ts, then
  /// insertion order) is evicted to make room — older partials are both
  /// the closest to expiring and the first the window would have
  /// reclaimed — and the query's drop counter increments.
  std::size_t max_partials = 100000;
  /// Disable to file every partial under the wildcard bucket — the legacy
  /// full-scan path, kept as the bench baseline.
  bool entity_index = true;
};

/// One registered behaviour query's live state: compiled plan, the
/// entity-indexed partial table, and the emitted-interval dedup set.
///
/// `Advance` preserves the original StreamMonitor semantics exactly —
/// expiry before extension, in-place extension with a pending list (an
/// extension is never re-extended by the event that created it), strict
/// injectivity, window check on the extended span, one alert per distinct
/// interval — while touching only the partials the event's entities can
/// extend. Completions are reported sorted by interval, which makes the
/// per-event alert order a pure function of the event history (the
/// engine's canonical (ts, query, interval) order).
class QueryRuntime {
 public:
  QueryRuntime(std::size_t global_index, const Pattern& query,
               const StreamLimits& limits)
      : global_index_(global_index),
        plan_(query),
        limits_(limits),
        table_(plan_.node_count(), limits.entity_index) {}

  std::size_t global_index() const { return global_index_; }
  const CompiledQueryPlan& plan() const { return plan_; }
  const PartialTable& table() const { return table_; }
  std::int64_t dropped_partials() const { return dropped_partials_; }
  std::int64_t alerts() const { return alerts_; }
  std::int64_t seed_skips() const { return seed_skips_; }

  /// Records that the shard's seed dispatch skipped this (idle) query for
  /// one event (see StreamShard).
  void CountSeedSkip() { ++seed_skips_; }

  /// Feeds one event; appends every newly completed (distinct) match
  /// interval to `completions`, sorted ascending.
  void Advance(const StreamEvent& event, std::vector<Interval>* completions);

 private:
  static constexpr std::int64_t kUnbound = -1;

  void TryExtend(const StreamEvent& event, std::uint32_t slot,
                 std::vector<Interval>* completions);
  void TrySeed(const StreamEvent& event, std::vector<Interval>* completions);
  void Complete(Interval interval, std::vector<Interval>* completions);
  void QueuePending(std::span<const std::int64_t> base_binding,
                    const StreamEvent& event, std::uint32_t matched_edge,
                    Timestamp first_ts);
  void InsertPending();

  std::size_t global_index_;
  CompiledQueryPlan plan_;
  StreamLimits limits_;
  PartialTable table_;
  /// Dedup of emitted alert intervals, ordered by (begin, end): lookup and
  /// insert are one O(log) probe, window expiry erases the ordered front.
  std::set<Interval> emitted_;
  std::int64_t dropped_partials_ = 0;
  std::int64_t alerts_ = 0;
  std::int64_t seed_skips_ = 0;
  // Scratch reused across events (capacity persists, no steady-state
  // allocation).
  std::vector<std::uint32_t> candidates_;
  struct PendingMeta {
    std::uint32_t next_edge = 0;
    Timestamp first_ts = 0;
  };
  std::vector<PendingMeta> pending_;
  std::vector<std::int64_t> pending_bindings_;  // pending_ x node_count
};

}  // namespace tgm

#endif  // TGM_QUERY_STREAM_QUERY_RUNTIME_H_
