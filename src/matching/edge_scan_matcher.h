#ifndef TGM_MATCHING_EDGE_SCAN_MATCHER_H_
#define TGM_MATCHING_EDGE_SCAN_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "temporal/common.h"
#include "temporal/pattern.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// One match of a pattern inside a data graph: the node mapping plus the
/// positions of the matched data edges (ascending — the edge order is
/// preserved by construction).
struct DataMatch {
  std::vector<NodeId> node_map;   // pattern node -> data node
  std::vector<EdgePos> edge_map;  // pattern edge i -> data edge position
};

/// Enumerates matches M(G, g) of a temporal pattern inside a (much larger)
/// data graph by backtracking over the pattern's edges in temporal order.
///
/// Edge 0 candidates come from the data graph's one-edge signature index;
/// each subsequent pattern edge scans the adjacency lists of its already
/// mapped endpoint(s) restricted to positions after the previously matched
/// edge. T-connectivity of patterns guarantees at least one endpoint of
/// every non-initial edge is already mapped.
///
/// An optional time window bounds the span (last ts - first ts) of a match,
/// which is how behaviour queries restrict matches to one behaviour
/// lifetime, and an optional match cap bounds enumeration cost.
class EdgeScanMatcher {
 public:
  struct Options {
    /// Maximum allowed ts span of a match; 0 = unlimited.
    Timestamp window = 0;
    /// Stop after this many matches; 0 = unlimited.
    std::int64_t max_matches = 0;
  };

  EdgeScanMatcher() = default;
  explicit EdgeScanMatcher(const Options& options) : options_(options) {}

  /// Invokes `sink` for every match; enumeration stops early if `sink`
  /// returns false. Returns the number of matches delivered.
  std::int64_t EnumerateMatches(
      const Pattern& pattern, const TemporalGraph& graph,
      const std::function<bool(const DataMatch&)>& sink) const;

  /// True if at least one match exists.
  bool Exists(const Pattern& pattern, const TemporalGraph& graph) const;

  /// Collects all matches (subject to the cap).
  std::vector<DataMatch> AllMatches(const Pattern& pattern,
                                    const TemporalGraph& graph) const;

 private:
  struct SearchContext;
  bool Extend(SearchContext& ctx, std::size_t k) const;

  Options options_;
};

}  // namespace tgm

#endif  // TGM_MATCHING_EDGE_SCAN_MATCHER_H_
