#ifndef TGM_SYSLOG_SCRIPT_H_
#define TGM_SYSLOG_SCRIPT_H_

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "syslog/entity.h"
#include "temporal/temporal_graph.h"

namespace tgm {

/// One recorded event of an instance script, in slot space (slots are the
/// instance-local node ids; they become fresh graph nodes on emission).
struct RawEvent {
  std::int32_t src_slot = 0;
  std::int32_t dst_slot = 0;
  LabelId op = kNoEdgeLabel;
  Timestamp tick = 0;
};

/// The renderable output of a behaviour template: labeled node slots plus a
/// timed event list. A script can be turned into a standalone temporal
/// graph (training data), appended into a large log graph at an offset
/// (test data), or order-shuffled first (background decoys that preserve
/// the static structure but destroy the temporal signature).
class InstanceScript {
 public:
  std::int32_t AddSlot(LabelId label);
  void AddEvent(std::int32_t src_slot, std::int32_t dst_slot, LabelId op,
                Timestamp tick);

  std::size_t slot_count() const { return slot_labels_.size(); }
  std::size_t event_count() const { return events_.size(); }
  const std::vector<RawEvent>& events() const { return events_; }

  /// Largest tick (the instance duration); 0 when empty.
  Timestamp Duration() const;

  /// Randomly permutes event ticks, destroying temporal order while keeping
  /// every (src, dst, op) edge.
  void Shuffle(std::mt19937_64& rng);

  /// Renders as a standalone finalized temporal graph.
  TemporalGraph ToGraph() const;

  /// Appends fresh nodes and all events (offset by `t0`) into `g`, which
  /// must not be finalized yet.
  void AppendTo(TemporalGraph* g, Timestamp t0) const;

  /// Merges `other`'s slots and events into this script, offsetting the
  /// merged events by `t0` ticks.
  void Merge(const InstanceScript& other, Timestamp t0);

 private:
  std::vector<LabelId> slot_labels_;
  std::vector<RawEvent> events_;
};

/// Incremental builder used by the behaviour templates.
///
/// Core steps advance a logical clock by a jittered gap, fixing the
/// behaviour's temporal signature; noise steps land at a uniformly random
/// tick inside the span produced so far, so they interleave arbitrarily
/// with the core. A drop probability models disrupted runs (the clock
/// still advances, the event is simply not recorded), which is what keeps
/// measured recall below 100%.
class ScriptBuilder {
 public:
  ScriptBuilder(SyslogWorld* world, std::mt19937_64* rng);

  /// Entity creation (slots).
  std::int32_t Proc(std::string_view name);
  std::int32_t File(std::string_view name);
  std::int32_t Sock(std::string_view name);
  std::int32_t Pipe(std::string_view name);

  /// Probability that an individual core event is dropped.
  void SetDropProb(double p) { drop_prob_ = p; }

  /// Core ordered events — each advances the clock.
  void Fork(std::int32_t parent, std::int32_t child);
  void Exec(std::int32_t binary_file, std::int32_t proc);
  void Read(std::int32_t file, std::int32_t proc);
  void Write(std::int32_t proc, std::int32_t file);
  void Mmap(std::int32_t file, std::int32_t proc);
  void Stat(std::int32_t file, std::int32_t proc);
  void Connect(std::int32_t proc, std::int32_t sock);
  void Accept(std::int32_t sock, std::int32_t proc);
  void Send(std::int32_t proc, std::int32_t sock);
  void Recv(std::int32_t sock, std::int32_t proc);
  void PipeW(std::int32_t proc, std::int32_t pipe);
  void PipeR(std::int32_t pipe, std::int32_t proc);
  void Chmod(std::int32_t proc, std::int32_t file);
  void Unlink(std::int32_t proc, std::int32_t file);
  void Lock(std::int32_t proc, std::int32_t file);

  /// Noise event at a random tick within the current span (never dropped,
  /// does not advance the clock).
  void Noise(EdgeOp op, std::int32_t src, std::int32_t dst);

  /// Convenience: the shared process-startup motif — exec + loader +
  /// libc + the given extra libraries (mmap reads).
  void Startup(std::int32_t proc, std::string_view binary_path,
               const std::vector<std::string_view>& extra_libs);

  /// Uniform integer in [lo, hi].
  int Uniform(int lo, int hi);
  /// True with probability p.
  bool Chance(double p);

  SyslogWorld& world() { return *world_; }
  std::mt19937_64& rng() { return *rng_; }
  Timestamp now() const { return clock_; }

  InstanceScript Finish() { return std::move(script_); }

 private:
  void CoreEvent(EdgeOp op, std::int32_t src, std::int32_t dst);

  SyslogWorld* world_;
  std::mt19937_64* rng_;
  InstanceScript script_;
  Timestamp clock_ = 0;
  double drop_prob_ = 0.0;

  static constexpr Timestamp kCoreGap = 100;
};

}  // namespace tgm

#endif  // TGM_SYSLOG_SCRIPT_H_
