#include "mining/registry.h"

namespace tgm {

void PatternRegistry::Add(RegisteredPattern entry) {
  if (algo_ == ResidualEquivAlgo::kIValue) {
    // The integer compression is all that is kept; drop any cut lists.
    entry.pos_cuts.clear();
    entry.pos_cuts.shrink_to_fit();
    entry.neg_cuts.clear();
    entry.neg_cuts.shrink_to_fit();
  }
  std::size_t idx = entries_.size();
  std::int64_t key = entry.pos_i_value;
  meta_.push_back(CandidateMeta{entry.branch_best, entry.neg_i_value,
                                entry.node_count, entry.edge_count});
  entries_.push_back(std::move(entry));
  if (algo_ == ResidualEquivAlgo::kIValue) {
    by_pos_i_[key].push_back(idx);
  }
}

}  // namespace tgm
