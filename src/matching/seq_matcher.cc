#include "matching/seq_matcher.h"

#include <algorithm>
#include <unordered_map>

namespace tgm {

namespace {

// Exact-equality hash map key for the prefix-pruning memo: the partial node
// mapping (big node targeted by each of the first i nodeseq nodes, in
// nodeseq order). Deterministic search means an identical prefix that failed
// from enhseq position j will also fail from any position >= j, so we store
// the minimum failing position per prefix.
struct PrefixHash {
  std::size_t operator()(const std::vector<NodeId>& prefix) const {
    std::size_t h = 1469598103934665603ull;
    for (NodeId v : prefix) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

}  // namespace

struct SeqMatcher::SearchContext {
  const Pattern* small = nullptr;
  const Pattern* big = nullptr;
  const SequenceRep* small_rep = nullptr;
  const SequenceRep* big_rep = nullptr;
  const std::vector<NeighborProfile>* small_profiles = nullptr;
  const std::vector<NeighborProfile>* big_profiles = nullptr;
  std::vector<NodeId> map;     // small node -> big node
  std::vector<bool> used;      // big node already targeted
  std::vector<NodeId> prefix;  // map restricted to nodeseq[0..i), in order
  // prefix -> smallest enhseq position from which this prefix failed.
  std::unordered_map<std::vector<NodeId>, std::size_t, PrefixHash> failed;
  bool want_mapping = false;
  std::optional<std::vector<NodeId>> found_mapping;
  const Options* options = nullptr;
};

std::vector<SeqMatcher::NeighborProfile> SeqMatcher::BuildProfiles(
    const Pattern& p) {
  std::vector<NeighborProfile> profiles(p.node_count());
  for (const PatternEdge& e : p.edges()) {
    profiles[static_cast<std::size_t>(e.src)].out.emplace_back(e.elabel,
                                                               p.label(e.dst));
    profiles[static_cast<std::size_t>(e.dst)].in.emplace_back(e.elabel,
                                                              p.label(e.src));
  }
  for (NeighborProfile& prof : profiles) {
    std::sort(prof.out.begin(), prof.out.end());
    std::sort(prof.in.begin(), prof.in.end());
  }
  return profiles;
}

bool SeqMatcher::EdgeSubsequenceHolds(const Pattern& small, const Pattern& big,
                                      const std::vector<NodeId>& map) {
  // Greedy leftmost subsequence matching is exact for sequences compared by
  // element equality: fs(edgeseq(small)) ⊑ edgeseq(big).
  std::size_t j = 0;
  const auto& big_edges = big.edges();
  for (const PatternEdge& e : small.edges()) {
    NodeId want_src = map[static_cast<std::size_t>(e.src)];
    NodeId want_dst = map[static_cast<std::size_t>(e.dst)];
    bool matched = false;
    for (; j < big_edges.size(); ++j) {
      const PatternEdge& b = big_edges[j];
      if (b.src == want_src && b.dst == want_dst && b.elabel == e.elabel) {
        ++j;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

SeqMatcher::CachedPattern& SeqMatcher::Lookup(CachedPattern& slot,
                                              const Pattern& p) {
  if (slot.valid && slot.pattern == p) return slot;
  slot.valid = true;
  slot.has_profiles = false;
  slot.pattern = p;
  slot.rep = BuildSequenceRep(p);
  return slot;
}

const std::vector<SeqMatcher::NeighborProfile>& SeqMatcher::Profiles(
    CachedPattern& entry) {
  if (!entry.has_profiles) {
    entry.profiles = BuildProfiles(entry.pattern);
    entry.has_profiles = true;
  }
  return entry.profiles;
}

bool SeqMatcher::Search(SearchContext& ctx, std::size_t i, std::size_t j) {
  if (i == ctx.small_rep->nodeseq.size()) {
    if (EdgeSubsequenceHolds(*ctx.small, *ctx.big, ctx.map)) {
      if (ctx.want_mapping) ctx.found_mapping = ctx.map;
      return true;
    }
    return false;
  }
  if (ctx.options->prefix_pruning) {
    auto it = ctx.failed.find(ctx.prefix);
    if (it != ctx.failed.end() && j >= it->second) return false;
  }

  NodeId small_node = ctx.small_rep->nodeseq[i];
  LabelId want_label = ctx.small->label(small_node);
  const NeighborProfile& small_prof =
      (*ctx.small_profiles)[static_cast<std::size_t>(small_node)];

  for (std::size_t pos = j; pos < ctx.big_rep->enhseq.size(); ++pos) {
    NodeId big_node = ctx.big_rep->enhseq[pos];
    if (ctx.big->label(big_node) != want_label) continue;
    if (ctx.used[static_cast<std::size_t>(big_node)]) continue;
    if (ctx.options->local_information_match) {
      const NeighborProfile& big_prof =
          (*ctx.big_profiles)[static_cast<std::size_t>(big_node)];
      if (small_prof.out.size() > big_prof.out.size()) continue;
      if (small_prof.in.size() > big_prof.in.size()) continue;
      if (!std::includes(big_prof.out.begin(), big_prof.out.end(),
                         small_prof.out.begin(), small_prof.out.end())) {
        continue;
      }
      if (!std::includes(big_prof.in.begin(), big_prof.in.end(),
                         small_prof.in.begin(), small_prof.in.end())) {
        continue;
      }
    }
    ctx.map[static_cast<std::size_t>(small_node)] = big_node;
    ctx.used[static_cast<std::size_t>(big_node)] = true;
    ctx.prefix.push_back(big_node);
    bool ok = Search(ctx, i + 1, pos + 1);
    ctx.prefix.pop_back();
    ctx.map[static_cast<std::size_t>(small_node)] = kInvalidNode;
    ctx.used[static_cast<std::size_t>(big_node)] = false;
    if (ok) return true;
  }

  if (ctx.options->prefix_pruning) {
    auto [it, inserted] = ctx.failed.emplace(ctx.prefix, j);
    if (!inserted) it->second = std::min(it->second, j);
  }
  return false;
}

bool SeqMatcher::Contains(const Pattern& small, const Pattern& big) {
  return FindMapping(small, big).has_value();
}

std::optional<std::vector<NodeId>> SeqMatcher::FindMapping(
    const Pattern& small, const Pattern& big) {
  ++test_count_;
  if (small.edge_count() > big.edge_count()) return std::nullopt;
  if (small.node_count() > big.node_count()) return std::nullopt;
  if (small.edge_count() == 0) return std::vector<NodeId>{};

  CachedPattern& small_entry = Lookup(small_slot_, small);
  CachedPattern& big_entry = Lookup(big_slot_, big);

  SearchContext ctx;
  ctx.small = &small;
  ctx.big = &big;
  ctx.options = &options_;
  ctx.small_rep = &small_entry.rep;
  ctx.big_rep = &big_entry.rep;

  if (options_.label_sequence_test &&
      !LabelSubsequenceTest(small, small_entry.rep, big, big_entry.rep)) {
    return std::nullopt;
  }

  ctx.small_profiles = &Profiles(small_entry);
  ctx.big_profiles = &Profiles(big_entry);
  ctx.map.assign(small.node_count(), kInvalidNode);
  ctx.used.assign(big.node_count(), false);
  ctx.prefix.reserve(small.node_count());
  ctx.want_mapping = true;

  if (Search(ctx, 0, 0)) return ctx.found_mapping;
  return std::nullopt;
}

}  // namespace tgm
