# Empty compiler generated dependencies file for concurrent_edges_test.
# This may be replaced when dependencies are built.
