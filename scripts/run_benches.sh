#!/usr/bin/env bash
# Runs the miner benchmark set and writes one BENCH_<name>.json per binary,
# seeding the repo's benchmark-baseline trajectory.
#
# Usage: scripts/run_benches.sh [--smoke] [BUILD_DIR] [OUT_DIR]
#   --smoke    tiny sizes for CI (seconds, shape checks only; numbers from
#              shared CI runners are not comparable across runs)
#   BUILD_DIR  CMake build directory with the bench binaries (default: build)
#   OUT_DIR    where the BENCH_*.json files land (default: bench-results)
#
# Full mode (the default) uses the benches' paper-shaped defaults and takes
# tens of minutes; run it on an idle machine when recording a baseline.
set -euo pipefail

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -x "$BUILD_DIR/bench/bench_micro_operations" ]]; then
  echo "error: $BUILD_DIR/bench/bench_micro_operations not found." >&2
  echo "Build first: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# Micro benches emit google-benchmark JSON natively.
MICRO_ARGS=(--benchmark_out="$OUT_DIR/BENCH_micro_operations.json"
            --benchmark_out_format=json)
if [[ "$SMOKE" == 1 ]]; then
  MICRO_ARGS+=(--benchmark_filter='BM_MineParallel/1|BM_EdgeScanEnumerate|BM_SubgraphTest<SeqMatcher>'
               --benchmark_min_time=0.05)
fi
"$BUILD_DIR/bench/bench_micro_operations" "${MICRO_ARGS[@]}"

# The fig13 miner comparison writes the same-shaped JSON via --json_out.
FIG13_ARGS=(--json_out="$OUT_DIR/BENCH_fig13_miner_comparison.json")
if [[ "$SMOKE" == 1 ]]; then
  FIG13_ARGS+=(--scale=0.2 --budget_ms=5000 --max_edges=4
               --miners=TGMiner --classes=small,medium)
fi
"$BUILD_DIR/bench/bench_fig13_miner_comparison" "${FIG13_ARGS[@]}"

echo
echo "Wrote:"
ls -l "$OUT_DIR"/BENCH_*.json
